/**
 * @file
 * Context-awareness sensor logging -- the "sensing user physical
 * activities / monitoring surrounding environment" class of light
 * tasks from §2.1.
 *
 * A NightWatch thread periodically drains a (simulated) sensor FIFO
 * with the DMA engine and appends compressed samples to a log file.
 * Demonstrates: multiple shadowed services composed in one light task,
 * interrupt routing to the weak domain, and the single system image --
 * a Normal thread later reads the log the NightWatch thread wrote.
 *
 * Pass a filename to also export a Chrome trace of the run:
 *     sensor_logging trace.json   # then open in chrome://tracing
 */

#include <cstdio>
#include <fstream>

#include "obs/trace_export.h"
#include "workloads/report.h"
#include "workloads/testbed.h"

int
main(int argc, char **argv)
{
    using namespace k2;
    using kern::Thread;
    using sim::Task;

    wl::banner("Example: sensor logging on the weak domain");

    auto tb = wl::Testbed::makeK2();
    const char *trace_file = argc > 1 ? argv[1] : nullptr;
    if (trace_file)
        tb.engine().tracer().enableSpans();

    constexpr int kBatches = 12;
    constexpr std::uint64_t kFifoBytes = 16 * 1024; // sensor FIFO drain
    const sim::Duration kPeriod = sim::sec(2);

    // The sensing task: drain the sensor FIFO via DMA, "compress"
    // (CPU work), append to the log.
    std::uint64_t logged = 0;
    tb.sys().spawnNightWatch(
        tb.proc(), "sensord", [&](Thread &t) -> Task<void> {
            const std::int64_t fd =
                co_await tb.fs().create(t, "/sensor.log");
            std::vector<std::uint8_t> sample(kFifoBytes / 4, 0x5A);
            for (int i = 0; i < kBatches; ++i) {
                co_await tb.dma().transfer(t, kFifoBytes);
                co_await t.exec(kFifoBytes * 12); // compression
                co_await tb.fs().write(t, static_cast<int>(fd),
                                       sample);
                logged += sample.size();
                co_await t.sleep(kPeriod);
            }
            co_await tb.fs().close(t, static_cast<int>(fd));
        });
    tb.engine().run();

    // Single system image: a Normal thread (strong domain) reads what
    // the NightWatch thread (weak domain) logged.
    std::uint64_t read_back = 0;
    tb.sys().spawnNormal(
        tb.proc(), "analyzer", [&](Thread &t) -> Task<void> {
            const std::int64_t fd =
                co_await tb.fs().open(t, "/sensor.log");
            std::vector<std::uint8_t> buf(64 * 1024);
            for (;;) {
                const std::int64_t n =
                    co_await tb.fs().read(t, static_cast<int>(fd), buf);
                if (n <= 0)
                    break;
                read_back += static_cast<std::uint64_t>(n);
            }
            co_await tb.fs().close(t, static_cast<int>(fd));
        });
    tb.engine().run();

    auto &strong = tb.sys().mainKernel().domain();
    auto &weak = tb.k2()->shadowKernel().domain();
    wl::Table table({"Metric", "Value"});
    table.addRow({"sensor batches", std::to_string(kBatches)});
    table.addRow({"bytes logged (weak domain)", std::to_string(logged)});
    table.addRow({"bytes read back (strong domain)",
                  std::to_string(read_back)});
    table.addRow({"DMA completion IRQs handled",
                  std::to_string(tb.dma().irqsHandled.value())});
    table.addRow({"weak-core active time",
                  sim::formatTime(weak.core(0).activeTime())});
    table.addRow(
        {"strong-domain wakeups during sensing + analysis",
         std::to_string(strong.core(0).wakeups() +
                        strong.core(1).wakeups())});
    table.print();

    if (logged != read_back) {
        std::printf("DATA MISMATCH\n");
        return 1;
    }
    if (trace_file) {
        std::ofstream out(trace_file);
        if (!out) {
            std::printf("cannot write %s\n", trace_file);
            return 1;
        }
        obs::writeChromeTrace(tb.engine().tracer(), out);
        std::printf("\nChrome trace written to %s (load it in "
                    "chrome://tracing).\n",
                    trace_file);
    }
    std::printf("\nThe log written by the weak domain was read intact "
                "by the strong domain -- one namespace, one "
                "filesystem, two kernels.\n");
    return 0;
}
