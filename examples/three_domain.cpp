/**
 * @file
 * The §11 future: three coherence domains (strong + weak + an
 * always-on sensor hub), with kernel state kept coherent by the
 * N-domain DSM.
 *
 * A continuous-sensing loop runs on each domain in turn, periodically
 * appending readings to a shared in-kernel log whose pages the NDsm
 * migrates to whichever domain is active. The example compares the
 * energy of hosting the sensing loop on each domain -- the reason a
 * hub domain exists at all.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "os/ndsm.h"
#include "workloads/report.h"

namespace {

using namespace k2;
using kern::Thread;
using kern::ThreadKind;
using sim::Task;

struct System
{
    sim::Engine eng;
    std::unique_ptr<soc::Soc> soc;
    std::vector<std::unique_ptr<kern::Kernel>> kernels;
    std::unique_ptr<os::NDsm> ndsm;
    std::unique_ptr<kern::Process> proc;

    System()
    {
        soc = std::make_unique<soc::Soc>(eng, soc::threeDomainConfig());
        std::vector<kern::Kernel *> raw;
        const char *names[] = {"main", "shadow", "hub"};
        for (soc::DomainId d = 0; d < 3; ++d) {
            kernels.push_back(
                std::make_unique<kern::Kernel>(*soc, d, names[d]));
            kernels.back()->boot();
            raw.push_back(kernels.back().get());
        }
        ndsm = std::make_unique<os::NDsm>(*soc, raw, 1024);
        for (std::size_t i = 0; i < 3; ++i) {
            kernels[i]->setMailHandler(
                [this, i](soc::Mail m, soc::Core &c) {
                    return ndsm->handleMail(i, m, c);
                });
        }
        proc = std::make_unique<kern::Process>(1, "sensing");
    }
};

/** One sensing episode on kernel @p k: N samples into the shared log. */
double
senseOn(System &sys, std::size_t k, int samples)
{
    sys.eng.run(); // quiesce
    const auto snap = sys.soc->meter().snapshot();

    sys.kernels[k]->spawnThread(
        sys.proc.get(), "sensor", ThreadKind::Normal,
        [&sys, k, samples](Thread &t) -> Task<void> {
            for (int i = 0; i < samples; ++i) {
                // Read the sensor FIFO, filter, append to the shared
                // log page (kept coherent by the NDsm).
                co_await t.exec(4000);
                co_await sys.ndsm->access(t.kernel(), t.core(),
                                          /*page=*/3,
                                          os::Access::Write);
                co_await t.exec(1500);
                co_await t.sleep(sim::msec(100));
            }
        });
    sys.eng.run();
    return snap.totalUj(sys.soc->meter());
}

} // namespace

int
main()
{
    wl::banner("Example: continuous sensing across three coherence "
               "domains (§11)");

    System sys;
    constexpr int kSamples = 20;

    // Warm the log page through each domain once, then measure.
    for (std::size_t k : {0u, 1u, 2u})
        senseOn(sys, k, 2);

    wl::Table table({"Sensing host", "episode energy (mJ)",
                     "vs strong domain"});
    const double strong_uj = senseOn(sys, 0, kSamples);
    const double weak_uj = senseOn(sys, 1, kSamples);
    const double hub_uj = senseOn(sys, 2, kSamples);
    table.addRow({"strong (Cortex-A9)", wl::fmt(strong_uj / 1000, 2),
                  "1.0x"});
    table.addRow({"weak (Cortex-M3)", wl::fmt(weak_uj / 1000, 2),
                  wl::fmt(strong_uj / weak_uj, 1) + "x better"});
    table.addRow({"hub (Cortex-M0)", wl::fmt(hub_uj / 1000, 2),
                  wl::fmt(strong_uj / hub_uj, 1) + "x better"});
    table.print();

    std::printf("\nlog-page owner after the run: kernel '%s'\n",
                sys.kernels[sys.ndsm->ownerOf(3)]->name().c_str());
    std::printf("coherence messages: %llu; the same sensing code ran "
                "unmodified on all three domains against one shared "
                "log.\n",
                static_cast<unsigned long long>(
                    sys.ndsm->messagesSent()));
    return 0;
}
