/**
 * @file
 * Quickstart: boot K2 on the simulated OMAP4, run one light task as a
 * NightWatch thread, and inspect where it ran and what it cost.
 *
 *   $ ./build/examples/quickstart
 *
 * Walks through the core public API:
 *   - os::K2System       -- boots the two-kernel OS (single system image)
 *   - createProcess/spawnNightWatch -- the §8 programming abstraction
 *   - svc::Ext2Fs        -- a shadowed OS service used from the weak domain
 *   - soc::EnergyMeter   -- per-domain energy accounting
 */

#include <cstdio>
#include <iostream>

#include "os/k2_system.h"
#include "svc/block.h"
#include "svc/ext2.h"

int
main()
{
    using namespace k2;
    using kern::Thread;
    using sim::Task;

    // 1. Boot K2: two kernels over the two coherence domains of a
    //    simulated TI OMAP4 (2x Cortex-A9 "strong", 1x Cortex-M3
    //    "weak"), with the DSM, balloon memory manager, interrupt
    //    router and NightWatch machinery wired up.
    os::K2System k2sys;
    std::printf("booted %s: main kernel on '%s', shadow kernel on "
                "'%s'\n",
                k2sys.modelName(),
                k2sys.mainKernel().domain().name().c_str(),
                k2sys.shadowKernel().domain().name().c_str());

    // 2. Attach a shadowed service: an ext2 filesystem on a ramdisk.
    //    The same Ext2Fs object serves both kernels; K2 keeps its
    //    state coherent transparently.
    svc::RamDisk disk(svc::Ext2Fs::kBlockBytes, 4096);
    svc::Ext2Fs fs(k2sys, disk);

    auto &proc = k2sys.createProcess("quickstart");
    k2sys.spawnNormal(proc, "mkfs", [&](Thread &t) -> Task<void> {
        co_await fs.mkfs(t);
    });
    k2sys.ownedEngine().run();

    // 3. Run a light task. NightWatch threads look exactly like normal
    //    threads to the developer but are pinned on the weak domain.
    const auto before = k2sys.soc().meter().snapshot();
    k2sys.spawnNightWatch(proc, "light-task",
                          [&](Thread &t) -> Task<void> {
        std::printf("light task running on core %u (domain '%s')\n",
                    t.core().id(),
                    t.core().domain() == soc::kWeakDomain ? "weak"
                                                          : "strong");
        const std::int64_t fd = co_await fs.create(t, "/note.txt");
        const char msg[] = "hello from the weak domain";
        co_await fs.write(
            t, static_cast<int>(fd),
            std::span<const std::uint8_t>(
                reinterpret_cast<const std::uint8_t *>(msg),
                sizeof(msg)));
        co_await fs.close(t, static_cast<int>(fd));

        auto st = co_await fs.stat(t, "/note.txt");
        std::printf("wrote /note.txt (%llu bytes)\n",
                    static_cast<unsigned long long>(st->size));
    });
    k2sys.ownedEngine().run();

    // 4. Inspect the cost. The strong domain never woke up.
    auto &meter = k2sys.soc().meter();
    std::printf("\nenergy since task start:\n");
    for (soc::RailId r = 0; r < meter.numRails(); ++r) {
        std::printf("  %-8s %8.1f uJ\n", meter.railName(r).c_str(),
                    before.railUj(meter, r));
    }
    std::printf("strong-domain wakeups: %llu\n",
                static_cast<unsigned long long>(
                    k2sys.mainKernel().domain().core(0).wakeups() +
                    k2sys.mainKernel().domain().core(1).wakeups()));
    std::printf("DSM coherence messages: %llu\n",
                static_cast<unsigned long long>(
                    k2sys.dsm().messagesSent()));
    std::printf("simulated time: %s\n",
                sim::formatTime(k2sys.ownedEngine().now()).c_str());

    // 5. Introspection: dump the whole OS state, and show the last few
    //    coherence trace records (tracing is available per category).
    std::printf("\n");
    k2sys.dumpState(std::cout);
    return 0;
}
