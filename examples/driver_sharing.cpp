/**
 * @file
 * Shadowed-driver sharing (§9.4): both kernels use the *same* DMA
 * driver concurrently while K2 keeps its state coherent.
 *
 * Two processes run bulk transfers at the same time -- one from a
 * Normal thread on the strong domain, one from a thread on the weak
 * domain -- and the example reports the throughput split and the
 * coherence traffic that made it possible.
 */

#include <cstdio>

#include "workloads/report.h"
#include "workloads/testbed.h"

int
main()
{
    using namespace k2;
    using kern::Thread;
    using kern::ThreadKind;
    using sim::Task;

    wl::banner("Example: one DMA driver shared by two kernels");

    os::K2Config cfg;
    cfg.soc.costs.inactiveTimeout = 0; // keep both domains awake
    auto tb = wl::Testbed::makeK2(cfg);

    constexpr std::uint64_t kBatch = 256 * 1024;
    const sim::Duration kWindow = sim::sec(1);
    const sim::Time deadline = tb.engine().now() + kWindow;

    auto &proc2 = tb.sys().createProcess("weak-app");
    std::uint64_t strong_bytes = 0;
    std::uint64_t weak_bytes = 0;

    tb.sys().mainKernel().spawnThread(
        &tb.proc(), "strong-io", ThreadKind::Normal,
        [&](Thread &t) -> Task<void> {
            while (t.kernel().engine().now() < deadline) {
                co_await tb.dma().transfer(t, kBatch);
                strong_bytes += kBatch;
            }
        });
    tb.k2()->shadowKernel().spawnThread(
        &proc2, "weak-io", ThreadKind::Normal,
        [&](Thread &t) -> Task<void> {
            while (t.kernel().engine().now() < deadline) {
                co_await tb.dma().transfer(t, kBatch);
                weak_bytes += kBatch;
            }
        });
    tb.engine().run();

    const double secs = sim::toSec(kWindow);
    const auto &dsm = tb.k2()->dsm();
    wl::Table table({"Metric", "Value"});
    table.addRow({"strong-kernel throughput",
                  wl::fmt(strong_bytes / secs / 1e6, 1) + " MB/s"});
    table.addRow({"weak-kernel throughput",
                  wl::fmt(weak_bytes / secs / 1e6, 1) + " MB/s"});
    table.addRow({"combined",
                  wl::fmt((strong_bytes + weak_bytes) / secs / 1e6, 1) +
                      " MB/s"});
    table.addRow({"DSM faults (main/shadow)",
                  std::to_string(dsm.faultStats(0).faults.value()) +
                      " / " +
                      std::to_string(dsm.faultStats(1).faults.value())});
    table.addRow({"coherence messages",
                  std::to_string(dsm.messagesSent())});
    table.addRow({"hardware-spinlock acquisitions",
                  std::to_string(
                      tb.sys().soc().spinlocks().acquisitions())});
    table.print();

    std::printf("\nThe driver source is written once, against the "
                "SystemImage API; the DSM made its channel table "
                "coherent across the incoherent domains.\n");
    return 0;
}
