/**
 * @file
 * Background email sync -- the paper's motivating light task (§1, §2.1
 * and the standby estimate of §9.2).
 *
 * Simulates a day-in-the-life slice: a mail client syncs every five
 * minutes in the background (fetch over the network stack, persist to
 * the filesystem), while the user occasionally runs a bursty
 * foreground task. Runs the same scenario on K2 and on the Linux
 * baseline and compares the energy bill and the resulting standby
 * estimate.
 */

#include <cstdio>

#include "workloads/benchmarks.h"
#include "workloads/report.h"
#include "workloads/standby.h"
#include "workloads/testbed.h"

namespace {

using namespace k2;
using kern::Thread;
using sim::Task;

struct ScenarioResult
{
    double totalUj;
    std::uint64_t syncs;
    std::uint64_t strongWakeups;
};

ScenarioResult
runScenario(wl::Testbed &tb, int syncs, sim::Duration period)
{
    // Warm the services once so steady-state ownership is measured.
    wl::runEpisode(tb.sys(), tb.proc(), "warm",
                   wl::emailSync(tb.udp(), tb.fs(), 32 * 1024, 0));
    tb.engine().run();

    const auto snap = tb.sys().soc().meter().snapshot();
    const auto wake0 =
        tb.sys().mainKernel().domain().core(0).wakeups() +
        tb.sys().mainKernel().domain().core(1).wakeups();

    // The periodic background sync, as a NightWatch thread.
    tb.sys().spawnNightWatch(
        tb.proc(), "mail-sync",
        [&tb, syncs, period](Thread &t) -> Task<void> {
            for (int i = 0; i < syncs; ++i) {
                co_await wl::emailSync(tb.udp(), tb.fs(), 64 * 1024,
                                       i + 1)(t);
                co_await t.sleep(period);
            }
        });

    // One short foreground burst in the middle (the user glances at
    // the phone); it runs on the strong domain at full tilt.
    tb.sys().spawnNormal(
        tb.proc(), "foreground",
        [&tb, period](Thread &t) -> Task<void> {
            co_await t.sleep(period * 2 + sim::sec(30));
            co_await t.exec(350000000); // ~1 s of CPU at 350 MHz
        });

    tb.engine().run();
    return ScenarioResult{
        snap.totalUj(tb.sys().soc().meter()),
        static_cast<std::uint64_t>(syncs),
        tb.sys().mainKernel().domain().core(0).wakeups() +
            tb.sys().mainKernel().domain().core(1).wakeups() - wake0};
}

} // namespace

int
main()
{
    wl::banner("Example: background email sync, K2 vs Linux");

    constexpr int kSyncs = 5;
    const sim::Duration kPeriod = sim::sec(300);

    auto k2tb = wl::Testbed::makeK2();
    auto lxtb = wl::Testbed::makeLinux();
    const auto k2res = runScenario(k2tb, kSyncs, kPeriod);
    const auto lxres = runScenario(lxtb, kSyncs, kPeriod);

    wl::Table table({"System", "syncs", "total energy (mJ)",
                     "strong-domain wakeups"});
    table.addRow({"K2", std::to_string(k2res.syncs),
                  wl::fmt(k2res.totalUj / 1000.0, 1),
                  std::to_string(k2res.strongWakeups)});
    table.addRow({"Linux", std::to_string(lxres.syncs),
                  wl::fmt(lxres.totalUj / 1000.0, 1),
                  std::to_string(lxres.strongWakeups)});
    table.print();

    // Scenario energy includes one identical foreground burst on each
    // system; the background-sync difference is what K2 saves.
    std::printf("\nK2 spends %.1fx less energy on this slice "
                "(%d syncs every %.0f s + one foreground burst).\n",
                lxres.totalUj / k2res.totalUj, kSyncs,
                sim::toSec(kPeriod));
    std::printf("Under K2, the background syncs never woke the strong "
                "domain; only the foreground burst did.\n");
    return 0;
}
