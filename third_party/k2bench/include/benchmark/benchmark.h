/**
 * @file
 * k2bench: a bundled, Release-built micro-benchmark harness exposing
 * the subset of the Google Benchmark API this repo uses.
 *
 * Why it exists: the container's system libbenchmark is a binary-only
 * Debian package compiled without NDEBUG -- it stamps
 * `"library_build_type": "debug"` into every JSON baseline, and its
 * sources are not on disk, so it cannot be rebuilt Release. Baselines
 * measured through a debug harness are not trustworthy, and
 * scripts/run_bench.sh refuses them. k2bench is always compiled
 * optimized with NDEBUG (see third_party/k2bench/CMakeLists.txt), so
 * the harness around the timed region is never the debug build the
 * guard exists to catch. `-DK2_SYSTEM_BENCHMARK=ON` switches back to
 * the system library for cross-checking.
 *
 * Compatibility surface (kept source-compatible with Google Benchmark
 * so bench/micro_sim.cpp builds against either):
 *  - BENCHMARK(fn), ->Arg(n), ->Unit(u)
 *  - for (auto _ : state) iteration protocol with auto-scaled
 *    iteration counts targeting --benchmark_min_time seconds
 *  - State::{range, iterations, counters, SetItemsProcessed,
 *    PauseTiming, ResumeTiming}
 *  - Counter, DoNotOptimize, AddCustomContext, Initialize,
 *    ReportUnrecognizedArguments, RunSpecifiedBenchmarks, Shutdown
 *  - --benchmark_format=console|json, --benchmark_out=FILE,
 *    --benchmark_out_format=json, --benchmark_min_time=SECS,
 *    --benchmark_filter=REGEX
 *
 * JSON output matches the Google Benchmark schema closely enough for
 * scripts/compare_bench.py: a `context` object (including
 * library_build_type and any custom context) and a `benchmarks` array
 * with name/run_type/iterations/real_time/cpu_time/time_unit plus
 * flattened user counters. items_per_second follows Google
 * Benchmark's convention of dividing by *CPU* time.
 */

#ifndef K2BENCH_BENCHMARK_H
#define K2BENCH_BENCHMARK_H

#include <cstdint>
#include <map>
#include <string>

namespace benchmark {

enum TimeUnit
{
    kNanosecond,
    kMicrosecond,
    kMillisecond,
    kSecond,
};

/** A user counter reported alongside the timing columns. */
class Counter
{
  public:
    Counter(double v = 0.0) : value(v) {}
    double value;
};

using UserCounters = std::map<std::string, Counter>;

using IterationCount = std::int64_t;

class State;

namespace internal {

class Runner;

using Function = void (*)(State &);

/** One registered benchmark (possibly expanded per ->Arg()). */
class Benchmark
{
  public:
    Benchmark *Arg(std::int64_t arg);
    Benchmark *Unit(TimeUnit unit);

  private:
    friend class Runner;
    friend Benchmark *RegisterBenchmarkInternal(const char *name,
                                                Function fn);
    explicit Benchmark(const char *name, Function fn);

    std::string name_;
    Function fn_;
    TimeUnit unit_ = kNanosecond;
    // Each entry is one run variant; kNoArg means "no /arg suffix".
    static constexpr std::int64_t kNoArg = INT64_MIN;
    std::int64_t args_[8];
    int nargs_ = 0;
};

Benchmark *RegisterBenchmarkInternal(const char *name, Function fn);

} // namespace internal

/**
 * Per-run benchmark state: the ranged-for protocol starts the timers
 * on begin() and stops them when the iteration budget is exhausted.
 */
class State
{
  public:
    struct iterator
    {
        State *state;
        IterationCount remaining;

        iterator &
        operator++()
        {
            --remaining;
            return *this;
        }
        bool
        operator!=(const iterator &) const
        {
            if (remaining > 0)
                return true;
            state->finishRun();
            return false;
        }
        // The unused attribute keeps `for (auto _ : state)` from
        // tripping -Wunused-but-set-variable on the discarded value.
#if defined(__GNUC__) || defined(__clang__)
        struct [[gnu::unused]] Value
        {
        };
#else
        struct Value
        {
        };
#endif
        Value operator*() const { return {}; }
    };

    iterator
    begin()
    {
        startRun();
        return {this, maxIterations_};
    }
    iterator end() { return {this, 0}; }

    /** The ->Arg() value for this run. */
    std::int64_t range(std::size_t i = 0) const;

    /** Iteration budget of the current (final) run. */
    IterationCount iterations() const { return maxIterations_; }

    void SetItemsProcessed(std::int64_t items) { items_ = items; }

    /** Exclude a region from the measured time. @{ */
    void PauseTiming();
    void ResumeTiming();
    /** @} */

    UserCounters counters;

  private:
    friend class internal::Runner;

    explicit State(IterationCount maxIterations, std::int64_t arg,
                   bool hasArg);

    void startRun();
    void finishRun();

    IterationCount maxIterations_;
    std::int64_t arg_;
    bool hasArg_;
    std::int64_t items_ = 0;
    double realNs_ = 0.0; //!< Accumulated measured real time.
    double cpuNs_ = 0.0;  //!< Accumulated measured CPU time.
    double realStart_ = 0.0;
    double cpuStart_ = 0.0;
    bool timing_ = false;
};

/** Compiler barrier: force @p value to be materialised. @{ */
template <class Tp>
inline void
DoNotOptimize(Tp &value)
{
#if defined(__GNUC__) || defined(__clang__)
    asm volatile("" : "+m,r"(value) : : "memory");
#else
    (void)value;
#endif
}

template <class Tp>
inline void
DoNotOptimize(Tp const &value)
{
#if defined(__GNUC__) || defined(__clang__)
    asm volatile("" : : "r,m"(value) : "memory");
#else
    (void)value;
#endif
}

template <class Tp>
inline void
DoNotOptimize(Tp &&value)
{
#if defined(__GNUC__) || defined(__clang__)
    // "+m" (not "+r"): the materialised temporary may be a class
    // type a register constraint cannot satisfy.
    asm volatile("" : "+m"(value) : : "memory");
#else
    (void)value;
#endif
}
/** @} */

/** Add a key to the JSON `context` object (call before Initialize). */
void AddCustomContext(const std::string &key, const std::string &value);

void Initialize(int *argc, char **argv);
bool ReportUnrecognizedArguments(int argc, char **argv);
std::size_t RunSpecifiedBenchmarks();
void Shutdown();

} // namespace benchmark

#define K2BENCH_CONCAT2(a, b) a##b
#define K2BENCH_CONCAT(a, b) K2BENCH_CONCAT2(a, b)

#define BENCHMARK(fn)                                                  \
    [[maybe_unused]] static ::benchmark::internal::Benchmark            \
        *K2BENCH_CONCAT(k2bench_reg_, __LINE__) =                      \
            ::benchmark::internal::RegisterBenchmarkInternal(#fn, fn)

#endif // K2BENCH_BENCHMARK_H
