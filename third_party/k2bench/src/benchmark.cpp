#include "benchmark/benchmark.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <regex>
#include <sstream>
#include <vector>

#include <unistd.h>

namespace benchmark {
namespace internal {

namespace {

double
nowRealNs()
{
    timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<double>(ts.tv_sec) * 1e9 +
           static_cast<double>(ts.tv_nsec);
}

double
nowCpuNs()
{
    timespec ts;
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) * 1e9 +
           static_cast<double>(ts.tv_nsec);
}

const char *
unitName(TimeUnit u)
{
    switch (u) {
      case kNanosecond:
        return "ns";
      case kMicrosecond:
        return "us";
      case kMillisecond:
        return "ms";
      case kSecond:
        return "s";
    }
    return "ns";
}

double
unitScale(TimeUnit u) // ns -> unit
{
    switch (u) {
      case kNanosecond:
        return 1.0;
      case kMicrosecond:
        return 1e-3;
      case kMillisecond:
        return 1e-6;
      case kSecond:
        return 1e-9;
    }
    return 1.0;
}

struct Options
{
    std::string format = "console";
    std::string out;
    std::string outFormat = "json";
    std::string filter;
    double minTime = 0.5;
};

struct RunResult
{
    std::string name;
    std::int64_t familyIndex = 0;
    std::int64_t instanceIndex = 0;
    IterationCount iterations = 0;
    double realNsPerIter = 0.0;
    double cpuNsPerIter = 0.0;
    TimeUnit unit = kNanosecond;
    double itemsPerSecond = 0.0;
    bool hasItems = false;
    UserCounters counters;
};

Options g_options;
std::vector<Benchmark *> &
registry()
{
    static std::vector<Benchmark *> r;
    return r;
}
std::vector<std::pair<std::string, std::string>> g_customContext;
std::string g_executable = "?";

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    // JSON has no inf/nan literals.
    if (!std::strchr(buf, 'n') && !std::strchr(buf, 'i'))
        return buf;
    return "0";
}

} // namespace

Benchmark::Benchmark(const char *name, Function fn)
    : name_(name), fn_(fn)
{
}

Benchmark *
Benchmark::Arg(std::int64_t arg)
{
    if (nargs_ < static_cast<int>(sizeof args_ / sizeof args_[0]))
        args_[nargs_++] = arg;
    return this;
}

Benchmark *
Benchmark::Unit(TimeUnit unit)
{
    unit_ = unit;
    return this;
}

Benchmark *
RegisterBenchmarkInternal(const char *name, Function fn)
{
    auto *b = new Benchmark(name, fn);
    registry().push_back(b);
    return b;
}

/** Executes registered benchmarks and renders reports. */
class Runner
{
  public:
    static RunResult
    runOne(const Benchmark &b, std::int64_t arg, bool hasArg)
    {
        constexpr IterationCount kMaxIters = 1000000000;
        IterationCount iters = 1;
        for (;;) {
            State st(iters, arg, hasArg);
            b.fn_(st);
            const double realSec = st.realNs_ * 1e-9;
            if (realSec >= g_options.minTime || iters >= kMaxIters) {
                RunResult res;
                res.name = b.name_;
                if (hasArg)
                    res.name += "/" + std::to_string(arg);
                res.iterations = iters;
                res.realNsPerIter =
                    st.realNs_ / static_cast<double>(iters);
                res.cpuNsPerIter =
                    st.cpuNs_ / static_cast<double>(iters);
                res.unit = b.unit_;
                res.counters = st.counters;
                if (st.items_ > 0) {
                    res.hasItems = true;
                    const double cpuSec = st.cpuNs_ * 1e-9;
                    res.itemsPerSecond =
                        cpuSec > 0
                            ? static_cast<double>(st.items_) / cpuSec
                            : 0.0;
                }
                return res;
            }
            // Google-Benchmark-style growth: overshoot the target by
            // 40%, never more than 10x at once.
            const double mult = std::min(
                10.0, g_options.minTime * 1.4 /
                          std::max(realSec, 1e-9));
            const auto next = static_cast<IterationCount>(
                static_cast<double>(iters) * std::max(mult, 1.2));
            iters = std::min(kMaxIters, std::max(iters + 1, next));
        }
    }

    static std::vector<RunResult>
    runAll()
    {
        std::vector<RunResult> results;
        std::regex filter(g_options.filter.empty() ? "."
                                                   : g_options.filter);
        std::int64_t family = 0;
        for (const Benchmark *b : registry()) {
            std::int64_t instance = 0;
            const int variants = std::max(b->nargs_, 1);
            for (int i = 0; i < variants; ++i) {
                const bool hasArg = b->nargs_ > 0;
                const std::int64_t arg = hasArg ? b->args_[i] : 0;
                std::string name = b->name_;
                if (hasArg)
                    name += "/" + std::to_string(arg);
                if (!std::regex_search(name, filter))
                    continue;
                RunResult res = runOne(*b, arg, hasArg);
                res.familyIndex = family;
                res.instanceIndex = instance++;
                results.push_back(std::move(res));
            }
            ++family;
        }
        return results;
    }

    static void
    renderConsole(const std::vector<RunResult> &results, FILE *to)
    {
        std::size_t width = 10;
        for (const RunResult &r : results)
            width = std::max(width, r.name.size());
        std::fprintf(to, "%-*s %15s %15s %12s\n",
                     static_cast<int>(width), "Benchmark", "Time",
                     "CPU", "Iterations");
        for (const RunResult &r : results) {
            const double scale = unitScale(r.unit);
            std::string extra;
            if (r.hasItems)
                extra += " items_per_second=" +
                         std::to_string(r.itemsPerSecond);
            for (const auto &kv : r.counters)
                extra += " " + kv.first + "=" +
                         std::to_string(kv.second.value);
            std::fprintf(to, "%-*s %13.1f %s %13.1f %s %12lld%s\n",
                         static_cast<int>(width), r.name.c_str(),
                         r.realNsPerIter * scale, unitName(r.unit),
                         r.cpuNsPerIter * scale, unitName(r.unit),
                         static_cast<long long>(r.iterations),
                         extra.c_str());
        }
    }

    static std::string
    renderJson(const std::vector<RunResult> &results)
    {
        std::ostringstream os;
        char date[64] = "1970-01-01T00:00:00+00:00";
        const std::time_t t = std::time(nullptr);
        std::tm tm{};
        if (gmtime_r(&t, &tm))
            std::strftime(date, sizeof date, "%Y-%m-%dT%H:%M:%S+00:00",
                          &tm);
        char host[256] = "?";
        gethostname(host, sizeof host - 1);
        double load[3] = {0, 0, 0};
        getloadavg(load, 3);

        os << "{\n  \"context\": {\n";
        os << "    \"date\": \"" << date << "\",\n";
        os << "    \"host_name\": \"" << jsonEscape(host) << "\",\n";
        os << "    \"executable\": \"" << jsonEscape(g_executable)
           << "\",\n";
        os << "    \"num_cpus\": " << sysconf(_SC_NPROCESSORS_ONLN)
           << ",\n";
        os << "    \"mhz_per_cpu\": " << cpuMhz() << ",\n";
        os << "    \"cpu_scaling_enabled\": false,\n";
        os << "    \"caches\": [],\n";
        os << "    \"load_avg\": [" << fmtDouble(load[0]) << ","
           << fmtDouble(load[1]) << "," << fmtDouble(load[2])
           << "],\n";
#ifdef NDEBUG
        os << "    \"library_build_type\": \"release\"";
#else
        os << "    \"library_build_type\": \"debug\"";
#endif
        for (const auto &kv : g_customContext)
            os << ",\n    \"" << jsonEscape(kv.first) << "\": \""
               << jsonEscape(kv.second) << "\"";
        os << "\n  },\n  \"benchmarks\": [\n";
        for (std::size_t i = 0; i < results.size(); ++i) {
            const RunResult &r = results[i];
            const double scale = unitScale(r.unit);
            os << "    {\n";
            os << "      \"name\": \"" << jsonEscape(r.name)
               << "\",\n";
            os << "      \"family_index\": " << r.familyIndex
               << ",\n";
            os << "      \"per_family_instance_index\": "
               << r.instanceIndex << ",\n";
            os << "      \"run_name\": \"" << jsonEscape(r.name)
               << "\",\n";
            os << "      \"run_type\": \"iteration\",\n";
            os << "      \"repetitions\": 1,\n";
            os << "      \"repetition_index\": 0,\n";
            os << "      \"threads\": 1,\n";
            os << "      \"iterations\": " << r.iterations << ",\n";
            os << "      \"real_time\": "
               << fmtDouble(r.realNsPerIter * scale) << ",\n";
            os << "      \"cpu_time\": "
               << fmtDouble(r.cpuNsPerIter * scale) << ",\n";
            os << "      \"time_unit\": \"" << unitName(r.unit)
               << "\"";
            for (const auto &kv : r.counters)
                os << ",\n      \"" << jsonEscape(kv.first)
                   << "\": " << fmtDouble(kv.second.value);
            if (r.hasItems)
                os << ",\n      \"items_per_second\": "
                   << fmtDouble(r.itemsPerSecond);
            os << "\n    }" << (i + 1 < results.size() ? "," : "")
               << "\n";
        }
        os << "  ]\n}\n";
        return os.str();
    }

  private:
    static long
    cpuMhz()
    {
        std::ifstream in("/proc/cpuinfo");
        std::string line;
        while (std::getline(in, line)) {
            if (line.rfind("cpu MHz", 0) == 0) {
                const std::size_t colon = line.find(':');
                if (colon != std::string::npos)
                    return std::lround(
                        std::strtod(line.c_str() + colon + 1,
                                    nullptr));
            }
        }
        return 0;
    }
};

} // namespace internal

State::State(IterationCount maxIterations, std::int64_t arg,
             bool hasArg)
    : maxIterations_(maxIterations), arg_(arg), hasArg_(hasArg)
{
}

std::int64_t
State::range(std::size_t i) const
{
    (void)i;
    if (!hasArg_) {
        std::fprintf(stderr,
                     "k2bench: State::range() without ->Arg()\n");
        std::abort();
    }
    return arg_;
}

void
State::startRun()
{
    realNs_ = cpuNs_ = 0.0;
    timing_ = true;
    cpuStart_ = internal::nowCpuNs();
    realStart_ = internal::nowRealNs();
}

void
State::finishRun()
{
    if (timing_)
        PauseTiming();
}

void
State::PauseTiming()
{
    const double realEnd = internal::nowRealNs();
    const double cpuEnd = internal::nowCpuNs();
    realNs_ += realEnd - realStart_;
    cpuNs_ += cpuEnd - cpuStart_;
    timing_ = false;
}

void
State::ResumeTiming()
{
    timing_ = true;
    cpuStart_ = internal::nowCpuNs();
    realStart_ = internal::nowRealNs();
}

void
AddCustomContext(const std::string &key, const std::string &value)
{
    internal::g_customContext.emplace_back(key, value);
}

void
Initialize(int *argc, char **argv)
{
    if (*argc > 0)
        internal::g_executable = argv[0];
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
        const std::string arg = argv[i];
        const auto eat = [&arg](const char *prefix,
                                std::string &into) {
            const std::size_t n = std::strlen(prefix);
            if (arg.compare(0, n, prefix) != 0)
                return false;
            into = arg.substr(n);
            return true;
        };
        std::string v;
        if (eat("--benchmark_format=", internal::g_options.format) ||
            eat("--benchmark_out=", internal::g_options.out) ||
            eat("--benchmark_out_format=",
                internal::g_options.outFormat) ||
            eat("--benchmark_filter=", internal::g_options.filter))
            continue;
        if (eat("--benchmark_min_time=", v)) {
            internal::g_options.minTime =
                std::strtod(v.c_str(), nullptr);
            if (!(internal::g_options.minTime > 0))
                internal::g_options.minTime = 0.5;
            continue;
        }
        argv[out++] = argv[i];
    }
    *argc = out;
}

bool
ReportUnrecognizedArguments(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        std::fprintf(stderr, "k2bench: unrecognized argument '%s'\n",
                     argv[i]);
    return argc > 1;
}

std::size_t
RunSpecifiedBenchmarks()
{
    const std::vector<internal::RunResult> results =
        internal::Runner::runAll();
    if (internal::g_options.format == "json")
        std::fputs(internal::Runner::renderJson(results).c_str(),
                   stdout);
    else
        internal::Runner::renderConsole(results, stdout);
    if (!internal::g_options.out.empty()) {
        std::ofstream os(internal::g_options.out,
                         std::ios::binary);
        os << internal::Runner::renderJson(results);
        if (!os.good())
            std::fprintf(stderr, "k2bench: cannot write '%s'\n",
                         internal::g_options.out.c_str());
    }
    return results.size();
}

void
Shutdown()
{
}

} // namespace benchmark
