/**
 * @file
 * Replicated shadow services: N-way replication, majority voting,
 * leader election and live handoff -- plus the reliable-mail backoff
 * schedule the protocols lean on.
 *
 * Covers the robustness acceptance scenarios: leader/follower crash
 * with and without quorum, crash during an in-flight retransmit
 * window, double-crash before the first recovery completes, a seeded
 * fuzz of crash times across replication degrees with ext2 + UDP data
 * verification, and byte-identical sweep cells across job counts and
 * warm/cold fixture modes at --replicas=3.
 */

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "fault/plan.h"
#include "obs/metrics.h"
#include "os/replica.h"
#include "os/watchdog.h"
#include "sim/log.h"
#include "workloads/sweep.h"
#include "workloads/testbed.h"
#include "workloads/warm.h"

namespace k2 {
namespace {

using kern::Thread;
using kern::ThreadKind;
using sim::Task;

std::vector<std::uint8_t>
pattern(std::size_t n, std::uint8_t seed)
{
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>(seed + i * 13);
    return v;
}

Task<void>
writeFile(wl::Testbed &tb, Thread &t, const std::string &path,
          const std::vector<std::uint8_t> &data)
{
    const auto fd = co_await tb.fs().create(t, path);
    EXPECT_GE(fd, 0);
    EXPECT_EQ(co_await tb.fs().write(
                  t, static_cast<int>(fd),
                  std::span<const std::uint8_t>(data)),
              static_cast<std::int64_t>(data.size()));
    co_await tb.fs().close(t, static_cast<int>(fd));
}

Task<void>
verifyFile(wl::Testbed &tb, Thread &t, const std::string &path,
           const std::vector<std::uint8_t> &want)
{
    const auto fd = co_await tb.fs().open(t, path);
    EXPECT_GE(fd, 0);
    std::vector<std::uint8_t> got(want.size(), 0);
    EXPECT_EQ(co_await tb.fs().read(t, static_cast<int>(fd),
                                    std::span<std::uint8_t>(got)),
              static_cast<std::int64_t>(want.size()));
    EXPECT_EQ(got, want);
    co_await tb.fs().close(t, static_cast<int>(fd));
}

Task<void>
udpRoundtrip(wl::Testbed &tb, Thread &t, int port,
             const std::vector<std::uint8_t> &msg)
{
    auto &udp = tb.udp();
    const auto tx = co_await udp.socket(t);
    const auto rx = co_await udp.socket(t);
    co_await udp.bind(t, static_cast<int>(rx), port);
    EXPECT_EQ(co_await udp.sendTo(t, static_cast<int>(tx), port,
                                  std::span<const std::uint8_t>(msg)),
              static_cast<std::int64_t>(msg.size()));
    std::vector<std::uint8_t> got(msg.size(), 0);
    EXPECT_EQ(co_await udp.recvFrom(t, static_cast<int>(rx), got),
              static_cast<std::int64_t>(msg.size()));
    EXPECT_EQ(got, msg);
    co_await udp.close(t, static_cast<int>(tx));
    co_await udp.close(t, static_cast<int>(rx));
}

std::uint64_t
counterOf(const obs::MetricsSnapshot &snap, const std::string &name)
{
    const obs::MetricValue *v = snap.find(name);
    return v ? v->count : 0;
}

/**
 * Spawn a no-op shadowed request every @p period until @p until.
 * Keeps tracked fan-out mail flowing so silent replicas are suspected,
 * and exercises the degraded path under quorum loss. The NightWatch
 * threads go into their own sink process: NW gating suspends the
 * *owning* process's Normal threads against the shadow kernel, and a
 * ticker that gated itself would stall for a dead shadow's whole
 * restart window instead of driving traffic through it.
 */
void
spawnTicker(wl::Testbed &tb, sim::Duration period, sim::Time until,
            int *served = nullptr)
{
    auto &sink = tb.sys().createProcess("nw-sink");
    tb.sys().spawnNormal(
        tb.proc(), "ticker", [&tb, &sink, period, until, served](
            Thread &t) -> Task<void> {
            while (t.kernel().engine().now() < until) {
                tb.sys().spawnNightWatch(
                    sink, "tick", [served](Thread &) -> Task<void> {
                        if (served)
                            ++*served;
                        co_return;
                    });
                co_await t.sleep(period);
            }
        });
}

// ---------------------------------------------------------------------
// ReliableMail retransmit backoff: pin the deterministic schedule.
// ---------------------------------------------------------------------

/**
 * With the peer crashed, one tracked mail's retransmits must follow
 * the doubling schedule 300, 600, 1200, 2400, 2400 us: each gap
 * doubles from the base RTO up to the 8x cap, then holds.
 */
TEST(ReliableMailBackoff, PinsExponentialSchedule)
{
    os::K2Config cfg;
    cfg.soc.costs.inactiveTimeout = 0;
    // Push the DSM's own fault-timeout resend far out so the ARQ's
    // retransmit stream is the only tracked traffic in the window.
    cfg.recovery.dsmRetryTimeout = sim::msec(50);
    cfg.recovery.dsmRetryMax = sim::msec(100);
    fault::FaultSpec crash;
    crash.kind = fault::FaultKind::DomainCrash;
    crash.domain = soc::kWeakDomain;
    crash.at = sim::msec(9);
    cfg.faults.add(crash);
    auto tb = wl::Testbed::makeK2(cfg);

    const auto data = pattern(4096, 11);
    auto &proc2 = tb.sys().createProcess("shadow-writer");
    tb.k2()->shadowKernel().spawnThread(
        &proc2, "writer", ThreadKind::Normal,
        [&](Thread &t) -> Task<void> {
            // Finishes well before the crash; leaves the file's pages
            // shadow-owned so the reader's first touch mails the dead
            // kernel.
            co_await writeFile(tb, t, "/backoff", data);
        });
    tb.sys().spawnNormal(tb.proc(), "reader",
                         [&](Thread &t) -> Task<void> {
                             co_await t.sleep(sim::msec(10));
                             co_await verifyFile(tb, t, "/backoff",
                                                 data);
                         });

    // Sample retransmits() on a fine grid and record when it bumps;
    // the gaps between bumps are the backoff schedule.
    std::vector<sim::Time> bumps;
    tb.sys().spawnNormal(
        tb.proc(), "poll", [&](Thread &t) -> Task<void> {
            std::uint64_t last = tb.k2()->reliableMail()->retransmits();
            const sim::Time limit =
                t.kernel().engine().now() + sim::msec(19);
            while (bumps.size() < 5 &&
                   t.kernel().engine().now() < limit) {
                co_await t.sleep(sim::usec(20));
                const std::uint64_t now =
                    tb.k2()->reliableMail()->retransmits();
                if (now > last) {
                    bumps.push_back(t.kernel().engine().now());
                    last = now;
                }
            }
        });
    tb.engine().run();

    ASSERT_EQ(bumps.size(), 5u);
    const double gap1 = sim::toUsec(bumps[1] - bumps[0]);
    const double gap2 = sim::toUsec(bumps[2] - bumps[1]);
    const double gap3 = sim::toUsec(bumps[3] - bumps[2]);
    const double gap4 = sim::toUsec(bumps[4] - bumps[3]);
    // 20 us sampling grid plus the per-retransmit charge time.
    EXPECT_NEAR(gap1, 600.0, 50.0);
    EXPECT_NEAR(gap2, 1200.0, 50.0);
    EXPECT_NEAR(gap3, 2400.0, 50.0);
    EXPECT_NEAR(gap4, 2400.0, 50.0); // Capped at 8x the base RTO.
    EXPECT_EQ(tb.k2()->reliableMail()->giveups(), 0u);
}

// ---------------------------------------------------------------------
// Fan-out and voting under no faults.
// ---------------------------------------------------------------------

TEST(Replica, FanoutAndUnanimousVotes)
{
    os::K2Config cfg;
    cfg.soc.costs.inactiveTimeout = 0;
    cfg.replicas = 3;
    auto tb = wl::Testbed::makeK2(cfg);
    ASSERT_NE(tb.k2()->replicaGroup(), nullptr);
    ASSERT_NE(tb.k2()->replicaDsm(), nullptr);
    EXPECT_EQ(tb.k2()->replicas(), 3u);
    EXPECT_EQ(tb.sys().kernels().size(), 4u);

    int served = 0;
    tb.sys().spawnNormal(
        tb.proc(), "burst", [&](Thread &t) -> Task<void> {
            for (int i = 0; i < 5; ++i) {
                tb.sys().spawnNightWatch(
                    tb.proc(), "svc", [&](Thread &) -> Task<void> {
                        ++served;
                        co_return;
                    });
                co_await t.sleep(sim::msec(1));
            }
        });
    tb.engine().run();

    os::ReplicaGroup *g = tb.k2()->replicaGroup();
    EXPECT_EQ(served, 5);
    EXPECT_EQ(g->requests(), 5u);
    EXPECT_EQ(g->votesReceived(), 15u); // 3 ballots per request.
    EXPECT_EQ(g->voteMismatches(), 0u);
    EXPECT_EQ(g->voteNoQuorum(), 0u);
    EXPECT_EQ(g->elections(), 0u);
    EXPECT_EQ(g->leaderReplica(), 0u);
    EXPECT_TRUE(g->quorumHeld());

    obs::MetricsRegistry reg;
    tb.registerMetrics(reg);
    const obs::MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(counterOf(snap, "os.replica.requests"), 5u);
    EXPECT_EQ(counterOf(snap, "os.replica.votes"), 15u);
    EXPECT_NE(snap.find("os.ndsm.messages"), nullptr);
}

// ---------------------------------------------------------------------
// Leader crash: election, handoff, service stays available.
// ---------------------------------------------------------------------

TEST(Replica, LeaderCrashElectsNewLeaderWithoutDegrading)
{
    os::K2Config cfg;
    cfg.soc.costs.inactiveTimeout = 0;
    fault::FaultSpec crash;
    crash.kind = fault::FaultKind::DomainCrash;
    crash.domain = soc::kWeakDomain; // Replica 0, the initial leader.
    crash.at = sim::msec(20);
    cfg.faults.add(crash);
    cfg.replicas = 3;
    auto tb = wl::Testbed::makeK2(cfg);

    const auto data = pattern(8192, 42);
    auto &proc2 = tb.sys().createProcess("shadow-writer");
    tb.k2()->shadowKernel().spawnThread(
        &proc2, "writer", ThreadKind::Normal,
        [&](Thread &t) -> Task<void> {
            co_await writeFile(tb, t, "/ha", data);
        });
    tb.sys().spawnNormal(tb.proc(), "reader",
                         [&](Thread &t) -> Task<void> {
                             co_await t.sleep(sim::msec(25));
                             co_await verifyFile(tb, t, "/ha", data);
                         });

    // Once the leader is declared dead, a shadowed request must be
    // served on the elected successor -- not degraded to the strong
    // domain.
    std::string servedOn;
    tb.sys().spawnNormal(
        tb.proc(), "probe", [&](Thread &t) -> Task<void> {
            const sim::Time limit =
                t.kernel().engine().now() + sim::msec(200);
            while (!tb.k2()->watchdog()->replicaDown(0) &&
                   t.kernel().engine().now() < limit)
                co_await t.sleep(sim::usec(250));
            if (!tb.k2()->watchdog()->replicaDown(0))
                co_return;
            co_await t.sleep(sim::msec(1)); // Let the election settle.
            tb.sys().spawnNightWatch(
                tb.proc(), "handoff", [&](Thread &t2) -> Task<void> {
                    servedOn = t2.kernel().name();
                    co_return;
                });
        });
    tb.engine().run();

    os::ReplicaGroup *g = tb.k2()->replicaGroup();
    EXPECT_EQ(tb.k2()->watchdog()->crashesDetected(), 1u);
    EXPECT_EQ(tb.k2()->watchdog()->restarts(), 1u);
    EXPECT_EQ(g->elections(), 1u);
    EXPECT_EQ(g->term(), 1u);
    EXPECT_EQ(g->leaderReplica(), 1u);
    EXPECT_EQ(g->rejoins(), 1u);
    EXPECT_EQ(g->resyncs(), 1u);
    EXPECT_EQ(g->quorumLosses(), 0u);
    EXPECT_EQ(g->degradedSpawns(), 0u);
    EXPECT_EQ(servedOn, "shadow2"); // The elected replica's kernel.
    EXPECT_TRUE(g->quorumHeld());
    EXPECT_TRUE(g->replicaAlive(0));
    EXPECT_EQ(tb.k2()->reliableMail()->giveups(), 0u);
}

TEST(Replica, FollowerCrashNeedsNoElection)
{
    os::K2Config cfg;
    cfg.soc.costs.inactiveTimeout = 0;
    fault::FaultSpec crash;
    crash.kind = fault::FaultKind::DomainCrash;
    crash.domain = 2; // Replica 1's cloned weak domain.
    crash.at = sim::msec(20);
    cfg.faults.add(crash);
    cfg.replicas = 3;
    auto tb = wl::Testbed::makeK2(cfg);

    // The fan-out traffic is what exposes the silent follower.
    spawnTicker(tb, sim::msec(2), sim::msec(60));
    tb.engine().run();

    os::ReplicaGroup *g = tb.k2()->replicaGroup();
    EXPECT_EQ(tb.k2()->watchdog()->crashesDetected(), 1u);
    EXPECT_EQ(g->elections(), 0u);
    EXPECT_EQ(g->leaderReplica(), 0u);
    EXPECT_EQ(g->rejoins(), 1u);
    EXPECT_EQ(g->quorumLosses(), 0u);
    EXPECT_EQ(g->degradedSpawns(), 0u);
    EXPECT_GE(g->votesAbsent(), 1u); // Rounds during the down window.
    EXPECT_TRUE(g->replicaAlive(1));
    EXPECT_TRUE(g->quorumHeld());
}

TEST(Replica, TwoReplicaQuorumLossDegrades)
{
    os::K2Config cfg;
    cfg.soc.costs.inactiveTimeout = 0;
    fault::FaultSpec crash;
    crash.kind = fault::FaultKind::DomainCrash;
    crash.domain = soc::kWeakDomain;
    crash.at = sim::msec(20);
    cfg.faults.add(crash);
    cfg.replicas = 2; // Quorum = 2: one crash loses it.
    auto tb = wl::Testbed::makeK2(cfg);

    spawnTicker(tb, sim::msec(2), sim::msec(60));
    tb.engine().run();

    os::ReplicaGroup *g = tb.k2()->replicaGroup();
    EXPECT_EQ(tb.k2()->watchdog()->crashesDetected(), 1u);
    EXPECT_EQ(g->elections(), 1u);
    EXPECT_EQ(g->leaderReplica(), 1u);
    EXPECT_EQ(g->quorumLosses(), 1u);
    EXPECT_GE(g->degradedSpawns(), 1u); // Served on the strong domain.
    EXPECT_EQ(g->rejoins(), 1u);
    EXPECT_TRUE(g->quorumHeld()); // Restored after the restart.
}

// ---------------------------------------------------------------------
// Crash timing edge cases.
// ---------------------------------------------------------------------

/** The crash lands while a tracked mail is mid-retransmit: the ARQ
 *  window must ride through detection, election and page handoff. */
TEST(Replica, CrashDuringInFlightRetransmitWindow)
{
    os::K2Config cfg;
    cfg.soc.costs.inactiveTimeout = 0;
    fault::FaultSpec drop;
    drop.kind = fault::FaultKind::MailDrop;
    drop.at = sim::msec(9); // One-shot: the reader's first mail.
    cfg.faults.add(drop);
    fault::FaultSpec crash;
    crash.kind = fault::FaultKind::DomainCrash;
    crash.domain = soc::kWeakDomain;
    crash.at = sim::usec(10200); // Inside the first retransmit window.
    cfg.faults.add(crash);
    cfg.replicas = 3;
    auto tb = wl::Testbed::makeK2(cfg);

    const auto data = pattern(8192, 5);
    auto &proc2 = tb.sys().createProcess("shadow-writer");
    tb.k2()->shadowKernel().spawnThread(
        &proc2, "writer", ThreadKind::Normal,
        [&](Thread &t) -> Task<void> {
            co_await writeFile(tb, t, "/window", data);
        });
    tb.sys().spawnNormal(tb.proc(), "reader",
                         [&](Thread &t) -> Task<void> {
                             co_await t.sleep(sim::msec(10));
                             co_await verifyFile(tb, t, "/window",
                                                 data);
                         });
    tb.engine().run();

    os::ReplicaGroup *g = tb.k2()->replicaGroup();
    EXPECT_EQ(tb.k2()->watchdog()->crashesDetected(), 1u);
    EXPECT_EQ(g->elections(), 1u);
    EXPECT_EQ(g->degradedSpawns(), 0u);
    EXPECT_EQ(tb.k2()->reliableMail()->giveups(), 0u);
}

/** A second follower dies before the first finishes restarting: the
 *  group dips below quorum (degrading service to the strong domain),
 *  then recovers fully -- all without an election, since the leader
 *  stays up throughout. */
TEST(Replica, DoubleCrashBeforeRecoveryCompletes)
{
    os::K2Config cfg;
    cfg.soc.costs.inactiveTimeout = 0;
    fault::FaultSpec crash;
    crash.kind = fault::FaultKind::DomainCrash;
    crash.domain = 2; // Replica 1 (first cloned weak domain).
    crash.at = sim::msec(20);
    cfg.faults.add(crash);
    fault::FaultSpec crash2;
    crash2.kind = fault::FaultKind::DomainCrash;
    crash2.domain = 3; // Replica 2, before replica 1 is back.
    crash2.at = sim::msec(24);
    cfg.faults.add(crash2);
    cfg.replicas = 3;
    auto tb = wl::Testbed::makeK2(cfg);

    const auto data = pattern(8192, 99);
    auto &proc2 = tb.sys().createProcess("shadow-writer");
    tb.k2()->shadowKernel().spawnThread(
        &proc2, "writer", ThreadKind::Normal,
        [&](Thread &t) -> Task<void> {
            co_await writeFile(tb, t, "/double", data);
        });
    tb.sys().spawnNormal(tb.proc(), "reader",
                         [&](Thread &t) -> Task<void> {
                             co_await t.sleep(sim::msec(60));
                             co_await verifyFile(tb, t, "/double",
                                                 data);
                         });
    spawnTicker(tb, sim::msec(1), sim::msec(80));
    tb.engine().run();

    os::ReplicaGroup *g = tb.k2()->replicaGroup();
    EXPECT_EQ(tb.k2()->watchdog()->crashesDetected(), 2u);
    EXPECT_EQ(tb.k2()->watchdog()->restarts(), 2u);
    EXPECT_EQ(g->elections(), 0u); // The leader never died.
    EXPECT_EQ(g->leaderReplica(), 0u);
    EXPECT_EQ(g->rejoins(), 2u);
    EXPECT_EQ(g->quorumLosses(), 1u); // Only at the second crash.
    EXPECT_GE(g->degradedSpawns(), 1u);
    EXPECT_TRUE(g->quorumHeld());
    EXPECT_TRUE(g->replicaAlive(1));
    EXPECT_TRUE(g->replicaAlive(2));
    EXPECT_EQ(tb.k2()->reliableMail()->giveups(), 0u);
}

// ---------------------------------------------------------------------
// Seeded fuzz: crash time x replication degree, data must verify.
// ---------------------------------------------------------------------

TEST(ReplicaFuzz, CrashAcrossReplicationDegrees)
{
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        for (std::size_t replicas = 1; replicas <= 3; ++replicas) {
            std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ull +
                                replicas);
            std::uniform_real_distribution<double> rate(1e-3, 2e-2);
            std::uniform_int_distribution<int> crash_ms(15, 60);

            os::K2Config cfg;
            cfg.soc.costs.inactiveTimeout = 0;
            cfg.replicas = replicas;
            cfg.faults.seed = seed;
            fault::FaultSpec s;
            s.kind = fault::FaultKind::MailDrop;
            s.p = rate(rng);
            cfg.faults.add(s);
            s.kind = fault::FaultKind::MailDuplicate;
            s.p = rate(rng);
            cfg.faults.add(s);
            fault::FaultSpec crash;
            crash.kind = fault::FaultKind::DomainCrash;
            crash.domain = soc::kWeakDomain;
            crash.at = sim::msec(crash_ms(rng));
            cfg.faults.add(crash);
            SCOPED_TRACE("seed=" + std::to_string(seed) +
                         " replicas=" + std::to_string(replicas) +
                         " plan=" + cfg.faults.summary());
            auto tb = wl::Testbed::makeK2(cfg);

            const auto f0 = pattern(
                4096, static_cast<std::uint8_t>(seed * 7 + replicas));
            const auto f1 = pattern(
                8192, static_cast<std::uint8_t>(seed * 11 + replicas));
            const auto payload = pattern(
                6000, static_cast<std::uint8_t>(seed * 31));

            auto &proc2 = tb.sys().createProcess("fuzz-shadow");
            tb.k2()->shadowKernel().spawnThread(
                &proc2, "writer", ThreadKind::Normal,
                [&](Thread &t) -> Task<void> {
                    co_await writeFile(tb, t, "/r0", f0);
                    co_await writeFile(tb, t, "/r1", f1);
                    co_await udpRoundtrip(tb, t, 6100, payload);
                });
            tb.sys().spawnNormal(
                tb.proc(), "reader", [&](Thread &t) -> Task<void> {
                    co_await t.sleep(sim::msec(70));
                    co_await verifyFile(tb, t, "/r0", f0);
                    co_await verifyFile(tb, t, "/r1", f1);
                    co_await udpRoundtrip(tb, t, 6101, payload);
                });
            spawnTicker(tb, sim::msec(5), sim::msec(70));
            tb.engine().run();

            EXPECT_EQ(tb.k2()->reliableMail()->giveups(), 0u);
            EXPECT_EQ(tb.k2()->watchdog()->crashesDetected(), 1u);
            os::ReplicaGroup *g = tb.k2()->replicaGroup();
            if (replicas == 1) {
                EXPECT_EQ(g, nullptr);
            } else {
                ASSERT_NE(g, nullptr);
                EXPECT_GE(g->elections(), 1u);
                EXPECT_TRUE(g->quorumHeld());
                if (replicas == 3) {
                    // A single crash never costs quorum at N=3: the
                    // service must not have degraded at all.
                    EXPECT_EQ(g->quorumLosses(), 0u);
                    EXPECT_EQ(g->degradedSpawns(), 0u);
                } else {
                    EXPECT_EQ(g->quorumLosses(), 1u);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Sweep determinism at --replicas=3.
// ---------------------------------------------------------------------

std::vector<std::string>
replicaSweep(unsigned jobs)
{
    wl::SweepRunner runner(jobs);
    std::vector<std::string> out(4);
    for (std::size_t i = 0; i < out.size(); ++i) {
        runner.submit([i, &out]() {
            os::K2Config cfg;
            cfg.soc.costs.inactiveTimeout = 0;
            cfg.replicas = 3;
            fault::FaultSpec drop;
            drop.kind = fault::FaultKind::MailDrop;
            drop.p = 5e-3;
            cfg.faults.add(drop);
            fault::FaultSpec crash;
            crash.kind = fault::FaultKind::DomainCrash;
            crash.domain = soc::kWeakDomain;
            crash.at = sim::msec(20);
            cfg.faults.add(crash);
            cfg.faults.seed = 100 + i;
            auto tb = wl::Testbed::makeK2(cfg);
            obs::MetricsRegistry reg;
            tb.registerMetrics(reg);
            const auto data =
                pattern(8192, static_cast<std::uint8_t>(i));
            tb.sys().spawnNormal(
                tb.proc(), "t", [&](Thread &t) -> Task<void> {
                    co_await writeFile(tb, t, "/s", data);
                    co_await t.sleep(sim::msec(40));
                    co_await verifyFile(tb, t, "/s", data);
                });
            spawnTicker(tb, sim::msec(2), sim::msec(45));
            tb.engine().run();
            out[i] = reg.snapshot().toJson() + "@" +
                     std::to_string(tb.engine().now());
        });
    }
    runner.run();
    return out;
}

TEST(ReplicaSweep, ByteIdenticalAcrossJobCounts)
{
    const auto serial = replicaSweep(1);
    EXPECT_EQ(serial, replicaSweep(4));
    EXPECT_EQ(serial, replicaSweep(13));
    for (const auto &cell : serial) {
        EXPECT_NE(cell.find("os.replica.requests"), std::string::npos);
        EXPECT_NE(cell.find("os.ndsm."), std::string::npos);
    }
}

/** One warm-forked cell must equal a cold-booted one byte for byte,
 *  including the replica-protocol counters. */
TEST(ReplicaSweep, WarmForkEqualsColdBoot)
{
    const auto makeCfg = []() {
        os::K2Config cfg;
        cfg.soc.costs.inactiveTimeout = 0;
        cfg.replicas = 3;
        fault::FaultSpec crash;
        crash.kind = fault::FaultKind::DomainCrash;
        crash.domain = soc::kWeakDomain;
        crash.at = sim::msec(5); // Fires during the boot quiesce.
        cfg.faults.add(crash);
        return cfg;
    };
    const auto runCell = [&](wl::SweepMode mode) {
        wl::Testbed &tb =
            wl::warmK2(mode, "os_replica_test:r3crash", makeCfg);
        obs::MetricsRegistry reg;
        tb.registerMetrics(reg);
        const auto data = pattern(8192, 17);
        tb.sys().spawnNormal(tb.proc(), "t",
                             [&](Thread &t) -> Task<void> {
                                 co_await writeFile(tb, t, "/w", data);
                                 co_await t.sleep(sim::msec(30));
                                 co_await verifyFile(tb, t, "/w", data);
                             });
        spawnTicker(tb, sim::msec(2), sim::msec(40));
        tb.engine().run();
        return reg.snapshot().toJson() + "@" +
               std::to_string(tb.engine().now());
    };

    const std::string cold = runCell(wl::SweepMode::Cold);
    const std::string warm1 = runCell(wl::SweepMode::Warm);
    const std::string warm2 = runCell(wl::SweepMode::Warm);
    EXPECT_EQ(cold, warm1);
    EXPECT_EQ(warm1, warm2);
    EXPECT_NE(cold.find("os.replica."), std::string::npos);
}

} // namespace
} // namespace k2
