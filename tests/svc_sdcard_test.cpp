/**
 * @file
 * Tests for the SD-card device model and the write-back block cache,
 * including ext2 running on the cached SD stack.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "baseline/linux_system.h"
#include "svc/ext2.h"
#include "svc/sdcard.h"

namespace k2::svc {
namespace {

using kern::Thread;
using sim::Task;

class SdTest : public ::testing::Test
{
  protected:
    SdTest()
    {
        baseline::LinuxConfig cfg;
        cfg.soc.costs.inactiveTimeout = 0;
        sys = std::make_unique<baseline::LinuxSystem>(cfg);
        proc = &sys->createProcess("p");
    }

    void
    run(std::function<Task<void>(Thread &)> body)
    {
        sys->spawnNormal(*proc, "t", std::move(body));
        sys->ownedEngine().run();
    }

    std::unique_ptr<baseline::LinuxSystem> sys;
    kern::Process *proc = nullptr;
};

TEST_F(SdTest, SdCardIsMuchSlowerThanRamdisk)
{
    SdCard sd(4096, 256);
    RamDisk ram(4096, 256);
    sim::Duration sd_t = 0;
    sim::Duration ram_t = 0;
    run([&](Thread &t) -> Task<void> {
        std::vector<std::uint8_t> buf(4096, 7);
        auto t0 = sys->ownedEngine().now();
        co_await sd.write(t, 0, buf);
        sd_t = sys->ownedEngine().now() - t0;
        t0 = sys->ownedEngine().now();
        co_await ram.write(t, 0, buf);
        ram_t = sys->ownedEngine().now() - t0;
    });
    // SD write: 300 us command + 4K at 8 MB/s (~512 us) >> ramdisk.
    EXPECT_GT(sd_t, sim::usec(700));
    EXPECT_LT(ram_t, sim::usec(10));
}

TEST_F(SdTest, SdCardGcPausesHitPeriodically)
{
    SdCard::Timing timing;
    timing.gcEvery = 4;
    SdCard sd(4096, 64, timing);
    run([&](Thread &t) -> Task<void> {
        std::vector<std::uint8_t> buf(4096, 1);
        for (int i = 0; i < 12; ++i)
            co_await sd.write(t, static_cast<std::uint64_t>(i % 8),
                              buf);
    });
    EXPECT_EQ(sd.gcPauses.value(), 3u);
}

TEST_F(SdTest, SdIoBlocksInsteadOfBurningCpu)
{
    SdCard sd(4096, 64);
    run([&](Thread &t) -> Task<void> {
        std::vector<std::uint8_t> buf(4096, 1);
        const auto active0 = t.core().activeTime();
        co_await sd.read(t, 0, buf);
        // The ~500 us of card time was idle, not active.
        EXPECT_LT(t.core().activeTime() - active0, sim::usec(20));
    });
}

TEST_F(SdTest, CacheHitAvoidsTheDevice)
{
    SdCard sd(4096, 64);
    CachedBlockDevice cache(sd, 8);
    run([&](Thread &t) -> Task<void> {
        std::vector<std::uint8_t> buf(4096, 3);
        co_await cache.write(t, 5, buf);
        std::vector<std::uint8_t> back(4096);
        const auto t0 = sys->ownedEngine().now();
        co_await cache.read(t, 5, back);
        // Served from cache: microseconds, not hundreds.
        EXPECT_LT(sys->ownedEngine().now() - t0, sim::usec(30));
        EXPECT_EQ(back, buf);
    });
    EXPECT_EQ(sd.reads.value(), 0u);
    EXPECT_EQ(cache.hits.value(), 1u);
    EXPECT_EQ(cache.misses.value(), 1u); // the write's residency miss
}

TEST_F(SdTest, EvictionWritesBackDirtyBlocks)
{
    SdCard sd(4096, 64);
    CachedBlockDevice cache(sd, 4);
    run([&](Thread &t) -> Task<void> {
        std::vector<std::uint8_t> buf(4096);
        for (std::uint64_t b = 0; b < 6; ++b) {
            std::fill(buf.begin(), buf.end(),
                      static_cast<std::uint8_t>(b));
            co_await cache.write(t, b, buf);
        }
        // Blocks 0 and 1 were evicted and written back.
        EXPECT_EQ(cache.cachedBlocks(), 4u);
        EXPECT_EQ(cache.writebacks.value(), 2u);
        EXPECT_EQ(sd.writes.value(), 2u);

        // Reading an evicted block refetches the written-back data.
        std::vector<std::uint8_t> back(4096);
        co_await cache.read(t, 0, back);
        EXPECT_EQ(back[100], 0u);
        co_await cache.read(t, 1, back);
        EXPECT_EQ(back[100], 1u);
    });
}

TEST_F(SdTest, FlushPersistsEverythingDirty)
{
    SdCard sd(4096, 64);
    CachedBlockDevice cache(sd, 8);
    run([&](Thread &t) -> Task<void> {
        std::vector<std::uint8_t> buf(4096, 0xEE);
        for (std::uint64_t b = 0; b < 5; ++b)
            co_await cache.write(t, b, buf);
        EXPECT_EQ(cache.dirtyBlocks(), 5u);
        co_await cache.flush(t);
        EXPECT_EQ(cache.dirtyBlocks(), 0u);
        EXPECT_EQ(sd.writes.value(), 5u);
        // Clean blocks are not rewritten on a second flush.
        co_await cache.flush(t);
        EXPECT_EQ(sd.writes.value(), 5u);
    });
}

TEST_F(SdTest, Ext2WorksOnCachedSdCard)
{
    SdCard sd(Ext2Fs::kBlockBytes, 4096);
    CachedBlockDevice cache(sd, 64);
    Ext2Fs fs(*sys, cache);
    run([&](Thread &t) -> Task<void> {
        EXPECT_EQ(co_await fs.mkfs(t), FsStatus::Ok);
        const std::int64_t fd = co_await fs.create(t, "/on-sd");
        EXPECT_GE(fd, 0);
        std::vector<std::uint8_t> data(20000);
        std::iota(data.begin(), data.end(), 0);
        EXPECT_EQ(co_await fs.write(t, static_cast<int>(fd), data),
                  20000);
        co_await fs.seek(t, static_cast<int>(fd), 0);
        std::vector<std::uint8_t> back(20000);
        EXPECT_EQ(co_await fs.read(t, static_cast<int>(fd), back),
                  20000);
        EXPECT_EQ(back, data);
        co_await fs.close(t, static_cast<int>(fd));
        co_await cache.flush(t);
    });
    EXPECT_GT(cache.hits.value(), 0u);
}

TEST_F(SdTest, CacheSpeedsUpMetadataHeavyWorkloads)
{
    // The same fs workload with and without the cache: the cached
    // stack must be much faster because the superblock and bitmaps
    // are re-read constantly.
    auto workload = [this](Ext2Fs &fs) -> sim::Duration {
        sim::Time t0 = 0, t1 = 0;
        run([&](Thread &t) -> Task<void> {
            co_await fs.mkfs(t);
            t0 = sys->ownedEngine().now();
            std::vector<std::uint8_t> buf(4096, 1);
            for (int i = 0; i < 8; ++i) {
                const std::int64_t fd = co_await fs.create(
                    t, "/f" + std::to_string(i));
                co_await fs.write(t, static_cast<int>(fd), buf);
                co_await fs.close(t, static_cast<int>(fd));
            }
            t1 = sys->ownedEngine().now();
        });
        return t1 - t0;
    };

    SdCard raw_sd(Ext2Fs::kBlockBytes, 4096);
    Ext2Fs raw_fs(*sys, raw_sd);
    const auto raw_time = workload(raw_fs);

    SdCard sd(Ext2Fs::kBlockBytes, 4096);
    CachedBlockDevice cache(sd, 128);
    Ext2Fs cached_fs(*sys, cache);
    const auto cached_time = workload(cached_fs);

    EXPECT_LT(cached_time, raw_time / 3);
}

} // namespace
} // namespace k2::svc
