/**
 * @file
 * Tests for the tracing subsystem: enable/disable masks, ring-buffer
 * rotation, category filtering, and the OS components' emit sites.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/trace.h"
#include "workloads/testbed.h"

namespace k2 {
namespace {

using kern::Thread;
using sim::Task;
using sim::TraceCat;
using sim::Tracer;

TEST(Tracer, DisabledByDefaultAndCheap)
{
    Tracer tr;
    EXPECT_FALSE(tr.on(TraceCat::Sched));
    tr.record(0, TraceCat::Sched, "ignored");
    EXPECT_EQ(tr.emitted(), 0u);
    EXPECT_TRUE(tr.records().empty());
}

TEST(Tracer, MaskControlsCategories)
{
    Tracer tr;
    tr.enable(traceMask(TraceCat::Dsm) | traceMask(TraceCat::Nw));
    EXPECT_TRUE(tr.on(TraceCat::Dsm));
    EXPECT_TRUE(tr.on(TraceCat::Nw));
    EXPECT_FALSE(tr.on(TraceCat::Irq));
    tr.record(1, TraceCat::Dsm, "a");
    tr.record(2, TraceCat::Irq, "b");
    EXPECT_EQ(tr.emitted(), 1u);
    tr.disable(traceMask(TraceCat::Dsm));
    tr.record(3, TraceCat::Dsm, "c");
    EXPECT_EQ(tr.emitted(), 1u);
}

TEST(Tracer, RingBufferRotates)
{
    Tracer tr(4);
    tr.enable(sim::kTraceAll);
    for (int i = 0; i < 10; ++i)
        tr.record(static_cast<sim::Time>(i), TraceCat::Sched,
                  "r" + std::to_string(i));
    EXPECT_EQ(tr.emitted(), 10u);
    EXPECT_EQ(tr.dropped(), 6u);
    ASSERT_EQ(tr.records().size(), 4u);
    EXPECT_EQ(tr.records().front().text, "r6");
    EXPECT_EQ(tr.records().back().text, "r9");
}

TEST(Tracer, DumpRendersOneLinePerRecord)
{
    Tracer tr;
    tr.enable(sim::kTraceAll);
    tr.record(sim::usec(5), TraceCat::Mail, "hello");
    std::ostringstream os;
    tr.dump(os);
    EXPECT_NE(os.str().find("[mail] hello"), std::string::npos);
}

TEST(Tracer, OsComponentsEmitOnTheirTransitions)
{
    os::K2Config cfg;
    cfg.soc.costs.inactiveTimeout = 0;
    auto tb = wl::Testbed::makeK2(cfg);
    tb.engine().tracer().enable(sim::kTraceAll);

    // One NightWatch + Normal interaction with a DSM-touching service
    // exercises sched, mail, dsm, and nw categories.
    tb.sys().spawnNightWatch(tb.proc(), "nw",
                             [&](Thread &t) -> Task<void> {
                                 co_await tb.dma().transfer(t, 4096);
                             });
    tb.sys().spawnNormal(tb.proc(), "fg",
                         [&](Thread &t) -> Task<void> {
                             co_await t.exec(35000);
                         });
    tb.engine().run();

    const auto &tr = tb.engine().tracer();
    EXPECT_GT(tr.ofCategory(TraceCat::Sched).size(), 0u);
    EXPECT_GT(tr.ofCategory(TraceCat::Mail).size(), 0u);
    EXPECT_GT(tr.ofCategory(TraceCat::Dsm).size(), 0u);
    EXPECT_GT(tr.ofCategory(TraceCat::Nw).size(), 0u);

    // A specific, human-readable record exists.
    bool saw_dispatch = false;
    for (const auto &r : tr.records()) {
        if (r.text.find("dispatch 'fg'") != std::string::npos)
            saw_dispatch = true;
    }
    EXPECT_TRUE(saw_dispatch);

    tb.engine().tracer().clear();
    EXPECT_TRUE(tb.engine().tracer().records().empty());
}

TEST(Tracer, IrqRerouteEmits)
{
    auto tb = wl::Testbed::makeK2(); // default 5 s gating
    tb.engine().tracer().enable(traceMask(TraceCat::Irq));
    tb.sys().spawnNormal(tb.proc(), "t",
                         [&](Thread &t) -> Task<void> {
                             co_await t.exec(1000);
                         });
    tb.engine().run(); // strong domain eventually gates -> reroute
    const auto irq = tb.engine().tracer().ofCategory(TraceCat::Irq);
    ASSERT_GT(irq.size(), 0u);
    EXPECT_NE(irq.back().text.find("rerouted to weak"),
              std::string::npos);
}

} // namespace
} // namespace k2
