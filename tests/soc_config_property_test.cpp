/**
 * @file
 * Property tests for platform configurations and the address-space
 * layout: the Figure-1 efficiency trend, config invariants across all
 * shipped presets, and randomized layout construction.
 */

#include <gtest/gtest.h>

#include "sim/random.h"
#include "soc/config.h"
#include "kern/layout.h"

namespace k2 {
namespace {

TEST(Fig1Property, StrongCoreEfficiencyFallsWithFrequency)
{
    // The DVFS segment of Figure 1: higher operating points buy
    // performance at *worse* energy efficiency (superlinear power).
    const auto cfg = soc::omap4Config();
    const auto &pts = cfg.domains[soc::kStrongDomain].core.points;
    for (std::size_t i = 1; i < pts.size(); ++i) {
        const double eff_lo =
            static_cast<double>(pts[i - 1].hz) / pts[i - 1].activeMw;
        const double eff_hi =
            static_cast<double>(pts[i].hz) / pts[i].activeMw;
        EXPECT_LT(eff_hi, eff_lo) << "point " << i;
        EXPECT_GT(pts[i].hz, pts[i - 1].hz);
    }
}

TEST(Fig1Property, WeakDomainBeatsEveryStrongPointOnEfficiency)
{
    const auto cfg = soc::omap4Config();
    const auto &strong = cfg.domains[soc::kStrongDomain].core;
    const auto &weak = cfg.domains[soc::kWeakDomain].core;
    const double weak_eff =
        static_cast<double>(weak.points.back().hz) * weak.instrPerCycle /
        weak.points.back().activeMw;
    for (const auto &p : strong.points) {
        const double strong_eff =
            static_cast<double>(p.hz) * strong.instrPerCycle /
            p.activeMw;
        EXPECT_GT(weak_eff, strong_eff);
    }
    // And idle is where the real gap is (drives Figure 6).
    EXPECT_GT(strong.idleMw / weak.idleMw, 5.0);
}

TEST(ConfigProperty, AllPresetsValidate)
{
    EXPECT_NO_THROW(soc::omap4Config().validate());
    EXPECT_NO_THROW(soc::threeDomainConfig().validate());
}

TEST(ConfigProperty, PresetsShareTheBaseDomains)
{
    const auto two = soc::omap4Config();
    const auto three = soc::threeDomainConfig();
    ASSERT_GE(three.domains.size(), 2u);
    EXPECT_EQ(three.domains[0].core.name, two.domains[0].core.name);
    EXPECT_EQ(three.domains[1].core.name, two.domains[1].core.name);
}

class LayoutPropertyTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(LayoutPropertyTest, RandomLayoutsKeepInvariants)
{
    sim::Rng rng(GetParam());
    for (int trial = 0; trial < 50; ++trial) {
        const std::uint64_t total = 65536 + rng.below(1 << 20);
        const std::size_t nlocals = 1 + rng.below(3);
        std::vector<std::pair<std::string, std::uint64_t>> locals;
        std::uint64_t budget = total / 2;
        for (std::size_t i = 0; i < nlocals; ++i) {
            const std::uint64_t pages = 1 + rng.below(budget / nlocals);
            locals.emplace_back("k" + std::to_string(i), pages);
        }
        kern::AddressSpaceLayout layout(4096, total, locals);

        // Locals are contiguous from 0, block-aligned, disjoint, and
        // the global region fills the rest.
        kern::Pfn expect_next = 0;
        for (std::size_t i = 0; i < layout.numLocals(); ++i) {
            const auto &r = layout.local(i).pages;
            EXPECT_EQ(r.first, expect_next);
            EXPECT_EQ(r.first % 4096, 0u);
            EXPECT_EQ(r.count % 4096, 0u);
            EXPECT_GE(r.count, locals[i].second);
            expect_next = r.end();
        }
        EXPECT_EQ(layout.global().pages.first, expect_next);
        EXPECT_EQ(layout.global().pages.end(), total);

        // The virtual mapping is a bijection over the whole space.
        for (int probe = 0; probe < 8; ++probe) {
            const kern::Pfn pfn = rng.below(total);
            EXPECT_EQ(layout.pfnOf(layout.vaddrOf(pfn)), pfn);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LayoutPropertyTest,
                         ::testing::Values(1, 9, 81));

} // namespace
} // namespace k2
