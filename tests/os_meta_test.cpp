/**
 * @file
 * Tests for the balloon drivers and the meta-level memory manager:
 * placement policy, the peer BalloonGive path, failure handling, and
 * conservation properties under randomized block traffic.
 */

#include <gtest/gtest.h>

#include "sim/random.h"
#include "os/k2_system.h"

namespace k2::os {
namespace {

using kern::PageRange;
using kern::Thread;
using kern::ThreadKind;
using sim::Task;

using BlockOwner = MetaLevelManager::BlockOwner;

class MetaTest : public ::testing::Test
{
  protected:
    MetaTest()
    {
        K2Config cfg;
        cfg.soc.costs.inactiveTimeout = 0;
        k2sys = std::make_unique<K2System>(cfg);
        proc = &k2sys->createProcess("bench");
    }

    void
    runOn(kern::Kernel &kern, Thread::Body body)
    {
        kern.spawnThread(proc, "t", ThreadKind::Normal, std::move(body));
        k2sys->ownedEngine().run();
    }

    std::uint64_t
    owned(BlockOwner who)
    {
        return k2sys->meta().blocksOwnedBy(who);
    }

    std::unique_ptr<K2System> k2sys;
    kern::Process *proc = nullptr;
};

TEST_F(MetaTest, BlockAccountingConservation)
{
    const auto total = k2sys->meta().numBlocks();
    EXPECT_EQ(owned(BlockOwner::Meta) + owned(BlockOwner::Main) +
                  owned(BlockOwner::Shadow),
              total);
}

TEST_F(MetaTest, DeflatePlacementFollowsPolicy)
{
    // Main deflates from the low end, shadow from the high end.
    std::size_t main_got = 0;
    std::size_t shadow_got = 0;
    runOn(k2sys->mainKernel(), [&](Thread &t) -> Task<void> {
        auto idx = co_await k2sys->meta().deflateOne(t);
        main_got = *idx;
    });
    runOn(k2sys->shadowKernel(), [&](Thread &t) -> Task<void> {
        auto idx = co_await k2sys->meta().deflateOne(t);
        shadow_got = *idx;
    });
    // Main got the lowest Meta-owned block (just above its initial 8);
    // shadow got the highest below its initial 2.
    EXPECT_EQ(main_got, 8u);
    EXPECT_EQ(shadow_got, k2sys->meta().numBlocks() - 3);
}

TEST_F(MetaTest, InflateReversesDeflate)
{
    const auto main_before = owned(BlockOwner::Main);
    runOn(k2sys->mainKernel(), [&](Thread &t) -> Task<void> {
        auto d = co_await k2sys->meta().deflateOne(t);
        EXPECT_TRUE(d.has_value());
        auto i = co_await k2sys->meta().inflateOne(t);
        EXPECT_TRUE(i.has_value());
        // Inflate takes from the opposite end: the same block that
        // was just deflated is the main kernel's highest.
        EXPECT_EQ(*i, *d);
    });
    EXPECT_EQ(owned(BlockOwner::Main), main_before);
    k2sys->mainKernel().pageAllocator().checkInvariants();
}

TEST_F(MetaTest, InflateSkipsUnreclaimableBlocks)
{
    // Pin unmovable pages in the main kernel's highest block, then ask
    // for an inflate: it must skip that block and take another.
    runOn(k2sys->mainKernel(), [&](Thread &t) -> Task<void> {
        auto &buddy = k2sys->mainKernel().pageAllocator();
        // Unmovable allocations land at the *low* end; force one into
        // high memory by exhausting everything else first.
        std::vector<kern::Pfn> held;
        for (;;) {
            auto r = buddy.alloc(kern::BuddyAllocator::kMaxOrder,
                                 kern::Migrate::Unmovable);
            if (!r)
                break;
            held.push_back(r->range.first);
        }
        // Free all but the highest block, which stays unmovable.
        std::sort(held.begin(), held.end());
        for (std::size_t i = 0; i + 1 < held.size(); ++i)
            buddy.free(held[i]);

        auto i = co_await k2sys->meta().inflateOne(t);
        EXPECT_TRUE(i.has_value());
        buddy.free(held.back());
        co_return;
    });
}

TEST_F(MetaTest, PeerGivePathRebalancesMemory)
{
    // Drain K2's spare blocks into the main kernel...
    runOn(k2sys->mainKernel(), [&](Thread &t) -> Task<void> {
        while (co_await k2sys->meta().deflateOne(t))
            ;
    });
    ASSERT_EQ(owned(BlockOwner::Meta), 0u);

    // ...then create pressure on the shadow kernel. kmetad must ask
    // the main kernel to inflate (BalloonGive) and then deflate the
    // returned block locally.
    const auto shadow_before = owned(BlockOwner::Shadow);
    runOn(k2sys->shadowKernel(), [&](Thread &t) -> Task<void> {
        std::vector<PageRange> held;
        for (;;) {
            PageRange r = co_await k2sys->allocPages(t, 10);
            if (r.empty())
                break;
            held.push_back(r);
        }
        // Wait for the meta manager's background rebalancing.
        co_await t.sleep(sim::msec(200));
        PageRange r = co_await k2sys->allocPages(t, 10);
        EXPECT_FALSE(r.empty())
            << "kmetad should have pulled a block from the peer";
        for (const auto &h : held)
            co_await k2sys->freePages(t, h);
    });
    EXPECT_GT(owned(BlockOwner::Shadow), shadow_before);
    EXPECT_GT(k2sys->meta().peerRequests.value(), 0u);
    EXPECT_GT(k2sys->meta().pressureEvents.value(), 0u);
}

TEST_F(MetaTest, BalloonStatsTrackOperations)
{
    runOn(k2sys->mainKernel(), [&](Thread &t) -> Task<void> {
        (void)co_await k2sys->meta().deflateOne(t);
        (void)co_await k2sys->meta().inflateOne(t);
    });
    EXPECT_EQ(k2sys->meta().balloon(0).deflates.value(), 1u);
    EXPECT_EQ(k2sys->meta().balloon(0).inflates.value(), 1u);
}

TEST_F(MetaTest, RandomBalloonTrafficConservesBlocks)
{
    sim::Rng rng(2024);
    const auto total = k2sys->meta().numBlocks();
    for (int step = 0; step < 40; ++step) {
        const bool use_main = rng.chance(0.5);
        kern::Kernel &kern = use_main ? k2sys->mainKernel()
                                      : k2sys->shadowKernel();
        const bool deflate = rng.chance(0.5);
        runOn(kern, [&](Thread &t) -> Task<void> {
            if (deflate)
                (void)co_await k2sys->meta().deflateOne(t);
            else
                (void)co_await k2sys->meta().inflateOne(t);
        });
        EXPECT_EQ(owned(BlockOwner::Meta) + owned(BlockOwner::Main) +
                      owned(BlockOwner::Shadow),
                  total);
        k2sys->mainKernel().pageAllocator().checkInvariants();
        k2sys->shadowKernel().pageAllocator().checkInvariants();
    }
}

} // namespace
} // namespace k2::os
