/**
 * @file
 * Edge-case and failure-injection tests for the shadowed services:
 * DMA channel exhaustion, UDP close-while-blocked, filesystem lock
 * contention from both kernels, and spurious interrupt handling.
 */

#include <gtest/gtest.h>

#include "workloads/testbed.h"

namespace k2::svc {
namespace {

using kern::Thread;
using kern::ThreadKind;
using sim::Task;

TEST(SvcEdge, DmaChannelExhaustionRetriesUntilFree)
{
    // A driver limited to 2 channels with 6 concurrent requesters:
    // later requesters must wait for channels and still complete.
    baseline::LinuxConfig cfg;
    cfg.soc.costs.inactiveTimeout = 0;
    baseline::LinuxSystem sys(cfg);
    DmaDriver dma(sys, 2);
    dma.attachKernel(sys.mainKernel());
    auto &proc = sys.createProcess("p");

    int done = 0;
    for (int i = 0; i < 6; ++i) {
        sys.spawnNormal(proc, "t" + std::to_string(i),
                        [&](Thread &t) -> Task<void> {
                            co_await dma.transfer(t, 128 * 1024);
                            ++done;
                        });
    }
    sys.ownedEngine().run();
    EXPECT_EQ(done, 6);
    EXPECT_EQ(dma.transfers.value(), 6u);
}

TEST(SvcEdge, SpuriousDmaInterruptIsIgnored)
{
    auto tb = wl::Testbed::makeLinux();
    // Raise the shared DMA line with no transfer outstanding: the ISR
    // reads status 0 and must do nothing.
    tb.sys().soc().raiseSharedIrq(soc::kIrqDma);
    tb.engine().run();
    EXPECT_EQ(tb.dma().irqsHandled.value(), 0u);
    EXPECT_EQ(tb.dma().transfers.value(), 0u);
}

TEST(SvcEdge, UdpCloseWakesBlockedReceiver)
{
    auto tb = wl::Testbed::makeLinux();
    std::int64_t recv_result = 0;
    std::int64_t sock = -1;

    tb.sys().spawnNormal(tb.proc(), "rx",
                         [&](Thread &t) -> Task<void> {
                             sock = co_await tb.udp().socket(t);
                             co_await tb.udp().bind(
                                 t, static_cast<int>(sock), 900);
                             recv_result = co_await tb.udp().recvFrom(
                                 t, static_cast<int>(sock));
                         });
    tb.sys().spawnNormal(tb.proc(), "closer",
                         [&](Thread &t) -> Task<void> {
                             co_await t.sleep(sim::msec(1));
                             co_await tb.udp().close(
                                 t, static_cast<int>(sock));
                         });
    tb.engine().run();
    EXPECT_EQ(recv_result,
              -static_cast<std::int64_t>(NetStatus::BadSocket));
}

TEST(SvcEdge, FsLockSerialisesCrossKernelWriters)
{
    // Two kernels appending to the same file through the shadowed fs:
    // the hardware-spinlock-augmented lock must serialise them and all
    // bytes must land.
    os::K2Config cfg;
    cfg.soc.costs.inactiveTimeout = 0;
    auto tb = wl::Testbed::makeK2(cfg);

    std::int64_t fd = -1;
    tb.sys().spawnNormal(tb.proc(), "create",
                         [&](Thread &t) -> Task<void> {
                             fd = co_await tb.fs().create(t, "/shared");
                         });
    tb.engine().run();
    ASSERT_GE(fd, 0);

    int writers_done = 0;
    auto writer = [&](Thread &t) -> Task<void> {
        std::vector<std::uint8_t> chunk(1024, 0xCD);
        for (int i = 0; i < 8; ++i)
            co_await tb.fs().write(t, static_cast<int>(fd), chunk);
        ++writers_done;
    };
    tb.sys().mainKernel().spawnThread(&tb.proc(), "w-main",
                                      ThreadKind::Normal, writer);
    auto &proc2 = tb.sys().createProcess("p2");
    tb.k2()->shadowKernel().spawnThread(&proc2, "w-shadow",
                                        ThreadKind::Normal, writer);
    tb.engine().run();
    EXPECT_EQ(writers_done, 2);

    tb.sys().spawnNormal(tb.proc(), "check",
                         [&](Thread &t) -> Task<void> {
                             auto st = co_await tb.fs().stat(t, "/shared");
                             // Both writers share one fd/offset: total
                             // is exactly 16 KB.
                             EXPECT_EQ(st->size, 16u * 1024);
                             co_await tb.fs().close(
                                 t, static_cast<int>(fd));
                         });
    tb.engine().run();
    EXPECT_GT(tb.sys().soc().spinlocks().acquisitions(), 16u);
}

TEST(SvcEdge, RamDiskOutOfRangeAsserts)
{
    auto run_oob_read = []() {
        auto tb = wl::Testbed::makeLinux();
        tb.sys().spawnNormal(
            tb.proc(), "oob", [&](Thread &t) -> Task<void> {
                std::vector<std::uint8_t> buf(Ext2Fs::kBlockBytes);
                co_await tb.disk().read(t, tb.disk().numBlocks() + 1,
                                        buf);
            });
        tb.engine().run();
    };
    EXPECT_DEATH(run_oob_read(), "assertion");
}

TEST(SvcEdge, Ext2RejectsWrongBlockSize)
{
    baseline::LinuxSystem sys;
    RamDisk small_blocks(512, 128);
    EXPECT_THROW(Ext2Fs fs(sys, small_blocks), sim::FatalError);
}

TEST(SvcEdge, DmaDriverRejectsMoreChannelsThanEngine)
{
    baseline::LinuxSystem sys;
    EXPECT_DEATH(DmaDriver(sys, 1000), "assertion");
}

} // namespace
} // namespace k2::svc
