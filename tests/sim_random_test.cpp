/**
 * @file
 * CounterRng unit + property tests. The load-bearing properties are
 * offset purity -- value i of a stream is a function of
 * (seed, key, stream, i) alone, which is what makes the fleet's
 * sharded synthesis byte-identical at any jobs count -- and the
 * fill() == at() contract that lets the SIMD batch path stand in for
 * the scalar one. Known-answer values pin the generator's output so
 * an accidental algorithm change cannot slip past as "still random".
 */

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "sim/random.h"

using k2::sim::CounterRng;

namespace {

TEST(CounterRng, KnownAnswer)
{
    // Pinned output of the (seed, key, stream) = (42, 7, 0) stream.
    // These change ONLY if the generator algorithm changes, which
    // invalidates every recorded fleet artifact -- treat a failure
    // here as an artifact-format break, not a test to update.
    const CounterRng r(42, 7, 0);
    const std::uint64_t expect[4] = {
        0x53F35A9002A7538Full,
        0x316C61D348587D36ull,
        0xF3FCF51A248B173Aull,
        0xA68F1FE2FCC887DAull,
    };
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(r.at(i), expect[i]) << i;

    EXPECT_EQ(CounterRng(0, 0, 0).at(0), 0x9555B2B43C1DB9EEull);
    EXPECT_EQ(CounterRng(0xDEADBEEFCAFEBABEull, 0xFFFFFFFFFFFFFFFFull,
                         0xFFFFFFFFu)
                  .at(1ull << 40),
              0xDAFE490672CBF956ull);
}

TEST(CounterRng, NextMatchesAt)
{
    // The sequential cursor is a view over the same pure function.
    CounterRng seq(9, 3, 1);
    const CounterRng pure(9, 3, 1);
    for (std::uint64_t i = 0; i < 100; ++i) {
        EXPECT_EQ(seq.cursor(), i);
        EXPECT_EQ(seq.next(), pure.at(i)) << i;
    }
    // seek() re-anchors anywhere, including backwards and into the
    // middle of a 128-bit block.
    seq.seek(7);
    EXPECT_EQ(seq.next(), pure.at(7));
    EXPECT_EQ(seq.next(), pure.at(8));
    seq.seek(0);
    EXPECT_EQ(seq.next(), pure.at(0));
}

TEST(CounterRng, FillMatchesAtElementwise)
{
    // fill() is the SIMD batch path; it must be bit-identical to at()
    // at every offset alignment and length, covering the odd lead-in,
    // the SSE2 4-block and AVX2 8-block bodies, and the scalar tail.
    const CounterRng r(123, 456, 2);
    std::vector<std::uint64_t> buf(4096 + 64);
    for (std::uint64_t first : {0ull, 1ull, 2ull, 7ull, 8ull, 15ull,
                                1000ull, (1ull << 33) + 5}) {
        for (std::size_t n :
             {std::size_t{0}, std::size_t{1}, std::size_t{2},
              std::size_t{3}, std::size_t{7}, std::size_t{8},
              std::size_t{9}, std::size_t{15}, std::size_t{16},
              std::size_t{17}, std::size_t{100}, std::size_t{4096}}) {
            buf.assign(n + 1, 0xABABABABABABABABull);
            r.fill(first, buf.data(), n);
            for (std::size_t i = 0; i < n; ++i)
                EXPECT_EQ(buf[i], r.at(first + i))
                    << "first=" << first << " n=" << n << " i=" << i;
            // No overrun past the requested count.
            EXPECT_EQ(buf[n], 0xABABABABABABABABull)
                << "first=" << first << " n=" << n;
        }
    }
}

TEST(CounterRng, StreamsKeysAndSeedsAreIndependent)
{
    // Distinct (seed, key, stream) triples give unrelated streams: no
    // collisions in a prefix window, and bitwise-balanced XOR between
    // neighbouring streams (a shifted or shared counter would show up
    // as heavy bit correlation).
    const CounterRng a(42, 7, 0);
    const CounterRng b(42, 7, 1);  // same device, next stream
    const CounterRng c(42, 8, 0);  // neighbouring device
    const CounterRng d(43, 7, 0);  // neighbouring seed
    constexpr std::uint64_t kN = 4096;

    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < kN; ++i) {
        seen.insert(a.at(i));
        seen.insert(b.at(i));
        seen.insert(c.at(i));
        seen.insert(d.at(i));
    }
    EXPECT_EQ(seen.size(), 4 * kN);

    for (const CounterRng *other : {&b, &c, &d}) {
        std::uint64_t ones = 0;
        for (std::uint64_t i = 0; i < kN; ++i)
            ones += static_cast<std::uint64_t>(
                __builtin_popcountll(a.at(i) ^ other->at(i)));
        const double frac =
            static_cast<double>(ones) / (64.0 * kN);
        EXPECT_NEAR(frac, 0.5, 0.01);
    }
}

TEST(CounterRng, UniformAndBelowBounds)
{
    CounterRng r(5, 5, 5);
    const CounterRng pure(5, 5, 5);
    double sum = 0.0;
    for (std::uint64_t i = 0; i < 10000; ++i) {
        const double u = pure.uniformAt(i);
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);

    // below() consumes exactly one value per draw (offset stability).
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 1000ull,
                                0xFFFFFFFFFFFFFFFFull}) {
        r.seek(0);
        for (int i = 0; i < 1000; ++i)
            EXPECT_LT(r.below(bound), bound);
        EXPECT_EQ(r.cursor(), 1000u);
    }
}

TEST(CounterRngPoisson, MomentsMatchBothSamplers)
{
    // Knuth inversion below mean 10, Hormann PTRD at or above; both
    // must land on the Poisson mean and variance.
    for (const double mean : {0.5, 3.0, 9.9, 10.0, 40.0, 400.0}) {
        CounterRng r(77, 1, 0);
        constexpr int kDraws = 20000;
        double sum = 0.0, sumSq = 0.0;
        for (int i = 0; i < kDraws; ++i) {
            const double x = static_cast<double>(poisson(r, mean));
            sum += x;
            sumSq += x * x;
        }
        const double m = sum / kDraws;
        const double var = sumSq / kDraws - m * m;
        const double se = std::sqrt(mean / kDraws);
        EXPECT_NEAR(m, mean, 6.0 * se + 0.01) << mean;
        EXPECT_NEAR(var, mean, 0.1 * mean + 0.1) << mean;
    }
}

TEST(CounterRngPoisson, DeterministicForAStreamPosition)
{
    for (const double mean : {2.0, 25.0}) {
        CounterRng a(11, 4, 1);
        CounterRng b(11, 4, 1);
        for (int i = 0; i < 100; ++i) {
            EXPECT_EQ(poisson(a, mean), poisson(b, mean));
            EXPECT_EQ(a.cursor(), b.cursor());
        }
    }
}

TEST(CounterRngPoisson, ZeroMeanDrawsZero)
{
    CounterRng r(1, 1, 0);
    EXPECT_EQ(poisson(r, 0.0), 0u);
}

} // namespace
