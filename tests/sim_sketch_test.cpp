/**
 * @file
 * QuantileSketch unit + property tests. The load-bearing property is
 * that merge() is *exactly* associative and commutative -- the fleet
 * workload's byte-identical-at-any-jobs guarantee rests on it -- so
 * the merge tests assert operator== (field-exact), not tolerance.
 */

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "sim/sketch.h"
#include "sim/stats.h"

using k2::sim::Histogram;
using k2::sim::QuantileSketch;

namespace {

// Deterministic value stream with a heavy tail, exercising many
// buckets and non-integer fixed-point rounding.
std::vector<double>
makeStream(std::uint64_t seed, std::size_t n)
{
    std::mt19937_64 gen(seed);
    std::uniform_real_distribution<double> u(0.0, 1.0);
    std::vector<double> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double x = u(gen);
        out.push_back(std::exp(14.0 * x) * (0.5 + u(gen)));
    }
    return out;
}

QuantileSketch
sketchOf(const std::vector<double> &vals)
{
    QuantileSketch s;
    for (double v : vals)
        s.sample(v);
    return s;
}

} // namespace

TEST(QuantileSketch, EmptyState)
{
    QuantileSketch s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_TRUE(std::isnan(s.min()));
    EXPECT_TRUE(std::isnan(s.max()));
    EXPECT_DOUBLE_EQ(s.percentile(0.5), 0.0);
}

TEST(QuantileSketch, BasicMoments)
{
    QuantileSketch s;
    s.sample(1.0);
    s.sample(2.0);
    s.sample(3.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.sum(), 6.0);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(QuantileSketch, PercentileMatchesHistogramSemantics)
{
    // Same nearest-rank rule as Histogram (shared implementation):
    // the median of {1, 2^20} is 1's exact value.
    QuantileSketch s;
    s.sample(1.0);
    s.sample(static_cast<double>(1u << 20));
    EXPECT_DOUBLE_EQ(s.percentile(0.5), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(1.0), static_cast<double>(1u << 20));

    Histogram h;
    h.sample(1.0);
    h.sample(static_cast<double>(1u << 20));
    for (double p : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(s.percentile(p), h.percentile(p)) << p;
}

TEST(QuantileSketch, MergeEqualsStreaming)
{
    // Splitting one stream into shards and merging the shard sketches
    // reproduces the single-stream sketch exactly.
    const auto vals = makeStream(7, 4096);
    const QuantileSketch whole = sketchOf(vals);
    for (std::size_t shards : {2u, 3u, 13u}) {
        std::vector<QuantileSketch> parts(shards);
        for (std::size_t i = 0; i < vals.size(); ++i)
            parts[i % shards].sample(vals[i]);
        QuantileSketch folded;
        for (const auto &p : parts)
            folded.merge(p);
        EXPECT_TRUE(folded == whole) << shards << " shards";
    }
}

TEST(QuantileSketch, MergeAssociativeAndCommutative)
{
    // Property test: any parenthesisation and any order of the same
    // shard set produces a field-exact identical sketch.
    const auto a = sketchOf(makeStream(1, 1000));
    const auto b = sketchOf(makeStream(2, 37));
    const auto c = sketchOf(makeStream(3, 2048));

    QuantileSketch ab_c = a;
    ab_c.merge(b);
    ab_c.merge(c);

    QuantileSketch bc = b;
    bc.merge(c);
    QuantileSketch a_bc = a;
    a_bc.merge(bc);

    QuantileSketch cba = c;
    cba.merge(b);
    cba.merge(a);

    EXPECT_TRUE(ab_c == a_bc);
    EXPECT_TRUE(ab_c == cba);

    // Randomised orders over more shards.
    std::vector<QuantileSketch> shards;
    for (std::uint64_t s = 0; s < 8; ++s)
        shards.push_back(sketchOf(makeStream(100 + s, 64 * (s + 1))));
    QuantileSketch fwd;
    for (const auto &s : shards)
        fwd.merge(s);
    std::mt19937_64 gen(99);
    for (int trial = 0; trial < 16; ++trial) {
        std::vector<std::size_t> order(shards.size());
        for (std::size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        std::shuffle(order.begin(), order.end(), gen);
        QuantileSketch perm;
        for (std::size_t i : order)
            perm.merge(shards[i]);
        EXPECT_TRUE(perm == fwd) << "trial " << trial;
    }
}

TEST(QuantileSketch, MergeWithEmptyIsIdentity)
{
    const auto s = sketchOf(makeStream(5, 100));
    QuantileSketch left = s;
    left.merge(QuantileSketch{});
    EXPECT_TRUE(left == s);
    QuantileSketch right;
    right.merge(s);
    EXPECT_TRUE(right == s);
}

TEST(QuantileSketch, HugeAndDegenerateSamplesStayFinite)
{
    QuantileSketch s;
    s.sample(1e300); // saturates the fixed-point sum, lands top bucket
    s.sample(0.0);
    EXPECT_EQ(s.count(), 2u);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 1e300);
    EXPECT_DOUBLE_EQ(s.percentile(1.0), 1e300);
    // Saturated sums still merge exactly.
    QuantileSketch t = s;
    t.merge(s);
    QuantileSketch u;
    u.merge(s);
    u.merge(s);
    EXPECT_TRUE(t == u);
}

TEST(QuantileSketch, ResetClears)
{
    auto s = sketchOf(makeStream(11, 50));
    s.reset();
    EXPECT_TRUE(s == QuantileSketch{});
    EXPECT_EQ(s.count(), 0u);
}

TEST(QuantileSketch, SampleBatchMatchesSequentialSampleExactly)
{
    // sampleBatch is the fleet hot path; its contract is field-exact
    // equality with per-element sample() in order -- including the
    // degenerate values that take its spill/saturation slow paths.
    auto vals = makeStream(21, 5000); // crosses the internal span
    // Values chosen against the batch fast path's internals: NaN and
    // out-of-int64-range inputs (cvt sentinel), values whose scaled
    // magnitude exceeds the overflow-proof partial-sum cap 2^52 but
    // still fits int64 (exact spill), the saturation threshold, zero,
    // signed zero, and subnormals.
    vals[7] = std::numeric_limits<double>::quiet_NaN();
    vals[11] = 1e300;
    vals[13] = -1e300;
    vals[17] = std::numeric_limits<double>::infinity();
    vals[19] = -std::numeric_limits<double>::infinity();
    vals[23] = 8.79e12;  // scaled ~9.2e18: between 2^52 and int64 max
    vals[29] = 9e12;     // scaled past the saturation threshold
    vals[31] = -9e12;
    vals[37] = 5e9;      // scaled ~5.2e15: just past the 2^52 cap
    vals[41] = 0.0;
    vals[43] = -0.0;
    vals[47] = 5e-324;

    for (std::size_t n : {std::size_t{0}, std::size_t{1},
                          std::size_t{2}, std::size_t{3},
                          std::size_t{53}, std::size_t{2048},
                          std::size_t{2049}, std::size_t{5000}}) {
        QuantileSketch seq, batch;
        for (std::size_t i = 0; i < n; ++i)
            seq.sample(vals[i]);
        batch.sampleBatch(vals.data(), n);
        EXPECT_TRUE(batch == seq) << "n=" << n;
    }

    // Batches append: splitting one stream into consecutive
    // sampleBatch calls of awkward lengths equals one call.
    QuantileSketch whole, split;
    whole.sampleBatch(vals.data(), vals.size());
    std::size_t at = 0;
    for (std::size_t len : {std::size_t{1}, std::size_t{7},
                            std::size_t{2048}, std::size_t{2944}}) {
        split.sampleBatch(vals.data() + at, len);
        at += len;
    }
    ASSERT_EQ(at, vals.size());
    EXPECT_TRUE(split == whole);
}

TEST(Histogram, BucketIndexMatchesReferenceOnBoundaries)
{
    // The exponent-bits bucketIndex must agree with the definitional
    // reference (truncate, then bit width) everywhere -- most
    // delicately at every power-of-two boundary and around the top
    // bucket's 2^63 clamp.
    const auto reference = [](double v) -> std::size_t {
        if (!(v >= 2.0))
            return 0;
        if (v >= 9.223372036854775808e18) // 2^63
            return Histogram::kBuckets - 1;
        const auto t = static_cast<std::uint64_t>(v);
        return std::min<std::size_t>(std::bit_width(t) - 1,
                                     Histogram::kBuckets - 1);
    };
    const auto check = [&](double v) {
        EXPECT_EQ(Histogram::bucketIndex(v), reference(v)) << v;
    };
    for (int e = 1; e < 64; ++e) {
        const double p = std::ldexp(1.0, e);
        check(std::nextafter(p, 0.0));
        check(p);
        check(std::nextafter(p, 1e300));
    }
    for (double v : {0.0, -0.0, 1.0, 1.5, 1.9999999, -5.0, 1e-300,
                     5e-324, 1e300, 3.7, 1024.001,
                     std::numeric_limits<double>::infinity(),
                     -std::numeric_limits<double>::infinity(),
                     std::numeric_limits<double>::quiet_NaN()})
        check(v);
}
