/**
 * @file
 * Unit tests for mailbox, spinlocks, interrupt controller, DMA engine,
 * MMU/TLB, and the Soc aggregate.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.h"
#include "soc/mmu.h"
#include "soc/soc.h"

namespace k2::soc {
namespace {

using sim::Engine;
using sim::Task;

class SocTest : public ::testing::Test
{
  protected:
    SocTest()
        : soc(eng, omap4Config())
    {}

    Engine eng;
    Soc soc;
};

TEST_F(SocTest, TopologyMatchesConfig)
{
    EXPECT_EQ(soc.numDomains(), 2u);
    EXPECT_EQ(soc.domain(kStrongDomain).numCores(), 2u);
    EXPECT_EQ(soc.domain(kWeakDomain).numCores(), 1u);
    EXPECT_EQ(soc.pageBytes(), 4096u);
    EXPECT_EQ(soc.numPages(), (1ull << 30) / 4096);
    // Cores get globally unique ids.
    EXPECT_EQ(soc.domain(kStrongDomain).core(0).id(), 0u);
    EXPECT_EQ(soc.domain(kStrongDomain).core(1).id(), 1u);
    EXPECT_EQ(soc.domain(kWeakDomain).core(0).id(), 2u);
}

TEST_F(SocTest, MailboxDeliversInOrderWithLatency)
{
    std::vector<std::uint32_t> got;
    soc.domain(kWeakDomain).irqCtrl().registerHandler(
        kIrqMailbox, [&](Core &) -> Task<void> {
            while (auto m = soc.mailbox().tryRead(kWeakDomain))
                got.push_back(m->word);
            co_return;
        });

    soc.mailbox().send(kStrongDomain, kWeakDomain, 111);
    soc.mailbox().send(kStrongDomain, kWeakDomain, 222);
    eng.run(sim::usec(2));
    // One-way latency is 2.5 us; nothing delivered yet.
    EXPECT_TRUE(got.empty());
    eng.run(sim::msec(1));
    EXPECT_EQ(got, (std::vector<std::uint32_t>{111, 222}));
    EXPECT_EQ(soc.mailbox().messagesDelivered(), 2u);
}

TEST(MailboxNet, TwoSendersKeepPerPairFifoOrder)
{
    // Two senders posting to the same receiver at the same instant with
    // equal latency: the contract guarantees FIFO order per
    // sender-receiver pair, and deliveries must not scramble within a
    // pair no matter how the equal-deadline transit events interleave.
    Engine eng;
    MailboxNet net(eng, 3, sim::usec(3));

    net.send(0, 2, 0xA1);
    net.send(1, 2, 0xB1);
    net.send(0, 2, 0xA2);
    net.send(1, 2, 0xB2);
    net.send(0, 2, 0xA3);
    eng.run();

    std::vector<std::uint32_t> from0, from1;
    while (auto m = net.tryRead(2)) {
        (m->from == 0 ? from0 : from1).push_back(m->word);
    }
    EXPECT_EQ(from0, (std::vector<std::uint32_t>{0xA1, 0xA2, 0xA3}));
    EXPECT_EQ(from1, (std::vector<std::uint32_t>{0xB1, 0xB2}));
}

TEST(MailboxNet, CrossSenderOrderFollowsArrivalTime)
{
    // Mails from different senders interleave by arrival time: a later
    // post from a different sender arrives later.
    Engine eng;
    MailboxNet net(eng, 3, sim::usec(3));

    net.send(0, 2, 1);
    eng.run(sim::usec(1));
    net.send(1, 2, 2);
    eng.run();

    std::vector<std::uint32_t> words;
    while (auto m = net.tryRead(2))
        words.push_back(m->word);
    EXPECT_EQ(words, (std::vector<std::uint32_t>{1, 2}));
}

TEST_F(SocTest, MailboxCarriesSenderIdentity)
{
    soc.mailbox().send(kWeakDomain, kStrongDomain, 7);
    eng.run(sim::msec(1));
    auto m = soc.mailbox().tryRead(kStrongDomain);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->from, kWeakDomain);
    EXPECT_EQ(m->word, 7u);
    EXPECT_FALSE(soc.mailbox().tryRead(kStrongDomain).has_value());
}

TEST_F(SocTest, SpinlockMutualExclusionAcrossDomains)
{
    auto &locks = soc.spinlocks();
    EXPECT_TRUE(locks.tryAcquire(0));
    EXPECT_FALSE(locks.tryAcquire(0));
    locks.release(0);
    EXPECT_TRUE(locks.tryAcquire(0));
    locks.release(0);

    // Spinning waits until the holder releases and burns active time.
    Core &spinner = soc.domain(kWeakDomain).core(0);
    ASSERT_TRUE(locks.tryAcquire(3));
    bool acquired = false;
    eng.spawn([](HwSpinlockBank &locks, Core &spinner,
                 bool *acquired) -> Task<void> {
        co_await locks.acquire(3, spinner);
        *acquired = true;
    }(locks, spinner, &acquired));
    eng.run(sim::usec(50));
    EXPECT_FALSE(acquired);
    locks.release(3);
    eng.run(sim::usec(60));
    EXPECT_TRUE(acquired);
    EXPECT_GT(spinner.activeTime(), sim::usec(40));
    EXPECT_GT(locks.contendedPolls(), 10u);
    locks.release(3);
}

TEST_F(SocTest, SharedIrqDeliversOnlyWhereUnmasked)
{
    int strong_count = 0;
    int weak_count = 0;
    soc.domain(kStrongDomain).irqCtrl().registerHandler(
        kIrqDma, [&](Core &) -> Task<void> {
            ++strong_count;
            co_return;
        });
    soc.domain(kWeakDomain).irqCtrl().registerHandler(
        kIrqDma, [&](Core &) -> Task<void> {
            ++weak_count;
            co_return;
        });
    // K2 rule: strong awake => weak masks the shared line.
    soc.domain(kWeakDomain).irqCtrl().setMasked(kIrqDma, true);

    soc.raiseSharedIrq(kIrqDma);
    eng.run(sim::msec(1));
    EXPECT_EQ(strong_count, 1);
    EXPECT_EQ(weak_count, 0);

    // Re-route: mask strong, unmask weak. The latched pending fires on
    // unmask (spurious from the weak kernel's perspective; drivers
    // check status registers).
    soc.domain(kStrongDomain).irqCtrl().setMasked(kIrqDma, true);
    soc.domain(kWeakDomain).irqCtrl().setMasked(kIrqDma, false);
    eng.run(sim::msec(2));
    const int weak_baseline = weak_count;
    soc.raiseSharedIrq(kIrqDma);
    eng.run(sim::msec(3));
    EXPECT_EQ(strong_count, 1);
    EXPECT_EQ(weak_count, weak_baseline + 1);
}

TEST_F(SocTest, IrqWakesInactiveCore)
{
    bool handled = false;
    soc.domain(kWeakDomain).irqCtrl().registerHandler(
        kIrqNet, [&](Core &core) -> Task<void> {
            handled = true;
            EXPECT_FALSE(core.isInactive());
            co_return;
        });
    eng.run(sim::sec(6));
    ASSERT_TRUE(soc.domain(kWeakDomain).allInactive());
    soc.raiseSharedIrq(kIrqNet);
    eng.run(sim::sec(7));
    EXPECT_TRUE(handled);
    EXPECT_EQ(soc.domain(kWeakDomain).core(0).wakeups(), 1u);
}

TEST_F(SocTest, DmaTransfersCompleteAndRaiseIrq)
{
    int completions = 0;
    std::uint64_t status = 0;
    soc.domain(kStrongDomain).irqCtrl().registerHandler(
        kIrqDma, [&](Core &) -> Task<void> {
            status |= soc.dma().readStatus();
            ++completions;
            co_return;
        });

    soc.dma().program(0, 1 << 20); // 1 MB
    EXPECT_TRUE(soc.dma().channelBusy(0));
    eng.run(sim::sec(1));
    EXPECT_EQ(completions, 1);
    EXPECT_EQ(status, 1u);
    EXPECT_FALSE(soc.dma().channelBusy(0));
    EXPECT_EQ(soc.dma().bytesMoved(), 1u << 20);

    // ~1 MB at 42 MB/s is ~25 ms.
    const double expect_s =
        (1 << 20) / soc.costs().dmaBandwidth +
        sim::toSec(soc.costs().dmaSetup);
    EXPECT_NEAR(sim::toSec(soc.dma().transferTime(1 << 20)), expect_s,
                1e-6);
}

TEST_F(SocTest, ConcurrentDmaSharesBandwidth)
{
    // Two 1 MB transfers queued together take about twice as long as
    // one: the engine is a single server.
    soc.dma().program(0, 1 << 20);
    soc.dma().program(1, 1 << 20);
    const auto t0 = eng.now();
    eng.run(sim::sec(1));
    // Completion order: channel 0 then channel 1; find when both done.
    EXPECT_EQ(soc.dma().transfersCompleted(), 2u);
    (void)t0;
    const auto one = soc.dma().transferTime(1 << 20);
    // Both queued at t=0; total elapsed ~= 2 * single transfer time.
    // (Verified indirectly through transferTime determinism.)
    EXPECT_GT(one, sim::msec(20));
}

TEST_F(SocTest, ProgramBusyChannelPanics)
{
    soc.dma().program(0, 4096);
    EXPECT_DEATH(soc.dma().program(0, 4096), "busy");
}

TEST(Tlb, FifoReplacement)
{
    Tlb tlb(2);
    EXPECT_FALSE(tlb.access(1));
    EXPECT_FALSE(tlb.access(2));
    EXPECT_TRUE(tlb.access(1));
    EXPECT_FALSE(tlb.access(3)); // evicts 1 (FIFO)
    EXPECT_FALSE(tlb.access(1));
    EXPECT_EQ(tlb.size(), 2u);
    tlb.flushAll();
    EXPECT_EQ(tlb.size(), 0u);
}

TEST(Tlb, InvalidateSingleEntry)
{
    Tlb tlb(4);
    tlb.access(7);
    tlb.invalidate(7);
    EXPECT_FALSE(tlb.access(7));
    // Invalidating an absent tag is a no-op.
    tlb.invalidate(100);
}

TEST(Mmu, GrainReducesTlbPressure)
{
    SocConfig cfg = omap4Config();
    Mmu mmu(cfg.domains[kStrongDomain].core);
    // 64 pages at 4K grain: 64 distinct tags, guaranteed misses with a
    // 32-entry TLB on a second pass.
    sim::Duration cost_4k = 0;
    for (int pass = 0; pass < 2; ++pass)
        for (Vpn v = 0; v < 64; ++v)
            cost_4k += mmu.translate(v, MapGrain::Page4K);

    Mmu mmu2(cfg.domains[kStrongDomain].core);
    sim::Duration cost_1m = 0;
    for (int pass = 0; pass < 2; ++pass)
        for (Vpn v = 0; v < 64; ++v)
            cost_1m += mmu2.translate(v, MapGrain::Section1M);
    EXPECT_LT(cost_1m, cost_4k / 10);
}

TEST(Mmu, ReadTrackPenaltyOnlyOnCascadedMmu)
{
    SocConfig cfg = omap4Config();
    Mmu strong(cfg.domains[kStrongDomain].core);
    Mmu weak(cfg.domains[kWeakDomain].core);
    EXPECT_EQ(strong.readTrackPenalty(), 0u);
    EXPECT_GT(weak.readTrackPenalty(), sim::usec(10));
    EXPECT_GT(weak.walkCost(), strong.walkCost());
}

TEST(MapGrain, PagesPerEntry)
{
    EXPECT_EQ(pagesPerEntry(MapGrain::Page4K), 1u);
    EXPECT_EQ(pagesPerEntry(MapGrain::Section1M), 256u);
    EXPECT_EQ(pagesPerEntry(MapGrain::Super16M), 4096u);
}

} // namespace
} // namespace k2::soc
