/**
 * @file
 * Unit tests for threads, the scheduler, the kernel glue, and the
 * address-space layout.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kern/kernel.h"
#include "kern/layout.h"
#include "kern/service.h"

namespace k2::kern {
namespace {

using sim::Task;

class KernTest : public ::testing::Test
{
  protected:
    KernTest()
        : soc(eng, soc::omap4Config()),
          kernel(soc, soc::kStrongDomain, "main"),
          proc(1, "app")
    {
        kernel.boot();
        // Give the kernel's allocator the whole global window for
        // these tests.
        kernel.pageAllocator().addFreeRange(
            PageRange{0, soc.numPages()});
    }

    sim::Engine eng;
    soc::Soc soc;
    Kernel kernel;
    Process proc;
};

TEST_F(KernTest, ThreadRunsAndCompletes)
{
    int steps = 0;
    Thread *t = kernel.spawnThread(
        &proc, "worker", ThreadKind::Normal,
        [&](Thread &self) -> Task<void> {
            ++steps;
            co_await self.exec(350000); // 1 ms at 350 MHz
            ++steps;
        });
    eng.run(sim::msec(10));
    EXPECT_TRUE(t->done());
    EXPECT_EQ(steps, 2);
    EXPECT_TRUE(t->doneEvent().isSet());
    // Active time: context switch + 1 ms of work.
    EXPECT_GE(soc.domain(soc::kStrongDomain).core(0).activeTime() +
                  soc.domain(soc::kStrongDomain).core(1).activeTime(),
              sim::msec(1));
}

TEST_F(KernTest, ContextSwitchCostCharged)
{
    kernel.spawnThread(&proc, "w", ThreadKind::Normal,
                       [](Thread &self) -> Task<void> {
                           co_await self.exec(350);
                       });
    eng.run(sim::msec(1));
    EXPECT_EQ(kernel.scheduler().contextSwitches(), 1u);
    // 3.5 us switch + 1 us work.
    const auto active =
        soc.domain(soc::kStrongDomain).core(0).activeTime() +
        soc.domain(soc::kStrongDomain).core(1).activeTime();
    EXPECT_EQ(active, sim::usec(4) + sim::nsec(500));
}

TEST_F(KernTest, TwoThreadsRunInParallelOnTwoCores)
{
    sim::Time done_a = 0;
    sim::Time done_b = 0;
    kernel.spawnThread(&proc, "a", ThreadKind::Normal,
                       [&](Thread &self) -> Task<void> {
                           co_await self.exec(3500000); // 10 ms
                           done_a = eng.now();
                       });
    kernel.spawnThread(&proc, "b", ThreadKind::Normal,
                       [&](Thread &self) -> Task<void> {
                           co_await self.exec(3500000); // 10 ms
                           done_b = eng.now();
                       });
    eng.run(sim::msec(100));
    // Both finish at ~10 ms (parallel), not 20 ms (serial).
    EXPECT_LT(done_a, sim::msec(11));
    EXPECT_LT(done_b, sim::msec(11));
}

TEST_F(KernTest, PreemptionSharesOneCoreFairly)
{
    // Three compute threads on a 1-core kernel (use the weak domain).
    Kernel weak(soc, soc::kWeakDomain, "shadow");
    weak.boot();
    std::vector<sim::Time> done(3);
    for (int i = 0; i < 3; ++i) {
        weak.spawnThread(&proc, "w" + std::to_string(i),
                         ThreadKind::Normal,
                         [&, i](Thread &self) -> Task<void> {
                             co_await self.exec(800000); // 5 ms at M3
                             done[static_cast<size_t>(i)] = eng.now();
                         });
    }
    eng.run(sim::sec(1));
    // With 1 ms quanta all three finish within ~15 ms of each other,
    // not serially (5/10/15 ms would still hold serially; check that
    // the *first* finisher comes late, i.e. after ~12 ms, proving
    // interleaving).
    const sim::Time first = std::min({done[0], done[1], done[2]});
    EXPECT_GT(first, sim::msec(12));
}

TEST_F(KernTest, BlockedThreadFreesCoreAndResumesOnEvent)
{
    sim::Event ev(eng);
    std::vector<std::string> log;
    kernel.spawnThread(&proc, "waiter", ThreadKind::Normal,
                       [&](Thread &self) -> Task<void> {
                           log.push_back("wait");
                           co_await self.wait(ev);
                           log.push_back("woken");
                       });
    eng.at(sim::msec(5), [&]() { ev.set(); });
    eng.run(sim::msec(10));
    EXPECT_EQ(log, (std::vector<std::string>{"wait", "woken"}));
}

TEST_F(KernTest, SleepBlocksForDuration)
{
    sim::Time woke = 0;
    kernel.spawnThread(&proc, "sleeper", ThreadKind::Normal,
                       [&](Thread &self) -> Task<void> {
                           co_await self.sleep(sim::msec(7));
                           woke = eng.now();
                       });
    eng.run(sim::msec(20));
    // Wake at 7 ms + context switches.
    EXPECT_GE(woke, sim::msec(7));
    EXPECT_LT(woke, sim::msec(7) + sim::usec(20));
}

TEST_F(KernTest, SuspendedThreadDoesNotRun)
{
    int ran = 0;
    Thread *t = kernel.spawnThread(&proc, "gated", ThreadKind::NightWatch,
                                   [&](Thread &) -> Task<void> {
                                       ++ran;
                                       co_return;
                                   });
    kernel.scheduler().setSuspended(*t, true);
    eng.run(sim::msec(5));
    EXPECT_EQ(ran, 0);
    kernel.scheduler().setSuspended(*t, false);
    eng.run(sim::msec(10));
    EXPECT_EQ(ran, 1);
}

TEST_F(KernTest, RunningThreadParksWhenSuspended)
{
    Kernel weak(soc, soc::kWeakDomain, "shadow");
    weak.boot();
    bool finished = false;
    Thread *t = weak.spawnThread(&proc, "nw", ThreadKind::NightWatch,
                                 [&](Thread &self) -> Task<void> {
                                     co_await self.exec(8000000); // 50ms
                                     finished = true;
                                 });
    eng.run(sim::msec(5));
    EXPECT_FALSE(finished);
    weak.scheduler().setSuspended(*t, true);
    eng.run(sim::msec(200));
    EXPECT_FALSE(finished) << "suspended mid-execution";
    weak.scheduler().setSuspended(*t, false);
    eng.run(sim::msec(500));
    EXPECT_TRUE(finished);
}

TEST_F(KernTest, ProcessBlockedHookFiresWhenLastNormalThreadBlocks)
{
    std::vector<sim::Time> fired;
    kernel.scheduler().setProcessBlockedHook(
        [&](Process &p) {
            EXPECT_EQ(&p, &proc);
            fired.push_back(eng.now());
        });
    kernel.spawnThread(&proc, "a", ThreadKind::Normal,
                       [&](Thread &self) -> Task<void> {
                           co_await self.exec(350000); // 1 ms
                           co_await self.sleep(sim::msec(5));
                       });
    eng.run(sim::sec(1));
    // Fires twice: when the thread sleeps and when it exits.
    ASSERT_EQ(fired.size(), 2u);
    EXPECT_GE(fired[0], sim::msec(1));
    EXPECT_LT(fired[0], sim::msec(2));
}

TEST_F(KernTest, MailRoundTripBetweenKernels)
{
    Kernel shadow(soc, soc::kWeakDomain, "shadow");
    shadow.boot();
    std::vector<std::uint32_t> main_got;
    std::vector<std::uint32_t> shadow_got;
    kernel.setMailHandler(
        [&](soc::Mail m, soc::Core &) -> Task<void> {
            main_got.push_back(m.word);
            co_return;
        });
    shadow.setMailHandler(
        [&](soc::Mail m, soc::Core &) -> Task<void> {
            shadow_got.push_back(m.word);
            shadow.sendMail(soc::kStrongDomain, m.word + 1);
            co_return;
        });
    kernel.sendMail(soc::kWeakDomain, 41);
    eng.run(sim::msec(1));
    EXPECT_EQ(shadow_got, (std::vector<std::uint32_t>{41}));
    EXPECT_EQ(main_got, (std::vector<std::uint32_t>{42}));
}

TEST_F(KernTest, AllocLatencyMatchesTable4MainKernel)
{
    // Table 4 (main kernel): 4KB ~1 us, 256KB ~5 us, 1MB ~13 us.
    struct Case { unsigned order; double lo_us; double hi_us; };
    const Case cases[] = {
        {0, 0.4, 2.5},
        {6, 2.5, 10.0},
        {8, 6.0, 26.0},
    };
    for (const auto &c : cases) {
        sim::Time start = 0;
        sim::Time end = 0;
        kernel.spawnThread(
            &proc, "alloc", ThreadKind::Normal,
            [&, c](Thread &self) -> Task<void> {
                start = eng.now();
                PageRange r =
                    co_await kernel.allocPages(self, c.order);
                end = eng.now();
                EXPECT_FALSE(r.empty());
                co_await kernel.freePages(self, r);
            });
        eng.run();
        const double us = sim::toUsec(end - start);
        EXPECT_GE(us, c.lo_us) << "order " << c.order;
        EXPECT_LE(us, c.hi_us) << "order " << c.order;
    }
}

TEST_F(KernTest, ShadowAllocSlowerThanMain)
{
    Kernel shadow(soc, soc::kWeakDomain, "shadow");
    shadow.boot();
    shadow.pageAllocator().addFreeRange(PageRange{0, 4096});

    auto measure = [&](Kernel &k, unsigned order) {
        sim::Time start = 0, end = 0;
        k.spawnThread(&proc, "alloc", ThreadKind::Normal,
                      [&](Thread &self) -> Task<void> {
                          start = eng.now();
                          PageRange r = co_await k.allocPages(self, order);
                          end = eng.now();
                          co_await k.freePages(self, r);
                      });
        eng.run();
        return end - start;
    };

    const auto main_t = measure(kernel, 0);
    const auto shadow_t = measure(shadow, 0);
    // Table 4: shadow ~12x slower than main for 4 KB.
    const double ratio = static_cast<double>(shadow_t) / main_t;
    EXPECT_GT(ratio, 6.0);
    EXPECT_LT(ratio, 20.0);
}

TEST(Layout, Figure4Invariants)
{
    // 1 GB of 4 KB pages; shadow local 16 MB, main local 48 MB.
    AddressSpaceLayout layout(4096, 262144,
                              {{"shadow", 4096}, {"main", 12288}});
    EXPECT_EQ(layout.numLocals(), 2u);
    // Shadow local first, then main local, then global.
    EXPECT_EQ(layout.local(0).pages.first, 0u);
    EXPECT_EQ(layout.local(1).pages.first, 4096u);
    EXPECT_EQ(layout.global().pages.first, 16384u);
    EXPECT_EQ(layout.global().pages.end(), 262144u);
    // Main's local region is adjacent to the global region: no hole.
    EXPECT_EQ(layout.local(1).pages.end(), layout.global().pages.first);
    // Unified virtual addresses: one shared linear mapping.
    EXPECT_EQ(layout.vaddrOf(0), layout.virtBase());
    EXPECT_EQ(layout.pfnOf(layout.vaddrOf(12345)), 12345u);
    // Regions do not overlap.
    EXPECT_FALSE(layout.local(0).pages.contains(
        layout.local(1).pages.first));
    EXPECT_FALSE(layout.local(1).pages.contains(
        layout.global().pages.first));
    EXPECT_TRUE(layout.isGlobal(20000));
    EXPECT_FALSE(layout.isGlobal(100));
    EXPECT_EQ(layout.localOf("main").pages.first, 4096u);
}

TEST(Layout, LocalSizesRoundUpToPageBlocks)
{
    AddressSpaceLayout layout(4096, 262144, {{"shadow", 100}});
    EXPECT_EQ(layout.local(0).pages.count, 4096u);
}

TEST(Layout, OversizedLocalsAreFatal)
{
    EXPECT_THROW(AddressSpaceLayout(4096, 8192, {{"big", 8192}}),
                 sim::FatalError);
}

TEST(ServiceRegistry, DefaultClassificationMatchesPaper)
{
    ServiceRegistry reg = defaultK2Registry();
    EXPECT_EQ(reg.of("page-allocator"), ServiceClass::Independent);
    EXPECT_EQ(reg.of("interrupt-management"), ServiceClass::Independent);
    EXPECT_EQ(reg.of("dma-driver"), ServiceClass::Shadowed);
    EXPECT_EQ(reg.of("ext2"), ServiceClass::Shadowed);
    EXPECT_EQ(reg.of("udp-stack"), ServiceClass::Shadowed);
    EXPECT_EQ(reg.of("power-management"), ServiceClass::Private);
    // Shadowed is the largest category (§5.3 step 4).
    EXPECT_GT(reg.listed(ServiceClass::Shadowed).size(),
              reg.listed(ServiceClass::Independent).size());
    EXPECT_THROW(reg.of("nonexistent"), sim::FatalError);
}

} // namespace
} // namespace k2::kern
