/**
 * @file
 * Filesystem tests: data round trips, directories, error paths, block
 * accounting, and parameterized size sweeps -- run on the baseline
 * system (hardware coherence) for speed; the integration tests cover
 * the shadowed (DSM-backed) configuration.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "workloads/testbed.h"

namespace k2::svc {
namespace {

using kern::Thread;
using sim::Task;

class FsTest : public ::testing::Test
{
  protected:
    FsTest()
        : tb(wl::Testbed::makeLinux())
    {}

    /** Run a body to completion on the system. */
    void
    run(std::function<Task<void>(Thread &)> body)
    {
        tb.sys().spawnNormal(tb.proc(), "t", std::move(body));
        tb.engine().run();
    }

    wl::Testbed tb;
};

TEST_F(FsTest, CreateWriteReadRoundTrip)
{
    run([&](Thread &t) -> Task<void> {
        auto &fs = tb.fs();
        const std::int64_t fd = co_await fs.create(t, "/hello.txt");
        EXPECT_GE(fd, 0);

        std::vector<std::uint8_t> data(10000);
        std::iota(data.begin(), data.end(), 0);
        EXPECT_EQ(co_await fs.write(t, static_cast<int>(fd), data),
                  10000);
        co_await fs.seek(t, static_cast<int>(fd), 0);

        std::vector<std::uint8_t> back(10000, 0);
        EXPECT_EQ(co_await fs.read(t, static_cast<int>(fd), back),
                  10000);
        EXPECT_EQ(back, data);
        EXPECT_EQ(co_await fs.close(t, static_cast<int>(fd)),
                  FsStatus::Ok);

        auto st = co_await fs.stat(t, "/hello.txt");
        EXPECT_TRUE(st.has_value());
        EXPECT_EQ(st->size, 10000u);
        EXPECT_FALSE(st->isDir);
    });
}

TEST_F(FsTest, LargeFileUsesIndirectBlocks)
{
    run([&](Thread &t) -> Task<void> {
        auto &fs = tb.fs();
        const std::int64_t fd = co_await fs.create(t, "/big.bin");
        EXPECT_GE(fd, 0);
        // 1 MB > 12 direct blocks (48 KB): exercises the indirect
        // block.
        std::vector<std::uint8_t> chunk(32768);
        for (std::size_t i = 0; i < chunk.size(); ++i)
            chunk[i] = static_cast<std::uint8_t>(i * 7);
        for (int i = 0; i < 32; ++i) {
            EXPECT_EQ(co_await fs.write(t, static_cast<int>(fd), chunk),
                      32768);
        }
        auto st = co_await fs.stat(t, "/big.bin");
        EXPECT_TRUE(st);
        EXPECT_EQ(st->size, 1048576u);

        // Read back a slice that crosses the direct/indirect boundary.
        co_await fs.seek(t, static_cast<int>(fd), 48 * 1024 - 100);
        std::vector<std::uint8_t> back(200);
        EXPECT_EQ(co_await fs.read(t, static_cast<int>(fd), back), 200);
        for (std::size_t i = 0; i < back.size(); ++i) {
            const std::size_t off = (48 * 1024 - 100 + i) % 32768;
            EXPECT_EQ(back[i], static_cast<std::uint8_t>(off * 7));
        }
        co_await fs.close(t, static_cast<int>(fd));
    });
}

TEST_F(FsTest, DirectoriesNestAndList)
{
    run([&](Thread &t) -> Task<void> {
        auto &fs = tb.fs();
        EXPECT_EQ(co_await fs.mkdir(t, "/a"), FsStatus::Ok);
        EXPECT_EQ(co_await fs.mkdir(t, "/a/b"), FsStatus::Ok);
        const std::int64_t fd = co_await fs.create(t, "/a/b/f.txt");
        EXPECT_GE(fd, 0);
        co_await fs.close(t, static_cast<int>(fd));

        auto names = co_await fs.readdir(t, "/a/b");
        EXPECT_EQ(names.size(), 1u);
        EXPECT_EQ(names[0], "f.txt");

        auto st = co_await fs.stat(t, "/a/b");
        EXPECT_TRUE(st);
        EXPECT_TRUE(st->isDir);

        // Non-empty directory cannot be unlinked.
        EXPECT_EQ(co_await fs.unlink(t, "/a/b"), FsStatus::NotEmpty);
        EXPECT_EQ(co_await fs.unlink(t, "/a/b/f.txt"), FsStatus::Ok);
        EXPECT_EQ(co_await fs.unlink(t, "/a/b"), FsStatus::Ok);
        EXPECT_EQ(co_await fs.unlink(t, "/a"), FsStatus::Ok);
    });
}

TEST_F(FsTest, ErrorPaths)
{
    run([&](Thread &t) -> Task<void> {
        auto &fs = tb.fs();
        EXPECT_EQ(co_await fs.open(t, "/nope"),
                  -static_cast<std::int64_t>(FsStatus::NotFound));
        const std::int64_t fd = co_await fs.create(t, "/x");
        EXPECT_GE(fd, 0);
        EXPECT_EQ(co_await fs.create(t, "/x"),
                  -static_cast<std::int64_t>(FsStatus::Exists));
        std::vector<std::uint8_t> buf(10);
        EXPECT_EQ(co_await fs.write(t, 63, buf),
                  -static_cast<std::int64_t>(FsStatus::BadFd));
        EXPECT_EQ(co_await fs.close(t, -1), FsStatus::BadFd);
        EXPECT_EQ(co_await fs.unlink(t, "/nope"), FsStatus::NotFound);
        const std::string long_name(80, 'z');
        EXPECT_EQ(co_await fs.create(t, "/" + long_name),
                  -static_cast<std::int64_t>(FsStatus::NameTooLong));
        co_await fs.close(t, static_cast<int>(fd));
        co_await fs.unlink(t, "/x");
    });
}

TEST_F(FsTest, UnlinkReleasesBlocks)
{
    run([&](Thread &t) -> Task<void> {
        auto &fs = tb.fs();
        // Force the root directory to allocate its entry block first;
        // that block legitimately stays allocated after unlink.
        const std::int64_t warm = co_await fs.create(t, "/warm");
        co_await fs.close(t, static_cast<int>(warm));
        co_await fs.unlink(t, "/warm");

        const auto free0 = fs.freeBlocks();
        const std::int64_t fd = co_await fs.create(t, "/tmp.bin");
        std::vector<std::uint8_t> chunk(65536, 1);
        co_await fs.write(t, static_cast<int>(fd), chunk);
        co_await fs.close(t, static_cast<int>(fd));
        EXPECT_LT(fs.freeBlocks(), free0);
        EXPECT_EQ(co_await fs.unlink(t, "/tmp.bin"), FsStatus::Ok);
        EXPECT_EQ(fs.freeBlocks(), free0);
        EXPECT_EQ(fs.freeInodes(), 1022u); // 1024 - reserved - root
    });
}

TEST_F(FsTest, FillDiskThenNoSpace)
{
    run([&](Thread &t) -> Task<void> {
        auto &fs = tb.fs();
        const std::int64_t fd = co_await fs.create(t, "/fill");
        EXPECT_GE(fd, 0);
        std::vector<std::uint8_t> chunk(1 << 20, 9);
        std::int64_t total = 0;
        for (;;) {
            const std::int64_t got =
                co_await fs.write(t, static_cast<int>(fd), chunk);
            if (got < static_cast<std::int64_t>(chunk.size())) {
                if (got > 0)
                    total += got;
                break;
            }
            total += got;
            // Files are capped at ~4.2 MB by the single indirect
            // block; create more files as needed.
            if (total % (4 << 20) == 0)
                break;
        }
        EXPECT_GT(total, 0);
        co_await fs.close(t, static_cast<int>(fd));
        co_await fs.unlink(t, "/fill");
    });
}

TEST_F(FsTest, PersistenceAcrossReopen)
{
    run([&](Thread &t) -> Task<void> {
        auto &fs = tb.fs();
        const std::int64_t fd = co_await fs.create(t, "/persist");
        std::vector<std::uint8_t> data{1, 2, 3, 4, 5};
        co_await fs.write(t, static_cast<int>(fd), data);
        co_await fs.close(t, static_cast<int>(fd));

        const std::int64_t fd2 = co_await fs.open(t, "/persist");
        EXPECT_GE(fd2, 0);
        std::vector<std::uint8_t> back(5);
        EXPECT_EQ(co_await fs.read(t, static_cast<int>(fd2), back), 5);
        EXPECT_EQ(back, data);
        co_await fs.close(t, static_cast<int>(fd2));
    });
}

/** Parameterized sweep: write/read round trip across sizes spanning
 *  partial blocks, block boundaries, and the indirect boundary. */
class FsSizeSweep : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(FsSizeSweep, RoundTrip)
{
    auto tb = wl::Testbed::makeLinux();
    const std::uint64_t size = GetParam();
    bool done = false;
    tb.sys().spawnNormal(
        tb.proc(), "t", [&](Thread &t) -> Task<void> {
            auto &fs = tb.fs();
            const std::int64_t fd = co_await fs.create(t, "/f");
            EXPECT_GE(fd, 0);
            std::vector<std::uint8_t> data(size);
            for (std::size_t i = 0; i < size; ++i)
                data[i] = static_cast<std::uint8_t>(i * 131 + 7);
            EXPECT_EQ(co_await fs.write(t, static_cast<int>(fd), data),
                      static_cast<std::int64_t>(size));
            co_await fs.seek(t, static_cast<int>(fd), 0);
            std::vector<std::uint8_t> back(size, 0);
            EXPECT_EQ(co_await fs.read(t, static_cast<int>(fd), back),
                      static_cast<std::int64_t>(size));
            EXPECT_EQ(back, data);
            co_await fs.close(t, static_cast<int>(fd));
            done = true;
        });
    tb.engine().run();
    EXPECT_TRUE(done);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, FsSizeSweep,
    ::testing::Values(1, 100, 4095, 4096, 4097, 8192, 40000, 49152,
                      49153, 200000, 1048576));

} // namespace
} // namespace k2::svc
