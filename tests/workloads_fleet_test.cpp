/**
 * @file
 * Fleet workload tests: the seeded device-model generator is
 * shard-independent, FleetStats partials fold exactly, and the
 * headline guarantee holds -- the rendered fleet report and JSON
 * artifact are byte-identical at any jobs count and in both sweep
 * modes.
 */

#include <gtest/gtest.h>

#include <string>

#include "sim/log.h"
#include "workloads/fleet.h"

namespace {

using namespace k2;

TEST(FleetMix, RegistryLookup)
{
    const wl::TrafficMix *def = wl::findMix("default");
    ASSERT_NE(def, nullptr);
    EXPECT_STREQ(def->name, "default");
    EXPECT_NE(wl::findMix("sensor_heavy"), nullptr);
    EXPECT_NE(wl::findMix("push_heavy"), nullptr);
    EXPECT_NE(wl::findMix("sync_heavy"), nullptr);
    EXPECT_NE(wl::findMix("idle"), nullptr);
    EXPECT_EQ(wl::findMix("nope"), nullptr);
    EXPECT_EQ(wl::findMix(""), nullptr);

    const std::string names = wl::mixNames();
    EXPECT_NE(names.find("default"), std::string::npos);
    EXPECT_NE(names.find("idle"), std::string::npos);
}

TEST(FleetDevice, ModelDerivationIsSeedAndIdPure)
{
    const wl::TrafficMix &mix = *wl::findMix("default");
    const wl::DeviceModel a = wl::makeDevice(42, 7, mix);
    const wl::DeviceModel b = wl::makeDevice(42, 7, mix);
    EXPECT_EQ(a.id, 7u);
    EXPECT_EQ(a.batteryClass, b.batteryClass);
    EXPECT_EQ(a.energyScale, b.energyScale);
    for (std::size_t k = 0; k < wl::kFleetKinds; ++k) {
        EXPECT_EQ(a.rateScale[k], b.rateScale[k]);
        EXPECT_EQ(a.sizeScale[k], b.sizeScale[k]);
        EXPECT_GT(a.rateScale[k], 0.0);
        EXPECT_GT(a.sizeScale[k], 0.0);
    }
    // Different ids (and different seeds) draw different jitter.
    const wl::DeviceModel c = wl::makeDevice(42, 8, mix);
    const wl::DeviceModel d = wl::makeDevice(43, 7, mix);
    EXPECT_NE(a.rateScale[0], c.rateScale[0]);
    EXPECT_NE(a.rateScale[0], d.rateScale[0]);
}

TEST(FleetStats, ShardedSynthesisFoldsExactly)
{
    // Synthesising devices into shard partials and merging must equal
    // synthesising them all into one accumulator -- in any order.
    const wl::TrafficMix &mix = *wl::findMix("default");
    wl::Calibration cal;
    for (auto &m : cal.kinds)
        m = {120.0, 0.004, 90.0, 0.002};

    wl::FleetStats whole;
    for (std::uint64_t id = 0; id < 40; ++id)
        wl::synthesizeDevice(mix, cal, 42, id, 3.0, whole);

    wl::FleetStats s0, s1, s2;
    for (std::uint64_t id = 0; id < 40; ++id)
        wl::synthesizeDevice(mix, cal, 42, id, 3.0,
                             id % 3 == 0 ? s0
                             : id % 3 == 1 ? s1
                                           : s2);
    wl::FleetStats folded;
    folded.merge(s2); // adversarial order
    folded.merge(s0);
    folded.merge(s1);

    EXPECT_EQ(folded.devices, whole.devices);
    EXPECT_EQ(folded.bytes, whole.bytes);
    for (std::size_t k = 0; k < wl::kFleetKinds; ++k)
        EXPECT_EQ(folded.episodes[k], whole.episodes[k]);
    EXPECT_TRUE(folded.episodeEnergy() == whole.episodeEnergy());
    EXPECT_TRUE(folded.episodeLatencyUs == whole.episodeLatencyUs);
    EXPECT_TRUE(folded.deviceEnergyUj == whole.deviceEnergyUj);
    for (std::size_t k = 0; k < wl::kFleetKinds; ++k)
        EXPECT_TRUE(folded.kindEnergyUj[k] == whole.kindEnergyUj[k]);
}

TEST(Fleet, ByteIdenticalAtAnyJobsAndSweepMode)
{
    // The headline determinism contract: same config => byte-identical
    // text report and JSON artifact at jobs 1/4/13 and warm vs cold.
    sim::ScopedLogConfig quiet(sim::LogLevel::Quiet);
    wl::FleetConfig cfg;
    cfg.devices = 300; // 3 cells of 128 -- exercises sharding
    cfg.hours = 6.0;
    cfg.seed = 7;

    cfg.jobs = 1;
    const wl::FleetResult serial = wl::runFleet(cfg);
    ASSERT_FALSE(serial.text.empty());
    ASSERT_FALSE(serial.json.empty());
    EXPECT_EQ(serial.cells, 3u);
    EXPECT_EQ(serial.stats.devices, 300u);

    cfg.jobs = 4;
    const wl::FleetResult par4 = wl::runFleet(cfg);
    EXPECT_EQ(serial.text, par4.text);
    EXPECT_EQ(serial.json, par4.json);

    cfg.jobs = 13; // more workers than cells
    const wl::FleetResult par13 = wl::runFleet(cfg);
    EXPECT_EQ(serial.text, par13.text);
    EXPECT_EQ(serial.json, par13.json);

    cfg.jobs = 4;
    cfg.sweep = wl::SweepMode::Cold;
    const wl::FleetResult cold = wl::runFleet(cfg);
    EXPECT_EQ(serial.text, cold.text);
    EXPECT_EQ(serial.json, cold.json);

    // The artifacts carry the expected sketch series and tails.
    for (const char *needle :
         {"\"fleet.episode.energy_uj\"", "\"fleet.episode.latency_us\"",
          "\"fleet.device.energy_uj\"", "\"fleet.kind.sync.energy_uj\"",
          "\"p50\"", "\"p999\""})
        EXPECT_NE(serial.json.find(needle), std::string::npos) << needle;
    EXPECT_NE(serial.text.find("p99.9"), std::string::npos);

    // Artifacts must not leak host-side facts that vary run to run.
    EXPECT_EQ(serial.text.find("jobs"), std::string::npos);
    EXPECT_EQ(serial.json.find("jobs"), std::string::npos);
}

TEST(FleetCalibration, MemoizedEqualsFreshBitForBit)
{
    // calibrationFor's contract: the cached model is bit-identical to
    // measuring a freshly provisioned fixture, in both sweep modes
    // (the snapshot layer's warm==cold guarantee transfers to the
    // calibration numbers).
    sim::ScopedLogConfig quiet(sim::LogLevel::Quiet);
    const std::string key = "fleet-test:memo";

    const wl::Calibration &cached =
        wl::calibrationFor(wl::SweepMode::Warm, key);
    const wl::Calibration &again =
        wl::calibrationFor(wl::SweepMode::Warm, key);
    EXPECT_EQ(&cached, &again); // hit: same entry, no re-measure

    // Reference: measure an independently restored fixture.
    const wl::Calibration fresh =
        wl::calibrate(wl::warmK2(wl::SweepMode::Warm, key));
    EXPECT_TRUE(cached == fresh);
    // And measuring is itself reproducible fixture-to-fixture.
    EXPECT_TRUE(wl::calibrate(wl::warmK2(wl::SweepMode::Warm, key)) ==
                fresh);

    // Cold mode boots its own master, measures the same numbers, and
    // caches under a distinct entry.
    const wl::Calibration &cold =
        wl::calibrationFor(wl::SweepMode::Cold, key);
    EXPECT_NE(&cold, &cached);
    EXPECT_TRUE(cold == cached);

    // Sanity: the measured models are physically plausible.
    for (const wl::EpisodeModel &m : cached.kinds) {
        EXPECT_GT(m.energyPerByteUj, 0.0);
        EXPECT_GT(m.latencyPerByteUs, 0.0);
    }
}

TEST(Fleet, DiurnalModulationIsDeterministicAndJobsInvariant)
{
    sim::ScopedLogConfig quiet(sim::LogLevel::Quiet);
    wl::FleetConfig cfg;
    cfg.devices = 300;
    cfg.hours = 6.0;
    cfg.seed = 7;
    cfg.jobs = 1;
    const wl::FleetResult base = wl::runFleet(cfg);
    // The unmodulated artifact never mentions the flag (byte-identical
    // to builds predating it).
    EXPECT_EQ(base.text.find("diurnal"), std::string::npos);

    cfg.diurnal = 0.5;
    const wl::FleetResult mod = wl::runFleet(cfg);
    EXPECT_NE(mod.json, base.json);
    EXPECT_NE(mod.text.find("diurnal=0.500"), std::string::npos);

    // Same determinism contract as the unmodulated path.
    cfg.jobs = 13;
    const wl::FleetResult mod13 = wl::runFleet(cfg);
    EXPECT_EQ(mod.text, mod13.text);
    EXPECT_EQ(mod.json, mod13.json);
    cfg.jobs = 1;
    EXPECT_EQ(wl::runFleet(cfg).json, mod.json);

    // The amplitude participates in the draw, not just the header.
    cfg.diurnal = 0.2;
    const wl::FleetResult mild = wl::runFleet(cfg);
    EXPECT_NE(mild.json, mod.json);
    EXPECT_NE(mild.json, base.json);
}

TEST(Fleet, SeedAndMixChangeTheReport)
{
    sim::ScopedLogConfig quiet(sim::LogLevel::Quiet);
    wl::FleetConfig cfg;
    cfg.devices = 64;
    cfg.hours = 2.0;
    const wl::FleetResult base = wl::runFleet(cfg);

    wl::FleetConfig seeded = cfg;
    seeded.seed = 43;
    EXPECT_NE(base.json, wl::runFleet(seeded).json);

    wl::FleetConfig idle = cfg;
    idle.mix = "idle";
    const wl::FleetResult quietFleet = wl::runFleet(idle);
    EXPECT_NE(base.json, quietFleet.json);
    // Fewer arrivals per hour under the idle mix.
    std::uint64_t baseEp = 0, idleEp = 0;
    for (std::size_t k = 0; k < wl::kFleetKinds; ++k) {
        baseEp += base.stats.episodes[k];
        idleEp += quietFleet.stats.episodes[k];
    }
    EXPECT_LT(idleEp, baseEp);
}

} // namespace
