/**
 * @file
 * SweepRunner determinism and isolation tests: the same sweep must
 * produce byte-identical serialized artifacts at any thread count,
 * including an adversarial worker count that does not divide the cell
 * count; captured logs replay in submission order; failures surface
 * by lowest submission index.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "workloads/benchmarks.h"
#include "workloads/sweep.h"
#include "workloads/testbed.h"

namespace {

using namespace k2;

/**
 * Run a miniature fig6-style sweep (alternating K2/Linux cells over
 * three DMA batch sizes) at the given job count and serialize every
 * artifact a real bench would emit: the numeric episode results and a
 * full metrics-registry JSON snapshot per cell.
 */
std::string
runSweepArtifact(unsigned jobs)
{
    const std::uint64_t batches[] = {4096, 8192, 16384};
    constexpr std::size_t kCells = 2 * std::size(batches);

    wl::SweepRunner runner(jobs);
    std::vector<wl::EpisodeResult> results(kCells);
    std::vector<std::string> metrics(kCells);
    for (std::size_t i = 0; i < std::size(batches); ++i) {
        const std::uint64_t batch = batches[i];
        runner.submit([&results, &metrics, i, batch]() {
            auto tb = wl::Testbed::makeK2();
            obs::MetricsRegistry reg;
            tb.registerMetrics(reg);
            results[2 * i] =
                wl::runEpisodeWarm(tb.sys(), tb.proc(), "dma",
                                   wl::dmaCopy(tb.dma(), batch,
                                               16 * batch));
            metrics[2 * i] = reg.snapshot().toJson();
        });
        runner.submit([&results, &metrics, i, batch]() {
            auto tb = wl::Testbed::makeLinux();
            obs::MetricsRegistry reg;
            tb.registerMetrics(reg);
            results[2 * i + 1] =
                wl::runEpisodeWarm(tb.sys(), tb.proc(), "dma",
                                   wl::dmaCopy(tb.dma(), batch,
                                               16 * batch));
            metrics[2 * i + 1] = reg.snapshot().toJson();
        });
    }
    runner.run();

    std::string artifact;
    for (std::size_t i = 0; i < kCells; ++i) {
        artifact += sim::strPrintf(
            "cell %zu: energy=%.17g run=%llu episode=%llu bytes=%llu\n",
            i, results[i].energyUj,
            static_cast<unsigned long long>(results[i].runTime),
            static_cast<unsigned long long>(results[i].episodeTime),
            static_cast<unsigned long long>(results[i].bytes));
        artifact += metrics[i];
        artifact += '\n';
    }
    return artifact;
}

TEST(SweepRunner, ByteIdenticalArtifactsAtAnyThreadCount)
{
    const std::string serial = runSweepArtifact(1);
    ASSERT_FALSE(serial.empty());
    // Sanity: the serial artifact contains real simulation output.
    EXPECT_NE(serial.find("\"kern.main.buddy.alloc_calls\""),
              std::string::npos);

    EXPECT_EQ(serial, runSweepArtifact(4));
    // Adversarial: more workers than cells, and a count that divides
    // nothing.
    EXPECT_EQ(serial, runSweepArtifact(13));
}

TEST(SweepRunner, ReplaysCapturedLogsInSubmissionOrder)
{
    std::string out;
    std::string err;
    {
        // The runner replays through the caller's scope, so the test
        // captures exactly the bytes a real invocation would print.
        sim::ScopedLogConfig capture(sim::LogLevel::Normal, &out, &err);
        wl::SweepRunner runner(4);
        for (int i = 0; i < 8; ++i) {
            runner.submit([i]() {
                sim::informImpl("cell %d line a", i);
                sim::warnImpl("cell %d", i);
                sim::informImpl("cell %d line b", i);
            });
        }
        runner.run();
    }
    std::string want_out;
    std::string want_err;
    for (int i = 0; i < 8; ++i) {
        want_out += sim::strPrintf("info: cell %d line a\n", i);
        want_out += sim::strPrintf("info: cell %d line b\n", i);
        want_err += sim::strPrintf("warn: cell %d\n", i);
    }
    EXPECT_EQ(out, want_out);
    EXPECT_EQ(err, want_err);
}

TEST(SweepRunner, CellLogLevelAppliesToEveryCell)
{
    std::string out;
    std::string err;
    {
        sim::ScopedLogConfig capture(sim::LogLevel::Normal, &out, &err);
        wl::SweepRunner runner(4);
        runner.setCellLogLevel(sim::LogLevel::Quiet);
        for (int i = 0; i < 6; ++i) {
            runner.submit([]() {
                sim::informImpl("should be suppressed");
                sim::warnImpl("should be suppressed");
            });
        }
        runner.run();
    }
    EXPECT_TRUE(out.empty());
    EXPECT_TRUE(err.empty());
}

TEST(SweepRunner, RethrowsFirstFailureBySubmissionIndex)
{
    std::string err;
    sim::ScopedLogConfig quiet(sim::LogLevel::Quiet, nullptr, &err);
    wl::SweepRunner runner(4);
    runner.submit([]() {});
    runner.submit([]() { K2_FATAL("first failure"); });
    runner.submit([]() { K2_FATAL("second failure"); });
    runner.submit([]() {});
    try {
        runner.run();
        FAIL() << "expected FatalError";
    } catch (const sim::FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("first failure"),
                  std::string::npos);
    }
    // The runner drains and is reusable after a failure.
    EXPECT_EQ(runner.size(), 0u);
    bool ran = false;
    runner.submit([&ran]() { ran = true; });
    runner.run();
    EXPECT_TRUE(ran);
}

TEST(SweepRunner, FailureIdentifiesCellIndex)
{
    // Regression: run() used to rethrow the first failure verbatim,
    // leaving the user to guess which of N cells died. The rethrown
    // error must name the failing cell's submission index.
    sim::ScopedLogConfig quiet(sim::LogLevel::Quiet);
    wl::SweepRunner runner(2);
    runner.submit([]() {});
    runner.submit([]() { K2_FATAL("boom"); });
    runner.submit([]() {});
    try {
        runner.run();
        FAIL() << "expected FatalError";
    } catch (const sim::FatalError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("sweep cell 1"), std::string::npos) << what;
        EXPECT_NE(what.find("boom"), std::string::npos) << what;
    }
    // Non-FatalError exceptions get the same wrapping.
    runner.submit([]() { throw std::runtime_error("plain"); });
    try {
        runner.run();
        FAIL() << "expected runtime_error";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("sweep cell 0"), std::string::npos) << what;
        EXPECT_NE(what.find("plain"), std::string::npos) << what;
    }
}

TEST(SweepRunner, MultipleFailuresWarnAboutSuppression)
{
    std::string err;
    {
        sim::ScopedLogConfig capture(sim::LogLevel::Normal, nullptr,
                                     &err);
        wl::SweepRunner runner(4);
        runner.setCellLogLevel(sim::LogLevel::Quiet);
        for (int i = 0; i < 3; ++i)
            runner.submit([i]() { K2_FATAL("cell %d died", i); });
        EXPECT_THROW(runner.run(), sim::FatalError);
    }
    // The count of additional failures is logged, not silently lost.
    EXPECT_NE(err.find("3 cell(s) failed"), std::string::npos) << err;
    EXPECT_NE(err.find("suppressing 2"), std::string::npos) << err;
}

TEST(SweepRunner, LaneCellsPartitionWorkWithoutRaces)
{
    // Streaming-reducer mode: lane-indexed cells accumulate into
    // unsynchronized per-lane partials; the fold over lanes must see
    // every cell exactly once regardless of scheduling.
    for (unsigned jobs : {1u, 4u, 13u}) {
        wl::SweepRunner runner(jobs);
        ASSERT_EQ(runner.lanes(), runner.jobs());
        std::vector<std::uint64_t> partial(runner.lanes(), 0);
        for (std::uint64_t i = 1; i <= 100; ++i) {
            runner.submitLane([&partial, i](std::size_t lane) {
                partial[lane] += i; // safe: lanes never run concurrently
            });
        }
        runner.run();
        std::uint64_t total = 0;
        for (std::uint64_t p : partial)
            total += p;
        EXPECT_EQ(total, 5050u) << jobs << " jobs";
    }
}

TEST(SweepRunner, TwoConcurrentEnginesAtDifferentLogLevels)
{
    // Regression for the old process-global log level: two engines on
    // different threads, one Quiet and one Verbose, must neither share
    // the knob nor interleave output.
    std::string quiet_out, quiet_err, loud_out, loud_err;
    auto episode = [](sim::LogLevel level, std::string *out,
                      std::string *err) {
        sim::ScopedLogConfig scope(level, out, err);
        auto tb = wl::Testbed::makeK2();
        wl::runEpisodeWarm(tb.sys(), tb.proc(), "dma",
                           wl::dmaCopy(tb.dma(), 4096, 65536));
        sim::warnImpl("%s marker",
                      level == sim::LogLevel::Quiet ? "quiet" : "loud");
    };
    std::thread a(episode, sim::LogLevel::Quiet, &quiet_out, &quiet_err);
    std::thread b(episode, sim::LogLevel::Verbose, &loud_out, &loud_err);
    a.join();
    b.join();
    EXPECT_TRUE(quiet_out.empty());
    EXPECT_TRUE(quiet_err.empty());
    EXPECT_NE(loud_err.find("warn: loud marker\n"), std::string::npos);
    EXPECT_EQ(loud_err.find("quiet"), std::string::npos);
    // The process default is untouched by either thread.
    EXPECT_EQ(sim::logLevel(), sim::LogLevel::Normal);
}

TEST(ParseJobsFlag, ParsesAndStripsTheFlag)
{
    std::vector<std::string> storage = {"bench", "--seed=7", "--jobs=12",
                                        "--trace=t.json"};
    std::vector<char *> argv;
    for (auto &s : storage)
        argv.push_back(s.data());
    int argc = static_cast<int>(argv.size());

    EXPECT_EQ(wl::parseJobsFlag(argc, argv.data()), 12u);
    ASSERT_EQ(argc, 3);
    EXPECT_STREQ(argv[0], "bench");
    EXPECT_STREQ(argv[1], "--seed=7");
    EXPECT_STREQ(argv[2], "--trace=t.json");
}

TEST(ParseJobsFlag, FallbackWhenAbsent)
{
    std::vector<std::string> storage = {"bench"};
    std::vector<char *> argv = {storage[0].data()};
    int argc = 1;
    EXPECT_EQ(wl::parseJobsFlag(argc, argv.data(), 3), 3u);
    EXPECT_EQ(argc, 1);
}

TEST(ParseJobsFlag, RejectsMalformedValues)
{
    std::string err;
    sim::ScopedLogConfig quiet(sim::LogLevel::Quiet, nullptr, &err);
    for (const char *bad : {"--jobs=", "--jobs=0", "--jobs=nope",
                            "--jobs=12x", "--jobs=99999"}) {
        std::vector<std::string> storage = {"bench", bad};
        std::vector<char *> argv = {storage[0].data(),
                                    storage[1].data()};
        int argc = 2;
        EXPECT_THROW(wl::parseJobsFlag(argc, argv.data()),
                     sim::FatalError)
            << bad;
    }
}

TEST(ParseJobsFlag, DuplicateOccurrencesLastWinsAndAllStripped)
{
    // Regression: the old parser took the *first* occurrence and left
    // the duplicate in argv, so `--jobs=4 --jobs=8` ran with 4 jobs
    // and then tripped the unknown-argument check (or worse, was
    // silently ignored). Conventional CLI semantics: last one wins,
    // and every occurrence is consumed.
    std::vector<std::string> storage = {"bench", "--jobs=4", "--seed=7",
                                        "--jobs=8"};
    std::vector<char *> argv;
    for (auto &s : storage)
        argv.push_back(s.data());
    int argc = static_cast<int>(argv.size());

    EXPECT_EQ(wl::parseJobsFlag(argc, argv.data()), 8u);
    ASSERT_EQ(argc, 2);
    EXPECT_STREQ(argv[0], "bench");
    EXPECT_STREQ(argv[1], "--seed=7");
}

TEST(ConsumeFlag, LastWinsStripsAllPreservesOrder)
{
    std::vector<std::string> storage = {"prog", "--x=1", "a", "--x=2",
                                        "b",    "--x=3"};
    std::vector<char *> argv;
    for (auto &s : storage)
        argv.push_back(s.data());
    int argc = static_cast<int>(argv.size());

    std::string value;
    EXPECT_TRUE(wl::consumeFlag(argc, argv.data(), "--x=", value));
    EXPECT_EQ(value, "3");
    ASSERT_EQ(argc, 3);
    EXPECT_STREQ(argv[0], "prog");
    EXPECT_STREQ(argv[1], "a");
    EXPECT_STREQ(argv[2], "b");

    // Absent flag: argv untouched, value untouched.
    value = "sentinel";
    EXPECT_FALSE(wl::consumeFlag(argc, argv.data(), "--y=", value));
    EXPECT_EQ(value, "sentinel");
    EXPECT_EQ(argc, 3);
}

TEST(ParseTypedFlags, UintFloatString)
{
    std::vector<std::string> storage = {"fleet", "--devices=500",
                                        "--hours=0.25", "--mix=idle"};
    std::vector<char *> argv;
    for (auto &s : storage)
        argv.push_back(s.data());
    int argc = static_cast<int>(argv.size());

    EXPECT_EQ(wl::parseUintFlag(argc, argv.data(), "--devices=", 7, 1,
                                100000000),
              500u);
    EXPECT_DOUBLE_EQ(
        wl::parseFloatFlag(argc, argv.data(), "--hours=", 24.0, 1e6),
        0.25);
    EXPECT_EQ(wl::parseStringFlag(argc, argv.data(), "--mix=", "def"),
              "idle");
    EXPECT_EQ(argc, 1);

    // Fallbacks when absent.
    EXPECT_EQ(wl::parseUintFlag(argc, argv.data(), "--devices=", 7, 1,
                                100),
              7u);
    EXPECT_DOUBLE_EQ(
        wl::parseFloatFlag(argc, argv.data(), "--hours=", 24.0, 1e6),
        24.0);
    EXPECT_EQ(wl::parseStringFlag(argc, argv.data(), "--mix=", "def"),
              "def");
}

TEST(ParseTypedFlags, RejectsOutOfRangeAndMalformed)
{
    sim::ScopedLogConfig quiet(sim::LogLevel::Quiet);
    const struct
    {
        const char *arg;
        const char *flag;
        int kind; // 0 uint, 1 float, 2 string
    } bad[] = {
        {"--n=", "--n=", 0},      {"--n=zero", "--n=", 0},
        {"--n=0", "--n=", 0},     {"--n=101", "--n=", 0},
        {"--h=", "--h=", 1},      {"--h=-1", "--h=", 1},
        {"--h=0", "--h=", 1},     {"--h=2e9", "--h=", 1},
        {"--h=abc", "--h=", 1},   {"--s=", "--s=", 2},
    };
    for (const auto &b : bad) {
        std::vector<std::string> storage = {"prog", b.arg};
        std::vector<char *> argv = {storage[0].data(),
                                    storage[1].data()};
        int argc = 2;
        switch (b.kind) {
        case 0:
            EXPECT_THROW(wl::parseUintFlag(argc, argv.data(), b.flag, 5,
                                           1, 100),
                         sim::FatalError)
                << b.arg;
            break;
        case 1:
            EXPECT_THROW(wl::parseFloatFlag(argc, argv.data(), b.flag,
                                            1.0, 1e6),
                         sim::FatalError)
                << b.arg;
            break;
        default:
            EXPECT_THROW(wl::parseStringFlag(argc, argv.data(), b.flag,
                                             "d"),
                         sim::FatalError)
                << b.arg;
        }
    }
}

TEST(SweepRunner, DefaultJobsUsesHardwareConcurrency)
{
    wl::SweepRunner def;
    EXPECT_GE(def.jobs(), 1u);
    wl::SweepRunner one(1);
    EXPECT_EQ(one.jobs(), 1u);
}

} // namespace
