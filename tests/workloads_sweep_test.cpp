/**
 * @file
 * SweepRunner determinism and isolation tests: the same sweep must
 * produce byte-identical serialized artifacts at any thread count,
 * including an adversarial worker count that does not divide the cell
 * count; captured logs replay in submission order; failures surface
 * by lowest submission index.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "workloads/benchmarks.h"
#include "workloads/sweep.h"
#include "workloads/testbed.h"

namespace {

using namespace k2;

/**
 * Run a miniature fig6-style sweep (alternating K2/Linux cells over
 * three DMA batch sizes) at the given job count and serialize every
 * artifact a real bench would emit: the numeric episode results and a
 * full metrics-registry JSON snapshot per cell.
 */
std::string
runSweepArtifact(unsigned jobs)
{
    const std::uint64_t batches[] = {4096, 8192, 16384};
    constexpr std::size_t kCells = 2 * std::size(batches);

    wl::SweepRunner runner(jobs);
    std::vector<wl::EpisodeResult> results(kCells);
    std::vector<std::string> metrics(kCells);
    for (std::size_t i = 0; i < std::size(batches); ++i) {
        const std::uint64_t batch = batches[i];
        runner.submit([&results, &metrics, i, batch]() {
            auto tb = wl::Testbed::makeK2();
            obs::MetricsRegistry reg;
            tb.registerMetrics(reg);
            results[2 * i] =
                wl::runEpisodeWarm(tb.sys(), tb.proc(), "dma",
                                   wl::dmaCopy(tb.dma(), batch,
                                               16 * batch));
            metrics[2 * i] = reg.snapshot().toJson();
        });
        runner.submit([&results, &metrics, i, batch]() {
            auto tb = wl::Testbed::makeLinux();
            obs::MetricsRegistry reg;
            tb.registerMetrics(reg);
            results[2 * i + 1] =
                wl::runEpisodeWarm(tb.sys(), tb.proc(), "dma",
                                   wl::dmaCopy(tb.dma(), batch,
                                               16 * batch));
            metrics[2 * i + 1] = reg.snapshot().toJson();
        });
    }
    runner.run();

    std::string artifact;
    for (std::size_t i = 0; i < kCells; ++i) {
        artifact += sim::strPrintf(
            "cell %zu: energy=%.17g run=%llu episode=%llu bytes=%llu\n",
            i, results[i].energyUj,
            static_cast<unsigned long long>(results[i].runTime),
            static_cast<unsigned long long>(results[i].episodeTime),
            static_cast<unsigned long long>(results[i].bytes));
        artifact += metrics[i];
        artifact += '\n';
    }
    return artifact;
}

TEST(SweepRunner, ByteIdenticalArtifactsAtAnyThreadCount)
{
    const std::string serial = runSweepArtifact(1);
    ASSERT_FALSE(serial.empty());
    // Sanity: the serial artifact contains real simulation output.
    EXPECT_NE(serial.find("\"kern.main.buddy.alloc_calls\""),
              std::string::npos);

    EXPECT_EQ(serial, runSweepArtifact(4));
    // Adversarial: more workers than cells, and a count that divides
    // nothing.
    EXPECT_EQ(serial, runSweepArtifact(13));
}

TEST(SweepRunner, ReplaysCapturedLogsInSubmissionOrder)
{
    std::string out;
    std::string err;
    {
        // The runner replays through the caller's scope, so the test
        // captures exactly the bytes a real invocation would print.
        sim::ScopedLogConfig capture(sim::LogLevel::Normal, &out, &err);
        wl::SweepRunner runner(4);
        for (int i = 0; i < 8; ++i) {
            runner.submit([i]() {
                sim::informImpl("cell %d line a", i);
                sim::warnImpl("cell %d", i);
                sim::informImpl("cell %d line b", i);
            });
        }
        runner.run();
    }
    std::string want_out;
    std::string want_err;
    for (int i = 0; i < 8; ++i) {
        want_out += sim::strPrintf("info: cell %d line a\n", i);
        want_out += sim::strPrintf("info: cell %d line b\n", i);
        want_err += sim::strPrintf("warn: cell %d\n", i);
    }
    EXPECT_EQ(out, want_out);
    EXPECT_EQ(err, want_err);
}

TEST(SweepRunner, CellLogLevelAppliesToEveryCell)
{
    std::string out;
    std::string err;
    {
        sim::ScopedLogConfig capture(sim::LogLevel::Normal, &out, &err);
        wl::SweepRunner runner(4);
        runner.setCellLogLevel(sim::LogLevel::Quiet);
        for (int i = 0; i < 6; ++i) {
            runner.submit([]() {
                sim::informImpl("should be suppressed");
                sim::warnImpl("should be suppressed");
            });
        }
        runner.run();
    }
    EXPECT_TRUE(out.empty());
    EXPECT_TRUE(err.empty());
}

TEST(SweepRunner, RethrowsFirstFailureBySubmissionIndex)
{
    std::string err;
    sim::ScopedLogConfig quiet(sim::LogLevel::Quiet, nullptr, &err);
    wl::SweepRunner runner(4);
    runner.submit([]() {});
    runner.submit([]() { K2_FATAL("first failure"); });
    runner.submit([]() { K2_FATAL("second failure"); });
    runner.submit([]() {});
    try {
        runner.run();
        FAIL() << "expected FatalError";
    } catch (const sim::FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("first failure"),
                  std::string::npos);
    }
    // The runner drains and is reusable after a failure.
    EXPECT_EQ(runner.size(), 0u);
    bool ran = false;
    runner.submit([&ran]() { ran = true; });
    runner.run();
    EXPECT_TRUE(ran);
}

TEST(SweepRunner, TwoConcurrentEnginesAtDifferentLogLevels)
{
    // Regression for the old process-global log level: two engines on
    // different threads, one Quiet and one Verbose, must neither share
    // the knob nor interleave output.
    std::string quiet_out, quiet_err, loud_out, loud_err;
    auto episode = [](sim::LogLevel level, std::string *out,
                      std::string *err) {
        sim::ScopedLogConfig scope(level, out, err);
        auto tb = wl::Testbed::makeK2();
        wl::runEpisodeWarm(tb.sys(), tb.proc(), "dma",
                           wl::dmaCopy(tb.dma(), 4096, 65536));
        sim::warnImpl("%s marker",
                      level == sim::LogLevel::Quiet ? "quiet" : "loud");
    };
    std::thread a(episode, sim::LogLevel::Quiet, &quiet_out, &quiet_err);
    std::thread b(episode, sim::LogLevel::Verbose, &loud_out, &loud_err);
    a.join();
    b.join();
    EXPECT_TRUE(quiet_out.empty());
    EXPECT_TRUE(quiet_err.empty());
    EXPECT_NE(loud_err.find("warn: loud marker\n"), std::string::npos);
    EXPECT_EQ(loud_err.find("quiet"), std::string::npos);
    // The process default is untouched by either thread.
    EXPECT_EQ(sim::logLevel(), sim::LogLevel::Normal);
}

TEST(ParseJobsFlag, ParsesAndStripsTheFlag)
{
    std::vector<std::string> storage = {"bench", "--seed=7", "--jobs=12",
                                        "--trace=t.json"};
    std::vector<char *> argv;
    for (auto &s : storage)
        argv.push_back(s.data());
    int argc = static_cast<int>(argv.size());

    EXPECT_EQ(wl::parseJobsFlag(argc, argv.data()), 12u);
    ASSERT_EQ(argc, 3);
    EXPECT_STREQ(argv[0], "bench");
    EXPECT_STREQ(argv[1], "--seed=7");
    EXPECT_STREQ(argv[2], "--trace=t.json");
}

TEST(ParseJobsFlag, FallbackWhenAbsent)
{
    std::vector<std::string> storage = {"bench"};
    std::vector<char *> argv = {storage[0].data()};
    int argc = 1;
    EXPECT_EQ(wl::parseJobsFlag(argc, argv.data(), 3), 3u);
    EXPECT_EQ(argc, 1);
}

TEST(ParseJobsFlag, RejectsMalformedValues)
{
    std::string err;
    sim::ScopedLogConfig quiet(sim::LogLevel::Quiet, nullptr, &err);
    for (const char *bad : {"--jobs=", "--jobs=0", "--jobs=nope",
                            "--jobs=12x", "--jobs=99999"}) {
        std::vector<std::string> storage = {"bench", bad};
        std::vector<char *> argv = {storage[0].data(),
                                    storage[1].data()};
        int argc = 2;
        EXPECT_THROW(wl::parseJobsFlag(argc, argv.data()),
                     sim::FatalError)
            << bad;
    }
}

TEST(SweepRunner, DefaultJobsUsesHardwareConcurrency)
{
    wl::SweepRunner def;
    EXPECT_GE(def.jobs(), 1u);
    wl::SweepRunner one(1);
    EXPECT_EQ(one.jobs(), 1u);
}

} // namespace
