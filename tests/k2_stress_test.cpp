/**
 * @file
 * Cross-kernel stress tests on the full K2 testbed: randomized
 * interleavings of shadowed-service operations from both domains, with
 * data-integrity and invariant checks. These are the system-level
 * property tests for the shared-most model.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "sim/random.h"
#include "workloads/testbed.h"

namespace k2 {
namespace {

using kern::Thread;
using kern::ThreadKind;
using sim::Task;

/** Deterministic content byte for (file index, offset). */
std::uint8_t
patternByte(int file, std::size_t off)
{
    return static_cast<std::uint8_t>(file * 37 + off * 11 + 5);
}

class K2StressTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(K2StressTest, CrossKernelFsTrafficKeepsIntegrity)
{
    os::K2Config cfg;
    cfg.soc.costs.inactiveTimeout = 0;
    auto tb = wl::Testbed::makeK2(cfg);
    sim::Rng rng(GetParam());

    // Model of expected file contents, maintained alongside the ops.
    std::map<int, std::size_t> expected_size;

    constexpr int kFiles = 6;
    for (int step = 0; step < 60; ++step) {
        const bool on_shadow = rng.chance(0.5);
        kern::Kernel &kern = on_shadow ? tb.k2()->shadowKernel()
                                       : tb.sys().mainKernel();
        const int file = static_cast<int>(rng.below(kFiles));
        const std::string path = "/s" + std::to_string(file);
        const auto op = rng.below(3);

        kern.spawnThread(
            &tb.proc(), "op", ThreadKind::Normal,
            [&, file, path, op](Thread &t) -> Task<void> {
                auto &fs = tb.fs();
                if (op == 0) {
                    // (Re)write the file with its pattern.
                    if (expected_size.count(file))
                        co_await fs.unlink(t, path);
                    const std::size_t size = 512 + rng.below(8192);
                    const std::int64_t fd = co_await fs.create(t, path);
                    EXPECT_GE(fd, 0);
                    std::vector<std::uint8_t> data(size);
                    for (std::size_t i = 0; i < size; ++i)
                        data[i] = patternByte(file, i);
                    EXPECT_EQ(
                        co_await fs.write(t, static_cast<int>(fd),
                                          data),
                        static_cast<std::int64_t>(size));
                    co_await fs.close(t, static_cast<int>(fd));
                    expected_size[file] = size;
                } else if (op == 1 && expected_size.count(file)) {
                    // Verify the whole file from this kernel.
                    const std::int64_t fd = co_await fs.open(t, path);
                    EXPECT_GE(fd, 0);
                    std::vector<std::uint8_t> back(
                        expected_size[file]);
                    EXPECT_EQ(
                        co_await fs.read(t, static_cast<int>(fd),
                                         back),
                        static_cast<std::int64_t>(back.size()));
                    for (std::size_t i = 0; i < back.size(); ++i) {
                        if (back[i] != patternByte(file, i)) {
                            ADD_FAILURE()
                                << "corruption in " << path
                                << " at offset " << i;
                            break;
                        }
                    }
                    co_await fs.close(t, static_cast<int>(fd));
                } else if (op == 2 && expected_size.count(file)) {
                    EXPECT_EQ(co_await fs.unlink(t, path),
                              svc::FsStatus::Ok);
                    expected_size.erase(file);
                }
            });
        tb.engine().run();
    }

    // Final sweep: every surviving file is intact, from the opposite
    // kernel of the last writer for good measure.
    for (const auto &[file, size] : expected_size) {
        const std::string path = "/s" + std::to_string(file);
        tb.k2()->shadowKernel().spawnThread(
            &tb.proc(), "verify", ThreadKind::Normal,
            [&, size = size, path](Thread &t) -> Task<void> {
                auto st = co_await tb.fs().stat(t, path);
                EXPECT_TRUE(st.has_value());
                EXPECT_EQ(st->size, size);
            });
        tb.engine().run();
    }
}

TEST_P(K2StressTest, CrossKernelUdpPipelines)
{
    os::K2Config cfg;
    cfg.soc.costs.inactiveTimeout = 0;
    auto tb = wl::Testbed::makeK2(cfg);
    sim::Rng rng(GetParam());

    // A receiver on the shadow kernel, senders on the main kernel.
    constexpr std::uint16_t kPort = 6000;
    std::uint64_t received = 0;
    std::uint64_t sent = 0;
    const int kPackets = 40;

    auto &proc2 = tb.sys().createProcess("rx");
    tb.k2()->shadowKernel().spawnThread(
        &proc2, "rx", ThreadKind::Normal,
        [&](Thread &t) -> Task<void> {
            const std::int64_t s = co_await tb.udp().socket(t);
            co_await tb.udp().bind(t, static_cast<int>(s), kPort);
            for (int i = 0; i < kPackets; ++i) {
                const std::int64_t n =
                    co_await tb.udp().recvFrom(t, static_cast<int>(s));
                EXPECT_GT(n, 0);
                received += static_cast<std::uint64_t>(n);
            }
            co_await tb.udp().close(t, static_cast<int>(s));
        });

    tb.sys().spawnNormal(
        tb.proc(), "tx", [&](Thread &t) -> Task<void> {
            const std::int64_t s = co_await tb.udp().socket(t);
            for (int i = 0; i < kPackets; ++i) {
                const std::uint64_t n = 64 + rng.below(4096);
                const std::int64_t r = co_await tb.udp().sendTo(
                    t, static_cast<int>(s), kPort, n);
                if (r > 0)
                    sent += static_cast<std::uint64_t>(r);
                co_await t.sleep(sim::usec(200));
            }
            co_await tb.udp().close(t, static_cast<int>(s));
        });

    tb.engine().run();
    EXPECT_EQ(received, sent);
    EXPECT_GT(tb.k2()->dsm().messagesSent(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, K2StressTest,
                         ::testing::Values(3, 17, 91));

TEST(K2Stress, ManyNightWatchProcessesProgressIndependently)
{
    os::K2Config cfg;
    cfg.soc.costs.inactiveTimeout = 0;
    auto tb = wl::Testbed::makeK2(cfg);

    // Several processes each with a busy Normal thread and a
    // NightWatch thread: every NW thread must still complete (§4.3:
    // parallelism across processes is allowed; deferral is only
    // within a process).
    constexpr int kProcs = 4;
    int nw_done = 0;
    for (int p = 0; p < kProcs; ++p) {
        auto &proc = tb.sys().createProcess("p" + std::to_string(p));
        tb.sys().spawnNormal(proc, "busy",
                             [&](Thread &t) -> Task<void> {
                                 for (int i = 0; i < 5; ++i) {
                                     co_await t.exec(700000); // 2 ms
                                     co_await t.sleep(sim::msec(2));
                                 }
                             });
        tb.sys().spawnNightWatch(proc, "nw",
                                 [&](Thread &t) -> Task<void> {
                                     co_await t.exec(16000); // 100 us
                                     ++nw_done;
                                 });
    }
    tb.engine().run();
    EXPECT_EQ(nw_done, kProcs);
}

TEST(K2Stress, RepeatedSuspendResumeCyclesStaySane)
{
    os::K2Config cfg;
    cfg.soc.costs.inactiveTimeout = 0;
    auto tb = wl::Testbed::makeK2(cfg);
    auto &nw = tb.k2()->nightWatch();

    std::uint64_t nw_progress = 0;
    tb.sys().spawnNightWatch(tb.proc(), "nw",
                             [&](Thread &t) -> Task<void> {
                                 for (int i = 0; i < 2000; ++i) {
                                     co_await t.exec(2000);
                                     ++nw_progress;
                                 }
                             });
    // A Normal thread that wakes every millisecond, forcing
    // suspend/resume cycles.
    tb.sys().spawnNormal(tb.proc(), "ticker",
                         [&](Thread &t) -> Task<void> {
                             for (int i = 0; i < 50; ++i) {
                                 co_await t.exec(35000); // 100 us
                                 co_await t.sleep(sim::msec(1));
                             }
                         });
    tb.engine().run();
    EXPECT_EQ(nw_progress, 2000u);
    EXPECT_GT(nw.suspendsSent.value(), 10u);
    EXPECT_EQ(nw.suspendsSent.value(), nw.acksReceived.value());
    EXPECT_GT(nw.resumesSent.value(), 10u);
    EXPECT_FALSE(nw.isGated(tb.proc().pid()));
}

} // namespace
} // namespace k2
