/**
 * @file
 * Unit and property tests for the buddy page allocator.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/random.h"
#include "kern/buddy.h"

namespace k2::kern {
namespace {

constexpr std::uint64_t kBlock = 4096; // pages per 16 MB block

class BuddyTest : public ::testing::Test
{
  protected:
    BuddyTest()
        : buddy("test", 0, 16 * kBlock)
    {
        buddy.addFreeRange(PageRange{0, 16 * kBlock});
    }

    BuddyAllocator buddy;
};

TEST_F(BuddyTest, StartsWithDonatedPages)
{
    EXPECT_EQ(buddy.freePages(), 16 * kBlock);
    EXPECT_EQ(buddy.allocatedPages(), 0u);
    buddy.checkInvariants();
}

TEST_F(BuddyTest, AllocFreeRoundTrip)
{
    auto r = buddy.alloc(0, Migrate::Movable);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->range.count, 1u);
    EXPECT_TRUE(buddy.isAllocated(r->range.first));
    EXPECT_EQ(buddy.freePages(), 16 * kBlock - 1);
    buddy.free(r->range.first);
    EXPECT_EQ(buddy.freePages(), 16 * kBlock);
    buddy.checkInvariants();
    // Full coalescing: a max-order block is available again.
    EXPECT_EQ(buddy.largestFreeOrder(),
              std::optional<unsigned>(BuddyAllocator::kMaxOrder));
}

TEST_F(BuddyTest, PlacementPolicyMovableHighUnmovableLow)
{
    auto movable = buddy.alloc(0, Migrate::Movable);
    auto unmovable = buddy.alloc(0, Migrate::Unmovable);
    ASSERT_TRUE(movable && unmovable);
    // Movable from the top of the window, unmovable from the bottom.
    EXPECT_EQ(movable->range.first, 16 * kBlock - 1);
    EXPECT_EQ(unmovable->range.first, 0u);
    buddy.checkInvariants();
}

TEST_F(BuddyTest, LargerOrdersAreContiguousAndAligned)
{
    for (unsigned order = 1; order <= 8; ++order) {
        auto r = buddy.alloc(order, Migrate::Movable);
        ASSERT_TRUE(r.has_value()) << "order " << order;
        EXPECT_EQ(r->range.count, 1ull << order);
        EXPECT_EQ(r->range.first % (1ull << order), 0u);
    }
    buddy.checkInvariants();
}

TEST_F(BuddyTest, WorkGrowsWithOrder)
{
    auto small = buddy.alloc(0, Migrate::Movable);
    auto large = buddy.alloc(8, Migrate::Movable);
    ASSERT_TRUE(small && large);
    EXPECT_GT(large->work, small->work * 5);
}

TEST_F(BuddyTest, ExhaustionFailsCleanly)
{
    std::vector<Pfn> held;
    for (;;) {
        auto r = buddy.alloc(BuddyAllocator::kMaxOrder, Migrate::Movable);
        if (!r)
            break;
        held.push_back(r->range.first);
    }
    EXPECT_EQ(held.size(), 16u);
    EXPECT_EQ(buddy.freePages(), 0u);
    EXPECT_FALSE(buddy.alloc(0, Migrate::Movable).has_value());
    EXPECT_GT(buddy.failedAllocs.value(), 0u);
    for (Pfn p : held)
        buddy.free(p);
    buddy.checkInvariants();
    EXPECT_EQ(buddy.freePages(), 16 * kBlock);
}

TEST_F(BuddyTest, DoubleFreePanics)
{
    auto r = buddy.alloc(0, Migrate::Movable);
    ASSERT_TRUE(r);
    buddy.free(r->range.first);
    EXPECT_DEATH(buddy.free(r->range.first), "not an allocation head");
}

TEST_F(BuddyTest, ReclaimFreeRangeSucceeds)
{
    // Reclaim the lowest block while it is entirely free.
    auto res = buddy.reclaimRange(PageRange{0, kBlock});
    EXPECT_TRUE(res.ok);
    EXPECT_EQ(res.migrated, 0u);
    EXPECT_EQ(buddy.freePages(), 15 * kBlock);
    buddy.checkInvariants();
    // The reclaimed pages can be donated back.
    buddy.addFreeRange(PageRange{0, kBlock});
    EXPECT_EQ(buddy.freePages(), 16 * kBlock);
    buddy.checkInvariants();
}

TEST_F(BuddyTest, ReclaimMigratesMovablePages)
{
    // Place unmovable allocations at the bottom, movable at the top.
    auto unmovable = buddy.alloc(4, Migrate::Unmovable);
    auto movable = buddy.alloc(4, Migrate::Movable);
    ASSERT_TRUE(unmovable && movable);
    ASSERT_GE(movable->range.first, 15 * kBlock);

    // Reclaiming the top block must evacuate the movable pages.
    auto res = buddy.reclaimRange(PageRange{15 * kBlock, kBlock});
    EXPECT_TRUE(res.ok);
    EXPECT_EQ(res.migrated, 16u);
    EXPECT_GT(res.work, 0u);
    buddy.checkInvariants();
    // Allocated count is preserved (pages were migrated, not freed).
    EXPECT_EQ(buddy.allocatedPages(), 32u);
}

TEST_F(BuddyTest, ReclaimFailsOnUnmovablePages)
{
    // Force an unmovable allocation into the top block by exhausting
    // all lower memory first.
    std::vector<Pfn> held;
    for (int i = 0; i < 15; ++i) {
        auto r = buddy.alloc(BuddyAllocator::kMaxOrder,
                             Migrate::Unmovable);
        ASSERT_TRUE(r);
        held.push_back(r->range.first);
    }
    auto top = buddy.alloc(0, Migrate::Unmovable);
    ASSERT_TRUE(top);
    ASSERT_GE(top->range.first, 15 * kBlock);

    const auto before_free = buddy.freePages();
    auto res = buddy.reclaimRange(PageRange{15 * kBlock, kBlock});
    EXPECT_FALSE(res.ok);
    // No side effects on failure.
    EXPECT_EQ(buddy.freePages(), before_free);
    buddy.checkInvariants();
}

TEST_F(BuddyTest, MovablePagesInCountsCorrectly)
{
    auto m = buddy.alloc(3, Migrate::Movable); // 8 pages at top
    ASSERT_TRUE(m);
    EXPECT_EQ(buddy.movablePagesIn(PageRange{15 * kBlock, kBlock}), 8u);
    EXPECT_EQ(buddy.movablePagesIn(PageRange{0, kBlock}), 0u);
}

TEST(BuddyConfig, UnalignedBaseIsFatal)
{
    EXPECT_THROW(BuddyAllocator("bad", 17, 4096), sim::FatalError);
}

/** Property test: randomized alloc/free sequences keep invariants. */
class BuddyPropertyTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(BuddyPropertyTest, RandomOpsPreserveInvariants)
{
    sim::Rng rng(GetParam());
    BuddyAllocator buddy("prop", 0, 8 * kBlock);
    buddy.addFreeRange(PageRange{0, 8 * kBlock});

    std::vector<Pfn> live;
    std::uint64_t expect_free = 8 * kBlock;
    std::uint64_t live_pages = 0;

    for (int step = 0; step < 2000; ++step) {
        const bool do_alloc = live.empty() || rng.chance(0.55);
        if (do_alloc) {
            const auto order = static_cast<unsigned>(rng.below(9));
            const auto mig = rng.chance(0.75) ? Migrate::Movable
                                              : Migrate::Unmovable;
            auto r = buddy.alloc(order, mig);
            if (r) {
                live.push_back(r->range.first);
                expect_free -= r->range.count;
                live_pages += r->range.count;
                // Block alignment invariant.
                EXPECT_EQ(r->range.first % r->range.count, 0u);
            }
        } else {
            const auto idx = rng.below(live.size());
            const Pfn p = live[idx];
            const std::uint64_t n =
                1ull << (buddy.isAllocated(p) ? 0 : 0); // placeholder
            (void)n;
            // Count pages via allocated delta.
            const auto before = buddy.allocatedPages();
            buddy.free(p);
            const auto freed = before - buddy.allocatedPages();
            expect_free += freed;
            live_pages -= freed;
            live[idx] = live.back();
            live.pop_back();
        }
        EXPECT_EQ(buddy.freePages(), expect_free);
        EXPECT_EQ(buddy.allocatedPages(), live_pages);
    }
    buddy.checkInvariants();

    // Free everything: memory fully coalesces.
    for (Pfn p : live)
        buddy.free(p);
    buddy.checkInvariants();
    EXPECT_EQ(buddy.freePages(), 8 * kBlock);
    EXPECT_EQ(buddy.largestFreeOrder(),
              std::optional<unsigned>(BuddyAllocator::kMaxOrder));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuddyPropertyTest,
                         ::testing::Values(1, 2, 3, 42, 1337, 99991));

/** Property test: repeated reclaim/donate cycles are lossless. */
TEST(BuddyBalloonProperty, ReclaimDonateCycles)
{
    sim::Rng rng(7);
    BuddyAllocator buddy("cycle", 0, 8 * kBlock);
    buddy.addFreeRange(PageRange{0, 8 * kBlock});

    std::vector<Pfn> live;
    for (int i = 0; i < 50; ++i) {
        auto r = buddy.alloc(static_cast<unsigned>(rng.below(6)),
                             Migrate::Movable);
        if (r)
            live.push_back(r->range.first);
    }

    std::vector<PageRange> out; // ranges currently reclaimed
    for (int cycle = 0; cycle < 30; ++cycle) {
        if (out.empty() || rng.chance(0.5)) {
            const std::uint64_t blk = rng.below(8);
            const PageRange range{blk * kBlock, kBlock};
            // Skip if already reclaimed.
            bool taken = false;
            for (const auto &o : out)
                taken |= (o.first == range.first);
            if (taken)
                continue;
            auto res = buddy.reclaimRange(range);
            if (res.ok)
                out.push_back(range);
        } else {
            buddy.addFreeRange(out.back());
            out.pop_back();
        }
        buddy.checkInvariants();
    }
}

} // namespace
} // namespace k2::kern
