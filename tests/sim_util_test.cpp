/**
 * @file
 * Unit tests for PRNG, stats, and logging utilities.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "sim/log.h"
#include "sim/random.h"
#include "sim/stats.h"
#include "sim/time.h"

namespace k2::sim {
namespace {

TEST(Rng, Deterministic)
{
    Rng a(1234);
    Rng b(1234);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng rng(42);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(7);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 6);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformRoughlyUniform)
{
    Rng rng(99);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.uniform();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(10);
    EXPECT_EQ(c.value(), 11u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Accumulator, Moments)
{
    Accumulator acc;
    EXPECT_EQ(acc.mean(), 0.0);
    acc.sample(1.0);
    acc.sample(2.0);
    acc.sample(3.0);
    EXPECT_EQ(acc.count(), 3u);
    EXPECT_DOUBLE_EQ(acc.sum(), 6.0);
    EXPECT_DOUBLE_EQ(acc.mean(), 2.0);
    EXPECT_DOUBLE_EQ(acc.min(), 1.0);
    EXPECT_DOUBLE_EQ(acc.max(), 3.0);
}

TEST(Histogram, PercentileMonotonic)
{
    Histogram h;
    for (int i = 1; i <= 1024; ++i)
        h.sample(static_cast<double>(i));
    EXPECT_LE(h.percentile(0.5), h.percentile(0.99));
    EXPECT_GE(h.percentile(0.99), 512.0);
}

TEST(Accumulator, EmptyMinMaxAreNaN)
{
    Accumulator acc;
    EXPECT_TRUE(std::isnan(acc.min()));
    EXPECT_TRUE(std::isnan(acc.max()));
    EXPECT_EQ(acc.mean(), 0.0);
    acc.sample(5.0);
    EXPECT_DOUBLE_EQ(acc.min(), 5.0);
    EXPECT_DOUBLE_EQ(acc.max(), 5.0);
    acc.reset();
    EXPECT_TRUE(std::isnan(acc.min()));
    EXPECT_TRUE(std::isnan(acc.max()));
}

TEST(Histogram, BucketBoundaries)
{
    // Bucket 0 absorbs [0, 2) including zero and sub-unit samples;
    // bucket i holds [2^i, 2^(i+1)).
    EXPECT_EQ(Histogram::bucketIndex(0.0), 0u);
    EXPECT_EQ(Histogram::bucketIndex(0.5), 0u);
    EXPECT_EQ(Histogram::bucketIndex(1.0), 0u);
    EXPECT_EQ(Histogram::bucketIndex(1.999), 0u);
    EXPECT_EQ(Histogram::bucketIndex(2.0), 1u);
    EXPECT_EQ(Histogram::bucketIndex(3.999), 1u);
    EXPECT_EQ(Histogram::bucketIndex(4.0), 2u);
    EXPECT_EQ(Histogram::bucketIndex(1024.0), 10u);
    EXPECT_EQ(Histogram::bucketIndex(2047.0), 10u);
    EXPECT_EQ(Histogram::bucketIndex(2048.0), 11u);
}

TEST(Histogram, HugeValuesDoNotOverflowTheCast)
{
    // Values at or above 2^63 would be UB to cast to uint64_t; they
    // must land in the last bucket instead.
    EXPECT_EQ(Histogram::bucketIndex(9.3e18), Histogram::kBuckets - 1);
    EXPECT_EQ(Histogram::bucketIndex(1e300), Histogram::kBuckets - 1);
    EXPECT_EQ(Histogram::bucketIndex(
                  std::numeric_limits<double>::infinity()),
              Histogram::kBuckets - 1);
    Histogram h;
    h.sample(1e300);
    EXPECT_EQ(h.bucket(Histogram::kBuckets - 1), 1u);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 1e300);
}

TEST(Histogram, ZeroAndSubUnitSamples)
{
    Histogram h;
    h.sample(0.0);
    h.sample(0.5);
    EXPECT_EQ(h.bucket(0), 2u);
    // Nearest-rank: the median of two samples is the lower one (rank
    // ceil(0.5 * 2) = 1), which is tracked exactly as the min.
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 0.5);
}

TEST(Histogram, NearestRankTwoSampleMedian)
{
    // Regression: the median of {1, 2^20} is 1, not 2^20. The old
    // truncated-target / strictly-greater cumulative scan skipped 1's
    // bucket entirely and reported the top sample as the median.
    Histogram h;
    h.sample(1.0);
    h.sample(static_cast<double>(1u << 20));
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 1.0);
    // p=1 is the max-rank order statistic.
    EXPECT_DOUBLE_EQ(h.percentile(1.0), static_cast<double>(1u << 20));
}

TEST(Histogram, NearestRankEdgeCases)
{
    Histogram h;
    h.sample(3.0);
    h.sample(5.0);
    h.sample(100.0);
    // p=0 (and any p whose rank rounds to 1) is the exact minimum.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 3.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.2), 3.0);
    // rank ceil(0.5*3) = 2 -> 5.0's bucket [4,8); reported as the
    // bucket's upper edge clamped into the observed range.
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 8.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 100.0);
    // Out-of-range p clamps instead of misbehaving.
    EXPECT_DOUBLE_EQ(h.percentile(-0.5), 3.0);
    EXPECT_DOUBLE_EQ(h.percentile(7.0), 100.0);
}

TEST(Histogram, NearestRankSingleBucket)
{
    // All mass in one bucket: every percentile collapses into the
    // observed [min, max] range, min for rank 1 and the clamped edge
    // otherwise.
    Histogram h;
    for (int i = 0; i < 100; ++i)
        h.sample(40.0 + static_cast<double>(i % 8)); // bucket [32,64)
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 40.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 47.0);  // upper edge 64 clamped
    EXPECT_DOUBLE_EQ(h.percentile(0.999), 47.0);
}

TEST(Histogram, ExactPowersOfTwo)
{
    Histogram h;
    for (int i = 1; i <= 16; ++i)
        h.sample(static_cast<double>(1ull << i));
    // 2^i sits at the inclusive lower edge of bucket i.
    for (std::size_t i = 1; i <= 16; ++i)
        EXPECT_EQ(h.bucket(i), 1u) << "bucket " << i;
    // Percentiles never exceed the observed maximum.
    EXPECT_LE(h.percentile(0.99), h.acc().max());
    EXPECT_LE(h.percentile(0.5), h.percentile(0.99));
}

TEST(Histogram, EmptyPercentileIsZero)
{
    Histogram h;
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 0.0);
}

TEST(Log, FatalThrows)
{
    EXPECT_THROW(K2_FATAL("bad config value %d", 3), FatalError);
}

TEST(Log, FormatTimeUnits)
{
    EXPECT_EQ(formatTime(psec(5)), "5 ps");
    EXPECT_NE(formatTime(usec(123)).find("us"), std::string::npos);
    EXPECT_NE(formatTime(sec(100)).find(" s"), std::string::npos);
}

} // namespace
} // namespace k2::sim
