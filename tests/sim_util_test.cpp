/**
 * @file
 * Unit tests for PRNG, stats, and logging utilities.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/log.h"
#include "sim/random.h"
#include "sim/stats.h"
#include "sim/time.h"

namespace k2::sim {
namespace {

TEST(Rng, Deterministic)
{
    Rng a(1234);
    Rng b(1234);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng rng(42);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(7);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 6);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformRoughlyUniform)
{
    Rng rng(99);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.uniform();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(10);
    EXPECT_EQ(c.value(), 11u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Accumulator, Moments)
{
    Accumulator acc;
    EXPECT_EQ(acc.mean(), 0.0);
    acc.sample(1.0);
    acc.sample(2.0);
    acc.sample(3.0);
    EXPECT_EQ(acc.count(), 3u);
    EXPECT_DOUBLE_EQ(acc.sum(), 6.0);
    EXPECT_DOUBLE_EQ(acc.mean(), 2.0);
    EXPECT_DOUBLE_EQ(acc.min(), 1.0);
    EXPECT_DOUBLE_EQ(acc.max(), 3.0);
}

TEST(Histogram, PercentileMonotonic)
{
    Histogram h;
    for (int i = 1; i <= 1024; ++i)
        h.sample(static_cast<double>(i));
    EXPECT_LE(h.percentile(0.5), h.percentile(0.99));
    EXPECT_GE(h.percentile(0.99), 512.0);
}

TEST(Log, FatalThrows)
{
    EXPECT_THROW(K2_FATAL("bad config value %d", 3), FatalError);
}

TEST(Log, FormatTimeUnits)
{
    EXPECT_EQ(formatTime(psec(5)), "5 ps");
    EXPECT_NE(formatTime(usec(123)).find("us"), std::string::npos);
    EXPECT_NE(formatTime(sec(100)).find(" s"), std::string::npos);
}

} // namespace
} // namespace k2::sim
