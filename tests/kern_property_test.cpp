/**
 * @file
 * Property tests for the scheduler and platform primitives under
 * randomized load: completion, fairness, mailbox ordering, spinlock
 * mutual exclusion, and energy-meter conservation.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "sim/random.h"
#include "kern/kernel.h"

namespace k2::kern {
namespace {

using sim::Task;

class SchedPropertyTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(SchedPropertyTest, RandomThreadMixAllComplete)
{
    sim::Engine eng;
    auto cfg = soc::omap4Config();
    cfg.costs.inactiveTimeout = 0;
    soc::Soc soc(eng, cfg);
    Kernel kernel(soc, soc::kStrongDomain, "main");
    kernel.boot();
    kernel.pageAllocator().addFreeRange(PageRange{0, 1 << 16});
    Process proc(1, "p");
    sim::Rng rng(GetParam());

    constexpr int kThreads = 24;
    int done = 0;
    std::vector<sim::Duration> cpu_used(kThreads, 0);

    for (int i = 0; i < kThreads; ++i) {
        const int steps = 3 + static_cast<int>(rng.below(6));
        // Pre-draw the random plan so the thread body is deterministic
        // regardless of interleaving.
        std::vector<std::pair<int, std::uint64_t>> plan;
        for (int s = 0; s < steps; ++s)
            plan.emplace_back(static_cast<int>(rng.below(4)),
                              1000 + rng.below(400000));
        kernel.spawnThread(
            &proc, "w" + std::to_string(i), ThreadKind::Normal,
            [&, i, plan](Thread &t) -> Task<void> {
                for (const auto &[op, amount] : plan) {
                    switch (op) {
                      case 0:
                        co_await t.exec(amount);
                        break;
                      case 1:
                        co_await t.sleep(sim::usec(amount / 100));
                        break;
                      case 2:
                        co_await t.yield();
                        break;
                      case 3: {
                        PageRange r =
                            co_await kernel.allocPages(t, 0);
                        if (!r.empty())
                            co_await kernel.freePages(t, r);
                        break;
                      }
                    }
                }
                cpu_used[static_cast<std::size_t>(i)] = 1;
                ++done;
            });
    }
    eng.run();
    EXPECT_EQ(done, kThreads);
    EXPECT_EQ(kernel.scheduler().runqueueDepth(), 0u);
    kernel.pageAllocator().checkInvariants();
}

TEST_P(SchedPropertyTest, CpuBoundThreadsShareFairly)
{
    sim::Engine eng;
    auto cfg = soc::omap4Config();
    cfg.costs.inactiveTimeout = 0;
    soc::Soc soc(eng, cfg);
    // One core so sharing is forced.
    Kernel kernel(soc, soc::kWeakDomain, "shadow");
    kernel.boot();
    Process proc(1, "p");

    // Threads of equal demand must finish within ~2 quanta + switch
    // overhead of each other.
    constexpr int kThreads = 4;
    std::vector<sim::Time> finish(kThreads);
    for (int i = 0; i < kThreads; ++i) {
        kernel.spawnThread(&proc, "w" + std::to_string(i),
                           ThreadKind::Normal,
                           [&, i](Thread &t) -> Task<void> {
                               co_await t.exec(1600000); // 10 ms at M3
                               finish[static_cast<std::size_t>(i)] =
                                   eng.now();
                           });
    }
    eng.run();
    const auto minmax =
        std::minmax_element(finish.begin(), finish.end());
    EXPECT_LT(*minmax.second - *minmax.first, sim::msec(12));
    (void)GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedPropertyTest,
                         ::testing::Values(5, 55, 555, 5555));

TEST(MailboxProperty, RandomTrafficStaysFifoPerDirection)
{
    sim::Engine eng;
    soc::Soc soc(eng, soc::omap4Config());
    sim::Rng rng(77);

    std::vector<std::uint32_t> sent_to_weak;
    std::vector<std::uint32_t> sent_to_strong;
    std::vector<std::uint32_t> got_weak;
    std::vector<std::uint32_t> got_strong;

    soc.domain(soc::kWeakDomain).irqCtrl().registerHandler(
        soc::kIrqMailbox, [&](soc::Core &) -> Task<void> {
            while (auto m = soc.mailbox().tryRead(soc::kWeakDomain))
                got_weak.push_back(m->word);
            co_return;
        });
    soc.domain(soc::kStrongDomain).irqCtrl().registerHandler(
        soc::kIrqMailbox, [&](soc::Core &) -> Task<void> {
            while (auto m = soc.mailbox().tryRead(soc::kStrongDomain))
                got_strong.push_back(m->word);
            co_return;
        });

    std::uint32_t word = 0;
    for (int i = 0; i < 200; ++i) {
        const bool to_weak = rng.chance(0.5);
        const auto at = eng.now() + sim::usec(rng.below(50));
        const std::uint32_t w = word++;
        eng.at(at, [&, to_weak, w]() {
            if (to_weak) {
                sent_to_weak.push_back(w);
                soc.mailbox().send(soc::kStrongDomain,
                                   soc::kWeakDomain, w);
            } else {
                sent_to_strong.push_back(w);
                soc.mailbox().send(soc::kWeakDomain,
                                   soc::kStrongDomain, w);
            }
        });
        eng.run(eng.now() + sim::usec(rng.below(30)));
    }
    eng.run();
    EXPECT_EQ(got_weak, sent_to_weak);
    EXPECT_EQ(got_strong, sent_to_strong);
}

TEST(SpinlockProperty, ManyContendersNeverOverlap)
{
    sim::Engine eng;
    auto cfg = soc::omap4Config();
    cfg.costs.inactiveTimeout = 0;
    soc::Soc soc(eng, cfg);
    int inside = 0;
    int peak = 0;
    int completed = 0;

    auto contender = [&](soc::Core &core) -> Task<void> {
        for (int i = 0; i < 5; ++i) {
            co_await soc.spinlocks().acquire(7, core);
            ++inside;
            peak = std::max(peak, inside);
            co_await core.execTime(sim::usec(3));
            --inside;
            soc.spinlocks().release(7);
            co_await eng.sleep(sim::usec(1));
        }
        ++completed;
    };
    eng.spawn(contender(soc.domain(soc::kStrongDomain).core(0)));
    eng.spawn(contender(soc.domain(soc::kStrongDomain).core(1)));
    eng.spawn(contender(soc.domain(soc::kWeakDomain).core(0)));
    eng.run();
    EXPECT_EQ(completed, 3);
    EXPECT_EQ(peak, 1);
    EXPECT_FALSE(soc.spinlocks().isHeld(7));
}

TEST(EnergyMeterProperty, RailDecompositionSumsToTotal)
{
    sim::Engine eng;
    soc::Soc soc(eng, soc::omap4Config());
    eng.spawn([](soc::Soc &soc) -> Task<void> {
        co_await soc.domain(soc::kStrongDomain).core(0).exec(350000);
        co_await soc.domain(soc::kWeakDomain).core(0).exec(160000);
    }(soc));
    eng.run(sim::sec(1));

    double sum = 0;
    for (soc::RailId r = 0; r < soc.meter().numRails(); ++r)
        sum += soc.meter().energyUj(r);
    EXPECT_NEAR(sum, soc.meter().totalEnergyUj(), 1e-6);
    // Both rails actually accumulated energy.
    EXPECT_GT(soc.meter().energyUj(
                  soc.domain(soc::kStrongDomain).rail()),
              0.0);
    EXPECT_GT(soc.meter().energyUj(soc.domain(soc::kWeakDomain).rail()),
              0.0);
}

TEST(CorePinProperty, PinnedCoreStaysActiveAcrossWait)
{
    sim::Engine eng;
    auto cfg = soc::omap4Config();
    soc::Soc soc(eng, cfg);
    auto &core = soc.domain(soc::kStrongDomain).core(0);
    sim::Event ev(eng);
    eng.spawn([](soc::Core &core, sim::Event &ev) -> Task<void> {
        co_await core.ensureAwake();
        core.pinActive();
        co_await ev.wait();
        core.unpinActive();
    }(core, ev));
    eng.run(sim::msec(10));
    EXPECT_EQ(core.state(), soc::PowerState::Active);
    EXPECT_GE(core.activeTime(), sim::msec(9));
    ev.set();
    eng.run(sim::msec(11));
    EXPECT_EQ(core.state(), soc::PowerState::Idle);
}

} // namespace
} // namespace k2::kern
