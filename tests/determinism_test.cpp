/**
 * @file
 * Determinism regression tests: two identical runs of the same
 * scenario must agree bit-for-bit on event counts, simulated time, and
 * integrated energy. This is the property that makes every other
 * result in this repository reproducible.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace_export.h"
#include "sim/random.h"
#include "workloads/benchmarks.h"
#include "workloads/testbed.h"

namespace k2 {
namespace {

struct Fingerprint
{
    std::uint64_t events;
    sim::Time end;
    double energyUj;
    std::uint64_t dsmMessages;
    std::uint64_t switches;

    bool operator==(const Fingerprint &) const = default;
};

Fingerprint
runScenario(std::uint64_t seed)
{
    os::K2Config cfg;
    auto tb = wl::Testbed::makeK2(cfg);
    sim::Rng rng(seed);

    // A busy mixed scenario: fs + udp + dma from both domains.
    for (int i = 0; i < 6; ++i) {
        const std::uint64_t bytes = 1024 + rng.below(65536);
        wl::runEpisode(tb.sys(), tb.proc(), "w",
                       (i % 3 == 0)
                           ? wl::dmaCopy(tb.dma(), 4096, bytes)
                           : (i % 3 == 1)
                               ? wl::ext2Sync(tb.fs(), bytes, 2)
                               : wl::udpLoopback(tb.udp(), 8192, bytes));
    }
    return Fingerprint{
        tb.engine().eventsDispatched(),
        tb.engine().now(),
        tb.sys().soc().meter().totalEnergyUj(),
        tb.k2()->dsm().messagesSent(),
        tb.sys().mainKernel().scheduler().contextSwitches() +
            tb.k2()->shadowKernel().scheduler().contextSwitches(),
    };
}

TEST(Determinism, IdenticalRunsProduceIdenticalFingerprints)
{
    const Fingerprint a = runScenario(42);
    const Fingerprint b = runScenario(42);
    EXPECT_EQ(a, b);
    EXPECT_GT(a.events, 1000u);
    EXPECT_GT(a.dsmMessages, 0u);
}

TEST(Determinism, DifferentSeedsDiverge)
{
    const Fingerprint a = runScenario(1);
    const Fingerprint b = runScenario(2);
    EXPECT_NE(a.end, b.end);
}

TEST(Determinism, MetricsAndTraceArtifactsAreByteIdentical)
{
    auto run = [](std::uint64_t seed) {
        auto tb = wl::Testbed::makeK2();
        tb.engine().tracer().enableSpans();
        tb.engine().tracer().enable(sim::kTraceAll);

        obs::MetricsRegistry reg;
        tb.registerMetrics(reg);

        sim::Rng rng(seed);
        for (int i = 0; i < 3; ++i) {
            const std::uint64_t bytes = 1024 + rng.below(16384);
            wl::runEpisode(tb.sys(), tb.proc(), "w",
                           (i % 3 == 0)
                               ? wl::dmaCopy(tb.dma(), 4096, bytes)
                               : (i % 3 == 1)
                                   ? wl::ext2Sync(tb.fs(), bytes, 2)
                                   : wl::udpLoopback(tb.udp(), 8192,
                                                     bytes));
        }
        return std::make_pair(
            reg.snapshot().toJson(),
            obs::chromeTraceJson(tb.engine().tracer()));
    };

    const auto [metrics_a, trace_a] = run(7);
    const auto [metrics_b, trace_b] = run(7);
    EXPECT_EQ(metrics_a, metrics_b);
    EXPECT_EQ(trace_a, trace_b);
    // And the artifacts are non-trivial: the registry covers the sim,
    // the hardware, the OS, and the services; the trace has spans.
    for (const char *key :
         {"\"sim.events_dispatched\"", "\"soc.power.",
          "\"os.dsm.shadow.faults\"", "\"svc.dma.transfers\""})
        EXPECT_NE(metrics_a.find(key), std::string::npos) << key;
    EXPECT_NE(trace_a.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(trace_a.find("os.dsm.shadow"), std::string::npos);
}

TEST(Determinism, DumpStateIsStable)
{
    auto run = []() {
        os::K2Config cfg;
        cfg.soc.costs.inactiveTimeout = 0;
        os::K2System sys(cfg);
        auto &proc = sys.createProcess("p");
        sys.spawnNormal(proc, "t",
                        [](kern::Thread &t) -> sim::Task<void> {
                            co_await t.exec(350000);
                        });
        sys.ownedEngine().run();
        std::ostringstream os;
        sys.dumpState(os);
        return os.str();
    };
    const std::string a = run();
    const std::string b = run();
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("kernel 'main'"), std::string::npos);
    EXPECT_NE(a.find("memory blocks"), std::string::npos);
    EXPECT_NE(a.find("irq routing"), std::string::npos);
}

} // namespace
} // namespace k2
