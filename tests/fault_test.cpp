/**
 * @file
 * Fault plane and recovery-protocol tests: plan parsing, injector
 * determinism, the zero-fault bit-identity guard, the ARQ / DSM-retry
 * / watchdog recovery units, crash recovery end to end, seeded fuzz
 * runs asserting data integrity under random fault plans, and sweep
 * determinism of faulted cells across job counts.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "fault/injector.h"
#include "fault/plan.h"
#include "obs/metrics.h"
#include "sim/log.h"
#include "workloads/sweep.h"
#include "workloads/testbed.h"

namespace k2 {
namespace {

using kern::Thread;
using kern::ThreadKind;
using sim::Task;

// ---------------------------------------------------------------------
// FaultPlan parsing.
// ---------------------------------------------------------------------

TEST(FaultPlan, ParsesMixedSpec)
{
    const auto plan =
        fault::FaultPlan::parse("mailbox.drop:p=1e-3,dma.err:at=2s");
    ASSERT_EQ(plan.specs().size(), 2u);
    EXPECT_EQ(plan.specs()[0].kind, fault::FaultKind::MailDrop);
    EXPECT_DOUBLE_EQ(plan.specs()[0].p, 1e-3);
    EXPECT_EQ(plan.specs()[1].kind, fault::FaultKind::DmaTransferError);
    EXPECT_EQ(plan.specs()[1].at, sim::sec(2));
    EXPECT_FALSE(plan.empty());
    EXPECT_NE(plan.summary().find("mailbox.drop"), std::string::npos);
}

TEST(FaultPlan, ParsesTargetFiltersBurstAndSeed)
{
    const auto plan = fault::FaultPlan::parse(
        "irq.lost:line=7:dom=1:p=0.5:burst=3,seed=42");
    ASSERT_EQ(plan.specs().size(), 1u);
    const fault::FaultSpec &s = plan.specs()[0];
    EXPECT_EQ(s.kind, fault::FaultKind::IrqLost);
    EXPECT_EQ(s.line, 7u);
    EXPECT_EQ(s.domain, 1u);
    EXPECT_EQ(s.burst, 3u);
    EXPECT_EQ(plan.seed, 42u);
}

TEST(FaultPlan, RejectsMalformedSpecs)
{
    EXPECT_THROW(fault::FaultPlan::parse("bogus"), sim::FatalError);
    EXPECT_THROW(fault::FaultPlan::parse("p=0.1"), sim::FatalError);
    EXPECT_THROW(fault::FaultPlan::parse("mailbox.drop:p=2"),
                 sim::FatalError);
    EXPECT_THROW(fault::FaultPlan::parse("mailbox.drop:burst=0"),
                 sim::FatalError);
    // Scheduled conditions are one-shot, not probabilistic.
    EXPECT_THROW(fault::FaultPlan::parse("domain.crash:p=0.5"),
                 sim::FatalError);
}

/** A rejected spec names the malformed field's character offset. */
TEST(FaultPlan, RejectionsCarryCharPositions)
{
    const auto rejectAt = [](const std::string &spec,
                             const char *fragment) {
        try {
            (void)fault::FaultPlan::parse(spec);
            ADD_FAILURE() << "spec '" << spec << "' parsed";
        } catch (const sim::FatalError &e) {
            EXPECT_NE(std::string(e.what()).find(fragment),
                      std::string::npos)
                << "spec '" << spec << "' error: " << e.what();
        }
    };
    // "typo=1" starts at char 13 of "mailbox.drop:typo=1".
    rejectAt("mailbox.drop:typo=1", "at char 13");
    // Bare word at the head of the spec.
    rejectAt("bogus", "at char 0");
    // Parameter before any fault kind.
    rejectAt("p=0.5,mailbox.drop", "at char 0");
    // Malformed value: offset points at the value, not the key
    // ("zzz" starts at char 15).
    rejectAt("mailbox.drop:p=zzz", "at char 15");
    rejectAt("mailbox.drop:p=7", "at char 15");
    rejectAt("mailbox.drop:burst=nope", "at char 19");
    rejectAt("domain.crash:at=10lightyears", "at char 16");
    // Second spec's bad field: the offset disambiguates it from an
    // identical first token.
    rejectAt("mailbox.drop:p=1e-3,irq.lost:line=x", "at char 34");
}

/** The accept path is unchanged by the hardening. */
TEST(FaultPlan, AcceptsSpecsWithAllKeys)
{
    const auto plan = fault::FaultPlan::parse(
        "domain.crash:at=5ms:dom=1:len=2ms,"
        "mailbox.flip:p=0.25:burst=2,seed=9");
    ASSERT_EQ(plan.specs().size(), 2u);
    EXPECT_EQ(plan.specs()[0].at, sim::msec(5));
    EXPECT_EQ(plan.specs()[0].len, sim::msec(2));
    EXPECT_EQ(plan.specs()[1].burst, 2u);
    EXPECT_EQ(plan.seed, 9u);
}

TEST(FaultPlan, ParsesDurations)
{
    EXPECT_EQ(fault::parseDuration("2s"), sim::sec(2));
    EXPECT_EQ(fault::parseDuration("10ms"), sim::msec(10));
    EXPECT_EQ(fault::parseDuration("500us"), sim::usec(500));
    EXPECT_EQ(fault::parseDuration("250ns"), sim::nsec(250));
    EXPECT_THROW(fault::parseDuration("10lightyears"), sim::FatalError);
}

// ---------------------------------------------------------------------
// FaultInjector decision stream.
// ---------------------------------------------------------------------

std::vector<int>
mailFates(std::uint64_t seed, int n)
{
    sim::Engine eng;
    fault::FaultPlan plan;
    plan.seed = seed;
    fault::FaultSpec s;
    s.kind = fault::FaultKind::MailDrop;
    s.p = 0.3;
    plan.add(s);
    fault::FaultInjector inj(eng, plan);
    std::vector<int> fates;
    for (int i = 0; i < n; ++i) {
        std::uint32_t word = 0xABCD;
        fates.push_back(
            static_cast<int>(inj.onMailDeliver(0, 1, word)));
    }
    return fates;
}

TEST(FaultInjector, SameSeedSameDecisions)
{
    EXPECT_EQ(mailFates(7, 500), mailFates(7, 500));
    EXPECT_NE(mailFates(7, 500), mailFates(8, 500));
}

TEST(FaultInjector, CrashSeversMailAndRevives)
{
    sim::Engine eng;
    fault::FaultPlan plan;
    fault::FaultSpec crash;
    crash.kind = fault::FaultKind::DomainCrash;
    crash.domain = soc::kWeakDomain;
    crash.at = 0; // Down from the start.
    plan.add(crash);
    fault::FaultInjector inj(eng, plan);

    EXPECT_TRUE(inj.domainDown(soc::kWeakDomain));
    EXPECT_FALSE(inj.domainDown(soc::kStrongDomain));
    EXPECT_EQ(inj.crashTime(soc::kWeakDomain), 0u);

    std::uint32_t word = 0x1234;
    EXPECT_EQ(inj.onMailDeliver(soc::kStrongDomain, soc::kWeakDomain,
                                word),
              fault::FaultInjector::MailFate::Drop);
    EXPECT_EQ(inj.onMailDeliver(soc::kWeakDomain, soc::kStrongDomain,
                                word),
              fault::FaultInjector::MailFate::Drop);
    EXPECT_EQ(inj.crashMailDrops(), 2u);

    inj.revive(soc::kWeakDomain);
    EXPECT_FALSE(inj.domainDown(soc::kWeakDomain));
    EXPECT_EQ(inj.onMailDeliver(soc::kStrongDomain, soc::kWeakDomain,
                                word),
              fault::FaultInjector::MailFate::Deliver);
}

// ---------------------------------------------------------------------
// Shared helpers for the recovery tests.
// ---------------------------------------------------------------------

std::vector<std::uint8_t>
pattern(std::size_t n, std::uint8_t seed)
{
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>(seed + i * 13);
    return v;
}

/** Write @p data to @p path (create, write, close) from @p t. */
Task<void>
writeFile(wl::Testbed &tb, Thread &t, const std::string &path,
          const std::vector<std::uint8_t> &data)
{
    const auto fd = co_await tb.fs().create(t, path);
    EXPECT_GE(fd, 0);
    EXPECT_EQ(co_await tb.fs().write(
                  t, static_cast<int>(fd),
                  std::span<const std::uint8_t>(data)),
              static_cast<std::int64_t>(data.size()));
    co_await tb.fs().close(t, static_cast<int>(fd));
}

/** Read @p path from @p t and require its content to equal @p want. */
Task<void>
verifyFile(wl::Testbed &tb, Thread &t, const std::string &path,
           const std::vector<std::uint8_t> &want)
{
    const auto fd = co_await tb.fs().open(t, path);
    EXPECT_GE(fd, 0);
    std::vector<std::uint8_t> got(want.size(), 0);
    EXPECT_EQ(co_await tb.fs().read(t, static_cast<int>(fd),
                                    std::span<std::uint8_t>(got)),
              static_cast<std::int64_t>(want.size()));
    EXPECT_EQ(got, want);
    co_await tb.fs().close(t, static_cast<int>(fd));
}

/** UDP loopback of @p msg within @p t's kernel; verifies the bytes. */
Task<void>
udpRoundtrip(wl::Testbed &tb, Thread &t, int port,
             const std::vector<std::uint8_t> &msg)
{
    auto &udp = tb.udp();
    const auto tx = co_await udp.socket(t);
    const auto rx = co_await udp.socket(t);
    co_await udp.bind(t, static_cast<int>(rx), port);
    EXPECT_EQ(co_await udp.sendTo(t, static_cast<int>(tx), port,
                                  std::span<const std::uint8_t>(msg)),
              static_cast<std::int64_t>(msg.size()));
    std::vector<std::uint8_t> got(msg.size(), 0);
    EXPECT_EQ(co_await udp.recvFrom(t, static_cast<int>(rx), got),
              static_cast<std::int64_t>(msg.size()));
    EXPECT_EQ(got, msg);
    co_await udp.close(t, static_cast<int>(tx));
    co_await udp.close(t, static_cast<int>(rx));
}

std::uint64_t
counterOf(const obs::MetricsSnapshot &snap, const std::string &name)
{
    const obs::MetricValue *v = snap.find(name);
    return v ? v->count : 0;
}

// ---------------------------------------------------------------------
// Zero-fault guard: an empty plan must be bit-identical to a build
// that never heard of the fault plane.
// ---------------------------------------------------------------------

/** One small deterministic run; returns (metrics JSON, end time). */
std::pair<std::string, sim::Time>
guardRun(os::K2Config cfg)
{
    cfg.soc.costs.inactiveTimeout = 0;
    auto tb = wl::Testbed::makeK2(cfg);
    obs::MetricsRegistry reg;
    tb.registerMetrics(reg);
    const auto data = pattern(8192, 21);
    tb.sys().spawnNormal(tb.proc(), "t", [&](Thread &t) -> Task<void> {
        co_await writeFile(tb, t, "/guard", data);
        co_await verifyFile(tb, t, "/guard", data);
        co_await udpRoundtrip(tb, t, 7000, data);
    });
    tb.engine().run();
    return {reg.snapshot().toJson(), tb.engine().now()};
}

TEST(ZeroFaultGuard, EmptyPlanIsBitIdentical)
{
    const auto dflt = guardRun(os::K2Config{});
    os::K2Config with_empty_plan;
    with_empty_plan.faults = fault::FaultPlan{};
    const auto empty = guardRun(std::move(with_empty_plan));
    EXPECT_EQ(dflt.first, empty.first);
    EXPECT_EQ(dflt.second, empty.second);
    // Disarmed: not a single fault/recovery metric may exist.
    EXPECT_EQ(dflt.first.find("fault."), std::string::npos);
    EXPECT_EQ(dflt.first.find("os.recovery"), std::string::npos);
    EXPECT_EQ(dflt.first.find("os.dsm.retries"), std::string::npos);
}

TEST(ZeroFaultGuard, ArmedSystemExposesRecoveryMetrics)
{
    os::K2Config cfg;
    cfg.recovery.force = true; // Armed, but nothing ever fires.
    const auto armed = guardRun(std::move(cfg));
    EXPECT_NE(armed.first.find("os.recovery.mail.tracked_sent"),
              std::string::npos);
    EXPECT_NE(armed.first.find("fault.injected.mailbox.drop"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Recovery units.
// ---------------------------------------------------------------------

/**
 * The shared shape of the mail-recovery units: a shadow writer leaves
 * a file's pages shadow-owned, a main reader starts after a quiet
 * window at t=10ms, and a one-shot fault armed at t=9ms therefore hits
 * the reader's first (tracked) GetExclusive mail.
 */
wl::Testbed
crossKernelReadUnderFault(fault::FaultSpec spec,
                          const std::vector<std::uint8_t> &data)
{
    os::K2Config cfg;
    cfg.soc.costs.inactiveTimeout = 0;
    spec.at = sim::msec(9);
    cfg.faults.add(spec);
    auto tb = wl::Testbed::makeK2(cfg);

    auto &proc2 = tb.sys().createProcess("shadow-writer");
    tb.k2()->shadowKernel().spawnThread(
        &proc2, "writer", ThreadKind::Normal,
        [&tb, &data](Thread &t) -> Task<void> {
            co_await writeFile(tb, t, "/unit", data);
        });
    tb.sys().spawnNormal(tb.proc(), "reader",
                         [&tb, &data](Thread &t) -> Task<void> {
                             co_await t.sleep(sim::msec(10));
                             co_await verifyFile(tb, t, "/unit", data);
                         });
    tb.engine().run();
    return tb;
}

TEST(Recovery, RetransmitRecoversDroppedMail)
{
    fault::FaultSpec drop;
    drop.kind = fault::FaultKind::MailDrop;
    const auto data = pattern(8192, 3);
    auto tb = crossKernelReadUnderFault(drop, data);

    os::ReliableMail *mail = tb.k2()->reliableMail();
    ASSERT_NE(mail, nullptr);
    EXPECT_GE(mail->retransmits(), 1u);
    EXPECT_EQ(mail->giveups(), 0u);
    obs::MetricsRegistry reg;
    tb.registerMetrics(reg);
    EXPECT_EQ(counterOf(reg.snapshot(),
                        "fault.injected.mailbox.drop"),
              1u);
}

TEST(Recovery, DuplicateDeliverySuppressed)
{
    fault::FaultSpec dup;
    dup.kind = fault::FaultKind::MailDuplicate;
    const auto data = pattern(4096, 9);
    auto tb = crossKernelReadUnderFault(dup, data);

    EXPECT_GE(tb.k2()->reliableMail()->duplicatesDropped(), 1u);
    EXPECT_EQ(tb.k2()->reliableMail()->giveups(), 0u);
}

TEST(Recovery, DsmRetriesLostGrant)
{
    os::K2Config cfg;
    cfg.soc.costs.inactiveTimeout = 0;
    // Slow the ARQ way down so the DSM's own fault-timeout retry is
    // what recovers the lost GetExclusive.
    cfg.recovery.mail.rto = sim::msec(20);
    // Drop the first tracked mail after t=9ms: the quiet window before
    // the main kernel's reads start pulling shadow-owned pages.
    fault::FaultSpec drop;
    drop.kind = fault::FaultKind::MailDrop;
    drop.at = sim::msec(9);
    cfg.faults.add(drop);
    auto tb = wl::Testbed::makeK2(cfg);

    const auto data = pattern(16384, 5);
    auto &proc2 = tb.sys().createProcess("shadow-writer");
    tb.k2()->shadowKernel().spawnThread(
        &proc2, "writer", ThreadKind::Normal,
        [&](Thread &t) -> Task<void> {
            co_await writeFile(tb, t, "/retry", data);
        });
    tb.sys().spawnNormal(tb.proc(), "reader",
                         [&](Thread &t) -> Task<void> {
                             co_await t.sleep(sim::msec(10));
                             co_await verifyFile(tb, t, "/retry", data);
                         });
    tb.engine().run();

    EXPECT_GE(tb.k2()->dsm().retries(), 1u);
    EXPECT_EQ(tb.k2()->reliableMail()->giveups(), 0u);
}

TEST(Recovery, WatchdogDetectsCrashAndRestartsShadow)
{
    os::K2Config cfg;
    cfg.soc.costs.inactiveTimeout = 0;
    fault::FaultSpec drop;
    drop.kind = fault::FaultKind::MailDrop;
    drop.p = 1e-3; // The acceptance scenario's background fault load.
    cfg.faults.add(drop);
    fault::FaultSpec crash;
    crash.kind = fault::FaultKind::DomainCrash;
    crash.domain = soc::kWeakDomain;
    crash.at = sim::msec(20);
    cfg.faults.add(crash);
    auto tb = wl::Testbed::makeK2(cfg);
    obs::MetricsRegistry reg;
    tb.registerMetrics(reg);

    const auto data = pattern(16384, 77);
    auto &proc2 = tb.sys().createProcess("shadow-writer");
    tb.k2()->shadowKernel().spawnThread(
        &proc2, "writer", ThreadKind::Normal,
        [&](Thread &t) -> Task<void> {
            // Finishes well before the crash; leaves the file's pages
            // shadow-owned.
            co_await writeFile(tb, t, "/crashed", data);
        });
    tb.sys().spawnNormal(
        tb.proc(), "reader", [&](Thread &t) -> Task<void> {
            co_await t.sleep(sim::msec(25));
            // First touch of shadow-owned pages after the crash: the
            // GetExclusive mail is dropped by the dead domain, the ARQ
            // goes silent, the watchdog probes and recovers -- and this
            // read must still return the right bytes.
            co_await verifyFile(tb, t, "/crashed", data);
        });
    // A NightWatch spawn during the down window must be served
    // (degraded) on the main kernel.
    bool saw_down = false;
    bool degraded_ran = false;
    tb.sys().spawnNormal(
        tb.proc(), "poll", [&](Thread &t) -> Task<void> {
            const sim::Time limit =
                t.kernel().engine().now() + sim::msec(200);
            while (!tb.k2()->watchdog()->shadowDown() &&
                   t.kernel().engine().now() < limit)
                co_await t.sleep(sim::usec(250));
            if (!tb.k2()->watchdog()->shadowDown())
                co_return;
            saw_down = true;
            tb.sys().spawnNightWatch(tb.proc(), "degraded",
                                     [&](Thread &) -> Task<void> {
                                         degraded_ran = true;
                                         co_return;
                                     });
        });
    tb.engine().run();

    os::Watchdog *wd = tb.k2()->watchdog();
    ASSERT_NE(wd, nullptr);
    EXPECT_EQ(wd->crashesDetected(), 1u);
    EXPECT_EQ(wd->restarts(), 1u);
    EXPECT_FALSE(wd->shadowDown());
    EXPECT_TRUE(saw_down);
    EXPECT_TRUE(degraded_ran);
    EXPECT_EQ(tb.k2()->reliableMail()->giveups(), 0u);

    const obs::MetricsSnapshot snap = reg.snapshot();
    EXPECT_GE(counterOf(snap, "os.recovery.pages_reclaimed"), 1u);
    EXPECT_GE(counterOf(snap, "os.recovery.services_replayed"), 1u);
    EXPECT_GE(counterOf(snap, "os.recovery.degraded_spawns"), 1u);
    const obs::MetricValue *down = snap.find("os.recovery.down_us");
    ASSERT_NE(down, nullptr);
    EXPECT_EQ(down->count, 1u);
    EXPECT_GT(down->sum, 0.0);
}

TEST(Recovery, StrongDomainCrashIsRejected)
{
    os::K2Config cfg;
    fault::FaultSpec crash;
    crash.kind = fault::FaultKind::DomainCrash;
    crash.domain = soc::kStrongDomain;
    crash.at = sim::msec(1);
    cfg.faults.add(crash);
    EXPECT_THROW(wl::Testbed::makeK2(cfg), sim::FatalError);
}

// ---------------------------------------------------------------------
// Seeded fuzz: random fault plans, data must come out intact.
// ---------------------------------------------------------------------

TEST(FaultFuzz, DataIntactUnderRandomPlans)
{
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ull);
        std::uniform_real_distribution<double> rate(1e-3, 3e-2);
        std::uniform_int_distribution<int> crash_ms(15, 60);

        os::K2Config cfg;
        cfg.soc.costs.inactiveTimeout = 0;
        cfg.faults.seed = seed;
        fault::FaultSpec s;
        s.kind = fault::FaultKind::MailDrop;
        s.p = rate(rng);
        cfg.faults.add(s);
        s.kind = fault::FaultKind::MailDuplicate;
        s.p = rate(rng);
        cfg.faults.add(s);
        s.kind = fault::FaultKind::MailBitFlip;
        s.p = rate(rng);
        cfg.faults.add(s);
        if (seed % 2) { // Half the runs also crash the shadow mid-run.
            fault::FaultSpec crash;
            crash.kind = fault::FaultKind::DomainCrash;
            crash.domain = soc::kWeakDomain;
            crash.at = sim::msec(crash_ms(rng));
            cfg.faults.add(crash);
        }
        SCOPED_TRACE("seed=" + std::to_string(seed) + " plan=" +
                     cfg.faults.summary());
        auto tb = wl::Testbed::makeK2(cfg);

        constexpr int kFiles = 4;
        std::vector<std::vector<std::uint8_t>> files;
        for (int i = 0; i < kFiles; ++i)
            files.push_back(pattern(
                4096 * (i + 1), static_cast<std::uint8_t>(seed + i)));
        const auto payload =
            pattern(6000, static_cast<std::uint8_t>(seed * 31));

        auto &proc2 = tb.sys().createProcess("fuzz-shadow");
        tb.k2()->shadowKernel().spawnThread(
            &proc2, "writer", ThreadKind::Normal,
            [&](Thread &t) -> Task<void> {
                for (int i = 0; i < kFiles; ++i)
                    co_await writeFile(tb, t,
                                       "/f" + std::to_string(i),
                                       files[i]);
                co_await udpRoundtrip(tb, t, 6000, payload);
            });
        tb.sys().spawnNormal(
            tb.proc(), "reader", [&](Thread &t) -> Task<void> {
                co_await t.sleep(sim::msec(70));
                for (int i = 0; i < kFiles; ++i)
                    co_await verifyFile(tb, t,
                                        "/f" + std::to_string(i),
                                        files[i]);
                co_await udpRoundtrip(tb, t, 6001, payload);
            });
        tb.engine().run();

        EXPECT_EQ(tb.k2()->reliableMail()->giveups(), 0u);
        if (seed % 2) {
            EXPECT_EQ(tb.k2()->watchdog()->crashesDetected(), 1u);
        }
    }
}

// ---------------------------------------------------------------------
// Sweep determinism: faulted cells must shard byte-identically.
// ---------------------------------------------------------------------

std::vector<std::string>
faultSweep(unsigned jobs)
{
    wl::SweepRunner runner(jobs);
    std::vector<std::string> out(4);
    for (std::size_t i = 0; i < out.size(); ++i) {
        runner.submit([i, &out]() {
            os::K2Config cfg;
            cfg.soc.costs.inactiveTimeout = 0;
            fault::FaultSpec drop;
            drop.kind = fault::FaultKind::MailDrop;
            drop.p = 5e-3;
            cfg.faults.add(drop);
            cfg.faults.seed = 100 + i;
            auto tb = wl::Testbed::makeK2(cfg);
            obs::MetricsRegistry reg;
            tb.registerMetrics(reg);
            const auto data =
                pattern(8192, static_cast<std::uint8_t>(i));
            tb.sys().spawnNormal(tb.proc(), "t",
                                 [&](Thread &t) -> Task<void> {
                                     co_await writeFile(tb, t, "/s",
                                                        data);
                                     co_await verifyFile(tb, t, "/s",
                                                         data);
                                 });
            tb.engine().run();
            out[i] = reg.snapshot().toJson() + "@" +
                     std::to_string(tb.engine().now());
        });
    }
    runner.run();
    return out;
}

TEST(FaultSweep, ByteIdenticalAcrossJobCounts)
{
    const auto serial = faultSweep(1);
    EXPECT_EQ(serial, faultSweep(3));
    EXPECT_EQ(serial, faultSweep(13));
    // And the cells really did arm the fault plane.
    for (const auto &cell : serial)
        EXPECT_NE(cell.find("os.recovery.mail"), std::string::npos);
}

// ---------------------------------------------------------------------
// The --faults= flag.
// ---------------------------------------------------------------------

TEST(FaultsFlag, ParsedAndStripped)
{
    char prog[] = "prog";
    char flag[] = "--faults=mailbox.drop:p=1e-3";
    char rest[] = "--other";
    char *argv[] = {prog, flag, rest, nullptr};
    int argc = 3;
    EXPECT_EQ(wl::parseFaultsFlag(argc, argv),
              "mailbox.drop:p=1e-3");
    EXPECT_EQ(argc, 2);
    EXPECT_STREQ(argv[1], "--other");

    char *argv2[] = {prog, rest, nullptr};
    int argc2 = 2;
    EXPECT_EQ(wl::parseFaultsFlag(argc2, argv2), "");
    EXPECT_EQ(argc2, 2);

    char bad[] = "--faults=";
    char *argv3[] = {prog, bad, nullptr};
    int argc3 = 2;
    EXPECT_THROW(wl::parseFaultsFlag(argc3, argv3), sim::FatalError);
}

} // namespace
} // namespace k2
