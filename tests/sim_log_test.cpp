/**
 * @file
 * Log configuration tests: the process default is a plain fallback,
 * ScopedLogConfig overrides are thread-confined and nest, and capture
 * sinks receive exactly the text the scope's level permits.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "sim/log.h"

namespace {

using namespace k2::sim;

TEST(ScopedLogConfig, OverridesLevelAndRestoresOnExit)
{
    ASSERT_EQ(logLevel(), LogLevel::Normal);
    {
        ScopedLogConfig quiet(LogLevel::Quiet);
        EXPECT_EQ(logLevel(), LogLevel::Quiet);
        {
            ScopedLogConfig loud(LogLevel::Verbose);
            EXPECT_EQ(logLevel(), LogLevel::Verbose);
        }
        EXPECT_EQ(logLevel(), LogLevel::Quiet);
    }
    EXPECT_EQ(logLevel(), LogLevel::Normal);
}

TEST(ScopedLogConfig, CapturesStreamsSeparately)
{
    std::string out;
    std::string err;
    {
        ScopedLogConfig scope(LogLevel::Verbose, &out, &err);
        informImpl("status %d", 1);
        warnImpl("careful %d", 2);
        traceImpl("detail %d", 3);
    }
    EXPECT_EQ(out, "info: status 1\n");
    EXPECT_EQ(err, "warn: careful 2\ntrace: detail 3\n");
}

TEST(ScopedLogConfig, LevelFiltersInsideScope)
{
    std::string out;
    std::string err;
    {
        ScopedLogConfig scope(LogLevel::Quiet, &out, &err);
        informImpl("dropped");
        warnImpl("dropped");
        traceImpl("dropped");
    }
    EXPECT_TRUE(out.empty());
    EXPECT_TRUE(err.empty());

    {
        ScopedLogConfig scope(LogLevel::Normal, &out, &err);
        traceImpl("dropped at Normal");
        warnImpl("kept");
    }
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(err, "warn: kept\n");
}

TEST(ScopedLogConfig, LogToHelpersRouteThroughActiveScope)
{
    std::string out;
    std::string err;
    {
        ScopedLogConfig scope(LogLevel::Normal, &out, &err);
        logToOut("raw stdout text\n");
        logToErr("raw stderr text\n");
    }
    EXPECT_EQ(out, "raw stdout text\n");
    EXPECT_EQ(err, "raw stderr text\n");
}

TEST(ScopedLogConfig, ThreadConfinedNoCrossTalkOrInterleaving)
{
    // Two threads log concurrently at different levels into private
    // sinks. With the old process-global level this raced; now each
    // thread's text must land whole, in order, in its own buffer.
    constexpr int kLines = 500;
    std::string a_err, b_err;
    auto body = [](const char *tag, LogLevel level, std::string *err) {
        ScopedLogConfig scope(level, nullptr, err);
        for (int i = 0; i < kLines; ++i)
            warnImpl("%s %d", tag, i);
    };
    std::thread a(body, "alpha", LogLevel::Normal, &a_err);
    std::thread b(body, "beta", LogLevel::Quiet, &b_err);
    a.join();
    b.join();

    std::string want;
    for (int i = 0; i < kLines; ++i)
        want += strPrintf("warn: alpha %d\n", i);
    EXPECT_EQ(a_err, want);
    EXPECT_TRUE(b_err.empty());
    EXPECT_EQ(logLevel(), LogLevel::Normal);
}

TEST(Log, FatalThrowsWithMessage)
{
    try {
        K2_FATAL("bad knob %d", 7);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "bad knob 7");
    }
}

} // namespace
