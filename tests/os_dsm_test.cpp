/**
 * @file
 * Tests for the K2 software DSM: two-state protocol, one-writer
 * invariant, Table 5 latency shape, asymmetric priorities, and the
 * three-state (MSI) alternative.
 */

#include <gtest/gtest.h>

#include "os/k2_system.h"

namespace k2::os {
namespace {

using kern::Thread;
using kern::ThreadKind;
using sim::Task;

class DsmTest : public ::testing::Test
{
  protected:
    DsmTest()
    {
        // Keep cores from power-gating between phases so the protocol
        // is measured warm (the energy benches exercise gating).
        K2Config cfg;
        cfg.soc.costs.inactiveTimeout = 0; // no power gating
        k2sys = std::make_unique<K2System>(cfg);
        proc = &k2sys->createProcess("app");
    }

    /** Run a body on the given kernel and wait for completion. */
    void
    runOn(kern::Kernel &kern, Thread::Body body)
    {
        kern.spawnThread(proc, "t", ThreadKind::Normal, std::move(body));
        k2sys->ownedEngine().run();
    }

    std::unique_ptr<K2System> k2sys;
    kern::Process *proc = nullptr;
};

TEST_F(DsmTest, MainStartsAsOwner)
{
    EXPECT_TRUE(k2sys->dsm().isLocallyValid(0, 0, Access::Write));
    EXPECT_FALSE(k2sys->dsm().isLocallyValid(1, 0, Access::Read));
}

TEST_F(DsmTest, LocalAccessIsCheapRemoteFaults)
{
    Dsm &dsm = k2sys->dsm();
    sim::Duration local_t = 0;
    sim::Duration remote_t = 0;

    runOn(k2sys->mainKernel(), [&](Thread &t) -> Task<void> {
        const auto t0 = t.kernel().engine().now();
        co_await dsm.access(t.kernel(), t.core(), 0, Access::Write);
        local_t = t.kernel().engine().now() - t0;
    });
    EXPECT_EQ(dsm.faultStats(0).faults.value(), 0u);
    EXPECT_LT(local_t, sim::usec(2));

    runOn(k2sys->shadowKernel(), [&](Thread &t) -> Task<void> {
        const auto t0 = t.kernel().engine().now();
        co_await dsm.access(t.kernel(), t.core(), 0, Access::Write);
        remote_t = t.kernel().engine().now() - t0;
    });
    EXPECT_EQ(dsm.faultStats(1).faults.value(), 1u);
    EXPECT_GT(remote_t, sim::usec(30));
    // Ownership moved.
    EXPECT_TRUE(dsm.isLocallyValid(1, 0, Access::Write));
    EXPECT_FALSE(dsm.isLocallyValid(0, 0, Access::Read));
}

TEST_F(DsmTest, OneWriterInvariantUnderPingPong)
{
    Dsm &dsm = k2sys->dsm();
    for (int round = 0; round < 6; ++round) {
        kern::Kernel &kern = (round % 2 == 0) ? k2sys->shadowKernel()
                                              : k2sys->mainKernel();
        runOn(kern, [&](Thread &t) -> Task<void> {
            co_await dsm.access(t.kernel(), t.core(), 7, Access::Write);
        });
        // Exactly one side valid after each round.
        const bool main_valid = dsm.isLocallyValid(0, 7, Access::Write);
        const bool shadow_valid = dsm.isLocallyValid(1, 7, Access::Write);
        EXPECT_NE(main_valid, shadow_valid) << "round " << round;
    }
    // 6 transfers: shadow faulted 3 times... first round moved it from
    // main; each subsequent round is one fault.
    EXPECT_EQ(dsm.faultStats(0).faults.value() +
                  dsm.faultStats(1).faults.value(),
              6u);
}

TEST_F(DsmTest, FaultLatencyMatchesTable5Shape)
{
    Dsm &dsm = k2sys->dsm();
    // Warm up one transfer each way, then measure ping-pong.
    for (int round = 0; round < 20; ++round) {
        kern::Kernel &kern = (round % 2 == 0) ? k2sys->shadowKernel()
                                              : k2sys->mainKernel();
        runOn(kern, [&](Thread &t) -> Task<void> {
            co_await dsm.access(t.kernel(), t.core(), 3, Access::Write);
        });
    }
    const auto &main_st = dsm.faultStats(0);
    const auto &shadow_st = dsm.faultStats(1);
    ASSERT_GT(main_st.faults.value(), 5u);
    ASSERT_GT(shadow_st.faults.value(), 5u);

    // Paper Table 5: total ~52 us (main sender) / ~48 us (shadow
    // sender); allow a generous band, the *shape* matters.
    EXPECT_GT(main_st.totalUs.mean(), 30.0);
    EXPECT_LT(main_st.totalUs.mean(), 80.0);
    EXPECT_GT(shadow_st.totalUs.mean(), 30.0);
    EXPECT_LT(shadow_st.totalUs.mean(), 80.0);

    // Component asymmetries from the paper:
    // local fault handling: main 3 vs shadow 17 (weak core slower).
    EXPECT_LT(main_st.localFaultUs.mean(), shadow_st.localFaultUs.mean());
    // protocol execution: main 2 vs shadow 13.
    EXPECT_LT(main_st.protocolUs.mean(), shadow_st.protocolUs.mean());
    // servicing: the main *sender* waits on the weak servicer (24) --
    // larger than the shadow sender waiting on the strong one (7).
    EXPECT_GT(main_st.serviceUs.mean(), shadow_st.serviceUs.mean());
    // exit+cache miss: main 18 vs shadow 2.
    EXPECT_GT(main_st.exitUs.mean(), shadow_st.exitUs.mean());
}

TEST_F(DsmTest, ReadAlsoFaultsInTwoState)
{
    // The two-state protocol has no read sharing: a read of a
    // remotely-owned page takes the full fault.
    Dsm &dsm = k2sys->dsm();
    runOn(k2sys->shadowKernel(), [&](Thread &t) -> Task<void> {
        co_await dsm.access(t.kernel(), t.core(), 11, Access::Read);
    });
    EXPECT_EQ(dsm.faultStats(1).faults.value(), 1u);
    // And ownership is exclusive: the main kernel lost the page.
    EXPECT_FALSE(dsm.isLocallyValid(0, 11, Access::Read));
}

TEST_F(DsmTest, ConcurrentFaultsOnSamePageCoalesce)
{
    Dsm &dsm = k2sys->dsm();
    int done = 0;
    for (int i = 0; i < 3; ++i) {
        k2sys->shadowKernel().spawnThread(
            proc, "f", ThreadKind::Normal,
            [&](Thread &t) -> Task<void> {
                co_await dsm.access(t.kernel(), t.core(), 21,
                                    Access::Write);
                ++done;
            });
    }
    k2sys->ownedEngine().run();
    EXPECT_EQ(done, 3);
    // Only one actual coherence fault; the others waited locally.
    EXPECT_EQ(dsm.faultStats(1).faults.value(), 1u);
}

TEST_F(DsmTest, MessagesUseMailbox)
{
    Dsm &dsm = k2sys->dsm();
    const auto before = k2sys->soc().mailbox().messagesDelivered();
    runOn(k2sys->shadowKernel(), [&](Thread &t) -> Task<void> {
        co_await dsm.access(t.kernel(), t.core(), 30, Access::Write);
    });
    // One GetExclusive + one PutExclusive.
    EXPECT_EQ(dsm.messagesSent(), 2u);
    EXPECT_GE(k2sys->soc().mailbox().messagesDelivered(), before + 2);
}

TEST_F(DsmTest, FirstCrossAccessDemotesMappingGrain)
{
    Dsm &dsm = k2sys->dsm();
    EXPECT_EQ(dsm.pagesDemoted(), 0u);
    runOn(k2sys->shadowKernel(), [&](Thread &t) -> Task<void> {
        co_await dsm.access(t.kernel(), t.core(), 40, Access::Write);
        co_await dsm.access(t.kernel(), t.core(), 40, Access::Write);
    });
    EXPECT_EQ(dsm.pagesDemoted(), 1u);
}

TEST_F(DsmTest, RegionAllocationIsDisjoint)
{
    auto r1 = k2sys->dsm().allocRegion(16);
    auto r2 = k2sys->dsm().allocRegion(16);
    EXPECT_EQ(r1.count, 16u);
    EXPECT_EQ(r2.first, r1.end());
}

class MsiDsmTest : public ::testing::Test
{
  protected:
    MsiDsmTest()
    {
        K2Config cfg;
        cfg.dsmProtocol = Dsm::Protocol::ThreeState;
        cfg.soc.costs.inactiveTimeout = 0; // no power gating
        k2sys = std::make_unique<K2System>(cfg);
        proc = &k2sys->createProcess("app");
    }

    void
    runOn(kern::Kernel &kern, Thread::Body body)
    {
        kern.spawnThread(proc, "t", ThreadKind::Normal, std::move(body));
        k2sys->ownedEngine().run();
    }

    std::unique_ptr<K2System> k2sys;
    kern::Process *proc = nullptr;
};

TEST_F(MsiDsmTest, ReadSharingAllowsBothReaders)
{
    Dsm &dsm = k2sys->dsm();
    runOn(k2sys->shadowKernel(), [&](Thread &t) -> Task<void> {
        co_await dsm.access(t.kernel(), t.core(), 5, Access::Read);
    });
    // Both kernels can now read without faulting.
    EXPECT_TRUE(dsm.isLocallyValid(0, 5, Access::Read));
    EXPECT_TRUE(dsm.isLocallyValid(1, 5, Access::Read));
    // But neither holds write permission... the downgraded owner lost
    // exclusivity.
    EXPECT_FALSE(dsm.isLocallyValid(1, 5, Access::Write));
    EXPECT_FALSE(dsm.isLocallyValid(0, 5, Access::Write));

    const auto faults_before = dsm.faultStats(1).faults.value();
    runOn(k2sys->shadowKernel(), [&](Thread &t) -> Task<void> {
        co_await dsm.access(t.kernel(), t.core(), 5, Access::Read);
    });
    EXPECT_EQ(dsm.faultStats(1).faults.value(), faults_before);
}

TEST_F(MsiDsmTest, WriteInvalidatesSharers)
{
    Dsm &dsm = k2sys->dsm();
    runOn(k2sys->shadowKernel(), [&](Thread &t) -> Task<void> {
        co_await dsm.access(t.kernel(), t.core(), 5, Access::Read);
        co_await dsm.access(t.kernel(), t.core(), 5, Access::Write);
    });
    EXPECT_TRUE(dsm.isLocallyValid(1, 5, Access::Write));
    EXPECT_FALSE(dsm.isLocallyValid(0, 5, Access::Read));
}

TEST_F(MsiDsmTest, WeakKernelPaysReadTrackPenalty)
{
    // The same ping-pong is slower under MSI on this platform because
    // the M3's cascaded MMU makes read tracking expensive (§6.3).
    Dsm &dsm = k2sys->dsm();
    for (int round = 0; round < 10; ++round) {
        kern::Kernel &kern = (round % 2 == 0) ? k2sys->shadowKernel()
                                              : k2sys->mainKernel();
        runOn(kern, [&](Thread &t) -> Task<void> {
            co_await dsm.access(t.kernel(), t.core(), 9, Access::Write);
        });
    }
    // Shadow-sender faults cost more than the two-state baseline 48us.
    EXPECT_GT(dsm.faultStats(1).totalUs.mean(), 60.0);
}

} // namespace
} // namespace k2::os
