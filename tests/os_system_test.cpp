/**
 * @file
 * Tests for K2System assembly: memory management (balloons, meta-level
 * manager, free redirection), interrupt routing, NightWatch
 * scheduling, cross-ISA dispatch, and message encoding.
 */

#include <gtest/gtest.h>

#include "os/k2_system.h"

namespace k2::os {
namespace {

using kern::PageRange;
using kern::Thread;
using kern::ThreadKind;
using sim::Task;

TEST(Messages, EncodeDecodeRoundTrip)
{
    for (const auto type :
         {MsgType::FreeRemote, MsgType::GetExclusive, MsgType::PutExclusive,
          MsgType::SuspendNw, MsgType::AckSuspendNw, MsgType::ResumeNw,
          MsgType::Control, MsgType::BalloonDone}) {
        const auto word = encodeMessage(type, 0xABCDE, 0x1F3);
        const Message m = decodeMessage(word);
        EXPECT_EQ(m.type, type);
        EXPECT_EQ(m.payload, 0xABCDEu);
        EXPECT_EQ(m.seq, 0x1F3u);
    }
}

TEST(Messages, PayloadOverflowAsserts)
{
    EXPECT_DEATH(encodeMessage(MsgType::GetExclusive, 1u << 20, 0),
                 "assertion");
}

class K2SystemTest : public ::testing::Test
{
  protected:
    K2SystemTest()
    {
        k2sys = std::make_unique<K2System>();
        proc = &k2sys->createProcess("app");
    }

    sim::Engine &eng() { return k2sys->ownedEngine(); }

    std::unique_ptr<K2System> k2sys;
    kern::Process *proc = nullptr;
};

TEST_F(K2SystemTest, BootGivesKernelsInitialBlocks)
{
    // Default: 8 blocks to main, 2 to shadow, rest owned by K2.
    EXPECT_EQ(k2sys->meta().blocksOwnedBy(MetaLevelManager::BlockOwner::Main),
              8u);
    EXPECT_EQ(
        k2sys->meta().blocksOwnedBy(MetaLevelManager::BlockOwner::Shadow),
        2u);
    EXPECT_EQ(k2sys->mainKernel().pageAllocator().freePages(),
              8u * BalloonDriver::kBlockPages);
    EXPECT_EQ(k2sys->shadowKernel().pageAllocator().freePages(),
              2u * BalloonDriver::kBlockPages);
}

TEST_F(K2SystemTest, LayoutPlacesShadowMainGlobal)
{
    const auto &layout = k2sys->layout();
    EXPECT_EQ(layout.local(0).owner, "shadow");
    EXPECT_EQ(layout.local(1).owner, "main");
    EXPECT_EQ(layout.local(1).pages.end(),
              layout.global().pages.first);
}

TEST_F(K2SystemTest, MainBlocksGrowFromLowEndShadowFromHighEnd)
{
    const auto &meta = k2sys->meta();
    const std::size_t n = meta.numBlocks();
    EXPECT_EQ(meta.blockOwner(0), MetaLevelManager::BlockOwner::Main);
    EXPECT_EQ(meta.blockOwner(7), MetaLevelManager::BlockOwner::Main);
    EXPECT_EQ(meta.blockOwner(8), MetaLevelManager::BlockOwner::Meta);
    EXPECT_EQ(meta.blockOwner(n - 1),
              MetaLevelManager::BlockOwner::Shadow);
    EXPECT_EQ(meta.blockOwner(n - 2),
              MetaLevelManager::BlockOwner::Shadow);
}

TEST_F(K2SystemTest, AllocServedLocallyFreeRedirectedRemotely)
{
    PageRange main_range;
    // Allocate on the main kernel.
    k2sys->spawnNormal(*proc, "alloc",
                       [&](Thread &t) -> Task<void> {
                           main_range =
                               co_await k2sys->allocPages(t, 0);
                       });
    eng().run();
    ASSERT_FALSE(main_range.empty());
    EXPECT_TRUE(
        k2sys->mainKernel().pageAllocator().isAllocated(main_range.first));

    // Free it from a shadow-kernel thread: must be redirected.
    k2sys->shadowKernel().spawnThread(
        proc, "free", ThreadKind::Normal,
        [&](Thread &t) -> Task<void> {
            co_await k2sys->freePages(t, main_range);
        });
    eng().run();
    EXPECT_EQ(k2sys->remoteFrees(), 1u);
    EXPECT_FALSE(
        k2sys->mainKernel().pageAllocator().isAllocated(main_range.first));
}

TEST_F(K2SystemTest, MemoryPressureTriggersAutomaticDeflate)
{
    // Exhaust the main kernel's 8 blocks; the pressure probe should
    // wake kmetad, which deflates K2-owned blocks into the kernel.
    const auto main_before =
        k2sys->meta().blocksOwnedBy(MetaLevelManager::BlockOwner::Main);
    k2sys->spawnNormal(
        *proc, "hog", [&](Thread &t) -> Task<void> {
            // Allocate 9 blocks' worth of max-order allocations.
            for (int i = 0; i < 9 * 4; ++i) {
                PageRange r = co_await k2sys->allocPages(
                    t, 10, kern::Migrate::Movable);
                if (r.empty()) {
                    // Give kmetad a chance to run.
                    co_await t.sleep(sim::msec(50));
                    r = co_await k2sys->allocPages(
                        t, 10, kern::Migrate::Movable);
                }
                EXPECT_FALSE(r.empty()) << "allocation " << i;
            }
        });
    eng().run(sim::sec(30));
    EXPECT_GT(
        k2sys->meta().blocksOwnedBy(MetaLevelManager::BlockOwner::Main),
        main_before);
    EXPECT_GT(k2sys->meta().pressureEvents.value(), 0u);
}

TEST_F(K2SystemTest, BalloonLatenciesMatchTable4Shape)
{
    // Table 4: deflate ~10.4ms main / ~12.8ms shadow; inflate ~11.6ms
    // main / ~20.4ms shadow.
    auto &meta = k2sys->meta();
    double main_deflate = 0, main_inflate = 0;
    k2sys->spawnNormal(*proc, "bal",
                       [&](Thread &t) -> Task<void> {
                           auto d = co_await meta.deflateOne(t);
                           EXPECT_TRUE(d.has_value());
                           auto i = co_await meta.inflateOne(t);
                           EXPECT_TRUE(i.has_value());
                       });
    eng().run();
    main_deflate = meta.balloon(0).deflateUs.mean();
    main_inflate = meta.balloon(0).inflateUs.mean();
    EXPECT_GT(main_deflate, 5000.0);
    EXPECT_LT(main_deflate, 20000.0);
    EXPECT_GT(main_inflate, 6000.0);
    EXPECT_LT(main_inflate, 25000.0);

    k2sys->shadowKernel().spawnThread(
        proc, "bal", ThreadKind::Normal,
        [&](Thread &t) -> Task<void> {
            auto d = co_await meta.deflateOne(t);
            EXPECT_TRUE(d.has_value());
            auto i = co_await meta.inflateOne(t);
            EXPECT_TRUE(i.has_value());
        });
    eng().run();
    const double shadow_deflate = meta.balloon(1).deflateUs.mean();
    const double shadow_inflate = meta.balloon(1).inflateUs.mean();
    // Shadow balloon ops are slower but by a small factor (1.2-1.8x),
    // unlike allocations (12x): the cost is interconnect-dominated.
    EXPECT_GT(shadow_deflate / main_deflate, 1.05);
    EXPECT_LT(shadow_deflate / main_deflate, 2.5);
    EXPECT_GT(shadow_inflate / main_inflate, 1.2);
    EXPECT_LT(shadow_inflate / main_inflate, 3.0);
}

TEST_F(K2SystemTest, SharedRegionTouchFaultsOnceThenHits)
{
    auto region = k2sys->createSharedRegion("drv-state", 4);
    const auto faults0 = k2sys->dsm().faultStats(1).faults.value();
    k2sys->shadowKernel().spawnThread(
        proc, "svc", ThreadKind::Normal,
        [&](Thread &t) -> Task<void> {
            co_await region->touch(t.kernel(), t.core(), 0,
                                   Access::Write);
            co_await region->touch(t.kernel(), t.core(), 0,
                                   Access::Write);
        });
    eng().run();
    EXPECT_EQ(k2sys->dsm().faultStats(1).faults.value(), faults0 + 1);
}

TEST_F(K2SystemTest, IrqRoutingFollowsStrongDomainPowerState)
{
    // Register a shared handler in both kernels.
    int main_hits = 0;
    int shadow_hits = 0;
    k2sys->mainKernel().registerIrq(
        soc::kIrqNet, [&](soc::Core &) -> Task<void> {
            ++main_hits;
            co_return;
        });
    k2sys->shadowKernel().registerIrq(
        soc::kIrqNet, [&](soc::Core &) -> Task<void> {
            ++shadow_hits;
            co_return;
        });
    k2sys->irqRouter().manageLine(soc::kIrqNet);
    EXPECT_FALSE(k2sys->irqRouter().routedToWeak());

    // Strong domain awake: main handles.
    k2sys->soc().raiseSharedIrq(soc::kIrqNet);
    eng().run(sim::msec(1));
    EXPECT_EQ(main_hits, 1);
    EXPECT_EQ(shadow_hits, 0);

    // Let the strong domain go inactive (5 s idle timeout).
    eng().run(sim::sec(7));
    EXPECT_TRUE(k2sys->mainKernel().domain().allInactive());
    EXPECT_TRUE(k2sys->irqRouter().routedToWeak());

    const int main_before = main_hits;
    k2sys->soc().raiseSharedIrq(soc::kIrqNet);
    eng().run(sim::sec(8));
    EXPECT_GE(shadow_hits, 1);
    EXPECT_EQ(main_hits, main_before);
    // Rule 1: the shared interrupt did NOT wake the strong domain.
    EXPECT_TRUE(k2sys->mainKernel().domain().allInactive());
}

TEST_F(K2SystemTest, NightWatchRunsOnWeakDomain)
{
    bool ran = false;
    soc::DomainId dom = 99;
    k2sys->spawnNightWatch(*proc, "nw",
                           [&](Thread &t) -> Task<void> {
                               co_await t.exec(1000);
                               dom = t.core().domain();
                               ran = true;
                           });
    eng().run(sim::sec(1));
    EXPECT_TRUE(ran);
    EXPECT_EQ(dom, soc::kWeakDomain);
}

TEST_F(K2SystemTest, NightWatchDeferredWhileNormalThreadRuns)
{
    std::vector<std::pair<std::string, sim::Time>> log;
    // A Normal thread computing for 20 ms.
    k2sys->spawnNormal(*proc, "busy",
                       [&](Thread &t) -> Task<void> {
                           co_await t.exec(7000000); // 20 ms at 350 MHz
                           log.emplace_back("normal-done",
                                            t.kernel().engine().now());
                       });
    // A NightWatch thread of the same process.
    k2sys->spawnNightWatch(*proc, "nw",
                           [&](Thread &t) -> Task<void> {
                               co_await t.exec(1000);
                               log.emplace_back(
                                   "nw-done", t.kernel().engine().now());
                           });
    eng().run(sim::sec(1));
    ASSERT_EQ(log.size(), 2u);
    // The NW thread must finish only after the normal thread blocked.
    EXPECT_EQ(log[0].first, "normal-done");
    EXPECT_EQ(log[1].first, "nw-done");
    // The NW thread spawned while a Normal thread was runnable, so it
    // started pre-gated (no SuspendNW message was needed); ResumeNW
    // was sent when the Normal thread blocked.
    EXPECT_GT(k2sys->nightWatch().resumesSent.value(), 0u);
}

TEST_F(K2SystemTest, NightWatchFromDifferentProcessNotBlocked)
{
    // Multi-domain parallelism IS allowed among processes (§4.3).
    auto &other = k2sys->createProcess("other");
    sim::Time nw_done = 0;
    sim::Time normal_done = 0;
    k2sys->spawnNormal(*proc, "busy",
                       [&](Thread &t) -> Task<void> {
                           co_await t.exec(7000000); // 20 ms
                           normal_done = t.kernel().engine().now();
                       });
    k2sys->spawnNightWatch(other, "nw",
                           [&](Thread &t) -> Task<void> {
                               co_await t.exec(1000);
                               nw_done = t.kernel().engine().now();
                           });
    eng().run(sim::sec(1));
    EXPECT_GT(nw_done, 0u);
    EXPECT_LT(nw_done, normal_done);
}

TEST_F(K2SystemTest, SuspendAckOverheadIsMicroseconds)
{
    k2sys->spawnNightWatch(*proc, "nw",
                           [&](Thread &t) -> Task<void> {
                               co_await t.exec(100);
                           });
    k2sys->spawnNormal(*proc, "n",
                       [&](Thread &t) -> Task<void> {
                           co_await t.exec(1000);
                       });
    eng().run(sim::sec(1));
    ASSERT_GT(k2sys->nightWatch().ackWaitUs.count(), 0u);
    ASSERT_GT(k2sys->nightWatch().suspendsSent.value(), 0u);
    // Paper §8: ~1-2 us extra per context switch (5 us RTT minus the
    // 3.5 us switch); our shadow-side ack path costs slightly more
    // because the M3's interrupt entry is modelled explicitly.
    EXPECT_GT(k2sys->nightWatch().ackWaitUs.mean(), 0.3);
    EXPECT_LT(k2sys->nightWatch().ackWaitUs.mean(), 6.0);
}

TEST_F(K2SystemTest, CrossIsaDispatchOnlyChargesShadow)
{
    auto &x = k2sys->crossIsa();
    sim::Duration main_t = 0, shadow_t = 0;
    k2sys->spawnNormal(*proc, "m", [&](Thread &t) -> Task<void> {
        const auto t0 = eng().now();
        co_await x.charge(t.kernel(), t.core(), 3);
        main_t = eng().now() - t0;
    });
    eng().run();
    k2sys->shadowKernel().spawnThread(
        proc, "s", ThreadKind::Normal, [&](Thread &t) -> Task<void> {
            const auto t0 = eng().now();
            co_await x.charge(t.kernel(), t.core(), 3);
            shadow_t = eng().now() - t0;
        });
    eng().run();
    EXPECT_EQ(main_t, 0u);
    EXPECT_EQ(shadow_t, 3 * x.perDispatch());
    EXPECT_EQ(x.dispatches(), 3u);
}

TEST_F(K2SystemTest, ServiceRegistryIsWired)
{
    EXPECT_EQ(k2sys->services().of("dma-driver"),
              kern::ServiceClass::Shadowed);
}

} // namespace
} // namespace k2::os
