/**
 * @file
 * End-to-end payload-integrity tests: real bytes through the UDP
 * loopback (including cross-kernel under K2), and a full
 * network-to-filesystem pipeline whose content is verified bit for
 * bit.
 */

#include <gtest/gtest.h>

#include "workloads/testbed.h"

namespace k2::svc {
namespace {

using kern::Thread;
using kern::ThreadKind;
using sim::Task;

std::vector<std::uint8_t>
pattern(std::size_t n, std::uint8_t seed)
{
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>(seed + i * 13);
    return v;
}

TEST(Payload, UdpCarriesRealBytes)
{
    auto tb = wl::Testbed::makeLinux();
    tb.sys().spawnNormal(tb.proc(), "t", [&](Thread &t) -> Task<void> {
        auto &udp = tb.udp();
        const auto tx = co_await udp.socket(t);
        const auto rx = co_await udp.socket(t);
        co_await udp.bind(t, static_cast<int>(rx), 4444);

        const auto sent = pattern(1500, 7);
        EXPECT_EQ(co_await udp.sendTo(t, static_cast<int>(tx), 4444,
                                      std::span<const std::uint8_t>(
                                          sent)),
                  1500);
        std::vector<std::uint8_t> got(1500, 0);
        EXPECT_EQ(co_await udp.recvFrom(t, static_cast<int>(rx), got),
                  1500);
        EXPECT_EQ(got, sent);
        co_await udp.close(t, static_cast<int>(tx));
        co_await udp.close(t, static_cast<int>(rx));
    });
    tb.engine().run();
}

TEST(Payload, ShortReceiveBufferTruncatesButReportsFullSize)
{
    auto tb = wl::Testbed::makeLinux();
    tb.sys().spawnNormal(tb.proc(), "t", [&](Thread &t) -> Task<void> {
        auto &udp = tb.udp();
        const auto tx = co_await udp.socket(t);
        const auto rx = co_await udp.socket(t);
        co_await udp.bind(t, static_cast<int>(rx), 4445);
        const auto sent = pattern(1000, 3);
        co_await udp.sendTo(t, static_cast<int>(tx), 4445,
                            std::span<const std::uint8_t>(sent));
        std::vector<std::uint8_t> tiny(16, 0);
        EXPECT_EQ(co_await udp.recvFrom(t, static_cast<int>(rx), tiny),
                  1000);
        for (std::size_t i = 0; i < tiny.size(); ++i)
            EXPECT_EQ(tiny[i], sent[i]);
        co_await udp.close(t, static_cast<int>(tx));
        co_await udp.close(t, static_cast<int>(rx));
    });
    tb.engine().run();
}

TEST(Payload, CrossKernelUdpBytesIntact)
{
    os::K2Config cfg;
    cfg.soc.costs.inactiveTimeout = 0;
    auto tb = wl::Testbed::makeK2(cfg);
    const auto msg = pattern(4096, 42);

    auto &proc2 = tb.sys().createProcess("rx");
    bool verified = false;
    tb.k2()->shadowKernel().spawnThread(
        &proc2, "rx", ThreadKind::Normal,
        [&](Thread &t) -> Task<void> {
            const auto s = co_await tb.udp().socket(t);
            co_await tb.udp().bind(t, static_cast<int>(s), 5555);
            std::vector<std::uint8_t> got(4096, 0);
            EXPECT_EQ(co_await tb.udp().recvFrom(t, static_cast<int>(s),
                                                 got),
                      4096);
            EXPECT_EQ(got, msg);
            verified = true;
            co_await tb.udp().close(t, static_cast<int>(s));
        });
    tb.sys().spawnNormal(tb.proc(), "tx", [&](Thread &t) -> Task<void> {
        co_await t.sleep(sim::msec(1)); // let the receiver bind
        const auto s = co_await tb.udp().socket(t);
        co_await tb.udp().sendTo(t, static_cast<int>(s), 5555,
                                 std::span<const std::uint8_t>(msg));
        co_await tb.udp().close(t, static_cast<int>(s));
    });
    tb.engine().run();
    EXPECT_TRUE(verified);
}

TEST(Payload, NetworkToFilesystemPipeline)
{
    // Receive a "download" over UDP on the weak domain and persist it;
    // verify the file content from the strong domain.
    os::K2Config cfg;
    cfg.soc.costs.inactiveTimeout = 0;
    auto tb = wl::Testbed::makeK2(cfg);
    const auto payload = pattern(8192, 99);

    auto &proc2 = tb.sys().createProcess("dl");
    tb.k2()->shadowKernel().spawnThread(
        &proc2, "downloader", ThreadKind::Normal,
        [&](Thread &t) -> Task<void> {
            const auto s = co_await tb.udp().socket(t);
            co_await tb.udp().bind(t, static_cast<int>(s), 8080);
            std::vector<std::uint8_t> buf(8192);
            EXPECT_EQ(co_await tb.udp().recvFrom(t, static_cast<int>(s),
                                                 buf),
                      8192);
            const auto fd = co_await tb.fs().create(t, "/download");
            EXPECT_EQ(co_await tb.fs().write(t, static_cast<int>(fd),
                                             buf),
                      8192);
            co_await tb.fs().close(t, static_cast<int>(fd));
            co_await tb.udp().close(t, static_cast<int>(s));
        });
    tb.sys().spawnNormal(tb.proc(), "server",
                         [&](Thread &t) -> Task<void> {
                             co_await t.sleep(sim::msec(1));
                             const auto s = co_await tb.udp().socket(t);
                             co_await tb.udp().sendTo(
                                 t, static_cast<int>(s), 8080,
                                 std::span<const std::uint8_t>(payload));
                             co_await tb.udp().close(
                                 t, static_cast<int>(s));
                         });
    tb.engine().run();

    bool verified = false;
    tb.sys().spawnNormal(tb.proc(), "verify",
                         [&](Thread &t) -> Task<void> {
                             const auto fd =
                                 co_await tb.fs().open(t, "/download");
                             EXPECT_GE(fd, 0);
                             std::vector<std::uint8_t> back(8192);
                             EXPECT_EQ(co_await tb.fs().read(
                                           t, static_cast<int>(fd),
                                           back),
                                       8192);
                             EXPECT_EQ(back, payload);
                             co_await tb.fs().close(
                                 t, static_cast<int>(fd));
                             verified = true;
                         });
    tb.engine().run();
    EXPECT_TRUE(verified);
}

} // namespace
} // namespace k2::svc
