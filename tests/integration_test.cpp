/**
 * @file
 * Cross-module integration tests: the full K2 testbed with shadowed
 * services driven from both kernels, energy-episode behaviour, and
 * K2-vs-Linux end-to-end comparisons.
 */

#include <gtest/gtest.h>

#include "baseline/shared_alloc_system.h"
#include "workloads/benchmarks.h"
#include "workloads/testbed.h"

namespace k2 {
namespace {

using kern::Thread;
using kern::ThreadKind;
using sim::Task;

TEST(Integration, ShadowedFsWorksFromBothKernels)
{
    auto tb = wl::Testbed::makeK2();
    // Write from the main kernel...
    tb.sys().spawnNormal(
        tb.proc(), "writer", [&](Thread &t) -> Task<void> {
            const std::int64_t fd =
                co_await tb.fs().create(t, "/cross.txt");
            EXPECT_GE(fd, 0);
            std::vector<std::uint8_t> data{'k', '2', '!'};
            EXPECT_EQ(co_await tb.fs().write(t, static_cast<int>(fd),
                                             data),
                      3);
            co_await tb.fs().close(t, static_cast<int>(fd));
        });
    tb.engine().run();

    // ...read from the shadow kernel (NightWatch thread).
    bool verified = false;
    tb.sys().spawnNightWatch(
        tb.proc(), "reader", [&](Thread &t) -> Task<void> {
            EXPECT_EQ(t.core().domain(), soc::kWeakDomain);
            const std::int64_t fd =
                co_await tb.fs().open(t, "/cross.txt");
            EXPECT_GE(fd, 0);
            std::vector<std::uint8_t> back(3);
            EXPECT_EQ(co_await tb.fs().read(t, static_cast<int>(fd),
                                            back),
                      3);
            EXPECT_EQ(back,
                      (std::vector<std::uint8_t>{'k', '2', '!'}));
            co_await tb.fs().close(t, static_cast<int>(fd));
            verified = true;
        });
    tb.engine().run();
    EXPECT_TRUE(verified);
    // Shadowed state moved between kernels through the DSM.
    EXPECT_GT(tb.k2()->dsm().messagesSent(), 0u);
}

TEST(Integration, DmaFromShadowKernelUsesWeakRouting)
{
    auto tb = wl::Testbed::makeK2();
    // Warm the driver's shared state onto the weak domain: the first
    // touch pulls the pages over via DSM messages (which legitimately
    // wake the strong domain once).
    tb.sys().spawnNightWatch(tb.proc(), "warm",
                             [&](Thread &t) -> Task<void> {
                                 co_await tb.dma().transfer(t, 4096);
                             });
    tb.engine().run(); // quiesce; strong domain goes inactive

    EXPECT_TRUE(tb.sys().mainKernel().domain().allInactive());
    EXPECT_TRUE(tb.k2()->irqRouter().routedToWeak());
    const auto wakeups0 = tb.sys().mainKernel().domain().core(0).wakeups() +
                          tb.sys().mainKernel().domain().core(1).wakeups();

    bool done = false;
    tb.sys().spawnNightWatch(tb.proc(), "nw-dma",
                             [&](Thread &t) -> Task<void> {
                                 co_await tb.dma().transfer(t, 65536);
                                 done = true;
                             });
    tb.engine().run();
    EXPECT_TRUE(done);
    // The steady-state transfer ran entirely on the weak domain: the
    // completion interrupt did not wake the strong domain (§7 rule 1).
    EXPECT_TRUE(tb.sys().mainKernel().domain().allInactive());
    EXPECT_EQ(tb.sys().mainKernel().domain().core(0).wakeups() +
                  tb.sys().mainKernel().domain().core(1).wakeups(),
              wakeups0);
}

TEST(Integration, K2BeatsLinuxOnLightDmaEnergy)
{
    auto k2tb = wl::Testbed::makeK2();
    auto lxtb = wl::Testbed::makeLinux();

    const auto k2res = wl::runEpisodeWarm(
        k2tb.sys(), k2tb.proc(), "dma",
        wl::dmaCopy(k2tb.dma(), 4096, 256 * 1024));
    const auto lxres = wl::runEpisodeWarm(
        lxtb.sys(), lxtb.proc(), "dma",
        wl::dmaCopy(lxtb.dma(), 4096, 256 * 1024));

    EXPECT_EQ(k2res.bytes, lxres.bytes);
    const double gain = k2res.mbPerJoule() / lxres.mbPerJoule();
    // Paper Fig. 6a: up to ~9x. Any factor comfortably above 3x (and
    // below absurd) demonstrates the effect.
    EXPECT_GT(gain, 3.0);
    EXPECT_LT(gain, 20.0);
}

TEST(Integration, K2PeakPerformanceWithin70PercentOfStrong)
{
    // §9.2: the weak core delivers 20-70% of the strong core's
    // 350 MHz throughput -- K2 trades time for energy.
    auto k2tb = wl::Testbed::makeK2();
    auto lxtb = wl::Testbed::makeLinux();
    const auto k2res = wl::runEpisode(
        k2tb.sys(), k2tb.proc(), "ext2",
        wl::ext2Sync(k2tb.fs(), 256 * 1024));
    const auto lxres = wl::runEpisode(
        lxtb.sys(), lxtb.proc(), "ext2",
        wl::ext2Sync(lxtb.fs(), 256 * 1024));
    const double rel = k2res.mbPerSec() / lxres.mbPerSec();
    EXPECT_GT(rel, 0.15);
    EXPECT_LT(rel, 0.80);
}

TEST(Integration, EpisodeIncludesIdleTail)
{
    auto tb = wl::Testbed::makeLinux();
    const auto res = wl::runEpisode(tb.sys(), tb.proc(), "tiny",
                                    [](Thread &t) -> Task<std::uint64_t> {
                                        co_await t.exec(1000);
                                        co_return 1;
                                    });
    // The episode spans the 5 s inactive timeout tail.
    EXPECT_GT(res.episodeTime, sim::sec(5));
    EXPECT_LT(res.runTime, sim::msec(1));
    // Idle tail energy: the one core the task woke idles at 25.2 mW
    // plus the 20 mW cluster uncore for 5 s before re-gating (the
    // other core stays inactive).
    EXPECT_GT(res.energyUj, (25.2 + 20.0) * 5.0 * 1000 * 0.9);
    EXPECT_LT(res.energyUj, (25.2 + 20.0) * 5.0 * 1000 * 1.3);
}

TEST(Integration, UdpWorkloadRunsOnBothSystems)
{
    for (const bool use_k2 : {false, true}) {
        auto tb = use_k2 ? wl::Testbed::makeK2()
                         : wl::Testbed::makeLinux();
        const auto res = wl::runEpisode(
            tb.sys(), tb.proc(), "udp",
            wl::udpLoopback(tb.udp(), 4096, 256 * 1024));
        EXPECT_EQ(res.bytes, 256u * 1024) << "K2=" << use_k2;
        EXPECT_GT(res.mbPerJoule(), 0.0);
    }
}

TEST(Integration, SharedAllocatorAblationIsCatastrophic)
{
    // §9.3: 4-5 DSM faults per allocation, ~200x slowdown when the
    // allocator is shadowed instead of independent.
    baseline::SharedAllocSystem shared{[]() {
        os::K2Config cfg;
        cfg.soc.costs.inactiveTimeout = 0;
        return cfg;
    }()};
    os::K2System indep{[]() {
        os::K2Config cfg;
        cfg.soc.costs.inactiveTimeout = 0;
        return cfg;
    }()};

    auto ping_pong = [](os::SystemImage &sys, auto &k2like) -> double {
        auto &proc = sys.createProcess("p");
        sim::Duration total = 0;
        for (int round = 0; round < 10; ++round) {
            kern::Kernel &kern = (round % 2 == 0)
                ? k2like.mainKernel() : k2like.shadowKernel();
            sim::Time t0 = 0, t1 = 0;
            kern.spawnThread(
                &proc, "alloc", ThreadKind::Normal,
                [&](Thread &t) -> Task<void> {
                    t0 = sys.engine().now();
                    const auto r = co_await k2like.allocPages(t, 0);
                    t1 = sys.engine().now();
                    EXPECT_FALSE(r.empty());
                    co_await k2like.freePages(t, r);
                });
            sys.engine().run();
            total += t1 - t0;
        }
        return sim::toUsec(total) / 10.0;
    };

    const double shared_us = ping_pong(shared, shared);
    const double indep_us = ping_pong(indep, indep);
    const double slowdown = shared_us / indep_us;
    EXPECT_GT(slowdown, 20.0);
    // The shared version faults 4-5 pages per op.
    EXPECT_GE(shared.dsm().faultStats(0).faults.value() +
                  shared.dsm().faultStats(1).faults.value(),
              30u);
}

TEST(Integration, NightWatchEmailSyncEndToEnd)
{
    auto tb = wl::Testbed::makeK2();
    // Warm the service state onto the weak domain, then measure.
    wl::runEpisode(tb.sys(), tb.proc(), "email-warm",
                   wl::emailSync(tb.udp(), tb.fs(), 65536, 0));
    const auto wakeups0 =
        tb.sys().mainKernel().domain().core(0).wakeups() +
        tb.sys().mainKernel().domain().core(1).wakeups();

    const auto res =
        wl::runEpisode(tb.sys(), tb.proc(), "email",
                       wl::emailSync(tb.udp(), tb.fs(), 65536, 1));
    EXPECT_EQ(res.bytes, 2u * 65536);
    EXPECT_GT(res.mbPerJoule(), 0.0);
    // The steady-state episode ran without waking the strong domain.
    EXPECT_EQ(tb.sys().mainKernel().domain().core(0).wakeups() +
                  tb.sys().mainKernel().domain().core(1).wakeups(),
              wakeups0);
}

} // namespace
} // namespace k2
