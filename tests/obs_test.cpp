/**
 * @file
 * Unit tests for the observability layer: the metrics registry
 * (snapshot, diff, JSON rendering) and the Chrome trace exporter.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "obs/metrics.h"
#include "obs/trace_export.h"
#include "sim/engine.h"
#include "sim/log.h"
#include "sim/stats.h"

namespace k2::obs {
namespace {

TEST(MetricsRegistry, SnapshotCapturesLiveStats)
{
    sim::Counter c;
    sim::Accumulator a;
    sim::Histogram h;
    double g = 1.5;

    MetricsRegistry reg;
    reg.addCounter("x.count", c);
    reg.addAccumulator("x.lat_us", a);
    reg.addHistogram("x.dist", h);
    reg.addGauge("x.gauge", [&g]() { return g; });
    EXPECT_EQ(reg.size(), 4u);

    c.inc(3);
    a.sample(2.0);
    a.sample(6.0);
    h.sample(10.0);
    g = 2.5;

    const MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 4u);

    const MetricValue *cv = snap.find("x.count");
    ASSERT_NE(cv, nullptr);
    EXPECT_EQ(cv->kind, MetricValue::Kind::Counter);
    EXPECT_EQ(cv->count, 3u);

    const MetricValue *av = snap.find("x.lat_us");
    ASSERT_NE(av, nullptr);
    EXPECT_EQ(av->count, 2u);
    EXPECT_DOUBLE_EQ(av->sum, 8.0);
    EXPECT_DOUBLE_EQ(av->min, 2.0);
    EXPECT_DOUBLE_EQ(av->max, 6.0);
    EXPECT_DOUBLE_EQ(av->mean(), 4.0);

    const MetricValue *gv = snap.find("x.gauge");
    ASSERT_NE(gv, nullptr);
    EXPECT_DOUBLE_EQ(gv->value, 2.5);

    EXPECT_TRUE(snap.hasPrefix("x."));
    EXPECT_FALSE(snap.hasPrefix("y."));
    EXPECT_EQ(snap.find("missing"), nullptr);

    // Snapshots are immutable captures: mutating the live stat must
    // not change an existing snapshot.
    c.inc(100);
    EXPECT_EQ(snap.find("x.count")->count, 3u);
}

TEST(MetricsRegistry, DiffSubtractsAndInvalidatesExtrema)
{
    sim::Counter c;
    sim::Accumulator a;
    MetricsRegistry reg;
    reg.addCounter("c", c);
    reg.addAccumulator("a", a);

    c.inc(10);
    a.sample(1.0);
    const MetricsSnapshot before = reg.snapshot();

    c.inc(5);
    a.sample(3.0);
    a.sample(5.0);
    const MetricsSnapshot after = reg.snapshot();

    const MetricsSnapshot d = MetricsRegistry::diff(before, after);
    EXPECT_EQ(d.find("c")->count, 5u);
    EXPECT_EQ(d.find("a")->count, 2u);
    EXPECT_DOUBLE_EQ(d.find("a")->sum, 8.0);
    // Interval min/max are not derivable from endpoint snapshots.
    EXPECT_TRUE(std::isnan(d.find("a")->min));
    EXPECT_TRUE(std::isnan(d.find("a")->max));
}

TEST(MetricsRegistry, EmptyAccumulatorRendersNullNotZero)
{
    sim::Accumulator a;
    MetricsRegistry reg;
    reg.addAccumulator("empty", a);
    const std::string json = reg.snapshot().toJson();
    // min/max of an empty accumulator must not masquerade as 0.0.
    EXPECT_NE(json.find("\"min\": null"), std::string::npos);
    EXPECT_NE(json.find("\"max\": null"), std::string::npos);
}

TEST(MetricsRegistry, DuplicateAndInvalidNamesAreFatal)
{
    sim::Counter c;
    MetricsRegistry reg;
    reg.addCounter("ok.name-1", c);
    EXPECT_THROW(reg.addCounter("ok.name-1", c), sim::FatalError);
    EXPECT_THROW(reg.addCounter("Bad.Name", c), sim::FatalError);
    EXPECT_THROW(reg.addCounter("spac e", c), sim::FatalError);
    EXPECT_THROW(reg.addCounter("", c), sim::FatalError);
}

TEST(MetricsRegistry, JsonIsDeterministic)
{
    sim::Counter c;
    sim::Accumulator a;
    MetricsRegistry reg;
    reg.addCounter("z.c", c);
    reg.addAccumulator("a.a", a);
    c.inc(7);
    a.sample(0.25);
    const MetricsSnapshot s1 = reg.snapshot();
    const MetricsSnapshot s2 = reg.snapshot();
    EXPECT_EQ(s1.toJson(), s2.toJson());
    // Ordered by name, so "a.a" precedes "z.c".
    const std::string json = s1.toJson();
    EXPECT_LT(json.find("\"a.a\""), json.find("\"z.c\""));
}

TEST(TraceExport, SpansSerialiseToCatapultJson)
{
    sim::Engine eng;
    sim::Tracer &tr = eng.tracer();
    const sim::TrackId t = tr.addTrack("test.track");
    tr.enableSpans(64);

    tr.spanComplete(sim::usec(1), sim::usec(2), t, "work");
    tr.spanInstant(sim::usec(5), t, "ping", 42.0);
    tr.spanCounter(sim::usec(6), t, "mW", 3.5);
    tr.spanCompleteStr(sim::usec(7), sim::usec(1), t, "run", "thread-9");

    const std::string json = chromeTraceJson(tr);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"test.track\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
    EXPECT_NE(json.find("\"detail\": \"thread-9\""), std::string::npos);
    // 1 us = 1.000000 in catapult microseconds, exactly.
    EXPECT_NE(json.find("\"ts\": 1.000000"), std::string::npos);
    EXPECT_NE(json.find("\"dur\": 2.000000"), std::string::npos);
}

TEST(TraceExport, DropsCountedWhenBufferFull)
{
    sim::Engine eng;
    sim::Tracer &tr = eng.tracer();
    const sim::TrackId t = tr.addTrack("tiny");
    tr.enableSpans(2);
    tr.spanInstant(0, t, "a");
    tr.spanInstant(0, t, "b");
    tr.spanInstant(0, t, "c");
    EXPECT_EQ(tr.spanEvents().size(), 2u);
    EXPECT_EQ(tr.spansDropped(), 1u);
}

TEST(TraceExport, TextRecordsMirrorOntoCategoryTracks)
{
    sim::Engine eng;
    eng.tracer().enableSpans(64);
    eng.tracer().enable(sim::kTraceAll);
    K2_TRACE(eng, sim::TraceCat::Dsm, "fault on page %d", 7);

    bool found = false;
    for (const auto &e : eng.tracer().spanEvents()) {
        if (e.phase == sim::SpanPhase::Instant &&
            e.detail != sim::Tracer::kNoDetail &&
            eng.tracer().spanDetail(e.detail).find("fault on page 7") !=
                std::string::npos)
            found = true;
    }
    EXPECT_TRUE(found);
    // The per-category track exists.
    bool track = false;
    for (const auto &name : eng.tracer().trackNames())
        track |= (name == "trace.dsm");
    EXPECT_TRUE(track);
}

TEST(TraceExport, DisabledSpansRecordNothing)
{
    sim::Engine eng;
    const sim::TrackId t = eng.tracer().addTrack("off");
    EXPECT_FALSE(eng.tracer().spansOn());
    eng.spanInstant(t, "ignored");
    eng.spanCounter(t, "ignored", 1.0);
    EXPECT_TRUE(eng.tracer().spanEvents().empty());
}

} // namespace
} // namespace k2::obs
