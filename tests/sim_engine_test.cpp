/**
 * @file
 * Unit tests for the discrete-event engine and Task coroutines.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.h"
#include "sim/task.h"
#include "sim/time.h"

namespace k2::sim {
namespace {

TEST(Time, DurationConstructors)
{
    EXPECT_EQ(nsec(1), 1000u);
    EXPECT_EQ(usec(1), 1000u * 1000u);
    EXPECT_EQ(msec(1), 1000ull * 1000 * 1000);
    EXPECT_EQ(sec(1), 1000ull * 1000 * 1000 * 1000);
    EXPECT_EQ(sec(2), msec(2000));
}

TEST(Time, CyclesToTime)
{
    // 1 GHz: one cycle is exactly 1 ns.
    EXPECT_EQ(cyclesToTime(1, 1000000000ull), nsec(1));
    EXPECT_EQ(cyclesToTime(1000, 1000000000ull), usec(1));
    // 200 MHz: one cycle is 5 ns.
    EXPECT_EQ(cyclesToTime(1, 200000000ull), nsec(5));
    // 1.2 GHz: one cycle is ~833.3 ps, rounded up.
    EXPECT_EQ(cyclesToTime(1, 1200000000ull), 834u);
    // Rounding must never produce zero for nonzero cycles.
    EXPECT_GT(cyclesToTime(1, 3000000000ull), 0u);
}

TEST(Time, TimeToCycles)
{
    EXPECT_EQ(timeToCycles(usec(1), 1000000000ull), 1000u);
    EXPECT_EQ(timeToCycles(nsec(5), 200000000ull), 1u);
}

TEST(Engine, EventsRunInTimeOrder)
{
    Engine eng;
    std::vector<int> order;
    eng.at(usec(3), [&]() { order.push_back(3); });
    eng.at(usec(1), [&]() { order.push_back(1); });
    eng.at(usec(2), [&]() { order.push_back(2); });
    eng.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eng.now(), usec(3));
}

TEST(Engine, TiesBreakFifo)
{
    Engine eng;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eng.at(usec(5), [&, i]() { order.push_back(i); });
    eng.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(Engine, RunUntilHorizonStopsAndAdvancesClock)
{
    Engine eng;
    int ran = 0;
    eng.at(usec(1), [&]() { ++ran; });
    eng.at(usec(10), [&]() { ++ran; });
    eng.run(usec(5));
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(eng.now(), usec(5));
    eng.run();
    EXPECT_EQ(ran, 2);
}

TEST(Engine, CancelPreventsDispatch)
{
    Engine eng;
    int ran = 0;
    EventId id = eng.at(usec(1), [&]() { ++ran; });
    eng.cancel(id);
    eng.run();
    EXPECT_EQ(ran, 0);
}

TEST(Engine, CancelAfterFireIsNoop)
{
    Engine eng;
    int ran = 0;
    EventId id = eng.at(usec(1), [&]() { ++ran; });
    eng.run();
    eng.cancel(id);
    EXPECT_EQ(ran, 1);
}

TEST(Engine, NestedSchedulingFromCallback)
{
    Engine eng;
    std::vector<Time> times;
    eng.at(usec(1), [&]() {
        times.push_back(eng.now());
        eng.after(usec(2), [&]() { times.push_back(eng.now()); });
    });
    eng.run();
    ASSERT_EQ(times.size(), 2u);
    EXPECT_EQ(times[0], usec(1));
    EXPECT_EQ(times[1], usec(3));
}

Task<int>
fortyTwo()
{
    co_return 42;
}

Task<int>
addOne(Task<int> inner)
{
    const int v = co_await inner;
    co_return v + 1;
}

Task<void>
storeResult(Engine &eng, int *out)
{
    co_await eng.sleep(usec(7));
    *out = co_await addOne(fortyTwo());
}

TEST(Task, SpawnedCoroutineRunsAndComposes)
{
    Engine eng;
    int result = 0;
    eng.spawn(storeResult(eng, &result));
    EXPECT_EQ(result, 0) << "task must be lazy";
    eng.run();
    EXPECT_EQ(result, 43);
    EXPECT_EQ(eng.now(), usec(7));
}

TEST(Task, UnawaitedTaskNeverRuns)
{
    Engine eng;
    bool ran = false;
    {
        auto t = [&]() -> Task<void> {
            ran = true;
            co_return;
        }();
        // t destroyed without being awaited or spawned.
    }
    eng.run();
    EXPECT_FALSE(ran);
}

Task<void>
thrower()
{
    co_await std::suspend_never{};
    throw std::runtime_error("boom");
}

Task<void>
catcher(bool *caught)
{
    try {
        co_await thrower();
    } catch (const std::runtime_error &) {
        *caught = true;
    }
}

TEST(Task, ExceptionsPropagateToAwaiter)
{
    Engine eng;
    bool caught = false;
    eng.spawn(catcher(&caught));
    eng.run();
    EXPECT_TRUE(caught);
}

Task<void>
deepChain(Engine &eng, int depth, int *count)
{
    if (depth == 0) {
        co_await eng.sleep(nsec(1));
        ++*count;
        co_return;
    }
    co_await deepChain(eng, depth - 1, count);
    ++*count;
}

TEST(Task, DeepAwaitChainDoesNotOverflowStack)
{
#if defined(__SANITIZE_ADDRESS__)
    // ASan's larger frames put a 20k chain right at the default stack
    // limit; the symmetric-transfer property is tested the same way.
    constexpr int kDepth = 2000;
#else
    constexpr int kDepth = 20000;
#endif
    Engine eng;
    int count = 0;
    eng.spawn(deepChain(eng, kDepth, &count));
    eng.run();
    EXPECT_EQ(count, kDepth + 1);
}

TEST(Engine, SleepZeroCompletesImmediately)
{
    Engine eng;
    int steps = 0;
    eng.spawn([](Engine &e, int *s) -> Task<void> {
        co_await e.sleep(0);
        ++*s;
        co_await e.sleep(usec(1));
        ++*s;
    }(eng, &steps));
    eng.run();
    EXPECT_EQ(steps, 2);
    EXPECT_EQ(eng.now(), usec(1));
}

TEST(Engine, ManySpawnsAllComplete)
{
    Engine eng;
    int done = 0;
    for (int i = 0; i < 1000; ++i) {
        eng.spawn([](Engine &e, int *d, int i) -> Task<void> {
            co_await e.sleep(nsec(static_cast<std::uint64_t>(i)));
            ++*d;
        }(eng, &done, i));
    }
    eng.run();
    EXPECT_EQ(done, 1000);
}

} // namespace
} // namespace k2::sim
