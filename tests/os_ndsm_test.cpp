/**
 * @file
 * Tests for the N-domain DSM (the §11 extension) on a three-domain
 * SoC: ownership transfer among three kernels, the one-writer
 * invariant, serialisation of concurrent faults, and randomized
 * property sweeps.
 */

#include <gtest/gtest.h>

#include <memory>

#include "sim/random.h"
#include "os/ndsm.h"

namespace k2::os {
namespace {

using kern::Thread;
using kern::ThreadKind;
using sim::Task;

class NDsmTest : public ::testing::Test
{
  protected:
    NDsmTest()
    {
        auto cfg = soc::threeDomainConfig();
        cfg.costs.inactiveTimeout = 0;
        soc = std::make_unique<soc::Soc>(eng, cfg);
        for (soc::DomainId d = 0; d < 3; ++d) {
            kernels.push_back(std::make_unique<kern::Kernel>(
                *soc, d, "k" + std::to_string(d)));
            kernels.back()->boot();
        }
        ndsm = std::make_unique<NDsm>(
            *soc,
            std::vector<kern::Kernel *>{kernels[0].get(),
                                        kernels[1].get(),
                                        kernels[2].get()},
            4096);
        // Route DSM mail on every kernel.
        for (std::size_t i = 0; i < 3; ++i) {
            kernels[i]->setMailHandler(
                [this, i](soc::Mail m, soc::Core &c) {
                    return ndsm->handleMail(i, m, c);
                });
        }
        proc = std::make_unique<kern::Process>(1, "app");
    }

    /** Run an access from kernel @p k to completion. */
    void
    touch(std::size_t k, std::uint64_t page)
    {
        kernels[k]->spawnThread(
            proc.get(), "t", ThreadKind::Normal,
            [this, k, page](Thread &t) -> Task<void> {
                co_await ndsm->access(t.kernel(), t.core(), page,
                                      Access::Write);
            });
        eng.run();
    }

    sim::Engine eng;
    std::unique_ptr<soc::Soc> soc;
    std::vector<std::unique_ptr<kern::Kernel>> kernels;
    std::unique_ptr<NDsm> ndsm;
    std::unique_ptr<kern::Process> proc;
};

TEST_F(NDsmTest, ThreeDomainConfigIsValid)
{
    EXPECT_EQ(soc->numDomains(), 3u);
    EXPECT_EQ(soc->domain(soc::kHubDomain).spec().core.name,
              "Cortex-M0");
    // The hub is even weaker and lower power than the M3.
    EXPECT_LT(soc->domain(soc::kHubDomain).spec().core.points[0].activeMw,
              soc->domain(soc::kWeakDomain).spec().core.points.back()
                  .activeMw);
}

TEST_F(NDsmTest, OwnershipMovesAmongThreeKernels)
{
    EXPECT_EQ(ndsm->ownerOf(5), 0u);
    touch(1, 5);
    EXPECT_EQ(ndsm->ownerOf(5), 1u);
    touch(2, 5);
    EXPECT_EQ(ndsm->ownerOf(5), 2u);
    touch(0, 5);
    EXPECT_EQ(ndsm->ownerOf(5), 0u);
    // Each move was one fault of the requester.
    EXPECT_EQ(ndsm->faults(1), 1u);
    EXPECT_EQ(ndsm->faults(2), 1u);
    EXPECT_EQ(ndsm->faults(0), 1u);
    // 2 messages (Get + Put) per transfer.
    EXPECT_EQ(ndsm->messagesSent(), 6u);
}

TEST_F(NDsmTest, OwnerAccessIsFree)
{
    touch(2, 9);
    const auto faults = ndsm->faults(2);
    touch(2, 9);
    touch(2, 9);
    EXPECT_EQ(ndsm->faults(2), faults);
}

TEST_F(NDsmTest, RequestGoesDirectlyToOwnerNotBroadcast)
{
    touch(1, 3); // owner: kernel 1
    const auto msgs = ndsm->messagesSent();
    touch(2, 3); // kernel 2 requests from kernel 1 directly
    EXPECT_EQ(ndsm->messagesSent(), msgs + 2);
}

TEST_F(NDsmTest, ConcurrentFaultsFromTwoKernelsSerialise)
{
    int done = 0;
    for (const std::size_t k : {1u, 2u}) {
        kernels[k]->spawnThread(
            proc.get(), "f", ThreadKind::Normal,
            [this, k, &done](Thread &t) -> Task<void> {
                co_await ndsm->access(t.kernel(), t.core(), 17,
                                      Access::Write);
                ++done;
            });
    }
    eng.run();
    EXPECT_EQ(done, 2);
    // Final owner is one of the two requesters.
    EXPECT_NE(ndsm->ownerOf(17), 0u);
}

TEST_F(NDsmTest, FaultLatencyComparableToTwoKernelDsm)
{
    for (int round = 0; round < 12; ++round)
        touch(1 + static_cast<std::size_t>(round % 2), 21);
    // Weak-kernel faults should be in the same ~50 us ballpark as the
    // two-kernel DSM: the structure is unchanged (§11).
    EXPECT_GT(ndsm->meanFaultUs(1), 25.0);
    EXPECT_LT(ndsm->meanFaultUs(1), 120.0);
    EXPECT_GT(ndsm->meanFaultUs(2), 25.0);
    EXPECT_LT(ndsm->meanFaultUs(2), 120.0);
}

TEST_F(NDsmTest, RegionAllocationDisjoint)
{
    const auto a = ndsm->allocRegion(10);
    const auto b = ndsm->allocRegion(10);
    EXPECT_EQ(b.first, a.end());
}

/** Property: random access sequences keep exactly one owner per page
 *  and never lose a request. */
class NDsmPropertyTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(NDsmPropertyTest, RandomTrafficKeepsOneOwner)
{
    sim::Engine eng;
    auto cfg = soc::threeDomainConfig();
    cfg.costs.inactiveTimeout = 0;
    soc::Soc soc(eng, cfg);
    std::vector<std::unique_ptr<kern::Kernel>> kernels;
    std::vector<kern::Kernel *> raw;
    for (soc::DomainId d = 0; d < 3; ++d) {
        kernels.push_back(std::make_unique<kern::Kernel>(
            soc, d, "k" + std::to_string(d)));
        kernels.back()->boot();
        raw.push_back(kernels.back().get());
    }
    NDsm ndsm(soc, raw, 64);
    for (std::size_t i = 0; i < 3; ++i) {
        kernels[i]->setMailHandler(
            [&ndsm, i](soc::Mail m, soc::Core &c) {
                return ndsm.handleMail(i, m, c);
            });
    }
    kern::Process proc(1, "p");

    sim::Rng rng(GetParam());
    int completed = 0;
    int issued = 0;
    for (int step = 0; step < 120; ++step) {
        const auto k = static_cast<std::size_t>(rng.below(3));
        const auto page = rng.below(8);
        ++issued;
        kernels[k]->spawnThread(
            &proc, "t", kern::ThreadKind::Normal,
            [&, k, page](kern::Thread &t) -> Task<void> {
                co_await ndsm.access(t.kernel(), t.core(), page,
                                     Access::Write);
                EXPECT_EQ(ndsm.ownerOf(page), k);
                ++completed;
            });
        eng.run();
    }
    EXPECT_EQ(completed, issued);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NDsmPropertyTest,
                         ::testing::Values(11, 23, 47));

} // namespace
} // namespace k2::os
