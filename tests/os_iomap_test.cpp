/**
 * @file
 * Tests for the §6.1 temporary IO-mapping protocol: identical virtual
 * addresses in both kernels, asynchronous propagation, teardown, and
 * window placement above the direct map.
 */

#include <gtest/gtest.h>

#include "os/k2_system.h"

namespace k2::os {
namespace {

using kern::Thread;
using kern::ThreadKind;
using sim::Task;

class IoMapTest : public ::testing::Test
{
  protected:
    IoMapTest()
    {
        K2Config cfg;
        cfg.soc.costs.inactiveTimeout = 0;
        k2sys = std::make_unique<K2System>(cfg);
        proc = &k2sys->createProcess("app");
    }

    void
    runOn(kern::Kernel &kern, Thread::Body body)
    {
        kern.spawnThread(proc, "t", ThreadKind::Normal, std::move(body));
        k2sys->ownedEngine().run();
    }

    std::unique_ptr<K2System> k2sys;
    kern::Process *proc = nullptr;
};

TEST_F(IoMapTest, WindowSitsAboveDirectMap)
{
    const auto &layout = k2sys->layout();
    EXPECT_EQ(k2sys->ioMapper().windowBase(),
              layout.vaddrOf(layout.totalPages()));
}

TEST_F(IoMapTest, MappingPropagatesToPeerKernel)
{
    IoMapper::RegionId id = 0;
    std::uint64_t vaddr = 0;
    runOn(k2sys->mainKernel(), [&](Thread &t) -> Task<void> {
        auto [rid, va] = co_await k2sys->ioMapper().mapIo(t, 4);
        id = rid;
        vaddr = va;
        // Usable locally immediately.
        EXPECT_TRUE(k2sys->ioMapper().isMapped(0, rid));
    });
    // After the engine drained, the peer has installed it too.
    EXPECT_TRUE(k2sys->ioMapper().isMapped(1, id));
    EXPECT_EQ(k2sys->ioMapper().vaddrOf(id), vaddr);
    EXPECT_GE(vaddr, k2sys->ioMapper().windowBase());
    EXPECT_EQ(k2sys->ioMapper().propagations.value(), 1u);
}

TEST_F(IoMapTest, MappingsFromBothKernelsGetDisjointAddresses)
{
    std::uint64_t va_main = 0;
    std::uint64_t va_shadow = 0;
    IoMapper::RegionId id_main = 0;
    runOn(k2sys->mainKernel(), [&](Thread &t) -> Task<void> {
        auto [rid, va] = co_await k2sys->ioMapper().mapIo(t, 2);
        id_main = rid;
        va_main = va;
    });
    runOn(k2sys->shadowKernel(), [&](Thread &t) -> Task<void> {
        auto [rid, va] = co_await k2sys->ioMapper().mapIo(t, 2);
        va_shadow = va;
        (void)rid;
    });
    // Non-overlapping ranges, 2 pages apart.
    EXPECT_EQ(va_shadow, va_main + 2 * 4096);
    EXPECT_TRUE(k2sys->ioMapper().isMapped(0, id_main));
}

TEST_F(IoMapTest, UnmapPropagatesAndReleases)
{
    IoMapper::RegionId id = 0;
    runOn(k2sys->shadowKernel(), [&](Thread &t) -> Task<void> {
        auto [rid, va] = co_await k2sys->ioMapper().mapIo(t, 1);
        (void)va;
        id = rid;
    });
    ASSERT_TRUE(k2sys->ioMapper().isMapped(0, id));
    // Tear down from the *other* kernel (single system image: either
    // side may own the device teardown path).
    runOn(k2sys->mainKernel(), [&](Thread &t) -> Task<void> {
        co_await k2sys->ioMapper().unmapIo(t, id);
    });
    EXPECT_FALSE(k2sys->ioMapper().isMapped(0, id));
    EXPECT_FALSE(k2sys->ioMapper().isMapped(1, id));
    EXPECT_EQ(k2sys->ioMapper().maps.value(), 1u);
    EXPECT_EQ(k2sys->ioMapper().unmaps.value(), 1u);
}

TEST_F(IoMapTest, CreationChargesTimeOnTheMappingKernel)
{
    sim::Duration main_cost = 0;
    sim::Duration shadow_cost = 0;
    runOn(k2sys->mainKernel(), [&](Thread &t) -> Task<void> {
        const auto t0 = k2sys->ownedEngine().now();
        (void)co_await k2sys->ioMapper().mapIo(t, 16);
        main_cost = k2sys->ownedEngine().now() - t0;
    });
    runOn(k2sys->shadowKernel(), [&](Thread &t) -> Task<void> {
        const auto t0 = k2sys->ownedEngine().now();
        (void)co_await k2sys->ioMapper().mapIo(t, 16);
        shadow_cost = k2sys->ownedEngine().now() - t0;
    });
    EXPECT_GT(main_cost, 0u);
    // The weak kernel's page-table work is slower.
    EXPECT_GT(shadow_cost, main_cost * 3);
}

} // namespace
} // namespace k2::os
