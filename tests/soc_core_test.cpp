/**
 * @file
 * Unit tests for core power states, energy metering, and config.
 */

#include <gtest/gtest.h>

#include "sim/engine.h"
#include "soc/config.h"
#include "soc/core.h"
#include "soc/power.h"

namespace k2::soc {
namespace {

using sim::Engine;
using sim::Task;

class CoreTest : public ::testing::Test
{
  protected:
    CoreTest()
        : meter(eng), cfg(omap4Config())
    {
        rail = meter.addRail("test");
        costs = cfg.costs;
    }

    Engine eng;
    EnergyMeter meter;
    SocConfig cfg;
    RailId rail = 0;
    PlatformCosts costs;
};

TEST_F(CoreTest, Omap4ConfigMatchesPaperTables)
{
    ASSERT_EQ(cfg.domains.size(), 2u);
    const auto &strong = cfg.domains[kStrongDomain];
    const auto &weak = cfg.domains[kWeakDomain];
    EXPECT_EQ(strong.core.name, "Cortex-A9");
    EXPECT_EQ(weak.core.name, "Cortex-M3");
    // Table 3 power numbers.
    EXPECT_DOUBLE_EQ(strong.core.points.front().activeMw, 79.8);
    EXPECT_DOUBLE_EQ(strong.core.points.back().activeMw, 672.0);
    EXPECT_DOUBLE_EQ(strong.core.idleMw, 25.2);
    EXPECT_DOUBLE_EQ(weak.core.points.back().activeMw, 21.1);
    EXPECT_DOUBLE_EQ(weak.core.idleMw, 3.8);
    EXPECT_LT(strong.core.inactiveMw, 0.1);
    EXPECT_LT(weak.core.inactiveMw, 0.1);
    // Table 1 frequencies.
    EXPECT_EQ(strong.core.points.front().hz, 350000000ull);
    EXPECT_EQ(strong.core.points.back().hz, 1200000000ull);
    EXPECT_EQ(weak.core.points.back().hz, 200000000ull);
    // The paper's 5 us mailbox round trip.
    EXPECT_EQ(2 * cfg.costs.mailboxOneWay, sim::usec(5));
}

TEST_F(CoreTest, ConfigValidationCatchesBadConfigs)
{
    SocConfig bad = cfg;
    bad.domains.clear();
    EXPECT_THROW(bad.validate(), sim::FatalError);

    bad = cfg;
    bad.pageBytes = 3000;
    EXPECT_THROW(bad.validate(), sim::FatalError);

    bad = cfg;
    bad.domains[0].core.points.clear();
    EXPECT_THROW(bad.validate(), sim::FatalError);

    bad = cfg;
    bad.domains[0].numCores = 0;
    EXPECT_THROW(bad.validate(), sim::FatalError);
}

TEST_F(CoreTest, ExecChargesActiveTimeAndEnergy)
{
    Core core(eng, meter, rail, cfg.domains[kStrongDomain].core, costs,
              0, 0);
    // 350 MHz, IPC 1.0: 350000 instructions = 1 ms.
    eng.spawn([](Core &core) -> Task<void> {
        co_await core.exec(350000);
    }(core));
    eng.run(sim::msec(2));

    EXPECT_EQ(core.activeTime(), sim::msec(1));
    // Energy: 1 ms at 79.8 mW (active) + 1 ms at 25.2 mW (idle)
    // = 79.8 uJ + 25.2 uJ.
    EXPECT_NEAR(meter.energyUj(rail), 79.8 + 25.2, 0.5);
}

TEST_F(CoreTest, WeakCoreIsSlowerByFreqAndIpc)
{
    Core strong(eng, meter, rail, cfg.domains[kStrongDomain].core, costs,
                0, 0);
    Core weak(eng, meter, rail, cfg.domains[kWeakDomain].core, costs,
              1, 1);
    const std::uint64_t n = 1000000;
    const double ratio = static_cast<double>(weak.instrTime(n)) /
                         static_cast<double>(strong.instrTime(n));
    // (350e6 * 1.0) / (200e6 * 0.8) = 2.1875.
    EXPECT_NEAR(ratio, 2.1875, 0.01);
}

TEST_F(CoreTest, IdleCoreBecomesInactiveAfterTimeout)
{
    Core core(eng, meter, rail, cfg.domains[kStrongDomain].core, costs,
              0, 0);
    EXPECT_EQ(core.state(), PowerState::Idle);
    eng.run(costs.inactiveTimeout - sim::msec(1));
    EXPECT_EQ(core.state(), PowerState::Idle);
    eng.run(costs.inactiveTimeout + sim::msec(1));
    EXPECT_EQ(core.state(), PowerState::Inactive);
}

TEST_F(CoreTest, ThreadActivityResetsInactiveTimer)
{
    Core core(eng, meter, rail, cfg.domains[kStrongDomain].core, costs,
              0, 0);
    eng.spawn([](Engine &eng, Core &core) -> Task<void> {
        co_await eng.sleep(sim::sec(4));
        co_await core.exec(1000);
        core.noteThreadActivity(); // what the scheduler does
    }(eng, core));
    // At t=6s: the timer restarted at ~4s, so still idle.
    eng.run(sim::sec(6));
    EXPECT_EQ(core.state(), PowerState::Idle);
    // By t=10s the post-activity timeout has elapsed.
    eng.run(sim::sec(10));
    EXPECT_EQ(core.state(), PowerState::Inactive);
}

TEST_F(CoreTest, IrqOnlyWakeRegatesQuickly)
{
    // A core woken from the gated state purely to run interrupt work
    // re-gates after irqRegateTimeout, not the full 5 s (cpuidle).
    Core core(eng, meter, rail, cfg.domains[kStrongDomain].core, costs,
              0, 0);
    eng.run(sim::sec(6));
    ASSERT_TRUE(core.isInactive());
    eng.spawn([](Core &core) -> Task<void> {
        co_await core.exec(1000); // an ISR; no thread dispatched
    }(core));
    eng.run(sim::sec(6) + sim::msec(10));
    EXPECT_TRUE(core.isInactive());
    EXPECT_EQ(core.wakeups(), 1u);
}

TEST_F(CoreTest, WakeFromInactiveChargesPenalty)
{
    Core core(eng, meter, rail, cfg.domains[kStrongDomain].core, costs,
              0, 0);
    eng.run(sim::sec(6));
    ASSERT_TRUE(core.isInactive());
    const auto before = meter.snapshot();
    const sim::Time start = eng.now();
    sim::Time finished = 0;
    eng.spawn([](Engine &eng, Core &core, sim::Time *fin) -> Task<void> {
        co_await core.exec(350); // 1 us of work
        *fin = eng.now();
    }(eng, core, &finished));
    eng.run();
    EXPECT_EQ(core.wakeups(), 1u);
    // Completion time includes the wake latency.
    EXPECT_EQ(finished - start,
              cfg.domains[kStrongDomain].core.wakeLatency + sim::usec(1));
    // Energy includes the wake pulse.
    EXPECT_GT(before.railUj(meter, rail),
              cfg.domains[kStrongDomain].core.wakeEnergyUj);
}

TEST_F(CoreTest, ConcurrentWakersShareOneWakeup)
{
    Core core(eng, meter, rail, cfg.domains[kStrongDomain].core, costs,
              0, 0);
    eng.run(sim::sec(6));
    ASSERT_TRUE(core.isInactive());
    int done = 0;
    for (int i = 0; i < 3; ++i) {
        eng.spawn([](Core &core, int *done) -> Task<void> {
            co_await core.ensureAwake();
            ++*done;
        }(core, &done));
    }
    eng.run();
    EXPECT_EQ(done, 3);
    EXPECT_EQ(core.wakeups(), 1u);
}

TEST_F(CoreTest, OverlappingExecsKeepCoreActive)
{
    Core core(eng, meter, rail, cfg.domains[kStrongDomain].core, costs,
              0, 0);
    // Two overlapping 1 ms executions, staggered by 0.5 ms (e.g. an
    // interrupt handler overlapping a thread).
    eng.spawn([](Core &core) -> Task<void> {
        co_await core.exec(350000);
    }(core));
    eng.spawn([](Engine &eng, Core &core) -> Task<void> {
        co_await eng.sleep(sim::usec(500));
        co_await core.exec(350000);
    }(eng, core));
    eng.run(sim::msec(3));
    // Active from 0 to 1.5 ms.
    EXPECT_EQ(core.activeTime(), sim::usec(1500));
}

TEST_F(CoreTest, OperatingPointChangesSpeedAndPower)
{
    Core core(eng, meter, rail, cfg.domains[kStrongDomain].core, costs,
              0, 0);
    const auto slow = core.instrTime(1200000);
    core.setOperatingPoint(cfg.domains[kStrongDomain].core.points.size() -
                           1);
    EXPECT_EQ(core.hz(), 1200000000ull);
    const auto fast = core.instrTime(1200000);
    EXPECT_NEAR(static_cast<double>(slow) / fast, 1200.0 / 350.0, 0.01);

    eng.spawn([](Core &core) -> Task<void> {
        co_await core.exec(1200000); // 1 ms at 1.2 GHz
    }(core));
    eng.run(sim::msec(1));
    EXPECT_NEAR(meter.energyUj(rail), 672.0 * 0.001 * 1000, 1.0);
}

TEST_F(CoreTest, InvalidOperatingPointIsFatal)
{
    Core core(eng, meter, rail, cfg.domains[kStrongDomain].core, costs,
              0, 0);
    EXPECT_THROW(core.setOperatingPoint(99), sim::FatalError);
}

TEST_F(CoreTest, SnapshotMeasuresInterval)
{
    Core core(eng, meter, rail, cfg.domains[kStrongDomain].core, costs,
              0, 0);
    eng.spawn([](Core &core) -> Task<void> {
        co_await core.exec(350000);
    }(core));
    eng.run(sim::msec(1));
    const auto snap = meter.snapshot();
    eng.run(sim::msec(2)); // 1 ms idle
    EXPECT_NEAR(snap.railUj(meter, rail), 25.2 * 0.001 * 1000, 0.1);
    EXPECT_NEAR(snap.totalUj(meter), 25.2 * 0.001 * 1000, 0.1);
}

} // namespace
} // namespace k2::soc
