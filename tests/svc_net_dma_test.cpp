/**
 * @file
 * Tests for the UDP stack and the DMA driver on the baseline system.
 */

#include <gtest/gtest.h>

#include <set>

#include "workloads/testbed.h"

namespace k2::svc {
namespace {

using kern::Thread;
using sim::Task;

class NetDmaTest : public ::testing::Test
{
  protected:
    NetDmaTest()
        : tb(wl::Testbed::makeLinux())
    {}

    void
    run(std::function<Task<void>(Thread &)> body)
    {
        tb.sys().spawnNormal(tb.proc(), "t", std::move(body));
        tb.engine().run();
    }

    wl::Testbed tb;
};

TEST_F(NetDmaTest, UdpLoopbackDelivers)
{
    run([&](Thread &t) -> Task<void> {
        auto &udp = tb.udp();
        const std::int64_t tx = co_await udp.socket(t);
        const std::int64_t rx = co_await udp.socket(t);
        EXPECT_GE(tx, 0);
        EXPECT_GE(rx, 0);
        const std::int64_t port =
            co_await udp.bind(t, static_cast<int>(rx), 5353);
        EXPECT_EQ(port, 5353);

        EXPECT_EQ(co_await udp.sendTo(t, static_cast<int>(tx), 5353,
                                      1200),
                  1200);
        EXPECT_EQ(co_await udp.recvFrom(t, static_cast<int>(rx)), 1200);
        EXPECT_EQ(udp.packetsSent.value(), 1u);
        co_await udp.close(t, static_cast<int>(tx));
        co_await udp.close(t, static_cast<int>(rx));
    });
}

TEST_F(NetDmaTest, RecvBlocksUntilDataArrives)
{
    auto &udp = tb.udp();
    std::vector<std::string> log;
    run([&](Thread &t) -> Task<void> {
        const std::int64_t rx = co_await udp.socket(t);
        co_await udp.bind(t, static_cast<int>(rx), 7000);

        // Sender fires 2 ms later from another thread.
        tb.sys().spawnNormal(
            tb.proc(), "sender", [&](Thread &s) -> Task<void> {
                co_await s.sleep(sim::msec(2));
                const std::int64_t tx = co_await udp.socket(s);
                log.push_back("send");
                co_await udp.sendTo(s, static_cast<int>(tx), 7000, 100);
                co_await udp.close(s, static_cast<int>(tx));
            });

        log.push_back("recv-start");
        EXPECT_EQ(co_await udp.recvFrom(t, static_cast<int>(rx)), 100);
        log.push_back("recv-done");
        co_await udp.close(t, static_cast<int>(rx));
    });
    EXPECT_EQ(log, (std::vector<std::string>{"recv-start", "send",
                                             "recv-done"}));
}

TEST_F(NetDmaTest, UdpErrorPaths)
{
    run([&](Thread &t) -> Task<void> {
        auto &udp = tb.udp();
        EXPECT_EQ(co_await udp.sendTo(t, 99, 1, 10),
                  -static_cast<std::int64_t>(NetStatus::BadSocket));
        const std::int64_t tx = co_await udp.socket(t);
        // Nothing bound at port 9999.
        EXPECT_EQ(
            co_await udp.sendTo(t, static_cast<int>(tx), 9999, 10),
            -static_cast<std::int64_t>(NetStatus::PortUnreachable));
        // Oversized datagram.
        EXPECT_EQ(co_await udp.sendTo(t, static_cast<int>(tx), 9999,
                                      100000),
                  -static_cast<std::int64_t>(NetStatus::MsgTooBig));
        // Port collision.
        const std::int64_t a = co_await udp.socket(t);
        const std::int64_t b = co_await udp.socket(t);
        EXPECT_EQ(co_await udp.bind(t, static_cast<int>(a), 4000), 4000);
        EXPECT_EQ(co_await udp.bind(t, static_cast<int>(b), 4000),
                  -static_cast<std::int64_t>(NetStatus::AddrInUse));
        co_await udp.close(t, static_cast<int>(tx));
        co_await udp.close(t, static_cast<int>(a));
        co_await udp.close(t, static_cast<int>(b));
    });
}

TEST_F(NetDmaTest, RcvBufOverflowDropsPackets)
{
    run([&](Thread &t) -> Task<void> {
        auto &udp = tb.udp();
        const std::int64_t tx = co_await udp.socket(t);
        const std::int64_t rx = co_await udp.socket(t);
        co_await udp.bind(t, static_cast<int>(rx), 8000);
        // 256 KB receive buffer; 5 x 60000-byte datagrams overflow it.
        std::int64_t sent_ok = 0;
        for (int i = 0; i < 5; ++i) {
            const auto r = co_await udp.sendTo(t, static_cast<int>(tx),
                                               8000, 60000);
            if (r > 0)
                ++sent_ok;
        }
        EXPECT_EQ(sent_ok, 4);
        EXPECT_EQ(udp.packetsDropped.value(), 1u);
        co_await udp.close(t, static_cast<int>(tx));
        co_await udp.close(t, static_cast<int>(rx));
    });
}

TEST_F(NetDmaTest, EphemeralPortsAreUnique)
{
    run([&](Thread &t) -> Task<void> {
        auto &udp = tb.udp();
        std::set<std::int64_t> ports;
        std::vector<std::int64_t> socks;
        for (int i = 0; i < 10; ++i) {
            const std::int64_t s = co_await udp.socket(t);
            EXPECT_GE(s, 0);
            const std::int64_t p =
                co_await udp.bind(t, static_cast<int>(s), 0);
            EXPECT_GE(p, 32768);
            ports.insert(p);
            socks.push_back(s);
        }
        EXPECT_EQ(ports.size(), 10u);
        for (const auto s : socks)
            co_await udp.close(t, static_cast<int>(s));
    });
}

TEST_F(NetDmaTest, DmaTransferCompletes)
{
    run([&](Thread &t) -> Task<void> {
        auto &dma = tb.dma();
        co_await dma.transfer(t, 256 * 1024);
        EXPECT_EQ(dma.transfers.value(), 1u);
        EXPECT_EQ(dma.bytesMoved.value(), 256u * 1024);
        EXPECT_EQ(dma.irqsHandled.value(), 1u);
        // ~256 KB at 42 MB/s is ~6.2 ms.
        EXPECT_GT(dma.transferUs.mean(), 4000.0);
        EXPECT_LT(dma.transferUs.mean(), 12000.0);
    });
}

TEST_F(NetDmaTest, DmaThroughputNearTable6Linux)
{
    // Table 6 (Linux row): ~37.8 MB/s at 4 KB batches, ~40.5 MB/s at
    // 1 MB batches (CPU-bound to IO-bound).
    double small_mbps = 0;
    double large_mbps = 0;
    run([&](Thread &t) -> Task<void> {
        auto &dma = tb.dma();
        const sim::Time t0 = tb.engine().now();
        for (int i = 0; i < 256; ++i)
            co_await dma.transfer(t, 4096);
        small_mbps = (256 * 4096) /
                     sim::toSec(tb.engine().now() - t0) / 1e6;
        const sim::Time t1 = tb.engine().now();
        co_await dma.transfer(t, 1 << 20);
        large_mbps = (1 << 20) /
                     sim::toSec(tb.engine().now() - t1) / 1e6;
    });
    EXPECT_GT(small_mbps, 25.0);
    EXPECT_LT(small_mbps, large_mbps);
    EXPECT_GT(large_mbps, 33.0);
    EXPECT_LT(large_mbps, 45.0);
}

TEST_F(NetDmaTest, ConcurrentDmaRequestsShareChannels)
{
    int done = 0;
    for (int i = 0; i < 20; ++i) {
        tb.sys().spawnNormal(tb.proc(), "dma" + std::to_string(i),
                             [&](Thread &t) -> Task<void> {
                                 co_await tb.dma().transfer(t, 65536);
                                 ++done;
                             });
    }
    tb.engine().run();
    EXPECT_EQ(done, 20);
    EXPECT_EQ(tb.dma().transfers.value(), 20u);
}

} // namespace
} // namespace k2::svc
