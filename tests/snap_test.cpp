/**
 * @file
 * Warm-state snapshot/fork: the boot-once sweep mode's correctness
 * contract.
 *
 *  - capture/restore round-trips: restoring and re-capturing yields a
 *    byte-identical image;
 *  - fork-vs-cold: a forked (restored) fixture produces bit-identical
 *    episode results and an identical end-state image to a freshly
 *    booted one, for every fig6-style workload and on the baseline;
 *  - sibling independence: work done on one fork leaves no residue in
 *    the next;
 *  - fault interaction: a snapshot taken with the fault plane armed
 *    rewinds the injector's RNG streams, so forks replay the same
 *    fault sequence a cold boot sees.
 */

#include <gtest/gtest.h>

#include "snap/snapshot.h"
#include "workloads/benchmarks.h"
#include "workloads/episode.h"
#include "workloads/testbed.h"
#include "workloads/warm.h"

namespace {

using namespace k2;

/** Exact (bit-level) episode-result comparison; the simulation is
 *  deterministic, so even the doubles must match. */
void
expectSameResult(const wl::EpisodeResult &a, const wl::EpisodeResult &b)
{
    EXPECT_EQ(a.bytes, b.bytes);
    EXPECT_EQ(a.runTime, b.runTime);
    EXPECT_EQ(a.episodeTime, b.episodeTime);
    EXPECT_EQ(a.energyUj, b.energyUj);
}

wl::EpisodeResult
dmaEpisode(wl::Testbed &tb)
{
    return wl::runEpisodeWarm(tb.sys(), tb.proc(), "dma",
                              wl::dmaCopy(tb.dma(), 4096, 64 * 1024));
}

wl::EpisodeResult
ext2Episode(wl::Testbed &tb)
{
    return wl::runEpisodeWarm(tb.sys(), tb.proc(), "ext2",
                              wl::ext2Sync(tb.fs(), 8192, 4));
}

wl::EpisodeResult
udpEpisode(wl::Testbed &tb)
{
    return wl::runEpisodeWarm(tb.sys(), tb.proc(), "udp",
                              wl::udpLoopback(tb.udp(), 8192,
                                              32 * 1024));
}

TEST(SnapshotTest, CaptureIsIdempotent)
{
    auto tb = wl::Testbed::makeK2();
    tb.engine().run();
    const snap::Snapshot a = snap::Snapshot::of(tb);
    const snap::Snapshot b = snap::Snapshot::of(tb);
    EXPECT_FALSE(a.empty());
    EXPECT_GT(a.sizeBytes(), 0u);
    EXPECT_EQ(a, b);
}

TEST(SnapshotTest, RestoreRoundTripsToIdenticalImage)
{
    auto tb = wl::Testbed::makeK2();
    tb.engine().run();
    const snap::Snapshot boot = snap::Snapshot::of(tb);

    // Dirty every subsystem, then rewind.
    (void)dmaEpisode(tb);
    (void)ext2Episode(tb);
    (void)udpEpisode(tb);
    const snap::Snapshot after = snap::Snapshot::of(tb);
    EXPECT_NE(boot, after);

    boot.restore(tb);
    EXPECT_EQ(boot, snap::Snapshot::of(tb));
}

TEST(SnapshotTest, RestoreRoundTripsOnBaseline)
{
    auto tb = wl::Testbed::makeLinux();
    tb.engine().run();
    const snap::Snapshot boot = snap::Snapshot::of(tb);
    (void)ext2Episode(tb);
    boot.restore(tb);
    EXPECT_EQ(boot, snap::Snapshot::of(tb));
}

/** Fork-vs-cold byte identity over every fig6-style workload. */
TEST(SnapshotTest, ForkedEpisodesMatchColdBoot)
{
    using Episode = wl::EpisodeResult (*)(wl::Testbed &);
    const Episode episodes[] = {dmaEpisode, ext2Episode, udpEpisode};

    // Warm path: one boot, one fork per episode.
    auto warm = wl::Testbed::makeK2();
    warm.engine().run();
    const snap::Snapshot image = snap::Snapshot::of(warm);

    for (Episode ep : episodes) {
        // Cold path: a dedicated boot for this episode.
        auto cold = wl::Testbed::makeK2();
        cold.engine().run();
        const wl::EpisodeResult want = ep(cold);
        const snap::Snapshot coldEnd = snap::Snapshot::of(cold);

        image.restore(warm);
        const wl::EpisodeResult got = ep(warm);
        expectSameResult(want, got);
        EXPECT_EQ(coldEnd, snap::Snapshot::of(warm));
    }
}

TEST(SnapshotTest, SiblingForksAreIndependent)
{
    auto tb = wl::Testbed::makeK2();
    tb.engine().run();
    const snap::Snapshot image = snap::Snapshot::of(tb);

    const wl::EpisodeResult first = dmaEpisode(tb);

    // A sibling fork running a different workload...
    image.restore(tb);
    (void)udpEpisode(tb);
    (void)ext2Episode(tb);

    // ...must not perturb a later fork of the same workload.
    image.restore(tb);
    expectSameResult(first, dmaEpisode(tb));
}

TEST(SnapshotTest, ForkReplaysInjectedFaults)
{
    auto makeCfg = [] {
        os::K2Config cfg;
        fault::FaultSpec drop;
        drop.kind = fault::FaultKind::MailDrop;
        drop.p = 1e-2;
        cfg.faults.add(drop);
        fault::FaultSpec err;
        err.kind = fault::FaultKind::DmaTransferError;
        err.p = 1e-2;
        cfg.faults.add(err);
        return cfg;
    };

    auto cold = wl::Testbed::makeK2(makeCfg());
    cold.engine().run();
    const wl::EpisodeResult want = dmaEpisode(cold);

    auto warm = wl::Testbed::makeK2(makeCfg());
    warm.engine().run();
    const snap::Snapshot image = snap::Snapshot::of(warm);
    (void)dmaEpisode(warm); // Consume RNG draws and recovery state.
    image.restore(warm);
    expectSameResult(want, dmaEpisode(warm));

    // And the fault sequence is identical again on a third fork.
    image.restore(warm);
    expectSameResult(want, dmaEpisode(warm));
}

/** The warmFixture pool itself: warm and cold modes agree. */
TEST(SnapshotTest, WarmFixtureMatchesColdFixture)
{
    const auto runCell = [](wl::SweepMode mode) {
        auto &tb = wl::warmK2(mode, "snap-test-k2");
        return ext2Episode(tb);
    };
    const wl::EpisodeResult cold = runCell(wl::SweepMode::Cold);
    const wl::EpisodeResult warm1 = runCell(wl::SweepMode::Warm);
    const wl::EpisodeResult warm2 = runCell(wl::SweepMode::Warm);
    expectSameResult(cold, warm1);
    expectSameResult(cold, warm2);
}

} // namespace
