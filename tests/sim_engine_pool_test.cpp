/**
 * @file
 * Stress tests for the pooled event core: handle/generation safety
 * (cancel-after-fire, cancel-twice, stale handles across slot reuse),
 * pool boundedness under churn, payload lifetime for all three payload
 * kinds, and FIFO tie-break order identical to the seed engine.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/engine.h"
#include "sim/time.h"

namespace k2::sim {
namespace {

TEST(EventPool, CancelAfterFireIsNoop)
{
    Engine eng;
    int ran = 0;
    EventId id = eng.at(usec(1), [&]() { ++ran; });
    eng.run();
    EXPECT_EQ(ran, 1);
    eng.cancel(id); // must not disturb anything
    EXPECT_FALSE(id.valid());
    eng.run();
    EXPECT_EQ(ran, 1);
}

TEST(EventPool, CancelTwiceIsNoop)
{
    Engine eng;
    int ran = 0;
    EventId id = eng.at(usec(1), [&]() { ++ran; });
    EventId copy = id;
    eng.cancel(id);
    eng.cancel(id);   // already invalidated handle
    eng.cancel(copy); // aliasing handle, generation already bumped
    eng.run();
    EXPECT_EQ(ran, 0);
    EXPECT_EQ(eng.pendingEvents(), 0u);
}

TEST(EventPool, StaleHandleDoesNotCancelSlotReuse)
{
    Engine eng;
    int first = 0;
    int second = 0;
    EventId a = eng.at(usec(1), [&]() { ++first; });
    EventId stale = a;
    eng.cancel(a); // frees the slot
    // The very next schedule reuses the freed slot (LIFO free list).
    EventId b = eng.at(usec(1), [&]() { ++second; });
    eng.cancel(stale); // generation mismatch: must be a no-op
    eng.run();
    EXPECT_EQ(first, 0);
    EXPECT_EQ(second, 1) << "stale cancel must not kill the new event";
    (void)b;
}

TEST(EventPool, StaleHandleAfterFireDoesNotCancelReuse)
{
    Engine eng;
    int second = 0;
    EventId a = eng.at(usec(1), [&]() {});
    eng.run();
    // Slot of `a` was recycled when it fired; schedule into it.
    eng.at(usec(2), [&]() { ++second; });
    eng.cancel(a);
    eng.run();
    EXPECT_EQ(second, 1);
}

TEST(EventPool, ChurnKeepsPoolBounded)
{
    Engine eng;
    // 100k schedule/cancel pairs with at most 64 events in flight must
    // not grow the pool beyond one slab.
    std::vector<EventId> ids;
    int ran = 0;
    for (int round = 0; round < 100000 / 64; ++round) {
        for (int i = 0; i < 64; ++i)
            ids.push_back(eng.at(usec(1000), [&]() { ++ran; }));
        for (auto &id : ids)
            eng.cancel(id);
        ids.clear();
    }
    EXPECT_EQ(eng.pendingEvents(), 0u);
    EXPECT_LE(eng.poolCapacity(), 256u)
        << "pool must recycle slots, not grow per event";
    eng.run();
    EXPECT_EQ(ran, 0);
}

TEST(EventPool, ChurnWhileDispatchingKeepsPoolBounded)
{
    Engine eng;
    std::uint64_t ran = 0;
    // A self-rescheduling chain: each dispatch frees its slot before
    // running, so the whole 100k-event chain should reuse one slot row.
    std::uint64_t remaining = 100000;
    std::function<void()> step = [&]() {
        ++ran;
        if (--remaining > 0)
            eng.after(nsec(1), [&]() { step(); });
    };
    eng.after(nsec(1), [&]() { step(); });
    eng.run();
    EXPECT_EQ(ran, 100000u);
    EXPECT_LE(eng.poolCapacity(), 256u);
}

TEST(EventPool, FifoTieBreakMatchesSeedEngine)
{
    Engine eng;
    std::vector<int> order;
    // Interleave two times plus cancellations; dispatch order must be
    // (time, insertion sequence) with cancelled entries skipped --
    // exactly what the seed std::priority_queue engine produced.
    std::vector<EventId> cancelled;
    for (int i = 0; i < 100; ++i) {
        const Time t = (i % 2 == 0) ? usec(5) : usec(3);
        EventId id = eng.at(t, [&order, i]() { order.push_back(i); });
        if (i % 7 == 0)
            cancelled.push_back(id);
    }
    for (auto &id : cancelled)
        eng.cancel(id);
    eng.run();

    std::vector<int> expect;
    for (int i = 1; i < 100; i += 2) // usec(3) group, insertion order
        if (i % 7 != 0)
            expect.push_back(i);
    for (int i = 0; i < 100; i += 2) // usec(5) group, insertion order
        if (i % 7 != 0)
            expect.push_back(i);
    EXPECT_EQ(order, expect);
}

TEST(EventPool, LargeCaptureFallsBackToHeapAndStillRuns)
{
    Engine eng;
    std::array<std::uint64_t, 16> big{};
    big[0] = 7;
    big[15] = 9;
    std::uint64_t sum = 0;
    static_assert(sizeof(big) > Engine::kInlineCapture);
    eng.at(usec(1), [big, &sum]() { sum = big[0] + big[15]; });
    eng.run();
    EXPECT_EQ(sum, 16u);
}

TEST(EventPool, CancelDestroysInlineCapture)
{
    Engine eng;
    auto token = std::make_shared<int>(42);
    std::weak_ptr<int> watch = token;
    EventId id = eng.at(usec(1), [t = std::move(token)]() { (void)t; });
    EXPECT_FALSE(watch.expired());
    eng.cancel(id);
    EXPECT_TRUE(watch.expired())
        << "cancel must destroy the captured state immediately";
}

TEST(EventPool, CancelDestroysHeapCapture)
{
    Engine eng;
    auto token = std::make_shared<int>(42);
    std::weak_ptr<int> watch = token;
    std::array<char, 64> pad{};
    EventId id = eng.at(
        usec(1), [t = std::move(token), pad]() { (void)t; (void)pad; });
    EXPECT_FALSE(watch.expired());
    eng.cancel(id);
    EXPECT_TRUE(watch.expired());
}

TEST(EventPool, DestructorReleasesPendingPayloads)
{
    auto token = std::make_shared<int>(1);
    std::weak_ptr<int> watch = token;
    {
        Engine eng;
        eng.at(usec(1), [t = std::move(token)]() { (void)t; });
        // Engine destroyed with the event still pending.
    }
    EXPECT_TRUE(watch.expired());
}

TEST(EventPool, RescheduleFromCallbackIntoOwnSlot)
{
    Engine eng;
    int phase = 0;
    eng.at(usec(1), [&]() {
        ++phase;
        // Dispatch freed our slot before invoking; this reuses it.
        eng.after(usec(1), [&]() { ++phase; });
    });
    eng.run();
    EXPECT_EQ(phase, 2);
    EXPECT_LE(eng.poolCapacity(), 256u);
}

TEST(EventPool, ManyPendingEventsAcrossSlabsFireInOrder)
{
    Engine eng;
    // Force multiple slabs (256 slots each) to be live at once.
    constexpr int kEvents = 3000;
    std::vector<int> order;
    order.reserve(kEvents);
    for (int i = 0; i < kEvents; ++i)
        eng.at(usec(1) + static_cast<Time>(i % 17),
               [&order, i]() { order.push_back(i); });
    EXPECT_EQ(eng.pendingEvents(), static_cast<std::size_t>(kEvents));
    EXPECT_GE(eng.poolCapacity(), static_cast<std::size_t>(kEvents));
    eng.run();
    ASSERT_EQ(order.size(), static_cast<std::size_t>(kEvents));
    // Within each time bucket, FIFO by insertion.
    for (int t = 0; t < 17; ++t) {
        int prev = -1;
        for (int v : order) {
            if (v % 17 != t)
                continue;
            EXPECT_LT(prev, v);
            prev = v;
        }
    }
}

TEST(EventPool, SleepResumeReusesSlots)
{
    Engine eng;
    std::uint64_t laps = 0;
    eng.spawn([](Engine &e, std::uint64_t *laps) -> Task<void> {
        for (int i = 0; i < 10000; ++i) {
            co_await e.sleep(nsec(1));
            ++*laps;
        }
    }(eng, &laps));
    eng.run();
    EXPECT_EQ(laps, 10000u);
    EXPECT_LE(eng.poolCapacity(), 256u)
        << "the coroutine fast path must recycle its slot";
}

} // namespace
} // namespace k2::sim
