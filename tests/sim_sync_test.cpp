/**
 * @file
 * Unit tests for coroutine synchronisation primitives.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/engine.h"
#include "sim/sync.h"

namespace k2::sim {
namespace {

TEST(Event, WaitBlocksUntilSet)
{
    Engine eng;
    Event ev(eng);
    std::vector<std::string> log;

    eng.spawn([](Event &ev, std::vector<std::string> &log) -> Task<void> {
        log.push_back("waiting");
        co_await ev.wait();
        log.push_back("woken");
    }(ev, log));

    eng.at(usec(5), [&]() {
        log.push_back("setting");
        ev.set();
    });

    eng.run();
    EXPECT_EQ(log, (std::vector<std::string>{"waiting", "setting", "woken"}));
}

TEST(Event, SetBeforeWaitCompletesImmediately)
{
    Engine eng;
    Event ev(eng);
    ev.set();
    bool done = false;
    eng.spawn([](Event &ev, bool *done) -> Task<void> {
        co_await ev.wait();
        *done = true;
    }(ev, &done));
    eng.run();
    EXPECT_TRUE(done);
}

TEST(Event, PulseWakesOnlyCurrentWaiters)
{
    Engine eng;
    Event ev(eng);
    int woken = 0;

    auto waiter = [](Event &ev, int *woken) -> Task<void> {
        co_await ev.wait();
        ++*woken;
    };
    eng.spawn(waiter(ev, &woken));
    eng.spawn(waiter(ev, &woken));
    eng.at(usec(1), [&]() { ev.pulse(); });
    eng.run();
    EXPECT_EQ(woken, 2);

    // A later waiter is not satisfied by the past pulse.
    eng.spawn(waiter(ev, &woken));
    eng.run();
    EXPECT_EQ(woken, 2);
}

TEST(Semaphore, LimitsConcurrency)
{
    Engine eng;
    Semaphore sem(eng, 2);
    int active = 0;
    int peak = 0;

    auto worker = [](Engine &eng, Semaphore &sem, int *active,
                     int *peak) -> Task<void> {
        co_await sem.acquire();
        ++*active;
        *peak = std::max(*peak, *active);
        co_await eng.sleep(usec(10));
        --*active;
        sem.release();
    };
    for (int i = 0; i < 6; ++i)
        eng.spawn(worker(eng, sem, &active, &peak));
    eng.run();
    EXPECT_EQ(active, 0);
    EXPECT_EQ(peak, 2);
    EXPECT_EQ(eng.now(), usec(30));
}

TEST(Semaphore, TryAcquire)
{
    Engine eng;
    Semaphore sem(eng, 1);
    EXPECT_TRUE(sem.tryAcquire());
    EXPECT_FALSE(sem.tryAcquire());
    sem.release();
    EXPECT_TRUE(sem.tryAcquire());
}

TEST(CoMutex, MutualExclusionFifo)
{
    Engine eng;
    CoMutex mtx(eng);
    std::vector<int> order;

    auto worker = [](Engine &eng, CoMutex &mtx, std::vector<int> &order,
                     int id) -> Task<void> {
        auto guard = co_await mtx.lock();
        order.push_back(id);
        co_await eng.sleep(usec(1));
        order.push_back(id);
    };
    for (int i = 0; i < 3; ++i)
        eng.spawn(worker(eng, mtx, order, i));
    eng.run();
    // Each id's two entries must be adjacent (no interleaving) and in
    // FIFO order of arrival.
    EXPECT_EQ(order, (std::vector<int>{0, 0, 1, 1, 2, 2}));
    EXPECT_FALSE(mtx.locked());
}

TEST(Channel, FifoDelivery)
{
    Engine eng;
    Channel<int> chan(eng);
    std::vector<int> received;

    eng.spawn([](Channel<int> &chan, std::vector<int> &out) -> Task<void> {
        for (int i = 0; i < 3; ++i)
            out.push_back(co_await chan.recv());
    }(chan, received));

    eng.at(usec(1), [&]() { chan.send(10); });
    eng.at(usec(2), [&]() {
        chan.send(20);
        chan.send(30);
    });
    eng.run();
    EXPECT_EQ(received, (std::vector<int>{10, 20, 30}));
}

TEST(Channel, TryRecv)
{
    Engine eng;
    Channel<int> chan(eng);
    EXPECT_FALSE(chan.tryRecv().has_value());
    chan.send(7);
    auto v = chan.tryRecv();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 7);
    EXPECT_TRUE(chan.empty());
}

TEST(Channel, MultipleReceiversServedFifo)
{
    Engine eng;
    Channel<int> chan(eng);
    std::vector<std::pair<int, int>> got; // (receiver, value)

    auto rx = [](Channel<int> &chan, std::vector<std::pair<int, int>> &got,
                 int id) -> Task<void> {
        const int v = co_await chan.recv();
        got.emplace_back(id, v);
    };
    eng.spawn(rx(chan, got, 0));
    eng.spawn(rx(chan, got, 1));
    eng.at(usec(1), [&]() { chan.send(100); });
    eng.at(usec(2), [&]() { chan.send(200); });
    eng.run();
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], std::make_pair(0, 100));
    EXPECT_EQ(got[1], std::make_pair(1, 200));
}

TEST(WhenAll, WaitsForAllTasks)
{
    Engine eng;
    int done = 0;
    std::vector<Task<void>> tasks;
    for (int i = 1; i <= 4; ++i) {
        tasks.push_back([](Engine &eng, int *done, int i) -> Task<void> {
            co_await eng.sleep(usec(static_cast<std::uint64_t>(i)));
            ++*done;
        }(eng, &done, i));
    }
    bool all_done = false;
    eng.spawn([](Engine &eng, std::vector<Task<void>> tasks,
                 bool *all_done, int *done) -> Task<void> {
        co_await whenAll(eng, std::move(tasks));
        EXPECT_EQ(*done, 4);
        *all_done = true;
    }(eng, std::move(tasks), &all_done, &done));
    eng.run();
    EXPECT_TRUE(all_done);
    EXPECT_EQ(eng.now(), usec(4));
}

TEST(WhenAll, EmptySetCompletesImmediately)
{
    Engine eng;
    bool done = false;
    eng.spawn([](Engine &eng, bool *done) -> Task<void> {
        co_await whenAll(eng, {});
        *done = true;
    }(eng, &done));
    eng.run();
    EXPECT_TRUE(done);
}

} // namespace
} // namespace k2::sim
