/**
 * @file
 * Protocol-conformance suite for the DSM coherence zoo
 * (os/coherence/): every registered protocol must uphold the same
 * contracts on the two-kernel pair (os/dsm.h) and the N-domain DSM
 * (os/ndsm.h) -- one writer at a time, read-your-writes, completion
 * of every access under seeded multi-domain fuzz with shadow-data
 * verification, deterministic replay, and snapshot roundtrip.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "os/coherence/protocol.h"
#include "os/k2_system.h"
#include "os/ndsm.h"
#include "sim/random.h"
#include "snap/snapshot.h"

namespace k2::os {
namespace {

using kern::Thread;
using kern::ThreadKind;
using sim::Task;

/** Two-kernel pair (K2System) under one zoo protocol. */
class PairConformanceTest
    : public ::testing::TestWithParam<coherence::ProtocolKind>
{
  protected:
    PairConformanceTest()
    {
        K2Config cfg;
        cfg.soc.costs.inactiveTimeout = 0;
        cfg.dsmProtocol = GetParam();
        k2sys = std::make_unique<K2System>(cfg);
        proc = &k2sys->createProcess("app");
    }

    void
    touch(std::size_t k, std::uint64_t page, Access rw)
    {
        kern::Kernel &kern =
            k == 0 ? k2sys->mainKernel() : k2sys->shadowKernel();
        kern.spawnThread(proc, "t", ThreadKind::Normal,
                         [this, page, rw](Thread &t) -> Task<void> {
                             co_await k2sys->dsm().access(
                                 t.kernel(), t.core(), page, rw);
                         });
        k2sys->ownedEngine().run();
    }

    std::unique_ptr<K2System> k2sys;
    kern::Process *proc = nullptr;
};

TEST_P(PairConformanceTest, OneWriterInvariantUnderPingPong)
{
    Dsm &dsm = k2sys->dsm();
    for (int round = 0; round < 8; ++round) {
        const std::size_t w = static_cast<std::size_t>(round % 2);
        touch(w, 3, Access::Write);
        // Exactly the last writer holds write permission.
        EXPECT_TRUE(dsm.isLocallyValid(w, 3, Access::Write));
        EXPECT_FALSE(dsm.isLocallyValid(1 - w, 3, Access::Write));
    }
}

TEST_P(PairConformanceTest, ReadYourWrites)
{
    Dsm &dsm = k2sys->dsm();
    touch(1, 5, Access::Write);
    const std::uint64_t faults = dsm.faultStats(1).faults.value();
    // A kernel always sees its own writes without another fault.
    touch(1, 5, Access::Read);
    touch(1, 5, Access::Read);
    EXPECT_EQ(dsm.faultStats(1).faults.value(), faults);
    EXPECT_TRUE(dsm.isLocallyValid(1, 5, Access::Read));
}

TEST_P(PairConformanceTest, WriterRereadAfterPeerRead)
{
    Dsm &dsm = k2sys->dsm();
    touch(0, 7, Access::Write);
    touch(1, 7, Access::Read); // peer pulls the page
    const std::uint64_t faults = dsm.faultStats(0).faults.value();
    touch(0, 7, Access::Read);
    if (GetParam() == coherence::ProtocolKind::TwoState) {
        // Migratory: the peer's read took exclusive ownership, so the
        // writer's re-read faults the page back.
        EXPECT_EQ(dsm.faultStats(0).faults.value(), faults + 1);
    } else {
        // Read-sharing (MSI/MESI/MOESI keep the writer a sharer; RAC
        // keeps it the log owner): the re-read stays local.
        EXPECT_EQ(dsm.faultStats(0).faults.value(), faults);
    }
}

TEST_P(PairConformanceTest, SnapshotRoundtripReplaysIdentically)
{
    // Warm up with a little traffic so protocol state (sharer
    // bitmaps, logs, vector clocks) is non-trivial at capture.
    touch(1, 2, Access::Write);
    touch(0, 2, Access::Read);

    auto replay = [this] {
        for (int r = 0; r < 10; ++r) {
            touch(static_cast<std::size_t>(r % 2),
                  static_cast<std::uint64_t>(r % 3),
                  r % 4 == 0 ? Access::Read : Access::Write);
        }
    };

    const snap::Snapshot base = snap::Snapshot::of(*k2sys);
    replay();
    const snap::Snapshot first = snap::Snapshot::of(*k2sys);
    base.restore(*k2sys);
    EXPECT_EQ(base, snap::Snapshot::of(*k2sys));
    replay();
    // Restored state replays to bit-identical protocol state,
    // statistics, clocks, and RNG streams.
    EXPECT_EQ(first, snap::Snapshot::of(*k2sys));
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, PairConformanceTest,
    ::testing::ValuesIn(coherence::allProtocols()),
    [](const ::testing::TestParamInfo<coherence::ProtocolKind> &info) {
        return coherence::protocolName(info.param);
    });

/** Three-domain NDsm under one zoo protocol. */
class NdsmConformanceTest
    : public ::testing::TestWithParam<coherence::ProtocolKind>
{
  protected:
    struct Fixture
    {
        sim::Engine eng;
        std::unique_ptr<soc::Soc> soc;
        std::vector<std::unique_ptr<kern::Kernel>> kernels;
        std::unique_ptr<NDsm> ndsm;
        std::unique_ptr<kern::Process> proc;

        explicit Fixture(coherence::ProtocolKind proto,
                         std::uint64_t pages = 64)
        {
            auto cfg = soc::threeDomainConfig();
            cfg.costs.inactiveTimeout = 0;
            soc = std::make_unique<soc::Soc>(eng, cfg);
            std::vector<kern::Kernel *> raw;
            for (soc::DomainId d = 0; d < 3; ++d) {
                kernels.push_back(std::make_unique<kern::Kernel>(
                    *soc, d, "k" + std::to_string(d)));
                kernels.back()->boot();
                raw.push_back(kernels.back().get());
            }
            ndsm = std::make_unique<NDsm>(*soc, raw, pages, proto);
            for (std::size_t i = 0; i < 3; ++i) {
                kernels[i]->setMailHandler(
                    [this, i](soc::Mail m, soc::Core &c) {
                        return ndsm->handleMail(i, m, c);
                    });
            }
            proc = std::make_unique<kern::Process>(1, "app");
        }

        sim::Engine &engine() { return eng; }

        void
        snapState(snap::Io &io)
        {
            eng.snapState(io);
            soc->snapState(io);
            for (auto &k : kernels)
                k->snapState(io);
            ndsm->snapState(io);
            proc->snapState(io);
        }

        void
        touch(std::size_t k, std::uint64_t page, Access rw)
        {
            kernels[k]->spawnThread(
                proc.get(), "t", ThreadKind::Normal,
                [this, k, page, rw](Thread &t) -> Task<void> {
                    co_await ndsm->access(t.kernel(), t.core(), page,
                                          rw);
                });
            eng.run();
        }
    };
};

TEST_P(NdsmConformanceTest, WriteOwnershipRingAcrossThreeDomains)
{
    Fixture fx(GetParam());
    for (int r = 0; r < 9; ++r) {
        const std::size_t k = static_cast<std::size_t>(r % 3);
        fx.touch(k, 11, Access::Write);
        // One writer: the directory (or log) records the last writer.
        EXPECT_EQ(fx.ndsm->ownerOf(11), k);
    }
    // Every kernel but the initial owner faulted at least once.
    EXPECT_GE(fx.ndsm->faults(1), 1u);
    EXPECT_GE(fx.ndsm->faults(2), 1u);
}

TEST_P(NdsmConformanceTest, SeededFuzzCompletesAndKeepsOneWriter)
{
    for (const std::uint64_t seed : {7ull, 101ull, 4242ull}) {
        Fixture fx(GetParam());
        sim::Rng rng(seed);
        // Shadow data model: each page's value is the step number of
        // its last write, and the page's most recent accessor is
        // recorded. Every completed write must make the writer the
        // page's owner/log writer, and a read by the most recent
        // accessor must be served from its own fresh copy -- no
        // fault, no protocol messages. (That is the strongest freshness
        // property every zoo member shares: read-your-writes, plus
        // read-your-reads for the migratory protocol, where a peer's
        // read would have stolen exclusive ownership.)
        std::map<std::uint64_t, std::uint64_t> truth;
        std::map<std::uint64_t, std::size_t> last_accessor;
        int issued = 0;
        int completed = 0;
        for (int step = 0; step < 150; ++step) {
            const auto k = static_cast<std::size_t>(rng.below(3));
            const std::uint64_t page = rng.below(8);
            const Access rw =
                rng.below(4) == 0 ? Access::Read : Access::Write;
            const bool own_read = rw == Access::Read &&
                                  last_accessor.count(page) &&
                                  last_accessor[page] == k;
            const std::uint64_t faults0 = fx.ndsm->faults(k);
            const std::uint64_t msgs0 = fx.ndsm->messagesSent();
            ++issued;
            fx.kernels[k]->spawnThread(
                fx.proc.get(), "t", ThreadKind::Normal,
                [&, k, page, rw, step](Thread &t) -> Task<void> {
                    co_await fx.ndsm->access(t.kernel(), t.core(),
                                             page, rw);
                    if (rw == Access::Write) {
                        truth[page] =
                            static_cast<std::uint64_t>(step);
                        EXPECT_EQ(fx.ndsm->ownerOf(page), k);
                    }
                    last_accessor[page] = k;
                    ++completed;
                });
            fx.eng.run();
            if (own_read) {
                EXPECT_EQ(fx.ndsm->faults(k), faults0)
                    << "seed " << seed << " step " << step;
                EXPECT_EQ(fx.ndsm->messagesSent(), msgs0);
            }
        }
        EXPECT_EQ(completed, issued) << "seed " << seed;
        // 2 protocol messages per simple transfer; directory fan-out
        // adds invalidations but stays bounded.
        std::uint64_t faults = 0;
        for (std::size_t k = 0; k < 3; ++k)
            faults += fx.ndsm->faults(k);
        EXPECT_LE(fx.ndsm->messagesSent(), 6 * faults + 8);
    }
}

TEST_P(NdsmConformanceTest, ConcurrentWritersSerialise)
{
    Fixture fx(GetParam());
    int done = 0;
    for (const std::size_t k : {0u, 1u, 2u}) {
        fx.kernels[k]->spawnThread(
            fx.proc.get(), "w", ThreadKind::Normal,
            [&fx, &done](Thread &t) -> Task<void> {
                co_await fx.ndsm->access(t.kernel(), t.core(), 23,
                                         Access::Write);
                ++done;
            });
    }
    fx.eng.run();
    EXPECT_EQ(done, 3);
    EXPECT_LT(fx.ndsm->ownerOf(23), 3u);
}

TEST_P(NdsmConformanceTest, ReclaimMovesOwnershipToSurvivor)
{
    Fixture fx(GetParam());
    fx.touch(1, 4, Access::Write);
    fx.touch(1, 9, Access::Write);
    fx.touch(2, 30, Access::Write);
    const auto moved = fx.ndsm->reclaimFrom(1, 0);
    ASSERT_EQ(moved.size(), 2u);
    EXPECT_EQ(moved[0], 4u);
    EXPECT_EQ(moved[1], 9u);
    EXPECT_EQ(fx.ndsm->ownerOf(4), 0u);
    EXPECT_EQ(fx.ndsm->ownerOf(9), 0u);
    EXPECT_EQ(fx.ndsm->ownerOf(30), 2u);
    // The survivors keep making progress on the reclaimed pages.
    fx.touch(2, 4, Access::Write);
    EXPECT_EQ(fx.ndsm->ownerOf(4), 2u);
}

TEST_P(NdsmConformanceTest, SnapshotRoundtripReplaysIdentically)
{
    Fixture fx(GetParam());
    fx.touch(1, 2, Access::Write);
    fx.touch(2, 2, Access::Read);

    auto replay = [&fx] {
        for (int r = 0; r < 12; ++r) {
            fx.touch(static_cast<std::size_t>(r % 3),
                     static_cast<std::uint64_t>(r % 4),
                     r % 3 == 0 ? Access::Read : Access::Write);
        }
    };

    const snap::Snapshot base = snap::Snapshot::of(fx);
    replay();
    const snap::Snapshot first = snap::Snapshot::of(fx);
    base.restore(fx);
    EXPECT_EQ(base, snap::Snapshot::of(fx));
    replay();
    EXPECT_EQ(first, snap::Snapshot::of(fx));
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, NdsmConformanceTest,
    ::testing::ValuesIn(coherence::allProtocols()),
    [](const ::testing::TestParamInfo<coherence::ProtocolKind> &info) {
        return coherence::protocolName(info.param);
    });

} // namespace
} // namespace k2::os
