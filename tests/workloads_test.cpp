/**
 * @file
 * Tests for the workload/harness layer: episode measurement semantics,
 * the benchmark workloads' byte accounting, the standby model, the
 * testbed fixture, and the table renderer.
 */

#include <gtest/gtest.h>

#include "workloads/benchmarks.h"
#include "workloads/report.h"
#include "workloads/standby.h"
#include "workloads/testbed.h"

namespace k2::wl {
namespace {

using kern::Thread;
using sim::Task;

TEST(Episode, MetricsAreConsistent)
{
    auto tb = Testbed::makeLinux();
    const auto res = runEpisode(tb.sys(), tb.proc(), "w",
                                [](Thread &t) -> Task<std::uint64_t> {
                                    co_await t.exec(350000); // 1 ms
                                    co_return 1000000;
                                });
    EXPECT_EQ(res.bytes, 1000000u);
    EXPECT_GE(res.runTime, sim::msec(1));
    EXPECT_GT(res.episodeTime, res.runTime);
    EXPECT_GT(res.energyUj, 0.0);
    EXPECT_NEAR(res.mbPerSec(),
                1.0 / sim::toSec(res.runTime), 1.0);
    EXPECT_NEAR(res.mbPerJoule(), 1.0 / (res.energyUj / 1e6), 0.01);
}

TEST(Episode, WarmupEpisodesAreDiscarded)
{
    auto tb = Testbed::makeK2();
    int runs = 0;
    const auto res = runEpisodeWarm(
        tb.sys(), tb.proc(), "w",
        [&runs](Thread &t) -> Task<std::uint64_t> {
            ++runs;
            co_await t.exec(1000);
            co_return 42;
        },
        2);
    EXPECT_EQ(runs, 3);
    EXPECT_EQ(res.bytes, 42u);
}

TEST(Episode, BackToBackEpisodesAreIndependent)
{
    auto tb = Testbed::makeLinux();
    auto w = [](Thread &t) -> Task<std::uint64_t> {
        co_await t.exec(350000);
        co_return 7;
    };
    const auto a = runEpisode(tb.sys(), tb.proc(), "a", w);
    const auto b = runEpisode(tb.sys(), tb.proc(), "b", w);
    EXPECT_NEAR(a.energyUj, b.energyUj, a.energyUj * 0.05);
}

TEST(Workloads, DmaCopyMovesExactlyTotal)
{
    auto tb = Testbed::makeLinux();
    const auto res = runEpisode(tb.sys(), tb.proc(), "dma",
                                dmaCopy(tb.dma(), 4096, 10000));
    EXPECT_EQ(res.bytes, 10000u); // last batch is the 1808-byte tail
    EXPECT_EQ(tb.dma().bytesMoved.value(), 10000u);
}

TEST(Workloads, Ext2SyncWritesAndCleansUp)
{
    auto tb = Testbed::makeLinux();
    const auto free0 = tb.fs().freeBlocks();
    const auto res = runEpisode(tb.sys(), tb.proc(), "fs",
                                ext2Sync(tb.fs(), 8192, 4));
    EXPECT_EQ(res.bytes, 4u * 8192);
    // Files were unlinked afterwards; only directory blocks remain.
    EXPECT_GE(free0, tb.fs().freeBlocks());
    EXPECT_LE(free0 - tb.fs().freeBlocks(), 2u);
    EXPECT_EQ(tb.fs().opsCreate.value(), 4u);
    EXPECT_EQ(tb.fs().opsUnlink.value(), 4u);
}

TEST(Workloads, UdpLoopbackRecreatesSocketsPerBatch)
{
    auto tb = Testbed::makeLinux();
    const auto res = runEpisode(tb.sys(), tb.proc(), "udp",
                                udpLoopback(tb.udp(), 8192, 32768));
    EXPECT_EQ(res.bytes, 32768u);
    // 4 batches x 2 sockets each.
    EXPECT_EQ(tb.udp().socketsCreated.value(), 8u);
    EXPECT_EQ(tb.udp().packetsDropped.value(), 0u);
}

TEST(Workloads, EmailSyncTouchesNetworkAndStorage)
{
    auto tb = Testbed::makeLinux();
    const auto res = runEpisode(tb.sys(), tb.proc(), "mail",
                                emailSync(tb.udp(), tb.fs(), 16384, 9));
    EXPECT_EQ(res.bytes, 2u * 16384); // fetched + stored
    EXPECT_GT(tb.udp().packetsSent.value(), 0u);
    EXPECT_GT(tb.fs().opsWrite.value(), 0u);
}

TEST(Standby, ModelMatchesPaperArithmetic)
{
    StandbyModel model;
    // The baseline is exactly the calibration point.
    EXPECT_NEAR(model.standbyDays(1.0), model.baselineDays, 0.01);
    // Power decomposition adds up.
    EXPECT_NEAR(model.sleepMw() + model.linuxSyncMw(),
                model.baselineDrainMw(), 1e-9);
    // An 8x sync-energy reduction gives roughly the paper's +59%.
    const double days = model.standbyDays(1.0 / 8.0);
    EXPECT_GT(days / model.baselineDays, 1.45);
    EXPECT_LT(days / model.baselineDays, 1.75);
    // Monotone: cheaper syncs, longer standby.
    EXPECT_GT(model.standbyDays(0.1), model.standbyDays(0.5));
    EXPECT_THROW(model.standbyDays(0.0), sim::FatalError);
}

TEST(Report, TableRendersAlignedColumns)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"beta-long", "23456"});
    const std::string out = t.render();
    EXPECT_NE(out.find("| name      | value |"), std::string::npos);
    EXPECT_NE(out.find("| beta-long | 23456 |"), std::string::npos);
    // Header separator present.
    EXPECT_NE(out.find("|-"), std::string::npos);
}

TEST(Report, FormatHelpers)
{
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmtBytes(4096), "4K");
    EXPECT_EQ(fmtBytes(1 << 20), "1M");
    EXPECT_EQ(fmtBytes(1000), "1000");
}

TEST(Testbed, BothFlavoursBootWithServices)
{
    auto k2tb = Testbed::makeK2();
    EXPECT_STREQ(k2tb.sys().modelName(), "K2");
    EXPECT_NE(k2tb.k2(), nullptr);
    EXPECT_GT(k2tb.fs().freeBlocks(), 0u);

    auto lxtb = Testbed::makeLinux();
    EXPECT_STREQ(lxtb.sys().modelName(), "Linux");
    EXPECT_EQ(lxtb.sys().kernels().size(), 1u);
}

TEST(Testbed, LinuxSharedRegionIsFree)
{
    auto tb = Testbed::makeLinux();
    auto region = tb.sys().createSharedRegion("x", 2);
    sim::Duration elapsed = 1;
    tb.sys().spawnNormal(tb.proc(), "t",
                         [&](Thread &t) -> Task<void> {
                             const auto t0 = tb.engine().now();
                             co_await region->touch(
                                 t.kernel(), t.core(), 0,
                                 os::Access::Write);
                             elapsed = tb.engine().now() - t0;
                         });
    tb.engine().run();
    EXPECT_EQ(elapsed, 0u);
}

TEST(Testbed, LinuxHasNoWeakKernel)
{
    auto tb = Testbed::makeLinux();
    EXPECT_DEATH(tb.sys().kernelAt(soc::kWeakDomain), "no kernel");
}

} // namespace
} // namespace k2::wl
