/**
 * @file
 * Table 5: breakdown of the latency of a DSM page fault, in us.
 *
 * Paper values (GetExclusive sender):
 *                          Main   Shadow
 *   Local fault handling     3      17
 *   Protocol execution       2      13
 *   Inter-domain comm        5       9
 *   Servicing request       24       7
 *   Exit fault, cache miss  18       2
 *   Total                   52      48
 */

#include <cstdio>

#include "os/k2_system.h"
#include "workloads/report.h"

int
main()
{
    using namespace k2;
    using kern::Thread;
    using kern::ThreadKind;
    using sim::Task;

    wl::banner("Table 5: DSM page fault latency breakdown (us)");

    os::K2Config cfg;
    cfg.soc.costs.inactiveTimeout = 0; // warm protocol measurement
    os::K2System k2sys(cfg);
    auto &proc = k2sys.createProcess("bench");

    // Ping-pong one page between the kernels; every access faults.
    for (int round = 0; round < 40; ++round) {
        kern::Kernel &kern = (round % 2 == 0) ? k2sys.shadowKernel()
                                              : k2sys.mainKernel();
        kern.spawnThread(&proc, "fault", ThreadKind::Normal,
                         [&](Thread &t) -> Task<void> {
                             co_await k2sys.dsm().access(
                                 t.kernel(), t.core(), 1,
                                 os::Access::Write);
                         });
        k2sys.ownedEngine().run();
    }

    const auto &m = k2sys.dsm().faultStats(0);
    const auto &s = k2sys.dsm().faultStats(1);

    wl::Table table({"Operations", "Main", "Shadow", "paper Main",
                     "paper Shadow"});
    table.addRow({"Local fault handling", wl::fmt(m.localFaultUs.mean()),
                  wl::fmt(s.localFaultUs.mean()), "3", "17"});
    table.addRow({"Protocol execution", wl::fmt(m.protocolUs.mean()),
                  wl::fmt(s.protocolUs.mean()), "2", "13"});
    table.addRow({"Inter-domain communication", wl::fmt(m.commUs.mean()),
                  wl::fmt(s.commUs.mean()), "5", "9"});
    table.addRow({"Servicing request", wl::fmt(m.serviceUs.mean()),
                  wl::fmt(s.serviceUs.mean()), "24", "7"});
    table.addRow({"Exit fault, cache miss", wl::fmt(m.exitUs.mean()),
                  wl::fmt(s.exitUs.mean()), "18", "2"});
    table.addRow({"Total", wl::fmt(m.totalUs.mean()),
                  wl::fmt(s.totalUs.mean()), "52", "48"});
    table.print();

    std::printf("\n(%llu faults per sender measured; 'Main'/'Shadow' "
                "identify the faulting kernel)\n",
                static_cast<unsigned long long>(m.faults.value()));
    return 0;
}
