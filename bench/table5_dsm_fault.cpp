/**
 * @file
 * Table 5: breakdown of the latency of a DSM page fault, in us.
 *
 * Paper values (GetExclusive sender):
 *                          Main   Shadow
 *   Local fault handling     3      17
 *   Protocol execution       2      13
 *   Inter-domain comm        5       9
 *   Servicing request       24       7
 *   Exit fault, cache miss  18       2
 *   Total                   52      48
 *
 * The paper measures the two-state protocol; that is the default
 * output here, byte-identical to builds before the protocol zoo.
 * `--dsm=PROTO` breaks the same phases out for one alternative
 * protocol, `--dsm=all` for every registered protocol in turn
 * (write ping-pong is the worst case for the read-sharing protocols:
 * every round invalidates the other kernel's copy, and the weak
 * kernel additionally pays its MMU read-tracking penalty on entry).
 */

#include <cstdio>
#include <string>

#include "os/coherence/protocol.h"
#include "os/k2_system.h"
#include "workloads/report.h"
#include "workloads/sweep.h"

namespace {

using namespace k2;
using kern::Thread;
using kern::ThreadKind;
using sim::Task;

/** Ping-pong one page between the kernels; every access faults.
 *  Prints the per-phase table (with the paper's reference columns
 *  only for the protocol the paper actually measured). */
void
runOne(os::coherence::ProtocolKind proto, bool with_paper)
{
    os::K2Config cfg;
    cfg.soc.costs.inactiveTimeout = 0; // warm protocol measurement
    cfg.dsmProtocol = proto;
    os::K2System k2sys(cfg);
    auto &proc = k2sys.createProcess("bench");

    for (int round = 0; round < 40; ++round) {
        kern::Kernel &kern = (round % 2 == 0) ? k2sys.shadowKernel()
                                              : k2sys.mainKernel();
        kern.spawnThread(&proc, "fault", ThreadKind::Normal,
                         [&](Thread &t) -> Task<void> {
                             co_await k2sys.dsm().access(
                                 t.kernel(), t.core(), 1,
                                 os::Access::Write);
                         });
        k2sys.ownedEngine().run();
    }

    const auto &m = k2sys.dsm().faultStats(0);
    const auto &s = k2sys.dsm().faultStats(1);

    std::vector<std::string> header{"Operations", "Main", "Shadow"};
    if (with_paper) {
        header.push_back("paper Main");
        header.push_back("paper Shadow");
    }
    wl::Table table(header);
    struct Phase
    {
        const char *label;
        double main_us, shadow_us;
        const char *paper_main, *paper_shadow;
    };
    const Phase phases[] = {
        {"Local fault handling", m.localFaultUs.mean(),
         s.localFaultUs.mean(), "3", "17"},
        {"Protocol execution", m.protocolUs.mean(),
         s.protocolUs.mean(), "2", "13"},
        {"Inter-domain communication", m.commUs.mean(),
         s.commUs.mean(), "5", "9"},
        {"Servicing request", m.serviceUs.mean(), s.serviceUs.mean(),
         "24", "7"},
        {"Exit fault, cache miss", m.exitUs.mean(), s.exitUs.mean(),
         "18", "2"},
        {"Total", m.totalUs.mean(), s.totalUs.mean(), "52", "48"},
    };
    for (const Phase &p : phases) {
        std::vector<std::string> row{p.label, wl::fmt(p.main_us),
                                     wl::fmt(p.shadow_us)};
        if (with_paper) {
            row.push_back(p.paper_main);
            row.push_back(p.paper_shadow);
        }
        table.addRow(row);
    }
    table.print();

    std::printf("\n(%llu faults per sender measured; 'Main'/'Shadow' "
                "identify the faulting kernel)\n",
                static_cast<unsigned long long>(m.faults.value()));
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace k2;

    std::string dsm;
    wl::consumeFlag(argc, argv, "--dsm=", dsm);

    if (dsm.empty()) {
        // The paper's measurement, byte-identical to the pre-zoo
        // output.
        wl::banner("Table 5: DSM page fault latency breakdown (us)");
        runOne(os::coherence::ProtocolKind::TwoState, true);
        return 0;
    }

    wl::banner("Table 5: DSM page fault latency breakdown (us), "
               "per protocol");
    std::vector<os::coherence::ProtocolKind> protos;
    if (dsm == "all") {
        for (auto p : os::coherence::allProtocols())
            protos.push_back(p);
    } else {
        protos.push_back(os::coherence::parseProtocol(
            dsm, std::strlen("--dsm=")));
    }
    for (auto p : protos) {
        std::printf("-- %s --\n\n", os::coherence::protocolName(p));
        runOne(p, p == os::coherence::ProtocolKind::TwoState);
        std::printf("\n");
    }
    return 0;
}
