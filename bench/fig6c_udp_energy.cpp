/**
 * @file
 * Figure 6(c): energy efficiency of the UDP-loopback benchmark, K2 vs
 * Linux.
 *
 * Mimics light tasks fetching content from the cloud: a thread creates
 * two UDP sockets, writes to one and reads from the other for
 * TotalSize bytes at full speed, recreating the socket pair every
 * BatchSize bytes. Paper result: K2 up to ~10x better MB/J, with the
 * advantage largest when the total sent bytes per run are small.
 */

#include <cstdio>
#include <vector>

#include "workloads/benchmarks.h"
#include "workloads/report.h"
#include "workloads/sweep.h"
#include "workloads/testbed.h"
#include "workloads/warm.h"

namespace {

struct Case
{
    std::uint64_t batch;
    std::uint64_t total;
    const char *label;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace k2;

    const unsigned jobs = wl::parseJobsFlag(argc, argv);
    const wl::SweepMode sweep = wl::parseSweepFlag(argc, argv);

    wl::banner("Figure 6(c): UDP loopback energy efficiency (MB/J)");

    const Case cases[] = {
        {1024, 16 * 1024, "(1K,16K) emails"},
        {65536, 256 * 1024, "(64K,256K) pictures"},
        {262144, 1024 * 1024, "(256K,1M) media"},
        {1048576, 4 * 1048576, "(1M,4M) bulk"},
    };

    wl::SweepRunner runner(jobs);
    std::vector<wl::EpisodeResult> k2res(std::size(cases));
    std::vector<wl::EpisodeResult> lxres(std::size(cases));
    for (std::size_t i = 0; i < std::size(cases); ++i) {
        const Case c = cases[i];
        runner.submit([&k2res, i, c, sweep]() {
            auto &tb = wl::warmK2(sweep, "k2");
            k2res[i] = wl::runEpisodeWarm(
                tb.sys(), tb.proc(), "udp",
                wl::udpLoopback(tb.udp(), c.batch, c.total));
        });
        runner.submit([&lxres, i, c, sweep]() {
            auto &tb = wl::warmLinux(sweep, "linux");
            lxres[i] = wl::runEpisodeWarm(
                tb.sys(), tb.proc(), "udp",
                wl::udpLoopback(tb.udp(), c.batch, c.total));
        });
    }
    runner.run();

    wl::Table table({"(BatchSize,TotalSize)", "K2 MB/J", "Linux MB/J",
                     "K2/Linux", "K2 MB/s", "Linux MB/s"});

    double best_gain = 0;
    for (std::size_t i = 0; i < std::size(cases); ++i) {
        const double gain =
            k2res[i].mbPerJoule() / lxres[i].mbPerJoule();
        best_gain = std::max(best_gain, gain);
        table.addRow({cases[i].label,
                      wl::fmt(k2res[i].mbPerJoule(), 2),
                      wl::fmt(lxres[i].mbPerJoule(), 2),
                      wl::fmt(gain, 1) + "x",
                      wl::fmt(k2res[i].mbPerSec(), 1),
                      wl::fmt(lxres[i].mbPerSec(), 1)});
    }
    table.print();
    std::printf("\npeak K2 advantage: %.1fx (paper: up to ~10x)\n",
                best_gain);
    return 0;
}
