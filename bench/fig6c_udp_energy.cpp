/**
 * @file
 * Figure 6(c): energy efficiency of the UDP-loopback benchmark, K2 vs
 * Linux.
 *
 * Mimics light tasks fetching content from the cloud: a thread creates
 * two UDP sockets, writes to one and reads from the other for
 * TotalSize bytes at full speed, recreating the socket pair every
 * BatchSize bytes. Paper result: K2 up to ~10x better MB/J, with the
 * advantage largest when the total sent bytes per run are small.
 */

#include <cstdio>

#include "workloads/benchmarks.h"
#include "workloads/report.h"
#include "workloads/testbed.h"

namespace {

struct Case
{
    std::uint64_t batch;
    std::uint64_t total;
    const char *label;
};

} // namespace

int
main()
{
    using namespace k2;

    wl::banner("Figure 6(c): UDP loopback energy efficiency (MB/J)");

    const Case cases[] = {
        {1024, 16 * 1024, "(1K,16K) emails"},
        {65536, 256 * 1024, "(64K,256K) pictures"},
        {262144, 1024 * 1024, "(256K,1M) media"},
        {1048576, 4 * 1048576, "(1M,4M) bulk"},
    };

    wl::Table table({"(BatchSize,TotalSize)", "K2 MB/J", "Linux MB/J",
                     "K2/Linux", "K2 MB/s", "Linux MB/s"});

    double best_gain = 0;
    for (const auto &c : cases) {
        auto k2tb = wl::Testbed::makeK2();
        auto lxtb = wl::Testbed::makeLinux();
        const auto k2res = wl::runEpisodeWarm(
            k2tb.sys(), k2tb.proc(), "udp",
            wl::udpLoopback(k2tb.udp(), c.batch, c.total));
        const auto lxres = wl::runEpisodeWarm(
            lxtb.sys(), lxtb.proc(), "udp",
            wl::udpLoopback(lxtb.udp(), c.batch, c.total));
        const double gain = k2res.mbPerJoule() / lxres.mbPerJoule();
        best_gain = std::max(best_gain, gain);
        table.addRow({c.label, wl::fmt(k2res.mbPerJoule(), 2),
                      wl::fmt(lxres.mbPerJoule(), 2),
                      wl::fmt(gain, 1) + "x",
                      wl::fmt(k2res.mbPerSec(), 1),
                      wl::fmt(lxres.mbPerSec(), 1)});
    }
    table.print();
    std::printf("\npeak K2 advantage: %.1fx (paper: up to ~10x)\n",
                best_gain);
    return 0;
}
