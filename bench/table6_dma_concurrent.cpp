/**
 * @file
 * Table 6: DMA throughput when the (shadowed) DMA driver is invoked in
 * both K2 kernels concurrently, vs. the original Linux using the
 * strong domain only. In MB/s.
 *
 * Paper values:
 *   BatchSize      4K     128K    256K    1M
 *   Linux         37.8    40.3    40.3    40.5
 *   K2            35.7    39.9    40.5    43.1  (-5.5% .. +6.4%)
 *   K2:Main       35.6    28.4    28.6    28.8
 *   K2:Shadow      0.1    11.5    11.9    14.3
 *
 * Shape: at small batches the benchmark is CPU-bound, the weak kernel
 * barely competes, and coherence overhead costs K2 a few percent; at
 * large batches it is IO-bound, the shadow kernel wins engine
 * bandwidth, and the higher engine utilisation slightly *raises*
 * total throughput over single-kernel Linux.
 */

#include <cstdio>
#include <vector>

#include "workloads/episode.h"
#include "workloads/report.h"
#include "workloads/sweep.h"
#include "workloads/testbed.h"
#include "workloads/warm.h"

namespace {

using namespace k2;
using kern::Thread;
using kern::ThreadKind;
using sim::Task;

struct Result
{
    double linux_mbps;
    double k2_total;
    double k2_main;
    double k2_shadow;
};

/** Run transfers of @p batch bytes at full speed until @p deadline. */
wl::Workload
saturate(svc::DmaDriver &dma, std::uint64_t batch, sim::Time deadline)
{
    return [&dma, batch, deadline](
               Thread &t) -> sim::Task<std::uint64_t> {
        std::uint64_t moved = 0;
        while (t.kernel().engine().now() < deadline) {
            co_await dma.transfer(t, batch);
            moved += batch;
        }
        co_return moved;
    };
}

constexpr sim::Duration kWindow = sim::sec(2);

/** Baseline Linux: one driver loop on the strong domain. */
void
runLinuxCase(wl::SweepMode sweep, std::uint64_t batch, Result &res)
{
    auto &tb = wl::warmLinux(sweep, "linux-nogate", [] {
        baseline::LinuxConfig cfg;
        cfg.soc.costs.inactiveTimeout = 0;
        return cfg;
    });
    const sim::Time deadline = tb.engine().now() + kWindow;
    std::uint64_t bytes = 0;
    tb.sys().spawnNormal(tb.proc(), "dma",
                         [&, batch](Thread &t) -> Task<void> {
                             bytes = co_await saturate(
                                 tb.dma(), batch, deadline)(t);
                         });
    tb.engine().run();
    res.linux_mbps = bytes / sim::toSec(kWindow) / 1e6;
}

/** K2: both kernels at full speed (separate processes, so
 *  multi-domain parallelism is allowed, §4.3). */
void
runK2Case(wl::SweepMode sweep, std::uint64_t batch, Result &res)
{
    auto &tb = wl::warmK2(sweep, "k2-nogate", [] {
        os::K2Config cfg;
        cfg.soc.costs.inactiveTimeout = 0;
        return cfg;
    });
    auto &proc2 = tb.sys().createProcess("shadow-load");
    const sim::Time deadline = tb.engine().now() + kWindow;
    std::uint64_t main_bytes = 0;
    std::uint64_t shadow_bytes = 0;
    tb.sys().mainKernel().spawnThread(
        &tb.proc(), "dma-main", ThreadKind::Normal,
        [&, batch](Thread &t) -> Task<void> {
            main_bytes =
                co_await saturate(tb.dma(), batch, deadline)(t);
        });
    tb.k2()->shadowKernel().spawnThread(
        &proc2, "dma-shadow", ThreadKind::Normal,
        [&, batch](Thread &t) -> Task<void> {
            shadow_bytes =
                co_await saturate(tb.dma(), batch, deadline)(t);
        });
    tb.engine().run();
    res.k2_main = main_bytes / sim::toSec(kWindow) / 1e6;
    res.k2_shadow = shadow_bytes / sim::toSec(kWindow) / 1e6;
    res.k2_total = res.k2_main + res.k2_shadow;
}

} // namespace

int
main(int argc, char **argv)
{
    const unsigned jobs = wl::parseJobsFlag(argc, argv);
    const wl::SweepMode sweep = wl::parseSweepFlag(argc, argv);

    wl::banner("Table 6: concurrent DMA throughput (MB/s)");

    const std::uint64_t batches[] = {4096, 131072, 262144, 1048576};
    const char *labels[] = {"4K", "128K", "256K", "1M"};

    // The Linux and K2 measurements for one batch size use separate
    // testbeds, so each is its own sweep cell filling half a Result.
    wl::SweepRunner runner(jobs);
    std::vector<Result> results(std::size(batches));
    for (std::size_t i = 0; i < std::size(batches); ++i) {
        const std::uint64_t batch = batches[i];
        runner.submit([&results, i, batch, sweep]() {
            runLinuxCase(sweep, batch, results[i]);
        });
        runner.submit([&results, i, batch, sweep]() {
            runK2Case(sweep, batch, results[i]);
        });
    }
    runner.run();

    wl::Table table({"DMA BatchSize", "Linux", "K2", "K2 vs Linux",
                     "K2:Main", "K2:Shadow"});
    for (std::size_t i = 0; i < std::size(batches); ++i) {
        const Result &r = results[i];
        const double delta =
            (r.k2_total - r.linux_mbps) / r.linux_mbps * 100.0;
        table.addRow({labels[i], wl::fmt(r.linux_mbps, 1),
                      wl::fmt(r.k2_total, 1),
                      (delta >= 0 ? "+" : "") + wl::fmt(delta, 1) + "%",
                      wl::fmt(r.k2_main, 1), wl::fmt(r.k2_shadow, 1)});
    }
    table.print();
    std::printf("\npaper: Linux 37.8-40.5; K2 within -5.5%%..+6.4%% of "
                "Linux, main/shadow split shifting toward the shadow "
                "kernel as batches grow IO-bound\n");
    return 0;
}
