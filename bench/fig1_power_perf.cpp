/**
 * @file
 * Figure 1: the mobile-SoC architecture trend in power-vs-performance
 * space (both axes logarithmic in the paper), regenerated from the
 * simulated platform's operating points, plus the Table 1/3 platform
 * echo.
 *
 * Points:
 *  - DVFS: the strong core across its frequency ladder (narrow range);
 *  - coherent heterogeneity (big.LITTLE-like): a hypothetical little
 *    core constrained to share the strong domain's coherence fabric
 *    (min power bounded by the interconnect, ~6x below the big core);
 *  - incoherent heterogeneity (multi-domain): the weak domain's
 *    operating points, up to ~20x below in power.
 */

#include <cstdio>

#include "soc/config.h"
#include "workloads/report.h"

int
main()
{
    using namespace k2;

    wl::banner("Figure 1: power vs performance across SoC architectures");

    const soc::SocConfig cfg = soc::omap4Config();
    const auto &strong = cfg.domains[soc::kStrongDomain].core;
    const auto &weak = cfg.domains[soc::kWeakDomain].core;

    auto perf = [](const soc::CoreSpec &core, std::uint64_t hz) {
        return hz / 1e6 * core.instrPerCycle; // MIPS of reference work
    };

    wl::Table table({"Design point", "Perf (MIPS)", "Active power (mW)",
                     "Perf/W (MIPS/mW)"});
    for (const auto &p : strong.points) {
        table.addRow({"DVFS: " + strong.name + " @" +
                          wl::fmt(p.hz / 1e6, 0) + "MHz",
                      wl::fmt(perf(strong, p.hz), 0),
                      wl::fmt(p.activeMw, 1),
                      wl::fmt(perf(strong, p.hz) / p.activeMw, 2)});
    }
    // A big.LITTLE-style little core: its minimum power is bounded by
    // the shared coherent interconnect (~1/6 of the big core, §2.2).
    const double little_mw = strong.points.front().activeMw / 6.0;
    const double little_mips = perf(strong, strong.points.front().hz) / 3;
    table.addRow({"coherent hetero: LITTLE core",
                  wl::fmt(little_mips, 0), wl::fmt(little_mw, 1),
                  wl::fmt(little_mips / little_mw, 2)});
    for (const auto &p : weak.points) {
        table.addRow({"multi-domain: " + weak.name + " @" +
                          wl::fmt(p.hz / 1e6, 0) + "MHz",
                      wl::fmt(perf(weak, p.hz), 0),
                      wl::fmt(p.activeMw, 1),
                      wl::fmt(perf(weak, p.hz) / p.activeMw, 2)});
    }
    table.print();

    const double ratio =
        strong.points.front().activeMw / weak.points.front().activeMw;
    std::printf("\nlowest-power ratio strong:weak domain = %.0fx "
                "(paper: different domains can differ by up to ~20x, "
                "vs ~6x within one domain)\n",
                ratio);

    wl::banner("Tables 1 & 3: simulated platform configuration");
    wl::Table plat({"Property", "Cortex-A9 (strong)", "Cortex-M3 (weak)"});
    plat.addRow({"ISA", strong.isa, weak.isa});
    plat.addRow({"Frequency",
                 wl::fmt(strong.points.front().hz / 1e6, 0) + "-" +
                     wl::fmt(strong.points.back().hz / 1e6, 0) + " MHz",
                 wl::fmt(weak.points.front().hz / 1e6, 0) + "-" +
                     wl::fmt(weak.points.back().hz / 1e6, 0) + " MHz"});
    plat.addRow({"Active power (bench point)",
                 wl::fmt(strong.points.front().activeMw, 1) +
                     " mW @350MHz",
                 wl::fmt(weak.points.back().activeMw, 1) +
                     " mW @200MHz"});
    plat.addRow({"Idle power", wl::fmt(strong.idleMw, 1) + " mW",
                 wl::fmt(weak.idleMw, 1) + " mW"});
    plat.addRow({"Inactive power", wl::fmt(strong.inactiveMw, 2) + " mW",
                 wl::fmt(weak.inactiveMw, 2) + " mW"});
    plat.addRow({"MMU", "single-level ARMv7-A",
                 "two cascaded levels, 10-entry L1 TLB"});
    plat.print();
    return 0;
}
