/**
 * @file
 * Table 4: latencies of physical memory allocations in K2, in us.
 *
 * Paper values: 4KB/256KB/1024KB allocations take 1/5/13 us on the
 * main kernel and 12/45/146 us on the shadow kernel; balloon deflate
 * takes 10.4/12.8 ms and inflate 11.6/20.4 ms (main/shadow). The main
 * kernel's allocator must show "no noticeable difference" from stock
 * Linux.
 */

#include <cstdio>

#include "baseline/linux_system.h"
#include "os/k2_system.h"
#include "workloads/report.h"

namespace {

using namespace k2;
using kern::Thread;
using kern::ThreadKind;
using sim::Task;

/** Mean allocation latency over @p iters warm iterations. */
double
measureAlloc(os::SystemImage &sys, kern::Kernel &kern,
             kern::Process &proc, unsigned order, int iters)
{
    sim::Duration total = 0;
    kern.spawnThread(
        &proc, "alloc-bench", ThreadKind::Normal,
        [&, order, iters](Thread &t) -> Task<void> {
            // Hold a few blocks of this order so the free lists stay
            // split during the measurement (the steady state Linux's
            // per-CPU caches maintain).
            std::vector<kern::PageRange> held;
            for (int i = 0; i < 3; ++i)
                held.push_back(co_await sys.allocPages(t, order));
            for (int i = 0; i < iters; ++i) {
                const sim::Time t0 = sys.engine().now();
                auto r = co_await sys.allocPages(t, order);
                total += sys.engine().now() - t0;
                K2_ASSERT(!r.empty());
                co_await sys.freePages(t, r);
            }
            for (auto &h : held)
                co_await sys.freePages(t, h);
        });
    sys.engine().run();
    return sim::toUsec(total) / iters;
}

/** One balloon deflate+inflate on the kernel of @p k. */
std::pair<double, double>
measureBalloon(os::K2System &k2sys, os::KernelIdx k, kern::Process &proc)
{
    kern::Kernel &kern =
        k == 0 ? k2sys.mainKernel() : k2sys.shadowKernel();
    kern.spawnThread(&proc, "balloon-bench", ThreadKind::Normal,
                     [&](Thread &t) -> Task<void> {
                         auto d = co_await k2sys.meta().deflateOne(t);
                         K2_ASSERT(d.has_value());
                         auto i = co_await k2sys.meta().inflateOne(t);
                         K2_ASSERT(i.has_value());
                     });
    k2sys.ownedEngine().run();
    return {k2sys.meta().balloon(k).deflateUs.mean(),
            k2sys.meta().balloon(k).inflateUs.mean()};
}

} // namespace

int
main()
{
    wl::banner("Table 4: physical memory allocation latencies (us)");

    os::K2Config cfg;
    cfg.soc.costs.inactiveTimeout = 0; // measure warm, no power gating
    os::K2System k2sys(cfg);
    auto &proc = k2sys.createProcess("bench");

    baseline::LinuxConfig lx_cfg;
    lx_cfg.soc.costs.inactiveTimeout = 0;
    baseline::LinuxSystem linux_sys(lx_cfg);
    auto &lx_proc = linux_sys.createProcess("bench");

    struct Row { const char *label; unsigned order; };
    const Row rows[] = {{"4KB", 0}, {"256KB", 6}, {"1024KB", 8}};
    const double paper_main[] = {1, 5, 13};
    const double paper_shadow[] = {12, 45, 146};

    wl::Table table({"Allocation size", "Main", "Shadow", "stock Linux",
                     "paper Main", "paper Shadow"});
    for (std::size_t i = 0; i < std::size(rows); ++i) {
        const double main_us = measureAlloc(
            k2sys, k2sys.mainKernel(), proc, rows[i].order, 20);
        const double shadow_us = measureAlloc(
            k2sys, k2sys.shadowKernel(), proc, rows[i].order, 20);
        const double lx_us = measureAlloc(
            linux_sys, linux_sys.mainKernel(), lx_proc, rows[i].order,
            20);
        table.addRow({rows[i].label, wl::fmt(main_us, 1),
                      wl::fmt(shadow_us, 1), wl::fmt(lx_us, 1),
                      wl::fmt(paper_main[i], 0),
                      wl::fmt(paper_shadow[i], 0)});
    }
    table.print();

    std::printf("\nBalloon operations (us):\n\n");
    const auto [main_d, main_i] = measureBalloon(k2sys, 0, proc);
    const auto [shadow_d, shadow_i] = measureBalloon(k2sys, 1, proc);
    wl::Table btable({"Balloon", "Main", "Shadow", "paper Main",
                      "paper Shadow"});
    btable.addRow({"deflate", wl::fmt(main_d, 0), wl::fmt(shadow_d, 0),
                   "10429", "12813"});
    btable.addRow({"inflate", wl::fmt(main_i, 0), wl::fmt(shadow_i, 0),
                   "11612", "20408"});
    btable.print();

    std::printf("\nNote: the K2 main kernel's allocator tracks stock "
                "Linux (same instance, no coordination on the fast "
                "path).\n");
    return 0;
}
