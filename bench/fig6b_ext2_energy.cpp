/**
 * @file
 * Figure 6(b): energy efficiency of the ext2 benchmark, K2 vs Linux.
 *
 * Mimics a light task synchronising content from the cloud: per run, a
 * thread operates on eight files sequentially -- create, write, close
 * -- on an ext2 filesystem over a ramdisk. File sizes represent
 * content types: 1 KB (emails), 256 KB (pictures), 1 MB (short
 * videos). Paper result: K2 up to ~8x better MB/J.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "os/coherence/protocol.h"
#include "workloads/benchmarks.h"
#include "workloads/report.h"
#include "workloads/sweep.h"
#include "workloads/testbed.h"
#include "workloads/warm.h"

int
main(int argc, char **argv)
{
    using namespace k2;

    const unsigned jobs = wl::parseJobsFlag(argc, argv);
    const wl::SweepMode sweep = wl::parseSweepFlag(argc, argv);
    auto dsm = os::coherence::ProtocolKind::TwoState;
    const bool dsmSet = wl::parseDsmFlag(argc, argv, dsm);

    wl::banner("Figure 6(b): ext2 energy efficiency (MB/J), "
               "8 files per run");
    if (dsmSet)
        std::printf("DSM protocol: %s\n\n",
                    os::coherence::protocolName(dsm));

    const std::uint64_t sizes[] = {1024, 256 * 1024, 1024 * 1024};
    const char *labels[] = {"1KB (emails)", "256KB (pictures)",
                            "1MB (short videos)"};

    // Default protocol keeps the pre-zoo warm key (and null config)
    // so plain invocations stay byte-identical.
    std::string k2key = "k2";
    if (dsm != os::coherence::ProtocolKind::TwoState)
        k2key += std::string(":") + os::coherence::protocolName(dsm);

    wl::SweepRunner runner(jobs);
    std::vector<wl::EpisodeResult> k2res(std::size(sizes));
    std::vector<wl::EpisodeResult> lxres(std::size(sizes));
    for (std::size_t i = 0; i < std::size(sizes); ++i) {
        const std::uint64_t size = sizes[i];
        runner.submit([&k2res, &k2key, dsm, i, size, sweep]() {
            auto &tb = wl::warmK2(sweep, k2key, [dsm] {
                os::K2Config cfg;
                cfg.dsmProtocol = dsm;
                return cfg;
            });
            k2res[i] = wl::runEpisodeWarm(tb.sys(), tb.proc(), "ext2",
                                          wl::ext2Sync(tb.fs(), size));
        });
        runner.submit([&lxres, i, size, sweep]() {
            auto &tb = wl::warmLinux(sweep, "linux");
            lxres[i] = wl::runEpisodeWarm(tb.sys(), tb.proc(), "ext2",
                                          wl::ext2Sync(tb.fs(), size));
        });
    }
    runner.run();

    wl::Table table({"Single file size", "K2 MB/J", "Linux MB/J",
                     "K2/Linux", "K2 MB/s", "Linux MB/s"});

    double best_gain = 0;
    for (std::size_t i = 0; i < std::size(sizes); ++i) {
        const double gain =
            k2res[i].mbPerJoule() / lxres[i].mbPerJoule();
        best_gain = std::max(best_gain, gain);
        table.addRow({labels[i], wl::fmt(k2res[i].mbPerJoule(), 2),
                      wl::fmt(lxres[i].mbPerJoule(), 2),
                      wl::fmt(gain, 1) + "x",
                      wl::fmt(k2res[i].mbPerSec(), 1),
                      wl::fmt(lxres[i].mbPerSec(), 1)});
    }
    table.print();
    std::printf("\npeak K2 advantage: %.1fx (paper: up to ~8x)\n",
                best_gain);
    return 0;
}
