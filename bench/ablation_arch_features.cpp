/**
 * @file
 * §11 wishlist ablation: "the following architectural features will
 * greatly benefit system performance and efficiency, yet are still
 * missing in today's multi-domain SoCs: direct channels for
 * inter-domain communication that bypass the system interconnect,
 * efficient MMUs for weak domains with permission support, and
 * finer-grained power domains."
 *
 * Each wish is granted in isolation and its effect measured:
 *  1. direct channels  -> mailbox one-way latency 2.5 us -> 0.25 us;
 *     measure the DSM fault round trip.
 *  2. efficient weak MMU -> the M3 gets a single-level MMU with
 *     permissions; measure the three-state protocol's read-mostly
 *     sharing (now viable).
 *  3. finer-grained power domains -> the strong domain's uncore can
 *     gate with the cores it serves; measure a light-task episode.
 */

#include <cstdio>

#include "os/k2_system.h"
#include "workloads/benchmarks.h"
#include "workloads/report.h"
#include "workloads/testbed.h"

namespace {

using namespace k2;
using kern::Thread;
using kern::ThreadKind;
using sim::Task;

/** Mean weak-kernel fault latency under ping-pong. */
double
faultUs(os::K2Config cfg)
{
    cfg.soc.costs.inactiveTimeout = 0;
    os::K2System sys(cfg);
    auto &proc = sys.createProcess("bench");
    for (int round = 0; round < 20; ++round) {
        kern::Kernel &kern = (round % 2 == 0) ? sys.shadowKernel()
                                              : sys.mainKernel();
        kern.spawnThread(&proc, "t", ThreadKind::Normal,
                         [&](Thread &t) -> Task<void> {
                             co_await sys.dsm().access(
                                 t.kernel(), t.core(), 1,
                                 os::Access::Write);
                         });
        sys.ownedEngine().run();
    }
    return sys.dsm().faultStats(1).totalUs.mean();
}

/** Mean read-mostly three-state access latency. */
double
readShareUs(os::K2Config cfg)
{
    cfg.soc.costs.inactiveTimeout = 0;
    cfg.dsmProtocol = os::Dsm::Protocol::ThreeState;
    os::K2System sys(cfg);
    auto &proc = sys.createProcess("bench");
    sim::Duration total = 0;
    constexpr int kRounds = 32;
    for (int round = 0; round < kRounds; ++round) {
        kern::Kernel &kern = (round % 2 == 0) ? sys.shadowKernel()
                                              : sys.mainKernel();
        const os::Access rw =
            (round % 16 == 0) ? os::Access::Write : os::Access::Read;
        kern.spawnThread(&proc, "t", ThreadKind::Normal,
                         [&, rw](Thread &t) -> Task<void> {
                             const sim::Time t0 = sys.engine().now();
                             co_await sys.dsm().access(
                                 t.kernel(), t.core(), 1, rw);
                             total += sys.engine().now() - t0;
                         });
        sys.ownedEngine().run();
    }
    return sim::toUsec(total) / kRounds;
}

/** MB/J of the small DMA episode. */
double
episodeMbPerJoule(os::K2Config cfg)
{
    auto tb = wl::Testbed::makeK2(std::move(cfg));
    return wl::runEpisodeWarm(tb.sys(), tb.proc(), "dma",
                              wl::dmaCopy(tb.dma(), 4096, 256 * 1024))
        .mbPerJoule();
}

} // namespace

int
main()
{
    wl::banner("Ablation (§11): the architectural features K2 wishes "
               "for");

    wl::Table table({"Wish granted", "Metric", "Today", "With feature",
                     "Gain"});

    {
        os::K2Config base;
        os::K2Config direct;
        direct.soc.costs.mailboxOneWay = sim::nsec(250);
        const double today = faultUs(base);
        const double with = faultUs(direct);
        table.addRow({"direct inter-domain channels",
                      "weak-kernel DSM fault (us)", wl::fmt(today, 1),
                      wl::fmt(with, 1),
                      wl::fmt(today / with, 2) + "x"});
    }
    {
        os::K2Config base;
        os::K2Config mmu;
        mmu.soc.domains[soc::kWeakDomain].core.mmu =
            soc::MmuKind::SingleLevel;
        mmu.soc.domains[soc::kWeakDomain].core.l1TlbEntries = 32;
        const double today = readShareUs(base);
        const double with = readShareUs(mmu);
        table.addRow({"weak-domain MMU with permissions",
                      "read-mostly MSI sharing (us/access)",
                      wl::fmt(today, 1), wl::fmt(with, 1),
                      wl::fmt(today / with, 2) + "x"});
    }
    {
        os::K2Config base;
        os::K2Config fine;
        // Finer-grained power domains: the strong uncore gates with
        // its cores instead of burning whenever the SoC is up, and the
        // weak domain's rail can drop its share too.
        fine.soc.domains[soc::kStrongDomain].uncoreActiveMw = 4.0;
        fine.soc.domains[soc::kWeakDomain].uncoreActiveMw = 0.4;
        const double today = episodeMbPerJoule(base);
        const double with = episodeMbPerJoule(fine);
        table.addRow({"finer-grained power domains",
                      "light-task efficiency (MB/J)", wl::fmt(today, 2),
                      wl::fmt(with, 2), wl::fmt(with / today, 2) + "x"});
    }
    table.print();

    std::printf("\nEach feature attacks a different term: channels cut "
                "coherence latency, weak-MMU permissions make "
                "read-sharing protocols viable, finer power domains "
                "shrink the idle tail that dominates light-task "
                "energy.\n");
    return 0;
}
