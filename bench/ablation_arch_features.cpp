/**
 * @file
 * §11 wishlist ablation: "the following architectural features will
 * greatly benefit system performance and efficiency, yet are still
 * missing in today's multi-domain SoCs: direct channels for
 * inter-domain communication that bypass the system interconnect,
 * efficient MMUs for weak domains with permission support, and
 * finer-grained power domains."
 *
 * Each wish is granted in isolation and its effect measured:
 *  1. direct channels  -> mailbox one-way latency 2.5 us -> 0.25 us;
 *     measure the DSM fault round trip.
 *  2. efficient weak MMU -> the M3 gets a single-level MMU with
 *     permissions; measure the three-state protocol's read-mostly
 *     sharing (now viable).
 *  3. finer-grained power domains -> the strong domain's uncore can
 *     gate with the cores it serves; measure a light-task episode.
 */

#include <cstdio>

#include "os/k2_system.h"
#include "workloads/benchmarks.h"
#include "workloads/report.h"
#include "workloads/sweep.h"
#include "workloads/testbed.h"
#include "workloads/warm.h"

namespace {

using namespace k2;
using kern::Thread;
using kern::ThreadKind;
using sim::Task;

/** Mean weak-kernel fault latency under ping-pong. */
double
faultUs(wl::SweepMode sweep, const std::string &key,
        const std::function<os::K2Config()> &mk)
{
    auto &sys = wl::warmFixture<os::K2System>(sweep, key, [&mk] {
        os::K2Config cfg = mk();
        cfg.soc.costs.inactiveTimeout = 0;
        return std::make_unique<os::K2System>(std::move(cfg));
    });
    auto &proc = sys.createProcess("bench");
    for (int round = 0; round < 20; ++round) {
        kern::Kernel &kern = (round % 2 == 0) ? sys.shadowKernel()
                                              : sys.mainKernel();
        kern.spawnThread(&proc, "t", ThreadKind::Normal,
                         [&](Thread &t) -> Task<void> {
                             co_await sys.dsm().access(
                                 t.kernel(), t.core(), 1,
                                 os::Access::Write);
                         });
        sys.ownedEngine().run();
    }
    return sys.dsm().faultStats(1).totalUs.mean();
}

/** Mean read-mostly three-state access latency. */
double
readShareUs(wl::SweepMode sweep, const std::string &key,
            const std::function<os::K2Config()> &mk)
{
    auto &sys = wl::warmFixture<os::K2System>(sweep, key, [&mk] {
        os::K2Config cfg = mk();
        cfg.soc.costs.inactiveTimeout = 0;
        cfg.dsmProtocol = os::Dsm::Protocol::ThreeState;
        return std::make_unique<os::K2System>(std::move(cfg));
    });
    auto &proc = sys.createProcess("bench");
    sim::Duration total = 0;
    constexpr int kRounds = 32;
    for (int round = 0; round < kRounds; ++round) {
        kern::Kernel &kern = (round % 2 == 0) ? sys.shadowKernel()
                                              : sys.mainKernel();
        const os::Access rw =
            (round % 16 == 0) ? os::Access::Write : os::Access::Read;
        kern.spawnThread(&proc, "t", ThreadKind::Normal,
                         [&, rw](Thread &t) -> Task<void> {
                             const sim::Time t0 = sys.engine().now();
                             co_await sys.dsm().access(
                                 t.kernel(), t.core(), 1, rw);
                             total += sys.engine().now() - t0;
                         });
        sys.ownedEngine().run();
    }
    return sim::toUsec(total) / kRounds;
}

/** MB/J of the small DMA episode. */
double
episodeMbPerJoule(wl::SweepMode sweep, const std::string &key,
                  const std::function<os::K2Config()> &mk)
{
    auto &tb = wl::warmK2(sweep, key, mk);
    return wl::runEpisodeWarm(tb.sys(), tb.proc(), "dma",
                              wl::dmaCopy(tb.dma(), 4096, 256 * 1024))
        .mbPerJoule();
}

} // namespace

int
main(int argc, char **argv)
{
    const unsigned jobs = wl::parseJobsFlag(argc, argv);
    const wl::SweepMode sweep = wl::parseSweepFlag(argc, argv);

    wl::banner("Ablation (§11): the architectural features K2 wishes "
               "for");

    // Six independent measurements (3 wishes x {today, with feature}),
    // each on its own K2System: one sweep cell apiece.
    wl::SweepRunner runner(jobs);
    double ch_today = 0, ch_with = 0;
    double mmu_today = 0, mmu_with = 0;
    double pw_today = 0, pw_with = 0;

    runner.submit([&ch_today, sweep]() {
        ch_today = faultUs(sweep, "ch-today",
                           [] { return os::K2Config{}; });
    });
    runner.submit([&ch_with, sweep]() {
        ch_with = faultUs(sweep, "ch-direct", [] {
            os::K2Config direct;
            direct.soc.costs.mailboxOneWay = sim::nsec(250);
            return direct;
        });
    });
    runner.submit([&mmu_today, sweep]() {
        mmu_today = readShareUs(sweep, "mmu-today",
                                [] { return os::K2Config{}; });
    });
    runner.submit([&mmu_with, sweep]() {
        mmu_with = readShareUs(sweep, "mmu-eff", [] {
            os::K2Config mmu;
            mmu.soc.domains[soc::kWeakDomain].core.mmu =
                soc::MmuKind::SingleLevel;
            mmu.soc.domains[soc::kWeakDomain].core.l1TlbEntries = 32;
            return mmu;
        });
    });
    runner.submit([&pw_today, sweep]() {
        pw_today = episodeMbPerJoule(sweep, "pw-today",
                                     [] { return os::K2Config{}; });
    });
    runner.submit([&pw_with, sweep]() {
        pw_with = episodeMbPerJoule(sweep, "pw-fine", [] {
            os::K2Config fine;
            // Finer-grained power domains: the strong uncore gates
            // with its cores instead of burning whenever the SoC is
            // up, and the weak domain's rail can drop its share too.
            fine.soc.domains[soc::kStrongDomain].uncoreActiveMw = 4.0;
            fine.soc.domains[soc::kWeakDomain].uncoreActiveMw = 0.4;
            return fine;
        });
    });
    runner.run();

    wl::Table table({"Wish granted", "Metric", "Today", "With feature",
                     "Gain"});
    table.addRow({"direct inter-domain channels",
                  "weak-kernel DSM fault (us)", wl::fmt(ch_today, 1),
                  wl::fmt(ch_with, 1),
                  wl::fmt(ch_today / ch_with, 2) + "x"});
    table.addRow({"weak-domain MMU with permissions",
                  "read-mostly MSI sharing (us/access)",
                  wl::fmt(mmu_today, 1), wl::fmt(mmu_with, 1),
                  wl::fmt(mmu_today / mmu_with, 2) + "x"});
    table.addRow({"finer-grained power domains",
                  "light-task efficiency (MB/J)", wl::fmt(pw_today, 2),
                  wl::fmt(pw_with, 2),
                  wl::fmt(pw_with / pw_today, 2) + "x"});
    table.print();

    std::printf("\nEach feature attacks a different term: channels cut "
                "coherence latency, weak-MMU permissions make "
                "read-sharing protocols viable, finer power domains "
                "shrink the idle tail that dominates light-task "
                "energy.\n");
    return 0;
}
