/**
 * @file
 * §8 NightWatch scheduling overhead: the extra main-kernel cost per
 * context switch from overlapping the SuspendNW message round trip
 * with the switch.
 *
 * Paper: "Given that a message round trip takes around 5 us and a
 * context switch usually takes 3-4 us, the extra overhead for the main
 * kernel is 1-2 us for every context switch."
 */

#include <cstdio>

#include "workloads/report.h"
#include "workloads/testbed.h"

int
main()
{
    using namespace k2;
    using kern::Thread;
    using sim::Task;

    wl::banner("NightWatch overhead per main-kernel context switch (§8)");

    os::K2Config cfg;
    cfg.soc.costs.inactiveTimeout = 0;
    auto tb = wl::Testbed::makeK2(cfg);
    auto &k2sys = *tb.k2();

    // A NightWatch thread that keeps trickling work, and a Normal
    // thread of the same process that repeatedly blocks and resumes --
    // each resume schedules it in, triggering SuspendNW.
    tb.sys().spawnNightWatch(tb.proc(), "nw",
                             [&](Thread &t) -> Task<void> {
                                 for (int i = 0; i < 1000; ++i) {
                                     co_await t.exec(10000);
                                     co_await t.sleep(sim::usec(200));
                                 }
                             });
    tb.sys().spawnNormal(tb.proc(), "normal",
                         [&](Thread &t) -> Task<void> {
                             for (int i = 0; i < 200; ++i) {
                                 co_await t.exec(35000); // 100 us
                                 co_await t.sleep(sim::msec(1));
                             }
                         });
    tb.engine().run();

    const auto &nw = k2sys.nightWatch();
    wl::Table table({"Metric", "Measured", "Paper"});
    table.addRow({"SuspendNW messages",
                  std::to_string(nw.suspendsSent.value()), "-"});
    table.addRow({"ResumeNW messages",
                  std::to_string(nw.resumesSent.value()), "-"});
    table.addRow({"extra wait per switch (us)",
                  wl::fmt(nw.ackWaitUs.mean(), 2), "1-2"});
    table.addRow({"mailbox round trip (us)",
                  wl::fmt(sim::toUsec(
                              2 * tb.sys().soc().costs().mailboxOneWay),
                          1),
                  "~5"});
    table.addRow({"context switch (us)",
                  wl::fmt(sim::toUsec(
                              tb.sys().soc().costs().contextSwitch),
                          1),
                  "3-4"});
    table.print();
    return 0;
}
