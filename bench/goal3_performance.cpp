/**
 * @file
 * Design goal (iii) of §4.1: "maintain the current performance level
 * of demanding tasks".
 *
 * A demanding foreground task (repeated fixed-size compute bursts, as
 * in UI rendering) runs while a light background task keeps syncing.
 * Under Linux the light task competes for the strong cores; under K2
 * it runs on the weak domain, and the NightWatch rule even defers it
 * whenever a Normal thread of its process is schedulable. We measure
 * the foreground bursts' latency distribution on both systems, with
 * and without background load.
 */

#include <cstdio>

#include "workloads/benchmarks.h"
#include "workloads/report.h"
#include "workloads/testbed.h"

namespace {

using namespace k2;
using kern::Thread;
using sim::Task;

struct Result
{
    double meanUs;
    double maxUs;
};

/**
 * @param background If true, a same-process light task runs alongside.
 */
Result
foregroundLatency(wl::Testbed &tb, bool background)
{
    constexpr int kBursts = 40;
    constexpr std::uint64_t kBurstInstr = 3500000; // 10 ms at 350 MHz

    sim::Accumulator lat;
    if (background) {
        tb.sys().spawnNightWatch(
            tb.proc(), "bg-sync", [&tb](Thread &t) -> Task<void> {
                for (int i = 0; i < 10000; ++i) {
                    co_await wl::emailSync(tb.udp(), tb.fs(), 16384,
                                           i)(t);
                    co_await t.sleep(sim::msec(5));
                }
            });
    }

    // A demanding app saturates the strong domain: one burst thread
    // per strong core (UI + render threads).
    int fg_done = 0;
    const int fg_threads =
        static_cast<int>(tb.sys().mainKernel().domain().numCores());
    for (int n = 0; n < fg_threads; ++n) {
        tb.sys().spawnNormal(
            tb.proc(), "fg" + std::to_string(n),
            [&](Thread &t) -> Task<void> {
                for (int i = 0; i < kBursts; ++i) {
                    const sim::Time t0 = tb.engine().now();
                    co_await t.exec(kBurstInstr);
                    lat.sample(sim::toUsec(tb.engine().now() - t0));
                    co_await t.sleep(sim::msec(3));
                }
                ++fg_done;
            });
    }

    // Run until the foreground finishes (the background task is
    // endless by design).
    while (fg_done < fg_threads)
        tb.engine().run(tb.engine().now() + sim::msec(100));
    return Result{lat.mean(), lat.max()};
}

} // namespace

int
main()
{
    wl::banner("Design goal 3 (§4.1): demanding-task performance is "
               "preserved");

    os::K2Config k2cfg;
    k2cfg.soc.costs.inactiveTimeout = 0;
    baseline::LinuxConfig lxcfg;
    lxcfg.soc.costs.inactiveTimeout = 0;

    wl::Table table({"System", "background", "mean burst (us)",
                     "worst burst (us)"});
    double k2_clean = 0, k2_loaded = 0, lx_clean = 0, lx_loaded = 0;
    {
        auto tb = wl::Testbed::makeK2(k2cfg);
        const auto r = foregroundLatency(tb, false);
        k2_clean = r.meanUs;
        table.addRow({"K2", "none", wl::fmt(r.meanUs, 1),
                      wl::fmt(r.maxUs, 1)});
    }
    {
        auto tb = wl::Testbed::makeK2(k2cfg);
        const auto r = foregroundLatency(tb, true);
        k2_loaded = r.meanUs;
        table.addRow({"K2", "light task (weak domain)",
                      wl::fmt(r.meanUs, 1), wl::fmt(r.maxUs, 1)});
    }
    {
        auto tb = wl::Testbed::makeLinux(lxcfg);
        const auto r = foregroundLatency(tb, false);
        lx_clean = r.meanUs;
        table.addRow({"Linux", "none", wl::fmt(r.meanUs, 1),
                      wl::fmt(r.maxUs, 1)});
    }
    {
        auto tb = wl::Testbed::makeLinux(lxcfg);
        const auto r = foregroundLatency(tb, true);
        lx_loaded = r.meanUs;
        table.addRow({"Linux", "light task (strong domain)",
                      wl::fmt(r.meanUs, 1), wl::fmt(r.maxUs, 1)});
    }
    table.print();

    std::printf("\nforeground slowdown under background load: "
                "K2 %+.1f%%, Linux %+.1f%%\n",
                (k2_loaded / k2_clean - 1.0) * 100.0,
                (lx_loaded / lx_clean - 1.0) * 100.0);
    std::printf("K2 keeps the strong domain's peak performance for "
                "demanding tasks (the light task is both offloaded to "
                "the weak domain and NightWatch-deferred while the "
                "foreground thread is runnable).\n");
    return 0;
}
