/**
 * @file
 * Fig. 6(b) variant on a flash device: the paper notes its ramdisk
 * choice "favors the energy efficiency of Linux: ramdisk is a much
 * faster block device than real flash storages; using it shortens idle
 * periods that are more expensive to strong cores."
 *
 * This bench runs the same ext2 workload on a modelled SD card (with a
 * write-back block cache) and shows that K2's advantage *grows* on
 * real flash, validating that prediction.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "svc/sdcard.h"
#include "workloads/benchmarks.h"
#include "workloads/report.h"
#include "workloads/sweep.h"
#include "workloads/testbed.h"

namespace {

using namespace k2;

/** Run the ext2 sync episode against an SD-backed filesystem. */
double
sdEfficiency(os::SystemImage &sys, kern::Process &proc,
             std::uint64_t file_bytes)
{
    auto sd = std::make_unique<svc::SdCard>(svc::Ext2Fs::kBlockBytes,
                                            16384);
    auto cache =
        std::make_unique<svc::CachedBlockDevice>(*sd, 256);
    auto fs = std::make_unique<svc::Ext2Fs>(sys, *cache);
    sys.spawnNormal(proc, "mkfs",
                    [&](kern::Thread &t) -> sim::Task<void> {
                        co_await fs->mkfs(t);
                    });
    sys.engine().run();
    const auto res = wl::runEpisodeWarm(sys, proc, "ext2-sd",
                                        wl::ext2Sync(*fs, file_bytes));
    return res.mbPerJoule();
}

} // namespace

int
main(int argc, char **argv)
{
    const unsigned jobs = wl::parseJobsFlag(argc, argv);

    wl::banner("Figure 6(b) variant: ext2 on flash (SD) instead of "
               "ramdisk");

    const std::uint64_t sizes[] = {1024, 256 * 1024, 1024 * 1024};
    const char *labels[] = {"1KB (emails)", "256KB (pictures)",
                            "1MB (short videos)"};

    wl::SweepRunner runner(jobs);
    std::vector<double> k2_sd(std::size(sizes));
    std::vector<double> lx_sd(std::size(sizes));
    std::vector<double> k2_ram(std::size(sizes));
    std::vector<double> lx_ram(std::size(sizes));
    for (std::size_t i = 0; i < std::size(sizes); ++i) {
        const std::uint64_t size = sizes[i];
        runner.submit([&k2_sd, i, size]() {
            os::K2System sys;
            auto &proc = sys.createProcess("p");
            k2_sd[i] = sdEfficiency(sys, proc, size);
        });
        runner.submit([&lx_sd, i, size]() {
            baseline::LinuxSystem sys;
            auto &proc = sys.createProcess("p");
            lx_sd[i] = sdEfficiency(sys, proc, size);
        });
        // Ramdisk references from the standard testbeds.
        runner.submit([&k2_ram, i, size]() {
            auto tb = wl::Testbed::makeK2();
            k2_ram[i] =
                wl::runEpisodeWarm(tb.sys(), tb.proc(), "ext2",
                                   wl::ext2Sync(tb.fs(), size))
                    .mbPerJoule();
        });
        runner.submit([&lx_ram, i, size]() {
            auto tb = wl::Testbed::makeLinux();
            lx_ram[i] =
                wl::runEpisodeWarm(tb.sys(), tb.proc(), "ext2",
                                   wl::ext2Sync(tb.fs(), size))
                    .mbPerJoule();
        });
    }
    runner.run();

    wl::Table table({"Single file size", "K2 MB/J (SD)",
                     "Linux MB/J (SD)", "K2/Linux (SD)",
                     "K2/Linux (ramdisk)"});
    for (std::size_t i = 0; i < std::size(sizes); ++i) {
        table.addRow({labels[i], wl::fmt(k2_sd[i], 2),
                      wl::fmt(lx_sd[i], 2),
                      wl::fmt(k2_sd[i] / lx_sd[i], 1) + "x",
                      wl::fmt(k2_ram[i] / lx_ram[i], 1) + "x"});
    }
    table.print();

    std::printf("\nOn flash, IO idle periods stretch each run; the "
                "strong core pays 25.2(+20) mW through them while the "
                "weak core pays 3.8(+1.5) mW, so K2's advantage "
                "matches or exceeds the ramdisk case -- the paper's "
                "own caveat about its ramdisk setup, quantified.\n");
    return 0;
}
