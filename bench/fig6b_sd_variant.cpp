/**
 * @file
 * Fig. 6(b) variant on a flash device: the paper notes its ramdisk
 * choice "favors the energy efficiency of Linux: ramdisk is a much
 * faster block device than real flash storages; using it shortens idle
 * periods that are more expensive to strong cores."
 *
 * This bench runs the same ext2 workload on a modelled SD card (with a
 * write-back block cache) and shows that K2's advantage *grows* on
 * real flash, validating that prediction.
 */

#include <cstdio>
#include <memory>

#include "svc/sdcard.h"
#include "workloads/benchmarks.h"
#include "workloads/report.h"
#include "workloads/testbed.h"

namespace {

using namespace k2;

/** Run the ext2 sync episode against an SD-backed filesystem. */
double
sdEfficiency(os::SystemImage &sys, kern::Process &proc,
             std::uint64_t file_bytes)
{
    auto sd = std::make_unique<svc::SdCard>(svc::Ext2Fs::kBlockBytes,
                                            16384);
    auto cache =
        std::make_unique<svc::CachedBlockDevice>(*sd, 256);
    auto fs = std::make_unique<svc::Ext2Fs>(sys, *cache);
    sys.spawnNormal(proc, "mkfs",
                    [&](kern::Thread &t) -> sim::Task<void> {
                        co_await fs->mkfs(t);
                    });
    sys.engine().run();
    const auto res = wl::runEpisodeWarm(sys, proc, "ext2-sd",
                                        wl::ext2Sync(*fs, file_bytes));
    return res.mbPerJoule();
}

} // namespace

int
main()
{
    wl::banner("Figure 6(b) variant: ext2 on flash (SD) instead of "
               "ramdisk");

    const std::uint64_t sizes[] = {1024, 256 * 1024, 1024 * 1024};
    const char *labels[] = {"1KB (emails)", "256KB (pictures)",
                            "1MB (short videos)"};

    wl::Table table({"Single file size", "K2 MB/J (SD)",
                     "Linux MB/J (SD)", "K2/Linux (SD)",
                     "K2/Linux (ramdisk)"});
    for (std::size_t i = 0; i < std::size(sizes); ++i) {
        os::K2System k2sys;
        auto &k2proc = k2sys.createProcess("p");
        baseline::LinuxSystem lxsys;
        auto &lxproc = lxsys.createProcess("p");
        const double k2_sd = sdEfficiency(k2sys, k2proc, sizes[i]);
        const double lx_sd = sdEfficiency(lxsys, lxproc, sizes[i]);

        // Ramdisk reference from the standard testbeds.
        auto k2tb = wl::Testbed::makeK2();
        auto lxtb = wl::Testbed::makeLinux();
        const double k2_ram =
            wl::runEpisodeWarm(k2tb.sys(), k2tb.proc(), "ext2",
                               wl::ext2Sync(k2tb.fs(), sizes[i]))
                .mbPerJoule();
        const double lx_ram =
            wl::runEpisodeWarm(lxtb.sys(), lxtb.proc(), "ext2",
                               wl::ext2Sync(lxtb.fs(), sizes[i]))
                .mbPerJoule();

        table.addRow({labels[i], wl::fmt(k2_sd, 2), wl::fmt(lx_sd, 2),
                      wl::fmt(k2_sd / lx_sd, 1) + "x",
                      wl::fmt(k2_ram / lx_ram, 1) + "x"});
    }
    table.print();

    std::printf("\nOn flash, IO idle periods stretch each run; the "
                "strong core pays 25.2(+20) mW through them while the "
                "weak core pays 3.8(+1.5) mW, so K2's advantage "
                "matches or exceeds the ramdisk case -- the paper's "
                "own caveat about its ramdisk setup, quantified.\n");
    return 0;
}
