/**
 * @file
 * Fig. 6(b) variant on a flash device: the paper notes its ramdisk
 * choice "favors the energy efficiency of Linux: ramdisk is a much
 * faster block device than real flash storages; using it shortens idle
 * periods that are more expensive to strong cores."
 *
 * This bench runs the same ext2 workload on a modelled SD card (with a
 * write-back block cache) and shows that K2's advantage *grows* on
 * real flash, validating that prediction.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "svc/sdcard.h"
#include "workloads/benchmarks.h"
#include "workloads/report.h"
#include "workloads/sweep.h"
#include "workloads/testbed.h"
#include "workloads/warm.h"

namespace {

using namespace k2;

/** A system image with an ext2 fs over a cached SD card attached. */
struct SdFixture
{
    std::unique_ptr<os::SystemImage> sys;
    std::unique_ptr<svc::SdCard> sd;
    std::unique_ptr<svc::CachedBlockDevice> cache;
    std::unique_ptr<svc::Ext2Fs> fs;
    kern::Process *proc = nullptr;

    sim::Engine &engine() { return sys->engine(); }

    void
    snapState(snap::Io &io)
    {
        sys->snapState(io);
        sd->snapState(io);
        cache->snapState(io);
        fs->snapState(io);
        io.check(proc->pid(), "SdFixture::proc");
    }
};

std::unique_ptr<SdFixture>
makeSdFixture(bool k2_model)
{
    auto f = std::make_unique<SdFixture>();
    if (k2_model)
        f->sys = std::make_unique<os::K2System>();
    else
        f->sys = std::make_unique<baseline::LinuxSystem>();
    f->proc = &f->sys->createProcess("p");
    f->sd = std::make_unique<svc::SdCard>(svc::Ext2Fs::kBlockBytes,
                                          16384);
    f->cache = std::make_unique<svc::CachedBlockDevice>(*f->sd, 256);
    f->fs = std::make_unique<svc::Ext2Fs>(*f->sys, *f->cache);
    f->sys->spawnNormal(*f->proc, "mkfs",
                        [fs = f->fs.get()](kern::Thread &t)
                            -> sim::Task<void> {
                            co_await fs->mkfs(t);
                        });
    f->sys->engine().run();
    return f;
}

/** Run the ext2 sync episode against an SD-backed filesystem. */
double
sdEfficiency(wl::SweepMode sweep, bool k2_model,
             std::uint64_t file_bytes)
{
    auto &f = wl::warmFixture<SdFixture>(
        sweep, k2_model ? "k2-sd" : "linux-sd",
        [k2_model] { return makeSdFixture(k2_model); });
    const auto res =
        wl::runEpisodeWarm(*f.sys, *f.proc, "ext2-sd",
                           wl::ext2Sync(*f.fs, file_bytes));
    return res.mbPerJoule();
}

} // namespace

int
main(int argc, char **argv)
{
    const unsigned jobs = wl::parseJobsFlag(argc, argv);
    const wl::SweepMode sweep = wl::parseSweepFlag(argc, argv);

    wl::banner("Figure 6(b) variant: ext2 on flash (SD) instead of "
               "ramdisk");

    const std::uint64_t sizes[] = {1024, 256 * 1024, 1024 * 1024};
    const char *labels[] = {"1KB (emails)", "256KB (pictures)",
                            "1MB (short videos)"};

    wl::SweepRunner runner(jobs);
    std::vector<double> k2_sd(std::size(sizes));
    std::vector<double> lx_sd(std::size(sizes));
    std::vector<double> k2_ram(std::size(sizes));
    std::vector<double> lx_ram(std::size(sizes));
    for (std::size_t i = 0; i < std::size(sizes); ++i) {
        const std::uint64_t size = sizes[i];
        runner.submit([&k2_sd, i, size, sweep]() {
            k2_sd[i] = sdEfficiency(sweep, true, size);
        });
        runner.submit([&lx_sd, i, size, sweep]() {
            lx_sd[i] = sdEfficiency(sweep, false, size);
        });
        // Ramdisk references from the standard testbeds.
        runner.submit([&k2_ram, i, size, sweep]() {
            auto &tb = wl::warmK2(sweep, "k2");
            k2_ram[i] =
                wl::runEpisodeWarm(tb.sys(), tb.proc(), "ext2",
                                   wl::ext2Sync(tb.fs(), size))
                    .mbPerJoule();
        });
        runner.submit([&lx_ram, i, size, sweep]() {
            auto &tb = wl::warmLinux(sweep, "linux");
            lx_ram[i] =
                wl::runEpisodeWarm(tb.sys(), tb.proc(), "ext2",
                                   wl::ext2Sync(tb.fs(), size))
                    .mbPerJoule();
        });
    }
    runner.run();

    wl::Table table({"Single file size", "K2 MB/J (SD)",
                     "Linux MB/J (SD)", "K2/Linux (SD)",
                     "K2/Linux (ramdisk)"});
    for (std::size_t i = 0; i < std::size(sizes); ++i) {
        table.addRow({labels[i], wl::fmt(k2_sd[i], 2),
                      wl::fmt(lx_sd[i], 2),
                      wl::fmt(k2_sd[i] / lx_sd[i], 1) + "x",
                      wl::fmt(k2_ram[i] / lx_ram[i], 1) + "x"});
    }
    table.print();

    std::printf("\nOn flash, IO idle periods stretch each run; the "
                "strong core pays 25.2(+20) mW through them while the "
                "weak core pays 3.8(+1.5) mW, so K2's advantage "
                "matches or exceeds the ramdisk case -- the paper's "
                "own caveat about its ramdisk setup, quantified.\n");
    return 0;
}
