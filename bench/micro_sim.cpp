/**
 * @file
 * google-benchmark microbenchmarks of the simulator's own hot paths:
 * event dispatch, coroutine task spawn/await, buddy-allocator
 * operations, and TLB lookups. These bound how fast the paper's
 * experiments simulate (host-side performance, not modelled time).
 */

#include <benchmark/benchmark.h>

#include "sim/engine.h"
#include "sim/sync.h"
#include "soc/mmu.h"
#include "kern/buddy.h"

namespace {

using namespace k2;

void
BM_EngineEventDispatch(benchmark::State &state)
{
    sim::Engine eng;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        eng.after(sim::nsec(1), [&sink]() { ++sink; });
        eng.runOne();
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EngineEventDispatch);

sim::Task<void>
trivialTask(int *out)
{
    ++*out;
    co_return;
}

void
BM_TaskSpawnAndRun(benchmark::State &state)
{
    sim::Engine eng;
    int sink = 0;
    for (auto _ : state) {
        eng.spawn(trivialTask(&sink));
        eng.run();
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_TaskSpawnAndRun);

sim::Task<void>
chainedTask(sim::Engine &eng, int depth)
{
    if (depth > 0)
        co_await chainedTask(eng, depth - 1);
}

void
BM_TaskAwaitChain(benchmark::State &state)
{
    sim::Engine eng;
    for (auto _ : state) {
        eng.spawn(chainedTask(eng, 64));
        eng.run();
    }
}
BENCHMARK(BM_TaskAwaitChain);

void
BM_ChannelSendRecv(benchmark::State &state)
{
    sim::Engine eng;
    sim::Channel<int> chan(eng);
    for (auto _ : state) {
        chan.send(1);
        benchmark::DoNotOptimize(chan.tryRecv());
    }
}
BENCHMARK(BM_ChannelSendRecv);

void
BM_BuddyAllocFree(benchmark::State &state)
{
    kern::BuddyAllocator buddy("bench", 0, 16 * 4096);
    buddy.addFreeRange(kern::PageRange{0, 16 * 4096});
    const auto order = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        auto r = buddy.alloc(order, kern::Migrate::Movable);
        buddy.free(r->range.first);
    }
}
BENCHMARK(BM_BuddyAllocFree)->Arg(0)->Arg(4)->Arg(8);

void
BM_BuddyReclaimDonate(benchmark::State &state)
{
    kern::BuddyAllocator buddy("bench", 0, 16 * 4096);
    buddy.addFreeRange(kern::PageRange{0, 16 * 4096});
    for (auto _ : state) {
        auto res = buddy.reclaimRange(kern::PageRange{0, 4096});
        benchmark::DoNotOptimize(res.ok);
        buddy.addFreeRange(kern::PageRange{0, 4096});
    }
}
BENCHMARK(BM_BuddyReclaimDonate);

void
BM_TlbLookup(benchmark::State &state)
{
    soc::Tlb tlb(32);
    std::uint64_t tag = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(tlb.access(tag++ % 48));
}
BENCHMARK(BM_TlbLookup);

} // namespace

BENCHMARK_MAIN();
