/**
 * @file
 * google-benchmark microbenchmarks of the simulator's own hot paths:
 * event dispatch, coroutine task spawn/await, sleep/resume chains,
 * buddy-allocator operations, and TLB lookups. These bound how fast
 * the paper's experiments simulate (host-side performance, not
 * modelled time).
 *
 * This binary replaces global operator new/delete with counting
 * versions, so every engine benchmark reports an "allocs/op" counter:
 * heap allocations per iteration. The pooled event core is expected to
 * be allocation-free on the dispatch and sleep/resume paths; that is
 * asserted hard (abort) at the end of BM_SleepResume, not just
 * reported.
 */

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "sim/engine.h"
#include "sim/random.h"
#include "sim/sketch.h"
#include "sim/sync.h"
#include "snap/snapshot.h"
#include "soc/mmu.h"
#include "kern/buddy.h"
#include "kern/kernel.h"
#include "os/k2_system.h"
#include "os/messages.h"
#include "os/reliable_mail.h"
#include "os/replica.h"
#include "workloads/benchmarks.h"
#include "workloads/episode.h"
#include "workloads/fleet.h"
#include "workloads/testbed.h"

// ---------------------------------------------------------------------
// Allocation-counting hook: replaces the global allocation functions
// for this binary. Only the count of allocations matters (frees are
// not tracked); relaxed atomics keep the hook cheap.
// ---------------------------------------------------------------------

namespace {

std::atomic<std::uint64_t> g_allocCount{0};

std::uint64_t
allocCount()
{
    return g_allocCount.load(std::memory_order_relaxed);
}

void *
countedAlloc(std::size_t size)
{
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

} // namespace

void *
operator new(std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    void *p = std::aligned_alloc(static_cast<std::size_t>(align),
                                 (size + static_cast<std::size_t>(align) - 1) &
                                     ~(static_cast<std::size_t>(align) - 1));
    if (!p)
        throw std::bad_alloc();
    return p;
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace {

using namespace k2;

/** Attach an allocations-per-iteration counter to @p state. */
void
reportAllocs(benchmark::State &state, std::uint64_t before)
{
    const auto iters = static_cast<double>(state.iterations());
    state.counters["allocs/op"] = benchmark::Counter(
        static_cast<double>(allocCount() - before) /
        (iters > 0 ? iters : 1));
}

void
BM_EngineEventDispatch(benchmark::State &state)
{
    sim::Engine eng;
    std::uint64_t sink = 0;
    // Warm the pool and queue storage so the timed region measures
    // steady-state behaviour.
    eng.after(sim::nsec(1), [&sink]() { ++sink; });
    eng.runOne();
    const std::uint64_t allocs0 = allocCount();
    for (auto _ : state) {
        eng.after(sim::nsec(1), [&sink]() { ++sink; });
        eng.runOne();
    }
    reportAllocs(state, allocs0);
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EngineEventDispatch);

sim::Task<void>
trivialTask(int *out)
{
    ++*out;
    co_return;
}

void
BM_TaskSpawnAndRun(benchmark::State &state)
{
    sim::Engine eng;
    int sink = 0;
    eng.spawn(trivialTask(&sink));
    eng.run();
    const std::uint64_t allocs0 = allocCount();
    for (auto _ : state) {
        eng.spawn(trivialTask(&sink));
        eng.run();
    }
    reportAllocs(state, allocs0);
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_TaskSpawnAndRun);

sim::Task<void>
sleepLoop(sim::Engine &eng, const bool *stop, std::uint64_t *laps)
{
    while (!*stop) {
        co_await eng.sleep(sim::nsec(1));
        ++*laps;
    }
}

/**
 * The dominant operation in every experiment: an already-running
 * coroutine sleeping and being resumed by the event loop. Each
 * iteration is one sleep -> dispatch -> resume cycle; the pooled
 * engine must do this with zero heap allocations (hard-asserted
 * below).
 */
void
BM_SleepResume(benchmark::State &state)
{
    sim::Engine eng;
    bool stop = false;
    std::uint64_t laps = 0;
    eng.spawn(sleepLoop(eng, &stop, &laps));
    // Start the coroutine; it parks on its first sleep.
    eng.runOne();
    const std::uint64_t allocs0 = allocCount();
    for (auto _ : state)
        eng.runOne(); // one sleep/resume cycle
    reportAllocs(state, allocs0);

    // Hard assertion: the sleep/resume fast path is allocation-free.
    const std::uint64_t check0 = allocCount();
    for (int i = 0; i < 1024; ++i)
        eng.runOne();
    const std::uint64_t leaked = allocCount() - check0;
    if (leaked != 0) {
        std::fprintf(stderr,
                     "FATAL: sleep/resume path performed %llu heap "
                     "allocations over 1024 events (expected 0)\n",
                     static_cast<unsigned long long>(leaked));
        std::abort();
    }

    stop = true;
    eng.runOne(); // let the coroutine observe stop and finish
    benchmark::DoNotOptimize(laps);
}
BENCHMARK(BM_SleepResume);

/** Timer churn as device models do it: arm, cancel, re-arm. */
void
BM_TimerArmCancel(benchmark::State &state)
{
    sim::Engine eng;
    std::uint64_t sink = 0;
    sim::EventId pending = eng.after(sim::usec(5), [&sink]() { ++sink; });
    const std::uint64_t allocs0 = allocCount();
    for (auto _ : state) {
        eng.cancel(pending);
        pending = eng.after(sim::usec(5), [&sink]() { ++sink; });
    }
    reportAllocs(state, allocs0);
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_TimerArmCancel);

sim::Task<void>
chainedTask(sim::Engine &eng, int depth)
{
    if (depth > 0)
        co_await chainedTask(eng, depth - 1);
}

void
BM_TaskAwaitChain(benchmark::State &state)
{
    sim::Engine eng;
    for (auto _ : state) {
        eng.spawn(chainedTask(eng, 64));
        eng.run();
    }
}
BENCHMARK(BM_TaskAwaitChain);

void
BM_ChannelSendRecv(benchmark::State &state)
{
    sim::Engine eng;
    sim::Channel<int> chan(eng);
    for (auto _ : state) {
        chan.send(1);
        benchmark::DoNotOptimize(chan.tryRecv());
    }
}
BENCHMARK(BM_ChannelSendRecv);

void
BM_BuddyAllocFree(benchmark::State &state)
{
    kern::BuddyAllocator buddy("bench", 0, 16 * 4096);
    buddy.addFreeRange(kern::PageRange{0, 16 * 4096});
    const auto order = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        auto r = buddy.alloc(order, kern::Migrate::Movable);
        buddy.free(r->range.first);
    }
}
BENCHMARK(BM_BuddyAllocFree)->Arg(0)->Arg(4)->Arg(8);

void
BM_BuddyReclaimDonate(benchmark::State &state)
{
    kern::BuddyAllocator buddy("bench", 0, 16 * 4096);
    buddy.addFreeRange(kern::PageRange{0, 16 * 4096});
    for (auto _ : state) {
        auto res = buddy.reclaimRange(kern::PageRange{0, 4096});
        benchmark::DoNotOptimize(res.ok);
        buddy.addFreeRange(kern::PageRange{0, 4096});
    }
}
BENCHMARK(BM_BuddyReclaimDonate);

/**
 * Host-side cost of one ARQ round trip on the recovery plane: a
 * tracked send through the reliable-mail shim (stamp, inflight entry,
 * retransmit timer), hardware mailbox delivery, the receiver's ISR and
 * ack mail, and the sender's ack handling / timer cancellation --
 * including the full event drain back to quiescence.
 */
void
BM_ReliableMailRoundtrip(benchmark::State &state)
{
    sim::Engine eng;
    soc::SocConfig cfg = soc::omap4Config();
    cfg.costs.inactiveTimeout = 0;
    soc::Soc soc(eng, cfg);
    kern::Kernel main_k(soc, soc::kStrongDomain, "main");
    kern::Kernel shadow_k(soc, soc::kWeakDomain, "shadow");
    main_k.boot();
    shadow_k.boot();

    os::ReliableMail mail({&main_k, &shadow_k}, {});
    mail.install();
    std::uint64_t delivered = 0;
    const auto attach = [&mail, &delivered](kern::Kernel &k,
                                            os::KernelIdx idx) {
        k.setMailHandler(
            [&mail, &delivered, idx](soc::Mail m, soc::Core &core)
                -> sim::Task<void> {
                if (co_await mail.onReceive(idx, m, core))
                    ++delivered;
            });
    };
    attach(main_k, 0);
    attach(shadow_k, 1);

    const std::uint32_t word =
        os::encodeMessage(os::MsgType::GetExclusive, 42, 0);
    main_k.sendMail(soc::kWeakDomain, word);
    eng.run();
    for (auto _ : state) {
        main_k.sendMail(soc::kWeakDomain, word);
        eng.run();
    }
    if (delivered !=
        static_cast<std::uint64_t>(state.iterations()) + 1) {
        std::fprintf(stderr,
                     "FATAL: reliable mail delivered %llu of %llu\n",
                     static_cast<unsigned long long>(delivered),
                     static_cast<unsigned long long>(
                         state.iterations() + 1));
        std::abort();
    }
    benchmark::DoNotOptimize(delivered);
}
BENCHMARK(BM_ReliableMailRoundtrip);

/**
 * Host-side cost of one replicated-shadow vote round at N=3: the
 * coordinator fans a tracked ReplicaReq out to all three replicas,
 * each answers with an untracked digest ballot, the round closes on
 * the vote timer, and the event queue drains back to quiescence.
 * Bounds how much --replicas=3 slows a sweep cell per shadowed
 * request (host time; the modelled cost is the ablation's job).
 */
void
BM_ReplicaVoteRoundtrip(benchmark::State &state)
{
    os::K2Config cfg;
    cfg.replicas = 3;
    auto tb = wl::Testbed::makeK2(cfg);
    tb.engine().run();
    os::ReplicaGroup &group = *tb.k2()->replicaGroup();
    for (auto _ : state) {
        group.noteRequest();
        tb.engine().run();
    }
    const auto iters = static_cast<std::uint64_t>(state.iterations());
    if (group.requests() != iters ||
        group.votesReceived() != 3 * iters || group.votesAbsent() != 0) {
        std::fprintf(stderr,
                     "FATAL: vote rounds broke: %llu reqs, %llu votes, "
                     "%llu absent\n",
                     static_cast<unsigned long long>(group.requests()),
                     static_cast<unsigned long long>(
                         group.votesReceived()),
                     static_cast<unsigned long long>(
                         group.votesAbsent()));
        std::abort();
    }
    benchmark::DoNotOptimize(group.votesReceived());
}
BENCHMARK(BM_ReplicaVoteRoundtrip);

/**
 * Host-side cost of one DSM write fault round-trip (write ping-pong
 * between the kernels, so every iteration takes the full fault path:
 * fault entry, protocol messages, remote service, grant, exit). One
 * instance per coherence protocol bounds how the zoo members differ
 * in *simulation* throughput -- the modelled latencies are
 * table5_dsm_fault's job.
 */
void
dsmFaultLoop(benchmark::State &state, os::coherence::ProtocolKind proto)
{
    os::K2Config cfg;
    cfg.soc.costs.inactiveTimeout = 0;
    cfg.dsmProtocol = proto;
    os::K2System sys(cfg);
    auto &proc = sys.createProcess("bench");

    std::uint64_t completed = 0;
    int round = 0;
    for (auto _ : state) {
        kern::Kernel &kern = (round++ % 2 == 0) ? sys.shadowKernel()
                                                : sys.mainKernel();
        kern.spawnThread(&proc, "f", kern::ThreadKind::Normal,
                         [&](kern::Thread &t) -> sim::Task<void> {
                             co_await sys.dsm().access(
                                 t.kernel(), t.core(), 1,
                                 os::Access::Write);
                             ++completed;
                         });
        sys.ownedEngine().run();
    }
    if (completed != static_cast<std::uint64_t>(state.iterations())) {
        std::fprintf(stderr, "FATAL: %s: %llu of %llu faults completed\n",
                     os::coherence::protocolName(proto),
                     static_cast<unsigned long long>(completed),
                     static_cast<unsigned long long>(state.iterations()));
        std::abort();
    }
    benchmark::DoNotOptimize(completed);
}

#define K2_DSM_FAULT_BENCH(name, kind)                                  \
    void BM_DsmFault_##name(benchmark::State &state)                    \
    {                                                                   \
        dsmFaultLoop(state, os::coherence::ProtocolKind::kind);         \
    }                                                                   \
    BENCHMARK(BM_DsmFault_##name)

K2_DSM_FAULT_BENCH(2state, TwoState);
K2_DSM_FAULT_BENCH(3state, ThreeState);
K2_DSM_FAULT_BENCH(mesi, Mesi);
K2_DSM_FAULT_BENCH(moesi, Moesi);
K2_DSM_FAULT_BENCH(rac, Rac);

#undef K2_DSM_FAULT_BENCH

void
BM_TlbLookup(benchmark::State &state)
{
    soc::Tlb tlb(32);
    std::uint64_t tag = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(tlb.access(tag++ % 48));
}
BENCHMARK(BM_TlbLookup);

// ---------------------------------------------------------------------
// Warm-state snapshot/fork (src/snap/). BM_TestbedBoot is the cost the
// boot-once sweep mode amortises away; BM_SnapshotFork is what each
// warm cell pays instead. The fork : boot ratio is the headline number
// for the warm sweep mode (target: fork <= 10% of boot).
// ---------------------------------------------------------------------

/** Full cold boot: two kernels, DSM regions, mkfs on the ramdisk. */
void
BM_TestbedBoot(benchmark::State &state)
{
    for (auto _ : state) {
        auto tb = wl::Testbed::makeK2();
        tb.engine().run();
        benchmark::DoNotOptimize(tb.engine().now());
    }
}
BENCHMARK(BM_TestbedBoot)->Unit(benchmark::kMillisecond);

/**
 * Boot plus one discarded warm-up episode: the full provisioning cost
 * a cold sweep cell pays before its measured episode, and the
 * denominator for the fork headline (BM_SnapshotFork <= 10% of this).
 * The warm-up is the fig. 6b filesystem workload at its middle size
 * (256 KB files), the kind of cell the warm pool serves.
 */
void
BM_TestbedBootWarm(benchmark::State &state)
{
    for (auto _ : state) {
        auto tb = wl::Testbed::makeK2();
        tb.engine().run();
        (void)wl::runEpisodeWarm(tb.sys(), tb.proc(), "ext2",
                                 wl::ext2Sync(tb.fs(), 256 * 1024), 0);
        benchmark::DoNotOptimize(tb.engine().now());
    }
}
BENCHMARK(BM_TestbedBootWarm)->Unit(benchmark::kMillisecond);

/** Serialize a quiesced testbed into an in-memory image. */
void
BM_SnapshotCapture(benchmark::State &state)
{
    auto tb = wl::Testbed::makeK2();
    tb.engine().run();
    std::uint64_t bytes = 0;
    for (auto _ : state) {
        snap::Snapshot image = snap::Snapshot::of(tb);
        bytes = image.sizeBytes();
        benchmark::DoNotOptimize(image);
    }
    state.counters["image_bytes"] =
        benchmark::Counter(static_cast<double>(bytes));
}
BENCHMARK(BM_SnapshotCapture)->Unit(benchmark::kMillisecond);

/**
 * Rewind a dirty testbed to its post-boot image: the per-cell cost of
 * the warm sweep path. Each iteration dirties the instance with a DMA
 * episode (untimed) so the restore always starts from post-episode
 * state, exactly like a sweep cell.
 */
void
BM_SnapshotFork(benchmark::State &state)
{
    auto tb = wl::Testbed::makeK2();
    tb.engine().run();
    const snap::Snapshot image = snap::Snapshot::of(tb);
    for (auto _ : state) {
        state.PauseTiming();
        (void)wl::runEpisodeWarm(tb.sys(), tb.proc(), "dma",
                                 wl::dmaCopy(tb.dma(), 4096,
                                             64 * 1024));
        state.ResumeTiming();
        image.restore(tb);
        benchmark::DoNotOptimize(tb.engine().now());
    }
}
BENCHMARK(BM_SnapshotFork)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------
// Fleet hot path. BM_FleetDeviceHour is the fleet workload's headline:
// synthesising one device's full traffic window through the quantile
// sketches (the calibration cost is paid once per cell and amortises
// away). items_per_second reports simulated device-hours per host
// second -- the >= 10k dh/s acceptance bar lives here. BM_SketchMerge
// is the per-lane reduction cost at the sweep barrier.
// ---------------------------------------------------------------------

/** Synthesize one device-day through the streaming sketches. */
void
BM_FleetDeviceHour(benchmark::State &state)
{
    const wl::TrafficMix &mix = *wl::findMix("default");
    wl::Calibration cal;
    // Canned calibration in the measured ballpark; the bench must not
    // depend on testbed boot so it isolates the synthesis hot path.
    for (auto &m : cal.kinds)
        m = {25000.0, 0.08, 1800.0, 0.01};
    const double hours = 24.0;
    wl::FleetStats stats;
    std::uint64_t id = 0;
    for (auto _ : state) {
        wl::synthesizeDevice(mix, cal, 42, id++, hours, stats);
        benchmark::DoNotOptimize(stats.bytes);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * hours));
    state.counters["episodes"] = benchmark::Counter(
        static_cast<double>(stats.episodes[0] + stats.episodes[1] +
                            stats.episodes[2]));
}
BENCHMARK(BM_FleetDeviceHour);

/** Fold one populated lane partial into the fleet total. */
void
BM_SketchMerge(benchmark::State &state)
{
    sim::QuantileSketch shard;
    sim::Rng rng(7);
    for (int i = 0; i < 4096; ++i)
        shard.sample(rng.uniform() * 1e6);
    sim::QuantileSketch total;
    for (auto _ : state) {
        total.merge(shard);
        benchmark::DoNotOptimize(total.count());
    }
}
BENCHMARK(BM_SketchMerge);

} // namespace

// Records *this repo's* CMAKE_BUILD_TYPE in the JSON context.
// google-benchmark's own "library_build_type" reflects how the system
// libbenchmark package was compiled and can read "debug" even for a
// Release build of k2; k2_build_type is what scripts/run_bench.sh and
// scripts/compare_bench.py trust.
int
main(int argc, char **argv)
{
#ifdef K2_BUILD_TYPE
    benchmark::AddCustomContext("k2_build_type", K2_BUILD_TYPE);
#endif
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
