/**
 * @file
 * §9.2 standby estimate: "we estimate that K2 will extend the reported
 * device standby time by 59%, from 5.9 days to 9.4 days."
 *
 * Method: measure the energy of one background email-sync episode
 * (UDP fetch + filesystem write, per Xu et al. [41]) on both systems;
 * the measured K2/Linux energy ratio scales the sync share of the
 * device's standby drain (see workloads/standby.h for the model and
 * its calibration against [41]'s 5.9 days).
 */

#include <cstdio>

#include "workloads/benchmarks.h"
#include "workloads/report.h"
#include "workloads/standby.h"
#include "workloads/testbed.h"

int
main()
{
    using namespace k2;

    wl::banner("Standby extension estimate (§9.2)");

    constexpr std::uint64_t kMailBytes = 64 * 1024;

    auto k2tb = wl::Testbed::makeK2();
    auto lxtb = wl::Testbed::makeLinux();
    const auto k2res = wl::runEpisodeWarm(
        k2tb.sys(), k2tb.proc(), "email",
        wl::emailSync(k2tb.udp(), k2tb.fs(), kMailBytes, 1));
    const auto lxres = wl::runEpisodeWarm(
        lxtb.sys(), lxtb.proc(), "email",
        wl::emailSync(lxtb.udp(), lxtb.fs(), kMailBytes, 1));

    const double ratio = k2res.energyUj / lxres.energyUj;

    wl::StandbyModel model;
    const double linux_days = model.standbyDays(1.0);
    const double k2_days = model.standbyDays(ratio);

    wl::Table table({"System", "sync episode (mJ)", "vs Linux",
                     "standby (days)"});
    table.addRow({"Linux", wl::fmt(lxres.energyUj / 1000.0, 1), "1.00",
                  wl::fmt(linux_days, 1)});
    table.addRow({"K2", wl::fmt(k2res.energyUj / 1000.0, 1),
                  wl::fmt(ratio, 2), wl::fmt(k2_days, 1)});
    table.print();

    std::printf("\nK2 extends standby by %.0f%% (paper: +59%%, 5.9 -> "
                "9.4 days)\n"
                "model: %.0f J battery; baseline drain %.1f mW of "
                "which %.0f%% is sync OS execution (%.1f mW sleep + "
                "%.1f mW sync)\n",
                (k2_days / linux_days - 1.0) * 100.0, model.capacityJ,
                model.baselineDrainMw(),
                model.syncShareOfDrain * 100.0, model.sleepMw(),
                model.linuxSyncMw());
    return 0;
}
