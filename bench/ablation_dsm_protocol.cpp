/**
 * @file
 * §6.3 "An alternative design": the two-state DSM protocol vs. a
 * three-state (MSI, read-sharing) protocol on this platform.
 *
 * The three-state protocol needs the MMU to distinguish reads from
 * writes; on the Cortex-M3's cascaded MMU that read tracking thrashes
 * the ten-entry first-level TLB, so every weak-kernel fault pays a
 * large penalty. Result: two-state wins for the write-heavy sharing
 * typical of driver state, while read-sharing only pays off for
 * read-mostly access mixes -- and even then the weak side's penalty
 * eats the gain.
 */

#include <cstdio>
#include <vector>

#include "os/k2_system.h"
#include "workloads/report.h"
#include "workloads/sweep.h"
#include "workloads/warm.h"

namespace {

using namespace k2;
using kern::Thread;
using kern::ThreadKind;
using sim::Task;

/**
 * Alternating access rounds between the kernels on one page.
 * @param write_every Every Nth round is a write; the rest are reads.
 */
double
runMixUs(wl::SweepMode sweep, os::Dsm::Protocol proto, int write_every,
         int rounds)
{
    const bool three = proto == os::Dsm::Protocol::ThreeState;
    auto &sys = wl::warmFixture<os::K2System>(
        sweep, three ? "k2-3state" : "k2-2state", [proto] {
            os::K2Config cfg;
            cfg.dsmProtocol = proto;
            cfg.soc.costs.inactiveTimeout = 0;
            return std::make_unique<os::K2System>(cfg);
        });
    auto &proc = sys.createProcess("bench");

    sim::Duration total = 0;
    for (int round = 0; round < rounds; ++round) {
        kern::Kernel &kern = (round % 2 == 0) ? sys.shadowKernel()
                                              : sys.mainKernel();
        const os::Access rw = (round % write_every == 0)
            ? os::Access::Write : os::Access::Read;
        kern.spawnThread(
            &proc, "touch", ThreadKind::Normal,
            [&, rw](Thread &t) -> Task<void> {
                const sim::Time t0 = sys.engine().now();
                co_await sys.dsm().access(t.kernel(), t.core(), 2, rw);
                total += sys.engine().now() - t0;
            });
        sys.engine().run();
    }
    return sim::toUsec(total) / rounds;
}

} // namespace

int
main(int argc, char **argv)
{
    const unsigned jobs = wl::parseJobsFlag(argc, argv);
    const wl::SweepMode sweep = wl::parseSweepFlag(argc, argv);

    wl::banner("Ablation (§6.3): two-state vs three-state DSM protocol");

    struct Mix { const char *label; int write_every; };
    const Mix mixes[] = {
        {"write-heavy (every access writes)", 1},
        {"mixed (1 write per 4 accesses)", 4},
        {"read-mostly (1 write per 16)", 16},
    };

    constexpr int kRounds = 64;

    // One cell per (mix, protocol): each builds its own K2System.
    wl::SweepRunner runner(jobs);
    std::vector<double> two(std::size(mixes));
    std::vector<double> three(std::size(mixes));
    for (std::size_t i = 0; i < std::size(mixes); ++i) {
        const int write_every = mixes[i].write_every;
        runner.submit([&two, i, write_every, sweep]() {
            two[i] = runMixUs(sweep, os::Dsm::Protocol::TwoState,
                              write_every, kRounds);
        });
        runner.submit([&three, i, write_every, sweep]() {
            three[i] = runMixUs(sweep, os::Dsm::Protocol::ThreeState,
                                write_every, kRounds);
        });
    }
    runner.run();

    wl::Table table({"Access mix", "two-state us/access",
                     "three-state us/access", "winner"});
    for (std::size_t i = 0; i < std::size(mixes); ++i) {
        table.addRow({mixes[i].label, wl::fmt(two[i], 1),
                      wl::fmt(three[i], 1),
                      two[i] <= three[i] ? "two-state" : "three-state"});
    }
    table.print();

    std::printf("\npaper: the two-state protocol is chosen because "
                "read tracking on the M3's cascaded MMU causes severe "
                "TLB thrashing; read-only sharing is not worth it on "
                "this platform\n");
    return 0;
}
