/**
 * @file
 * Ablation (§6.3 + §11): the DSM coherence protocol zoo.
 *
 * The paper picks a two-state migratory protocol and defends the
 * choice qualitatively: read tracking on the Cortex-M3's cascaded MMU
 * thrashes its ten-entry first-level TLB, so read-sharing protocols
 * tax every weak-kernel fault. This bench quantifies the trade-off
 * across the whole protocol zoo (os/coherence/): the paper's two-state
 * scheme, the three-state MSI alternative, directory MESI/MOESI with
 * sharer bitmaps and owner forwarding, and a log-based release-acquire
 * protocol (RAC) -- crossed with canonical sharing patterns and with
 * the domain count (§11's N-domain extension, N = 2..4).
 *
 * Every (protocol, pattern, domains) cell runs the same deterministic
 * access schedule on its own N-domain fixture and reports the
 * Table-5-style fault phase split (entry / protocol / communication /
 * service / exit), messages per fault, and the SoC energy drawn.
 *
 *   ablation_dsm_protocol [--jobs=N] [--sweep=warm|cold] [--dsm=PROTO]
 *
 * --dsm restricts the sweep to one protocol (default: all five).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "os/coherence/protocol.h"
#include "os/ndsm.h"
#include "workloads/report.h"
#include "workloads/sweep.h"
#include "workloads/warm.h"

namespace {

using namespace k2;
using kern::Thread;
using kern::ThreadKind;
using sim::Task;

/** An N-domain SoC + kernels + NDsm under one protocol. */
struct Fixture
{
    sim::Engine eng;
    std::unique_ptr<soc::Soc> soc;
    std::vector<std::unique_ptr<kern::Kernel>> kernels;
    std::unique_ptr<os::NDsm> ndsm;
    std::unique_ptr<kern::Process> proc;

    Fixture(std::size_t domains, os::coherence::ProtocolKind proto)
    {
        soc::SocConfig cfg = (domains >= 3) ? soc::threeDomainConfig()
                                            : soc::omap4Config();
        // §11: "more, but not many" domains -- grow past three by
        // cloning the weak (Cortex-M3) domain spec.
        while (cfg.domains.size() < domains) {
            soc::DomainSpec spec = cfg.domains[soc::kWeakDomain];
            spec.name =
                "weak" + std::to_string(cfg.domains.size() - 1);
            cfg.domains.push_back(spec);
        }
        cfg.costs.inactiveTimeout = 0;
        soc = std::make_unique<soc::Soc>(eng, cfg);
        std::vector<kern::Kernel *> raw;
        for (soc::DomainId d = 0; d < domains; ++d) {
            kernels.push_back(std::make_unique<kern::Kernel>(
                *soc, d, "k" + std::to_string(d)));
            kernels.back()->boot();
            raw.push_back(kernels.back().get());
        }
        ndsm = std::make_unique<os::NDsm>(*soc, raw, 4096, proto);
        for (std::size_t i = 0; i < kernels.size(); ++i) {
            kernels[i]->setMailHandler(
                [this, i](soc::Mail m, soc::Core &c) {
                    return ndsm->handleMail(i, m, c);
                });
        }
        proc = std::make_unique<kern::Process>(1, "bench");
    }

    sim::Engine &engine() { return eng; }

    void
    snapState(snap::Io &io)
    {
        eng.snapState(io);
        soc->snapState(io);
        for (auto &k : kernels)
            k->snapState(io);
        ndsm->snapState(io);
        proc->snapState(io);
    }

    void
    touch(std::size_t k, std::uint64_t page, os::Access rw)
    {
        kernels[k]->spawnThread(
            proc.get(), "t", ThreadKind::Normal,
            [this, k, page, rw](Thread &t) -> Task<void> {
                co_await ndsm->access(t.kernel(), t.core(), page, rw);
            });
        eng.run();
    }
};

/** One (kernel, page, read|write) step of a sharing pattern. */
struct Step
{
    std::size_t kernel;
    std::uint64_t page;
    os::Access rw;
};

struct Pattern
{
    const char *name;
    std::vector<Step> (*steps)(std::size_t n);
};

constexpr int kRounds = 24;

/** All kernels write the same small page set: invalidation storms.
 *  Five pages -- coprime with every domain count swept -- so the
 *  kernel and page cycles never align into private working sets. */
std::vector<Step>
writeHeavy(std::size_t n)
{
    std::vector<Step> s;
    for (int r = 0; r < kRounds; ++r)
        s.push_back({static_cast<std::size_t>(r) % n,
                     static_cast<std::uint64_t>(r % 5),
                     os::Access::Write});
    return s;
}

/** One write per eight accesses; reads rotate over all kernels. */
std::vector<Step>
readMostly(std::size_t n)
{
    std::vector<Step> s;
    for (int r = 0; r < kRounds; ++r)
        s.push_back({static_cast<std::size_t>(r) % n, 1,
                     r % 8 == 0 ? os::Access::Write
                                : os::Access::Read});
    return s;
}

/** Each kernel in turn reads then updates one page (lock-protected
 *  shared object: the classic migratory pattern). */
std::vector<Step>
migratory(std::size_t n)
{
    std::vector<Step> s;
    for (int r = 0; r < kRounds; ++r) {
        const std::size_t k = static_cast<std::size_t>(r) % n;
        s.push_back({k, 2, os::Access::Read});
        s.push_back({k, 2, os::Access::Write});
    }
    return s;
}

/** Kernel 0 produces, every other kernel consumes. */
std::vector<Step>
producerConsumer(std::size_t n)
{
    std::vector<Step> s;
    for (int r = 0; r < kRounds; ++r) {
        s.push_back({0, 3, os::Access::Write});
        for (std::size_t k = 1; k < n; ++k)
            s.push_back({k, 3, os::Access::Read});
    }
    return s;
}

const Pattern kPatterns[] = {
    {"write-heavy", writeHeavy},
    {"read-mostly", readMostly},
    {"migratory", migratory},
    {"producer-consumer", producerConsumer},
};

/** One sweep cell's results. */
struct Row
{
    std::uint64_t faults = 0;
    double fault_us = 0;   //!< Mean end-to-end fault latency.
    double entry_us = 0;   //!< Table-5 phase means, over all faults.
    double proto_us = 0;
    double comm_us = 0;
    double service_us = 0;
    double exit_us = 0;
    double msgs_per_fault = 0;
    double energy_uj = 0;  //!< SoC energy over the pattern run.
};

void
runCell(wl::SweepMode sweep, os::coherence::ProtocolKind proto,
        const Pattern &pattern, std::size_t domains, Row &out)
{
    // Cells that share (protocol, domains) share a warm master; each
    // restores to the post-boot image before running its pattern.
    const std::string key =
        std::string("nd:") + os::coherence::protocolName(proto) + ":" +
        std::to_string(domains);
    auto &fx = wl::warmFixture<Fixture>(
        sweep, key, [domains, proto] {
            return std::make_unique<Fixture>(domains, proto);
        });

    const std::uint64_t msgs0 = fx.ndsm->messagesSent();
    const soc::EnergyMeter::Snapshot e0 = fx.soc->meter().snapshot();
    for (const Step &st : pattern.steps(domains))
        fx.touch(st.kernel, st.page, st.rw);
    out.energy_uj = e0.totalUj(fx.soc->meter());

    double total = 0, entry = 0, proto_t = 0, comm = 0, service = 0,
           exit_t = 0;
    for (std::size_t k = 0; k < domains; ++k) {
        const os::NDsm::Stats &st = fx.ndsm->kernelStats(k);
        out.faults += st.faults.value();
        total += st.totalUs.sum();
        entry += st.entryUs.sum();
        proto_t += st.protocolUs.sum();
        comm += st.commUs.sum();
        service += st.serviceUs.sum();
        exit_t += st.exitUs.sum();
    }
    if (out.faults) {
        const double f = static_cast<double>(out.faults);
        out.fault_us = total / f;
        out.entry_us = entry / f;
        out.proto_us = proto_t / f;
        out.comm_us = comm / f;
        out.service_us = service / f;
        out.exit_us = exit_t / f;
        out.msgs_per_fault =
            static_cast<double>(fx.ndsm->messagesSent() - msgs0) / f;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const unsigned jobs = wl::parseJobsFlag(argc, argv);
    const wl::SweepMode sweep = wl::parseSweepFlag(argc, argv);
    auto only = os::coherence::ProtocolKind::TwoState;
    const bool filtered = wl::parseDsmFlag(argc, argv, only);

    wl::banner("Ablation (§6.3/§11): DSM protocol zoo x sharing "
               "pattern x domains");

    std::vector<os::coherence::ProtocolKind> protos;
    if (filtered)
        protos.push_back(only);
    else
        for (auto p : os::coherence::allProtocols())
            protos.push_back(p);
    const std::size_t domain_counts[] = {2, 3, 4};

    // One cell per (protocol, pattern, domains) triple.
    wl::SweepRunner runner(jobs);
    std::vector<Row> rows(protos.size() * std::size(kPatterns) *
                          std::size(domain_counts));
    std::size_t cell = 0;
    for (auto proto : protos) {
        for (const Pattern &pattern : kPatterns) {
            for (std::size_t n : domain_counts) {
                Row &slot = rows[cell++];
                runner.submit([&slot, proto, &pattern, n, sweep]() {
                    runCell(sweep, proto, pattern, n, slot);
                });
            }
        }
    }
    runner.run();

    wl::Table table({"Protocol", "Pattern", "N", "faults", "fault us",
                     "entry", "proto", "comm", "svc", "exit",
                     "msg/fault", "energy uJ"});
    cell = 0;
    for (auto proto : protos) {
        for (const Pattern &pattern : kPatterns) {
            for (std::size_t n : domain_counts) {
                const Row &r = rows[cell++];
                table.addRow({os::coherence::protocolName(proto),
                              pattern.name, std::to_string(n),
                              std::to_string(r.faults),
                              wl::fmt(r.fault_us, 1),
                              wl::fmt(r.entry_us, 1),
                              wl::fmt(r.proto_us, 1),
                              wl::fmt(r.comm_us, 1),
                              wl::fmt(r.service_us, 1),
                              wl::fmt(r.exit_us, 1),
                              wl::fmt(r.msgs_per_fault, 2),
                              wl::fmt(r.energy_uj, 1)});
            }
        }
    }
    table.print();

    std::printf(
        "\npaper: two-state wins the migratory/write-heavy sharing "
        "typical of driver state because weak-kernel read tracking "
        "(three-state and the directory protocols) thrashes the M3's "
        "cascaded MMU; read-sharing only pays off for read-mostly and "
        "producer-consumer mixes, and RAC trades fault latency for "
        "log-drain cost at acquires\n");
    return 0;
}
