/**
 * @file
 * §9.3 contrast experiment: what happens if the page allocator is made
 * a *shadowed* service instead of an independent one.
 *
 * Paper: "The contention between coherence domains is very high,
 * incurring four to five DSM page faults in every allocation, leading
 * to a 200x slowdown."
 *
 * Method: both kernels allocate and free pages concurrently (the
 * contended case the paper describes); we report the mean *allocation*
 * latency seen by the main kernel under each design.
 */

#include <cstdio>

#include "baseline/shared_alloc_system.h"
#include "workloads/report.h"
#include "workloads/sweep.h"
#include "workloads/warm.h"

namespace {

using namespace k2;
using kern::Thread;
using kern::ThreadKind;
using sim::Task;

struct Outcome
{
    double mainAllocUs;
    double shadowAllocUs;
    double faultsPerOp;
};

template <typename System>
Outcome
contendedAlloc(System &sys, int rounds)
{
    auto &proc = sys.createProcess("bench");
    sim::Duration main_total = 0;
    sim::Duration shadow_total = 0;
    std::uint64_t ops = 0;

    auto hammer = [&](kern::Kernel &kern,
                      sim::Duration *bucket) -> void {
        kern.spawnThread(
            &proc, "alloc", ThreadKind::Normal,
            [&sys, bucket, rounds, &ops](Thread &t) -> Task<void> {
                for (int i = 0; i < rounds; ++i) {
                    const sim::Time t0 = sys.engine().now();
                    auto r = co_await sys.allocPages(t, 0);
                    *bucket += sys.engine().now() - t0;
                    ++ops;
                    K2_ASSERT(!r.empty());
                    co_await sys.freePages(t, r);
                    // Think time between allocations so the two
                    // kernels' requests interleave ("with allocation
                    // and free operations interleaved in practice",
                    // §9.3) -- the worst case for a shadowed
                    // allocator.
                    co_await t.sleep(sim::usec(120));
                }
            });
    };
    hammer(sys.mainKernel(), &main_total);
    hammer(sys.shadowKernel(), &shadow_total);
    sys.engine().run();

    const std::uint64_t faults =
        sys.dsm().faultStats(0).faults.value() +
        sys.dsm().faultStats(1).faults.value();
    return Outcome{sim::toUsec(main_total) / rounds,
                   sim::toUsec(shadow_total) / rounds,
                   static_cast<double>(faults) /
                       static_cast<double>(ops)};
}

} // namespace

int
main(int argc, char **argv)
{
    const unsigned jobs = wl::parseJobsFlag(argc, argv);
    const wl::SweepMode sweep = wl::parseSweepFlag(argc, argv);

    wl::banner("Ablation (§9.3): page allocator as a shadowed service");

    constexpr int kRounds = 50;
    Outcome sh{}, in{};

    wl::SweepRunner runner(jobs);
    runner.submit([&sh, sweep]() {
        auto &shared = wl::warmFixture<baseline::SharedAllocSystem>(
            sweep, "shared-alloc", [] {
                os::K2Config cfg;
                cfg.soc.costs.inactiveTimeout = 0;
                return std::make_unique<baseline::SharedAllocSystem>(
                    cfg);
            });
        sh = contendedAlloc(shared, kRounds);
    });
    runner.submit([&in, sweep]() {
        auto &independent = wl::warmFixture<os::K2System>(
            sweep, "k2-nogate", [] {
                os::K2Config cfg;
                cfg.soc.costs.inactiveTimeout = 0;
                return std::make_unique<os::K2System>(cfg);
            });
        in = contendedAlloc(independent, kRounds);
    });
    runner.run();

    wl::Table table({"Design", "Main alloc (us)", "Shadow alloc (us)",
                     "DSM faults/op", "Main slowdown"});
    table.addRow({"independent instances (K2)", wl::fmt(in.mainAllocUs, 1),
                  wl::fmt(in.shadowAllocUs, 1),
                  wl::fmt(in.faultsPerOp, 1), "1x"});
    table.addRow({"shadowed allocator", wl::fmt(sh.mainAllocUs, 1),
                  wl::fmt(sh.shadowAllocUs, 1),
                  wl::fmt(sh.faultsPerOp, 1),
                  wl::fmt(sh.mainAllocUs / in.mainAllocUs, 0) + "x"});
    table.print();

    std::printf("\npaper: 4-5 DSM faults per allocation, ~200x "
                "slowdown (plus frequent OS lockups, which a "
                "deterministic simulation cannot reproduce)\n");
    return 0;
}
