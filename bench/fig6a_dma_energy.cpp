/**
 * @file
 * Figure 6(a): energy efficiency of the DMA driver benchmark, K2 vs
 * Linux, across (BatchSize, TotalSize) pairs.
 *
 * Each run wakes the cores, executes repeated memory-to-memory DMA
 * transfers (BatchSize bytes per transfer, TotalSize per run) as fast
 * as possible, then idles until the cores power-gate; efficiency is
 * transferred bytes per joule over the whole episode. Paper result:
 * K2 improves efficiency by up to ~9x, with the advantage growing as
 * the workload becomes more IO-bound (larger batches) or the run
 * shrinks (idle-tail dominated).
 */

#include <cstdio>

#include "workloads/benchmarks.h"
#include "workloads/report.h"
#include "workloads/testbed.h"

namespace {

struct Case
{
    std::uint64_t batch;
    std::uint64_t total;
};

} // namespace

int
main()
{
    using namespace k2;

    wl::banner("Figure 6(a): DMA energy efficiency (MB/J)");

    const Case cases[] = {
        {4096, 64 * 1024},        {4096, 256 * 1024},
        {65536, 1024 * 1024},     {262144, 1024 * 1024},
        {1048576, 4 * 1048576},
    };

    wl::Table table({"(BatchSize,TotalSize)", "K2 MB/J", "Linux MB/J",
                     "K2/Linux", "K2 MB/s", "Linux MB/s"});

    double best_gain = 0;
    for (const auto &c : cases) {
        auto k2tb = wl::Testbed::makeK2();
        auto lxtb = wl::Testbed::makeLinux();
        const auto k2res =
            wl::runEpisodeWarm(k2tb.sys(), k2tb.proc(), "dma",
                               wl::dmaCopy(k2tb.dma(), c.batch, c.total));
        const auto lxres =
            wl::runEpisodeWarm(lxtb.sys(), lxtb.proc(), "dma",
                               wl::dmaCopy(lxtb.dma(), c.batch, c.total));
        const double gain = k2res.mbPerJoule() / lxres.mbPerJoule();
        best_gain = std::max(best_gain, gain);
        table.addRow({"(" + wl::fmtBytes(c.batch) + "," +
                          wl::fmtBytes(c.total) + ")",
                      wl::fmt(k2res.mbPerJoule(), 2),
                      wl::fmt(lxres.mbPerJoule(), 2),
                      wl::fmt(gain, 1) + "x",
                      wl::fmt(k2res.mbPerSec(), 1),
                      wl::fmt(lxres.mbPerSec(), 1)});
    }
    table.print();
    std::printf("\npeak K2 advantage: %.1fx (paper: up to ~9x)\n",
                best_gain);
    return 0;
}
