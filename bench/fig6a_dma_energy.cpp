/**
 * @file
 * Figure 6(a): energy efficiency of the DMA driver benchmark, K2 vs
 * Linux, across (BatchSize, TotalSize) pairs.
 *
 * Each run wakes the cores, executes repeated memory-to-memory DMA
 * transfers (BatchSize bytes per transfer, TotalSize per run) as fast
 * as possible, then idles until the cores power-gate; efficiency is
 * transferred bytes per joule over the whole episode. Paper result:
 * K2 improves efficiency by up to ~9x, with the advantage growing as
 * the workload becomes more IO-bound (larger batches) or the run
 * shrinks (idle-tail dominated).
 */

#include <cstdio>
#include <vector>

#include "workloads/benchmarks.h"
#include "workloads/report.h"
#include "workloads/sweep.h"
#include "workloads/testbed.h"
#include "workloads/warm.h"

namespace {

struct Case
{
    std::uint64_t batch;
    std::uint64_t total;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace k2;

    const unsigned jobs = wl::parseJobsFlag(argc, argv);
    const wl::SweepMode sweep = wl::parseSweepFlag(argc, argv);

    wl::banner("Figure 6(a): DMA energy efficiency (MB/J)");

    const Case cases[] = {
        {4096, 64 * 1024},        {4096, 256 * 1024},
        {65536, 1024 * 1024},     {262144, 1024 * 1024},
        {1048576, 4 * 1048576},
    };

    // One sweep cell per (case, system). All cells share the default
    // configurations, so in warm mode each worker thread boots one K2
    // and one Linux testbed and forks every cell from those snapshots.
    wl::SweepRunner runner(jobs);
    std::vector<wl::EpisodeResult> k2res(std::size(cases));
    std::vector<wl::EpisodeResult> lxres(std::size(cases));
    for (std::size_t i = 0; i < std::size(cases); ++i) {
        const Case c = cases[i];
        runner.submit([&k2res, i, c, sweep]() {
            auto &tb = wl::warmK2(sweep, "k2");
            k2res[i] =
                wl::runEpisodeWarm(tb.sys(), tb.proc(), "dma",
                                   wl::dmaCopy(tb.dma(), c.batch,
                                               c.total));
        });
        runner.submit([&lxres, i, c, sweep]() {
            auto &tb = wl::warmLinux(sweep, "linux");
            lxres[i] =
                wl::runEpisodeWarm(tb.sys(), tb.proc(), "dma",
                                   wl::dmaCopy(tb.dma(), c.batch,
                                               c.total));
        });
    }
    runner.run();

    wl::Table table({"(BatchSize,TotalSize)", "K2 MB/J", "Linux MB/J",
                     "K2/Linux", "K2 MB/s", "Linux MB/s"});

    double best_gain = 0;
    for (std::size_t i = 0; i < std::size(cases); ++i) {
        const Case &c = cases[i];
        const double gain =
            k2res[i].mbPerJoule() / lxres[i].mbPerJoule();
        best_gain = std::max(best_gain, gain);
        table.addRow({"(" + wl::fmtBytes(c.batch) + "," +
                          wl::fmtBytes(c.total) + ")",
                      wl::fmt(k2res[i].mbPerJoule(), 2),
                      wl::fmt(lxres[i].mbPerJoule(), 2),
                      wl::fmt(gain, 1) + "x",
                      wl::fmt(k2res[i].mbPerSec(), 1),
                      wl::fmt(lxres[i].mbPerSec(), 1)});
    }
    table.print();
    std::printf("\npeak K2 advantage: %.1fx (paper: up to ~9x)\n",
                best_gain);
    return 0;
}
