/**
 * @file
 * Fault-tolerance ablation: energy efficiency and recovery latency of
 * the three OS benchmarks under increasing fault pressure.
 *
 * Two sweeps over fresh K2 testbeds (each cell an independent
 * simulation, so the sweep shards across --jobs workers with
 * byte-identical output):
 *
 *  1. fault rate x workload: a probabilistic mix of mailbox faults
 *     (drop at the named rate, duplicate/bit-flip at half of it) and
 *     DMA faults (transfer error at the rate, completion-IRQ loss at
 *     half), swept over {0, 1e-3, 1e-2, 1e-1}. Reports MB/J, the
 *     degradation vs. the zero-fault cell, the recovery counters, and
 *     the ARQ ack round-trip percentiles.
 *
 *  2. shadow-domain crash: one crash mid-run per workload (plus
 *     background mail drops at the acceptance scenario's p=1e-3);
 *     reports the efficiency hit plus the watchdog's detection and
 *     restart latencies and the re-owned DSM pages / replayed
 *     services.
 *
 *  3. replication degree x crash: N in {1, 2, 3} shadow replicas, with
 *     and without the crash. A probe pump spawns one shadowed request
 *     every 2 ms across a window bracketing the crash; each probe does
 *     real service work (an ext2 write) and records which kernel served
 *     it. Availability is the fraction of probes served on a weak
 *     domain rather than degraded to the strong one; the table adds the
 *     election latency, quorum losses, and the energy drawn during the
 *     probe window. Expected shape: at N=3 a single crash never costs
 *     quorum, so availability stays 100% through election + handoff and
 *     the window energy stays low (no probe burns strong-domain power);
 *     N=1 and N=2 degrade for the restart window.
 *
 * Every cell runs the same mixed episode pattern: one warmup plus four
 * measured episodes, the second of which runs as a Normal thread on
 * the main domain. The main-domain episode matters twice over: it
 * exercises the ARQ path under load (its first touches pull
 * shadow-owned service pages through DSM mailbox traffic), and after a
 * crash it is the traffic that *detects* the failure -- a fail-silent
 * crash with no cross-domain communication is invisible by
 * construction (DESIGN.md §9).
 *
 * The rate-0 cells run with the fault plane fully disarmed, so the
 * degradation column isolates the cost of the faults *and* of arming
 * the recovery protocols.
 */

#include <cmath>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "fault/plan.h"
#include "soc/power.h"
#include "obs/metrics.h"
#include "workloads/benchmarks.h"
#include "workloads/episode.h"
#include "workloads/report.h"
#include "workloads/sweep.h"
#include "workloads/testbed.h"
#include "workloads/warm.h"

namespace {

using namespace k2;

constexpr int kMeasuredEpisodes = 4;
/** Which measured episode runs on the main domain (see file header). */
constexpr int kMainEpisode = 1;

const double kRates[] = {0.0, 1e-3, 1e-2, 1e-1};
const char *kRateLabels[] = {"0", "1e-3", "1e-2", "1e-1"};

enum WorkloadKind { kDma, kExt2, kUdp };
const WorkloadKind kWorkloads[] = {kDma, kExt2, kUdp};
const char *kWorkloadNames[] = {"dma", "ext2", "udp"};

struct Cell
{
    double mbj = 0;
    std::uint64_t bytes = 0;
    std::uint64_t injected = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t dupsDropped = 0;
    std::uint64_t dsmRetries = 0;
    double ackP50 = std::nan("");
    double ackP99 = std::nan("");
    // Crash sweep only.
    std::uint64_t crashes = 0;
    std::uint64_t restarts = 0;
    std::uint64_t pagesReclaimed = 0;
    std::uint64_t servicesReplayed = 0;
    std::uint64_t degradedSpawns = 0;
    double detectMs = std::nan("");
    double downMs = std::nan("");
};

wl::Workload
makeWorkload(wl::Testbed &tb, WorkloadKind wk)
{
    switch (wk) {
    case kDma:
        return wl::dmaCopy(tb.dma(), 65536, 1 << 20);
    case kExt2:
        return wl::ext2Sync(tb.fs(), 65536, 4);
    case kUdp:
        return wl::udpLoopback(tb.udp(), 262144, 512 * 1024);
    }
    K2_PANIC("bad workload kind");
}

/** Probabilistic fault mix at base rate @p r (empty plan when r == 0).
 *  Lost device IRQs are excluded on purpose: only the DMA driver has a
 *  poll-recovery path, so the mix sticks to faults every layer under
 *  test can absorb. */
fault::FaultPlan
mixAtRate(double r)
{
    fault::FaultPlan plan;
    if (r <= 0)
        return plan;
    fault::FaultSpec s;
    s.kind = fault::FaultKind::MailDrop;
    s.p = r;
    plan.add(s);
    s.kind = fault::FaultKind::MailDuplicate;
    s.p = r / 2;
    plan.add(s);
    s.kind = fault::FaultKind::MailBitFlip;
    s.p = r / 2;
    plan.add(s);
    s.kind = fault::FaultKind::DmaTransferError;
    s.p = r;
    plan.add(s);
    s.kind = fault::FaultKind::DmaIrqLoss;
    s.p = r / 2;
    plan.add(s);
    return plan;
}

/**
 * One shadow-domain crash mid-run, plus background mail drops so the
 * recovery runs under the acceptance scenario's fault load. t=12s sits
 * in the idle tail after the first measured episode; the main-domain
 * episode that follows trips over the dead shadow and triggers the
 * watchdog (detect latency therefore reads as time-to-first-evidence).
 */
fault::FaultPlan
crashPlan()
{
    fault::FaultPlan plan;
    fault::FaultSpec drop;
    drop.kind = fault::FaultKind::MailDrop;
    drop.p = 1e-3;
    plan.add(drop);
    fault::FaultSpec crash;
    crash.kind = fault::FaultKind::DomainCrash;
    crash.domain = soc::kWeakDomain;
    crash.at = sim::sec(12);
    plan.add(crash);
    return plan;
}

/** Replication-degree sweep: probe cadence bracketing the t=12s crash. */
constexpr std::size_t kReplicaDegrees[] = {1, 2, 3};
constexpr int kNumProbes = 200;
const sim::Duration kProbePeriod = sim::msec(2);
const sim::Time kProbeWindowStart = sim::sec(12) - sim::msec(50);

std::uint64_t
counterOf(const obs::MetricsSnapshot &snap, const std::string &name)
{
    const obs::MetricValue *v = snap.find(name);
    return v ? v->count : 0;
}

double
histMean(const obs::MetricsSnapshot &snap, const std::string &name)
{
    const obs::MetricValue *v = snap.find(name);
    if (!v || v->count == 0)
        return std::nan("");
    return v->mean();
}

void
runCase(wl::SweepMode sweep, const std::string &key, WorkloadKind wk,
        const std::function<fault::FaultPlan()> &plan, Cell &out)
{
    // Cells sharing a fault plan share the pooled fixture; restore
    // rewinds the injector's RNG streams and one-shot trigger state,
    // so each cell sees the same fault sequence a cold boot would.
    auto &tb = wl::warmK2(sweep, key, [&plan] {
        os::K2Config cfg;
        cfg.faults = plan();
        return cfg;
    });
    obs::MetricsRegistry reg;
    tb.registerMetrics(reg);

    const wl::Workload work = makeWorkload(tb, wk);
    double uj = 0;
    for (int ep = -1; ep < kMeasuredEpisodes; ++ep) {
        const wl::EpisodeResult r =
            ep == kMainEpisode
                ? wl::runEpisodeNormal(tb.sys(), tb.proc(), "ablation",
                                       work)
                : wl::runEpisode(tb.sys(), tb.proc(), "ablation", work);
        if (ep >= 0) { // Episode -1 warms the DSM working set.
            uj += r.energyUj;
            out.bytes += r.bytes;
        }
    }
    out.mbj = uj > 0 ? (out.bytes / 1e6) / (uj / 1e6) : 0;

    // The whole run used one fresh system, so absolute counter values
    // are per-run totals (and, for histograms, include percentiles the
    // episode diff cannot provide).
    const obs::MetricsSnapshot snap = reg.snapshot();
    for (const auto &[name, v] : snap.values()) {
        if (name.rfind("fault.injected.", 0) == 0)
            out.injected += v.count;
    }
    out.retransmits = counterOf(snap, "os.recovery.mail.retransmits");
    out.dupsDropped =
        counterOf(snap, "os.recovery.mail.duplicates_dropped");
    out.dsmRetries = counterOf(snap, "os.dsm.retries");
    if (const obs::MetricValue *rtt =
            snap.find("os.recovery.mail.ack_rtt_us")) {
        if (rtt->count) {
            out.ackP50 = rtt->p50;
            out.ackP99 = rtt->p99;
        }
    }
    out.crashes = counterOf(snap, "os.recovery.crashes_detected");
    out.restarts = counterOf(snap, "os.recovery.restarts");
    out.pagesReclaimed = counterOf(snap, "os.recovery.pages_reclaimed");
    out.servicesReplayed =
        counterOf(snap, "os.recovery.services_replayed");
    out.degradedSpawns = counterOf(snap, "os.recovery.degraded_spawns");
    const double detect_us = histMean(snap, "os.recovery.detect_us");
    const double down_us = histMean(snap, "os.recovery.down_us");
    out.detectMs = std::isnan(detect_us) ? detect_us : detect_us / 1e3;
    out.downMs = std::isnan(down_us) ? down_us : down_us / 1e3;
}

struct ReplicaCell
{
    std::uint64_t probes = 0;
    std::uint64_t degraded = 0;
    std::uint64_t crashes = 0;
    std::uint64_t restarts = 0;
    std::uint64_t elections = 0;
    std::uint64_t quorumLosses = 0;
    double electionUs = std::nan("");
    double downMs = std::nan("");
    double windowUj = 0;
};

void
runReplicaCase(wl::SweepMode sweep, std::size_t n, bool crash,
               ReplicaCell &out)
{
    const std::string key = "k2-replicas-" + std::to_string(n) +
                            (crash ? "-crash" : "");
    auto &tb = wl::warmK2(sweep, key, [n, crash] {
        os::K2Config cfg;
        cfg.replicas = n;
        if (crash)
            cfg.faults = crashPlan();
        return cfg;
    });
    obs::MetricsRegistry reg;
    tb.registerMetrics(reg);

    // Probes go into their own process: NightWatch gating suspends the
    // owning process's Normal threads against the shadow kernel, and
    // the pump must keep pumping while that kernel is dead.
    auto &sink = tb.sys().createProcess("probe-sink");
    const std::vector<std::uint8_t> blk(1024, 0x5A);
    // Strong-domain monitor: every 20ms it writes a small record
    // through the shared fs (a watcher summarizing what the light
    // tasks produced). This is the cross-domain traffic that exposes
    // a fail-silent shadow crash when there is no replica fan-out
    // (n == 1), and it runs in its own thread so a wedged fs op --
    // e.g. queued behind a dead replica holding the fs spinlock --
    // never stalls the probe arrival process below.
    tb.sys().spawnNormal(
        tb.proc(), "monitor", [&](kern::Thread &t) -> sim::Task<void> {
            if (t.kernel().engine().now() < kProbeWindowStart)
                co_await t.sleep(kProbeWindowStart -
                                 t.kernel().engine().now());
            for (int i = 0; i < kNumProbes / 10; ++i) {
                const std::string path = "/mon-" + std::to_string(i);
                const auto fd = co_await tb.fs().create(t, path);
                if (fd >= 0) {
                    co_await tb.fs().write(
                        t, static_cast<int>(fd),
                        std::span<const std::uint8_t>(blk.data(), 256));
                    co_await tb.fs().close(t, static_cast<int>(fd));
                }
                co_await t.sleep(kProbePeriod * 10);
            }
        });
    tb.sys().spawnNormal(
        tb.proc(), "pump", [&](kern::Thread &t) -> sim::Task<void> {
            if (t.kernel().engine().now() < kProbeWindowStart) {
                co_await t.sleep(kProbeWindowStart -
                                 t.kernel().engine().now());
            }
            const soc::EnergyMeter::Snapshot e0 =
                tb.sys().soc().meter().snapshot();
            for (int i = 0; i < kNumProbes; ++i) {
                tb.sys().spawnNightWatch(
                    sink, "probe",
                    [&, i](kern::Thread &p) -> sim::Task<void> {
                        ++out.probes;
                        if (p.kernel().name() == "main")
                            ++out.degraded;
                        // Real service work: the ext2 write pulls
                        // shared pages through the DSM, which is also
                        // the cross-domain traffic that exposes a
                        // fail-silent crash.
                        const std::string path =
                            "/probe-" + std::to_string(i);
                        const auto fd =
                            co_await tb.fs().create(p, path);
                        if (fd < 0)
                            co_return;
                        co_await tb.fs().write(
                            p, static_cast<int>(fd),
                            std::span<const std::uint8_t>(blk));
                        co_await tb.fs().close(p,
                                               static_cast<int>(fd));
                    });
                co_await t.sleep(kProbePeriod);
            }
            // Let straggler probes (those parked across the restart
            // window) finish inside the measured window.
            co_await t.sleep(sim::msec(50));
            out.windowUj = e0.totalUj(tb.sys().soc().meter());
        });
    tb.engine().run();

    const obs::MetricsSnapshot snap = reg.snapshot();
    out.crashes = counterOf(snap, "os.recovery.crashes_detected");
    out.restarts = counterOf(snap, "os.recovery.restarts");
    out.elections = counterOf(snap, "os.replica.elections");
    out.quorumLosses = counterOf(snap, "os.replica.quorum_losses");
    out.electionUs = histMean(snap, "os.replica.election_us");
    const double down_us = histMean(snap, "os.recovery.down_us");
    out.downMs = std::isnan(down_us) ? down_us : down_us / 1e3;
}

std::string
degradation(double base_mbj, double mbj)
{
    if (base_mbj <= 0)
        return "-";
    const double delta = (mbj - base_mbj) / base_mbj * 100.0;
    return (delta >= 0 ? "+" : "") + wl::fmt(delta, 1) + "%";
}

} // namespace

int
main(int argc, char **argv)
{
    const unsigned jobs = wl::parseJobsFlag(argc, argv);
    const wl::SweepMode sweep = wl::parseSweepFlag(argc, argv);

    wl::banner("Fault-tolerance ablation: fault rate x workload");
    std::printf("%d measured episodes per cell (1 warmup discarded, "
                "episode %d on the main domain); faults: mailbox "
                "drop@rate, dup/flip@rate/2, DMA err@rate, "
                "IRQ-loss@rate/2\n\n",
                kMeasuredEpisodes, kMainEpisode);

    constexpr std::size_t kNumRates = std::size(kRates);
    constexpr std::size_t kNumWl = std::size(kWorkloads);

    wl::SweepRunner runner(jobs);
    std::vector<Cell> cells(kNumWl * kNumRates);
    std::vector<Cell> crashCells(kNumWl);
    for (std::size_t w = 0; w < kNumWl; ++w) {
        const WorkloadKind wk = kWorkloads[w];
        for (std::size_t r = 0; r < kNumRates; ++r) {
            Cell *cell = &cells[w * kNumRates + r];
            const double rate = kRates[r];
            const std::string key =
                std::string("k2-rate-") + kRateLabels[r];
            runner.submit([wk, rate, cell, key, sweep]() {
                runCase(sweep, key, wk,
                        [rate] { return mixAtRate(rate); }, *cell);
            });
        }
        Cell *cell = &crashCells[w];
        runner.submit([wk, cell, sweep]() {
            runCase(sweep, "k2-crash", wk,
                    [] { return crashPlan(); }, *cell);
        });
    }
    constexpr std::size_t kNumDegrees = std::size(kReplicaDegrees);
    std::vector<ReplicaCell> replicaCells(kNumDegrees * 2);
    for (std::size_t d = 0; d < kNumDegrees; ++d) {
        for (int crash = 0; crash < 2; ++crash) {
            ReplicaCell *cell = &replicaCells[d * 2 + crash];
            const std::size_t n = kReplicaDegrees[d];
            runner.submit([n, crash, cell, sweep]() {
                runReplicaCase(sweep, n, crash != 0, *cell);
            });
        }
    }
    runner.run();

    wl::Table table({"workload", "fault rate", "MB/J", "vs rate 0",
                     "injected", "retransmits", "dups dropped",
                     "dsm retries", "ack p50 us", "ack p99 us"});
    for (std::size_t w = 0; w < kNumWl; ++w) {
        const double base = cells[w * kNumRates].mbj;
        for (std::size_t r = 0; r < kNumRates; ++r) {
            const Cell &c = cells[w * kNumRates + r];
            table.addRow(
                {kWorkloadNames[w], kRateLabels[r], wl::fmt(c.mbj, 1),
                 r == 0 ? "-" : degradation(base, c.mbj),
                 std::to_string(c.injected),
                 std::to_string(c.retransmits),
                 std::to_string(c.dupsDropped),
                 std::to_string(c.dsmRetries), wl::fmt(c.ackP50, 1),
                 wl::fmt(c.ackP99, 1)});
        }
    }
    table.print();

    wl::banner("Shadow crash at t=12s (+ mailbox drops p=1e-3)");
    wl::Table crash({"workload", "MB/J", "vs rate 0", "crashes",
                     "restarts", "pages re-owned", "services replayed",
                     "degraded spawns", "detect ms", "down ms"});
    for (std::size_t w = 0; w < kNumWl; ++w) {
        const Cell &c = crashCells[w];
        crash.addRow({kWorkloadNames[w], wl::fmt(c.mbj, 1),
                      degradation(cells[w * kNumRates].mbj, c.mbj),
                      std::to_string(c.crashes),
                      std::to_string(c.restarts),
                      std::to_string(c.pagesReclaimed),
                      std::to_string(c.servicesReplayed),
                      std::to_string(c.degradedSpawns),
                      wl::fmt(c.detectMs, 2), wl::fmt(c.downMs, 2)});
    }
    crash.print();

    wl::banner("Replication degree x crash (200 probes @2ms around "
               "t=12s)");
    wl::Table rep({"replicas", "fault", "availability", "degraded",
                   "crashes", "elections", "election us",
                   "quorum losses", "window mJ", "crash cost mJ",
                   "down ms"});
    for (std::size_t d = 0; d < kNumDegrees; ++d) {
        for (int crash = 0; crash < 2; ++crash) {
            const ReplicaCell &c = replicaCells[d * 2 + crash];
            const ReplicaCell &base = replicaCells[d * 2];
            const double avail =
                c.probes ? 100.0 *
                               static_cast<double>(c.probes - c.degraded) /
                               static_cast<double>(c.probes)
                         : std::nan("");
            rep.addRow({std::to_string(kReplicaDegrees[d]),
                        crash ? "crash" : "none",
                        wl::fmt(avail, 1) + "%",
                        std::to_string(c.degraded) + "/" +
                            std::to_string(c.probes),
                        std::to_string(c.crashes),
                        std::to_string(c.elections),
                        wl::fmt(c.electionUs, 1),
                        std::to_string(c.quorumLosses),
                        wl::fmt(c.windowUj / 1e3, 2),
                        crash ? wl::fmt((c.windowUj - base.windowUj) /
                                            1e3,
                                        2)
                              : std::string("-"),
                        wl::fmt(c.downMs, 2)});
        }
    }
    rep.print();

    std::printf("\nexpected shape: degradation grows with the fault "
                "rate but stays small at 1e-3 (retransmits and DMA "
                "re-programs are microsecond-scale); the crash costs "
                "one restart latency plus page re-owns, and every "
                "workload still completes with correct data\n");
    return 0;
}
