/**
 * @file
 * §11 extension: K2's DSM generalised to N coherence domains.
 *
 * The paper argues the design extends "without structural changes" for
 * a moderate number of domains. This bench runs the N-domain DSM on
 * the three-domain SoC (strong + weak + sensor hub) and shows that
 * per-fault cost is flat in N (requests go directly to the owner; no
 * broadcast), while a naive broadcast-invalidate design would scale
 * messages linearly with N.
 */

#include <cstdio>
#include <string>

#include "os/coherence/protocol.h"
#include "os/ndsm.h"
#include "workloads/report.h"
#include "workloads/sweep.h"
#include "workloads/warm.h"

namespace {

using namespace k2;
using kern::Thread;
using kern::ThreadKind;
using sim::Task;

struct Fixture
{
    sim::Engine eng;
    std::unique_ptr<soc::Soc> soc;
    std::vector<std::unique_ptr<kern::Kernel>> kernels;
    std::unique_ptr<os::NDsm> ndsm;
    std::unique_ptr<kern::Process> proc;

    Fixture(std::size_t domains, os::coherence::ProtocolKind dsm)
    {
        auto cfg = (domains == 3) ? soc::threeDomainConfig()
                                  : soc::omap4Config();
        cfg.costs.inactiveTimeout = 0;
        soc = std::make_unique<soc::Soc>(eng, cfg);
        std::vector<kern::Kernel *> raw;
        for (soc::DomainId d = 0; d < domains; ++d) {
            kernels.push_back(std::make_unique<kern::Kernel>(
                *soc, d, "k" + std::to_string(d)));
            kernels.back()->boot();
            raw.push_back(kernels.back().get());
        }
        ndsm = std::make_unique<os::NDsm>(*soc, raw, 4096, dsm);
        for (std::size_t i = 0; i < kernels.size(); ++i) {
            kernels[i]->setMailHandler(
                [this, i](soc::Mail m, soc::Core &c) {
                    return ndsm->handleMail(i, m, c);
                });
        }
        proc = std::make_unique<kern::Process>(1, "bench");
    }

    sim::Engine &engine() { return eng; }

    void
    snapState(snap::Io &io)
    {
        eng.snapState(io);
        soc->snapState(io);
        for (auto &k : kernels)
            k->snapState(io);
        ndsm->snapState(io);
        proc->snapState(io);
    }

    void
    touch(std::size_t k, std::uint64_t page)
    {
        kernels[k]->spawnThread(
            proc.get(), "t", ThreadKind::Normal,
            [this, k, page](Thread &t) -> Task<void> {
                co_await ndsm->access(t.kernel(), t.core(), page,
                                      os::Access::Write);
            });
        eng.run();
    }
};

} // namespace

int
main(int argc, char **argv)
{
    const unsigned jobs = wl::parseJobsFlag(argc, argv);
    const wl::SweepMode sweep = wl::parseSweepFlag(argc, argv);
    auto dsm = os::coherence::ProtocolKind::TwoState;
    const bool dsmSet = wl::parseDsmFlag(argc, argv, dsm);

    wl::banner("Extension (§11): DSM across N coherence domains");
    if (dsmSet)
        std::printf("DSM protocol: %s\n\n",
                    os::coherence::protocolName(dsm));

    struct Row
    {
        double mean_fault_us;
        double messages_per_fault;
    };
    const std::size_t domain_counts[] = {2, 3};

    // One cell per domain count; each cell owns its engine + SoC +
    // kernels + N-domain DSM.
    wl::SweepRunner runner(jobs);
    std::vector<Row> rows(std::size(domain_counts));
    // Default protocol keeps the pre-zoo warm keys so plain
    // invocations stay byte-identical.
    std::string keytail;
    if (dsm != os::coherence::ProtocolKind::TwoState)
        keytail = std::string(":") + os::coherence::protocolName(dsm);
    for (std::size_t i = 0; i < std::size(domain_counts); ++i) {
        const std::size_t n = domain_counts[i];
        runner.submit([&rows, &keytail, dsm, i, n, sweep]() {
            auto &fx = wl::warmFixture<Fixture>(
                sweep, "ndsm-" + std::to_string(n) + keytail,
                [n, dsm] {
                    return std::make_unique<Fixture>(n, dsm);
                });
            // Ring: each kernel in turn takes the page.
            constexpr int kRounds = 30;
            for (int r = 0; r < kRounds; ++r)
                fx.touch(static_cast<std::size_t>(r) % n, 7);
            std::uint64_t total_faults = 0;
            for (std::size_t k = 0; k < n; ++k)
                total_faults += fx.ndsm->faults(k);

            rows[i] = Row{
                fx.ndsm->meanFaultUs(1),
                static_cast<double>(fx.ndsm->messagesSent()) /
                    static_cast<double>(total_faults)};
        });
    }
    runner.run();

    wl::Table table({"Domains", "ring pattern",
                     "mean weak-kernel fault (us)", "messages/fault"});
    for (std::size_t i = 0; i < std::size(domain_counts); ++i) {
        const std::size_t n = domain_counts[i];
        table.addRow(
            {std::to_string(n),
             "k0 -> ... -> k" + std::to_string(n - 1) + " -> k0",
             wl::fmt(rows[i].mean_fault_us, 1),
             wl::fmt(rows[i].messages_per_fault, 2)});
    }
    table.print();

    std::printf("\nPer-fault cost and message count are flat in N: the "
                "directory sends each request straight to the owner "
                "(2 messages per transfer), exactly as the paper "
                "predicts for moderate N. The third domain (a "
                "Cortex-M0 sensor hub) pays its own, higher local "
                "costs but does not slow the others down.\n");
    return 0;
}
