# Empty dependencies file for email_sync.
# This may be replaced when dependencies are built.
