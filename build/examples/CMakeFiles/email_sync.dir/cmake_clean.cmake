file(REMOVE_RECURSE
  "CMakeFiles/email_sync.dir/email_sync.cpp.o"
  "CMakeFiles/email_sync.dir/email_sync.cpp.o.d"
  "email_sync"
  "email_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/email_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
