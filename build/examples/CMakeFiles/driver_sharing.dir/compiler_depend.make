# Empty compiler generated dependencies file for driver_sharing.
# This may be replaced when dependencies are built.
