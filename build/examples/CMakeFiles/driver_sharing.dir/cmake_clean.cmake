file(REMOVE_RECURSE
  "CMakeFiles/driver_sharing.dir/driver_sharing.cpp.o"
  "CMakeFiles/driver_sharing.dir/driver_sharing.cpp.o.d"
  "driver_sharing"
  "driver_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/driver_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
