file(REMOVE_RECURSE
  "CMakeFiles/sensor_logging.dir/sensor_logging.cpp.o"
  "CMakeFiles/sensor_logging.dir/sensor_logging.cpp.o.d"
  "sensor_logging"
  "sensor_logging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_logging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
