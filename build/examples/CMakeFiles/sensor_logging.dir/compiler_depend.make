# Empty compiler generated dependencies file for sensor_logging.
# This may be replaced when dependencies are built.
