# Empty compiler generated dependencies file for three_domain.
# This may be replaced when dependencies are built.
