file(REMOVE_RECURSE
  "CMakeFiles/three_domain.dir/three_domain.cpp.o"
  "CMakeFiles/three_domain.dir/three_domain.cpp.o.d"
  "three_domain"
  "three_domain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/three_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
