# Empty compiler generated dependencies file for nightwatch_overhead.
# This may be replaced when dependencies are built.
