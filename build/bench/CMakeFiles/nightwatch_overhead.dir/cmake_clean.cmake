file(REMOVE_RECURSE
  "CMakeFiles/nightwatch_overhead.dir/nightwatch_overhead.cpp.o"
  "CMakeFiles/nightwatch_overhead.dir/nightwatch_overhead.cpp.o.d"
  "nightwatch_overhead"
  "nightwatch_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nightwatch_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
