# Empty dependencies file for extension_ndomain.
# This may be replaced when dependencies are built.
