file(REMOVE_RECURSE
  "CMakeFiles/extension_ndomain.dir/extension_ndomain.cpp.o"
  "CMakeFiles/extension_ndomain.dir/extension_ndomain.cpp.o.d"
  "extension_ndomain"
  "extension_ndomain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_ndomain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
