file(REMOVE_RECURSE
  "CMakeFiles/ablation_shared_allocator.dir/ablation_shared_allocator.cpp.o"
  "CMakeFiles/ablation_shared_allocator.dir/ablation_shared_allocator.cpp.o.d"
  "ablation_shared_allocator"
  "ablation_shared_allocator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_shared_allocator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
