# Empty dependencies file for ablation_shared_allocator.
# This may be replaced when dependencies are built.
