file(REMOVE_RECURSE
  "CMakeFiles/fig6a_dma_energy.dir/fig6a_dma_energy.cpp.o"
  "CMakeFiles/fig6a_dma_energy.dir/fig6a_dma_energy.cpp.o.d"
  "fig6a_dma_energy"
  "fig6a_dma_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6a_dma_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
