# Empty dependencies file for fig6a_dma_energy.
# This may be replaced when dependencies are built.
