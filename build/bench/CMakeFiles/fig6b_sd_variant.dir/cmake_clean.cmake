file(REMOVE_RECURSE
  "CMakeFiles/fig6b_sd_variant.dir/fig6b_sd_variant.cpp.o"
  "CMakeFiles/fig6b_sd_variant.dir/fig6b_sd_variant.cpp.o.d"
  "fig6b_sd_variant"
  "fig6b_sd_variant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_sd_variant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
