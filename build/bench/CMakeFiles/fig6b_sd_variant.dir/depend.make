# Empty dependencies file for fig6b_sd_variant.
# This may be replaced when dependencies are built.
