# Empty dependencies file for fig1_power_perf.
# This may be replaced when dependencies are built.
