file(REMOVE_RECURSE
  "CMakeFiles/fig1_power_perf.dir/fig1_power_perf.cpp.o"
  "CMakeFiles/fig1_power_perf.dir/fig1_power_perf.cpp.o.d"
  "fig1_power_perf"
  "fig1_power_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_power_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
