# Empty compiler generated dependencies file for table4_alloc_latency.
# This may be replaced when dependencies are built.
