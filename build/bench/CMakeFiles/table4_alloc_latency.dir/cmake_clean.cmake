file(REMOVE_RECURSE
  "CMakeFiles/table4_alloc_latency.dir/table4_alloc_latency.cpp.o"
  "CMakeFiles/table4_alloc_latency.dir/table4_alloc_latency.cpp.o.d"
  "table4_alloc_latency"
  "table4_alloc_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_alloc_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
