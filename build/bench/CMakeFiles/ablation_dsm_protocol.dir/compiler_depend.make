# Empty compiler generated dependencies file for ablation_dsm_protocol.
# This may be replaced when dependencies are built.
