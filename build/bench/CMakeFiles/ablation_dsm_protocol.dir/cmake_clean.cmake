file(REMOVE_RECURSE
  "CMakeFiles/ablation_dsm_protocol.dir/ablation_dsm_protocol.cpp.o"
  "CMakeFiles/ablation_dsm_protocol.dir/ablation_dsm_protocol.cpp.o.d"
  "ablation_dsm_protocol"
  "ablation_dsm_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dsm_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
