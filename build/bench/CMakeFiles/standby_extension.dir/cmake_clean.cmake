file(REMOVE_RECURSE
  "CMakeFiles/standby_extension.dir/standby_extension.cpp.o"
  "CMakeFiles/standby_extension.dir/standby_extension.cpp.o.d"
  "standby_extension"
  "standby_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/standby_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
