# Empty dependencies file for standby_extension.
# This may be replaced when dependencies are built.
