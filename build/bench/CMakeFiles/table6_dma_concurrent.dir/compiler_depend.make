# Empty compiler generated dependencies file for table6_dma_concurrent.
# This may be replaced when dependencies are built.
