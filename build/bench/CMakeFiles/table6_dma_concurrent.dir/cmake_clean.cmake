file(REMOVE_RECURSE
  "CMakeFiles/table6_dma_concurrent.dir/table6_dma_concurrent.cpp.o"
  "CMakeFiles/table6_dma_concurrent.dir/table6_dma_concurrent.cpp.o.d"
  "table6_dma_concurrent"
  "table6_dma_concurrent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_dma_concurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
