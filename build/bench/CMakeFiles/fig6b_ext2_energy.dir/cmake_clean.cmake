file(REMOVE_RECURSE
  "CMakeFiles/fig6b_ext2_energy.dir/fig6b_ext2_energy.cpp.o"
  "CMakeFiles/fig6b_ext2_energy.dir/fig6b_ext2_energy.cpp.o.d"
  "fig6b_ext2_energy"
  "fig6b_ext2_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_ext2_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
