# Empty compiler generated dependencies file for fig6b_ext2_energy.
# This may be replaced when dependencies are built.
