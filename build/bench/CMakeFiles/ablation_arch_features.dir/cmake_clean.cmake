file(REMOVE_RECURSE
  "CMakeFiles/ablation_arch_features.dir/ablation_arch_features.cpp.o"
  "CMakeFiles/ablation_arch_features.dir/ablation_arch_features.cpp.o.d"
  "ablation_arch_features"
  "ablation_arch_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_arch_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
