# Empty dependencies file for ablation_arch_features.
# This may be replaced when dependencies are built.
