# Empty dependencies file for table5_dsm_fault.
# This may be replaced when dependencies are built.
