file(REMOVE_RECURSE
  "CMakeFiles/table5_dsm_fault.dir/table5_dsm_fault.cpp.o"
  "CMakeFiles/table5_dsm_fault.dir/table5_dsm_fault.cpp.o.d"
  "table5_dsm_fault"
  "table5_dsm_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_dsm_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
