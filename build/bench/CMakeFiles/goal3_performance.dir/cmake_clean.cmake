file(REMOVE_RECURSE
  "CMakeFiles/goal3_performance.dir/goal3_performance.cpp.o"
  "CMakeFiles/goal3_performance.dir/goal3_performance.cpp.o.d"
  "goal3_performance"
  "goal3_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goal3_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
