# Empty dependencies file for goal3_performance.
# This may be replaced when dependencies are built.
