# Empty compiler generated dependencies file for fig6c_udp_energy.
# This may be replaced when dependencies are built.
