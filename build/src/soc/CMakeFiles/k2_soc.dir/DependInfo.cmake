
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/soc/config.cpp" "src/soc/CMakeFiles/k2_soc.dir/config.cpp.o" "gcc" "src/soc/CMakeFiles/k2_soc.dir/config.cpp.o.d"
  "/root/repo/src/soc/core.cpp" "src/soc/CMakeFiles/k2_soc.dir/core.cpp.o" "gcc" "src/soc/CMakeFiles/k2_soc.dir/core.cpp.o.d"
  "/root/repo/src/soc/dma.cpp" "src/soc/CMakeFiles/k2_soc.dir/dma.cpp.o" "gcc" "src/soc/CMakeFiles/k2_soc.dir/dma.cpp.o.d"
  "/root/repo/src/soc/domain.cpp" "src/soc/CMakeFiles/k2_soc.dir/domain.cpp.o" "gcc" "src/soc/CMakeFiles/k2_soc.dir/domain.cpp.o.d"
  "/root/repo/src/soc/irq.cpp" "src/soc/CMakeFiles/k2_soc.dir/irq.cpp.o" "gcc" "src/soc/CMakeFiles/k2_soc.dir/irq.cpp.o.d"
  "/root/repo/src/soc/mailbox.cpp" "src/soc/CMakeFiles/k2_soc.dir/mailbox.cpp.o" "gcc" "src/soc/CMakeFiles/k2_soc.dir/mailbox.cpp.o.d"
  "/root/repo/src/soc/mmu.cpp" "src/soc/CMakeFiles/k2_soc.dir/mmu.cpp.o" "gcc" "src/soc/CMakeFiles/k2_soc.dir/mmu.cpp.o.d"
  "/root/repo/src/soc/power.cpp" "src/soc/CMakeFiles/k2_soc.dir/power.cpp.o" "gcc" "src/soc/CMakeFiles/k2_soc.dir/power.cpp.o.d"
  "/root/repo/src/soc/soc.cpp" "src/soc/CMakeFiles/k2_soc.dir/soc.cpp.o" "gcc" "src/soc/CMakeFiles/k2_soc.dir/soc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/k2_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
