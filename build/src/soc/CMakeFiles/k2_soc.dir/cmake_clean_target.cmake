file(REMOVE_RECURSE
  "libk2_soc.a"
)
