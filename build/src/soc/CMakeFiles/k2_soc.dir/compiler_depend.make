# Empty compiler generated dependencies file for k2_soc.
# This may be replaced when dependencies are built.
