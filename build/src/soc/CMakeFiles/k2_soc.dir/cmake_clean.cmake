file(REMOVE_RECURSE
  "CMakeFiles/k2_soc.dir/config.cpp.o"
  "CMakeFiles/k2_soc.dir/config.cpp.o.d"
  "CMakeFiles/k2_soc.dir/core.cpp.o"
  "CMakeFiles/k2_soc.dir/core.cpp.o.d"
  "CMakeFiles/k2_soc.dir/dma.cpp.o"
  "CMakeFiles/k2_soc.dir/dma.cpp.o.d"
  "CMakeFiles/k2_soc.dir/domain.cpp.o"
  "CMakeFiles/k2_soc.dir/domain.cpp.o.d"
  "CMakeFiles/k2_soc.dir/irq.cpp.o"
  "CMakeFiles/k2_soc.dir/irq.cpp.o.d"
  "CMakeFiles/k2_soc.dir/mailbox.cpp.o"
  "CMakeFiles/k2_soc.dir/mailbox.cpp.o.d"
  "CMakeFiles/k2_soc.dir/mmu.cpp.o"
  "CMakeFiles/k2_soc.dir/mmu.cpp.o.d"
  "CMakeFiles/k2_soc.dir/power.cpp.o"
  "CMakeFiles/k2_soc.dir/power.cpp.o.d"
  "CMakeFiles/k2_soc.dir/soc.cpp.o"
  "CMakeFiles/k2_soc.dir/soc.cpp.o.d"
  "libk2_soc.a"
  "libk2_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/k2_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
