file(REMOVE_RECURSE
  "CMakeFiles/k2_baseline.dir/linux_system.cpp.o"
  "CMakeFiles/k2_baseline.dir/linux_system.cpp.o.d"
  "CMakeFiles/k2_baseline.dir/shared_alloc_system.cpp.o"
  "CMakeFiles/k2_baseline.dir/shared_alloc_system.cpp.o.d"
  "libk2_baseline.a"
  "libk2_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/k2_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
