# Empty compiler generated dependencies file for k2_baseline.
# This may be replaced when dependencies are built.
