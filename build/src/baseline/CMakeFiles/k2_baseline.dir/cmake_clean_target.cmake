file(REMOVE_RECURSE
  "libk2_baseline.a"
)
