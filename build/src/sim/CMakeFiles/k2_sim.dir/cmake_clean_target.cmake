file(REMOVE_RECURSE
  "libk2_sim.a"
)
