file(REMOVE_RECURSE
  "CMakeFiles/k2_sim.dir/engine.cpp.o"
  "CMakeFiles/k2_sim.dir/engine.cpp.o.d"
  "CMakeFiles/k2_sim.dir/log.cpp.o"
  "CMakeFiles/k2_sim.dir/log.cpp.o.d"
  "CMakeFiles/k2_sim.dir/stats.cpp.o"
  "CMakeFiles/k2_sim.dir/stats.cpp.o.d"
  "CMakeFiles/k2_sim.dir/sync.cpp.o"
  "CMakeFiles/k2_sim.dir/sync.cpp.o.d"
  "CMakeFiles/k2_sim.dir/trace.cpp.o"
  "CMakeFiles/k2_sim.dir/trace.cpp.o.d"
  "libk2_sim.a"
  "libk2_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/k2_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
