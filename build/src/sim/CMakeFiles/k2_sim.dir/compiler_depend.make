# Empty compiler generated dependencies file for k2_sim.
# This may be replaced when dependencies are built.
