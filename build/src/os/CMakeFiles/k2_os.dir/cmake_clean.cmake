file(REMOVE_RECURSE
  "CMakeFiles/k2_os.dir/balloon.cpp.o"
  "CMakeFiles/k2_os.dir/balloon.cpp.o.d"
  "CMakeFiles/k2_os.dir/dsm.cpp.o"
  "CMakeFiles/k2_os.dir/dsm.cpp.o.d"
  "CMakeFiles/k2_os.dir/io_mapper.cpp.o"
  "CMakeFiles/k2_os.dir/io_mapper.cpp.o.d"
  "CMakeFiles/k2_os.dir/irq_router.cpp.o"
  "CMakeFiles/k2_os.dir/irq_router.cpp.o.d"
  "CMakeFiles/k2_os.dir/k2_system.cpp.o"
  "CMakeFiles/k2_os.dir/k2_system.cpp.o.d"
  "CMakeFiles/k2_os.dir/meta_manager.cpp.o"
  "CMakeFiles/k2_os.dir/meta_manager.cpp.o.d"
  "CMakeFiles/k2_os.dir/ndsm.cpp.o"
  "CMakeFiles/k2_os.dir/ndsm.cpp.o.d"
  "CMakeFiles/k2_os.dir/nightwatch.cpp.o"
  "CMakeFiles/k2_os.dir/nightwatch.cpp.o.d"
  "CMakeFiles/k2_os.dir/system.cpp.o"
  "CMakeFiles/k2_os.dir/system.cpp.o.d"
  "libk2_os.a"
  "libk2_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/k2_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
