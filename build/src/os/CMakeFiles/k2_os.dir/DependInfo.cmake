
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/balloon.cpp" "src/os/CMakeFiles/k2_os.dir/balloon.cpp.o" "gcc" "src/os/CMakeFiles/k2_os.dir/balloon.cpp.o.d"
  "/root/repo/src/os/dsm.cpp" "src/os/CMakeFiles/k2_os.dir/dsm.cpp.o" "gcc" "src/os/CMakeFiles/k2_os.dir/dsm.cpp.o.d"
  "/root/repo/src/os/io_mapper.cpp" "src/os/CMakeFiles/k2_os.dir/io_mapper.cpp.o" "gcc" "src/os/CMakeFiles/k2_os.dir/io_mapper.cpp.o.d"
  "/root/repo/src/os/irq_router.cpp" "src/os/CMakeFiles/k2_os.dir/irq_router.cpp.o" "gcc" "src/os/CMakeFiles/k2_os.dir/irq_router.cpp.o.d"
  "/root/repo/src/os/k2_system.cpp" "src/os/CMakeFiles/k2_os.dir/k2_system.cpp.o" "gcc" "src/os/CMakeFiles/k2_os.dir/k2_system.cpp.o.d"
  "/root/repo/src/os/meta_manager.cpp" "src/os/CMakeFiles/k2_os.dir/meta_manager.cpp.o" "gcc" "src/os/CMakeFiles/k2_os.dir/meta_manager.cpp.o.d"
  "/root/repo/src/os/ndsm.cpp" "src/os/CMakeFiles/k2_os.dir/ndsm.cpp.o" "gcc" "src/os/CMakeFiles/k2_os.dir/ndsm.cpp.o.d"
  "/root/repo/src/os/nightwatch.cpp" "src/os/CMakeFiles/k2_os.dir/nightwatch.cpp.o" "gcc" "src/os/CMakeFiles/k2_os.dir/nightwatch.cpp.o.d"
  "/root/repo/src/os/system.cpp" "src/os/CMakeFiles/k2_os.dir/system.cpp.o" "gcc" "src/os/CMakeFiles/k2_os.dir/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kern/CMakeFiles/k2_kern.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/k2_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/k2_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
