file(REMOVE_RECURSE
  "libk2_os.a"
)
