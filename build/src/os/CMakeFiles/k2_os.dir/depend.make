# Empty dependencies file for k2_os.
# This may be replaced when dependencies are built.
