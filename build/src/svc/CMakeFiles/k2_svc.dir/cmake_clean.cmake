file(REMOVE_RECURSE
  "CMakeFiles/k2_svc.dir/block.cpp.o"
  "CMakeFiles/k2_svc.dir/block.cpp.o.d"
  "CMakeFiles/k2_svc.dir/dma_driver.cpp.o"
  "CMakeFiles/k2_svc.dir/dma_driver.cpp.o.d"
  "CMakeFiles/k2_svc.dir/ext2.cpp.o"
  "CMakeFiles/k2_svc.dir/ext2.cpp.o.d"
  "CMakeFiles/k2_svc.dir/sdcard.cpp.o"
  "CMakeFiles/k2_svc.dir/sdcard.cpp.o.d"
  "CMakeFiles/k2_svc.dir/udp.cpp.o"
  "CMakeFiles/k2_svc.dir/udp.cpp.o.d"
  "libk2_svc.a"
  "libk2_svc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/k2_svc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
