# Empty compiler generated dependencies file for k2_svc.
# This may be replaced when dependencies are built.
