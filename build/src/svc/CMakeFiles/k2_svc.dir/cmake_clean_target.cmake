file(REMOVE_RECURSE
  "libk2_svc.a"
)
