file(REMOVE_RECURSE
  "CMakeFiles/k2_workloads.dir/benchmarks.cpp.o"
  "CMakeFiles/k2_workloads.dir/benchmarks.cpp.o.d"
  "CMakeFiles/k2_workloads.dir/episode.cpp.o"
  "CMakeFiles/k2_workloads.dir/episode.cpp.o.d"
  "CMakeFiles/k2_workloads.dir/report.cpp.o"
  "CMakeFiles/k2_workloads.dir/report.cpp.o.d"
  "CMakeFiles/k2_workloads.dir/standby.cpp.o"
  "CMakeFiles/k2_workloads.dir/standby.cpp.o.d"
  "CMakeFiles/k2_workloads.dir/testbed.cpp.o"
  "CMakeFiles/k2_workloads.dir/testbed.cpp.o.d"
  "libk2_workloads.a"
  "libk2_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/k2_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
