# Empty dependencies file for k2_workloads.
# This may be replaced when dependencies are built.
