file(REMOVE_RECURSE
  "libk2_workloads.a"
)
