# Empty compiler generated dependencies file for k2_kern.
# This may be replaced when dependencies are built.
