file(REMOVE_RECURSE
  "CMakeFiles/k2_kern.dir/buddy.cpp.o"
  "CMakeFiles/k2_kern.dir/buddy.cpp.o.d"
  "CMakeFiles/k2_kern.dir/kernel.cpp.o"
  "CMakeFiles/k2_kern.dir/kernel.cpp.o.d"
  "CMakeFiles/k2_kern.dir/layout.cpp.o"
  "CMakeFiles/k2_kern.dir/layout.cpp.o.d"
  "CMakeFiles/k2_kern.dir/sched.cpp.o"
  "CMakeFiles/k2_kern.dir/sched.cpp.o.d"
  "CMakeFiles/k2_kern.dir/service.cpp.o"
  "CMakeFiles/k2_kern.dir/service.cpp.o.d"
  "CMakeFiles/k2_kern.dir/thread.cpp.o"
  "CMakeFiles/k2_kern.dir/thread.cpp.o.d"
  "libk2_kern.a"
  "libk2_kern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/k2_kern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
