
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kern/buddy.cpp" "src/kern/CMakeFiles/k2_kern.dir/buddy.cpp.o" "gcc" "src/kern/CMakeFiles/k2_kern.dir/buddy.cpp.o.d"
  "/root/repo/src/kern/kernel.cpp" "src/kern/CMakeFiles/k2_kern.dir/kernel.cpp.o" "gcc" "src/kern/CMakeFiles/k2_kern.dir/kernel.cpp.o.d"
  "/root/repo/src/kern/layout.cpp" "src/kern/CMakeFiles/k2_kern.dir/layout.cpp.o" "gcc" "src/kern/CMakeFiles/k2_kern.dir/layout.cpp.o.d"
  "/root/repo/src/kern/sched.cpp" "src/kern/CMakeFiles/k2_kern.dir/sched.cpp.o" "gcc" "src/kern/CMakeFiles/k2_kern.dir/sched.cpp.o.d"
  "/root/repo/src/kern/service.cpp" "src/kern/CMakeFiles/k2_kern.dir/service.cpp.o" "gcc" "src/kern/CMakeFiles/k2_kern.dir/service.cpp.o.d"
  "/root/repo/src/kern/thread.cpp" "src/kern/CMakeFiles/k2_kern.dir/thread.cpp.o" "gcc" "src/kern/CMakeFiles/k2_kern.dir/thread.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/soc/CMakeFiles/k2_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/k2_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
