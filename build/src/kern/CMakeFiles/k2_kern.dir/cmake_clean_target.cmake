file(REMOVE_RECURSE
  "libk2_kern.a"
)
