# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_engine_test[1]_include.cmake")
include("/root/repo/build/tests/sim_sync_test[1]_include.cmake")
include("/root/repo/build/tests/sim_util_test[1]_include.cmake")
include("/root/repo/build/tests/soc_core_test[1]_include.cmake")
include("/root/repo/build/tests/soc_platform_test[1]_include.cmake")
include("/root/repo/build/tests/kern_buddy_test[1]_include.cmake")
include("/root/repo/build/tests/kern_sched_test[1]_include.cmake")
include("/root/repo/build/tests/os_dsm_test[1]_include.cmake")
include("/root/repo/build/tests/os_system_test[1]_include.cmake")
include("/root/repo/build/tests/svc_fs_test[1]_include.cmake")
include("/root/repo/build/tests/svc_net_dma_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/os_ndsm_test[1]_include.cmake")
include("/root/repo/build/tests/os_meta_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/k2_stress_test[1]_include.cmake")
include("/root/repo/build/tests/kern_property_test[1]_include.cmake")
include("/root/repo/build/tests/os_iomap_test[1]_include.cmake")
include("/root/repo/build/tests/svc_edge_test[1]_include.cmake")
include("/root/repo/build/tests/svc_sdcard_test[1]_include.cmake")
include("/root/repo/build/tests/soc_config_property_test[1]_include.cmake")
include("/root/repo/build/tests/sim_trace_test[1]_include.cmake")
include("/root/repo/build/tests/determinism_test[1]_include.cmake")
include("/root/repo/build/tests/svc_payload_test[1]_include.cmake")
