file(REMOVE_RECURSE
  "CMakeFiles/svc_net_dma_test.dir/svc_net_dma_test.cpp.o"
  "CMakeFiles/svc_net_dma_test.dir/svc_net_dma_test.cpp.o.d"
  "svc_net_dma_test"
  "svc_net_dma_test.pdb"
  "svc_net_dma_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svc_net_dma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
