# Empty compiler generated dependencies file for svc_net_dma_test.
# This may be replaced when dependencies are built.
