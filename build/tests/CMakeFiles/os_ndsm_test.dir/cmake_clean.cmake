file(REMOVE_RECURSE
  "CMakeFiles/os_ndsm_test.dir/os_ndsm_test.cpp.o"
  "CMakeFiles/os_ndsm_test.dir/os_ndsm_test.cpp.o.d"
  "os_ndsm_test"
  "os_ndsm_test.pdb"
  "os_ndsm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/os_ndsm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
