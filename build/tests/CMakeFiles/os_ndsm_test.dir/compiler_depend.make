# Empty compiler generated dependencies file for os_ndsm_test.
# This may be replaced when dependencies are built.
