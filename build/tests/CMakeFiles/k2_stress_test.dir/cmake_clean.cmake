file(REMOVE_RECURSE
  "CMakeFiles/k2_stress_test.dir/k2_stress_test.cpp.o"
  "CMakeFiles/k2_stress_test.dir/k2_stress_test.cpp.o.d"
  "k2_stress_test"
  "k2_stress_test.pdb"
  "k2_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/k2_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
