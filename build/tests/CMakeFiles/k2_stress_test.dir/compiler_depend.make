# Empty compiler generated dependencies file for k2_stress_test.
# This may be replaced when dependencies are built.
