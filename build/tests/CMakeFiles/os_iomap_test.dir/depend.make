# Empty dependencies file for os_iomap_test.
# This may be replaced when dependencies are built.
