file(REMOVE_RECURSE
  "CMakeFiles/os_iomap_test.dir/os_iomap_test.cpp.o"
  "CMakeFiles/os_iomap_test.dir/os_iomap_test.cpp.o.d"
  "os_iomap_test"
  "os_iomap_test.pdb"
  "os_iomap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/os_iomap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
