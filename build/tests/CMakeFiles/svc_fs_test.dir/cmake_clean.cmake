file(REMOVE_RECURSE
  "CMakeFiles/svc_fs_test.dir/svc_fs_test.cpp.o"
  "CMakeFiles/svc_fs_test.dir/svc_fs_test.cpp.o.d"
  "svc_fs_test"
  "svc_fs_test.pdb"
  "svc_fs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svc_fs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
