# Empty compiler generated dependencies file for svc_sdcard_test.
# This may be replaced when dependencies are built.
