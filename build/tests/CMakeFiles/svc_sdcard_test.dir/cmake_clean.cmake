file(REMOVE_RECURSE
  "CMakeFiles/svc_sdcard_test.dir/svc_sdcard_test.cpp.o"
  "CMakeFiles/svc_sdcard_test.dir/svc_sdcard_test.cpp.o.d"
  "svc_sdcard_test"
  "svc_sdcard_test.pdb"
  "svc_sdcard_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svc_sdcard_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
