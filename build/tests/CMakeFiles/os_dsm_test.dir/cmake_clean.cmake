file(REMOVE_RECURSE
  "CMakeFiles/os_dsm_test.dir/os_dsm_test.cpp.o"
  "CMakeFiles/os_dsm_test.dir/os_dsm_test.cpp.o.d"
  "os_dsm_test"
  "os_dsm_test.pdb"
  "os_dsm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/os_dsm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
