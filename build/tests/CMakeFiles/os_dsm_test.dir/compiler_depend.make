# Empty compiler generated dependencies file for os_dsm_test.
# This may be replaced when dependencies are built.
