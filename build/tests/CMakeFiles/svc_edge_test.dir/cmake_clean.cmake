file(REMOVE_RECURSE
  "CMakeFiles/svc_edge_test.dir/svc_edge_test.cpp.o"
  "CMakeFiles/svc_edge_test.dir/svc_edge_test.cpp.o.d"
  "svc_edge_test"
  "svc_edge_test.pdb"
  "svc_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svc_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
