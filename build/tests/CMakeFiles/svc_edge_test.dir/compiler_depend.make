# Empty compiler generated dependencies file for svc_edge_test.
# This may be replaced when dependencies are built.
