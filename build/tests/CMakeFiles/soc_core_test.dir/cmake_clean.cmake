file(REMOVE_RECURSE
  "CMakeFiles/soc_core_test.dir/soc_core_test.cpp.o"
  "CMakeFiles/soc_core_test.dir/soc_core_test.cpp.o.d"
  "soc_core_test"
  "soc_core_test.pdb"
  "soc_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
