file(REMOVE_RECURSE
  "CMakeFiles/svc_payload_test.dir/svc_payload_test.cpp.o"
  "CMakeFiles/svc_payload_test.dir/svc_payload_test.cpp.o.d"
  "svc_payload_test"
  "svc_payload_test.pdb"
  "svc_payload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svc_payload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
