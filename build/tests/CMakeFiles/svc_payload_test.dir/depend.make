# Empty dependencies file for svc_payload_test.
# This may be replaced when dependencies are built.
