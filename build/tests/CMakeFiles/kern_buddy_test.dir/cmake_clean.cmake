file(REMOVE_RECURSE
  "CMakeFiles/kern_buddy_test.dir/kern_buddy_test.cpp.o"
  "CMakeFiles/kern_buddy_test.dir/kern_buddy_test.cpp.o.d"
  "kern_buddy_test"
  "kern_buddy_test.pdb"
  "kern_buddy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kern_buddy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
