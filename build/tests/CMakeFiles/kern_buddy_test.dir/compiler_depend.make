# Empty compiler generated dependencies file for kern_buddy_test.
# This may be replaced when dependencies are built.
