# Empty dependencies file for os_system_test.
# This may be replaced when dependencies are built.
