file(REMOVE_RECURSE
  "CMakeFiles/kern_sched_test.dir/kern_sched_test.cpp.o"
  "CMakeFiles/kern_sched_test.dir/kern_sched_test.cpp.o.d"
  "kern_sched_test"
  "kern_sched_test.pdb"
  "kern_sched_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kern_sched_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
