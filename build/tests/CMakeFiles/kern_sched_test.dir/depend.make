# Empty dependencies file for kern_sched_test.
# This may be replaced when dependencies are built.
