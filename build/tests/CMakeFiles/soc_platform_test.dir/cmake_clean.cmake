file(REMOVE_RECURSE
  "CMakeFiles/soc_platform_test.dir/soc_platform_test.cpp.o"
  "CMakeFiles/soc_platform_test.dir/soc_platform_test.cpp.o.d"
  "soc_platform_test"
  "soc_platform_test.pdb"
  "soc_platform_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_platform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
