file(REMOVE_RECURSE
  "CMakeFiles/os_meta_test.dir/os_meta_test.cpp.o"
  "CMakeFiles/os_meta_test.dir/os_meta_test.cpp.o.d"
  "os_meta_test"
  "os_meta_test.pdb"
  "os_meta_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/os_meta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
