# Empty compiler generated dependencies file for os_meta_test.
# This may be replaced when dependencies are built.
