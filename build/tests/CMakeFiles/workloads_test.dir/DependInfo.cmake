
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workloads_test.cpp" "tests/CMakeFiles/workloads_test.dir/workloads_test.cpp.o" "gcc" "tests/CMakeFiles/workloads_test.dir/workloads_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/k2_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/k2_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/svc/CMakeFiles/k2_svc.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/k2_os.dir/DependInfo.cmake"
  "/root/repo/build/src/kern/CMakeFiles/k2_kern.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/k2_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/k2_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
