file(REMOVE_RECURSE
  "CMakeFiles/kern_property_test.dir/kern_property_test.cpp.o"
  "CMakeFiles/kern_property_test.dir/kern_property_test.cpp.o.d"
  "kern_property_test"
  "kern_property_test.pdb"
  "kern_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kern_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
