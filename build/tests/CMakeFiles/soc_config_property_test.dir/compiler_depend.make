# Empty compiler generated dependencies file for soc_config_property_test.
# This may be replaced when dependencies are built.
