#include "sim/engine.h"

#include "sim/log.h"

namespace k2 {
namespace sim {

EventId
Engine::at(Time when, std::function<void()> fn)
{
    if (when < now_)
        K2_PANIC("event scheduled in the past (%llu < %llu)",
                 static_cast<unsigned long long>(when),
                 static_cast<unsigned long long>(now_));
    auto record = std::make_shared<EventId::Record>();
    record->fn = std::move(fn);
    queue_.push(QueueEntry{when, seq_++, record});
    return EventId(record);
}

EventId
Engine::after(Duration delay, std::function<void()> fn)
{
    return at(now_ + delay, std::move(fn));
}

void
Engine::cancel(EventId &id)
{
    if (id.record_)
        id.record_->cancelled = true;
    id.record_.reset();
}

void
Engine::spawn(Task<void> task)
{
    if (!task.valid())
        K2_PANIC("spawn of an empty task");
    auto handle = task.release();
    handle.promise().setDetached();
    at(now_, [handle]() { handle.resume(); });
}

void
Engine::resumeLater(std::coroutine_handle<> h)
{
    at(now_, [h]() { h.resume(); });
}

bool
Engine::runOne()
{
    while (!queue_.empty()) {
        QueueEntry entry = queue_.top();
        queue_.pop();
        if (entry.record->cancelled)
            continue;
        now_ = entry.when;
        entry.record->fired = true;
        ++dispatched_;
        // Move the callback out so the record can be dropped even if
        // the callback reschedules.
        auto fn = std::move(entry.record->fn);
        fn();
        return true;
    }
    return false;
}

std::uint64_t
Engine::run(Time until)
{
    std::uint64_t n = 0;
    while (!queue_.empty()) {
        // Skip cancelled entries without advancing time.
        if (queue_.top().record->cancelled) {
            queue_.pop();
            continue;
        }
        if (queue_.top().when > until)
            break;
        if (!runOne())
            break;
        ++n;
    }
    if (until != kTimeNever && now_ < until)
        now_ = until;
    return n;
}

} // namespace sim
} // namespace k2
