#include "sim/engine.h"

#include <algorithm>

#include "snap/io.h"

namespace k2 {
namespace sim {

Engine::~Engine()
{
    // Destroy payloads of events still pending at teardown (coroutine
    // frames are owned elsewhere; callables are destroyed in place).
    for (const HeapEntry &e : heap_) {
        Record &r = rec(e.slot);
        if (r.gen == e.gen && r.kind != Record::Kind::Free)
            destroyPayload(r);
    }
}

Engine::Slot
Engine::allocSlot(Time when)
{
    if (when < now_)
        K2_PANIC("event scheduled in the past (%llu < %llu)",
                 static_cast<unsigned long long>(when),
                 static_cast<unsigned long long>(now_));
    std::uint32_t slot;
    if (freeHead_ != EventId::kInvalidSlot) {
        slot = freeHead_;
        freeHead_ = rec(slot).nextFree;
    } else {
        if (allocatedSlots_ == chunks_.size() * kChunkSize)
            chunks_.push_back(std::make_unique<Record[]>(kChunkSize));
        slot = allocatedSlots_++;
    }
    Record &r = rec(slot);
    heapPush(HeapEntry{when, seq_++, slot, r.gen});
    ++live_;
    return Slot{&r, slot};
}

void
Engine::freeSlot(std::uint32_t slot, Record &r)
{
    ++r.gen;
    r.kind = Record::Kind::Free;
    r.manager = nullptr;
    r.nextFree = freeHead_;
    freeHead_ = slot;
    --live_;
}

void
Engine::destroyPayload(Record &r)
{
    switch (r.kind) {
      case Record::Kind::Coro:
        // The engine does not own coroutine frames; dropping the
        // handle matches the previous std::function behaviour.
        break;
      case Record::Kind::Inline:
        r.manager(CbOp::Destroy, r.payload.buf, nullptr);
        break;
      case Record::Kind::Heap:
        r.manager(CbOp::Destroy, r.payload.heap, nullptr);
        break;
      case Record::Kind::Free:
        break;
    }
}

void
Engine::cancel(EventId &id)
{
    if (id.slot_ != EventId::kInvalidSlot && id.slot_ < allocatedSlots_) {
        Record &r = rec(id.slot_);
        if (r.gen == id.gen_ && r.kind != Record::Kind::Free) {
            destroyPayload(r);
            freeSlot(id.slot_, r);
            // The heap entry stays behind and is dropped (by its stale
            // generation) when it reaches the top, or swept out by
            // compaction once stale entries dominate.
            ++staleEntries_;
            if (staleEntries_ > 64 && staleEntries_ * 2 > heap_.size())
                compactHeap();
        }
    }
    id = EventId();
}

EventId
Engine::atResume(Time when, std::coroutine_handle<> h)
{
    Slot s = allocSlot(when);
    s.rec->payload.coro = h;
    s.rec->kind = Record::Kind::Coro;
    return EventId(s.slot, s.rec->gen);
}

void
Engine::spawn(Task<void> task)
{
    if (!task.valid())
        K2_PANIC("spawn of an empty task");
    auto handle = task.release();
    handle.promise().setDetached();
    atResume(now_, handle);
}

void
Engine::heapPush(const HeapEntry &e)
{
    heap_.push_back(e);
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
        const std::size_t parent = (i - 1) >> 2;
        if (!earlier(heap_[i], heap_[parent]))
            break;
        std::swap(heap_[i], heap_[parent]);
        i = parent;
    }
}

void
Engine::siftDown(std::size_t i)
{
    // Move heap_[i] down in place until both it and all four children
    // satisfy the heap order (no repeated swaps; one write per level).
    const std::size_t n = heap_.size();
    const HeapEntry moved = heap_[i];
    for (;;) {
        const std::size_t first = (i << 2) + 1;
        if (first >= n)
            break;
        std::size_t best = first;
        const std::size_t last = std::min(first + 4, n);
        for (std::size_t c = first + 1; c < last; ++c) {
            if (earlier(heap_[c], heap_[best]))
                best = c;
        }
        if (!earlier(heap_[best], moved))
            break;
        heap_[i] = heap_[best];
        i = best;
    }
    heap_[i] = moved;
}

void
Engine::heapPopTop()
{
    heap_[0] = heap_.back();
    heap_.pop_back();
    if (heap_.size() > 1)
        siftDown(0);
}

void
Engine::compactHeap()
{
    std::size_t keep = 0;
    for (const HeapEntry &e : heap_) {
        if (rec(e.slot).gen == e.gen)
            heap_[keep++] = e;
    }
    heap_.resize(keep);
    staleEntries_ = 0;
    if (keep > 1) {
        // Floyd heapify: sift down every internal node.
        for (std::size_t i = (keep - 2) / 4 + 1; i-- > 0;)
            siftDown(i);
    }
}

void
Engine::dispatch(std::uint32_t slot, Record &r)
{
    switch (r.kind) {
      case Record::Kind::Coro: {
        const std::coroutine_handle<> h = r.payload.coro;
        freeSlot(slot, r);
        h.resume();
        break;
      }
      case Record::Kind::Inline: {
        // Relocate the callable out of the pool before invoking so it
        // may reschedule (and even land in this very slot) safely.
        alignas(std::max_align_t) unsigned char tmp[kInlineCapture];
        const Manager mgr = r.manager;
        mgr(CbOp::Relocate, r.payload.buf, tmp);
        freeSlot(slot, r);
        PayloadGuard guard{mgr, tmp};
        mgr(CbOp::Invoke, tmp, nullptr);
        break;
      }
      case Record::Kind::Heap: {
        void *obj = r.payload.heap;
        const Manager mgr = r.manager;
        freeSlot(slot, r);
        PayloadGuard guard{mgr, obj};
        mgr(CbOp::Invoke, obj, nullptr);
        break;
      }
      case Record::Kind::Free:
        K2_PANIC("dispatch of a free event slot");
    }
}

bool
Engine::runOne()
{
    while (!heap_.empty()) {
        const HeapEntry e = heap_[0];
        heapPopTop();
        Record &r = rec(e.slot);
        if (r.gen != e.gen) {
            // Cancelled; the slot may already be reused.
            --staleEntries_;
            continue;
        }
        now_ = e.when;
        ++dispatched_;
        dispatch(e.slot, r);
        return true;
    }
    return false;
}

void
Engine::snapState(snap::Io &io)
{
    // Quiescence: nothing pending, so the slab is entirely a free-list
    // permutation and no payload/coroutine serialisation is needed.
    K2_ASSERT(heap_.empty());
    K2_ASSERT(live_ == 0);
    K2_ASSERT(staleEntries_ == 0);

    io.pod(now_);
    io.pod(seq_);
    io.pod(dispatched_);
    tracer_.snapState(io);

    // The slot table: the exact generation values and free-list chain
    // determine which {slot, gen} handles future allocations receive,
    // so restoring them makes a rewound engine indistinguishable from
    // a cold-booted one. The pool only ever grows; a restore target
    // must cover the captured high-water mark.
    std::uint32_t alloc = allocatedSlots_;
    io.pod(alloc);
    std::uint32_t head = freeHead_;
    io.pod(head);
    if (io.restoring()) {
        K2_ASSERT(alloc <= allocatedSlots_);
        // Slots past the captured high-water mark go back to pristine:
        // they will be handed out through the bump path with gen 0,
        // exactly as on a cold engine.
        for (std::uint32_t s = alloc; s < allocatedSlots_; ++s) {
            Record &r = rec(s);
            r.gen = 0;
            r.nextFree = EventId::kInvalidSlot;
            r.kind = Record::Kind::Free;
            r.manager = nullptr;
        }
        allocatedSlots_ = alloc;
        freeHead_ = head;
    }
    for (std::uint32_t s = 0; s < alloc; ++s) {
        Record &r = rec(s);
        K2_ASSERT(r.kind == Record::Kind::Free);
        io.pod(r.gen);
        io.pod(r.nextFree);
    }
}

std::uint64_t
Engine::run(Time until)
{
    std::uint64_t n = 0;
    while (!heap_.empty()) {
        // Drop cancelled entries without advancing time.
        const HeapEntry &top = heap_[0];
        if (rec(top.slot).gen != top.gen) {
            heapPopTop();
            --staleEntries_;
            continue;
        }
        if (top.when > until)
            break;
        if (!runOne())
            break;
        ++n;
    }
    if (until != kTimeNever && now_ < until)
        now_ = until;
    return n;
}

} // namespace sim
} // namespace k2
