/**
 * @file
 * Mergeable streaming quantile sketch for fleet-scale aggregation.
 *
 * A QuantileSketch summarises an unbounded sample stream in O(1)
 * memory: count, fixed-point sum, exact min/max, and the same log2
 * buckets as sim::Histogram. Unlike Histogram (whose double sum makes
 * merging order-sensitive), every field here merges with an operation
 * that is exactly associative AND commutative on the host:
 *
 *  - count and buckets are integers (modular addition is exact);
 *  - the sum is kept in 2^-20 fixed point (each sample is rounded
 *    once at sample() time, then summed in a 128-bit integer, so no
 *    floating-point rounding depends on merge order);
 *  - min/max use IEEE min/max, associative and commutative for the
 *    non-NaN samples the simulator produces.
 *
 * Consequence: reducing per-worker partial sketches yields
 * byte-identical results no matter how samples were sharded or in
 * which order the partials are merged -- the property the parallel
 * fleet harness's streaming reducer relies on (DESIGN.md §11).
 */

#ifndef K2_SIM_SKETCH_H
#define K2_SIM_SKETCH_H

#include <array>
#include <cstdint>
#include <limits>

#include "sim/stats.h"

namespace k2 {
namespace sim {

class QuantileSketch
{
  public:
    static constexpr std::size_t kBuckets = Histogram::kBuckets;

    /** Fixed-point scale for the sum: 2^20 sub-unit steps. Samples
     *  are exact to ~1e-6; representable magnitude ~8.8e12 per
     *  sample, far beyond any simulated energy/latency value. */
    static constexpr double kSumScale = 1048576.0;

    void sample(double v);

    /**
     * Sample @p n contiguous values. Element-for-element identical to
     * calling sample(v[i]) in order (a test asserts exact state
     * equality); batched so the accumulators stay in registers across
     * the fleet synthesizer's scratch arrays instead of being
     * reloaded per call.
     */
    void sampleBatch(const double *v, std::size_t n);

    /**
     * Fold @p other into this sketch. Exactly associative and
     * commutative (see file comment); merging shard sketches is
     * bit-identical to sampling the concatenated stream.
     */
    void merge(const QuantileSketch &other);

    std::uint64_t count() const { return count_; }
    double sum() const { return static_cast<double>(sumFp_) / kSumScale; }
    double mean() const { return count_ ? sum() / count_ : 0.0; }

    /** NaN when empty, like Accumulator. @{ */
    double min() const;
    double max() const;
    /** @} */

    /** Nearest-rank percentile (same semantics as
     *  Histogram::percentile). */
    double percentile(double p) const;

    std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }

    void reset() { *this = QuantileSketch(); }

    /** Exact state equality (merge property tests). */
    bool operator==(const QuantileSketch &) const = default;

  private:
    std::uint64_t count_ = 0;
    __int128 sumFp_ = 0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
    std::array<std::uint64_t, kBuckets> buckets_{};
};

} // namespace sim
} // namespace k2

#endif // K2_SIM_SKETCH_H
