#include "sim/log.h"

#include <cstdarg>
#include <cstdio>

#include "sim/time.h"

namespace k2 {
namespace sim {

namespace {

LogLevel g_level = LogLevel::Normal;

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<size_t>(n));
        std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    }
    va_end(ap2);
    return out;
}

} // namespace

std::string
formatTime(Time t)
{
    char buf[64];
    if (t < nsec(10))
        std::snprintf(buf, sizeof(buf), "%llu ps",
                      static_cast<unsigned long long>(t));
    else if (t < usec(10))
        std::snprintf(buf, sizeof(buf), "%.3f ns", toNsec(t));
    else if (t < msec(10))
        std::snprintf(buf, sizeof(buf), "%.3f us", toUsec(t));
    else if (t < sec(10))
        std::snprintf(buf, sizeof(buf), "%.3f ms", toMsec(t));
    else
        std::snprintf(buf, sizeof(buf), "%.3f s", toSec(t));
    return buf;
}

std::string
strPrintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string out = vformat(fmt, ap);
    va_end(ap);
    return out;
}

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    const std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    const std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    throw FatalError(msg);
}

void
warnImpl(const char *fmt, ...)
{
    if (g_level == LogLevel::Quiet)
        return;
    va_list ap;
    va_start(ap, fmt);
    const std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const char *fmt, ...)
{
    if (g_level == LogLevel::Quiet)
        return;
    va_list ap;
    va_start(ap, fmt);
    const std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

void
traceImpl(const char *fmt, ...)
{
    if (g_level != LogLevel::Verbose)
        return;
    va_list ap;
    va_start(ap, fmt);
    const std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "trace: %s\n", msg.c_str());
}

} // namespace sim
} // namespace k2
