#include "sim/log.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>

#include "sim/time.h"

namespace k2 {
namespace sim {

namespace {

/** Process-wide default verbosity; immutable-after-init by contract
 *  (see setLogLevel), atomic so a late write is still well-defined. */
std::atomic<LogLevel> g_level{LogLevel::Normal};

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<size_t>(n));
        std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    }
    va_end(ap2);
    return out;
}

} // namespace

/** Route one finished line of inform() text to the thread's sink. */
void
logToOut(const std::string &line)
{
    ScopedLogConfig::State &st = ScopedLogConfig::threadState();
    if (st.active && st.out)
        st.out->append(line);
    else
        std::fwrite(line.data(), 1, line.size(), stdout);
}

/** Route one finished line of warn()/trace() text to the thread's
 *  sink. */
void
logToErr(const std::string &line)
{
    ScopedLogConfig::State &st = ScopedLogConfig::threadState();
    if (st.active && st.err)
        st.err->append(line);
    else
        std::fwrite(line.data(), 1, line.size(), stderr);
}

ScopedLogConfig::State &
ScopedLogConfig::threadState()
{
    thread_local State state;
    return state;
}

ScopedLogConfig::ScopedLogConfig(LogLevel level, std::string *out,
                                 std::string *err)
{
    State &st = threadState();
    prev_ = st;
    st.active = true;
    st.level = level;
    st.out = out;
    st.err = err;
}

ScopedLogConfig::~ScopedLogConfig()
{
    threadState() = prev_;
}

std::string
formatTime(Time t)
{
    char buf[64];
    if (t < nsec(10))
        std::snprintf(buf, sizeof(buf), "%llu ps",
                      static_cast<unsigned long long>(t));
    else if (t < usec(10))
        std::snprintf(buf, sizeof(buf), "%.3f ns", toNsec(t));
    else if (t < msec(10))
        std::snprintf(buf, sizeof(buf), "%.3f us", toUsec(t));
    else if (t < sec(10))
        std::snprintf(buf, sizeof(buf), "%.3f ms", toMsec(t));
    else
        std::snprintf(buf, sizeof(buf), "%.3f s", toSec(t));
    return buf;
}

std::string
strPrintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string out = vformat(fmt, ap);
    va_end(ap);
    return out;
}

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    const ScopedLogConfig::State &st = ScopedLogConfig::threadState();
    if (st.active)
        return st.level;
    return g_level.load(std::memory_order_relaxed);
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    const std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    const std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    throw FatalError(msg);
}

namespace {

std::string
makeLine(const char *prefix, const std::string &msg)
{
    std::string line;
    line.reserve(std::char_traits<char>::length(prefix) + msg.size() + 1);
    line.append(prefix);
    line.append(msg);
    line.push_back('\n');
    return line;
}

} // namespace

void
warnImpl(const char *fmt, ...)
{
    if (logLevel() == LogLevel::Quiet)
        return;
    va_list ap;
    va_start(ap, fmt);
    const std::string msg = vformat(fmt, ap);
    va_end(ap);
    logToErr(makeLine("warn: ", msg));
}

void
informImpl(const char *fmt, ...)
{
    if (logLevel() == LogLevel::Quiet)
        return;
    va_list ap;
    va_start(ap, fmt);
    const std::string msg = vformat(fmt, ap);
    va_end(ap);
    logToOut(makeLine("info: ", msg));
}

void
traceImpl(const char *fmt, ...)
{
    if (logLevel() != LogLevel::Verbose)
        return;
    va_list ap;
    va_start(ap, fmt);
    const std::string msg = vformat(fmt, ap);
    va_end(ap);
    logToErr(makeLine("trace: ", msg));
}

} // namespace sim
} // namespace k2
