/**
 * @file
 * Lightweight statistics: counters and sample accumulators.
 *
 * Components expose Counter and Accumulator members; benches and tests
 * read them directly. Accumulator tracks count/sum/min/max and mean;
 * Histogram additionally keeps log2 buckets for latency distributions.
 */

#ifndef K2_SIM_STATS_H
#define K2_SIM_STATS_H

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <string>

namespace k2 {
namespace sim {

/** A monotonically increasing event counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Accumulates scalar samples (latencies, sizes, ...). */
class Accumulator
{
  public:
    void
    sample(double v)
    {
        ++count_;
        sum_ += v;
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    void
    reset()
    {
        count_ = 0;
        sum_ = 0.0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** An accumulator with log2-bucketed distribution. */
class Histogram
{
  public:
    static constexpr std::size_t kBuckets = 64;

    void
    sample(double v)
    {
        acc_.sample(v);
        const auto u = static_cast<std::uint64_t>(std::max(v, 0.0));
        std::size_t bucket = 0;
        while ((1ull << bucket) <= u && bucket + 1 < kBuckets)
            ++bucket;
        ++buckets_[bucket];
    }

    const Accumulator &acc() const { return acc_; }
    std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }

    /** Approximate p-th percentile from the bucket boundaries. */
    double percentile(double p) const;

    void
    reset()
    {
        acc_.reset();
        buckets_.fill(0);
    }

  private:
    Accumulator acc_;
    std::array<std::uint64_t, kBuckets> buckets_{};
};

} // namespace sim
} // namespace k2

#endif // K2_SIM_STATS_H
