/**
 * @file
 * Lightweight statistics: counters and sample accumulators.
 *
 * Components expose Counter and Accumulator members; benches and tests
 * read them directly, and the observability layer (obs::MetricsRegistry)
 * registers them under hierarchical names. Accumulator tracks
 * count/sum/min/max and mean; Histogram additionally keeps log2 buckets
 * for latency distributions.
 */

#ifndef K2_SIM_STATS_H
#define K2_SIM_STATS_H

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <limits>
#include <string>

namespace k2 {
namespace sim {

/** A monotonically increasing event counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Accumulates scalar samples (latencies, sizes, ...).
 *
 * min()/max() of an empty accumulator are NaN (there is no sample to
 * report); renderers show them as "-". mean() of an empty accumulator
 * stays 0.0 so rate-style readers need no special case.
 */
class Accumulator
{
  public:
    void
    sample(double v)
    {
        ++count_;
        sum_ += v;
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }

    double
    min() const
    {
        return count_ ? min_
                      : std::numeric_limits<double>::quiet_NaN();
    }

    double
    max() const
    {
        return count_ ? max_
                      : std::numeric_limits<double>::quiet_NaN();
    }

    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    void
    reset()
    {
        count_ = 0;
        sum_ = 0.0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

namespace detail {

/**
 * Nearest-rank percentile over log2 buckets (shared by Histogram and
 * QuantileSketch).
 *
 * Locates the rank-ceil(p*total) smallest sample (@p p clamped into
 * [0, 1]; rank clamped into [1, total]). Rank 1 is the exact observed
 * minimum; any other rank reports the upper boundary 2^(i+1) of its
 * bucket, clamped into [@p min, @p max]. Returns 0 when @p total is 0.
 */
double bucketPercentile(const std::uint64_t *buckets,
                        std::size_t nbuckets, std::uint64_t total,
                        double min, double max, double p);

} // namespace detail

/**
 * An accumulator with log2-bucketed distribution.
 *
 * Bucket boundaries: bucket i holds samples in [2^i, 2^(i+1)), except
 * that bucket 0 additionally absorbs everything below 2 (zero,
 * sub-unit samples, negatives, NaN) and the last bucket absorbs
 * everything at or above 2^63 -- including values too large to
 * represent in a uint64_t, which must never reach the double->integer
 * cast (that conversion is undefined behaviour out of range).
 */
class Histogram
{
  public:
    static constexpr std::size_t kBuckets = 64;

    /** The bucket a sample value falls into (see class comment). */
    static std::size_t
    bucketIndex(double v)
    {
        // Catches v < 2 as well as NaN (every comparison with NaN is
        // false), so the exponent read below sees a positive value.
        if (!(v >= 2.0))
            return 0;
        // For v >= 2 the unbiased IEEE-754 exponent IS floor(log2 v),
        // i.e. the log2 bucket; reading it from the bits replaces the
        // double->integer conversion + bit_width of the truncated
        // value (bit-identical on the whole domain, including the
        // >= 2^63 clamp and infinity -- a test checks every power-of-
        // two boundary) with two integer ops on the sketch hot path.
        // The sign bit is 0 here (v >= 2), so no masking is needed.
        const auto bits = std::bit_cast<std::uint64_t>(v);
        return std::min<std::size_t>((bits >> 52) - 1023,
                                     kBuckets - 1);
    }

    /** Inclusive lower boundary of bucket @p i. */
    static constexpr double
    bucketLow(std::size_t i)
    {
        return i == 0 ? 0.0 : static_cast<double>(1ull << i);
    }

    void
    sample(double v)
    {
        acc_.sample(v);
        ++buckets_[bucketIndex(v)];
    }

    const Accumulator &acc() const { return acc_; }
    std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }

    /**
     * Approximate p-th percentile with nearest-rank semantics: the
     * value of the rank-ceil(p*count) smallest sample, located by
     * bucket. Rank 1 (p == 0, or any p small enough) is the exact
     * observed minimum; otherwise the result is the upper boundary
     * 2^(i+1) of the bucket holding the ranked sample, clamped into
     * [min(), max()]. An empty histogram reports 0; @p p is clamped
     * into [0, 1].
     */
    double percentile(double p) const;

    void
    reset()
    {
        acc_.reset();
        buckets_.fill(0);
    }

  private:
    Accumulator acc_;
    std::array<std::uint64_t, kBuckets> buckets_{};
};

} // namespace sim
} // namespace k2

#endif // K2_SIM_STATS_H
