#include "sim/sync.h"

#include <memory>
#include <vector>

namespace k2 {
namespace sim {

namespace {

Task<void>
runAndCount(Task<void> task, std::shared_ptr<std::size_t> remaining,
            std::shared_ptr<Event> done)
{
    co_await task;
    K2_ASSERT(*remaining > 0);
    if (--*remaining == 0)
        done->set();
}

} // namespace

Task<void>
whenAll(Engine &eng, std::vector<Task<void>> tasks)
{
    if (tasks.empty())
        co_return;
    auto remaining = std::make_shared<std::size_t>(tasks.size());
    auto done = std::make_shared<Event>(eng);
    for (auto &t : tasks)
        eng.spawn(runAndCount(std::move(t), remaining, done));
    tasks.clear();
    co_await done->wait();
}

} // namespace sim
} // namespace k2
