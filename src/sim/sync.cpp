#include "sim/sync.h"

#include <vector>

namespace k2 {
namespace sim {

namespace {

/** Join state shared by whenAll() and its children. Lives in the
 *  whenAll() coroutine frame, which outlives every child: the frame is
 *  only destroyed after the last child sets `done` and the deferred
 *  wakeup resumes (and finishes) whenAll(). */
struct JoinState
{
    std::size_t remaining;
    Event done;
};

Task<void>
runAndCount(Task<void> task, JoinState *join)
{
    co_await task;
    K2_ASSERT(join->remaining > 0);
    if (--join->remaining == 0)
        join->done.set();
}

} // namespace

Task<void>
whenAll(Engine &eng, std::vector<Task<void>> tasks)
{
    if (tasks.empty())
        co_return;
    JoinState join{tasks.size(), Event(eng)};
    for (auto &t : tasks)
        eng.spawn(runAndCount(std::move(t), &join));
    tasks.clear();
    co_await join.done.wait();
}

} // namespace sim
} // namespace k2
