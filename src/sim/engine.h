/**
 * @file
 * Discrete-event simulation engine.
 *
 * One Engine drives an entire simulated SoC. Events are callbacks
 * ordered by (time, insertion sequence); ties are broken FIFO so runs
 * are bit-for-bit deterministic. Coroutines interact with the engine
 * through awaitables (sleep) and by being spawned as detached top-level
 * activities.
 *
 * The event core is allocation-free on its common paths:
 *
 *  - Event records live in an engine-owned slab pool and are addressed
 *    by a {slot, generation} handle (EventId). Cancelling bumps the
 *    slot's generation, so stale handles (including handles to events
 *    that already fired) are detected and ignored even after the slot
 *    has been reused.
 *  - The payload is tagged, not type-erased through std::function: a
 *    raw coroutine handle (used by sleep()/resumeLater()/spawn()), an
 *    inline small-buffer callable for typical device-model lambdas
 *    (up to kInlineCapture bytes of capture, no heap), or an
 *    out-of-line fallback for large captures.
 *  - Pending events sit in an engine-owned 4-ary min-heap of small POD
 *    entries; pop-min moves entries in place (no copy-out of a
 *    type-erased callback) and cancelled entries are dropped as soon
 *    as they surface at the top.
 */

#ifndef K2_SIM_ENGINE_H
#define K2_SIM_ENGINE_H

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/log.h"
#include "sim/task.h"
#include "sim/time.h"
#include "sim/trace.h"

namespace k2 {
namespace snap {
class Io;
}
namespace sim {

/**
 * Handle used to cancel a scheduled event.
 *
 * A cheap {slot, generation} pair into the Engine's event pool. Copies
 * alias the same event; once the event fires or is cancelled the slot's
 * generation moves on and every outstanding handle becomes a no-op.
 */
class EventId
{
  public:
    EventId() = default;

    /** True if this handle refers to an event (possibly already run). */
    bool valid() const { return slot_ != kInvalidSlot; }

  private:
    friend class Engine;

    static constexpr std::uint32_t kInvalidSlot = 0xffffffffu;

    EventId(std::uint32_t slot, std::uint32_t gen)
        : slot_(slot), gen_(gen)
    {}

    std::uint32_t slot_ = kInvalidSlot;
    std::uint32_t gen_ = 0;
};

/**
 * The discrete-event engine.
 */
class Engine
{
  public:
    /** Callable captures up to this size are stored inline (no heap). */
    static constexpr std::size_t kInlineCapture = 4 * sizeof(void *);

    Engine() = default;
    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;
    ~Engine();

    /** Current simulated time. */
    Time now() const { return now_; }

    /**
     * Schedule a callback at an absolute simulated time.
     *
     * Small callables (<= kInlineCapture bytes of capture) are stored
     * inline in the event pool; larger ones fall back to one heap
     * allocation.
     *
     * @param when Absolute time; must be >= now().
     * @param fn Callback to run.
     * @return Handle usable with cancel().
     */
    template <typename F>
    EventId
    at(Time when, F &&fn)
    {
        using Fn = std::decay_t<F>;
        Slot s = allocSlot(when);
        try {
            if constexpr (sizeof(Fn) <= kInlineCapture &&
                          alignof(Fn) <= alignof(std::max_align_t) &&
                          std::is_nothrow_move_constructible_v<Fn>) {
                ::new (static_cast<void *>(s.rec->payload.buf))
                    Fn(std::forward<F>(fn));
                s.rec->kind = Record::Kind::Inline;
                s.rec->manager = &inlineManager<Fn>;
            } else {
                s.rec->payload.heap = new Fn(std::forward<F>(fn));
                s.rec->kind = Record::Kind::Heap;
                s.rec->manager = &heapManager<Fn>;
            }
        } catch (...) {
            // The capture's copy/move or the heap allocation threw;
            // unschedule the already-queued record.
            ++staleEntries_;
            freeSlot(s.slot, *s.rec);
            throw;
        }
        return EventId(s.slot, s.rec->gen);
    }

    /** Schedule a callback after a relative delay. */
    template <typename F>
    EventId
    after(Duration delay, F &&fn)
    {
        return at(now_ + delay, std::forward<F>(fn));
    }

    /**
     * Schedule a coroutine resume at an absolute time (fast path: no
     * callable wrapper, no allocation).
     */
    EventId atResume(Time when, std::coroutine_handle<> h);

    /** Cancel a pending event; no-op if it already ran. */
    void cancel(EventId &id);

    /**
     * Detach a Task<void> as a top-level simulated activity.
     *
     * The task starts at the current time (as a scheduled event, not
     * inline) and frees its own frame on completion.
     */
    void spawn(Task<void> task);

    /** Awaitable that suspends the caller for a simulated duration. */
    class SleepAwaiter
    {
      public:
        SleepAwaiter(Engine &eng, Duration d)
            : engine_(eng), delay_(d)
        {}

        bool await_ready() const { return delay_ == 0; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            engine_.atResume(engine_.now() + delay_, h);
        }

        void await_resume() const {}

      private:
        Engine &engine_;
        Duration delay_;
    };

    /** Suspend the calling coroutine for @p d simulated time. */
    SleepAwaiter sleep(Duration d) { return SleepAwaiter(*this, d); }

    /** Resume a coroutine handle at the current time (as an event). */
    void resumeLater(std::coroutine_handle<> h) { atResume(now_, h); }

    /**
     * Run events until the queue is empty or simulated time would
     * exceed @p until.
     *
     * @param until Inclusive time horizon.
     * @return Number of events dispatched.
     */
    std::uint64_t run(Time until = kTimeNever);

    /** Run a single event. @return false if the queue was empty. */
    bool runOne();

    /** Number of events dispatched since construction. */
    std::uint64_t eventsDispatched() const { return dispatched_; }

    /** Number of live (not cancelled) pending events. */
    std::size_t pendingEvents() const { return live_; }

    /** Total event-record slots ever allocated (pool high-water). */
    std::size_t poolCapacity() const { return allocatedSlots_; }

    /** The engine's trace ring buffer (disabled by default). */
    Tracer &tracer() { return tracer_; }
    const Tracer &tracer() const { return tracer_; }

    /**
     * Capture/restore the engine's state (snap::Snapshot).
     *
     * Precondition both ways: quiescent -- the event heap is empty and
     * no live records exist, so the slab is one free-list permutation.
     * Restore rewrites the clock, the dispatch/sequence counters, the
     * tracer, and the exact slot-generation + free-list chain, so a
     * rewound engine hands out byte-identical EventIds to a cold one.
     */
    void snapState(snap::Io &io);

    /** Record a trace event at the current time (cheap when the
     *  category is disabled -- check tracer().on(cat) before
     *  formatting, or use K2_TRACE which does it for you). */
    void
    trace(TraceCat cat, std::string text)
    {
        tracer_.record(now_, cat, std::move(text));
    }

    /**
     * @name Structured-span helpers.
     *
     * Thin wrappers over the tracer's span API stamped with now().
     * All are a single flag test when spans are disabled, keeping the
     * dispatch path allocation- and work-free. @{
     */
    TrackId addTrack(const std::string &name)
    {
        return tracer_.addTrack(name);
    }

    void
    spanBegin(TrackId track, const char *name)
    {
        if (tracer_.spansOn())
            tracer_.spanBegin(now_, track, name);
    }

    void
    spanEnd(TrackId track)
    {
        if (tracer_.spansOn())
            tracer_.spanEnd(now_, track);
    }

    /** Complete span from @p start to now(). */
    void
    spanComplete(Time start, TrackId track, const char *name)
    {
        if (tracer_.spansOn())
            tracer_.spanComplete(start, now_ - start, track, name);
    }

    void
    spanInstant(TrackId track, const char *name, double value = 0.0)
    {
        if (tracer_.spansOn())
            tracer_.spanInstant(now_, track, name, value);
    }

    void
    spanCounter(TrackId track, const char *name, double value)
    {
        if (tracer_.spansOn())
            tracer_.spanCounter(now_, track, name, value);
    }
    /** @} */

  private:
    /** Operations a payload manager implements for its callable. */
    enum class CbOp
    {
        Invoke,   //!< Call the callable.
        Destroy,  //!< Destroy (and, for heap payloads, free) it.
        Relocate, //!< Move-construct into @p dst, destroy the source.
    };

    using Manager = void (*)(CbOp op, void *obj, void *dst);

    /** One pooled event record. Slots are recycled through a free
     *  list; gen disambiguates incarnations of the same slot. */
    struct Record
    {
        enum class Kind : std::uint8_t
        {
            Free,   //!< On the free list.
            Coro,   //!< payload.coro: raw coroutine handle.
            Inline, //!< payload.buf: callable stored in place.
            Heap,   //!< payload.heap: pointer to heap callable.
        };

        union Payload
        {
            std::coroutine_handle<> coro;
            void *heap;
            alignas(std::max_align_t) unsigned char buf[kInlineCapture];

            Payload()
                : heap(nullptr)
            {}
        };

        Payload payload;
        Manager manager = nullptr;
        std::uint32_t gen = 0;
        std::uint32_t nextFree = EventId::kInvalidSlot;
        Kind kind = Kind::Free;
    };

    /** Pending-event heap entry: POD, moved freely during sifts. */
    struct HeapEntry
    {
        Time when;
        std::uint64_t seq;
        std::uint32_t slot;
        std::uint32_t gen;
    };

    struct Slot
    {
        Record *rec;
        std::uint32_t slot;
    };

    /** Destroys a dispatched callable even if invoking it throws. */
    struct PayloadGuard
    {
        Manager mgr;
        void *obj;

        ~PayloadGuard() { mgr(CbOp::Destroy, obj, nullptr); }
    };

    template <typename Fn>
    static void
    inlineManager(CbOp op, void *obj, void *dst)
    {
        Fn *f = static_cast<Fn *>(obj);
        switch (op) {
          case CbOp::Invoke:
            (*f)();
            break;
          case CbOp::Destroy:
            f->~Fn();
            break;
          case CbOp::Relocate:
            ::new (dst) Fn(std::move(*f));
            f->~Fn();
            break;
        }
    }

    template <typename Fn>
    static void
    heapManager(CbOp op, void *obj, void *)
    {
        Fn *f = static_cast<Fn *>(obj);
        switch (op) {
          case CbOp::Invoke:
            (*f)();
            break;
          case CbOp::Destroy:
            delete f;
            break;
          case CbOp::Relocate:
            break; // heap payloads move by pointer; nothing to do
        }
    }

    /** Pop a record slot off the free list (growing the pool by one
     *  slab if needed) and push its heap entry for time @p when. */
    Slot allocSlot(Time when);

    /** Return a slot to the free list, invalidating outstanding
     *  handles via the generation bump. */
    void freeSlot(std::uint32_t slot, Record &r);

    /** Destroy a pending record's payload without running it. */
    void destroyPayload(Record &r);

    /** Run the record in @p slot (frees the slot before invoking so
     *  the callback may freely reschedule). */
    void dispatch(std::uint32_t slot, Record &r);

    Record &
    rec(std::uint32_t slot)
    {
        return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
    }

    static bool
    earlier(const HeapEntry &a, const HeapEntry &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    void heapPush(const HeapEntry &e);
    void heapPopTop();
    void siftDown(std::size_t i);

    /** Rebuild the heap without its cancelled (stale) entries. Called
     *  when they outnumber the live ones, so a cancel-heavy workload
     *  (timer re-arming) cannot grow the queue unboundedly. */
    void compactHeap();

    static constexpr std::uint32_t kChunkShift = 8;
    static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;

    Time now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t dispatched_ = 0;
    std::size_t live_ = 0;
    std::size_t staleEntries_ = 0;
    Tracer tracer_;
    std::vector<HeapEntry> heap_;
    std::vector<std::unique_ptr<Record[]>> chunks_;
    std::uint32_t freeHead_ = EventId::kInvalidSlot;
    std::uint32_t allocatedSlots_ = 0;
};

} // namespace sim
} // namespace k2

/**
 * Record a trace event, formatting lazily: the printf-style arguments
 * are only evaluated when @p cat is enabled on @p eng's tracer.
 * @p eng and @p cat are evaluated more than once; keep them
 * side-effect free.
 */
#define K2_TRACE(eng, cat, ...)                                             \
    do {                                                                    \
        if ((eng).tracer().on(cat))                                         \
            (eng).trace((cat), ::k2::sim::strPrintf(__VA_ARGS__));          \
    } while (0)

#endif // K2_SIM_ENGINE_H
