/**
 * @file
 * Discrete-event simulation engine.
 *
 * One Engine drives an entire simulated SoC. Events are callbacks
 * ordered by (time, insertion sequence); ties are broken FIFO so runs
 * are bit-for-bit deterministic. Coroutines interact with the engine
 * through awaitables (sleep) and by being spawned as detached top-level
 * activities.
 */

#ifndef K2_SIM_ENGINE_H
#define K2_SIM_ENGINE_H

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/task.h"
#include "sim/time.h"
#include "sim/trace.h"

namespace k2 {
namespace sim {

/** Handle used to cancel a scheduled event. */
class EventId
{
  public:
    EventId() = default;

    /** True if this handle refers to an event (possibly already run). */
    bool valid() const { return static_cast<bool>(record_); }

  private:
    friend class Engine;

    struct Record
    {
        std::function<void()> fn;
        bool cancelled = false;
        bool fired = false;
    };

    explicit EventId(std::shared_ptr<Record> r)
        : record_(std::move(r))
    {}

    std::shared_ptr<Record> record_;
};

/**
 * The discrete-event engine.
 */
class Engine
{
  public:
    Engine() = default;
    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /** Current simulated time. */
    Time now() const { return now_; }

    /**
     * Schedule a callback at an absolute simulated time.
     *
     * @param when Absolute time; must be >= now().
     * @param fn Callback to run.
     * @return Handle usable with cancel().
     */
    EventId at(Time when, std::function<void()> fn);

    /** Schedule a callback after a relative delay. */
    EventId after(Duration delay, std::function<void()> fn);

    /** Cancel a pending event; no-op if it already ran. */
    void cancel(EventId &id);

    /**
     * Detach a Task<void> as a top-level simulated activity.
     *
     * The task starts at the current time (as a scheduled event, not
     * inline) and frees its own frame on completion.
     */
    void spawn(Task<void> task);

    /** Awaitable that suspends the caller for a simulated duration. */
    class SleepAwaiter
    {
      public:
        SleepAwaiter(Engine &eng, Duration d)
            : engine_(eng), delay_(d)
        {}

        bool await_ready() const { return delay_ == 0; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            engine_.at(engine_.now() + delay_, [h]() { h.resume(); });
        }

        void await_resume() const {}

      private:
        Engine &engine_;
        Duration delay_;
    };

    /** Suspend the calling coroutine for @p d simulated time. */
    SleepAwaiter sleep(Duration d) { return SleepAwaiter(*this, d); }

    /** Resume a coroutine handle at the current time (as an event). */
    void resumeLater(std::coroutine_handle<> h);

    /**
     * Run events until the queue is empty or simulated time would
     * exceed @p until.
     *
     * @param until Inclusive time horizon.
     * @return Number of events dispatched.
     */
    std::uint64_t run(Time until = kTimeNever);

    /** Run a single event. @return false if the queue was empty. */
    bool runOne();

    /** Number of events dispatched since construction. */
    std::uint64_t eventsDispatched() const { return dispatched_; }

    /** Number of events currently pending. */
    std::size_t pendingEvents() const { return queue_.size(); }

    /** The engine's trace ring buffer (disabled by default). */
    Tracer &tracer() { return tracer_; }
    const Tracer &tracer() const { return tracer_; }

    /** Record a trace event at the current time (cheap when the
     *  category is disabled -- check tracer().on(cat) before
     *  formatting). */
    void
    trace(TraceCat cat, std::string text)
    {
        tracer_.record(now_, cat, std::move(text));
    }

  private:
    struct QueueEntry
    {
        Time when;
        std::uint64_t seq;
        std::shared_ptr<EventId::Record> record;
    };

    struct Later
    {
        bool
        operator()(const QueueEntry &a, const QueueEntry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    Time now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t dispatched_ = 0;
    Tracer tracer_;
    std::priority_queue<QueueEntry, std::vector<QueueEntry>, Later> queue_;
};

} // namespace sim
} // namespace k2

#endif // K2_SIM_ENGINE_H
