/**
 * @file
 * Structured event tracing.
 *
 * The K2 prototype "includes extensive debugging support" (Table 2);
 * this is our equivalent, in two layers:
 *
 *  - A per-engine ring buffer of categorised, timestamped *text*
 *    records that OS components emit on their interesting transitions
 *    (dispatches, DSM faults, interrupt reroutes, NightWatch suspends,
 *    balloon moves). Off by default; costs one branch when disabled.
 *    Emitted through the K2_TRACE macro.
 *
 *  - A *structured span* stream: POD events (begin/end, complete
 *    spans, instants, counter samples) on named tracks, recorded into
 *    a buffer whose capacity is reserved when spans are enabled, so
 *    the hot path never allocates -- when the buffer fills, further
 *    events are counted as dropped rather than grown. The obs layer
 *    serialises this stream into a Chrome trace_event (catapult) JSON
 *    file off the hot path. Components register their tracks at
 *    construction time (cheap, deduplicated by name); recording is a
 *    single flag test when spans are disabled.
 *
 * When both layers are on, every K2_TRACE record is mirrored as an
 * instant event on a per-category track, so the textual trace shows up
 * on the timeline too.
 */

#ifndef K2_SIM_TRACE_H
#define K2_SIM_TRACE_H

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/time.h"

namespace k2 {
namespace snap {
class Io;
}
namespace sim {

/** Trace categories (bitmask). */
enum class TraceCat : std::uint32_t
{
    Sched = 1u << 0, //!< Thread dispatch/park.
    Dsm = 1u << 1,   //!< Coherence faults and services.
    Irq = 1u << 2,   //!< Interrupt routing changes.
    Mem = 1u << 3,   //!< Balloon/meta-manager block moves.
    Nw = 1u << 4,    //!< NightWatch suspend/resume.
    Mail = 1u << 5,  //!< Hardware mail traffic.
};

constexpr std::uint32_t
traceMask(TraceCat c)
{
    return static_cast<std::uint32_t>(c);
}

/** Every category. */
inline constexpr std::uint32_t kTraceAll = 0x3F;

/** Number of distinct trace categories. */
inline constexpr std::size_t kNumTraceCats = 6;

/** Phase of a structured span event (maps onto catapult's "ph"). */
enum class SpanPhase : std::uint8_t
{
    Begin,    //!< Open a span on a track ("B").
    End,      //!< Close the innermost open span ("E").
    Complete, //!< A finished span with a known duration ("X").
    Instant,  //!< A point event ("i").
    Counter,  //!< A sampled numeric series ("C").
};

/** Identifies a registered span track. */
using TrackId = std::uint32_t;

class Tracer
{
  public:
    /** One text trace record. */
    struct Record
    {
        Time when;
        TraceCat cat;
        std::string text;
    };

    /** One structured span event (POD; see SpanPhase). */
    struct SpanEvent
    {
        Time ts;
        Duration dur;       //!< Complete events only.
        double value;       //!< Counter value / instant argument.
        TrackId track;
        std::uint32_t detail; //!< Index into spanDetails(), or kNoDetail.
        SpanPhase phase;
        const char *name;   //!< Must point at storage outliving the
                            //!< tracer (string literals in practice).
    };

    static constexpr std::uint32_t kNoDetail = 0xffffffffu;

    /** @param capacity Text ring-buffer size in records. */
    explicit Tracer(std::size_t capacity = 4096)
        : capacity_(capacity)
    {}

    /** @name Text records (K2_TRACE). @{ */

    /** Enable the categories in @p mask (in addition to current). */
    void enable(std::uint32_t mask) { enabled_ |= mask; }

    /** Disable the categories in @p mask. */
    void disable(std::uint32_t mask) { enabled_ &= ~mask; }

    /** True if @p cat is enabled (call before formatting). */
    bool
    on(TraceCat cat) const
    {
        return (enabled_ & traceMask(cat)) != 0;
    }

    /** Append a record (no-op unless the category is enabled). */
    void record(Time when, TraceCat cat, std::string text);

    /** Records currently buffered, oldest first. */
    const std::deque<Record> &records() const { return buffer_; }

    /** Records of one category, oldest first. */
    std::vector<Record> ofCategory(TraceCat cat) const;

    /** Total records emitted (including those rotated out). */
    std::uint64_t emitted() const { return emitted_; }

    /** Records lost to ring-buffer rotation. */
    std::uint64_t dropped() const { return dropped_; }

    /** Render all buffered records, one per line. */
    void dump(std::ostream &os) const;

    void clear();

    /** Printable category name. */
    static const char *catName(TraceCat cat);

    /** @} */

    /** @name Structured spans. @{ */

    /**
     * Register (or look up) a track by name; returns its id. Tracks
     * are deduplicated by name, so components may re-register at every
     * construction. Cold path.
     */
    TrackId addTrack(const std::string &name);

    /**
     * Turn structured-span recording on, reserving buffer space for
     * @p capacity events up front so recording itself never allocates.
     */
    void enableSpans(std::size_t capacity = 1 << 16);

    /** Turn recording back off (the buffered events remain). */
    void disableSpans() { spansOn_ = false; }

    /** True if span recording is enabled (test before composing). */
    bool spansOn() const { return spansOn_; }

    void
    spanBegin(Time ts, TrackId track, const char *name)
    {
        push(SpanEvent{ts, 0, 0.0, track, kNoDetail, SpanPhase::Begin,
                       name});
    }

    void
    spanEnd(Time ts, TrackId track)
    {
        push(SpanEvent{ts, 0, 0.0, track, kNoDetail, SpanPhase::End,
                       nullptr});
    }

    void
    spanComplete(Time start, Duration dur, TrackId track,
                 const char *name)
    {
        push(SpanEvent{start, dur, 0.0, track, kNoDetail,
                       SpanPhase::Complete, name});
    }

    /** Complete span carrying a dynamic detail string (copied). */
    void spanCompleteStr(Time start, Duration dur, TrackId track,
                         const char *name, const std::string &detail);

    void
    spanInstant(Time ts, TrackId track, const char *name,
                double value = 0.0)
    {
        push(SpanEvent{ts, 0, value, track, kNoDetail,
                       SpanPhase::Instant, name});
    }

    void
    spanCounter(Time ts, TrackId track, const char *name, double value)
    {
        push(SpanEvent{ts, 0, value, track, kNoDetail,
                       SpanPhase::Counter, name});
    }

    /** Recorded span events, in recording order (not sorted by ts). */
    const std::vector<SpanEvent> &spanEvents() const { return spans_; }

    /** Registered track names, indexed by TrackId. */
    const std::vector<std::string> &trackNames() const { return tracks_; }

    /** Detail string referenced by SpanEvent::detail. */
    const std::string &spanDetail(std::uint32_t idx) const
    {
        return spanDetails_.at(idx);
    }

    /** Span events lost because the reserved buffer was full. */
    std::uint64_t spansDropped() const { return spansDropped_; }

    /** @} */

    /**
     * Capture/restore all tracer state: enabled masks, the text ring
     * buffer, span cursors and events, and the track registry (tracks
     * added after capture are pruned; they re-register on replay with
     * the same ids). Span name pointers are process-lifetime literals,
     * so the image is valid in-memory only.
     */
    void snapState(snap::Io &io);

  private:
    void
    push(const SpanEvent &e)
    {
        if (spans_.size() >= spanCapacity_) {
            ++spansDropped_;
            return;
        }
        spans_.push_back(e);
    }

    std::size_t capacity_;
    std::uint32_t enabled_ = 0;
    std::deque<Record> buffer_;
    std::uint64_t emitted_ = 0;
    std::uint64_t dropped_ = 0;

    bool spansOn_ = false;
    std::size_t spanCapacity_ = 0;
    std::uint64_t spansDropped_ = 0;
    std::vector<SpanEvent> spans_;
    std::vector<std::string> spanDetails_;
    std::vector<std::string> tracks_;
    std::map<std::string, TrackId> trackByName_;
    std::array<TrackId, kNumTraceCats> catTracks_{};
};

} // namespace sim
} // namespace k2

#endif // K2_SIM_TRACE_H
