/**
 * @file
 * Structured event tracing.
 *
 * The K2 prototype "includes extensive debugging support" (Table 2);
 * this is our equivalent: a per-engine ring buffer of categorised,
 * timestamped records that OS components emit on their interesting
 * transitions (dispatches, DSM faults, interrupt reroutes, NightWatch
 * suspends, balloon moves). Tracing is off by default and costs one
 * branch when disabled; enabled categories format into the ring
 * buffer, which tests and debugging sessions can dump or query.
 */

#ifndef K2_SIM_TRACE_H
#define K2_SIM_TRACE_H

#include <cstdint>
#include <deque>
#include <ostream>
#include <string>
#include <vector>

#include "sim/time.h"

namespace k2 {
namespace sim {

/** Trace categories (bitmask). */
enum class TraceCat : std::uint32_t
{
    Sched = 1u << 0, //!< Thread dispatch/park.
    Dsm = 1u << 1,   //!< Coherence faults and services.
    Irq = 1u << 2,   //!< Interrupt routing changes.
    Mem = 1u << 3,   //!< Balloon/meta-manager block moves.
    Nw = 1u << 4,    //!< NightWatch suspend/resume.
    Mail = 1u << 5,  //!< Hardware mail traffic.
};

constexpr std::uint32_t
traceMask(TraceCat c)
{
    return static_cast<std::uint32_t>(c);
}

/** Every category. */
inline constexpr std::uint32_t kTraceAll = 0x3F;

class Tracer
{
  public:
    /** One trace record. */
    struct Record
    {
        Time when;
        TraceCat cat;
        std::string text;
    };

    /** @param capacity Ring-buffer size in records. */
    explicit Tracer(std::size_t capacity = 4096)
        : capacity_(capacity)
    {}

    /** Enable the categories in @p mask (in addition to current). */
    void enable(std::uint32_t mask) { enabled_ |= mask; }

    /** Disable the categories in @p mask. */
    void disable(std::uint32_t mask) { enabled_ &= ~mask; }

    /** True if @p cat is enabled (call before formatting). */
    bool
    on(TraceCat cat) const
    {
        return (enabled_ & traceMask(cat)) != 0;
    }

    /** Append a record (no-op unless the category is enabled). */
    void record(Time when, TraceCat cat, std::string text);

    /** Records currently buffered, oldest first. */
    const std::deque<Record> &records() const { return buffer_; }

    /** Records of one category, oldest first. */
    std::vector<Record> ofCategory(TraceCat cat) const;

    /** Total records emitted (including those rotated out). */
    std::uint64_t emitted() const { return emitted_; }

    /** Records lost to ring-buffer rotation. */
    std::uint64_t dropped() const { return dropped_; }

    /** Render all buffered records, one per line. */
    void dump(std::ostream &os) const;

    void clear();

    /** Printable category name. */
    static const char *catName(TraceCat cat);

  private:
    std::size_t capacity_;
    std::uint32_t enabled_ = 0;
    std::deque<Record> buffer_;
    std::uint64_t emitted_ = 0;
    std::uint64_t dropped_ = 0;
};

} // namespace sim
} // namespace k2

#endif // K2_SIM_TRACE_H
