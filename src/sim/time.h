/**
 * @file
 * Simulated-time types for the K2 discrete-event engine.
 *
 * Simulated time is measured in integer picoseconds so that a single
 * cycle of the fastest modelled core (1.2 GHz => ~833 ps) is exactly
 * representable. A uint64_t of picoseconds covers ~213 simulated days,
 * far beyond any experiment in this repository.
 */

#ifndef K2_SIM_TIME_H
#define K2_SIM_TIME_H

#include <cstdint>
#include <string>

namespace k2 {
namespace sim {

/** A point in simulated time, in picoseconds since simulation start. */
using Time = std::uint64_t;

/** A span of simulated time, in picoseconds. */
using Duration = std::uint64_t;

/** The maximum representable time; used as "never". */
inline constexpr Time kTimeNever = UINT64_MAX;

/** @name Duration constructors. @{ */
constexpr Duration
psec(std::uint64_t v)
{
    return v;
}

constexpr Duration
nsec(std::uint64_t v)
{
    return v * 1000ull;
}

constexpr Duration
usec(std::uint64_t v)
{
    return v * 1000ull * 1000ull;
}

constexpr Duration
msec(std::uint64_t v)
{
    return v * 1000ull * 1000ull * 1000ull;
}

constexpr Duration
sec(std::uint64_t v)
{
    return v * 1000ull * 1000ull * 1000ull * 1000ull;
}
/** @} */

/** @name Duration accessors, as double for reporting. @{ */
constexpr double
toNsec(Duration d)
{
    return static_cast<double>(d) / 1e3;
}

constexpr double
toUsec(Duration d)
{
    return static_cast<double>(d) / 1e6;
}

constexpr double
toMsec(Duration d)
{
    return static_cast<double>(d) / 1e9;
}

constexpr double
toSec(Duration d)
{
    return static_cast<double>(d) / 1e12;
}
/** @} */

/**
 * Convert a cycle count at a given core frequency into a duration.
 *
 * Rounds up so that executing at least one cycle always advances time.
 *
 * @param cycles Number of core cycles.
 * @param hz Core frequency in hertz.
 * @return Elapsed simulated time in picoseconds.
 */
constexpr Duration
cyclesToTime(std::uint64_t cycles, std::uint64_t hz)
{
    // ps = ceil(cycles * 1e12 / hz); 128-bit intermediate avoids both
    // overflow and cumulative rounding error.
    const unsigned __int128 ps =
        (static_cast<unsigned __int128>(cycles) * 1000000000000ull +
         (hz - 1)) / hz;
    return static_cast<Duration>(ps);
}

/**
 * Convert a duration into cycles at a given frequency (rounded down).
 */
constexpr std::uint64_t
timeToCycles(Duration d, std::uint64_t hz)
{
    return static_cast<std::uint64_t>((static_cast<double>(d) / 1e12) *
                                      static_cast<double>(hz));
}

/** Render a time as a human-readable string (e.g. "12.345 us"). */
std::string formatTime(Time t);

} // namespace sim
} // namespace k2

#endif // K2_SIM_TIME_H
