#include "sim/random.h"

#include <cmath>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace k2 {
namespace sim {

#if defined(__x86_64__)

namespace {

/**
 * SIMD Philox-4x32 kernels. Philox is pure 32-bit integer math, so
 * every path below is bit-identical to CounterRng::block() on any
 * ISA (the fill==at() test covers whichever path the host selects).
 *
 * Layout: one block's state word per 64-bit lane, value kept
 * canonical in the low 32 bits -- exactly what pmuludq/vpmuludq
 * consume for the 32x32->64 widening multiply. The baseline build
 * targets plain x86-64, so the AVX2 kernel is compiled via a target
 * attribute and selected at runtime with __builtin_cpu_supports.
 */

/** One round across two blocks (SSE2, 2x64-bit lanes). */
inline void
roundSse(__m128i &c0, __m128i &c1, __m128i &c2, __m128i &c3,
         __m128i k0, __m128i k1, __m128i mulA, __m128i mulB,
         __m128i low)
{
    const __m128i p0 = _mm_mul_epu32(c0, mulA);
    const __m128i p1 = _mm_mul_epu32(c2, mulB);
    const __m128i nc0 = _mm_xor_si128(
        _mm_srli_epi64(p1, 32), _mm_xor_si128(c1, k0));
    const __m128i nc1 = _mm_and_si128(p1, low);
    const __m128i nc2 = _mm_xor_si128(
        _mm_srli_epi64(p0, 32), _mm_xor_si128(c3, k1));
    const __m128i nc3 = _mm_and_si128(p0, low);
    c0 = nc0;
    c1 = nc1;
    c2 = nc2;
    c3 = nc3;
}

/**
 * Blocks [blk, blk + count) through the SSE2 kernel, four blocks in
 * flight. Writes 2*count u64 words; returns blocks produced (a
 * multiple of 4; the caller finishes the remainder with block()).
 */
std::uint64_t
fillSse2(std::uint32_t key0, std::uint32_t key1, std::uint32_t ctr2,
         std::uint32_t ctr3, std::uint64_t blk, std::uint64_t *out,
         std::uint64_t count)
{
    const __m128i mulA = _mm_set1_epi64x(0xD2511F53ll);
    const __m128i mulB = _mm_set1_epi64x(0xCD9E8D57ll);
    const __m128i low = _mm_set1_epi64x(0xFFFFFFFFll);
    const __m128i weylA = _mm_set1_epi64x(0x9E3779B9ll);
    const __m128i weylB = _mm_set1_epi64x(0xBB67AE85ll);
    const __m128i vc2 = _mm_set1_epi64x(ctr2);
    const __m128i vc3 = _mm_set1_epi64x(ctr3);
    const __m128i vk0 = _mm_set1_epi64x(key0);
    const __m128i vk1 = _mm_set1_epi64x(key1);
    std::uint64_t done = 0;
    while (done + 4 <= count) {
        const std::uint64_t b = blk + done;
        __m128i aCnt = _mm_set_epi64x(
            static_cast<long long>(b + 1),
            static_cast<long long>(b));
        __m128i bCnt = _mm_set_epi64x(
            static_cast<long long>(b + 3),
            static_cast<long long>(b + 2));
        __m128i aC0 = _mm_and_si128(aCnt, low);
        __m128i aC1 = _mm_srli_epi64(aCnt, 32);
        __m128i aC2 = vc2;
        __m128i aC3 = vc3;
        __m128i bC0 = _mm_and_si128(bCnt, low);
        __m128i bC1 = _mm_srli_epi64(bCnt, 32);
        __m128i bC2 = vc2;
        __m128i bC3 = vc3;
        __m128i k0 = vk0;
        __m128i k1 = vk1;
        for (int r = 0; r < CounterRng::kRounds; ++r) {
            roundSse(aC0, aC1, aC2, aC3, k0, k1, mulA, mulB, low);
            roundSse(bC0, bC1, bC2, bC3, k0, k1, mulA, mulB, low);
            k0 = _mm_and_si128(_mm_add_epi64(k0, weylA), low);
            k1 = _mm_and_si128(_mm_add_epi64(k1, weylB), low);
        }
        // Lane j of (c0|c1<<32, c2|c3<<32) is (w0, w1) of block
        // b+j; unpack interleaves them back into stream order.
        const __m128i aW0 =
            _mm_or_si128(aC0, _mm_slli_epi64(aC1, 32));
        const __m128i aW1 =
            _mm_or_si128(aC2, _mm_slli_epi64(aC3, 32));
        const __m128i bW0 =
            _mm_or_si128(bC0, _mm_slli_epi64(bC1, 32));
        const __m128i bW1 =
            _mm_or_si128(bC2, _mm_slli_epi64(bC3, 32));
        std::uint64_t *dst = out + 2 * done;
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dst),
                         _mm_unpacklo_epi64(aW0, aW1));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + 2),
                         _mm_unpackhi_epi64(aW0, aW1));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + 4),
                         _mm_unpacklo_epi64(bW0, bW1));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + 6),
                         _mm_unpackhi_epi64(bW0, bW1));
        done += 4;
    }
    return done;
}

/** One round across four blocks (AVX2, 4x64-bit lanes). */
__attribute__((target("avx2"))) inline void
roundAvx(__m256i &c0, __m256i &c1, __m256i &c2, __m256i &c3,
         __m256i k0, __m256i k1, __m256i mulA, __m256i mulB,
         __m256i low)
{
    const __m256i p0 = _mm256_mul_epu32(c0, mulA);
    const __m256i p1 = _mm256_mul_epu32(c2, mulB);
    const __m256i nc0 = _mm256_xor_si256(
        _mm256_srli_epi64(p1, 32), _mm256_xor_si256(c1, k0));
    const __m256i nc1 = _mm256_and_si256(p1, low);
    const __m256i nc2 = _mm256_xor_si256(
        _mm256_srli_epi64(p0, 32), _mm256_xor_si256(c3, k1));
    const __m256i nc3 = _mm256_and_si256(p0, low);
    c0 = nc0;
    c1 = nc1;
    c2 = nc2;
    c3 = nc3;
}

/** Same contract as fillSse2, eight blocks in flight (AVX2). */
__attribute__((target("avx2"))) std::uint64_t
fillAvx2(std::uint32_t key0, std::uint32_t key1, std::uint32_t ctr2,
         std::uint32_t ctr3, std::uint64_t blk, std::uint64_t *out,
         std::uint64_t count)
{
    const __m256i mulA = _mm256_set1_epi64x(0xD2511F53ll);
    const __m256i mulB = _mm256_set1_epi64x(0xCD9E8D57ll);
    const __m256i low = _mm256_set1_epi64x(0xFFFFFFFFll);
    const __m256i weylA = _mm256_set1_epi64x(0x9E3779B9ll);
    const __m256i weylB = _mm256_set1_epi64x(0xBB67AE85ll);
    const __m256i vc2 = _mm256_set1_epi64x(ctr2);
    const __m256i vc3 = _mm256_set1_epi64x(ctr3);
    const __m256i vk0 = _mm256_set1_epi64x(key0);
    const __m256i vk1 = _mm256_set1_epi64x(key1);
    const __m256i lane = _mm256_setr_epi64x(0, 1, 2, 3);
    std::uint64_t done = 0;
    while (done + 8 <= count) {
        const std::uint64_t b = blk + done;
        __m256i aCnt = _mm256_add_epi64(
            _mm256_set1_epi64x(static_cast<long long>(b)), lane);
        __m256i bCnt = _mm256_add_epi64(
            _mm256_set1_epi64x(static_cast<long long>(b + 4)),
            lane);
        __m256i aC0 = _mm256_and_si256(aCnt, low);
        __m256i aC1 = _mm256_srli_epi64(aCnt, 32);
        __m256i aC2 = vc2;
        __m256i aC3 = vc3;
        __m256i bC0 = _mm256_and_si256(bCnt, low);
        __m256i bC1 = _mm256_srli_epi64(bCnt, 32);
        __m256i bC2 = vc2;
        __m256i bC3 = vc3;
        __m256i k0 = vk0;
        __m256i k1 = vk1;
        for (int r = 0; r < CounterRng::kRounds; ++r) {
            roundAvx(aC0, aC1, aC2, aC3, k0, k1, mulA, mulB, low);
            roundAvx(bC0, bC1, bC2, bC3, k0, k1, mulA, mulB, low);
            k0 = _mm256_and_si256(_mm256_add_epi64(k0, weylA), low);
            k1 = _mm256_and_si256(_mm256_add_epi64(k1, weylB), low);
        }
        const __m256i aW0 =
            _mm256_or_si256(aC0, _mm256_slli_epi64(aC1, 32));
        const __m256i aW1 =
            _mm256_or_si256(aC2, _mm256_slli_epi64(aC3, 32));
        const __m256i bW0 =
            _mm256_or_si256(bC0, _mm256_slli_epi64(bC1, 32));
        const __m256i bW1 =
            _mm256_or_si256(bC2, _mm256_slli_epi64(bC3, 32));
        // unpack*_epi64 interleaves within 128-bit halves:
        // lo = [w0(b0) w1(b0) | w0(b2) w1(b2)], hi likewise for
        // b1/b3; permute2x128 stitches the halves into stream order.
        const __m256i aLo = _mm256_unpacklo_epi64(aW0, aW1);
        const __m256i aHi = _mm256_unpackhi_epi64(aW0, aW1);
        const __m256i bLo = _mm256_unpacklo_epi64(bW0, bW1);
        const __m256i bHi = _mm256_unpackhi_epi64(bW0, bW1);
        std::uint64_t *dst = out + 2 * done;
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(dst),
            _mm256_permute2x128_si256(aLo, aHi, 0x20));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(dst + 4),
            _mm256_permute2x128_si256(aLo, aHi, 0x31));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(dst + 8),
            _mm256_permute2x128_si256(bLo, bHi, 0x20));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(dst + 12),
            _mm256_permute2x128_si256(bLo, bHi, 0x31));
        done += 8;
    }
    return done;
}

} // namespace

#endif // __x86_64__

void
CounterRng::fill(std::uint64_t first, std::uint64_t *out,
                 std::size_t n) const
{
    std::size_t produced = 0;
    std::uint64_t i = first;
    // Leading odd offset.
    if ((i & 1) && produced < n) {
        out[produced++] = at(i);
        ++i;
    }
    std::uint64_t blk = i >> 1;

#if defined(__x86_64__)
    static const bool haveAvx2 = __builtin_cpu_supports("avx2");
    const std::uint64_t want = (n - produced) / 2;
    const std::uint64_t got =
        haveAvx2 ? fillAvx2(key0_, key1_, ctr2_, ctr3_, blk,
                            out + produced, want)
                 : fillSse2(key0_, key1_, ctr2_, ctr3_, blk,
                            out + produced, want);
    produced += 2 * got;
    blk += got;
#endif

    while (n - produced >= 2) {
        block(blk++, out + produced);
        produced += 2;
    }
    if (produced < n)
        out[produced] = at(blk << 1);
}

namespace {

/** Inversion by multiplication (Knuth): O(mean), small means only. */
std::uint64_t
poissonSmall(CounterRng &rng, double mean)
{
    const double limit = std::exp(-mean);
    double prod = rng.uniform();
    std::uint64_t n = 0;
    while (prod > limit) {
        ++n;
        prod *= rng.uniform();
    }
    return n;
}

/**
 * ln(k!) = ln Gamma(k+1). glibc's lgamma() writes the process-global
 * `signgam`, which is a data race when devices are synthesized on
 * several host threads; lgamma_r() computes the identical bits into a
 * caller-provided sign slot instead. Gamma(k+1) > 0 for k >= 0, so
 * the sign is discarded.
 */
double
lnFactorial(double k)
{
#if defined(__GLIBC__)
    int sign;
    return ::lgamma_r(k + 1.0, &sign);
#else
    return std::lgamma(k + 1.0);
#endif
}

/**
 * Hormann's PTRD transformed-rejection sampler (W. Hormann, "The
 * transformed rejection method for generating Poisson random
 * variables", 1993). O(1) in the mean; valid for mean >= 10.
 */
std::uint64_t
poissonPtrd(CounterRng &rng, double mean)
{
    const double smu = std::sqrt(mean);
    const double b = 0.931 + 2.53 * smu;
    const double a = -0.059 + 0.02483 * b;
    const double invAlpha = 1.1239 + 1.1328 / (b - 3.4);
    const double vr = 0.9277 - 3.6224 / (b - 2.0);
    const double logMu = std::log(mean);

    for (;;) {
        const double u = rng.uniform() - 0.5;
        const double v = rng.uniform();
        const double us = 0.5 - std::fabs(u);
        const double kf =
            std::floor((2.0 * a / us + b) * u + mean + 0.43);
        if (us >= 0.07 && v <= vr)
            return static_cast<std::uint64_t>(kf);
        if (kf < 0.0 || (us < 0.013 && v > us))
            continue;
        const double k = kf;
        if (std::log(v * invAlpha / (a / (us * us) + b)) <=
            k * logMu - mean - lnFactorial(k))
            return static_cast<std::uint64_t>(kf);
    }
}

} // namespace

std::uint64_t
poisson(CounterRng &rng, double mean)
{
    K2_ASSERT(mean >= 0.0);
    if (mean <= 0.0)
        return 0;
    if (mean < 10.0)
        return poissonSmall(rng, mean);
    return poissonPtrd(rng, mean);
}

} // namespace sim
} // namespace k2
