/**
 * @file
 * Lazy coroutine task type used for all simulated activities.
 *
 * A Task<T> is a lazily-started coroutine: creating one does not run any
 * code. It is started either by co_await-ing it from another coroutine
 * (the usual case: the awaiter suspends until the task completes and
 * receives its result), or by detaching it onto the Engine with
 * Engine::spawn(), which runs it as a top-level simulated activity.
 *
 * Tasks use symmetric transfer on completion, so arbitrarily deep
 * co_await chains do not grow the host stack.
 */

#ifndef K2_SIM_TASK_H
#define K2_SIM_TASK_H

#include <coroutine>
#include <cstddef>
#include <exception>
#include <new>
#include <optional>
#include <utility>

#include "sim/log.h"

// Frame recycling is disabled under AddressSanitizer: reusing frame
// memory without going through the heap would defeat ASan's
// use-after-free quarantine, and LSan would attribute a parked
// daemon coroutine's frame to whatever call site happened to allocate
// the recycled block first, breaking the scripts/lsan.supp stack
// matching.
#if defined(__SANITIZE_ADDRESS__)
#define K2_FRAME_CACHE 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define K2_FRAME_CACHE 0
#endif
#endif
#ifndef K2_FRAME_CACHE
#define K2_FRAME_CACHE 1
#endif

namespace k2 {
namespace sim {

template <typename T = void>
class Task;

namespace detail {

/**
 * Thread-confined recycling allocator for coroutine frames.
 *
 * Every co_await of a child task allocates (and on completion frees)
 * one coroutine frame, which makes general-purpose malloc the
 * dominant cost of deep await chains -- the hottest host-side path of
 * every simulated activity. Frames cluster into a handful of small
 * sizes, so a per-thread array of size-bucketed free lists turns the
 * alloc/free pair into two pointer pops in steady state.
 *
 * The cache is thread_local: no locks, no sharing, and therefore
 * safe under concurrent sweep cells (each cell's engine is confined
 * to one worker thread). Blocks are allocated at their bucket's
 * rounded-up size, so any frame whose size maps to the same bucket
 * may reuse them; oversized or overflow blocks fall back to the
 * global heap. The destructor releases everything, so worker threads
 * do not leak on exit.
 */
class FrameCache
{
  public:
    /** Bucket granularity; frames round up to a multiple of this. */
    static constexpr std::size_t kGranule = 64;
    /** Buckets cover frames up to kGranule * kBuckets bytes. The fs
     *  and DSM coroutines carry block-sized locals plus several
     *  awaiters, so frames up to ~3 KB are common on hot paths. */
    static constexpr std::size_t kBuckets = 48;
    /** Per-bucket cap; beyond it blocks return to the heap. */
    static constexpr std::size_t kMaxPerBucket = 128;

    ~FrameCache()
    {
        for (std::size_t b = 0; b < kBuckets; ++b) {
            while (Node *n = free_[b]) {
                free_[b] = n->next;
                ::operator delete(static_cast<void *>(n));
            }
        }
    }

    void *
    alloc(std::size_t n)
    {
        const std::size_t b = bucket(n);
        if (b < kBuckets && free_[b]) {
            Node *node = free_[b];
            free_[b] = node->next;
            --count_[b];
            return node;
        }
        const std::size_t bytes =
            (b < kBuckets) ? (b + 1) * kGranule : n;
        return ::operator new(bytes);
    }

    void
    free(void *p, std::size_t n)
    {
        const std::size_t b = bucket(n);
        if (b < kBuckets && count_[b] < kMaxPerBucket) {
            Node *node = static_cast<Node *>(p);
            node->next = free_[b];
            free_[b] = node;
            ++count_[b];
            return;
        }
        ::operator delete(p);
    }

    static FrameCache &
    local()
    {
        thread_local FrameCache cache;
        return cache;
    }

  private:
    struct Node
    {
        Node *next;
    };

    static std::size_t
    bucket(std::size_t n)
    {
        return (n + kGranule - 1) / kGranule - 1;
    }

    Node *free_[kBuckets] = {};
    std::size_t count_[kBuckets] = {};
};

/** State shared by all task promises. */
class PromiseBase
{
  public:
    /** Route coroutine-frame storage through the thread's
     *  FrameCache (found by argument-dependent promise lookup). */
    static void *
    operator new(std::size_t n)
    {
#if K2_FRAME_CACHE
        return FrameCache::local().alloc(n);
#else
        return ::operator new(n);
#endif
    }

    static void
    operator delete(void *p, std::size_t n)
    {
#if K2_FRAME_CACHE
        FrameCache::local().free(p, n);
#else
        ::operator delete(p, n);
#endif
    }

    std::suspend_always initial_suspend() noexcept { return {}; }

    class FinalAwaiter
    {
      public:
        bool await_ready() const noexcept { return false; }

        template <typename Promise>
        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<Promise> h) noexcept
        {
            PromiseBase &p = h.promise();
            // continuation_ defaults to the noop coroutine, so the
            // completion path is an unconditional symmetric transfer.
            std::coroutine_handle<> next = p.continuation_;
            if (p.detached_) {
                // Nobody owns a detached coroutine's frame; reclaim it
                // here. `next` was captured before the destroy.
                h.destroy();
            }
            return next;
        }

        void await_resume() const noexcept {}
    };

    FinalAwaiter final_suspend() noexcept { return {}; }

    void
    unhandled_exception()
    {
        if (detached_) {
            // A detached simulated activity must not fail silently.
            try {
                throw;
            } catch (const std::exception &e) {
                K2_PANIC("uncaught exception in detached task: %s",
                         e.what());
            } catch (...) {
                K2_PANIC("uncaught non-std exception in detached task");
            }
        }
        exception_ = std::current_exception();
    }

    void setContinuation(std::coroutine_handle<> c) { continuation_ = c; }
    void setDetached() { detached_ = true; }
    bool detached() const { return detached_; }

    void
    rethrowIfFailed()
    {
        if (exception_)
            std::rethrow_exception(exception_);
    }

  private:
    std::coroutine_handle<> continuation_ = std::noop_coroutine();
    std::exception_ptr exception_{};
    bool detached_ = false;
};

template <typename T>
class Promise : public PromiseBase
{
  public:
    Task<T> get_return_object();

    template <typename U>
    void
    return_value(U &&v)
    {
        value_.emplace(std::forward<U>(v));
    }

    T &&
    result()
    {
        K2_ASSERT(value_.has_value());
        return std::move(*value_);
    }

  private:
    std::optional<T> value_;
};

template <>
class Promise<void> : public PromiseBase
{
  public:
    Task<void> get_return_object();
    void return_void() {}
    void result() {}
};

} // namespace detail

/**
 * A lazily-started coroutine returning T.
 *
 * Movable, not copyable. The Task owns the coroutine frame unless it has
 * been detached via release() (done by Engine::spawn()).
 */
template <typename T>
class [[nodiscard]] Task
{
  public:
    using promise_type = detail::Promise<T>;
    using Handle = std::coroutine_handle<promise_type>;

    Task() = default;

    explicit Task(Handle h)
        : handle_(h)
    {}

    Task(Task &&other) noexcept
        : handle_(std::exchange(other.handle_, {}))
    {}

    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            destroy();
            handle_ = std::exchange(other.handle_, {});
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task() { destroy(); }

    /** True if this Task still refers to a coroutine. */
    bool valid() const { return static_cast<bool>(handle_); }

    /**
     * Relinquish ownership of the coroutine frame (used by
     * Engine::spawn(), which marks the frame self-destroying).
     */
    Handle
    release()
    {
        return std::exchange(handle_, {});
    }

    /** Awaiter: starts the task, suspends until completion. */
    class Awaiter
    {
      public:
        explicit Awaiter(Handle h)
            : handle_(h)
        {}

        bool await_ready() const { return !handle_ || handle_.done(); }

        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<> cont)
        {
            handle_.promise().setContinuation(cont);
            return handle_;
        }

        T
        await_resume()
        {
            K2_ASSERT(handle_);
            handle_.promise().rethrowIfFailed();
            return handle_.promise().result();
        }

      private:
        Handle handle_;
    };

    Awaiter operator co_await() const & { return Awaiter(handle_); }

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = {};
        }
    }

    Handle handle_{};
};

namespace detail {

template <typename T>
Task<T>
Promise<T>::get_return_object()
{
    return Task<T>(std::coroutine_handle<Promise<T>>::from_promise(*this));
}

inline Task<void>
Promise<void>::get_return_object()
{
    return Task<void>(
        std::coroutine_handle<Promise<void>>::from_promise(*this));
}

} // namespace detail

} // namespace sim
} // namespace k2

#endif // K2_SIM_TASK_H
