/**
 * @file
 * Coroutine synchronisation primitives for simulated activities.
 *
 * All wakeups are routed through the Engine's event queue (at the
 * current simulated time) rather than resumed inline, so waker code
 * never runs re-entrantly inside the waiter and wake order is
 * deterministic FIFO.
 */

#ifndef K2_SIM_SYNC_H
#define K2_SIM_SYNC_H

#include <coroutine>
#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "sim/engine.h"
#include "sim/log.h"
#include "snap/io.h"

namespace k2 {
namespace sim {

/**
 * A level-triggered event (a "latch").
 *
 * wait() suspends until the event is set; if it is already set, wait()
 * completes immediately. set() wakes all waiters. reset() re-arms it.
 */
class Event
{
  public:
    explicit Event(Engine &eng)
        : engine_(eng)
    {}

    bool isSet() const { return set_; }

    /** Set the event and wake all current waiters. */
    void
    set()
    {
        set_ = true;
        wakeAll();
    }

    /** Clear the event so future wait()s block again. */
    void reset() { set_ = false; }

    /** Wake all current waiters without latching (edge trigger). */
    void
    pulse()
    {
        wakeAll();
    }

    class Awaiter
    {
      public:
        explicit Awaiter(Event &ev)
            : event_(ev)
        {}

        bool await_ready() const { return event_.set_; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            event_.waiters_.push_back(h);
        }

        void await_resume() const {}

      private:
        Event &event_;
    };

    /** Suspend until the event is set (or was pulsed while waiting). */
    Awaiter wait() { return Awaiter(*this); }

    std::size_t waiterCount() const { return waiters_.size(); }

    /**
     * Capture/restore the latch flag. Parked waiters are persistent
     * coroutine frames (scheduler core loops, daemon watchers) that
     * stay structurally in place across a snapshot; their count is
     * recorded as a structural invariant, never rebuilt from bytes.
     */
    void
    snapState(snap::Io &io)
    {
        io.check(waiters_.size(), "Event::waiters");
        io.pod(set_);
    }

  private:
    void
    wakeAll()
    {
        std::deque<std::coroutine_handle<>> ws;
        ws.swap(waiters_);
        for (auto h : ws)
            engine_.resumeLater(h);
    }

    Engine &engine_;
    std::deque<std::coroutine_handle<>> waiters_;
    bool set_ = false;
};

/**
 * A counting semaphore with FIFO wakeups.
 */
class Semaphore
{
  public:
    Semaphore(Engine &eng, std::size_t initial)
        : engine_(eng), count_(initial)
    {}

    std::size_t count() const { return count_; }

    class Awaiter
    {
      public:
        explicit Awaiter(Semaphore &s)
            : sem_(s)
        {}

        bool
        await_ready()
        {
            if (sem_.count_ > 0) {
                --sem_.count_;
                return true;
            }
            return false;
        }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            sem_.waiters_.push_back(h);
        }

        void await_resume() const {}

      private:
        Semaphore &sem_;
    };

    /** Acquire one unit, suspending if none are available. */
    Awaiter acquire() { return Awaiter(*this); }

    /** Try to acquire without suspending. */
    bool
    tryAcquire()
    {
        if (count_ == 0)
            return false;
        --count_;
        return true;
    }

    /** Release one unit, waking the oldest waiter if any. */
    void
    release()
    {
        if (!waiters_.empty()) {
            auto h = waiters_.front();
            waiters_.pop_front();
            engine_.resumeLater(h);
        } else {
            ++count_;
        }
    }

    /** Capture/restore the count (waiters are structural; see Event). */
    void
    snapState(snap::Io &io)
    {
        io.check(waiters_.size(), "Semaphore::waiters");
        io.pod(count_);
    }

  private:
    Engine &engine_;
    std::size_t count_;
    std::deque<std::coroutine_handle<>> waiters_;
};

/**
 * A coroutine mutex (binary semaphore) with an RAII guard.
 */
class CoMutex
{
  public:
    explicit CoMutex(Engine &eng)
        : sem_(eng, 1)
    {}

    class Guard
    {
      public:
        explicit Guard(CoMutex *m)
            : mutex_(m)
        {}

        Guard(Guard &&other) noexcept
            : mutex_(std::exchange(other.mutex_, nullptr))
        {}

        Guard(const Guard &) = delete;
        Guard &operator=(const Guard &) = delete;
        Guard &operator=(Guard &&) = delete;

        ~Guard()
        {
            if (mutex_)
                mutex_->sem_.release();
        }

      private:
        CoMutex *mutex_;
    };

    /** Acquire the mutex; release by destroying the returned Guard. */
    Task<Guard>
    lock()
    {
        co_await sem_.acquire();
        co_return Guard(this);
    }

    bool locked() const { return sem_.count() == 0; }

    void snapState(snap::Io &io) { sem_.snapState(io); }

  private:
    Semaphore sem_;
};

/**
 * An unbounded FIFO channel of T with awaitable receive.
 */
template <typename T>
class Channel
{
  public:
    explicit Channel(Engine &eng)
        : engine_(eng)
    {}

    /** Enqueue an item, waking the oldest receiver if any. */
    void
    send(T item)
    {
        items_.push_back(std::move(item));
        if (!waiters_.empty()) {
            auto h = waiters_.front();
            waiters_.pop_front();
            engine_.resumeLater(h);
        }
    }

    class Awaiter
    {
      public:
        explicit Awaiter(Channel &c)
            : chan_(c)
        {}

        bool await_ready() const { return !chan_.items_.empty(); }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            chan_.waiters_.push_back(h);
        }

        T
        await_resume()
        {
            // A competing receiver woken earlier in the same event
            // round may have drained the queue; that cannot happen
            // here because each send wakes at most one waiter, but be
            // defensive anyway.
            K2_ASSERT(!chan_.items_.empty());
            T item = std::move(chan_.items_.front());
            chan_.items_.pop_front();
            return item;
        }

      private:
        Channel &chan_;
    };

    /** Suspend until an item is available, then dequeue it. */
    Awaiter recv() { return Awaiter(*this); }

    /** Dequeue without suspending, if an item is available. */
    std::optional<T>
    tryRecv()
    {
        if (items_.empty())
            return std::nullopt;
        T item = std::move(items_.front());
        items_.pop_front();
        return item;
    }

    std::size_t size() const { return items_.size(); }
    bool empty() const { return items_.empty(); }

    /** Capture/restore queued items (waiters are structural). */
    void
    snapState(snap::Io &io)
    {
        io.check(waiters_.size(), "Channel::waiters");
        io.podDeque(items_);
    }

  private:
    Engine &engine_;
    std::deque<T> items_;
    std::deque<std::coroutine_handle<>> waiters_;
};

/**
 * Run a set of tasks to completion concurrently.
 *
 * Spawns each task detached and suspends the caller until all of them
 * have finished.
 */
Task<void> whenAll(Engine &eng, std::vector<Task<void>> tasks);

} // namespace sim
} // namespace k2

#endif // K2_SIM_SYNC_H
