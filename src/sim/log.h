/**
 * @file
 * gem5-style status and error reporting for the K2 simulator.
 *
 * panic()  -- an internal invariant was violated (a simulator bug);
 *             aborts the process.
 * fatal()  -- the simulation cannot continue because of a user error
 *             (bad configuration, invalid arguments); throws
 *             FatalError so tests can assert on misconfiguration.
 * warn()   -- something is modelled approximately; execution continues.
 * inform() -- normal operational status.
 */

#ifndef K2_SIM_LOG_H
#define K2_SIM_LOG_H

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace k2 {
namespace sim {

/** Thrown by fatal() for user-caused misconfiguration. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** Verbosity of inform()/warn() output. */
enum class LogLevel { Quiet, Normal, Verbose };

/**
 * Set the process-wide default log verbosity. Defaults to Normal.
 *
 * The default is stored in an atomic and is intended to be
 * immutable-after-init: set it once before any simulation threads
 * start. Concurrent engines that want their own verbosity use
 * ScopedLogConfig instead, which overrides the default for the
 * calling thread only.
 */
void setLogLevel(LogLevel level);

/** Get the effective log verbosity for the calling thread: the
 *  innermost active ScopedLogConfig's level, else the process-wide
 *  default. */
LogLevel logLevel();

/** Route already-formatted inform()-class text through the calling
 *  thread's log configuration: appended to the active scope's stdout
 *  sink, else written to stdout. Used by harnesses that replay
 *  captured cell output. */
void logToOut(const std::string &line);

/** Same as logToOut() for warn()/trace()-class text (stderr). */
void logToErr(const std::string &line);

/**
 * Thread-confined log configuration override (RAII).
 *
 * While alive, warn()/inform()/trace() emitted from the constructing
 * thread use @p level instead of the process default, and -- when
 * sinks are given -- append their text to the sink strings instead of
 * writing to stdout/stderr. This is how each sweep cell gets
 * per-engine log configuration: the cell's worker thread installs a
 * scope around the cell body, so concurrent engines at different
 * levels neither share a knob nor interleave their output.
 *
 * Scopes nest (the previous configuration is restored on
 * destruction) and must be destroyed on the constructing thread.
 * panic()/fatal() diagnostics always go to stderr: they are crash
 * paths and must be visible even if a capture buffer is never
 * flushed.
 */
class ScopedLogConfig
{
  public:
    /**
     * @param level Effective verbosity for this thread.
     * @param out Sink for inform() text (stdout stream); null keeps
     *        stdout.
     * @param err Sink for warn()/trace() text (stderr stream); null
     *        keeps stderr.
     */
    explicit ScopedLogConfig(LogLevel level, std::string *out = nullptr,
                             std::string *err = nullptr);
    ~ScopedLogConfig();

    ScopedLogConfig(const ScopedLogConfig &) = delete;
    ScopedLogConfig &operator=(const ScopedLogConfig &) = delete;

  private:
    struct State
    {
        bool active = false;
        LogLevel level = LogLevel::Normal;
        std::string *out = nullptr;
        std::string *err = nullptr;
    };

    static State &threadState();
    friend LogLevel logLevel();
    friend void logToOut(const std::string &line);
    friend void logToErr(const std::string &line);

    State prev_;
};

/**
 * Report an internal simulator bug and abort.
 *
 * @param fmt printf-style format string.
 */
[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/**
 * Report a user error and throw FatalError.
 */
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Emit a warning (suppressed at LogLevel::Quiet). */
void warnImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Emit a status message (suppressed below LogLevel::Normal). */
void informImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Emit a debug trace (only at LogLevel::Verbose). */
void traceImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style formatting into a std::string. */
std::string strPrintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

#define K2_PANIC(...) \
    ::k2::sim::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define K2_FATAL(...) \
    ::k2::sim::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Assert an internal invariant; panics with the condition text. */
#define K2_ASSERT(cond, ...)                                           \
    do {                                                               \
        if (!(cond)) {                                                 \
            ::k2::sim::panicImpl(__FILE__, __LINE__,                   \
                                 "assertion failed: %s", #cond);       \
        }                                                              \
    } while (0)

} // namespace sim
} // namespace k2

#endif // K2_SIM_LOG_H
