/**
 * @file
 * gem5-style status and error reporting for the K2 simulator.
 *
 * panic()  -- an internal invariant was violated (a simulator bug);
 *             aborts the process.
 * fatal()  -- the simulation cannot continue because of a user error
 *             (bad configuration, invalid arguments); throws
 *             FatalError so tests can assert on misconfiguration.
 * warn()   -- something is modelled approximately; execution continues.
 * inform() -- normal operational status.
 */

#ifndef K2_SIM_LOG_H
#define K2_SIM_LOG_H

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace k2 {
namespace sim {

/** Thrown by fatal() for user-caused misconfiguration. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** Verbosity of inform()/warn() output. */
enum class LogLevel { Quiet, Normal, Verbose };

/** Set the global log verbosity. Defaults to Normal. */
void setLogLevel(LogLevel level);

/** Get the global log verbosity. */
LogLevel logLevel();

/**
 * Report an internal simulator bug and abort.
 *
 * @param fmt printf-style format string.
 */
[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/**
 * Report a user error and throw FatalError.
 */
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Emit a warning (suppressed at LogLevel::Quiet). */
void warnImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Emit a status message (suppressed below LogLevel::Normal). */
void informImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Emit a debug trace (only at LogLevel::Verbose). */
void traceImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style formatting into a std::string. */
std::string strPrintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

#define K2_PANIC(...) \
    ::k2::sim::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define K2_FATAL(...) \
    ::k2::sim::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Assert an internal invariant; panics with the condition text. */
#define K2_ASSERT(cond, ...)                                           \
    do {                                                               \
        if (!(cond)) {                                                 \
            ::k2::sim::panicImpl(__FILE__, __LINE__,                   \
                                 "assertion failed: %s", #cond);       \
        }                                                              \
    } while (0)

} // namespace sim
} // namespace k2

#endif // K2_SIM_LOG_H
