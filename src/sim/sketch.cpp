#include "sim/sketch.h"

#include <algorithm>
#include <cmath>

namespace k2 {
namespace sim {

void
QuantileSketch::sample(double v)
{
    ++count_;
    // One deterministic rounding per sample; the integer sum is then
    // independent of accumulation and merge order. Out-of-range and
    // NaN contributions saturate per sample (llround on them is
    // undefined), keeping the sum merge-order-independent even for
    // degenerate streams.
    constexpr double kLimit = 9.2e18;       // just inside int64 range
    constexpr std::int64_t kSat = 9200000000000000000ll;
    const double scaled = v * kSumScale;
    if (scaled >= kLimit)
        sumFp_ += kSat;
    else if (scaled <= -kLimit)
        sumFp_ -= kSat;
    else if (scaled == scaled) // skip NaN
        sumFp_ += std::llround(scaled);
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
    ++buckets_[Histogram::bucketIndex(v)];
}

void
QuantileSketch::merge(const QuantileSketch &other)
{
    count_ += other.count_;
    sumFp_ += other.sumFp_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    for (std::size_t i = 0; i < kBuckets; ++i)
        buckets_[i] += other.buckets_[i];
}

double
QuantileSketch::min() const
{
    return count_ ? min_ : std::numeric_limits<double>::quiet_NaN();
}

double
QuantileSketch::max() const
{
    return count_ ? max_ : std::numeric_limits<double>::quiet_NaN();
}

double
QuantileSketch::percentile(double p) const
{
    return detail::bucketPercentile(buckets_.data(), kBuckets, count_,
                                    min(), max(), p);
}

} // namespace sim
} // namespace k2
