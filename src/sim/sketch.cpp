#include "sim/sketch.h"

#include <algorithm>
#include <cmath>

#if defined(__x86_64__)
#include <emmintrin.h>
#endif

namespace k2 {
namespace sim {

namespace {

/**
 * Rounds an already-scaled sample to the nearest integer in the
 * hardware rounding mode (to nearest, ties to even -- the IEEE-754
 * default no code in this repo changes). The caller guarantees
 * @p scaled is finite and strictly inside int64 range.
 *
 * One instruction (cvtsd2si) on x86-64; std::llround is a libm call
 * on the baseline target and dominated the per-sample cost on the
 * fleet hot path before this.
 */
inline std::int64_t
toNearestInt(double scaled)
{
#if defined(__x86_64__)
    return _mm_cvtsd_si64(_mm_set_sd(scaled));
#else
    return static_cast<std::int64_t>(std::nearbyint(scaled));
#endif
}

/**
 * One deterministic rounding per sample; the integer sum is then
 * independent of accumulation and merge order. Out-of-range and NaN
 * contributions saturate (respectively vanish) per sample, keeping
 * the sum merge-order-independent even for degenerate streams.
 * sample() and sampleBatch() share this helper (sampleBatch's fast
 * path reproduces it exactly, see there), which is what makes them
 * bit-identical to each other.
 */
inline std::int64_t
roundScaled(double v)
{
    constexpr double kLimit = 9.2e18; // just inside int64 range
    constexpr std::int64_t kSat = 9200000000000000000ll;
    const double scaled = v * QuantileSketch::kSumScale;
    if (scaled != scaled) // NaN
        return 0;
    if (scaled >= kLimit)
        return kSat;
    if (scaled <= -kLimit)
        return -kSat;
    return toNearestInt(scaled);
}

} // namespace

void
QuantileSketch::sample(double v)
{
    ++count_;
    sumFp_ += roundScaled(v);
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
    ++buckets_[Histogram::bucketIndex(v)];
}

void
QuantileSketch::sampleBatch(const double *v, std::size_t n)
{
    // Same per-element arithmetic as sample(), with every accumulator
    // split into one independent instance per unrolled element:
    // loop-carried latency, not throughput, bounds this loop. A lone
    // minsd/maxsd chain costs 4 cycles per element, a lone 128-bit
    // add-with-carry chain 2, and consecutive increments of the SAME
    // log2 bucket -- the common case, real episode costs cluster in a
    // handful of buckets -- stall on store-to-load forwarding. Two
    // chains each, plus batch-local bucket deltas folded in at the
    // end, run them all in parallel.
    //
    // The sum fast path converts unconditionally (cvtsd2si) and
    // filters the result with ONE integer magnitude check instead of
    // roundScaled's three FP-domain guards, which cost more than the
    // conversion itself: NaN and out-of-int64-range inputs convert to
    // INT64_MIN, whose magnitude fails the |r| <= kFastMax filter
    // along with every other value too large for an overflow-proof
    // int64 partial (kFastMax * kSpan < 2^63). Filtered elements take
    // the guarded roundScaled into the 128-bit spill -- so every
    // element contributes exactly roundScaled(v[i]), merely via a
    // different adder.
    //
    // All of it is exactly equal to the sequential fold: integer adds
    // are associative, and min/max are associative and commutative
    // for any stream without both signed zeros (NaNs lose every
    // std::min/max comparison and vanish in either grouping, exactly
    // as in sample()).
    constexpr std::uint64_t kFastMax = (1ull << 52) - 1;
    constexpr std::size_t kSpan = 2048;
    __int128 spill = 0;
    double mn0 = min_;
    double mx0 = max_;
    double mn1 = min_;
    double mx1 = max_;
    std::uint64_t delta0[Histogram::kBuckets] = {};
    std::uint64_t delta1[Histogram::kBuckets] = {};
    std::size_t done = 0;
    while (done < n) {
        const std::size_t lim = std::min(n - done, kSpan);
        const double *p = v + done;
        std::int64_t sum0 = 0;
        std::int64_t sum1 = 0;
        std::size_t i = 0;
        for (; i + 2 <= lim; i += 2) {
            const double a = p[i];
            const double b = p[i + 1];
#if defined(__x86_64__)
            // Unconditional convert; NaN and out-of-int64-range
            // inputs yield the INT64_MIN sentinel, which the filter
            // below rejects along with every other oversized value.
            std::int64_t ra =
                toNearestInt(a * QuantileSketch::kSumScale);
            std::int64_t rb =
                toNearestInt(b * QuantileSketch::kSumScale);
#else
            // Portable targets cannot rely on the sentinel (the
            // out-of-range cast is undefined there); guard first.
            std::int64_t ra = roundScaled(a);
            std::int64_t rb = roundScaled(b);
#endif
            // Unsigned shift-by-kFastMax: in-range iff the biased
            // value lands in [0, 2*kFastMax] (wraparound parks every
            // out-of-range r, INT64_MIN included, far above it).
            if (__builtin_expect(static_cast<std::uint64_t>(ra) +
                                         kFastMax >
                                     2 * kFastMax,
                                 0)) {
                spill += roundScaled(a);
                ra = 0;
            }
            if (__builtin_expect(static_cast<std::uint64_t>(rb) +
                                         kFastMax >
                                     2 * kFastMax,
                                 0)) {
                spill += roundScaled(b);
                rb = 0;
            }
            sum0 += ra;
            sum1 += rb;
            mn0 = std::min(mn0, a);
            mx0 = std::max(mx0, a);
            mn1 = std::min(mn1, b);
            mx1 = std::max(mx1, b);
            ++delta0[Histogram::bucketIndex(a)];
            ++delta1[Histogram::bucketIndex(b)];
        }
        if (i < lim) {
            const double x = p[i];
            spill += roundScaled(x);
            mn0 = std::min(mn0, x);
            mx0 = std::max(mx0, x);
            ++delta0[Histogram::bucketIndex(x)];
            ++i;
        }
        spill += static_cast<__int128>(sum0) + sum1;
        done += i;
    }
    count_ += n;
    sumFp_ += spill;
    min_ = std::min(mn0, mn1);
    max_ = std::max(mx0, mx1);
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b)
        buckets_[b] += delta0[b] + delta1[b];
}

void
QuantileSketch::merge(const QuantileSketch &other)
{
    count_ += other.count_;
    sumFp_ += other.sumFp_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    for (std::size_t i = 0; i < kBuckets; ++i)
        buckets_[i] += other.buckets_[i];
}

double
QuantileSketch::min() const
{
    return count_ ? min_ : std::numeric_limits<double>::quiet_NaN();
}

double
QuantileSketch::max() const
{
    return count_ ? max_ : std::numeric_limits<double>::quiet_NaN();
}

double
QuantileSketch::percentile(double p) const
{
    return detail::bucketPercentile(buckets_.data(), kBuckets, count_,
                                    min(), max(), p);
}

} // namespace sim
} // namespace k2
