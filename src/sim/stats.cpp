#include "sim/stats.h"

#include <cmath>

namespace k2 {
namespace sim {

namespace detail {

double
bucketPercentile(const std::uint64_t *buckets, std::size_t nbuckets,
                 std::uint64_t total, double min, double max, double p)
{
    if (total == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    // Nearest rank: the rank-th smallest sample, rank in [1, total].
    // ceil() (not truncation) so that e.g. p50 of two samples is rank
    // 1, the lower sample -- a truncated target with a strict '>' test
    // here used to skip the bucket that contains the ranked sample and
    // bias every tail percentile one bucket high.
    const auto rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(p * static_cast<double>(total))));
    // The rank-1 order statistic is the minimum, which is tracked
    // exactly; don't degrade it to a bucket boundary.
    if (rank <= 1)
        return min;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < nbuckets; ++i) {
        seen += buckets[i];
        if (seen >= rank) {
            // Upper boundary of bucket i is 2^(i+1); the last bucket
            // is unbounded. Clamp into the observed range either way.
            if (i + 1 >= nbuckets)
                return max;
            const double upper = static_cast<double>(1ull << (i + 1));
            return std::clamp(upper, min, max);
        }
    }
    return max;
}

} // namespace detail

double
Histogram::percentile(double p) const
{
    return detail::bucketPercentile(buckets_.data(), kBuckets,
                                    acc_.count(), acc_.min(),
                                    acc_.max(), p);
}

} // namespace sim
} // namespace k2
