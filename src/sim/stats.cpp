#include "sim/stats.h"

namespace k2 {
namespace sim {

double
Histogram::percentile(double p) const
{
    const std::uint64_t total = acc_.count();
    if (total == 0)
        return 0.0;
    const auto target = static_cast<std::uint64_t>(p * total);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        seen += buckets_[i];
        if (seen > target) {
            // Upper boundary of bucket i is 2^(i+1); the last bucket
            // is unbounded. Clamp to the observed maximum either way.
            if (i + 1 >= kBuckets)
                return acc_.max();
            const double upper = static_cast<double>(1ull << (i + 1));
            return std::min(upper, acc_.max());
        }
    }
    return acc_.max();
}

} // namespace sim
} // namespace k2
