#include "sim/trace.h"

#include <bit>

#include "sim/log.h"

namespace k2 {
namespace sim {

const char *
Tracer::catName(TraceCat cat)
{
    switch (cat) {
      case TraceCat::Sched:
        return "sched";
      case TraceCat::Dsm:
        return "dsm";
      case TraceCat::Irq:
        return "irq";
      case TraceCat::Mem:
        return "mem";
      case TraceCat::Nw:
        return "nw";
      case TraceCat::Mail:
        return "mail";
    }
    return "?";
}

void
Tracer::record(Time when, TraceCat cat, std::string text)
{
    if (!on(cat))
        return;
    ++emitted_;
    // Mirror the record as an instant on the category's track so the
    // textual trace shows up on the exported timeline.
    if (spansOn_) {
        const auto idx =
            static_cast<std::size_t>(std::countr_zero(traceMask(cat)));
        K2_ASSERT(idx < kNumTraceCats);
        std::uint32_t detail = kNoDetail;
        if (spanDetails_.size() < spanCapacity_) {
            detail = static_cast<std::uint32_t>(spanDetails_.size());
            spanDetails_.push_back(text);
        }
        push(SpanEvent{when, 0, 0.0, catTracks_[idx], detail,
                       SpanPhase::Instant, catName(cat)});
    }
    if (buffer_.size() >= capacity_) {
        buffer_.pop_front();
        ++dropped_;
    }
    buffer_.push_back(Record{when, cat, std::move(text)});
}

std::vector<Tracer::Record>
Tracer::ofCategory(TraceCat cat) const
{
    std::vector<Record> out;
    for (const auto &r : buffer_) {
        if (r.cat == cat)
            out.push_back(r);
    }
    return out;
}

void
Tracer::dump(std::ostream &os) const
{
    for (const auto &r : buffer_) {
        os << formatTime(r.when) << " [" << catName(r.cat) << "] "
           << r.text << "\n";
    }
}

void
Tracer::clear()
{
    buffer_.clear();
    emitted_ = 0;
    dropped_ = 0;
}

TrackId
Tracer::addTrack(const std::string &name)
{
    auto it = trackByName_.find(name);
    if (it != trackByName_.end())
        return it->second;
    const auto id = static_cast<TrackId>(tracks_.size());
    tracks_.push_back(name);
    trackByName_.emplace(name, id);
    return id;
}

void
Tracer::enableSpans(std::size_t capacity)
{
    K2_ASSERT(capacity > 0);
    spanCapacity_ = capacity;
    spans_.reserve(capacity);
    spanDetails_.reserve(capacity / 8);
    for (std::size_t i = 0; i < kNumTraceCats; ++i) {
        catTracks_[i] = addTrack(
            std::string("trace.") +
            catName(static_cast<TraceCat>(1u << i)));
    }
    spansOn_ = true;
}

void
Tracer::spanCompleteStr(Time start, Duration dur, TrackId track,
                        const char *name, const std::string &detail)
{
    std::uint32_t idx = kNoDetail;
    if (spans_.size() < spanCapacity_ &&
        spanDetails_.size() < spanCapacity_) {
        idx = static_cast<std::uint32_t>(spanDetails_.size());
        spanDetails_.push_back(detail);
    }
    push(SpanEvent{start, dur, 0.0, track, idx, SpanPhase::Complete,
                   name});
}

} // namespace sim
} // namespace k2
