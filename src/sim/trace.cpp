#include "sim/trace.h"

#include <bit>

#include "sim/log.h"
#include "snap/io.h"

namespace k2 {
namespace sim {

const char *
Tracer::catName(TraceCat cat)
{
    switch (cat) {
      case TraceCat::Sched:
        return "sched";
      case TraceCat::Dsm:
        return "dsm";
      case TraceCat::Irq:
        return "irq";
      case TraceCat::Mem:
        return "mem";
      case TraceCat::Nw:
        return "nw";
      case TraceCat::Mail:
        return "mail";
    }
    return "?";
}

void
Tracer::record(Time when, TraceCat cat, std::string text)
{
    if (!on(cat))
        return;
    ++emitted_;
    // Mirror the record as an instant on the category's track so the
    // textual trace shows up on the exported timeline.
    if (spansOn_) {
        const auto idx =
            static_cast<std::size_t>(std::countr_zero(traceMask(cat)));
        K2_ASSERT(idx < kNumTraceCats);
        std::uint32_t detail = kNoDetail;
        if (spanDetails_.size() < spanCapacity_) {
            detail = static_cast<std::uint32_t>(spanDetails_.size());
            spanDetails_.push_back(text);
        }
        push(SpanEvent{when, 0, 0.0, catTracks_[idx], detail,
                       SpanPhase::Instant, catName(cat)});
    }
    if (buffer_.size() >= capacity_) {
        buffer_.pop_front();
        ++dropped_;
    }
    buffer_.push_back(Record{when, cat, std::move(text)});
}

std::vector<Tracer::Record>
Tracer::ofCategory(TraceCat cat) const
{
    std::vector<Record> out;
    for (const auto &r : buffer_) {
        if (r.cat == cat)
            out.push_back(r);
    }
    return out;
}

void
Tracer::dump(std::ostream &os) const
{
    for (const auto &r : buffer_) {
        os << formatTime(r.when) << " [" << catName(r.cat) << "] "
           << r.text << "\n";
    }
}

void
Tracer::clear()
{
    buffer_.clear();
    emitted_ = 0;
    dropped_ = 0;
}

TrackId
Tracer::addTrack(const std::string &name)
{
    auto it = trackByName_.find(name);
    if (it != trackByName_.end())
        return it->second;
    const auto id = static_cast<TrackId>(tracks_.size());
    tracks_.push_back(name);
    trackByName_.emplace(name, id);
    return id;
}

void
Tracer::enableSpans(std::size_t capacity)
{
    K2_ASSERT(capacity > 0);
    spanCapacity_ = capacity;
    spans_.reserve(capacity);
    spanDetails_.reserve(capacity / 8);
    for (std::size_t i = 0; i < kNumTraceCats; ++i) {
        catTracks_[i] = addTrack(
            std::string("trace.") +
            catName(static_cast<TraceCat>(1u << i)));
    }
    spansOn_ = true;
}

void
Tracer::snapState(snap::Io &io)
{
    io.check(capacity_, "Tracer::capacity");
    io.pod(enabled_);
    io.pod(emitted_);
    io.pod(dropped_);

    std::uint64_t n = io.count(buffer_.size());
    if (io.restoring()) {
        buffer_.clear();
        buffer_.resize(static_cast<std::size_t>(n));
    }
    for (auto &r : buffer_) {
        io.pod(r.when);
        io.pod(r.cat);
        io.str(r.text);
    }

    io.pod(spansOn_);
    io.pod(spanCapacity_);
    io.pod(spansDropped_);

    // SpanEvents are serialised field by field: the struct has
    // padding, and the capture image must be byte-deterministic.
    // The name pointer is a process-lifetime literal, so storing it
    // verbatim is safe for the in-memory image.
    n = io.count(spans_.size());
    if (io.restoring()) {
        spans_.clear();
        spans_.reserve(
            std::max(static_cast<std::size_t>(n), spanCapacity_));
        spans_.resize(static_cast<std::size_t>(n));
    }
    for (auto &e : spans_) {
        io.pod(e.ts);
        io.pod(e.dur);
        io.pod(e.value);
        io.pod(e.track);
        io.pod(e.detail);
        io.pod(e.phase);
        auto name = reinterpret_cast<std::uintptr_t>(e.name);
        io.pod(name);
        if (io.restoring())
            e.name = reinterpret_cast<const char *>(name);
    }

    n = io.count(spanDetails_.size());
    if (io.restoring()) {
        spanDetails_.clear();
        spanDetails_.resize(static_cast<std::size_t>(n));
    }
    for (auto &s : spanDetails_)
        io.str(s);

    // Tracks only ever grow and are deduplicated by name; restore
    // prunes back to the captured registry (post-capture tracks
    // re-register on replay and get the same ids, in the same order).
    n = io.count(tracks_.size());
    if (io.restoring()) {
        K2_ASSERT(n <= tracks_.size());
        tracks_.resize(static_cast<std::size_t>(n));
    }
    for (auto &name : tracks_)
        io.str(name);
    if (io.restoring()) {
        trackByName_.clear();
        for (std::size_t i = 0; i < tracks_.size(); ++i)
            trackByName_.emplace(tracks_[i], static_cast<TrackId>(i));
    }
    io.pod(catTracks_);
}

void
Tracer::spanCompleteStr(Time start, Duration dur, TrackId track,
                        const char *name, const std::string &detail)
{
    std::uint32_t idx = kNoDetail;
    if (spans_.size() < spanCapacity_ &&
        spanDetails_.size() < spanCapacity_) {
        idx = static_cast<std::uint32_t>(spanDetails_.size());
        spanDetails_.push_back(detail);
    }
    push(SpanEvent{start, dur, 0.0, track, idx, SpanPhase::Complete,
                   name});
}

} // namespace sim
} // namespace k2
