#include "sim/trace.h"

namespace k2 {
namespace sim {

const char *
Tracer::catName(TraceCat cat)
{
    switch (cat) {
      case TraceCat::Sched:
        return "sched";
      case TraceCat::Dsm:
        return "dsm";
      case TraceCat::Irq:
        return "irq";
      case TraceCat::Mem:
        return "mem";
      case TraceCat::Nw:
        return "nw";
      case TraceCat::Mail:
        return "mail";
    }
    return "?";
}

void
Tracer::record(Time when, TraceCat cat, std::string text)
{
    if (!on(cat))
        return;
    ++emitted_;
    if (buffer_.size() >= capacity_) {
        buffer_.pop_front();
        ++dropped_;
    }
    buffer_.push_back(Record{when, cat, std::move(text)});
}

std::vector<Tracer::Record>
Tracer::ofCategory(TraceCat cat) const
{
    std::vector<Record> out;
    for (const auto &r : buffer_) {
        if (r.cat == cat)
            out.push_back(r);
    }
    return out;
}

void
Tracer::dump(std::ostream &os) const
{
    for (const auto &r : buffer_) {
        os << formatTime(r.when) << " [" << catName(r.cat) << "] "
           << r.text << "\n";
    }
}

void
Tracer::clear()
{
    buffer_.clear();
    emitted_ = 0;
    dropped_ = 0;
}

} // namespace sim
} // namespace k2
