/**
 * @file
 * Deterministic pseudo-random number generation for workloads.
 *
 * xoshiro256** with a SplitMix64 seeder: fast, high quality, and (unlike
 * std::mt19937 + std::distributions) guaranteed to produce identical
 * sequences across standard library implementations.
 */

#ifndef K2_SIM_RANDOM_H
#define K2_SIM_RANDOM_H

#include <cstdint>

#include "sim/log.h"

namespace k2 {
namespace sim {

/** xoshiro256** PRNG. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
    {
        // SplitMix64 expansion of the seed into the xoshiro state.
        std::uint64_t x = seed;
        for (auto &s : state_) {
            x += 0x9E3779B97F4A7C15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
            s = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        K2_ASSERT(bound > 0);
        // Lemire's nearly-divisionless bounded generation (simplified:
        // modulo bias is negligible for the bounds used here, but use
        // rejection anyway for exactness).
        const std::uint64_t threshold = (0 - bound) % bound;
        for (;;) {
            const std::uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        K2_ASSERT(lo <= hi);
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace sim
} // namespace k2

#endif // K2_SIM_RANDOM_H
