/**
 * @file
 * Deterministic pseudo-random number generation for workloads.
 *
 * Two generators, two contracts:
 *
 *  - Rng: xoshiro256** with a SplitMix64 seeder. Sequential state,
 *    fast, high quality, and (unlike std::mt19937 +
 *    std::distributions) guaranteed to produce identical sequences
 *    across standard library implementations.
 *
 *  - CounterRng: a Philox-style counter-based generator keyed by
 *    (seed, key, stream). There is no sequential state to thread:
 *    value i of a stream is a pure function of (seed, key, stream, i),
 *    so any offset of any stream is computable independently, in any
 *    order, on any host thread. This is what lets the fleet's
 *    structure-of-arrays synthesis fill payload / noise / arrival
 *    arrays in separate batched passes (DESIGN.md §12) while staying
 *    byte-identical however devices are sharded into cells and lanes.
 */

#ifndef K2_SIM_RANDOM_H
#define K2_SIM_RANDOM_H

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "sim/log.h"

namespace k2 {
namespace sim {

/** xoshiro256** PRNG. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
    {
        // SplitMix64 expansion of the seed into the xoshiro state.
        std::uint64_t x = seed;
        for (auto &s : state_) {
            x += 0x9E3779B97F4A7C15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
            s = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        K2_ASSERT(bound > 0);
        // Lemire's nearly-divisionless bounded generation (simplified:
        // modulo bias is negligible for the bounds used here, but use
        // rejection anyway for exactness).
        const std::uint64_t threshold = (0 - bound) % bound;
        for (;;) {
            const std::uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        K2_ASSERT(lo <= hi);
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

/**
 * Counter-based splittable PRNG (Philox-4x32-10 core).
 *
 * A CounterRng names one *stream* out of a keyed family: the
 * constructor derives the Philox key from @p seed and the upper
 * counter half from (@p key, @p stream) -- for the fleet, @p key is
 * the device id -- and the lower counter half is the 64-bit block
 * index. Every 128-bit block is one 10-round Philox-4x32 evaluation
 * of (key, counter): value `at(i)` needs no preceding draw, distinct
 * streams never share a counter, and the whole family is
 * reproducible from the three constructor integers alone.
 *
 * The sequential convenience API (next()/uniform()/below()) is a
 * cursor over the same values: `next()` returns exactly `at(cursor)`
 * and advances the cursor, so mixed random/sequential use stays
 * coherent.
 *
 * below() uses fixed-point multiply-shift (widening multiply, take
 * the high word) rather than Rng::below's rejection loop: it
 * consumes exactly one value per draw -- an offset-stability
 * requirement -- at the cost of a bias below 2^-64 * bound, which is
 * beneath measurement for every bound the simulator uses.
 */
class CounterRng
{
  public:
    static constexpr int kRounds = 10;

    CounterRng(std::uint64_t seed, std::uint64_t key,
               std::uint32_t stream)
    {
        // SplitMix64 finalizers: the Philox key depends only on the
        // fleet seed; the upper counter words depend only on
        // (key, stream). Philox's avalanche mixes them.
        const std::uint64_t ks = mix(
            seed + 0x243F6A8885A308D3ull);
        const std::uint64_t cs = mix(
            key + 0x9E3779B97F4A7C15ull * (stream + 1));
        key0_ = static_cast<std::uint32_t>(ks);
        key1_ = static_cast<std::uint32_t>(ks >> 32);
        ctr2_ = static_cast<std::uint32_t>(cs);
        ctr3_ = static_cast<std::uint32_t>(cs >> 32);
    }

    /** 128-bit block @p blk as two 64-bit words (values 2*blk and
     *  2*blk + 1 of the stream). */
    void
    block(std::uint64_t blk, std::uint64_t out[2]) const
    {
        std::uint32_t c0 = static_cast<std::uint32_t>(blk);
        std::uint32_t c1 = static_cast<std::uint32_t>(blk >> 32);
        std::uint32_t c2 = ctr2_;
        std::uint32_t c3 = ctr3_;
        std::uint32_t k0 = key0_;
        std::uint32_t k1 = key1_;
        for (int r = 0; r < kRounds; ++r) {
            round(c0, c1, c2, c3, k0, k1);
            k0 += 0x9E3779B9u; // Weyl key schedule.
            k1 += 0xBB67AE85u;
        }
        out[0] = c0 | (static_cast<std::uint64_t>(c1) << 32);
        out[1] = c2 | (static_cast<std::uint64_t>(c3) << 32);
    }

    /** Value @p i of the stream, independent of any other draw. */
    std::uint64_t
    at(std::uint64_t i) const
    {
        std::uint64_t w[2];
        block(i >> 1, w);
        return w[i & 1];
    }

    /** Uniform double in [0, 1) at offset @p i. */
    double
    uniformAt(std::uint64_t i) const
    {
        return static_cast<double>(at(i) >> 11) * 0x1.0p-53;
    }

    /**
     * Fill @p out with values [@p first, @p first + @p n) of the
     * stream: bit-identical to calling at() per element (a test
     * asserts this), but batched -- on x86-64 the Philox rounds run
     * four blocks in flight through SSE2 pmuludq, ~4x the scalar
     * block() throughput. This is the fleet synthesizer's RNG path.
     */
    void fill(std::uint64_t first, std::uint64_t *out,
              std::size_t n) const;

    /** Sequential cursor position (offset of the next next()). @{ */
    std::uint64_t cursor() const { return cursor_; }
    void
    seek(std::uint64_t i)
    {
        cursor_ = i;
    }
    /** @} */

    /** at(cursor()), then advance the cursor. */
    std::uint64_t
    next()
    {
        const std::uint64_t blk = cursor_ >> 1;
        if (blk != cachedBlk_ || !cacheValid_) {
            block(blk, cache_);
            cachedBlk_ = blk;
            cacheValid_ = true;
        }
        return cache_[cursor_++ & 1];
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform integer in [0, bound) by multiply-shift (one draw,
     *  bias < bound * 2^-64). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        K2_ASSERT(bound > 0);
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Bernoulli trial with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static std::uint64_t
    mix(std::uint64_t z)
    {
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
        return z ^ (z >> 31);
    }

    static void
    round(std::uint32_t &c0, std::uint32_t &c1, std::uint32_t &c2,
          std::uint32_t &c3, std::uint32_t k0, std::uint32_t k1)
    {
        const std::uint64_t p0 = 0xD2511F53ull * c0;
        const std::uint64_t p1 = 0xCD9E8D57ull * c2;
        const std::uint32_t nc0 =
            static_cast<std::uint32_t>(p1 >> 32) ^ c1 ^ k0;
        const std::uint32_t nc1 = static_cast<std::uint32_t>(p1);
        const std::uint32_t nc2 =
            static_cast<std::uint32_t>(p0 >> 32) ^ c3 ^ k1;
        const std::uint32_t nc3 = static_cast<std::uint32_t>(p0);
        c0 = nc0;
        c1 = nc1;
        c2 = nc2;
        c3 = nc3;
    }

    std::uint32_t key0_, key1_, ctr2_, ctr3_;
    std::uint64_t cursor_ = 0;
    std::uint64_t cachedBlk_ = 0;
    std::uint64_t cache_[2] = {0, 0};
    bool cacheValid_ = false;
};

/**
 * Poisson draw with mean @p mean from @p rng's sequential cursor.
 *
 * Small means use inversion by multiplication (Knuth); means >= 10
 * use Hormann's PTRD transformed-rejection sampler, whose cost is
 * O(1) in the mean -- the fleet synthesizer draws per-device episode
 * *counts* directly instead of walking exponential inter-arrivals,
 * so a quiet day and a 10^6-episode day cost the same here.
 * Deterministic for a given stream position (consumes a variable but
 * reproducible number of draws).
 */
std::uint64_t poisson(CounterRng &rng, double mean);

} // namespace sim
} // namespace k2

#endif // K2_SIM_RANDOM_H
