#include "os/nightwatch.h"

#include <algorithm>
#include <vector>

#include "sim/log.h"
#include "snap/io.h"

namespace k2 {
namespace os {

NightWatch::NightWatch(soc::Soc &soc, kern::Kernel &main,
                       kern::Kernel &shadow)
    : soc_(soc), main_(main), shadow_(shadow)
{}

NightWatch::ProcState &
NightWatch::state(kern::Process &proc)
{
    ProcState &st = procs_[proc.pid()];
    if (!st.proc) {
        st.proc = &proc;
        st.ack = std::make_unique<sim::Event>(soc_.engine());
    }
    return st;
}

bool
NightWatch::isGated(kern::Pid pid) const
{
    auto it = procs_.find(pid);
    return it != procs_.end() && it->second.gated;
}

void
NightWatch::install()
{
    main_.scheduler().setPreSwitchHook(
        [this](kern::Thread &t, soc::Core &c) { return preSwitch(t, c); });
    main_.scheduler().setPostSwitchHook(
        [this](kern::Thread &t, soc::Core &c) {
            return postSwitch(t, c);
        });
    main_.scheduler().setProcessBlockedHook(
        [this](kern::Process &p) { onProcessBlocked(p); });
}

kern::Thread *
NightWatch::spawn(kern::Process &proc, std::string name,
                  kern::Thread::Body body)
{
    kern::Thread *t = shadow_.spawnThread(
        &proc, std::move(name), kern::ThreadKind::NightWatch,
        std::move(body));
    ProcState &st = state(proc);
    if (st.gated || main_.scheduler().runnableNormal(proc) > 0) {
        st.gated = true;
        shadow_.scheduler().setSuspended(*t, true);
    }
    return t;
}

sim::Task<void>
NightWatch::preSwitch(kern::Thread &next, soc::Core &core)
{
    (void)core;
    if (next.kind() != kern::ThreadKind::Normal || !next.process())
        co_return;
    kern::Process &proc = *next.process();
    if (proc.numNightWatch() == 0)
        co_return;
    ProcState &st = state(proc);
    if (st.gated)
        co_return;
    // Send SuspendNW *before* the context switch so the message round
    // trip overlaps with it (§8).
    st.gated = true;
    st.ackPending = true;
    st.ack->reset();
    suspendsSent.inc();
    K2_TRACE(soc_.engine(), sim::TraceCat::Nw, "SuspendNW pid %u",
             proc.pid());
    main_.sendMail(shadow_.domainId(),
                   encodeMessage(MsgType::SuspendNw,
                                 proc.pid() & kPayloadMask, 0));
}

sim::Task<void>
NightWatch::postSwitch(kern::Thread &next, soc::Core &core)
{
    if (next.kind() != kern::ThreadKind::Normal || !next.process())
        co_return;
    ProcState &st = state(*next.process());
    if (!st.ackPending)
        co_return;
    // The switch is done; only now wait for the ack before returning
    // to user space. The residual wait is the 1-2 us of §8.
    const sim::Time t0 = soc_.engine().now();
    core.pinActive();
    co_await st.ack->wait();
    core.unpinActive();
    st.ackPending = false;
    ackWaitUs.sample(sim::toUsec(soc_.engine().now() - t0));
}

void
NightWatch::onProcessBlocked(kern::Process &proc)
{
    auto it = procs_.find(proc.pid());
    if (it == procs_.end() || !it->second.gated)
        return;
    it->second.gated = false;
    resumesSent.inc();
    K2_TRACE(soc_.engine(), sim::TraceCat::Nw, "ResumeNW pid %u",
             proc.pid());
    main_.sendMail(shadow_.domainId(),
                   encodeMessage(MsgType::ResumeNw,
                                 proc.pid() & kPayloadMask, 0));
}

sim::Task<void>
NightWatch::handleMail(KernelIdx to, Message msg, soc::Core &core)
{
    switch (msg.type) {
      case MsgType::SuspendNw: {
        K2_ASSERT(to == 1);
        // Acknowledge first (the main kernel is waiting), then flag
        // the NightWatch threads out of the runqueue.
        shadow_.sendMail(main_.domainId(),
                         encodeMessage(MsgType::AckSuspendNw, msg.payload,
                                       0));
        auto it = procs_.find(static_cast<kern::Pid>(msg.payload));
        if (it != procs_.end() && it->second.proc) {
            co_await core.exec(200); // flagging cost
            for (kern::Thread *t : it->second.proc->threads()) {
                if (!t->isNightWatch())
                    continue;
                // A holder of a cross-domain lock finishes its
                // critical section before the suspension lands --
                // parking it would park every waiter of the lock for
                // the whole gated window.
                if (t->inCritical())
                    t->deferSuspend();
                else
                    shadow_.scheduler().setSuspended(*t, true);
            }
        }
        co_return;
      }
      case MsgType::ResumeNw: {
        K2_ASSERT(to == 1);
        auto it = procs_.find(static_cast<kern::Pid>(msg.payload));
        if (it != procs_.end() && it->second.proc) {
            co_await core.exec(200);
            for (kern::Thread *t : it->second.proc->threads()) {
                if (t->isNightWatch()) {
                    t->clearDeferredSuspend();
                    shadow_.scheduler().setSuspended(*t, false);
                }
            }
        }
        co_return;
      }
      case MsgType::AckSuspendNw: {
        K2_ASSERT(to == 0);
        acksReceived.inc();
        auto it = procs_.find(static_cast<kern::Pid>(msg.payload));
        if (it != procs_.end())
            it->second.ack->set();
        co_return;
      }
      default:
        K2_PANIC("NightWatch received unexpected message type %u",
                 static_cast<unsigned>(msg.type));
    }
}

void
NightWatch::snapState(snap::Io &io)
{
    io.pod(suspendsSent);
    io.pod(resumesSent);
    io.pod(acksReceived);
    io.pod(ackWaitUs);

    // Per-process entries appear on demand (first spawn or first hook
    // firing) and are never erased, so the restoring instance's map is
    // a superset of the image's: prune back to the captured key set.
    std::uint64_t n = io.count(procs_.size());
    if (io.restoring()) {
        std::vector<kern::Pid> keys(static_cast<std::size_t>(n));
        for (auto &k : keys)
            io.pod(k);
        for (auto it = procs_.begin(); it != procs_.end();) {
            if (!std::binary_search(keys.begin(), keys.end(), it->first))
                it = procs_.erase(it);
            else
                ++it;
        }
        for (kern::Pid pid : keys) {
            auto it = procs_.find(pid);
            if (it == procs_.end())
                K2_FATAL("snapshot NightWatch pid %u missing in target",
                         static_cast<unsigned>(pid));
            ProcState &st = it->second;
            io.pod(st.gated);
            io.pod(st.ackPending);
            st.ack->snapState(io);
        }
    } else {
        for (auto &[pid, st] : procs_) {
            kern::Pid p = pid;
            io.pod(p);
        }
        for (auto &[pid, st] : procs_) {
            io.pod(st.gated);
            io.pod(st.ackPending);
            st.ack->snapState(io);
        }
    }
}

} // namespace os
} // namespace k2
