/**
 * @file
 * Cross-ISA function-pointer dispatch (paper §5.4).
 *
 * K2 builds both kernels from one source tree; shared data structures
 * are full of function pointers that hold ARM-ISA addresses. The
 * build statically rewrites blx (the long-jump instruction GCC emits
 * for indirect calls) into Undef; when the Thumb-2 Cortex-M3
 * dereferences such a pointer it traps into a recoverable exception
 * and K2 dispatches to the M3 build of the function.
 *
 * This module models the runtime side: each function-pointer dispatch
 * on the shadow kernel costs an exception round trip plus a lookup.
 * blx is sparse -- 0.1% of instructions, 6% of jumps -- so shadowed
 * services charge a handful of dispatches per operation.
 */

#ifndef K2_OS_CROSS_ISA_H
#define K2_OS_CROSS_ISA_H

#include <vector>

#include "sim/stats.h"
#include "sim/task.h"
#include "soc/core.h"
#include "kern/kernel.h"
#include "snap/io.h"

namespace k2 {
namespace os {

class CrossIsaDispatcher
{
  public:
    /** Fraction of all instructions that are blx (paper §5.4). */
    static constexpr double kBlxInstrFraction = 0.001;

    /**
     * @param shadow The shadow kernel (the only one that traps).
     * @param per_dispatch Exception entry + table lookup + return.
     */
    explicit CrossIsaDispatcher(kern::Kernel &shadow,
                                sim::Duration per_dispatch = sim::usec(2))
        : shadows_{&shadow}, perDispatch_(per_dispatch)
    {}

    /** Register a further Thumb-2 kernel (a shadow replica) as a
     *  trapping ISA. */
    void addShadow(kern::Kernel &k) { shadows_.push_back(&k); }

    /**
     * Charge @p n function-pointer dispatches if @p kern is a shadow
     * kernel; free on the main kernel (native blx).
     */
    sim::Task<void>
    charge(kern::Kernel &kern, soc::Core &core, std::uint64_t n = 1)
    {
        for (kern::Kernel *s : shadows_) {
            if (&kern == s && n > 0) {
                dispatches_.inc(n);
                co_await core.execTime(perDispatch_ * n);
                break;
            }
        }
    }

    std::uint64_t dispatches() const { return dispatches_.value(); }
    sim::Duration perDispatch() const { return perDispatch_; }

    /** Capture/restore: only the dispatch counter is mutable. */
    void snapState(snap::Io &io) { io.pod(dispatches_); }

  private:
    std::vector<kern::Kernel *> shadows_;
    sim::Duration perDispatch_;
    sim::Counter dispatches_;
};

} // namespace os
} // namespace k2

#endif // K2_OS_CROSS_ISA_H
