/**
 * @file
 * Per-kernel balloon driver (paper §6.2).
 *
 * K2 retrofits the virtual-machine balloon-driver idea to move
 * physically contiguous 16 MB page blocks between K2 (the meta level)
 * and the individual kernels' page allocators:
 *
 *  - deflate: the driver frees a page block to the local page
 *    allocator, transferring ownership K2 -> kernel;
 *  - inflate: the driver allocates a page block back from the kernel,
 *    forcing it to evacuate (migrate) movable pages from the block,
 *    transferring ownership kernel -> K2.
 *
 * The balloon needs no change to the buddy allocator: it uses the
 * allocator's contiguous-range donate/reclaim interface, mirroring how
 * the real driver builds on Linux CMA. Costs are dominated by page
 * movement through the shared interconnect (similar on both kernels)
 * plus per-page kernel bookkeeping (slower on the weak core), which is
 * why Table 4 shows balloon operations only ~1.2-1.8x slower on the
 * shadow kernel while allocations are ~12x slower.
 */

#ifndef K2_OS_BALLOON_H
#define K2_OS_BALLOON_H

#include "sim/stats.h"
#include "sim/task.h"
#include "kern/kernel.h"
#include "kern/types.h"
#include "snap/io.h"

namespace k2 {
namespace os {

class BalloonDriver
{
  public:
    /** Pages per balloon page block: 16 MB of 4 KB pages. */
    static constexpr std::uint64_t kBlockPages = 4096;

    struct CostModel
    {
        /** Interconnect time per page on deflate (free-list insert,
         *  struct-page writes). */
        sim::Duration platformPerPageDeflate = sim::nsec(2300);
        /** Interconnect time per page on inflate (scan + remap). */
        sim::Duration platformPerPageInflate = sim::nsec(2400);
        /** Kernel bookkeeping work units per page. */
        std::uint64_t workPerPageDeflate = 28;
        std::uint64_t workPerPageInflate = 55;
        /** Extra interconnect time per migrated page (the copy). */
        sim::Duration perMigratedPage = sim::usec(3);
    };

    explicit BalloonDriver(kern::Kernel &kernel);
    BalloonDriver(kern::Kernel &kernel, CostModel costs);

    kern::Kernel &kernel() { return kernel_; }

    /**
     * Deflate: release @p block to the local kernel's page allocator.
     * Must run in a thread of the owning kernel.
     */
    sim::Task<void> deflate(kern::Thread &t, kern::PageRange block);

    /**
     * Inflate: reclaim @p block from the local kernel's allocator,
     * evacuating movable pages.
     *
     * @return false if the block could not be reclaimed (unmovable
     *         pages or insufficient free memory to migrate into).
     */
    sim::Task<bool> inflate(kern::Thread &t, kern::PageRange block);

    /** @name Statistics (latencies in microseconds). @{ */
    sim::Counter deflates;
    sim::Counter inflates;
    sim::Counter failedInflates;
    sim::Accumulator deflateUs;
    sim::Accumulator inflateUs;
    sim::Accumulator migratedPages;
    /** @} */

    /** Capture/restore: the driver is stateless beyond its stats. */
    void
    snapState(snap::Io &io)
    {
        io.pod(deflates);
        io.pod(inflates);
        io.pod(failedInflates);
        io.pod(deflateUs);
        io.pod(inflateUs);
        io.pod(migratedPages);
    }

  private:
    kern::Kernel &kernel_;
    CostModel costs_;
};

} // namespace os
} // namespace k2

#endif // K2_OS_BALLOON_H
