/**
 * @file
 * The K2 software distributed shared memory (paper §6.3).
 *
 * The DSM keeps shadowed-service state coherent between the main
 * (strong-domain) and shadow (weak-domain) kernels under sequential
 * consistency, maintaining the one-writer invariant at 4 KB page
 * granularity.
 *
 * Default protocol: the paper's simple two-state scheme. Each kernel's
 * copy of a page is Valid or Invalid; before touching an Invalid page
 * a kernel sends GetExclusive to the owner and spins (synchronously --
 * interrupt handlers cannot sleep) until PutExclusive arrives; the
 * owner flushes and invalidates the page from its cache before
 * granting. An alternative three-state (MSI) protocol with read
 * sharing is implemented for the §6.3 ablation; it pays the Cortex-M3
 * cascaded-MMU read-tracking penalty on every weak-kernel fault.
 *
 * The per-page state machine, message verbs and fault-phase cost hooks
 * are a pluggable strategy (src/os/coherence/): beyond the paper's two
 * protocols the registry carries directory MESI/MOESI and a log-based
 * release-acquire protocol, selectable via K2Config::dsmProtocol or
 * the sweep binaries' --dsm= flag. This class remains the facade that
 * owns the platform handles, cost model, Table-5 statistics and
 * metrics, so reports and snapshots are protocol-independent.
 *
 * Asymmetric priorities (favouring the strong domain): the main kernel
 * services GetExclusive in a bottom half, deferring further when
 * loaded; the shadow kernel services requests before any other pending
 * interrupt.
 */

#ifndef K2_OS_DSM_H
#define K2_OS_DSM_H

#include <array>
#include <cstdint>
#include <memory>

#include "sim/stats.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "soc/mmu.h"
#include "soc/soc.h"
#include "kern/kernel.h"
#include "os/coherence/protocol.h"
#include "os/messages.h"
#include "os/system.h"

namespace k2 {

namespace obs {
class MetricsRegistry;
}

namespace os {

class Dsm
{
  public:
    /** Protocol selector (see coherence::ProtocolKind for the zoo). */
    using Protocol = coherence::ProtocolKind;

    /** Per-fault cost constants (Table 5 calibration). */
    using CostModel = coherence::PairCostModel;

    /** Fault-timeout retry policy (recovery layer). */
    using RetryPolicy = coherence::RetryPolicy;

    /** Per-sender fault statistics (the Table 5 breakdown). */
    using FaultStats = coherence::FaultStats;

    /**
     * @param soc The platform.
     * @param kernels Main kernel (index 0, strong domain) and shadow
     *        kernel (index 1, weak domain).
     * @param num_pages Number of DSM-managed page keys available.
     */
    Dsm(soc::Soc &soc, std::array<kern::Kernel *, 2> kernels,
        std::uint64_t num_pages, Protocol protocol = Protocol::TwoState);
    Dsm(soc::Soc &soc, std::array<kern::Kernel *, 2> kernels,
        std::uint64_t num_pages, Protocol protocol, CostModel costs);
    ~Dsm();

    Protocol protocol() const { return impl_->kind(); }

    /** Enable/disable the fault-timeout retry (see RetryPolicy). */
    void setRetryPolicy(RetryPolicy p) { retry_ = p; }

    /** Grant-timeout retries sent so far. */
    std::uint64_t retries() const { return retries_.value(); }

    /**
     * Crash recovery: make @p owner the exclusive owner of every DSM
     * page, invalidating the (dead) peer's copies. Faults of @p owner
     * left waiting on a grant from the dead peer are completed
     * locally.
     *
     * @return Number of pages whose ownership state changed.
     */
    std::uint64_t reclaimAll(KernelIdx owner);

    /** Reserve a range of DSM page keys for a shared region. */
    kern::PageRange allocRegion(std::uint64_t pages);

    /**
     * Access a DSM page from @p kern, charging costs to @p core.
     *
     * Satisfied locally if this kernel's copy permits the access;
     * otherwise takes the full fault path (messages, remote flush,
     * spin). Callable from thread or interrupt context.
     */
    sim::Task<void> access(kern::Kernel &kern, soc::Core &core,
                           std::uint64_t page, Access rw);

    /**
     * Mail dispatch: handle a DSM message received by @p to_kernel.
     * Called from the mailbox ISR.
     */
    sim::Task<void> handleMail(KernelIdx to_kernel, Message msg,
                               soc::Core &core);

    /** @name Introspection for tests and benches. @{ */

    /** True if @p kernel's copy of @p page permits @p rw locally. */
    bool isLocallyValid(KernelIdx kernel, std::uint64_t page,
                        Access rw) const;

    const FaultStats &faultStats(KernelIdx sender) const
    {
        return stats_[sender];
    }

    FaultStats &mutableFaultStats(KernelIdx sender)
    {
        return stats_[sender];
    }

    /** Total coherence messages sent. */
    std::uint64_t messagesSent() const { return messages_.value(); }

    /** Pages demoted to 4 KB mapping grain so far (§6.3 footprint
     *  optimisation). */
    std::uint64_t pagesDemoted() const { return demotions_.value(); }

    /** Per-kernel MMU model (exposed for TLB statistics). */
    soc::Mmu &mmu(KernelIdx k) { return *mmus_[k]; }

    /** @} */

    /**
     * Register fault counters, the per-phase Table 5 accumulators and
     * MMU statistics under "<prefix>.<kernel-name>.*". Protocols
     * beyond the paper's two add their own counters under
     * "<prefix>.<proto>.*"; the defaults add none, keeping the legacy
     * key set exact.
     */
    void registerMetrics(obs::MetricsRegistry &reg,
                         const std::string &prefix) const;

    /**
     * Capture/restore protocol state: per-page coherence state (pages
     * instantiated after the capture point are dropped), MMU/TLB
     * contents, fault statistics, and the message sequence counter.
     */
    void snapState(snap::Io &io);

  private:
    KernelIdx idxOf(const kern::Kernel &k) const;

    soc::Soc &soc_;
    std::array<kern::Kernel *, 2> kernels_;
    std::uint64_t numPages_;
    std::uint64_t nextRegionPage_ = 0;
    CostModel costs_;
    std::array<std::unique_ptr<soc::Mmu>, 2> mmus_;
    std::array<FaultStats, 2> stats_;
    std::array<sim::TrackId, 2> tracks_{}; //!< Per-kernel span tracks.
    sim::Counter messages_;
    sim::Counter demotions_;
    sim::Counter retries_;
    RetryPolicy retry_{};
    std::uint32_t seq_ = 0;
    std::unique_ptr<coherence::PairProtocol> impl_;
};

} // namespace os
} // namespace k2

#endif // K2_OS_DSM_H
