/**
 * @file
 * The K2 software distributed shared memory (paper §6.3).
 *
 * The DSM keeps shadowed-service state coherent between the main
 * (strong-domain) and shadow (weak-domain) kernels under sequential
 * consistency, maintaining the one-writer invariant at 4 KB page
 * granularity.
 *
 * Default protocol: the paper's simple two-state scheme. Each kernel's
 * copy of a page is Valid or Invalid; before touching an Invalid page
 * a kernel sends GetExclusive to the owner and spins (synchronously --
 * interrupt handlers cannot sleep) until PutExclusive arrives; the
 * owner flushes and invalidates the page from its cache before
 * granting. An alternative three-state (MSI) protocol with read
 * sharing is implemented for the §6.3 ablation; it pays the Cortex-M3
 * cascaded-MMU read-tracking penalty on every weak-kernel fault.
 *
 * Asymmetric priorities (favouring the strong domain): the main kernel
 * services GetExclusive in a bottom half, deferring further when
 * loaded; the shadow kernel services requests before any other pending
 * interrupt.
 */

#ifndef K2_OS_DSM_H
#define K2_OS_DSM_H

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "sim/stats.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "soc/mmu.h"
#include "soc/soc.h"
#include "kern/kernel.h"
#include "os/messages.h"
#include "os/system.h"

namespace k2 {

namespace obs {
class MetricsRegistry;
}

namespace os {

class Dsm
{
  public:
    enum class Protocol { TwoState, ThreeState };

    /**
     * Per-fault cost constants, indexed by kernel (0 = main on the
     * strong domain, 1 = shadow on the weak domain). Defaults are
     * calibrated against Table 5 of the paper.
     */
    struct CostModel
    {
        /** Exception entry + fault decoding on the faulting kernel. */
        std::array<sim::Duration, 2> faultEntry{sim::usec(3),
                                                sim::usec(17)};
        /** Coherence-protocol bookkeeping on the faulting kernel. */
        std::array<sim::Duration, 2> protocolExec{sim::usec(2),
                                                  sim::usec(13)};
        /** Request servicing on the *owning* kernel, before the cache
         *  flush (which is charged separately from the domain spec). */
        std::array<sim::Duration, 2> serviceBase{0, sim::usec(8)};
        /** Fault exit + cache refill on the faulting kernel. */
        std::array<sim::Duration, 2> exitRefill{sim::usec(18),
                                                sim::usec(2)};
        /** Bottom-half delay before the main kernel services. */
        sim::Duration mainBottomHalf = sim::usec(4);
        /** Extra deferral when the main kernel is under load. */
        sim::Duration mainLoadedDefer = sim::usec(30);
    };

    /**
     * Fault-timeout retry (recovery layer). Off by default
     * (timeout == 0): the faulting kernel spins on the grant forever,
     * exactly the pre-fault-plane behaviour. When enabled, a faulter
     * whose grant does not arrive within the timeout re-sends its
     * GetExclusive with a fresh sequence number, backing off
     * exponentially up to maxTimeout. Attempts are unbounded: the
     * faulter must survive a crashed peer until the watchdog revives
     * it (or re-owns the page under it).
     */
    struct RetryPolicy
    {
        sim::Duration timeout = 0;
        sim::Duration maxTimeout = sim::msec(4);
    };

    /** Per-sender fault statistics (the Table 5 breakdown). */
    struct FaultStats
    {
        sim::Counter faults;
        sim::Accumulator localFaultUs;
        sim::Accumulator protocolUs;
        sim::Accumulator commUs;
        sim::Accumulator serviceUs;
        sim::Accumulator exitUs;
        sim::Accumulator totalUs;
    };

    /**
     * @param soc The platform.
     * @param kernels Main kernel (index 0, strong domain) and shadow
     *        kernel (index 1, weak domain).
     * @param num_pages Number of DSM-managed page keys available.
     */
    Dsm(soc::Soc &soc, std::array<kern::Kernel *, 2> kernels,
        std::uint64_t num_pages, Protocol protocol = Protocol::TwoState);
    Dsm(soc::Soc &soc, std::array<kern::Kernel *, 2> kernels,
        std::uint64_t num_pages, Protocol protocol, CostModel costs);

    Protocol protocol() const { return protocol_; }

    /** Enable/disable the fault-timeout retry (see RetryPolicy). */
    void setRetryPolicy(RetryPolicy p) { retry_ = p; }

    /** Grant-timeout retries sent so far. */
    std::uint64_t retries() const { return retries_.value(); }

    /**
     * Crash recovery: make @p owner the exclusive owner of every DSM
     * page, invalidating the (dead) peer's copies. Faults of @p owner
     * left waiting on a grant from the dead peer are completed
     * locally.
     *
     * @return Number of pages whose ownership state changed.
     */
    std::uint64_t reclaimAll(KernelIdx owner);

    /** Reserve a range of DSM page keys for a shared region. */
    kern::PageRange allocRegion(std::uint64_t pages);

    /**
     * Access a DSM page from @p kern, charging costs to @p core.
     *
     * Satisfied locally if this kernel's copy permits the access;
     * otherwise takes the full fault path (messages, remote flush,
     * spin). Callable from thread or interrupt context.
     */
    sim::Task<void> access(kern::Kernel &kern, soc::Core &core,
                           std::uint64_t page, Access rw);

    /**
     * Mail dispatch: handle a DSM message received by @p to_kernel.
     * Called from the mailbox ISR.
     */
    sim::Task<void> handleMail(KernelIdx to_kernel, Message msg,
                               soc::Core &core);

    /** @name Introspection for tests and benches. @{ */

    /** True if @p kernel's copy of @p page permits @p rw locally. */
    bool isLocallyValid(KernelIdx kernel, std::uint64_t page,
                        Access rw) const;

    const FaultStats &faultStats(KernelIdx sender) const
    {
        return stats_[sender];
    }

    FaultStats &mutableFaultStats(KernelIdx sender)
    {
        return stats_[sender];
    }

    /** Total coherence messages sent. */
    std::uint64_t messagesSent() const { return messages_.value(); }

    /** Pages demoted to 4 KB mapping grain so far (§6.3 footprint
     *  optimisation). */
    std::uint64_t pagesDemoted() const { return demotions_.value(); }

    /** Per-kernel MMU model (exposed for TLB statistics). */
    soc::Mmu &mmu(KernelIdx k) { return *mmus_[k]; }

    /** @} */

    /**
     * Register fault counters, the per-phase Table 5 accumulators and
     * MMU statistics under "<prefix>.<kernel-name>.*".
     */
    void registerMetrics(obs::MetricsRegistry &reg,
                         const std::string &prefix) const;

    /**
     * Capture/restore protocol state: per-page coherence state (pages
     * instantiated after the capture point are dropped), MMU/TLB
     * contents, fault statistics, and the message sequence counter.
     */
    void snapState(snap::Io &io);

  private:
    /** Per-kernel page state. */
    enum class PState : std::uint8_t { Invalid, Shared, Exclusive };

    struct PageInfo
    {
        std::array<PState, 2> state{PState::Exclusive, PState::Invalid};
        bool demoted = false;
        std::array<bool, 2> outstanding{false, false};
        std::array<bool, 2> upgrade{false, false}; //!< MSI upgrade race.
        std::array<bool, 2> raced{false, false};   //!< Lost an upgrade.
        /** Grant really arrived (vs a retry-timer pulse). */
        std::array<bool, 2> grantArrived{false, false};
        std::unique_ptr<sim::Event> grant;   //!< Pulsed on PutExclusive.
        std::unique_ptr<sim::Event> settled; //!< Pulsed when a local
                                             //!< fault fully completes.
        sim::Duration lastServiceTime = 0;   //!< For attribution only.
    };

    PageInfo &info(std::uint64_t page);
    KernelIdx idxOf(const kern::Kernel &k) const;

    bool satisfies(PState s, Access rw) const;

    /** The owner-side servicing of a Get request (possibly deferred). */
    sim::Task<void> serviceGet(KernelIdx owner, std::uint64_t page,
                               Access rw, std::uint32_t seq);

    sim::Task<void> demote(std::uint64_t page, soc::Core &core,
                           KernelIdx k);

    soc::Soc &soc_;
    std::array<kern::Kernel *, 2> kernels_;
    std::uint64_t numPages_;
    std::uint64_t nextRegionPage_ = 0;
    Protocol protocol_;
    CostModel costs_;
    std::array<std::unique_ptr<soc::Mmu>, 2> mmus_;
    std::unordered_map<std::uint64_t, std::unique_ptr<PageInfo>> pages_;
    std::array<FaultStats, 2> stats_;
    std::array<sim::TrackId, 2> tracks_{}; //!< Per-kernel span tracks.
    sim::Counter messages_;
    sim::Counter demotions_;
    sim::Counter retries_;
    RetryPolicy retry_{};
    std::uint32_t seq_ = 0;
};

} // namespace os
} // namespace k2

#endif // K2_OS_DSM_H
