#include "os/reliable_mail.h"

#include <algorithm>

#include "obs/metrics.h"
#include "sim/log.h"
#include "snap/io.h"

namespace k2 {
namespace os {

namespace {

/** Low 8 bits of the seq field carry the channel sequence number;
 *  bit 8 (the DSM read/write flag) is preserved. */
constexpr std::uint32_t kChanSeqMask = 0xFFu;
constexpr std::uint32_t kSeqWindow = 256;

std::uint32_t
stamp(std::uint32_t word, std::uint32_t seq)
{
    return (word & ~kChanSeqMask) | (seq & kChanSeqMask);
}

} // namespace

ReliableMail::ReliableMail(std::vector<kern::Kernel *> kernels,
                           Config cfg)
    : kernels_(std::move(kernels)), cfg_(cfg),
      channels_(kernels_.size() * kernels_.size())
{
    K2_ASSERT(kernels_.size() >= 2);
    K2_ASSERT(cfg_.maxAttempts >= 1);
    K2_ASSERT(cfg_.suspectAttempts >= 1 &&
              cfg_.suspectAttempts <= cfg_.maxAttempts);
}

bool
ReliableMail::tracked(std::uint32_t word)
{
    const Message msg = decodeMessage(word);
    switch (msg.type) {
    case MsgType::GetExclusive:
    case MsgType::PutExclusive:
    case MsgType::SuspendNw:
    case MsgType::AckSuspendNw:
    case MsgType::ResumeNw:
    case MsgType::BalloonDone:
        return true;
    case MsgType::Control:
        switch (ctlOp(msg.payload)) {
        case CtlOp::BalloonGive:
        case CtlOp::MapCreate:
        case CtlOp::MapDestroy:
            return true;
        case CtlOp::ReplicaReq:
            // The fan-out must reach every live replica; silence on a
            // replica channel is the watchdog's suspicion signal.
            return true;
        case CtlOp::MailAck:
        case CtlOp::Heartbeat:
        case CtlOp::HeartbeatAck:
            return false;
        case CtlOp::ReplicaRep:
            // Carries the vote nonce in the seq field (which the ARQ
            // stamp would destroy); a lost reply is an absent vote.
        case CtlOp::Election:
        case CtlOp::ElectionOk:
        case CtlOp::Coordinator:
            // Election traffic runs while peers are dead by design;
            // the protocol's own rounds provide the redundancy.
            return false;
        }
        return false;
    case MsgType::FreeRemote:
        // The seq field carries the free's order -- real data the ARQ
        // stamp would destroy.
        return false;
    }
    return false;
}

KernelIdx
ReliableMail::kernelOfDomain(soc::DomainId d) const
{
    for (KernelIdx k = 0; k < kernels_.size(); ++k) {
        if (kernels_[k]->domainId() == d)
            return k;
    }
    K2_PANIC("reliable mail: no kernel on domain %u", d);
}

void
ReliableMail::install()
{
    for (KernelIdx k = 0; k < kernels_.size(); ++k) {
        kern::Kernel *kern = kernels_[k];
        kern->setMailTransport(
            [this, k](soc::DomainId to, std::uint32_t word) {
                send(k, to, word);
            });
    }
}

void
ReliableMail::send(KernelIdx from, soc::DomainId to_domain,
                   std::uint32_t word)
{
    if (!tracked(word)) {
        kernels_[from]->sendMailRaw(to_domain, word);
        return;
    }
    const KernelIdx to = kernelOfDomain(to_domain);
    Channel &ch = channels_[chanIdx(from, to)];
    const std::uint32_t seq = ch.nextSeq;
    ch.nextSeq = (ch.nextSeq + 1) & kChanSeqMask;
    const std::uint32_t stamped = stamp(word, seq);

    Pending &p = ch.inflight[seq];
    p.word = stamped;
    p.attempt = 1;
    p.rto = cfg_.rto;
    p.sentAt = kernels_[from]->engine().now();
    trackedSent_.inc();
    kernels_[from]->sendMailRaw(to_domain, stamped);
    armTimer(from, to, seq);
}

void
ReliableMail::armTimer(KernelIdx from, KernelIdx to, std::uint32_t seq)
{
    Channel &ch = channels_[chanIdx(from, to)];
    Pending &p = ch.inflight.at(seq);
    p.timer = kernels_[from]->engine().after(
        p.rto, [this, from, to, seq]() { onTimeout(from, to, seq); });
}

void
ReliableMail::onTimeout(KernelIdx from, KernelIdx to, std::uint32_t seq)
{
    Channel &ch = channels_[chanIdx(from, to)];
    auto it = ch.inflight.find(seq);
    if (it == ch.inflight.end())
        return; // Acked between fire and dispatch.
    Pending &p = it->second;
    if (p.attempt >= cfg_.maxAttempts) {
        giveups_.inc();
        ch.inflight.erase(it);
        if (suspect_)
            suspect_(from, to);
        return;
    }
    if (p.attempt == cfg_.suspectAttempts && suspect_) {
        // The peer has been silent through several backoff rounds:
        // wake the watchdog, but keep retransmitting -- the mail must
        // still land if the peer is merely slow or gets restarted.
        suspect_(from, to);
    }
    ++p.attempt;
    p.rto = std::min(p.rto * 2, cfg_.maxRto);
    p.sentAt = kernels_[from]->engine().now();
    retransmits_.inc();
    kernels_[from]->engine().spawn(chargeAndResend(
        from, kernels_[to]->domainId(), p.word));
    armTimer(from, to, seq);
}

sim::Task<void>
ReliableMail::chargeAndResend(KernelIdx from, soc::DomainId to_domain,
                              std::uint32_t word)
{
    // Retransmission is kernel work: wake a core of the sending domain
    // and charge the mailbox-register write before re-posting.
    kern::Kernel &kern = *kernels_[from];
    soc::Core &core = kern.domain().core(0);
    if (!core.awake())
        co_await core.ensureAwake();
    core.pinActive();
    co_await core.execTime(kern.soc().costs().busAccess);
    core.unpinActive();
    kern.sendMailRaw(to_domain, word);
}

void
ReliableMail::handleAck(KernelIdx to, KernelIdx from_peer,
                        std::uint32_t seq)
{
    // Peer acked our (to -> from_peer) mail with sequence seq.
    Channel &ch = channels_[chanIdx(to, from_peer)];
    auto it = ch.inflight.find(seq);
    if (it == ch.inflight.end())
        return; // Duplicate ack (retransmitted mail acked twice).
    acks_.inc();
    ackRttUs_.sample(sim::toUsec(kernels_[to]->engine().now() -
                                 it->second.sentAt));
    kernels_[to]->engine().cancel(it->second.timer);
    ch.inflight.erase(it);
}

sim::Task<bool>
ReliableMail::onReceive(KernelIdx to, soc::Mail mail, soc::Core &core)
{
    const Message msg = decodeMessage(mail.word);
    if (msg.type == MsgType::Control &&
        ctlOp(msg.payload) == CtlOp::MailAck) {
        handleAck(to, kernelOfDomain(mail.from), ctlOperand(msg.payload));
        co_return false;
    }
    if (!tracked(mail.word))
        co_return true;

    const KernelIdx from = kernelOfDomain(mail.from);
    Channel &ch = channels_[chanIdx(from, to)];
    const std::uint32_t seq = mail.word & kChanSeqMask;

    // Always ack -- a duplicate usually means our previous ack was
    // lost. The ack write costs a bus access in the receiving ISR.
    co_await core.execTime(kernels_[to]->soc().costs().busAccess);
    kernels_[to]->sendMailRaw(
        mail.from, encodeMessage(MsgType::Control,
                                 encodeCtl(CtlOp::MailAck, seq), 0));

    if (ch.seen[seq]) {
        dupDropped_.inc();
        co_return false;
    }
    ch.seen[seq] = true;
    // Slide the window: clear the slot half a wrap ahead so an old
    // sequence number becomes acceptable again by the time the sender
    // can legitimately reuse it.
    ch.seen[(seq + kSeqWindow / 2) % kSeqWindow] = false;
    co_return true;
}

void
ReliableMail::registerMetrics(obs::MetricsRegistry &reg,
                              const std::string &prefix) const
{
    reg.addCounter(prefix + ".tracked_sent", trackedSent_);
    reg.addCounter(prefix + ".retransmits", retransmits_);
    reg.addCounter(prefix + ".acks", acks_);
    reg.addCounter(prefix + ".duplicates_dropped", dupDropped_);
    reg.addCounter(prefix + ".giveups", giveups_);
    reg.addHistogram(prefix + ".ack_rtt_us", ackRttUs_);
}

void
ReliableMail::snapState(snap::Io &io)
{
    io.check(channels_.size(), "ReliableMail::channels");
    for (Channel &ch : channels_) {
        // Unacked mail would imply a pending retransmit timer.
        K2_ASSERT(ch.inflight.empty());
        io.pod(ch.nextSeq);
        io.pod(ch.seen);
    }
    io.pod(trackedSent_);
    io.pod(retransmits_);
    io.pod(acks_);
    io.pod(dupDropped_);
    io.pod(giveups_);
    io.pod(ackRttUs_);
}

} // namespace os
} // namespace k2
