#include "os/replica.h"

#include <algorithm>

#include "obs/metrics.h"
#include "sim/log.h"
#include "snap/io.h"

namespace k2 {
namespace os {

ReplicaGroup::ReplicaGroup(soc::Soc &soc,
                           std::vector<kern::Kernel *> kernels,
                           NDsm &ndsm, IrqRouter &router, Config cfg)
    : soc_(soc), kernels_(std::move(kernels)), ndsm_(ndsm),
      router_(router), cfg_(cfg)
{
    K2_ASSERT(kernels_.size() >= 3); // coordinator + at least 2 replicas
    K2_ASSERT(numReplicas() <= 15);  // leader index fits 4 bits.
    K2_ASSERT(ndsm_.numKernels() == kernels_.size());
    alive_.assign(numReplicas(), 1);
    epoch_.assign(numReplicas(), 0);
    // Only exists with replicas >= 2, so this track never appears in
    // unreplicated traces.
    track_ = soc_.engine().addTrack("os.replica");
    stateRange_ = ndsm_.allocRegion(cfg_.statePages);
}

std::size_t
ReplicaGroup::liveReplicas() const
{
    std::size_t n = 0;
    for (std::uint8_t a : alive_)
        n += a ? 1 : 0;
    return n;
}

std::size_t
ReplicaGroup::servingReplica() const
{
    if (alive_[leader_])
        return leader_;
    for (std::size_t r = 0; r < numReplicas(); ++r) {
        if (alive_[r])
            return r;
    }
    return leader_; // No replica live; callers degrade on quorum loss.
}

std::uint16_t
ReplicaGroup::digest16(std::uint32_t nonce, std::uint32_t epoch)
{
    // Deterministic mix of the request identity and the replica's view
    // of group history; replicas in sync produce identical digests.
    const std::uint32_t h = (nonce * 0x9E37u) ^ (epoch * 0x85EBu) ^
                            (epoch >> 7);
    return static_cast<std::uint16_t>(h & 0xFFFFu);
}

std::size_t
ReplicaGroup::replicaOfDomain(soc::DomainId d) const
{
    for (std::size_t r = 0; r + 1 < kernels_.size(); ++r) {
        if (kernels_[r + 1]->domainId() == d)
            return r;
    }
    return SIZE_MAX;
}

sim::Task<void>
ReplicaGroup::chargeSends(kern::Kernel &kern, std::uint64_t n)
{
    // Protocol mail is kernel work: wake a core of the acting domain
    // and charge one mailbox-register write per send.
    soc::Core &core = kern.domain().core(0);
    if (!core.awake())
        co_await core.ensureAwake();
    core.pinActive();
    co_await core.execTime(soc_.costs().busAccess * n);
    core.unpinActive();
}

void
ReplicaGroup::noteRequest()
{
    soc_.engine().spawn(voteRound());
}

sim::Task<void>
ReplicaGroup::voteRound()
{
    requests_.inc();
    const std::uint32_t nonce = nonce_++ & kSeqMask;
    Round &rd = rounds_[nonce];
    rd.ballots.assign(numReplicas(), -1);
    rd.expected = digest16(nonce, term_);

    // Fan the request out to every live replica from the coordinator.
    const std::uint64_t live = liveReplicas();
    if (live > 0) {
        co_await chargeSends(coord(), live);
        for (std::size_t r = 0; r < numReplicas(); ++r) {
            if (!alive_[r])
                continue;
            coord().sendMail(
                replicaKernel(r).domainId(),
                encodeMessage(MsgType::Control,
                              encodeCtl(CtlOp::ReplicaReq, nonce), 0));
        }
    }
    co_await soc_.engine().sleep(cfg_.voteTimeout);
    closeVote(nonce);
}

void
ReplicaGroup::closeVote(std::uint32_t nonce)
{
    auto it = rounds_.find(nonce);
    if (it == rounds_.end())
        return; // Nonce reused before this round closed.
    Round &rd = it->second;

    // Majority digest among the ballots present; ties break toward the
    // smaller digest (deterministic).
    std::size_t present = 0;
    std::int32_t majority = -1;
    std::size_t majorityCount = 0;
    for (std::size_t r = 0; r < rd.ballots.size(); ++r) {
        const std::int32_t b = rd.ballots[r];
        if (b < 0)
            continue;
        ++present;
        std::size_t count = 0;
        for (std::int32_t other : rd.ballots)
            count += (other == b) ? 1 : 0;
        if (count > majorityCount ||
            (count == majorityCount && b < majority)) {
            majority = b;
            majorityCount = count;
        }
    }

    for (std::size_t r = 0; r < rd.ballots.size(); ++r) {
        const std::int32_t b = rd.ballots[r];
        if (b < 0) {
            if (alive_[r])
                votesAbsent_.inc();
            continue;
        }
        if (b != majority) {
            voteMismatches_.inc();
            soc_.engine().spanInstant(track_, "vote_mismatch");
            K2_TRACE(soc_.engine(), sim::TraceCat::Nw,
                     "replica %zu voted digest 0x%x against majority "
                     "0x%x (nonce %u)",
                     r, static_cast<unsigned>(b),
                     static_cast<unsigned>(majority), nonce);
        }
    }
    if (present < quorumSize())
        voteNoQuorum_.inc();
    rounds_.erase(it);
}

sim::Task<void>
ReplicaGroup::runElection()
{
    electing_ = true;
    elections_.inc();
    term_ = (term_ + 1) & 0xFFF;
    const sim::Time t0 = soc_.engine().now();
    K2_TRACE(soc_.engine(), sim::TraceCat::Nw,
             "replica election starts (term %u)", term_);

    // Bully challenges: every live replica challenges each live
    // replica with a lower index (higher priority). Indices descend so
    // the eventual winner answers last-in first.
    for (std::size_t c = numReplicas(); c-- > 0;) {
        if (!alive_[c])
            continue;
        std::uint64_t targets = 0;
        for (std::size_t l = 0; l < c; ++l)
            targets += alive_[l] ? 1 : 0;
        if (targets == 0)
            continue;
        co_await chargeSends(replicaKernel(c), targets);
        for (std::size_t l = 0; l < c; ++l) {
            if (!alive_[l])
                continue;
            replicaKernel(c).sendMail(
                replicaKernel(l).domainId(),
                encodeMessage(MsgType::Control,
                              encodeCtl(CtlOp::Election, term_), 0));
        }
    }
    co_await soc_.engine().sleep(cfg_.electionSettle);

    // The lowest live index received no ElectionOk: it leads.
    for (std::size_t r = 0; r < numReplicas(); ++r) {
        if (alive_[r]) {
            leader_ = r;
            break;
        }
    }

    // Coordinator broadcast from the new leader to every other live
    // replica and to the strong-domain coordinator.
    const std::uint32_t operand =
        ((static_cast<std::uint32_t>(leader_) & 0xFu) << 12) |
        (term_ & 0xFFFu);
    std::uint64_t sends = 1; // the strong-domain coordinator
    for (std::size_t r = 0; r < numReplicas(); ++r)
        sends += (alive_[r] && r != leader_) ? 1 : 0;
    co_await chargeSends(replicaKernel(leader_), sends);
    for (std::size_t r = 0; r < numReplicas(); ++r) {
        if (!alive_[r] || r == leader_)
            continue;
        replicaKernel(leader_).sendMail(
            replicaKernel(r).domainId(),
            encodeMessage(MsgType::Control,
                          encodeCtl(CtlOp::Coordinator, operand), 0));
    }
    replicaKernel(leader_).sendMail(
        coord().domainId(),
        encodeMessage(MsgType::Control,
                      encodeCtl(CtlOp::Coordinator, operand), 0));
    epoch_[leader_] = term_;

    electionUs_.sample(sim::toUsec(soc_.engine().now() - t0));
    soc_.engine().spanComplete(t0, track_, "election");
    K2_TRACE(soc_.engine(), sim::TraceCat::Nw,
             "replica %zu leads (term %u)", leader_, term_);
    electing_ = false;
}

sim::Task<void>
ReplicaGroup::resyncState(std::size_t leader)
{
    // The new leader pulls the replicated service state through the
    // N-DSM from wherever the surviving majority holds it -- real
    // GetExclusive/PutExclusive traffic charged on the leader's core.
    ++resyncing_;
    const sim::Time t0 = soc_.engine().now();
    kern::Kernel &lead = replicaKernel(leader);
    soc::Core &core = lead.domain().core(0);
    if (!core.awake())
        co_await core.ensureAwake();
    for (std::uint64_t i = 0; i < stateRange_.count; ++i) {
        co_await ndsm_.access(lead, core, stateRange_.first + i,
                              Access::Write);
    }
    resyncs_.inc();
    resyncPages_.inc(stateRange_.count);
    resyncUs_.sample(sim::toUsec(soc_.engine().now() - t0));
    soc_.engine().spanComplete(t0, track_, "resync");
    --resyncing_;
}

void
ReplicaGroup::updateQuorum()
{
    const bool held = quorumHeld();
    if (!held && !degraded_) {
        degraded_ = true;
        quorumLosses_.inc();
        soc_.engine().spanInstant(track_, "quorum_lost");
        K2_TRACE(soc_.engine(), sim::TraceCat::Nw,
                 "replica quorum lost (%zu/%zu live); degrading to the "
                 "strong domain",
                 liveReplicas(), numReplicas());
        router_.setDegraded(true);
    } else if (held && degraded_) {
        degraded_ = false;
        soc_.engine().spanInstant(track_, "quorum_restored");
        K2_TRACE(soc_.engine(), sim::TraceCat::Nw,
                 "replica quorum restored (%zu/%zu live)",
                 liveReplicas(), numReplicas());
        router_.setDegraded(false);
    }
}

sim::Task<void>
ReplicaGroup::onReplicaDown(std::size_t r)
{
    K2_ASSERT(r < numReplicas());
    alive_[r] = 0;
    epoch_[r] = kStaleEpoch;
    updateQuorum();

    const bool leaderDied = (r == leader_);
    if (leaderDied && liveReplicas() > 0)
        co_await runElection();

    // The (possibly new) leader inherits the dead replica's DSM pages;
    // with no live replica left, the strong coordinator takes them.
    const std::size_t heirKernel =
        (liveReplicas() > 0) ? leader_ + 1 : 0;
    if (heirKernel != r + 1) {
        const std::vector<std::uint64_t> moved =
            ndsm_.reclaimFrom(r + 1, heirKernel);
        co_await chargeSends(*kernels_[heirKernel],
                             1 + moved.size());
        K2_TRACE(soc_.engine(), sim::TraceCat::Nw,
                 "replica %zu's %zu DSM pages reclaimed to kernel '%s'",
                 r, moved.size(), kernels_[heirKernel]->name().c_str());
    }

    // State handoff runs detached: it can outlast the restart window
    // (a page stranded under a dead requester settles only after the
    // revive), and the watchdog must not wait on it.
    if (leaderDied && liveReplicas() > 0)
        soc_.engine().spawn(resyncState(leader_));
}

sim::Task<void>
ReplicaGroup::onReplicaRestarted(std::size_t r)
{
    K2_ASSERT(r < numReplicas());
    alive_[r] = 1;
    rejoins_.inc();

    if (!alive_[leader_]) {
        // The revived replica may be the best leader available.
        co_await runElection();
    } else {
        // Rejoin: the leader re-announces itself to the newcomer,
        // refreshing its epoch so its ballots match again.
        const std::uint32_t operand =
            ((static_cast<std::uint32_t>(leader_) & 0xFu) << 12) |
            (term_ & 0xFFFu);
        co_await chargeSends(replicaKernel(leader_), 1);
        replicaKernel(leader_).sendMail(
            replicaKernel(r).domainId(),
            encodeMessage(MsgType::Control,
                          encodeCtl(CtlOp::Coordinator, operand), 0));
    }
    updateQuorum();
}

sim::Task<void>
ReplicaGroup::handleMail(KernelIdx to, soc::Mail mail, soc::Core &core)
{
    const Message msg = decodeMessage(mail.word);
    K2_ASSERT(msg.type == MsgType::Control);
    const std::uint32_t operand = ctlOperand(msg.payload);
    switch (ctlOp(msg.payload)) {
      case CtlOp::ReplicaReq: {
        // Replica side: answer with a digest of the request and our
        // view of group history. The reply's seq field carries the
        // nonce (ReplicaRep is untracked, so the ARQ never stamps it).
        if (to == 0 || to > numReplicas()) {
            strayMail_.inc();
            co_return;
        }
        const std::size_t r = to - 1;
        co_await core.execTime(soc_.costs().busAccess);
        const std::uint16_t digest = digest16(operand, epoch_[r]);
        kernels_[to]->sendMail(
            coord().domainId(),
            encodeMessage(MsgType::Control,
                          encodeCtl(CtlOp::ReplicaRep, digest),
                          operand & kSeqMask));
        co_return;
      }
      case CtlOp::ReplicaRep: {
        // Coordinator side: record the ballot.
        const std::size_t r = replicaOfDomain(mail.from);
        if (to != 0 || r == SIZE_MAX) {
            strayMail_.inc();
            co_return;
        }
        co_await core.execTime(soc_.costs().busAccess);
        auto it = rounds_.find(msg.seq);
        if (it == rounds_.end()) {
            votesLate_.inc();
            co_return;
        }
        it->second.ballots[r] = static_cast<std::int32_t>(operand);
        votes_.inc();
        co_return;
      }
      case CtlOp::Election: {
        // A higher-index survivor challenges us; accepting tells it a
        // better candidate lives.
        if (to == 0 || to > numReplicas()) {
            strayMail_.inc();
            co_return;
        }
        co_await core.execTime(soc_.costs().busAccess);
        kernels_[to]->sendMail(
            mail.from,
            encodeMessage(MsgType::Control,
                          encodeCtl(CtlOp::ElectionOk, operand), 0));
        co_return;
      }
      case CtlOp::ElectionOk:
        co_await core.execTime(soc_.costs().busAccess);
        electionOks_.inc();
        co_return;
      case CtlOp::Coordinator:
        co_await core.execTime(soc_.costs().busAccess);
        coordinators_.inc();
        if (to >= 1 && to <= numReplicas())
            epoch_[to - 1] = operand & 0xFFFu;
        co_return;
      default:
        K2_PANIC("replica group: unexpected control op in payload 0x%x",
                 msg.payload);
    }
}

void
ReplicaGroup::registerMetrics(obs::MetricsRegistry &reg,
                              const std::string &prefix)
{
    reg.addCounter(prefix + ".requests", requests_);
    reg.addCounter(prefix + ".votes", votes_);
    reg.addCounter(prefix + ".votes_absent", votesAbsent_);
    reg.addCounter(prefix + ".votes_late", votesLate_);
    reg.addCounter(prefix + ".vote_mismatches", voteMismatches_);
    reg.addCounter(prefix + ".vote_no_quorum", voteNoQuorum_);
    reg.addCounter(prefix + ".elections", elections_);
    reg.addCounter(prefix + ".election_oks", electionOks_);
    reg.addCounter(prefix + ".coordinators", coordinators_);
    reg.addCounter(prefix + ".rejoins", rejoins_);
    reg.addCounter(prefix + ".resyncs", resyncs_);
    reg.addCounter(prefix + ".resync_pages", resyncPages_);
    reg.addCounter(prefix + ".quorum_losses", quorumLosses_);
    reg.addCounter(prefix + ".degraded_spawns", degradedSpawns_);
    reg.addCounter(prefix + ".stray_mail", strayMail_);
    reg.addHistogram(prefix + ".election_us", electionUs_);
    reg.addHistogram(prefix + ".resync_us", resyncUs_);
    const ReplicaGroup *self = this;
    reg.addGauge(prefix + ".leader", [self]() {
        return static_cast<double>(self->leader_);
    });
    reg.addGauge(prefix + ".live", [self]() {
        return static_cast<double>(self->liveReplicas());
    });
}

void
ReplicaGroup::snapState(snap::Io &io)
{
    // An election, open vote round or re-sync in flight would hold
    // pending engine work, contradicting quiescence.
    K2_ASSERT(!electing_);
    K2_ASSERT(rounds_.empty());
    K2_ASSERT(resyncing_ == 0);
    io.check(kernels_.size(), "ReplicaGroup::kernels");
    io.check(stateRange_.first, "ReplicaGroup::stateRange");
    io.pod(nonce_);
    io.pod(term_);
    io.pod(leader_);
    io.pod(degraded_);
    for (std::size_t r = 0; r < numReplicas(); ++r) {
        io.pod(alive_[r]);
        io.pod(epoch_[r]);
    }
    io.pod(requests_);
    io.pod(votes_);
    io.pod(votesAbsent_);
    io.pod(votesLate_);
    io.pod(voteMismatches_);
    io.pod(voteNoQuorum_);
    io.pod(elections_);
    io.pod(electionOks_);
    io.pod(coordinators_);
    io.pod(rejoins_);
    io.pod(resyncs_);
    io.pod(resyncPages_);
    io.pod(quorumLosses_);
    io.pod(degradedSpawns_);
    io.pod(strayMail_);
    io.pod(electionUs_);
    io.pod(resyncUs_);
}

} // namespace os
} // namespace k2
