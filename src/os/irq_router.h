/**
 * @file
 * K2 interrupt management for shared IO interrupts (paper §7).
 *
 * IO-peripheral interrupts are physically wired to every coherence
 * domain; K2 must make exactly one kernel handle each. Two rules:
 *
 *  1. For energy efficiency, a shared interrupt never wakes the strong
 *     domain from the inactive state -- the shadow kernel handles it.
 *  2. For performance, while the strong domain is awake the main
 *     kernel handles all shared interrupts.
 *
 * Implemented, as in the paper, by hooking power-state transitions:
 * when the strong domain goes inactive the router unmasks the shared
 * lines on the weak domain and masks them on the strong one, and
 * reverses this when the strong domain wakes up.
 */

#ifndef K2_OS_IRQ_ROUTER_H
#define K2_OS_IRQ_ROUTER_H

#include <vector>

#include "sim/stats.h"
#include "soc/soc.h"
#include "kern/kernel.h"

namespace k2 {
namespace os {

class IrqRouter
{
  public:
    IrqRouter(soc::Soc &soc, kern::Kernel &main, kern::Kernel &shadow);

    /**
     * Put @p line under K2 management. Both kernels must already have
     * registered handlers for it.
     */
    void manageLine(soc::IrqLine line);

    /** Hook the strong domain's power-state transitions. Call once. */
    void install();

    /** True if shared interrupts are currently routed to the shadow
     *  kernel. */
    bool routedToWeak() const { return routedToWeak_; }

    /** Times routing flipped strong->weak or back. */
    std::uint64_t reroutes() const { return reroutes_.value(); }

    /**
     * Degraded mode (shadow kernel down): pin all shared interrupts to
     * the strong domain regardless of its power state -- energy rule 1
     * is suspended while there is no shadow to serve them. Turning
     * degradation off resumes power-state-driven routing.
     */
    void setDegraded(bool degraded);
    bool degraded() const { return degraded_; }

    /**
     * Force the per-line masks that realise the current routing.
     * Needed after a shadow-kernel restart: replaying its IRQ
     * registrations unmasked every line on the rebuilt controller, and
     * applyRouting() short-circuits when the routing target is
     * unchanged.
     */
    void reapplyMasks();

    /** Capture/restore the routing state (managed lines are
     *  structural: manageLine runs at service-setup time only). */
    void snapState(snap::Io &io);

  private:
    void applyRouting(bool to_weak);
    void onStrongStateChange();

    soc::Soc &soc_;
    kern::Kernel &main_;
    kern::Kernel &shadow_;
    std::vector<soc::IrqLine> lines_;
    bool routedToWeak_ = false;
    bool installed_ = false;
    bool degraded_ = false;
    sim::Counter reroutes_;
};

} // namespace os
} // namespace k2

#endif // K2_OS_IRQ_ROUTER_H
