#include "os/balloon.h"

#include "sim/log.h"

namespace k2 {
namespace os {

BalloonDriver::BalloonDriver(kern::Kernel &kernel)
    : BalloonDriver(kernel, CostModel{})
{}

BalloonDriver::BalloonDriver(kern::Kernel &kernel, CostModel costs)
    : kernel_(kernel), costs_(costs)
{}

sim::Task<void>
BalloonDriver::deflate(kern::Thread &t, kern::PageRange block)
{
    K2_ASSERT(block.count == kBlockPages);
    const sim::Time start = kernel_.engine().now();

    const std::uint64_t work = kernel_.pageAllocator().addFreeRange(block) +
                               costs_.workPerPageDeflate * block.count;
    co_await t.execTime(costs_.platformPerPageDeflate * block.count);
    co_await kernel_.chargeKernelWork(t, work);

    deflates.inc();
    deflateUs.sample(sim::toUsec(kernel_.engine().now() - start));
}

sim::Task<bool>
BalloonDriver::inflate(kern::Thread &t, kern::PageRange block)
{
    K2_ASSERT(block.count == kBlockPages);
    const sim::Time start = kernel_.engine().now();

    auto res = kernel_.pageAllocator().reclaimRange(block);
    if (!res.ok) {
        failedInflates.inc();
        co_return false;
    }

    co_await t.execTime(costs_.platformPerPageInflate * block.count +
                        costs_.perMigratedPage * res.migrated);
    co_await kernel_.chargeKernelWork(
        t, res.work + costs_.workPerPageInflate * block.count);

    inflates.inc();
    migratedPages.sample(static_cast<double>(res.migrated));
    inflateUs.sample(sim::toUsec(kernel_.engine().now() - start));
    co_return true;
}

} // namespace os
} // namespace k2
