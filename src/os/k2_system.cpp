#include "os/k2_system.h"

#include <algorithm>

#include "fault/injector.h"
#include "obs/metrics.h"
#include "sim/log.h"
#include "snap/io.h"

namespace k2 {
namespace os {

namespace {

/** SharedRegion backed by the K2 DSM. */
class DsmSharedRegion : public SharedRegion
{
  public:
    DsmSharedRegion(std::string name, Dsm &dsm, kern::PageRange keys)
        : SharedRegion(std::move(name), keys.count), dsm_(dsm),
          keys_(keys)
    {}

    sim::Task<void>
    touch(kern::Kernel &kern, soc::Core &core, std::uint64_t page_idx,
          Access rw) override
    {
        K2_ASSERT(page_idx < keys_.count);
        co_await dsm_.access(kern, core, keys_.first + page_idx, rw);
    }

  private:
    Dsm &dsm_;
    kern::PageRange keys_;
};

/** SharedRegion backed by the N-kernel DSM (replicated mode). */
class NDsmSharedRegion : public SharedRegion
{
  public:
    NDsmSharedRegion(std::string name, NDsm &ndsm, kern::PageRange keys)
        : SharedRegion(std::move(name), keys.count), ndsm_(ndsm),
          keys_(keys)
    {}

    sim::Task<void>
    touch(kern::Kernel &kern, soc::Core &core, std::uint64_t page_idx,
          Access rw) override
    {
        K2_ASSERT(page_idx < keys_.count);
        co_await ndsm_.access(kern, core, keys_.first + page_idx, rw);
    }

  private:
    NDsm &ndsm_;
    kern::PageRange keys_;
};

} // namespace

K2System::K2System(K2Config cfg)
    : cfg_(std::move(cfg))
{
    const std::size_t replicas = std::max<std::size_t>(cfg_.replicas, 1);
    if (replicas >= 2) {
        // Clone the weak domain for the extra shadow replicas; their
        // domain ids follow the configured domains.
        K2_ASSERT(replicas <= 15);
        K2_ASSERT(cfg_.soc.domains.size() > soc::kWeakDomain);
        const soc::DomainSpec weak = cfg_.soc.domains[soc::kWeakDomain];
        for (std::size_t i = 2; i <= replicas; ++i) {
            soc::DomainSpec d = weak;
            d.name = weak.name + std::to_string(i);
            cfg_.soc.domains.push_back(d);
        }
    }
    const soc::DomainId firstExtraDomain = static_cast<soc::DomainId>(
        cfg_.soc.domains.size() - (replicas - 1));

    soc_ = std::make_unique<soc::Soc>(engine_, cfg_.soc);

    // The fault plane and the recovery protocols only exist when armed;
    // a zero-fault run takes exactly the pre-fault code paths. A
    // replicated system is always armed: replication *is* a recovery
    // protocol.
    const bool armed = !cfg_.faults.empty() || cfg_.recovery.force ||
                       replicas >= 2;
    for (const fault::FaultSpec &spec : cfg_.faults.specs()) {
        if (spec.kind == fault::FaultKind::DomainCrash &&
            spec.domain == soc::kStrongDomain) {
            K2_FATAL("K2 cannot recover a crashed strong domain; "
                     "domain.crash must target a weak domain");
        }
    }
    if (armed) {
        injector_ =
            std::make_unique<fault::FaultInjector>(engine_, cfg_.faults);
        soc_->attachFaultInjector(injector_.get());
    }

    std::vector<std::pair<std::string, std::uint64_t>> locals;
    locals.emplace_back("shadow", cfg_.shadowLocalPages);
    for (std::size_t i = 2; i <= replicas; ++i) {
        locals.emplace_back("shadow" + std::to_string(i),
                            cfg_.shadowLocalPages);
    }
    locals.emplace_back("main", cfg_.mainLocalPages);
    layout_ = std::make_unique<kern::AddressSpaceLayout>(
        soc_->pageBytes(), soc_->numPages(), std::move(locals));

    main_ = std::make_unique<kern::Kernel>(*soc_, soc::kStrongDomain,
                                           "main");
    shadow_ = std::make_unique<kern::Kernel>(*soc_, soc::kWeakDomain,
                                             "shadow");
    main_->boot();
    shadow_->boot();
    for (std::size_t i = 2; i <= replicas; ++i) {
        extras_.push_back(std::make_unique<kern::Kernel>(
            *soc_, firstExtraDomain + static_cast<soc::DomainId>(i - 2),
            "shadow" + std::to_string(i)));
        extras_.back()->boot();
        // Replica kernels draw pages from their own local region;
        // the global region stays under the two-kernel meta manager.
        extras_.back()->pageAllocator().addFreeRange(
            layout_->localOf(extras_.back()->name()).pages);
    }

    std::vector<kern::Kernel *> allKernels{main_.get(), shadow_.get()};
    for (auto &ex : extras_)
        allKernels.push_back(ex.get());

    if (armed) {
        reliable_ = std::make_unique<ReliableMail>(allKernels,
                                                   cfg_.recovery.mail);
        reliable_->install();
    }

    if (replicas >= 2) {
        // Shared regions span all kernels through the N-kernel DSM;
        // grant retries are always on (a replica owner can crash).
        ndsmR_ = std::make_unique<NDsm>(*soc_, allKernels, cfg_.dsmPages,
                                        cfg_.dsmProtocol);
        ndsmR_->setRetryPolicy({cfg_.recovery.dsmRetryTimeout,
                                cfg_.recovery.dsmRetryMax});
    } else {
        dsm_ = std::make_unique<Dsm>(
            *soc_,
            std::array<kern::Kernel *, 2>{main_.get(), shadow_.get()},
            cfg_.dsmPages, cfg_.dsmProtocol, cfg_.dsmCosts);
        if (armed) {
            dsm_->setRetryPolicy({cfg_.recovery.dsmRetryTimeout,
                                  cfg_.recovery.dsmRetryMax});
        }
    }

    meta_ = std::make_unique<MetaLevelManager>(
        *soc_, std::array<kern::Kernel *, 2>{main_.get(), shadow_.get()},
        layout_->global().pages, cfg_.meta);
    meta_->bootstrapBlocks(0, cfg_.initialMainBlocks);
    meta_->bootstrapBlocks(1, cfg_.initialShadowBlocks);
    meta_->start();

    nightWatch_ = std::make_unique<NightWatch>(*soc_, *main_, *shadow_);
    nightWatch_->install();

    irqRouter_ = std::make_unique<IrqRouter>(*soc_, *main_, *shadow_);
    irqRouter_->install();

    if (armed) {
        std::vector<kern::Kernel *> shadows{shadow_.get()};
        for (auto &ex : extras_)
            shadows.push_back(ex.get());
        watchdog_ = std::make_unique<Watchdog>(
            *soc_, *main_, std::move(shadows), dsm_.get(), *irqRouter_,
            injector_.get(), cfg_.recovery.watchdog);
        // Repeated retransmission without an ack on any channel is the
        // watchdog's crash-suspicion signal. Shadow->main silence also
        // counts: in the simulation a crashed domain's threads keep
        // executing (the crash is fail-silent at the communication
        // boundary), and their failing sends stand in for the keepalive
        // a real main kernel would run -- the probe loop then verifies
        // and charges the actual detection work. The weak end of the
        // silent channel names the suspected replica.
        reliable_->setSuspectHook([this](KernelIdx from, KernelIdx to) {
            const KernelIdx weak = (to != 0) ? to : from;
            if (weak != 0)
                watchdog_->suspect(weak - 1);
        });
    }

    if (replicas >= 2) {
        group_ = std::make_unique<ReplicaGroup>(
            *soc_, allKernels, *ndsmR_, *irqRouter_,
            cfg_.recovery.replica);
        watchdog_->setReplicaGroup(group_.get());
    }

    crossIsa_ = std::make_unique<CrossIsaDispatcher>(*shadow_);
    for (auto &ex : extras_)
        crossIsa_->addShadow(*ex);

    ioMapper_ = std::make_unique<IoMapper>(
        *soc_, std::array<kern::Kernel *, 2>{main_.get(), shadow_.get()},
        *layout_);

    services_ = kern::defaultK2Registry();

    main_->setMailHandler(
        [this](soc::Mail mail, soc::Core &core) {
            return dispatchMail(0, mail, core);
        });
    shadow_->setMailHandler(
        [this](soc::Mail mail, soc::Core &core) {
            return dispatchMail(1, mail, core);
        });
    for (std::size_t i = 0; i < extras_.size(); ++i) {
        extras_[i]->setMailHandler(
            [this, i](soc::Mail mail, soc::Core &core) {
                return dispatchMail(2 + i, mail, core);
            });
    }
}

K2System::~K2System() = default;

kern::Kernel &
K2System::kernelAt(soc::DomainId domain)
{
    if (domain == soc::kStrongDomain)
        return *main_;
    if (domain == soc::kWeakDomain)
        return *shadow_;
    for (auto &ex : extras_) {
        if (ex->domainId() == domain)
            return *ex;
    }
    K2_PANIC("no kernel for domain %u", domain);
}

kern::Kernel &
K2System::kernelByIdx(KernelIdx k)
{
    if (k == 0)
        return *main_;
    if (k == 1)
        return *shadow_;
    return *extras_.at(k - 2);
}

std::vector<kern::Kernel *>
K2System::kernels()
{
    std::vector<kern::Kernel *> all{main_.get(), shadow_.get()};
    for (auto &ex : extras_)
        all.push_back(ex.get());
    return all;
}

std::unique_ptr<SharedRegion>
K2System::createSharedRegion(std::string name, std::uint64_t pages)
{
    if (ndsmR_) {
        return std::make_unique<NDsmSharedRegion>(
            std::move(name), *ndsmR_, ndsmR_->allocRegion(pages));
    }
    return std::make_unique<DsmSharedRegion>(std::move(name), *dsm_,
                                             dsm_->allocRegion(pages));
}

kern::Thread *
K2System::spawnNormal(kern::Process &proc, std::string name,
                      kern::Thread::Body body)
{
    return main_->spawnThread(&proc, std::move(name),
                              kern::ThreadKind::Normal, std::move(body));
}

kern::Thread *
K2System::spawnNightWatch(kern::Process &proc, std::string name,
                          kern::Thread::Body body)
{
    if (group_) {
        // Replicated shadow services: every request is fanned out to
        // the live replicas for a majority vote, and served on the
        // current leader. Only quorum loss degrades to the strong
        // domain.
        group_->noteRequest();
        if (!group_->quorumHeld()) {
            group_->noteDegradedSpawn();
            watchdog_->noteDegradedSpawn();
            return spawnNormal(proc, std::move(name), std::move(body));
        }
        const std::size_t leader = group_->servingReplica();
        if (leader == 0)
            return nightWatch_->spawn(proc, std::move(name),
                                      std::move(body));
        // Extension-domain leader: the NightWatch gating pair protocol
        // stays between main and the first shadow; the replica serves
        // the request as a plain thread at weak-domain energy cost.
        return group_->replicaKernel(leader).spawnThread(
            &proc, std::move(name), kern::ThreadKind::Normal,
            std::move(body));
    }
    if (watchdog_ && watchdog_->shadowDown()) {
        // Graceful degradation: with the shadow kernel down, serve the
        // spawn on the main kernel at main-domain energy cost.
        watchdog_->noteDegradedSpawn();
        return spawnNormal(proc, std::move(name), std::move(body));
    }
    return nightWatch_->spawn(proc, std::move(name), std::move(body));
}

sim::Task<kern::PageRange>
K2System::allocPages(kern::Thread &t, unsigned order,
                     kern::Migrate migrate)
{
    // Allocations are always served by the local instance (§6.2).
    co_return co_await t.kernel().allocPages(t, order, migrate);
}

sim::Task<void>
K2System::freePages(kern::Thread &t, kern::PageRange range)
{
    kern::Kernel &local = t.kernel();
    if (local.pageAllocator().isAllocated(range.first)) {
        co_await local.freePages(t, range);
        co_return;
    }
    // The thin wrapper (§6.2): the pages belong to another kernel's
    // allocator; redirect the free asynchronously via a hardware
    // message. The address-range check is a few instructions.
    kern::Kernel *owner = nullptr;
    for (kern::Kernel *k : kernels()) {
        if (k != &local && k->pageAllocator().isAllocated(range.first)) {
            owner = k;
            break;
        }
    }
    K2_ASSERT(owner != nullptr);
    kern::Kernel &peer = *owner;
    co_await t.exec(20);
    remoteFrees_.inc();
    unsigned order = 0;
    while ((1ull << order) < range.count)
        ++order;
    local.sendMail(peer.domainId(),
                   encodeMessage(MsgType::FreeRemote,
                                 static_cast<std::uint32_t>(range.first) &
                                     kPayloadMask,
                                 order));
}

void
K2System::dumpState(std::ostream &os)
{
    os << "==== K2 state at " << sim::formatTime(engine_.now())
       << " ====\n";
    for (kern::Kernel *k : kernels()) {
        auto &dom = k->domain();
        os << "kernel '" << k->name() << "' on domain '" << dom.name()
           << "':\n";
        for (std::size_t i = 0; i < dom.numCores(); ++i) {
            auto &c = dom.core(i);
            os << "  core " << c.id() << ": "
               << soc::powerStateName(c.state()) << ", "
               << c.hz() / 1000000 << " MHz, active "
               << sim::formatTime(c.activeTime()) << ", wakeups "
               << c.wakeups() << "\n";
        }
        os << "  runqueue depth " << k->scheduler().runqueueDepth()
           << ", context switches "
           << k->scheduler().contextSwitches() << ", free pages "
           << k->pageAllocator().freePages() << "\n";
    }
    os << "memory blocks: main "
       << meta_->blocksOwnedBy(MetaLevelManager::BlockOwner::Main)
       << ", shadow "
       << meta_->blocksOwnedBy(MetaLevelManager::BlockOwner::Shadow)
       << ", K2 "
       << meta_->blocksOwnedBy(MetaLevelManager::BlockOwner::Meta)
       << " of " << meta_->numBlocks() << "\n";
    if (dsm_) {
        os << "dsm: " << dsm_->faultStats(0).faults.value()
           << " main faults, " << dsm_->faultStats(1).faults.value()
           << " shadow faults, " << dsm_->messagesSent() << " messages, "
           << dsm_->pagesDemoted() << " pages demoted\n";
    } else {
        os << "ndsm: ";
        for (std::size_t k = 0; k < ndsmR_->numKernels(); ++k)
            os << ndsmR_->faults(k) << (k + 1 < ndsmR_->numKernels()
                                            ? " / " : " faults, ");
        os << ndsmR_->messagesSent() << " messages\n";
        os << "replicas: " << group_->liveReplicas() << "/"
           << group_->numReplicas() << " live, leader "
           << group_->leaderReplica() << ", term " << group_->term()
           << ", " << group_->elections() << " elections\n";
    }
    os << "nightwatch: " << nightWatch_->suspendsSent.value()
       << " suspends, " << nightWatch_->resumesSent.value()
       << " resumes\n";
    os << "irq routing: "
       << (irqRouter_->routedToWeak() ? "weak" : "strong") << " ("
       << irqRouter_->reroutes() << " reroutes)\n";
    for (soc::RailId r = 0; r < soc_->meter().numRails(); ++r) {
        os << "rail '" << soc_->meter().railName(r) << "': "
           << soc_->meter().energyUj(r) / 1000.0 << " mJ\n";
    }
}

sim::Task<void>
K2System::chargeCrossIsa(kern::Kernel &kern, soc::Core &core,
                         std::uint64_t n)
{
    co_await crossIsa_->charge(kern, core, n);
}

void
K2System::registerMetrics(obs::MetricsRegistry &reg)
{
    SystemImage::registerMetrics(reg);

    if (dsm_)
        dsm_->registerMetrics(reg, "os.dsm");
    if (ndsmR_)
        ndsmR_->registerMetrics(reg, "os.ndsm");

    reg.addCounter("os.nightwatch.suspends", nightWatch_->suspendsSent);
    reg.addCounter("os.nightwatch.resumes", nightWatch_->resumesSent);
    reg.addCounter("os.nightwatch.acks", nightWatch_->acksReceived);
    reg.addAccumulator("os.nightwatch.ack_wait_us",
                       nightWatch_->ackWaitUs);

    reg.addCounter("os.meta.pressure_events", meta_->pressureEvents);
    reg.addCounter("os.meta.peer_requests", meta_->peerRequests);
    static const char *const kKernelNames[2] = {"main", "shadow"};
    for (KernelIdx k = 0; k < 2; ++k) {
        const std::string bp =
            std::string("os.balloon.") + kKernelNames[k];
        BalloonDriver &b = meta_->balloon(k);
        reg.addCounter(bp + ".deflates", b.deflates);
        reg.addCounter(bp + ".inflates", b.inflates);
        reg.addCounter(bp + ".failed_inflates", b.failedInflates);
    }

    const IrqRouter &router = *irqRouter_;
    reg.addGauge("os.irq_router.reroutes", [&router]() {
        return static_cast<double>(router.reroutes());
    });
    const CrossIsaDispatcher &xisa = *crossIsa_;
    reg.addGauge("os.cross_isa.dispatches", [&xisa]() {
        return static_cast<double>(xisa.dispatches());
    });
    reg.addCounter("os.remote_frees", remoteFrees_);

    // Only when armed, so zero-fault runs keep the exact metric key
    // set they had before the fault plane existed.
    if (injector_)
        injector_->registerMetrics(reg, "fault.injected");
    if (reliable_)
        reliable_->registerMetrics(reg, "os.recovery.mail");
    if (watchdog_)
        watchdog_->registerMetrics(reg, "os.recovery");
    if (group_)
        group_->registerMetrics(reg, "os.replica");
}

void
K2System::snapState(snap::Io &io)
{
    // Order matters: the engine first (quiescence assertions, clock,
    // tracer), then hardware, then the kernels (whose restore prunes
    // post-capture threads before anything looks threads up by tid),
    // then the process table, then the OS services.
    engine_.snapState(io);
    soc_->snapState(io);
    main_->snapState(io);
    shadow_->snapState(io);
    io.check(extras_.size(), "K2System::extras");
    for (auto &ex : extras_)
        ex->snapState(io);
    SystemImage::snapState(io);
    io.check(dsm_ ? 1 : 0, "K2System::dsm");
    if (dsm_)
        dsm_->snapState(io);
    io.check(ndsmR_ ? 1 : 0, "K2System::ndsm");
    if (ndsmR_)
        ndsmR_->snapState(io);
    meta_->snapState(io);
    nightWatch_->snapState(io);
    irqRouter_->snapState(io);
    crossIsa_->snapState(io);
    ioMapper_->snapState(io);
    io.pod(remoteFrees_);

    // The fault plane and recovery protocols exist iff armed, which is
    // a property of the config -- structural.
    io.check(injector_ ? 1 : 0, "K2System::injector");
    if (injector_)
        injector_->snapState(io);
    io.check(reliable_ ? 1 : 0, "K2System::reliable");
    if (reliable_)
        reliable_->snapState(io);
    io.check(watchdog_ ? 1 : 0, "K2System::watchdog");
    if (watchdog_)
        watchdog_->snapState(io);
    io.check(group_ ? 1 : 0, "K2System::replica");
    if (group_)
        group_->snapState(io);
}

sim::Task<void>
K2System::dispatchMail(KernelIdx to, soc::Mail mail, soc::Core &core)
{
    if (reliable_ && !co_await reliable_->onReceive(to, mail, core))
        co_return; // Consumed ack or suppressed duplicate.
    const Message msg = decodeMessage(mail.word);
    switch (msg.type) {
      case MsgType::GetExclusive:
      case MsgType::PutExclusive:
        if (ndsmR_)
            co_await ndsmR_->handleMail(to, mail, core);
        else
            co_await dsm_->handleMail(to, msg, core);
        co_return;
      case MsgType::SuspendNw:
      case MsgType::AckSuspendNw:
      case MsgType::ResumeNw:
        co_await nightWatch_->handleMail(to, msg, core);
        co_return;
      case MsgType::Control:
        switch (ctlOp(msg.payload)) {
          case CtlOp::BalloonGive:
            co_await meta_->handleMail(to, msg, core);
            co_return;
          case CtlOp::MapCreate:
          case CtlOp::MapDestroy:
            co_await ioMapper_->handleMail(to, msg, core);
            co_return;
          case CtlOp::MailAck:
            co_return; // Handled by the reliable-mail shim above.
          case CtlOp::Heartbeat:
          case CtlOp::HeartbeatAck:
            K2_ASSERT(watchdog_);
            co_await watchdog_->handleMail(to, msg, core);
            co_return;
          case CtlOp::ReplicaReq:
          case CtlOp::ReplicaRep:
          case CtlOp::Election:
          case CtlOp::ElectionOk:
          case CtlOp::Coordinator:
            K2_ASSERT(group_);
            co_await group_->handleMail(to, mail, core);
            co_return;
        }
        K2_PANIC("unknown control op in mail 0x%x", mail.word);
      case MsgType::BalloonDone:
        co_await meta_->handleMail(to, msg, core);
        co_return;
      case MsgType::FreeRemote: {
        kern::Kernel &kern = kernelByIdx(to);
        const std::uint64_t work =
            kern.pageAllocator().free(msg.payload);
        const double factor = core.spec().kernelCostFactor;
        co_await core.exec(static_cast<std::uint64_t>(
            static_cast<double>(work) * factor + 0.5));
        co_return;
      }
    }
    K2_PANIC("unknown message type in mail 0x%x", mail.word);
}

} // namespace os
} // namespace k2
