#include "os/k2_system.h"

#include "fault/injector.h"
#include "obs/metrics.h"
#include "sim/log.h"
#include "snap/io.h"

namespace k2 {
namespace os {

namespace {

/** SharedRegion backed by the K2 DSM. */
class DsmSharedRegion : public SharedRegion
{
  public:
    DsmSharedRegion(std::string name, Dsm &dsm, kern::PageRange keys)
        : SharedRegion(std::move(name), keys.count), dsm_(dsm),
          keys_(keys)
    {}

    sim::Task<void>
    touch(kern::Kernel &kern, soc::Core &core, std::uint64_t page_idx,
          Access rw) override
    {
        K2_ASSERT(page_idx < keys_.count);
        co_await dsm_.access(kern, core, keys_.first + page_idx, rw);
    }

  private:
    Dsm &dsm_;
    kern::PageRange keys_;
};

} // namespace

K2System::K2System(K2Config cfg)
    : cfg_(std::move(cfg))
{
    soc_ = std::make_unique<soc::Soc>(engine_, cfg_.soc);

    // The fault plane and the recovery protocols only exist when armed;
    // a zero-fault run takes exactly the pre-fault code paths.
    const bool armed = !cfg_.faults.empty() || cfg_.recovery.force;
    for (const fault::FaultSpec &spec : cfg_.faults.specs()) {
        if (spec.kind == fault::FaultKind::DomainCrash &&
            spec.domain == soc::kStrongDomain) {
            K2_FATAL("K2 cannot recover a crashed strong domain; "
                     "domain.crash must target a weak domain");
        }
    }
    if (armed) {
        injector_ =
            std::make_unique<fault::FaultInjector>(engine_, cfg_.faults);
        soc_->attachFaultInjector(injector_.get());
    }

    layout_ = std::make_unique<kern::AddressSpaceLayout>(
        soc_->pageBytes(), soc_->numPages(),
        std::vector<std::pair<std::string, std::uint64_t>>{
            {"shadow", cfg_.shadowLocalPages},
            {"main", cfg_.mainLocalPages}});

    main_ = std::make_unique<kern::Kernel>(*soc_, soc::kStrongDomain,
                                           "main");
    shadow_ = std::make_unique<kern::Kernel>(*soc_, soc::kWeakDomain,
                                             "shadow");
    main_->boot();
    shadow_->boot();

    if (armed) {
        reliable_ = std::make_unique<ReliableMail>(
            std::vector<kern::Kernel *>{main_.get(), shadow_.get()},
            cfg_.recovery.mail);
        reliable_->install();
    }

    dsm_ = std::make_unique<Dsm>(
        *soc_, std::array<kern::Kernel *, 2>{main_.get(), shadow_.get()},
        cfg_.dsmPages, cfg_.dsmProtocol, cfg_.dsmCosts);
    if (armed) {
        dsm_->setRetryPolicy({cfg_.recovery.dsmRetryTimeout,
                              cfg_.recovery.dsmRetryMax});
    }

    meta_ = std::make_unique<MetaLevelManager>(
        *soc_, std::array<kern::Kernel *, 2>{main_.get(), shadow_.get()},
        layout_->global().pages, cfg_.meta);
    meta_->bootstrapBlocks(0, cfg_.initialMainBlocks);
    meta_->bootstrapBlocks(1, cfg_.initialShadowBlocks);
    meta_->start();

    nightWatch_ = std::make_unique<NightWatch>(*soc_, *main_, *shadow_);
    nightWatch_->install();

    irqRouter_ = std::make_unique<IrqRouter>(*soc_, *main_, *shadow_);
    irqRouter_->install();

    if (armed) {
        watchdog_ = std::make_unique<Watchdog>(
            *soc_, *main_, *shadow_, *dsm_, *irqRouter_, injector_.get(),
            cfg_.recovery.watchdog);
        // Repeated retransmission without an ack on any channel is the
        // watchdog's crash-suspicion signal. Shadow->main silence also
        // counts: in the simulation a crashed domain's threads keep
        // executing (the crash is fail-silent at the communication
        // boundary), and their failing sends stand in for the keepalive
        // a real main kernel would run -- the probe loop then verifies
        // and charges the actual detection work.
        reliable_->setSuspectHook([this](KernelIdx, KernelIdx) {
            watchdog_->suspect();
        });
    }

    crossIsa_ = std::make_unique<CrossIsaDispatcher>(*shadow_);

    ioMapper_ = std::make_unique<IoMapper>(
        *soc_, std::array<kern::Kernel *, 2>{main_.get(), shadow_.get()},
        *layout_);

    services_ = kern::defaultK2Registry();

    main_->setMailHandler(
        [this](soc::Mail mail, soc::Core &core) {
            return dispatchMail(0, mail, core);
        });
    shadow_->setMailHandler(
        [this](soc::Mail mail, soc::Core &core) {
            return dispatchMail(1, mail, core);
        });
}

K2System::~K2System() = default;

kern::Kernel &
K2System::kernelAt(soc::DomainId domain)
{
    if (domain == soc::kStrongDomain)
        return *main_;
    if (domain == soc::kWeakDomain)
        return *shadow_;
    K2_PANIC("no kernel for domain %u", domain);
}

std::vector<kern::Kernel *>
K2System::kernels()
{
    return {main_.get(), shadow_.get()};
}

std::unique_ptr<SharedRegion>
K2System::createSharedRegion(std::string name, std::uint64_t pages)
{
    return std::make_unique<DsmSharedRegion>(std::move(name), *dsm_,
                                             dsm_->allocRegion(pages));
}

kern::Thread *
K2System::spawnNormal(kern::Process &proc, std::string name,
                      kern::Thread::Body body)
{
    return main_->spawnThread(&proc, std::move(name),
                              kern::ThreadKind::Normal, std::move(body));
}

kern::Thread *
K2System::spawnNightWatch(kern::Process &proc, std::string name,
                          kern::Thread::Body body)
{
    if (watchdog_ && watchdog_->shadowDown()) {
        // Graceful degradation: with the shadow kernel down, serve the
        // spawn on the main kernel at main-domain energy cost.
        watchdog_->noteDegradedSpawn();
        return spawnNormal(proc, std::move(name), std::move(body));
    }
    return nightWatch_->spawn(proc, std::move(name), std::move(body));
}

sim::Task<kern::PageRange>
K2System::allocPages(kern::Thread &t, unsigned order,
                     kern::Migrate migrate)
{
    // Allocations are always served by the local instance (§6.2).
    co_return co_await t.kernel().allocPages(t, order, migrate);
}

sim::Task<void>
K2System::freePages(kern::Thread &t, kern::PageRange range)
{
    kern::Kernel &local = t.kernel();
    if (local.pageAllocator().isAllocated(range.first)) {
        co_await local.freePages(t, range);
        co_return;
    }
    // The thin wrapper (§6.2): the pages belong to the other kernel's
    // allocator; redirect the free asynchronously via a hardware
    // message. The address-range check is a few instructions.
    kern::Kernel &peer = (&local == main_.get()) ? *shadow_ : *main_;
    K2_ASSERT(peer.pageAllocator().isAllocated(range.first));
    co_await t.exec(20);
    remoteFrees_.inc();
    unsigned order = 0;
    while ((1ull << order) < range.count)
        ++order;
    local.sendMail(peer.domainId(),
                   encodeMessage(MsgType::FreeRemote,
                                 static_cast<std::uint32_t>(range.first) &
                                     kPayloadMask,
                                 order));
}

void
K2System::dumpState(std::ostream &os)
{
    os << "==== K2 state at " << sim::formatTime(engine_.now())
       << " ====\n";
    for (kern::Kernel *k : kernels()) {
        auto &dom = k->domain();
        os << "kernel '" << k->name() << "' on domain '" << dom.name()
           << "':\n";
        for (std::size_t i = 0; i < dom.numCores(); ++i) {
            auto &c = dom.core(i);
            os << "  core " << c.id() << ": "
               << soc::powerStateName(c.state()) << ", "
               << c.hz() / 1000000 << " MHz, active "
               << sim::formatTime(c.activeTime()) << ", wakeups "
               << c.wakeups() << "\n";
        }
        os << "  runqueue depth " << k->scheduler().runqueueDepth()
           << ", context switches "
           << k->scheduler().contextSwitches() << ", free pages "
           << k->pageAllocator().freePages() << "\n";
    }
    os << "memory blocks: main "
       << meta_->blocksOwnedBy(MetaLevelManager::BlockOwner::Main)
       << ", shadow "
       << meta_->blocksOwnedBy(MetaLevelManager::BlockOwner::Shadow)
       << ", K2 "
       << meta_->blocksOwnedBy(MetaLevelManager::BlockOwner::Meta)
       << " of " << meta_->numBlocks() << "\n";
    os << "dsm: " << dsm_->faultStats(0).faults.value()
       << " main faults, " << dsm_->faultStats(1).faults.value()
       << " shadow faults, " << dsm_->messagesSent() << " messages, "
       << dsm_->pagesDemoted() << " pages demoted\n";
    os << "nightwatch: " << nightWatch_->suspendsSent.value()
       << " suspends, " << nightWatch_->resumesSent.value()
       << " resumes\n";
    os << "irq routing: "
       << (irqRouter_->routedToWeak() ? "weak" : "strong") << " ("
       << irqRouter_->reroutes() << " reroutes)\n";
    for (soc::RailId r = 0; r < soc_->meter().numRails(); ++r) {
        os << "rail '" << soc_->meter().railName(r) << "': "
           << soc_->meter().energyUj(r) / 1000.0 << " mJ\n";
    }
}

sim::Task<void>
K2System::chargeCrossIsa(kern::Kernel &kern, soc::Core &core,
                         std::uint64_t n)
{
    co_await crossIsa_->charge(kern, core, n);
}

void
K2System::registerMetrics(obs::MetricsRegistry &reg)
{
    SystemImage::registerMetrics(reg);

    dsm_->registerMetrics(reg, "os.dsm");

    reg.addCounter("os.nightwatch.suspends", nightWatch_->suspendsSent);
    reg.addCounter("os.nightwatch.resumes", nightWatch_->resumesSent);
    reg.addCounter("os.nightwatch.acks", nightWatch_->acksReceived);
    reg.addAccumulator("os.nightwatch.ack_wait_us",
                       nightWatch_->ackWaitUs);

    reg.addCounter("os.meta.pressure_events", meta_->pressureEvents);
    reg.addCounter("os.meta.peer_requests", meta_->peerRequests);
    static const char *const kKernelNames[2] = {"main", "shadow"};
    for (KernelIdx k = 0; k < 2; ++k) {
        const std::string bp =
            std::string("os.balloon.") + kKernelNames[k];
        BalloonDriver &b = meta_->balloon(k);
        reg.addCounter(bp + ".deflates", b.deflates);
        reg.addCounter(bp + ".inflates", b.inflates);
        reg.addCounter(bp + ".failed_inflates", b.failedInflates);
    }

    const IrqRouter &router = *irqRouter_;
    reg.addGauge("os.irq_router.reroutes", [&router]() {
        return static_cast<double>(router.reroutes());
    });
    const CrossIsaDispatcher &xisa = *crossIsa_;
    reg.addGauge("os.cross_isa.dispatches", [&xisa]() {
        return static_cast<double>(xisa.dispatches());
    });
    reg.addCounter("os.remote_frees", remoteFrees_);

    // Only when armed, so zero-fault runs keep the exact metric key
    // set they had before the fault plane existed.
    if (injector_)
        injector_->registerMetrics(reg, "fault.injected");
    if (reliable_)
        reliable_->registerMetrics(reg, "os.recovery.mail");
    if (watchdog_)
        watchdog_->registerMetrics(reg, "os.recovery");
}

void
K2System::snapState(snap::Io &io)
{
    // Order matters: the engine first (quiescence assertions, clock,
    // tracer), then hardware, then the kernels (whose restore prunes
    // post-capture threads before anything looks threads up by tid),
    // then the process table, then the OS services.
    engine_.snapState(io);
    soc_->snapState(io);
    main_->snapState(io);
    shadow_->snapState(io);
    SystemImage::snapState(io);
    dsm_->snapState(io);
    meta_->snapState(io);
    nightWatch_->snapState(io);
    irqRouter_->snapState(io);
    crossIsa_->snapState(io);
    ioMapper_->snapState(io);
    io.pod(remoteFrees_);

    // The fault plane and recovery protocols exist iff armed, which is
    // a property of the config -- structural.
    io.check(injector_ ? 1 : 0, "K2System::injector");
    if (injector_)
        injector_->snapState(io);
    io.check(reliable_ ? 1 : 0, "K2System::reliable");
    if (reliable_)
        reliable_->snapState(io);
    io.check(watchdog_ ? 1 : 0, "K2System::watchdog");
    if (watchdog_)
        watchdog_->snapState(io);
}

sim::Task<void>
K2System::dispatchMail(KernelIdx to, soc::Mail mail, soc::Core &core)
{
    if (reliable_ && !co_await reliable_->onReceive(to, mail, core))
        co_return; // Consumed ack or suppressed duplicate.
    const Message msg = decodeMessage(mail.word);
    switch (msg.type) {
      case MsgType::GetExclusive:
      case MsgType::PutExclusive:
        co_await dsm_->handleMail(to, msg, core);
        co_return;
      case MsgType::SuspendNw:
      case MsgType::AckSuspendNw:
      case MsgType::ResumeNw:
        co_await nightWatch_->handleMail(to, msg, core);
        co_return;
      case MsgType::Control:
        switch (ctlOp(msg.payload)) {
          case CtlOp::BalloonGive:
            co_await meta_->handleMail(to, msg, core);
            co_return;
          case CtlOp::MapCreate:
          case CtlOp::MapDestroy:
            co_await ioMapper_->handleMail(to, msg, core);
            co_return;
          case CtlOp::MailAck:
            co_return; // Handled by the reliable-mail shim above.
          case CtlOp::Heartbeat:
          case CtlOp::HeartbeatAck:
            K2_ASSERT(watchdog_);
            co_await watchdog_->handleMail(to, msg, core);
            co_return;
        }
        K2_PANIC("unknown control op in mail 0x%x", mail.word);
      case MsgType::BalloonDone:
        co_await meta_->handleMail(to, msg, core);
        co_return;
      case MsgType::FreeRemote: {
        kern::Kernel &kern = (to == 0) ? *main_ : *shadow_;
        const std::uint64_t work =
            kern.pageAllocator().free(msg.payload);
        const double factor = core.spec().kernelCostFactor;
        co_await core.exec(static_cast<std::uint64_t>(
            static_cast<double>(work) * factor + 0.5));
        co_return;
      }
    }
    K2_PANIC("unknown message type in mail 0x%x", mail.word);
}

} // namespace os
} // namespace k2
