/**
 * @file
 * The single-system-image abstraction.
 *
 * SystemImage is the surface applications and shadowed services program
 * against: processes, Normal and NightWatch threads, and shared-state
 * regions. Two implementations exist:
 *  - os::K2System -- two kernels over two coherence domains, shared
 *    regions backed by the software DSM;
 *  - baseline::LinuxSystem -- one shared-everything kernel on the
 *    strong domain, shared regions backed by hardware coherence
 *    (zero-cost touch).
 *
 * Services written against this interface run unmodified on both,
 * which is the reproduction of the paper's claim that shadowed
 * services reuse the existing driver source.
 */

#ifndef K2_OS_SYSTEM_H
#define K2_OS_SYSTEM_H

#include <memory>
#include <string>
#include <vector>

#include "sim/task.h"
#include "soc/soc.h"
#include "kern/kernel.h"
#include "kern/thread.h"
#include "kern/types.h"

namespace k2 {

namespace obs {
class MetricsRegistry;
}

namespace snap {
class Io;
}

namespace os {

/** Kind of access to shared state. */
enum class Access { Read, Write };

/**
 * A region of kernel state shared between kernels.
 *
 * Shadowed services place their mutable state in one of these and call
 * touch() before using it, from thread or interrupt context. Under K2
 * a touch may take a DSM fault; under the baseline it is free.
 */
class SharedRegion
{
  public:
    SharedRegion(std::string name, std::uint64_t pages)
        : name_(std::move(name)), pages_(pages)
    {}

    virtual ~SharedRegion() = default;

    const std::string &name() const { return name_; }
    std::uint64_t numPages() const { return pages_; }

    /**
     * Make page @p page_idx of the region usable by @p kern with the
     * given access, charging any coherence cost to @p core.
     */
    virtual sim::Task<void> touch(kern::Kernel &kern, soc::Core &core,
                                  std::uint64_t page_idx, Access rw) = 0;

  private:
    std::string name_;
    std::uint64_t pages_;
};

class SystemImage
{
  public:
    virtual ~SystemImage() = default;

    /** Model name for reports ("K2" or "Linux"). */
    virtual const char *modelName() const = 0;

    virtual soc::Soc &soc() = 0;
    sim::Engine &engine() { return soc().engine(); }

    /** The kernel serving a given coherence domain. */
    virtual kern::Kernel &kernelAt(soc::DomainId domain) = 0;

    /** All kernels (one for the baseline, two for K2). */
    virtual std::vector<kern::Kernel *> kernels() = 0;

    /** The kernel that runs Normal application threads. */
    virtual kern::Kernel &mainKernel() = 0;

    /** The kernel that runs NightWatch threads. */
    virtual kern::Kernel &nightWatchKernel() = 0;

    /** Allocate a shared-state region for a shadowed service. */
    virtual std::unique_ptr<SharedRegion>
    createSharedRegion(std::string name, std::uint64_t pages) = 0;

    /**
     * Allocate 2^order physical pages from @p t's kernel's local
     * allocator instance (an *independent* service: always served
     * locally, §6.2).
     */
    virtual sim::Task<kern::PageRange>
    allocPages(kern::Thread &t, unsigned order,
               kern::Migrate migrate = kern::Migrate::Movable) = 0;

    /**
     * Free pages. Under K2, frees of remotely-allocated pages are
     * redirected asynchronously to the allocating kernel through a
     * hardware message (the §6.2 thin wrapper).
     */
    virtual sim::Task<void> freePages(kern::Thread &t,
                                      kern::PageRange range) = 0;

    /**
     * Charge @p n kernel function-pointer dispatches (§5.4). A no-op
     * except on K2's shadow kernel, where each indirect call traps
     * into the cross-ISA dispatcher.
     */
    virtual sim::Task<void>
    chargeCrossIsa(kern::Kernel &kern, soc::Core &core, std::uint64_t n)
    {
        (void)kern;
        (void)core;
        (void)n;
        co_return;
    }

    /** Create a process in the single system image. */
    kern::Process &createProcess(std::string name);

    /** Spawn a Normal thread (strong domain). */
    virtual kern::Thread *spawnNormal(kern::Process &proc,
                                      std::string name,
                                      kern::Thread::Body body) = 0;

    /**
     * Spawn a NightWatch thread (weak domain under K2; the baseline
     * has no weak domain, so it runs as a Normal thread there, exactly
     * like light tasks on stock Linux in the paper's evaluation).
     */
    virtual kern::Thread *spawnNightWatch(kern::Process &proc,
                                          std::string name,
                                          kern::Thread::Body body) = 0;

    const std::vector<std::unique_ptr<kern::Process>> &processes() const
    {
        return processes_;
    }

    /**
     * Register this system's metrics: the sim engine ("sim.*"), the
     * hardware ("soc.*") and every kernel's scheduler and page
     * allocator ("kern.<name>.*"). Implementations extend this with
     * their OS-level components (K2 adds "os.*").
     */
    virtual void registerMetrics(obs::MetricsRegistry &reg);

    /**
     * Capture/restore the whole system into/from @p io. Preconditions:
     * the engine is quiescent (no pending events, no live tasks) and
     * the captured instance is the restore target (restore rewrites
     * semantic state in place; it never re-creates objects).
     */
    virtual void snapState(snap::Io &io);

  protected:
    std::vector<std::unique_ptr<kern::Process>> processes_;
    kern::Pid nextPid_ = 1;
};

} // namespace os
} // namespace k2

#endif // K2_OS_SYSTEM_H
