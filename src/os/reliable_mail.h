/**
 * @file
 * Reliable delivery over the lossy hardware mailboxes.
 *
 * The hardware mailbox guarantees per-pair FIFO order but -- once the
 * fault plane is armed -- not delivery: mails can be dropped, ECC-
 * discarded, or duplicated. This shim layers a minimal ARQ protocol on
 * top, per ordered (sender kernel, receiver kernel) channel:
 *
 *  - the sender stamps each *tracked* mail with an 8-bit channel
 *    sequence number (the low 8 bits of the mail's seq field, which no
 *    tracked receiver interprets -- the DSM's read/write flag lives in
 *    bit 8 and is preserved);
 *  - the receiver acks every tracked mail (Control/MailAck, operand =
 *    seq) -- including duplicates, which covers lost acks -- and
 *    suppresses re-delivery through a 256-entry sliding seq window;
 *  - the sender retransmits unacked mail after a timeout with bounded
 *    exponential backoff; after suspectAttempts silent transmits it
 *    fires the suspect hook (the watchdog's suspicion trigger) while
 *    continuing to retransmit, so mail survives a crash-and-restart
 *    cycle; after maxAttempts it finally gives up and counts it.
 *
 * Untracked mail (FreeRemote, whose seq field carries real data, and
 * the MailAck/Heartbeat/HeartbeatAck control mails themselves) passes
 * through unstamped and unacked.
 *
 * Every ack and retransmit is charged as kernel work (a bus access) on
 * a core of the acting domain, so recovery shows up in the energy
 * accounts.
 */

#ifndef K2_OS_RELIABLE_MAIL_H
#define K2_OS_RELIABLE_MAIL_H

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "kern/kernel.h"
#include "os/messages.h"
#include "sim/stats.h"

namespace k2 {

namespace obs {
class MetricsRegistry;
}

namespace os {

class ReliableMail
{
  public:
    struct Config
    {
        /** Initial timeout; must sit above the loaded ack round trip,
         *  which includes the receiving core's wake latency (150 us
         *  for the strong domain). */
        sim::Duration rto = sim::usec(300);
        /**
         * Exponential-backoff cap, 8x the base RTO. The deterministic
         * doubling schedule (300, 600, 1200, 2400, 2400, ... us)
         * de-synchronises retransmit storms during injected loss
         * bursts while keeping the per-mail retransmit lifetime long
         * enough to ride out a crash-and-restart cycle.
         */
        sim::Duration maxRto = sim::usec(2400);
        /**
         * Attempt count at which the suspect hook first fires (the
         * watchdog's suspicion trigger). Retransmission continues past
         * it: if the peer was merely slow (or is being restarted), the
         * mail must still get through once it comes back.
         */
        std::uint32_t suspectAttempts = 4;
        /**
         * Hard cap on transmits per mail. With the default rto/maxRto
         * the cumulative retransmit lifetime (~55 ms) comfortably
         * outlives a crash + probe + restart cycle, so tracked mail
         * survives a shadow-kernel reboot.
         */
        std::uint32_t maxAttempts = 25;
    };

    /** Called on repeated retransmission without an ack, and again at
     *  final give-up (from, to kernels). */
    using SuspectHook = std::function<void(KernelIdx, KernelIdx)>;

    /**
     * @param kernels The participating kernels, indexed by KernelIdx.
     *                Works for the K2 pair and for N-domain setups.
     */
    ReliableMail(std::vector<kern::Kernel *> kernels, Config cfg);

    /**
     * Interpose on every kernel's outgoing mail (setMailTransport).
     * Call once, after all kernels are booted.
     */
    void install();

    void setSuspectHook(SuspectHook h) { suspect_ = std::move(h); }

    /**
     * Receive-side interposition. Call first for every arriving mail.
     *
     * @return true if the mail should be dispatched to the OS layer;
     *         false if the shim consumed it (an ack) or suppressed it
     *         (a duplicate).
     */
    sim::Task<bool> onReceive(KernelIdx to, soc::Mail mail,
                              soc::Core &core);

    /** True for mail types the ARQ protocol covers. */
    static bool tracked(std::uint32_t word);

    /** @name Statistics. @{ */
    std::uint64_t trackedSent() const { return trackedSent_.value(); }
    std::uint64_t retransmits() const { return retransmits_.value(); }
    std::uint64_t duplicatesDropped() const { return dupDropped_.value(); }
    std::uint64_t giveups() const { return giveups_.value(); }
    /** @} */

    /** Register stats under @p prefix (e.g. "os.recovery.mail"). */
    void registerMetrics(obs::MetricsRegistry &reg,
                         const std::string &prefix) const;

    /**
     * Capture/restore. Quiescence requires every channel's inflight
     * window empty (unacked mail implies a pending retransmit timer);
     * sequence counters and dedup windows carry over.
     */
    void snapState(snap::Io &io);

  private:
    struct Pending
    {
        std::uint32_t word = 0;
        std::uint32_t attempt = 1;
        sim::Duration rto = 0;
        sim::Time sentAt = 0;
        sim::EventId timer{};
    };

    /** One direction of one kernel pair. */
    struct Channel
    {
        std::uint32_t nextSeq = 0;             //!< Sender side.
        std::map<std::uint32_t, Pending> inflight;
        std::array<bool, 256> seen{};          //!< Receiver side.
    };

    std::size_t chanIdx(KernelIdx from, KernelIdx to) const
    {
        return from * kernels_.size() + to;
    }

    void send(KernelIdx from, soc::DomainId to_domain,
              std::uint32_t word);
    void armTimer(KernelIdx from, KernelIdx to, std::uint32_t seq);
    void onTimeout(KernelIdx from, KernelIdx to, std::uint32_t seq);
    sim::Task<void> chargeAndResend(KernelIdx from,
                                    soc::DomainId to_domain,
                                    std::uint32_t word);
    void handleAck(KernelIdx to, KernelIdx from_peer, std::uint32_t seq);
    KernelIdx kernelOfDomain(soc::DomainId d) const;

    std::vector<kern::Kernel *> kernels_;
    Config cfg_;
    std::vector<Channel> channels_;
    SuspectHook suspect_;
    sim::Counter trackedSent_;
    sim::Counter retransmits_;
    sim::Counter acks_;
    sim::Counter dupDropped_;
    sim::Counter giveups_;
    sim::Histogram ackRttUs_;
};

} // namespace os
} // namespace k2

#endif // K2_OS_RELIABLE_MAIL_H
