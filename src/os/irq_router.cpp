#include "os/irq_router.h"

#include "sim/log.h"
#include "snap/io.h"

namespace k2 {
namespace os {

IrqRouter::IrqRouter(soc::Soc &soc, kern::Kernel &main,
                     kern::Kernel &shadow)
    : soc_(soc), main_(main), shadow_(shadow)
{}

void
IrqRouter::manageLine(soc::IrqLine line)
{
    if (!main_.domain().irqCtrl().hasHandler(line) ||
        !shadow_.domain().irqCtrl().hasHandler(line)) {
        K2_FATAL("IRQ line %u must have handlers in both kernels before "
                 "being managed", line);
    }
    lines_.push_back(line);
    // Apply the current routing to the new line.
    main_.domain().irqCtrl().setMasked(line, routedToWeak_);
    shadow_.domain().irqCtrl().setMasked(line, !routedToWeak_);
}

void
IrqRouter::applyRouting(bool to_weak)
{
    if (to_weak == routedToWeak_)
        return;
    routedToWeak_ = to_weak;
    reroutes_.inc();
    K2_TRACE(soc_.engine(), sim::TraceCat::Irq,
             "shared IRQs rerouted to %s domain",
             to_weak ? "weak" : "strong");
    if (to_weak) {
        // Unmask on the weak domain first so no interrupt is lost in
        // the window, then mask on the strong domain.
        for (const auto line : lines_)
            shadow_.domain().irqCtrl().setMasked(line, false);
        for (const auto line : lines_)
            main_.domain().irqCtrl().setMasked(line, true);
    } else {
        for (const auto line : lines_)
            main_.domain().irqCtrl().setMasked(line, false);
        for (const auto line : lines_)
            shadow_.domain().irqCtrl().setMasked(line, true);
    }
}

void
IrqRouter::onStrongStateChange()
{
    if (degraded_)
        return; // Routing pinned to the strong domain.
    applyRouting(main_.domain().allInactive());
}

void
IrqRouter::setDegraded(bool degraded)
{
    if (degraded == degraded_)
        return;
    degraded_ = degraded;
    if (degraded)
        applyRouting(false);
    else
        applyRouting(main_.domain().allInactive());
}

void
IrqRouter::reapplyMasks()
{
    for (const auto line : lines_) {
        main_.domain().irqCtrl().setMasked(line, routedToWeak_);
        shadow_.domain().irqCtrl().setMasked(line, !routedToWeak_);
    }
}

void
IrqRouter::install()
{
    K2_ASSERT(!installed_);
    installed_ = true;
    auto &dom = main_.domain();
    for (std::size_t i = 0; i < dom.numCores(); ++i) {
        dom.core(i).addStateListener(
            [this](soc::PowerState) { onStrongStateChange(); });
    }
    applyRouting(dom.allInactive());
}

void
IrqRouter::snapState(snap::Io &io)
{
    // Managed lines and installation happen at service-setup time
    // only, so both are structural.
    io.check(lines_.size(), "IrqRouter::lines");
    io.check(installed_ ? 1 : 0, "IrqRouter::installed");
    io.pod(routedToWeak_);
    io.pod(degraded_);
    io.pod(reroutes_);
}

} // namespace os
} // namespace k2
