#include "os/ndsm.h"

#include <algorithm>

#include "obs/metrics.h"
#include "sim/log.h"
#include "snap/io.h"

namespace k2 {
namespace os {

NDsm::NDsm(soc::Soc &soc, std::vector<kern::Kernel *> kernels,
           std::uint64_t num_pages)
    : soc_(soc), kernels_(std::move(kernels)), numPages_(num_pages),
      stats_(kernels_.size())
{
    K2_ASSERT(kernels_.size() >= 2);
    for (kern::Kernel *k : kernels_) {
        K2_ASSERT(k != nullptr);
        const auto &spec = k->domain().spec().core;
        mmus_.push_back(std::make_unique<soc::Mmu>(spec));
        // Strong kernels use the fast-path constants, weak kernels
        // the slow ones (same calibration as the two-kernel DSM).
        if (spec.kernelCostFactor <= 1.0) {
            costs_.push_back(Costs{sim::usec(3), sim::usec(2), 0,
                                   sim::usec(18)});
        } else {
            costs_.push_back(Costs{sim::usec(17), sim::usec(13),
                                   sim::usec(8), sim::usec(2)});
        }
    }
}

kern::PageRange
NDsm::allocRegion(std::uint64_t pages)
{
    if (nextRegionPage_ + pages > numPages_)
        K2_FATAL("NDsm region space exhausted");
    kern::PageRange r{nextRegionPage_, pages};
    nextRegionPage_ += pages;
    return r;
}

NDsm::PageInfo &
NDsm::info(std::uint64_t page)
{
    K2_ASSERT(page < numPages_);
    auto it = pages_.find(page);
    if (it == pages_.end()) {
        auto pi = std::make_unique<PageInfo>();
        pi->grant = std::make_unique<sim::Event>(soc_.engine());
        pi->settled = std::make_unique<sim::Event>(soc_.engine());
        it = pages_.emplace(page, std::move(pi)).first;
    }
    return *it->second;
}

std::size_t
NDsm::idxOf(const kern::Kernel &k) const
{
    for (std::size_t i = 0; i < kernels_.size(); ++i) {
        if (kernels_[i] == &k)
            return i;
    }
    K2_PANIC("kernel '%s' is not part of this NDsm", k.name().c_str());
}

std::size_t
NDsm::ownerOf(std::uint64_t page) const
{
    auto it = pages_.find(page);
    return it == pages_.end() ? 0 : it->second->owner;
}

sim::Task<void>
NDsm::access(kern::Kernel &kern, soc::Core &core, std::uint64_t page,
             Access rw)
{
    (void)rw; // the N-domain protocol is two-state: any access is
              // exclusive, as in §6.3.
    const std::size_t k = idxOf(kern);
    PageInfo &pi = info(page);

    const sim::Duration walk =
        mmus_[k]->translate(page, soc::MapGrain::Page4K);
    if (walk)
        co_await core.execTime(walk);

    for (;;) {
        // Serialise with any fault in flight on this page, from any
        // kernel (the directory replicas order requests).
        while (pi.outstanding) {
            core.pinActive();
            co_await pi.settled->wait();
            core.unpinActive();
        }
        if (pi.owner == k)
            co_return;

        stats_[k].faults.inc();
        pi.outstanding = true;
        pi.requester = k;

        const sim::Time t0 = soc_.engine().now();
        co_await core.execTime(costs_[k].faultEntry);
        co_await core.execTime(costs_[k].protocolExec);

        // Directory lookup gives the current owner; request it
        // directly (no broadcast).
        messages_.inc();
        kernels_[k]->sendMail(
            kernels_[pi.owner]->domainId(),
            encodeMessage(MsgType::GetExclusive, page & kPayloadMask,
                          seq_++ & kSeqMask));

        pi.grant->reset();
        pi.grantArrived = false;
        core.pinActive();
        if (retry_.timeout == 0) {
            co_await pi.grant->wait();
        } else {
            // Same shape as Dsm's fault-timeout retry, with one
            // N-domain twist: the resend re-reads pi.owner, so a fault
            // stranded on a crashed owner redirects to wherever
            // reclaimFrom moved the page.
            sim::Duration rto = retry_.timeout;
            while (!pi.grantArrived) {
                bool timer_fired = false;
                sim::Event *grant = pi.grant.get();
                sim::EventId timer = soc_.engine().after(
                    rto, [grant, &timer_fired]() {
                        timer_fired = true;
                        grant->pulse();
                    });
                co_await pi.grant->wait();
                soc_.engine().cancel(timer);
                if (pi.grantArrived)
                    break;
                if (!timer_fired)
                    continue; // Woken by an unrelated pulse; re-wait.
                retries_.inc();
                messages_.inc();
                K2_TRACE(soc_.engine(), sim::TraceCat::Dsm,
                         "%s retries Get for N-DSM page %llu",
                         kernels_[k]->name().c_str(),
                         static_cast<unsigned long long>(page));
                kernels_[k]->sendMail(
                    kernels_[pi.owner]->domainId(),
                    encodeMessage(MsgType::GetExclusive,
                                  page & kPayloadMask,
                                  seq_++ & kSeqMask));
                rto = std::min(rto * 2, retry_.maxTimeout);
            }
        }
        core.unpinActive();

        co_await core.execTime(costs_[k].exitRefill +
                               mmus_[k]->protectionUpdate(page));

        pi.owner = k;
        pi.outstanding = false;
        pi.settled->pulse();
        stats_[k].totalUs.sample(
            sim::toUsec(soc_.engine().now() - t0));
        co_return;
    }
}

std::vector<std::uint64_t>
NDsm::reclaimFrom(std::size_t dead, std::size_t to)
{
    K2_ASSERT(dead < kernels_.size() && to < kernels_.size());
    K2_ASSERT(dead != to);
    // Ascending page order for deterministic reclaim traffic.
    std::vector<std::uint64_t> keys;
    keys.reserve(pages_.size());
    for (const auto &kv : pages_)
        keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());

    std::vector<std::uint64_t> moved;
    for (std::uint64_t key : keys) {
        PageInfo &pi = *pages_.at(key);
        if (pi.owner != dead)
            continue;
        pi.owner = to;
        moved.push_back(key);
        // A fault by the inheritor itself, stranded waiting on the
        // dead owner, completes locally (as in Dsm::reclaimAll).
        // Faults by *other* kernels self-heal through the retry path:
        // the resend re-reads the directory and reaches @p to.
        if (pi.outstanding && pi.requester == to && !pi.grantArrived) {
            pi.grantArrived = true;
            pi.grant->pulse();
        }
    }
    return moved;
}

void
NDsm::registerMetrics(obs::MetricsRegistry &reg,
                      const std::string &prefix)
{
    reg.addCounter(prefix + ".messages", messages_);
    // Only present when the recovery layer enabled retries, so
    // zero-fault metric snapshots keep their exact key set.
    if (retry_.timeout != 0)
        reg.addCounter(prefix + ".retries", retries_);
    for (std::size_t k = 0; k < kernels_.size(); ++k) {
        const std::string kp = prefix + "." + kernels_[k]->name();
        reg.addCounter(kp + ".faults", stats_[k].faults);
        reg.addAccumulator(kp + ".total_us", stats_[k].totalUs);
    }
}

sim::Task<void>
NDsm::serviceGet(std::size_t owner, std::size_t requester,
                 std::uint64_t page)
{
    PageInfo &pi = info(page);

    // The strong kernel defers to a bottom half.
    if (owner == 0)
        co_await soc_.engine().sleep(soc_.costs().mailboxOneWay);

    soc::CoherenceDomain &dom = kernels_[owner]->domain();
    soc::Core *core = &dom.core(0);
    for (std::size_t i = 0; i < dom.numCores(); ++i) {
        if (dom.core(i).state() == soc::PowerState::Idle) {
            core = &dom.core(i);
            break;
        }
    }
    if (!core->awake())
        co_await core->ensureAwake();

    const sim::Time t0 = soc_.engine().now();
    co_await core->execTime(costs_[owner].serviceBase +
                            dom.flushTime(soc_.pageBytes()) +
                            mmus_[owner]->protectionUpdate(page));
    pi.lastServiceTime = soc_.engine().now() - t0;

    messages_.inc();
    kernels_[owner]->sendMail(
        kernels_[requester]->domainId(),
        encodeMessage(MsgType::PutExclusive, page & kPayloadMask,
                      seq_++ & kSeqMask));
}

sim::Task<void>
NDsm::handleMail(std::size_t to_kernel, soc::Mail mail, soc::Core &core)
{
    const Message msg = decodeMessage(mail.word);
    const std::uint64_t page = msg.payload;
    // The Mail carries the sending domain; map it to a kernel index.
    std::size_t from_kernel = SIZE_MAX;
    for (std::size_t i = 0; i < kernels_.size(); ++i) {
        if (kernels_[i]->domainId() == mail.from)
            from_kernel = i;
    }
    K2_ASSERT(from_kernel != SIZE_MAX);

    switch (msg.type) {
      case MsgType::GetExclusive:
        soc_.engine().spawn(serviceGet(to_kernel, from_kernel, page));
        co_return;
      case MsgType::PutExclusive: {
        co_await core.execTime(soc_.costs().busAccess);
        PageInfo &pi = info(page);
        pi.grantArrived = true;
        pi.grant->pulse();
        co_return;
      }
      default:
        K2_PANIC("NDsm received unexpected message type %u",
                 static_cast<unsigned>(msg.type));
    }
}

void
NDsm::snapState(snap::Io &io)
{
    io.check(kernels_.size(), "NDsm::kernels");
    io.pod(seq_);
    io.pod(nextRegionPage_);
    io.pod(messages_);
    io.pod(retries_);
    for (auto &mmu : mmus_)
        mmu->snapState(io);
    for (Stats &st : stats_) {
        io.pod(st.faults);
        io.pod(st.totalUs);
    }

    // Per-page directory state, in sorted page order. As in the
    // two-kernel DSM, the page map only grows; restore drops entries
    // instantiated after the capture point.
    std::vector<std::uint64_t> keys;
    keys.reserve(pages_.size());
    for (const auto &kv : pages_)
        keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());
    std::uint64_t n = io.count(keys.size());
    if (io.restoring()) {
        std::vector<std::uint64_t> snapKeys(
            static_cast<std::size_t>(n));
        for (auto &k : snapKeys)
            io.pod(k);
        for (std::uint64_t k : keys) {
            if (!std::binary_search(snapKeys.begin(), snapKeys.end(),
                                    k))
                pages_.erase(k);
        }
        keys = std::move(snapKeys);
    } else {
        for (std::uint64_t k : keys) {
            std::uint64_t v = k;
            io.pod(v);
        }
    }
    for (std::uint64_t k : keys) {
        auto it = pages_.find(k);
        if (it == pages_.end())
            K2_FATAL("snapshot restore: N-DSM page %llu missing",
                     static_cast<unsigned long long>(k));
        PageInfo &pi = *it->second;
        io.pod(pi.owner);
        io.pod(pi.outstanding);
        io.pod(pi.grantArrived);
        io.pod(pi.requester);
        pi.grant->snapState(io);
        pi.settled->snapState(io);
        io.pod(pi.lastServiceTime);
    }
}

} // namespace os
} // namespace k2
