#include "os/ndsm.h"

#include <algorithm>

#include "obs/metrics.h"
#include "sim/log.h"
#include "snap/io.h"

namespace k2 {
namespace os {

using coherence::Directory;
using coherence::packOp;
using coherence::pageOf;
using coherence::ProtocolKind;
using coherence::RepOp;
using coherence::ReqOp;

NDsm::NDsm(soc::Soc &soc, std::vector<kern::Kernel *> kernels,
           std::uint64_t num_pages, ProtocolKind kind)
    : soc_(soc), kernels_(std::move(kernels)), kind_(kind),
      numPages_(num_pages), stats_(kernels_.size())
{
    K2_ASSERT(kernels_.size() >= 2);
    for (kern::Kernel *k : kernels_) {
        K2_ASSERT(k != nullptr);
        const auto &spec = k->domain().spec().core;
        mmus_.push_back(std::make_unique<soc::Mmu>(spec));
        // Strong kernels use the fast-path constants, weak kernels
        // the slow ones (same calibration as the two-kernel DSM).
        if (spec.kernelCostFactor <= 1.0) {
            costs_.push_back(Costs{sim::usec(3), sim::usec(2), 0,
                                   sim::usec(18)});
        } else {
            costs_.push_back(Costs{sim::usec(17), sim::usec(13),
                                   sim::usec(8), sim::usec(2)});
        }
        weak_.push_back(spec.kernelCostFactor > 1.0 ? 1 : 0);
    }
    switch (kind_) {
      case ProtocolKind::TwoState:
        break;
      case ProtocolKind::ThreeState:
      case ProtocolKind::Mesi:
      case ProtocolKind::Moesi:
        dir_ = std::make_unique<Directory>(kind_, kernels_.size(),
                                           numPages_);
        break;
      case ProtocolKind::Rac:
        K2_ASSERT(numPages_ <= coherence::kOpMaxPages);
        rac_ = std::make_unique<coherence::RacState>(kernels_.size(),
                                                     numPages_);
        break;
    }
}

kern::PageRange
NDsm::allocRegion(std::uint64_t pages)
{
    if (nextRegionPage_ + pages > numPages_)
        K2_FATAL("NDsm region space exhausted");
    kern::PageRange r{nextRegionPage_, pages};
    nextRegionPage_ += pages;
    return r;
}

NDsm::PageInfo &
NDsm::info(std::uint64_t page)
{
    K2_ASSERT(page < numPages_);
    auto it = pages_.find(page);
    if (it == pages_.end()) {
        auto pi = std::make_unique<PageInfo>();
        pi->grant = std::make_unique<sim::Event>(soc_.engine());
        pi->settled = std::make_unique<sim::Event>(soc_.engine());
        it = pages_.emplace(page, std::move(pi)).first;
    }
    return *it->second;
}

std::size_t
NDsm::idxOf(const kern::Kernel &k) const
{
    for (std::size_t i = 0; i < kernels_.size(); ++i) {
        if (kernels_[i] == &k)
            return i;
    }
    K2_PANIC("kernel '%s' is not part of this NDsm", k.name().c_str());
}

std::size_t
NDsm::ownerOf(std::uint64_t page) const
{
    switch (kind_) {
      case ProtocolKind::Rac:
        return rac_->writerOf(page);
      case ProtocolKind::TwoState: {
        auto it = pages_.find(page);
        return it == pages_.end() ? 0 : it->second->owner;
      }
      default:
        return dir_->ownerOf(page);
    }
}

soc::Core *
NDsm::pickCore(std::size_t kernel)
{
    soc::CoherenceDomain &dom = kernels_[kernel]->domain();
    soc::Core *core = &dom.core(0);
    for (std::size_t i = 0; i < dom.numCores(); ++i) {
        if (dom.core(i).state() == soc::PowerState::Idle) {
            core = &dom.core(i);
            break;
        }
    }
    return core;
}

void
NDsm::samplePhases(std::size_t k, sim::Time t0, sim::Time t1,
                   sim::Time t2, sim::Time t3, sim::Time t4,
                   sim::Duration service)
{
    Stats &st = stats_[k];
    st.entryUs.sample(sim::toUsec(t1 - t0));
    st.protocolUs.sample(sim::toUsec(t2 - t1));
    st.serviceUs.sample(sim::toUsec(service));
    st.commUs.sample(sim::toUsec(t3 - t2) - sim::toUsec(service));
    st.exitUs.sample(sim::toUsec(t4 - t3));
    st.totalUs.sample(sim::toUsec(t4 - t0));
}

sim::Task<void>
NDsm::access(kern::Kernel &kern, soc::Core &core, std::uint64_t page,
             Access rw)
{
    const std::size_t k = idxOf(kern);
    switch (kind_) {
      case ProtocolKind::TwoState:
        // The migratory protocol is two-state: any access is
        // exclusive, as in §6.3 -- rw is irrelevant.
        return accessTwoState(k, core, page);
      case ProtocolKind::Rac:
        return accessRac(k, core, page, rw);
      default:
        return accessDir(k, core, page, rw);
    }
}

sim::Task<void>
NDsm::accessTwoState(std::size_t k, soc::Core &core, std::uint64_t page)
{
    PageInfo &pi = info(page);

    const sim::Duration walk =
        mmus_[k]->translate(page, soc::MapGrain::Page4K);
    if (walk)
        co_await core.execTime(walk);

    for (;;) {
        // Serialise with any fault in flight on this page, from any
        // kernel (the directory replicas order requests).
        while (pi.outstanding) {
            core.pinActive();
            co_await pi.settled->wait();
            core.unpinActive();
        }
        if (pi.owner == k)
            co_return;

        stats_[k].faults.inc();
        pi.outstanding = true;
        pi.requester = k;

        const sim::Time t0 = soc_.engine().now();
        co_await core.execTime(costs_[k].faultEntry);
        const sim::Time t1 = soc_.engine().now();
        co_await core.execTime(costs_[k].protocolExec);
        const sim::Time t2 = soc_.engine().now();

        // Directory lookup gives the current owner; request it
        // directly (no broadcast).
        messages_.inc();
        kernels_[k]->sendMail(
            kernels_[pi.owner]->domainId(),
            encodeMessage(MsgType::GetExclusive, page & kPayloadMask,
                          seq_++ & kSeqMask));

        pi.grant->reset();
        pi.grantArrived = false;
        core.pinActive();
        if (retry_.timeout == 0) {
            co_await pi.grant->wait();
        } else {
            // Same shape as Dsm's fault-timeout retry, with one
            // N-domain twist: the resend re-reads pi.owner, so a fault
            // stranded on a crashed owner redirects to wherever
            // reclaimFrom moved the page.
            sim::Duration rto = retry_.timeout;
            while (!pi.grantArrived) {
                bool timer_fired = false;
                sim::Event *grant = pi.grant.get();
                sim::EventId timer = soc_.engine().after(
                    rto, [grant, &timer_fired]() {
                        timer_fired = true;
                        grant->pulse();
                    });
                co_await pi.grant->wait();
                soc_.engine().cancel(timer);
                if (pi.grantArrived)
                    break;
                if (!timer_fired)
                    continue; // Woken by an unrelated pulse; re-wait.
                retries_.inc();
                messages_.inc();
                K2_TRACE(soc_.engine(), sim::TraceCat::Dsm,
                         "%s retries Get for N-DSM page %llu",
                         kernels_[k]->name().c_str(),
                         static_cast<unsigned long long>(page));
                kernels_[k]->sendMail(
                    kernels_[pi.owner]->domainId(),
                    encodeMessage(MsgType::GetExclusive,
                                  page & kPayloadMask,
                                  seq_++ & kSeqMask));
                rto = std::min(rto * 2, retry_.maxTimeout);
            }
        }
        core.unpinActive();
        const sim::Time t3 = soc_.engine().now();

        co_await core.execTime(costs_[k].exitRefill +
                               mmus_[k]->protectionUpdate(page));
        const sim::Time t4 = soc_.engine().now();

        pi.owner = k;
        pi.outstanding = false;
        pi.settled->pulse();
        samplePhases(k, t0, t1, t2, t3, t4, pi.lastServiceTime);
        co_return;
    }
}

sim::Task<void>
NDsm::spinForGrant(PageInfo &pi, std::size_t k, soc::Core &core,
                   std::uint64_t page, std::uint32_t resend_payload)
{
    pi.grant->reset();
    pi.grantArrived = false;
    core.pinActive();
    if (retry_.timeout == 0) {
        co_await pi.grant->wait();
    } else {
        sim::Duration rto = retry_.timeout;
        while (!pi.grantArrived) {
            bool timer_fired = false;
            sim::Event *grant = pi.grant.get();
            sim::EventId timer = soc_.engine().after(
                rto, [grant, &timer_fired]() {
                    timer_fired = true;
                    grant->pulse();
                });
            co_await pi.grant->wait();
            soc_.engine().cancel(timer);
            if (pi.grantArrived)
                break;
            if (!timer_fired)
                continue; // Woken by an unrelated pulse; re-wait.
            retries_.inc();
            K2_TRACE(soc_.engine(), sim::TraceCat::Dsm,
                     "%s retries request for N-DSM page %llu",
                     kernels_[k]->name().c_str(),
                     static_cast<unsigned long long>(page));
            if (kind_ == ProtocolKind::Rac) {
                // Re-read the writer: a reclaim may have moved the
                // page (possibly to us) since the original Acq.
                const std::size_t w = rac_->writerOf(page);
                if (w == k)
                    break;
                messages_.inc();
                kernels_[k]->sendMail(
                    kernels_[w]->domainId(),
                    encodeMessage(MsgType::GetExclusive,
                                  resend_payload, seq_++ & kSeqMask));
            } else if (k == 0) {
                // The home re-runs its own directory transaction
                // (duplicate-suppressed if still active).
                soc_.engine().spawn(dirService(
                    0, page,
                    coherence::opOf(resend_payload) ==
                        static_cast<std::uint32_t>(ReqOp::GetX),
                    false));
            } else {
                messages_.inc();
                kernels_[k]->sendMail(
                    kernels_[0]->domainId(),
                    encodeMessage(MsgType::GetExclusive,
                                  resend_payload, seq_++ & kSeqMask));
            }
            rto = std::min(rto * 2, retry_.maxTimeout);
        }
    }
    core.unpinActive();
}

// ---------------------------------------------------------------------
// Directory modes (MSI / MESI / MOESI; home on kernel 0).
// ---------------------------------------------------------------------

sim::Task<void>
NDsm::accessDir(std::size_t k, soc::Core &core, std::uint64_t page,
                Access rw)
{
    PageInfo &pi = info(page);

    const sim::Duration walk =
        mmus_[k]->translate(page, soc::MapGrain::Page4K);
    if (walk)
        co_await core.execTime(walk);

    for (;;) {
        // One transaction per page at a time (the home serialises; the
        // simulator-side wait models the directory's request queue).
        while (pi.outstanding) {
            core.pinActive();
            co_await pi.settled->wait();
            core.unpinActive();
        }
        const bool valid = rw == Access::Write
            ? dir_->writeValid(k, page)
            : dir_->readValid(k, page);
        if (valid)
            co_return;

        stats_[k].faults.inc();
        K2_TRACE(soc_.engine(), sim::TraceCat::Dsm,
                 "%s faults on N-DSM page %llu (%s)",
                 kernels_[k]->name().c_str(),
                 static_cast<unsigned long long>(page),
                 rw == Access::Write ? "W" : "R");
        pi.outstanding = true;
        pi.requester = k;
        pi.lastServiceTime = 0;

        const sim::Time t0 = soc_.engine().now();
        // Read-sharing protocols track reads, so weak kernels pay the
        // cascaded-MMU read-tracking penalty on every fault (§6.3).
        sim::Duration entry = costs_[k].faultEntry;
        if (weak_[k])
            entry += mmus_[k]->readTrackPenalty();
        co_await core.execTime(entry);
        const sim::Time t1 = soc_.engine().now();
        co_await core.execTime(costs_[k].protocolExec);
        const sim::Time t2 = soc_.engine().now();

        const std::uint32_t payload = packOp(
            rw == Access::Write ? ReqOp::GetX : ReqOp::GetS, page);
        if (k == 0) {
            // The home faulting on itself: run the directory
            // transaction locally, no mail.
            soc_.engine().spawn(
                dirService(0, page, rw == Access::Write, false));
        } else {
            messages_.inc();
            kernels_[k]->sendMail(
                kernels_[0]->domainId(),
                encodeMessage(MsgType::GetExclusive, payload,
                              seq_++ & kSeqMask));
        }

        co_await spinForGrant(pi, k, core, page, payload);
        const sim::Time t3 = soc_.engine().now();

        co_await core.execTime(costs_[k].exitRefill +
                               mmus_[k]->protectionUpdate(page));
        const sim::Time t4 = soc_.engine().now();

        pi.outstanding = false;
        pi.settled->pulse();
        samplePhases(k, t0, t1, t2, t3, t4, pi.lastServiceTime);

        // The home applied the transition before granting; a stale
        // grant (from a retried transaction) fails this check and the
        // fault retries.
        const bool done = rw == Access::Write
            ? dir_->writeValid(k, page)
            : dir_->readValid(k, page);
        if (done)
            co_return;
    }
}

sim::Task<void>
NDsm::dirService(std::size_t req, std::uint64_t page, bool write,
                 bool via_mail)
{
    PageInfo &pi = info(page);

    // The strong home kernel handles directory requests in a bottom
    // half (its own faults skip the mailbox).
    if (via_mail)
        co_await soc_.engine().sleep(soc_.costs().mailboxOneWay);

    Directory::Entry &e = dir_->entry(page);
    if (e.reqActive)
        co_return; // Duplicate of the transaction already in flight.
    e.reqActive = true;
    e.reqWrite = write;
    e.requester = static_cast<std::uint32_t>(req);
    e.serviceStart = soc_.engine().now();

    soc::Core *core = pickCore(0);
    if (!core->awake())
        co_await core->ensureAwake();
    // Directory lookup in the home's coherent memory.
    co_await core->execTime(costs_[0].serviceBase +
                            soc_.costs().busAccess);

    if (!write) {
        if (e.dirty && e.owner != req && e.owner != 0) {
            // 3-hop read: the dirty owner forwards (MOESI) or writes
            // back (MSI/MESI) and grants straight to the requester.
            messages_.inc();
            kernels_[0]->sendMail(
                kernels_[e.owner]->domainId(),
                encodeMessage(MsgType::GetExclusive,
                              packOp(ReqOp::Fwd, page),
                              seq_++ & kSeqMask));
            co_return; // fwdService closes the transaction.
        }
        if (e.dirty && e.owner == 0 && req != 0) {
            // The home itself holds the dirty copy.
            soc::CoherenceDomain &dom = kernels_[0]->domain();
            if (kind_ == ProtocolKind::Moesi) {
                dir_->forwardsCounter().inc();
                co_await core->execTime(
                    dom.flushTime(soc_.pageBytes()) / 2);
            } else {
                dir_->writebacksCounter().inc();
                co_await core->execTime(dom.flushTime(soc_.pageBytes()));
                e.dirty = false;
            }
        }
        e.sharers |= Directory::bit(req);
        if (e.sharers == Directory::bit(req)) {
            // Sole copy: clean-exclusive (E under MESI/MOESI).
            e.owner = static_cast<std::uint32_t>(req);
            e.dirty = false;
        }
        const RepOp op = (e.sharers == Directory::bit(req) &&
                          kind_ != ProtocolKind::ThreeState)
            ? RepOp::GrantE
            : RepOp::GrantS;
        e.reqActive = false;
        pi.lastServiceTime = soc_.engine().now() - e.serviceStart;
        grantTo(0, req, page, op);
        co_return;
    }

    // Write: invalidate every other holder, then grant exclusivity.
    std::uint32_t targets =
        (e.sharers | Directory::bit(e.owner)) & ~Directory::bit(req);
    if ((targets & 1u) != 0) {
        // The home's own copy is invalidated inline.
        sim::Duration c = mmus_[0]->protectionUpdate(page);
        if (e.dirty && e.owner == 0) {
            dir_->writebacksCounter().inc();
            c += kernels_[0]->domain().flushTime(soc_.pageBytes());
        }
        dir_->invalidationsCounter().inc();
        co_await core->execTime(c);
        e.sharers &= ~1u;
        targets &= ~1u;
    }
    if (targets == 0) {
        dir_->finishWrite(e, req);
        pi.lastServiceTime = soc_.engine().now() - e.serviceStart;
        grantTo(0, req, page, RepOp::GrantX);
        co_return;
    }
    e.ackWait = targets;
    for (std::size_t t = 1; t < kernels_.size(); ++t) {
        if ((targets & Directory::bit(t)) == 0)
            continue;
        dir_->invalidationsCounter().inc();
        messages_.inc();
        kernels_[0]->sendMail(
            kernels_[t]->domainId(),
            encodeMessage(MsgType::GetExclusive,
                          packOp(ReqOp::Inv, page), seq_++ & kSeqMask));
    }
    // The InvAcks close the transaction (see handleMail).
}

sim::Task<void>
NDsm::invService(std::size_t target, std::uint64_t page)
{
    Directory::Entry &e = dir_->entry(page);

    soc::Core *core = pickCore(target);
    if (!core->awake())
        co_await core->ensureAwake();

    const bool dirty_owner = e.dirty && e.owner == target;
    sim::Duration c = costs_[target].serviceBase +
                      mmus_[target]->protectionUpdate(page);
    if (dirty_owner) {
        dir_->writebacksCounter().inc();
        c += kernels_[target]->domain().flushTime(soc_.pageBytes());
    }
    co_await core->execTime(c);

    e.sharers &= ~Directory::bit(target);
    if (dirty_owner)
        e.dirty = false;
    messages_.inc();
    kernels_[target]->sendMail(
        kernels_[0]->domainId(),
        encodeMessage(MsgType::PutExclusive,
                      packOp(RepOp::InvAck, page), seq_++ & kSeqMask));
}

sim::Task<void>
NDsm::fwdService(std::size_t owner, std::uint64_t page)
{
    PageInfo &pi = info(page);
    Directory::Entry &e = dir_->entry(page);

    soc::Core *core = pickCore(owner);
    if (!core->awake())
        co_await core->ensureAwake();

    soc::CoherenceDomain &dom = kernels_[owner]->domain();
    sim::Duration c = costs_[owner].serviceBase;
    if (kind_ == ProtocolKind::Moesi) {
        // Owned-dirty: forward cache-to-cache through the coherent
        // region at half the flush cost; no memory writeback.
        dir_->forwardsCounter().inc();
        c += dom.flushTime(soc_.pageBytes()) / 2;
    } else {
        dir_->writebacksCounter().inc();
        c += dom.flushTime(soc_.pageBytes());
    }
    co_await core->execTime(c);

    if (kind_ != ProtocolKind::Moesi)
        e.dirty = false; // MSI/MESI write back and downgrade to S.
    const std::size_t req = e.requester;
    e.sharers |= Directory::bit(req);
    e.reqActive = false;
    pi.lastServiceTime = soc_.engine().now() - e.serviceStart;
    grantTo(owner, req, page, RepOp::GrantS);
}

void
NDsm::grantTo(std::size_t grantor, std::size_t req, std::uint64_t page,
              RepOp op)
{
    PageInfo &pi = info(page);
    if (req == grantor) {
        // The grantor is the faulter (home transaction for kernel 0):
        // complete locally, no mail.
        pi.grantArrived = true;
        pi.grant->pulse();
        return;
    }
    messages_.inc();
    kernels_[grantor]->sendMail(
        kernels_[req]->domainId(),
        encodeMessage(MsgType::PutExclusive, packOp(op, page),
                      seq_++ & kSeqMask));
}

// ---------------------------------------------------------------------
// Release-acquire (RAC) mode.
// ---------------------------------------------------------------------

sim::Task<void>
NDsm::accessRac(std::size_t k, soc::Core &core, std::uint64_t page,
                Access rw)
{
    PageInfo &pi = info(page);

    // No demotion under release-acquire: invalidation is line-grain
    // via the logs, so the mapping stays at section grain.
    const sim::Duration walk =
        mmus_[k]->translate(page, soc::MapGrain::Section1M);
    if (walk)
        co_await core.execTime(walk);

    for (;;) {
        while (pi.outstanding) {
            core.pinActive();
            co_await pi.settled->wait();
            core.unpinActive();
        }
        const bool valid = rw == Access::Write
            ? rac_->isWriter(k, page)
            : rac_->readFresh(k, page);
        if (valid) {
            if (rw == Access::Write) {
                // Owner write: log the modified lines through the
                // coherent region.
                rac_->append(k, page);
                co_await core.execTime(soc_.costs().busAccess);
            }
            co_return;
        }

        stats_[k].faults.inc();
        K2_TRACE(soc_.engine(), sim::TraceCat::Dsm,
                 "%s acquires N-DSM page %llu (%s)",
                 kernels_[k]->name().c_str(),
                 static_cast<unsigned long long>(page),
                 rw == Access::Write ? "W" : "R");
        pi.outstanding = true;
        pi.requester = k;
        pi.lastServiceTime = 0;

        // No read-tracking penalty: invalidation is push-based.
        const sim::Time t0 = soc_.engine().now();
        co_await core.execTime(costs_[k].faultEntry);
        const sim::Time t1 = soc_.engine().now();
        co_await core.execTime(costs_[k].protocolExec);
        const sim::Time t2 = soc_.engine().now();

        const std::uint32_t payload = packOp(ReqOp::Acq, page);
        const std::size_t w = rac_->writerOf(page);
        messages_.inc();
        kernels_[k]->sendMail(
            kernels_[w]->domainId(),
            encodeMessage(MsgType::GetExclusive, payload,
                          seq_++ & kSeqMask));

        co_await spinForGrant(pi, k, core, page, payload);
        const sim::Time t3 = soc_.engine().now();

        // Drain every peer log with pending entries: invalidate the
        // listed lines locally and merge the writers' clocks. One
        // acquire freshens the whole backlog, not just this page.
        for (std::size_t w2 = 0; w2 < kernels_.size(); ++w2) {
            if (w2 == k)
                continue;
            const std::uint32_t pend = rac_->pendingLines(k, w2);
            if (pend == 0)
                continue;
            rac_->drain(k, w2);
            co_await core.execTime(pend *
                                   coherence::kRacLineInvalidate);
        }

        sim::Duration exit = costs_[k].exitRefill;
        if (rw == Access::Write)
            exit += mmus_[k]->protectionUpdate(page);
        co_await core.execTime(exit);
        const sim::Time t4 = soc_.engine().now();

        if (rw == Access::Write)
            rac_->takeOwnership(k, page);
        pi.outstanding = false;
        pi.settled->pulse();
        samplePhases(k, t0, t1, t2, t3, t4, pi.lastServiceTime);

        if (rw == Access::Write)
            co_return; // Ownership taken; the write is logged.
        if (rac_->readFresh(k, page))
            co_return;
        // The writer released again while we drained; re-acquire.
    }
}

sim::Task<void>
NDsm::racService(std::size_t writer, std::size_t req,
                 std::uint64_t page)
{
    PageInfo &pi = info(page);

    // The strong kernel's cache agent runs as a bottom half.
    if (writer == 0)
        co_await soc_.engine().sleep(soc_.costs().mailboxOneWay);

    soc::Core *core = pickCore(writer);
    if (!core->awake())
        co_await core->ensureAwake();

    // Release: flush the page's dirty lines through the coherent
    // region so the acquirer's drain observes them.
    const sim::Time t0 = soc_.engine().now();
    co_await core->execTime(
        costs_[writer].serviceBase +
        kernels_[writer]->domain().flushTime(soc_.pageBytes()));
    pi.lastServiceTime = soc_.engine().now() - t0;

    messages_.inc();
    kernels_[writer]->sendMail(
        kernels_[req]->domainId(),
        encodeMessage(MsgType::PutExclusive,
                      packOp(RepOp::GrantX, page), seq_++ & kSeqMask));
}

// ---------------------------------------------------------------------
// Recovery, metrics, mail dispatch, snapshots.
// ---------------------------------------------------------------------

std::vector<std::uint64_t>
NDsm::reclaimFrom(std::size_t dead, std::size_t to)
{
    K2_ASSERT(dead < kernels_.size() && to < kernels_.size());
    K2_ASSERT(dead != to);

    if (kind_ == ProtocolKind::Rac) {
        std::vector<std::uint64_t> moved = rac_->reclaim(dead, to);
        // The inheritor's own stranded acquires complete locally; any
        // other requester self-heals through the retry path (the
        // resend re-reads the writer).
        std::vector<std::uint64_t> keys;
        keys.reserve(pages_.size());
        for (const auto &kv : pages_)
            keys.push_back(kv.first);
        std::sort(keys.begin(), keys.end());
        for (std::uint64_t key : keys) {
            PageInfo &pi = *pages_.at(key);
            if (pi.outstanding && pi.requester == to &&
                !pi.grantArrived) {
                pi.grantArrived = true;
                pi.grant->pulse();
            }
        }
        return moved;
    }

    if (kind_ != ProtocolKind::TwoState) {
        // Directory: scrub the dead domain from every entry and wake
        // the requesters of transactions that were stalled only on it.
        std::vector<std::uint64_t> completed;
        std::vector<std::uint64_t> moved =
            dir_->reclaim(dead, to, completed);
        for (std::uint64_t page : completed) {
            auto it = pages_.find(page);
            if (it == pages_.end())
                continue;
            PageInfo &pi = *it->second;
            if (pi.outstanding && !pi.grantArrived) {
                pi.grantArrived = true;
                pi.grant->pulse();
            }
        }
        return moved;
    }

    // Ascending page order for deterministic reclaim traffic.
    std::vector<std::uint64_t> keys;
    keys.reserve(pages_.size());
    for (const auto &kv : pages_)
        keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());

    std::vector<std::uint64_t> moved;
    for (std::uint64_t key : keys) {
        PageInfo &pi = *pages_.at(key);
        if (pi.owner != dead)
            continue;
        pi.owner = to;
        moved.push_back(key);
        // A fault by the inheritor itself, stranded waiting on the
        // dead owner, completes locally (as in Dsm::reclaimAll).
        // Faults by *other* kernels self-heal through the retry path:
        // the resend re-reads the directory and reaches @p to.
        if (pi.outstanding && pi.requester == to && !pi.grantArrived) {
            pi.grantArrived = true;
            pi.grant->pulse();
        }
    }
    return moved;
}

void
NDsm::registerMetrics(obs::MetricsRegistry &reg,
                      const std::string &prefix)
{
    reg.addCounter(prefix + ".messages", messages_);
    // Only present when the recovery layer enabled retries, so
    // zero-fault metric snapshots keep their exact key set.
    if (retry_.timeout != 0)
        reg.addCounter(prefix + ".retries", retries_);
    for (std::size_t k = 0; k < kernels_.size(); ++k) {
        const std::string kp = prefix + "." + kernels_[k]->name();
        reg.addCounter(kp + ".faults", stats_[k].faults);
        reg.addAccumulator(kp + ".total_us", stats_[k].totalUs);
    }
    if (kind_ == ProtocolKind::TwoState)
        return; // Legacy key set, exactly.
    for (std::size_t k = 0; k < kernels_.size(); ++k) {
        const std::string kp = prefix + "." + kernels_[k]->name();
        reg.addAccumulator(kp + ".fault_entry_us", stats_[k].entryUs);
        reg.addAccumulator(kp + ".protocol_us", stats_[k].protocolUs);
        reg.addAccumulator(kp + ".comm_us", stats_[k].commUs);
        reg.addAccumulator(kp + ".service_us", stats_[k].serviceUs);
        reg.addAccumulator(kp + ".exit_us", stats_[k].exitUs);
    }
    if (dir_)
        dir_->registerMetrics(reg, prefix);
    if (rac_)
        rac_->registerMetrics(reg, prefix);
}

sim::Task<void>
NDsm::serviceGet(std::size_t owner, std::size_t requester,
                 std::uint64_t page)
{
    PageInfo &pi = info(page);

    // The strong kernel defers to a bottom half.
    if (owner == 0)
        co_await soc_.engine().sleep(soc_.costs().mailboxOneWay);

    soc::CoherenceDomain &dom = kernels_[owner]->domain();
    soc::Core *core = &dom.core(0);
    for (std::size_t i = 0; i < dom.numCores(); ++i) {
        if (dom.core(i).state() == soc::PowerState::Idle) {
            core = &dom.core(i);
            break;
        }
    }
    if (!core->awake())
        co_await core->ensureAwake();

    const sim::Time t0 = soc_.engine().now();
    co_await core->execTime(costs_[owner].serviceBase +
                            dom.flushTime(soc_.pageBytes()) +
                            mmus_[owner]->protectionUpdate(page));
    pi.lastServiceTime = soc_.engine().now() - t0;

    messages_.inc();
    kernels_[owner]->sendMail(
        kernels_[requester]->domainId(),
        encodeMessage(MsgType::PutExclusive, page & kPayloadMask,
                      seq_++ & kSeqMask));
}

sim::Task<void>
NDsm::handleMail(std::size_t to_kernel, soc::Mail mail, soc::Core &core)
{
    const Message msg = decodeMessage(mail.word);
    // The Mail carries the sending domain; map it to a kernel index.
    std::size_t from_kernel = SIZE_MAX;
    for (std::size_t i = 0; i < kernels_.size(); ++i) {
        if (kernels_[i]->domainId() == mail.from)
            from_kernel = i;
    }
    K2_ASSERT(from_kernel != SIZE_MAX);

    if (kind_ == ProtocolKind::TwoState) {
        const std::uint64_t page = msg.payload;
        switch (msg.type) {
          case MsgType::GetExclusive:
            soc_.engine().spawn(
                serviceGet(to_kernel, from_kernel, page));
            co_return;
          case MsgType::PutExclusive: {
            co_await core.execTime(soc_.costs().busAccess);
            PageInfo &pi = info(page);
            pi.grantArrived = true;
            pi.grant->pulse();
            co_return;
          }
          default:
            K2_PANIC("NDsm received unexpected message type %u",
                     static_cast<unsigned>(msg.type));
        }
    }

    const std::uint64_t page = pageOf(msg.payload);
    const std::uint32_t op = coherence::opOf(msg.payload);
    if (msg.type == MsgType::GetExclusive) {
        if (kind_ == ProtocolKind::Rac) {
            K2_ASSERT(op == static_cast<std::uint32_t>(ReqOp::Acq));
            soc_.engine().spawn(
                racService(to_kernel, from_kernel, page));
            co_return;
        }
        switch (static_cast<ReqOp>(op)) {
          case ReqOp::GetS:
          case ReqOp::GetX:
            K2_ASSERT(to_kernel == 0); // Requests go to the home.
            soc_.engine().spawn(dirService(
                from_kernel, page,
                static_cast<ReqOp>(op) == ReqOp::GetX, true));
            co_return;
          case ReqOp::Inv:
            soc_.engine().spawn(invService(to_kernel, page));
            co_return;
          case ReqOp::Fwd:
            soc_.engine().spawn(fwdService(to_kernel, page));
            co_return;
          default:
            K2_PANIC("N-DSM directory received request op %u",
                     static_cast<unsigned>(op));
        }
    }
    if (msg.type != MsgType::PutExclusive)
        K2_PANIC("NDsm received unexpected message type %u",
                 static_cast<unsigned>(msg.type));

    co_await core.execTime(soc_.costs().busAccess);
    if (kind_ != ProtocolKind::Rac &&
        op == static_cast<std::uint32_t>(RepOp::InvAck)) {
        K2_ASSERT(to_kernel == 0);
        Directory::Entry &e = dir_->entry(page);
        e.ackWait &= ~Directory::bit(from_kernel);
        if (e.reqActive && e.reqWrite && e.ackWait == 0) {
            const std::size_t req = e.requester;
            dir_->finishWrite(e, req);
            PageInfo &pi = info(page);
            pi.lastServiceTime =
                soc_.engine().now() - e.serviceStart;
            grantTo(0, req, page, RepOp::GrantX);
        }
        co_return;
    }
    // A grant: wake the spinning requester.
    PageInfo &pi = info(page);
    pi.grantArrived = true;
    pi.grant->pulse();
    co_return;
}

void
NDsm::snapState(snap::Io &io)
{
    io.check(kernels_.size(), "NDsm::kernels");
    io.pod(seq_);
    io.pod(nextRegionPage_);
    io.pod(messages_);
    io.pod(retries_);
    for (auto &mmu : mmus_)
        mmu->snapState(io);
    for (Stats &st : stats_) {
        io.pod(st.faults);
        io.pod(st.totalUs);
        io.pod(st.entryUs);
        io.pod(st.protocolUs);
        io.pod(st.commUs);
        io.pod(st.serviceUs);
        io.pod(st.exitUs);
    }

    // Per-page directory state, in sorted page order. As in the
    // two-kernel DSM, the page map only grows; restore drops entries
    // instantiated after the capture point.
    std::vector<std::uint64_t> keys;
    keys.reserve(pages_.size());
    for (const auto &kv : pages_)
        keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());
    std::uint64_t n = io.count(keys.size());
    if (io.restoring()) {
        std::vector<std::uint64_t> snapKeys(
            static_cast<std::size_t>(n));
        for (auto &k : snapKeys)
            io.pod(k);
        for (std::uint64_t k : keys) {
            if (!std::binary_search(snapKeys.begin(), snapKeys.end(),
                                    k))
                pages_.erase(k);
        }
        keys = std::move(snapKeys);
    } else {
        for (std::uint64_t k : keys) {
            std::uint64_t v = k;
            io.pod(v);
        }
    }
    for (std::uint64_t k : keys) {
        auto it = pages_.find(k);
        if (it == pages_.end())
            K2_FATAL("snapshot restore: N-DSM page %llu missing",
                     static_cast<unsigned long long>(k));
        PageInfo &pi = *it->second;
        io.pod(pi.owner);
        io.pod(pi.outstanding);
        io.pod(pi.grantArrived);
        io.pod(pi.requester);
        pi.grant->snapState(io);
        pi.settled->snapState(io);
        io.pod(pi.lastServiceTime);
    }

    if (dir_)
        dir_->snapState(io);
    if (rac_)
        rac_->snapState(io);
}

} // namespace os
} // namespace k2
