/**
 * @file
 * 32-bit hardware-mail encoding used by K2 (paper §6.3).
 *
 * Each mail is one hardware mailbox word: 3 bits of message type, 20
 * bits of payload (a page frame number for coherence messages, a pid
 * for NightWatch messages, a block index for balloon coordination) and
 * 9 bits of sequence number. The mailbox hardware guarantees in-order
 * delivery; the sequence number lets the receiver assert it.
 */

#ifndef K2_OS_MESSAGES_H
#define K2_OS_MESSAGES_H

#include <cstddef>
#include <cstdint>

#include "sim/log.h"

namespace k2 {
namespace os {

/** Index of a kernel in K2's pair: 0 = main, 1 = shadow. */
using KernelIdx = std::size_t;

enum class MsgType : std::uint32_t
{
    FreeRemote = 0,     //!< Page free redirected to the allocating
                        //!< kernel (payload=pfn, seq=order).
    GetExclusive = 1,   //!< DSM: request page ownership (payload=page).
    PutExclusive = 2,   //!< DSM: grant page ownership (payload=page).
    SuspendNw = 3,      //!< NightWatch: gate a process (payload=pid).
    AckSuspendNw = 4,   //!< NightWatch: gating acknowledged.
    ResumeNw = 5,       //!< NightWatch: ungate a process (payload=pid).
    Control = 6,        //!< Rare control ops; subtype in the payload's
                        //!< top 4 bits (CtlOp), operand in the low 16.
    BalloonDone = 7,    //!< Meta mgr: inflate finished (payload=block).
};

/** Subtypes of MsgType::Control. */
enum class CtlOp : std::uint32_t
{
    BalloonGive = 0,  //!< Meta mgr: please inflate one block for me.
    MapCreate = 1,    //!< §6.1: peer created a temporary IO mapping.
    MapDestroy = 2,   //!< §6.1: peer destroyed a temporary IO mapping.
    MailAck = 3,      //!< Reliable-mail ack (operand = acked seq).
    Heartbeat = 4,    //!< Watchdog liveness probe (operand = nonce).
    HeartbeatAck = 5, //!< Watchdog probe reply (operand = nonce).
    ReplicaReq = 6,   //!< Replica group: shadowed-request fan-out
                      //!< (operand = vote nonce). ARQ-tracked.
    ReplicaRep = 7,   //!< Replica group: reply digest (operand =
                      //!< digest, mail seq = vote nonce). Untracked:
                      //!< a lost reply is an absent vote.
    Election = 8,     //!< Bully election challenge to a lower-index
                      //!< survivor (operand = term).
    ElectionOk = 9,   //!< Election challenge accepted (operand = term).
    Coordinator = 10, //!< New-leader announcement (operand = leader
                      //!< index << 12 | term).
};

/** Pack a Control payload from subtype and 16-bit operand. */
inline std::uint32_t
encodeCtl(CtlOp op, std::uint32_t operand)
{
    K2_ASSERT(operand <= 0xFFFF);
    return (static_cast<std::uint32_t>(op) << 16) | operand;
}

/** Subtype of a Control payload. */
inline CtlOp
ctlOp(std::uint32_t payload)
{
    return static_cast<CtlOp>(payload >> 16);
}

/** Operand of a Control payload. */
inline std::uint32_t
ctlOperand(std::uint32_t payload)
{
    return payload & 0xFFFF;
}

/** A decoded mail. */
struct Message
{
    MsgType type;
    std::uint32_t payload; //!< 20 bits.
    std::uint32_t seq;     //!< 9 bits.
};

inline constexpr std::uint32_t kPayloadBits = 20;
inline constexpr std::uint32_t kSeqBits = 9;
inline constexpr std::uint32_t kPayloadMask = (1u << kPayloadBits) - 1;
inline constexpr std::uint32_t kSeqMask = (1u << kSeqBits) - 1;

/** Pack a message into a mailbox word. */
inline std::uint32_t
encodeMessage(MsgType type, std::uint32_t payload, std::uint32_t seq)
{
    K2_ASSERT(payload <= kPayloadMask);
    return (static_cast<std::uint32_t>(type) << (kPayloadBits + kSeqBits)) |
           ((payload & kPayloadMask) << kSeqBits) | (seq & kSeqMask);
}

/** Unpack a mailbox word. */
inline Message
decodeMessage(std::uint32_t word)
{
    Message m;
    m.type = static_cast<MsgType>(word >> (kPayloadBits + kSeqBits));
    m.payload = (word >> kSeqBits) & kPayloadMask;
    m.seq = word & kSeqMask;
    return m;
}

} // namespace os
} // namespace k2

#endif // K2_OS_MESSAGES_H
