/**
 * @file
 * Shadow-kernel watchdog: crash detection and recovery.
 *
 * The weak domain can crash (fault plane: `domain.crash`), silently
 * dropping all its mail and interrupt traffic. K2 notices through the
 * reliable-mail shim: when a main->shadow channel has retransmitted a
 * few times without an ack, it raises suspicion here. The watchdog
 * then probes with explicit heartbeats (Control/Heartbeat, answered by
 * the shadow's ISR with Control/HeartbeatAck); after missThreshold
 * consecutive silent periods it declares the shadow dead and recovers:
 *
 *  1. degrade: pin shared IO interrupts to the strong domain and serve
 *     new "shadowed" spawns on the main kernel (main-domain energy
 *     cost) while the shadow is down;
 *  2. re-own: take exclusive DSM ownership of every page
 *     (Dsm::reclaimAll), completing main-side faults stranded waiting
 *     on grants from the dead kernel;
 *  3. restart: after the configured restart latency, revive the
 *     domain, reset its interrupt controller, and replay the shadow
 *     kernel's recorded IRQ registrations (its device/service setup);
 *  4. resume: lift degraded routing and re-apply interrupt masks.
 *
 * Detection latency (crash onset -> declared) and downtime are sampled
 * into os.recovery.* metrics; every action is charged simulated
 * time/energy on the acting core.
 */

#ifndef K2_OS_WATCHDOG_H
#define K2_OS_WATCHDOG_H

#include <cstdint>
#include <string>

#include "kern/kernel.h"
#include "os/dsm.h"
#include "os/irq_router.h"
#include "os/messages.h"
#include "sim/stats.h"

namespace k2 {

namespace obs {
class MetricsRegistry;
}
namespace fault {
class FaultInjector;
}

namespace os {

class Watchdog
{
  public:
    struct Config
    {
        sim::Duration period = sim::msec(2);       //!< Probe interval.
        std::uint32_t missThreshold = 3;           //!< Silent probes.
        sim::Duration restartLatency = sim::msec(10); //!< Reboot time.
    };

    Watchdog(soc::Soc &soc, kern::Kernel &main, kern::Kernel &shadow,
             Dsm &dsm, IrqRouter &router, fault::FaultInjector *inj,
             Config cfg);

    /**
     * Raise suspicion that the shadow kernel is dead (the reliable-
     * mail shim's repeated-retransmit hook). Starts a heartbeat probe
     * loop unless one is already running or recovery is in progress.
     */
    void suspect();

    /** True while the shadow kernel is declared down. */
    bool shadowDown() const { return down_; }

    /** Handle a Heartbeat / HeartbeatAck control mail. */
    sim::Task<void> handleMail(KernelIdx to, Message msg,
                               soc::Core &core);

    /** Count a spawn served on the main kernel while degraded. */
    void noteDegradedSpawn() { degradedSpawns_.inc(); }

    /** @name Statistics. @{ */
    std::uint64_t crashesDetected() const { return crashes_.value(); }
    std::uint64_t restarts() const { return restarts_.value(); }
    std::uint64_t falseAlarms() const { return falseAlarms_.value(); }
    /** @} */

    /** Register stats under @p prefix (e.g. "os.recovery"). */
    void registerMetrics(obs::MetricsRegistry &reg,
                         const std::string &prefix) const;

    /**
     * Capture/restore. Quiescence requires no probe in flight (a probe
     * loop implies pending timer events) and the shadow kernel up.
     */
    void snapState(snap::Io &io);

  private:
    sim::Task<void> probeLoop();
    sim::Task<void> recover();

    soc::Soc &soc_;
    kern::Kernel &main_;
    kern::Kernel &shadow_;
    Dsm &dsm_;
    IrqRouter &router_;
    fault::FaultInjector *injector_;
    Config cfg_;
    sim::TrackId track_{};
    bool probing_ = false;
    bool down_ = false;
    bool ackSeen_ = false;
    std::uint32_t nonce_ = 0;
    sim::Counter heartbeats_;
    sim::Counter heartbeatAcks_;
    sim::Counter suspicions_;
    sim::Counter falseAlarms_;
    sim::Counter crashes_;
    sim::Counter restarts_;
    sim::Counter pagesReclaimed_;
    sim::Counter servicesReplayed_;
    sim::Counter degradedSpawns_;
    sim::Histogram detectUs_;
    sim::Histogram downUs_;
};

} // namespace os
} // namespace k2

#endif // K2_OS_WATCHDOG_H
