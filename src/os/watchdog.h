/**
 * @file
 * Shadow-kernel watchdog: crash detection and recovery.
 *
 * A weak domain can crash (fault plane: `domain.crash`), silently
 * dropping all its mail and interrupt traffic. K2 notices through the
 * reliable-mail shim: when a channel touching a shadow kernel has
 * retransmitted a few times without an ack, it raises suspicion here.
 * The watchdog then probes that replica with explicit heartbeats
 * (Control/Heartbeat, answered by the shadow's ISR with
 * Control/HeartbeatAck); after missThreshold consecutive silent
 * periods it declares the replica dead and recovers:
 *
 *  1. degrade: pin shared IO interrupts to the strong domain and serve
 *     new "shadowed" spawns on the main kernel (main-domain energy
 *     cost) while the shadow is down. With a ReplicaGroup attached
 *     this step is delegated: the group elects a new leader among the
 *     surviving replicas and degrades only if quorum is lost;
 *  2. re-own: take exclusive DSM ownership of every page
 *     (Dsm::reclaimAll), completing main-side faults stranded waiting
 *     on grants from the dead kernel (group mode: the new leader
 *     inherits the dead replica's pages instead);
 *  3. restart: after the configured restart latency, revive the
 *     domain, reset its interrupt controller, and replay the shadow
 *     kernel's recorded IRQ registrations (its device/service setup);
 *  4. resume: lift degraded routing and re-apply interrupt masks
 *     (group mode: rejoin the replica and lift degradation only once
 *     quorum is restored).
 *
 * Detection latency (crash onset -> declared) and downtime are sampled
 * into os.recovery.* metrics; every action is charged simulated
 * time/energy on the acting core. Each replica has its own probe loop
 * and down state, so concurrent crashes of different replicas recover
 * independently.
 */

#ifndef K2_OS_WATCHDOG_H
#define K2_OS_WATCHDOG_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "kern/kernel.h"
#include "os/dsm.h"
#include "os/irq_router.h"
#include "os/messages.h"
#include "sim/stats.h"

namespace k2 {

namespace obs {
class MetricsRegistry;
}
namespace fault {
class FaultInjector;
}

namespace os {

class ReplicaGroup;

class Watchdog
{
  public:
    struct Config
    {
        sim::Duration period = sim::msec(2);       //!< Probe interval.
        std::uint32_t missThreshold = 3;           //!< Silent probes.
        sim::Duration restartLatency = sim::msec(10); //!< Reboot time.
    };

    /**
     * @param shadows The watched weak-domain kernels, in replica order
     *                (replica r = kernel index r + 1).
     * @param dsm The two-kernel DSM to re-own pages on, or null when a
     *            ReplicaGroup handles page inheritance instead.
     */
    Watchdog(soc::Soc &soc, kern::Kernel &main,
             std::vector<kern::Kernel *> shadows, Dsm *dsm,
             IrqRouter &router, fault::FaultInjector *inj, Config cfg);

    /** Attach the replica group recovery is delegated to. */
    void setReplicaGroup(ReplicaGroup *g) { group_ = g; }

    /**
     * Raise suspicion that replica @p replica's kernel is dead (the
     * reliable-mail shim's repeated-retransmit hook). Starts a
     * heartbeat probe loop unless one is already running or recovery
     * is in progress.
     */
    void suspect(std::size_t replica);
    void suspect() { suspect(0); }

    /** True while the (first) shadow kernel is declared down. */
    bool shadowDown() const { return down_[0] != 0; }

    /** True while replica @p r's kernel is declared down. */
    bool replicaDown(std::size_t r) const { return down_.at(r) != 0; }

    /** Handle a Heartbeat / HeartbeatAck control mail. */
    sim::Task<void> handleMail(KernelIdx to, Message msg,
                               soc::Core &core);

    /** Count a spawn served on the main kernel while degraded. */
    void noteDegradedSpawn() { degradedSpawns_.inc(); }

    /** @name Statistics. @{ */
    std::uint64_t crashesDetected() const { return crashes_.value(); }
    std::uint64_t restarts() const { return restarts_.value(); }
    std::uint64_t falseAlarms() const { return falseAlarms_.value(); }
    /** @} */

    /** Register stats under @p prefix (e.g. "os.recovery"). */
    void registerMetrics(obs::MetricsRegistry &reg,
                         const std::string &prefix) const;

    /**
     * Capture/restore. Quiescence requires no probe in flight (a probe
     * loop implies pending timer events) and every shadow kernel up.
     */
    void snapState(snap::Io &io);

  private:
    sim::Task<void> probeLoop(std::size_t r);
    sim::Task<void> recover(std::size_t r);

    soc::Soc &soc_;
    kern::Kernel &main_;
    std::vector<kern::Kernel *> shadows_;
    Dsm *dsm_;
    IrqRouter &router_;
    fault::FaultInjector *injector_;
    ReplicaGroup *group_ = nullptr;
    Config cfg_;
    sim::TrackId track_{};
    std::vector<std::uint8_t> probing_;
    std::vector<std::uint8_t> down_;
    std::vector<std::uint8_t> ackSeen_;
    std::uint32_t nonce_ = 0;
    /** Outstanding probe nonces -> replica, for ack attribution. */
    std::map<std::uint32_t, std::size_t> probeOwner_;
    sim::Counter heartbeats_;
    sim::Counter heartbeatAcks_;
    sim::Counter suspicions_;
    sim::Counter falseAlarms_;
    sim::Counter crashes_;
    sim::Counter restarts_;
    sim::Counter pagesReclaimed_;
    sim::Counter servicesReplayed_;
    sim::Counter degradedSpawns_;
    sim::Histogram detectUs_;
    sim::Histogram downUs_;
};

} // namespace os
} // namespace k2

#endif // K2_OS_WATCHDOG_H
