/**
 * @file
 * Temporary IO mappings in the unified kernel address space (§6.1).
 *
 * "The OS may need temporary mappings for accessing IO memory. As
 * creations and destructions of such mappings are infrequent, K2
 * adopts a simple protocol between two kernels for propagating page
 * table updates from one to the other."
 *
 * A kernel that ioremaps a device region picks the next slot in the
 * shared temporary-mapping window (above the direct map, identical in
 * both kernels), installs its local page-table entries, and sends a
 * MapCreate control mail so the peer installs the same entries at the
 * same virtual address; destruction mirrors this. Propagation is
 * asynchronous -- the creator can use the mapping immediately; the
 * peer's view becomes consistent after the mail is processed.
 */

#ifndef K2_OS_IO_MAPPER_H
#define K2_OS_IO_MAPPER_H

#include <array>
#include <cstdint>
#include <map>

#include "sim/stats.h"
#include "sim/task.h"
#include "soc/soc.h"
#include "kern/kernel.h"
#include "kern/layout.h"
#include "os/messages.h"

namespace k2 {
namespace os {

class IoMapper
{
  public:
    /** Identifies one temporary mapping (16-bit mail operand). */
    using RegionId = std::uint16_t;

    IoMapper(soc::Soc &soc, std::array<kern::Kernel *, 2> kernels,
             const kern::AddressSpaceLayout &layout);

    /** Base virtual address of the temporary-mapping window. */
    std::uint64_t windowBase() const { return windowBase_; }

    /**
     * Map @p pages of IO memory from @p t's kernel.
     *
     * @return (region id, virtual address); the address is identical
     *         in both kernels once propagation completes.
     */
    sim::Task<std::pair<RegionId, std::uint64_t>>
    mapIo(kern::Thread &t, std::uint32_t pages);

    /** Destroy a mapping (from either kernel). */
    sim::Task<void> unmapIo(kern::Thread &t, RegionId id);

    /** True if @p kernel currently has @p id installed. */
    bool isMapped(KernelIdx kernel, RegionId id) const;

    /** Virtual address of a live mapping. */
    std::uint64_t vaddrOf(RegionId id) const;

    /** @name Statistics. @{ */
    sim::Counter maps;
    sim::Counter unmaps;
    sim::Counter propagations;
    /** @} */

    /** Mail dispatch (MapCreate / MapDestroy control ops). */
    sim::Task<void> handleMail(KernelIdx to, Message msg,
                               soc::Core &core);

    /**
     * Capture/restore. Mappings are plain data (no events), so the
     * table is rebuilt from the image rather than pruned.
     */
    void snapState(snap::Io &io);

  private:
    struct Mapping
    {
        std::uint64_t vaddr = 0;
        std::uint32_t pages = 0;
        std::array<bool, 2> installed{false, false};
    };

    /** Page-table install/remove cost on one kernel. */
    sim::Duration ptCost(KernelIdx k, std::uint32_t pages) const;

    soc::Soc &soc_;
    std::array<kern::Kernel *, 2> kernels_;
    std::uint64_t windowBase_;
    std::uint64_t nextVaddr_;
    RegionId nextId_ = 1;
    std::map<RegionId, Mapping> mappings_;
};

} // namespace os
} // namespace k2

#endif // K2_OS_IO_MAPPER_H
