/**
 * @file
 * The meta-level memory manager (paper §6.2).
 *
 * Decides *when* page blocks move between K2 and the kernels; the
 * balloon drivers are the mechanism. Implemented, as in the paper, as
 * distributed probes: each kernel's page-allocator hooks monitor local
 * memory pressure; a per-kernel background thread (kmetad) reacts by
 * deflating K2-owned blocks into the kernel, or -- when K2 owns no
 * spare blocks -- by asking the peer kernel (through a BalloonGive
 * hardware message) to inflate one back first.
 *
 * Placement policy: the main kernel's blocks grow from the low end of
 * the global region (right after its local region, maximising its
 * contiguous memory); the shadow kernel's from the high end. Inflation
 * proceeds in the reverse directions.
 */

#ifndef K2_OS_META_MANAGER_H
#define K2_OS_META_MANAGER_H

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "sim/stats.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "kern/kernel.h"
#include "kern/layout.h"
#include "os/balloon.h"
#include "os/messages.h"

namespace k2 {
namespace os {

class MetaLevelManager
{
  public:
    enum class BlockOwner : std::uint8_t { Meta, Main, Shadow };

    struct Config
    {
        /** Deflate a block into a kernel when its free pages drop
         *  below this. */
        std::uint64_t lowWatermarkPages = 1024;
        /** Hardware spinlock index guarding the block-owner table. */
        std::size_t spinlockIdx = 0;
    };

    /**
     * @param soc Platform.
     * @param kernels Main (0) and shadow (1) kernels.
     * @param global The global region from the address-space layout.
     */
    MetaLevelManager(soc::Soc &soc,
                     std::array<kern::Kernel *, 2> kernels,
                     kern::PageRange global);
    MetaLevelManager(soc::Soc &soc,
                     std::array<kern::Kernel *, 2> kernels,
                     kern::PageRange global, Config cfg);

    /** Blocks in the global region. */
    std::size_t numBlocks() const { return owners_.size(); }
    BlockOwner blockOwner(std::size_t idx) const { return owners_.at(idx); }
    kern::PageRange blockRange(std::size_t idx) const;

    std::uint64_t blocksOwnedBy(BlockOwner who) const;

    /**
     * Boot-time population: instantly hand @p count blocks to kernel
     * @p k (no simulated cost; this happens before time starts).
     */
    void bootstrapBlocks(KernelIdx k, std::size_t count);

    /** Install pressure probes and start the kmetad threads. */
    void start();

    /**
     * Pick and deflate one K2-owned block into kernel @p k's
     * allocator, from the policy end. Runs in @p t (of kernel k).
     *
     * @return The block index, or nullopt if K2 owns no blocks.
     */
    sim::Task<std::optional<std::size_t>> deflateOne(kern::Thread &t);

    /**
     * Inflate one block of @p t's kernel back to K2, from the policy
     * end. Tries successive blocks if evacuation fails.
     *
     * @return The block index, or nullopt if nothing reclaimable.
     */
    sim::Task<std::optional<std::size_t>> inflateOne(kern::Thread &t);

    /** Mail dispatch for BalloonGive / BalloonDone. */
    sim::Task<void> handleMail(KernelIdx to, Message msg, soc::Core &core);

    BalloonDriver &balloon(KernelIdx k) { return *balloons_[k]; }

    /** @name Statistics. @{ */
    sim::Counter pressureEvents;
    sim::Counter peerRequests;
    /** @} */

    /**
     * Capture/restore: the block-owner table, both balloon drivers,
     * the kmetad kick/peer-done events and pending-pressure flags.
     */
    void snapState(snap::Io &io);

  private:
    sim::Task<void> kmetad(KernelIdx k, kern::Thread &self);

    /** Next block to deflate into kernel @p k, per placement policy. */
    std::optional<std::size_t> pickMetaBlockFor(KernelIdx k) const;

    /** Next block kernel @p k should inflate, per placement policy. */
    std::optional<std::size_t> pickOwnedBlockOf(KernelIdx k,
                                                std::size_t skip) const;

    BlockOwner ownerEnum(KernelIdx k) const
    {
        return k == 0 ? BlockOwner::Main : BlockOwner::Shadow;
    }

    soc::Soc &soc_;
    std::array<kern::Kernel *, 2> kernels_;
    kern::PageRange global_;
    Config cfg_;
    std::vector<BlockOwner> owners_;
    std::array<std::unique_ptr<BalloonDriver>, 2> balloons_;
    std::array<std::unique_ptr<sim::Event>, 2> kick_;
    std::array<bool, 2> pressurePending_{false, false};
    std::array<std::unique_ptr<sim::Event>, 2> peerDone_;
    bool started_ = false;
};

} // namespace os
} // namespace k2

#endif // K2_OS_META_MANAGER_H
