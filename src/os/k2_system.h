/**
 * @file
 * K2System: the whole K2 OS assembled on the simulated SoC.
 *
 * Construction boots the platform end to end:
 *  - builds the SoC from the (default OMAP4) configuration;
 *  - lays out the unified kernel address space (Fig. 4): shadow local
 *    region, main local region, global region;
 *  - boots the main kernel on the strong domain and the shadow kernel
 *    on the weak domain;
 *  - creates the DSM, the balloon drivers + meta-level manager (which
 *    initially own the entire global region), the interrupt router,
 *    the NightWatch machinery and the cross-ISA dispatcher;
 *  - wires both kernels' mailbox receive paths to dispatch DSM /
 *    NightWatch / balloon / free-redirect messages.
 *
 * The result presents the single system image of os::SystemImage.
 */

#ifndef K2_OS_K2_SYSTEM_H
#define K2_OS_K2_SYSTEM_H

#include <memory>
#include <ostream>

#include "sim/engine.h"
#include "fault/plan.h"
#include "kern/layout.h"
#include "kern/service.h"
#include "os/cross_isa.h"
#include "os/dsm.h"
#include "os/io_mapper.h"
#include "os/irq_router.h"
#include "os/meta_manager.h"
#include "os/ndsm.h"
#include "os/nightwatch.h"
#include "os/reliable_mail.h"
#include "os/replica.h"
#include "os/system.h"
#include "os/watchdog.h"

namespace k2 {

namespace fault {
class FaultInjector;
}

namespace os {

struct K2Config
{
    soc::SocConfig soc = soc::omap4Config();
    Dsm::Protocol dsmProtocol = Dsm::Protocol::TwoState;
    Dsm::CostModel dsmCosts{};
    /** DSM page keys available to shadowed services. */
    std::uint64_t dsmPages = 65536;
    /** Page blocks handed to each kernel at boot. */
    std::size_t initialMainBlocks = 8;
    std::size_t initialShadowBlocks = 2;
    /** Local-region sizes in pages (rounded to 16 MB blocks). */
    std::uint64_t shadowLocalPages = 4096;  //!< 16 MB.
    std::uint64_t mainLocalPages = 12288;   //!< 48 MB.
    /**
     * Shadow-service replication degree. 1 (the default) is the
     * paper's two-kernel K2, byte-identical to a build without the
     * replica layer. N >= 2 boots the shadow kernel on N weak domains
     * (the weak domain spec is cloned for the extras), arms the
     * recovery plane, backs shared regions with the N-kernel DSM, and
     * routes shadowed requests through the ReplicaGroup: leader
     * serving, fan-out majority voting, bully re-election on crash.
     */
    std::size_t replicas = 1;
    MetaLevelManager::Config meta{};
    /**
     * Fault-injection schedule. An empty plan leaves the fault plane
     * and the recovery protocols entirely disarmed: no hooks, no extra
     * tracks or metrics -- the simulation is bit-identical to a build
     * without them.
     */
    fault::FaultPlan faults{};
    struct RecoveryConfig
    {
        /** Arm the recovery protocols even with an empty fault plan
         *  (for unit tests and overhead measurements). */
        bool force = false;
        ReliableMail::Config mail{};
        /** DSM grant-retry timeout; must exceed the loaded fault
         *  round-trip including the peer core's wake latency
         *  (~250 us worst case). */
        sim::Duration dsmRetryTimeout = sim::usec(500);
        sim::Duration dsmRetryMax = sim::msec(4);
        Watchdog::Config watchdog{};
        ReplicaGroup::Config replica{};
    };
    RecoveryConfig recovery{};
};

class K2System : public SystemImage
{
  public:
    explicit K2System(K2Config cfg = {});
    ~K2System() override;

    /** @name SystemImage interface. @{ */
    const char *modelName() const override { return "K2"; }
    soc::Soc &soc() override { return *soc_; }
    kern::Kernel &kernelAt(soc::DomainId domain) override;
    std::vector<kern::Kernel *> kernels() override;
    kern::Kernel &mainKernel() override { return *main_; }
    kern::Kernel &nightWatchKernel() override { return *shadow_; }
    std::unique_ptr<SharedRegion>
    createSharedRegion(std::string name, std::uint64_t pages) override;
    kern::Thread *spawnNormal(kern::Process &proc, std::string name,
                              kern::Thread::Body body) override;
    kern::Thread *spawnNightWatch(kern::Process &proc, std::string name,
                                  kern::Thread::Body body) override;
    sim::Task<kern::PageRange>
    allocPages(kern::Thread &t, unsigned order,
               kern::Migrate migrate = kern::Migrate::Movable) override;
    sim::Task<void> freePages(kern::Thread &t,
                              kern::PageRange range) override;
    sim::Task<void> chargeCrossIsa(kern::Kernel &kern, soc::Core &core,
                                   std::uint64_t n) override;
    void registerMetrics(obs::MetricsRegistry &reg) override;
    void snapState(snap::Io &io) override;
    /** @} */

    /** @name K2 components. @{ */
    sim::Engine &ownedEngine() { return engine_; }
    kern::Kernel &shadowKernel() { return *shadow_; }
    Dsm &dsm() { return *dsm_; }
    /** The N-kernel DSM backing shared regions when replicas >= 2
     *  (null otherwise; dsm() is unavailable in that mode). */
    NDsm *replicaDsm() { return ndsmR_.get(); }
    MetaLevelManager &meta() { return *meta_; }
    NightWatch &nightWatch() { return *nightWatch_; }
    IrqRouter &irqRouter() { return *irqRouter_; }
    CrossIsaDispatcher &crossIsa() { return *crossIsa_; }
    IoMapper &ioMapper() { return *ioMapper_; }
    const kern::AddressSpaceLayout &layout() const { return *layout_; }
    const kern::ServiceRegistry &services() const { return services_; }
    /** @} */

    /** @name Fault plane & recovery (null unless armed). @{ */
    bool recoveryArmed() const { return reliable_ != nullptr; }
    fault::FaultInjector *faultInjector() { return injector_.get(); }
    ReliableMail *reliableMail() { return reliable_.get(); }
    Watchdog *watchdog() { return watchdog_.get(); }
    ReplicaGroup *replicaGroup() { return group_.get(); }
    /** Configured replication degree (1 = unreplicated). */
    std::size_t replicas() const { return 1 + extras_.size(); }
    /** @} */

    /** Frees redirected to the peer kernel so far. */
    std::uint64_t remoteFrees() const { return remoteFrees_.value(); }

    /**
     * Render a human-readable snapshot of the whole OS -- kernels,
     * core power states, memory-block ownership, DSM and NightWatch
     * statistics -- for debugging and the examples.
     */
    void dumpState(std::ostream &os);

  private:
    sim::Task<void> dispatchMail(KernelIdx to, soc::Mail mail,
                                 soc::Core &core);
    kern::Kernel &kernelByIdx(KernelIdx k);

    K2Config cfg_;
    sim::Engine engine_;
    std::unique_ptr<fault::FaultInjector> injector_;
    std::unique_ptr<soc::Soc> soc_;
    std::unique_ptr<kern::AddressSpaceLayout> layout_;
    std::unique_ptr<kern::Kernel> main_;
    std::unique_ptr<kern::Kernel> shadow_;
    /** Shadow replicas 2..N on cloned weak domains (replicas >= 2). */
    std::vector<std::unique_ptr<kern::Kernel>> extras_;
    std::unique_ptr<Dsm> dsm_;
    std::unique_ptr<NDsm> ndsmR_;
    std::unique_ptr<MetaLevelManager> meta_;
    std::unique_ptr<NightWatch> nightWatch_;
    std::unique_ptr<IrqRouter> irqRouter_;
    std::unique_ptr<CrossIsaDispatcher> crossIsa_;
    std::unique_ptr<IoMapper> ioMapper_;
    std::unique_ptr<ReliableMail> reliable_;
    std::unique_ptr<Watchdog> watchdog_;
    std::unique_ptr<ReplicaGroup> group_;
    kern::ServiceRegistry services_;
    sim::Counter remoteFrees_;
};

} // namespace os
} // namespace k2

#endif // K2_OS_K2_SYSTEM_H
