#include "os/watchdog.h"

#include "fault/injector.h"
#include "obs/metrics.h"
#include "sim/log.h"
#include "snap/io.h"

namespace k2 {
namespace os {

Watchdog::Watchdog(soc::Soc &soc, kern::Kernel &main,
                   kern::Kernel &shadow, Dsm &dsm, IrqRouter &router,
                   fault::FaultInjector *inj, Config cfg)
    : soc_(soc), main_(main), shadow_(shadow), dsm_(dsm),
      router_(router), injector_(inj), cfg_(cfg)
{
    K2_ASSERT(cfg_.missThreshold >= 1);
    // Only exists when the fault plane is armed, so this track never
    // appears in zero-fault traces.
    track_ = soc_.engine().addTrack("os.recovery");
}

void
Watchdog::suspect()
{
    if (probing_ || down_)
        return;
    suspicions_.inc();
    probing_ = true;
    K2_TRACE(soc_.engine(), sim::TraceCat::Nw,
             "watchdog suspects shadow kernel; probing");
    soc_.engine().spanInstant(track_, "suspect");
    soc_.engine().spawn(probeLoop());
}

sim::Task<void>
Watchdog::probeLoop()
{
    std::uint32_t missed = 0;
    for (;;) {
        ackSeen_ = false;
        const std::uint32_t nonce = nonce_++ & 0xFFFF;
        heartbeats_.inc();
        // The probe is kernel work on the strong domain: wake a core,
        // charge the mailbox write, post the heartbeat.
        soc::Core &core = main_.domain().core(0);
        if (!core.awake())
            co_await core.ensureAwake();
        core.pinActive();
        co_await core.execTime(soc_.costs().busAccess);
        core.unpinActive();
        main_.sendMailRaw(
            shadow_.domainId(),
            encodeMessage(MsgType::Control,
                          encodeCtl(CtlOp::Heartbeat, nonce), 0));
        co_await soc_.engine().sleep(cfg_.period);
        if (ackSeen_) {
            falseAlarms_.inc();
            probing_ = false;
            K2_TRACE(soc_.engine(), sim::TraceCat::Nw,
                     "watchdog probe answered; false alarm");
            co_return;
        }
        if (++missed >= cfg_.missThreshold) {
            co_await recover();
            probing_ = false;
            co_return;
        }
    }
}

sim::Task<void>
Watchdog::recover()
{
    down_ = true;
    crashes_.inc();
    const sim::Time t0 = soc_.engine().now();
    if (injector_) {
        const sim::Time crashed_at =
            injector_->crashTime(shadow_.domainId());
        if (crashed_at != 0)
            detectUs_.sample(sim::toUsec(t0 - crashed_at));
    }
    K2_TRACE(soc_.engine(), sim::TraceCat::Nw,
             "watchdog declares shadow kernel dead; recovering");

    // 1. Degrade: shared IO interrupts pin to the strong domain and
    //    new shadowed spawns run on the main kernel until restart.
    router_.setDegraded(true);

    // 2. Re-own every DSM page, completing stranded main-side faults.
    //    Charged as main-kernel work proportional to the pages whose
    //    mappings are rewritten.
    const std::uint64_t reclaimed = dsm_.reclaimAll(0);
    pagesReclaimed_.inc(reclaimed);
    soc::Core &core = main_.domain().core(0);
    if (!core.awake())
        co_await core.ensureAwake();
    core.pinActive();
    co_await core.execTime(soc_.costs().busAccess * (1 + reclaimed));
    core.unpinActive();

    // 3. Restart the shadow kernel: reboot latency, then revive the
    //    domain, reset its interrupt controller and replay the
    //    kernel's recorded IRQ registrations (its shadowed-service
    //    device setup).
    co_await soc_.engine().sleep(cfg_.restartLatency);
    if (injector_)
        injector_->revive(shadow_.domainId());
    shadow_.domain().irqCtrl().reset();
    const std::size_t replayed = shadow_.replayIrqRegistrations();
    servicesReplayed_.inc(replayed);
    restarts_.inc();

    // 4. Resume normal routing. The replayed registrations unmasked
    //    every line on the shadow controller; re-applying the router's
    //    masks restores single-owner routing of the shared lines.
    router_.setDegraded(false);
    router_.reapplyMasks();

    down_ = false;
    downUs_.sample(sim::toUsec(soc_.engine().now() - t0));
    soc_.engine().spanComplete(t0, track_, "shadow_restart");
    K2_TRACE(soc_.engine(), sim::TraceCat::Nw,
             "shadow kernel restarted (%llu pages re-owned, %zu IRQ "
             "registrations replayed)",
             static_cast<unsigned long long>(reclaimed), replayed);
}

sim::Task<void>
Watchdog::handleMail(KernelIdx to, Message msg, soc::Core &core)
{
    K2_ASSERT(msg.type == MsgType::Control);
    const std::uint32_t nonce = ctlOperand(msg.payload);
    switch (ctlOp(msg.payload)) {
    case CtlOp::Heartbeat:
        // Shadow side: answer from the ISR.
        K2_ASSERT(to == 1);
        co_await core.execTime(soc_.costs().busAccess);
        shadow_.sendMailRaw(
            main_.domainId(),
            encodeMessage(MsgType::Control,
                          encodeCtl(CtlOp::HeartbeatAck, nonce), 0));
        co_return;
    case CtlOp::HeartbeatAck:
        K2_ASSERT(to == 0);
        heartbeatAcks_.inc();
        ackSeen_ = true;
        co_return;
    default:
        K2_PANIC("watchdog: unexpected control op in mail payload 0x%x",
                 msg.payload);
    }
}

void
Watchdog::registerMetrics(obs::MetricsRegistry &reg,
                          const std::string &prefix) const
{
    reg.addCounter(prefix + ".suspicions", suspicions_);
    reg.addCounter(prefix + ".heartbeats", heartbeats_);
    reg.addCounter(prefix + ".heartbeat_acks", heartbeatAcks_);
    reg.addCounter(prefix + ".false_alarms", falseAlarms_);
    reg.addCounter(prefix + ".crashes_detected", crashes_);
    reg.addCounter(prefix + ".restarts", restarts_);
    reg.addCounter(prefix + ".pages_reclaimed", pagesReclaimed_);
    reg.addCounter(prefix + ".services_replayed", servicesReplayed_);
    reg.addCounter(prefix + ".degraded_spawns", degradedSpawns_);
    reg.addHistogram(prefix + ".detect_us", detectUs_);
    reg.addHistogram(prefix + ".down_us", downUs_);
}

void
Watchdog::snapState(snap::Io &io)
{
    // A probe loop or recovery in flight would hold pending timer
    // events, contradicting engine quiescence.
    K2_ASSERT(!probing_);
    K2_ASSERT(!down_);
    io.check(track_, "Watchdog::track");
    io.pod(ackSeen_);
    io.pod(nonce_);
    io.pod(heartbeats_);
    io.pod(heartbeatAcks_);
    io.pod(suspicions_);
    io.pod(falseAlarms_);
    io.pod(crashes_);
    io.pod(restarts_);
    io.pod(pagesReclaimed_);
    io.pod(servicesReplayed_);
    io.pod(degradedSpawns_);
    io.pod(detectUs_);
    io.pod(downUs_);
}

} // namespace os
} // namespace k2
