#include "os/watchdog.h"


#include "fault/injector.h"
#include "obs/metrics.h"
#include "os/replica.h"
#include "sim/log.h"
#include "snap/io.h"

namespace k2 {
namespace os {

Watchdog::Watchdog(soc::Soc &soc, kern::Kernel &main,
                   std::vector<kern::Kernel *> shadows, Dsm *dsm,
                   IrqRouter &router, fault::FaultInjector *inj,
                   Config cfg)
    : soc_(soc), main_(main), shadows_(std::move(shadows)), dsm_(dsm),
      router_(router), injector_(inj), cfg_(cfg)
{
    K2_ASSERT(cfg_.missThreshold >= 1);
    K2_ASSERT(!shadows_.empty());
    probing_.assign(shadows_.size(), 0);
    down_.assign(shadows_.size(), 0);
    ackSeen_.assign(shadows_.size(), 0);
    // Only exists when the fault plane is armed, so this track never
    // appears in zero-fault traces.
    track_ = soc_.engine().addTrack("os.recovery");
}

void
Watchdog::suspect(std::size_t replica)
{
    if (replica >= shadows_.size())
        return;
    if (probing_[replica] || down_[replica])
        return;
    suspicions_.inc();
    probing_[replica] = 1;
    K2_TRACE(soc_.engine(), sim::TraceCat::Nw,
             "watchdog suspects kernel '%s'; probing",
             shadows_[replica]->name().c_str());
    soc_.engine().spanInstant(track_, "suspect");
    soc_.engine().spawn(probeLoop(replica));
}

sim::Task<void>
Watchdog::probeLoop(std::size_t r)
{
    std::uint32_t missed = 0;
    for (;;) {
        ackSeen_[r] = 0;
        const std::uint32_t nonce = nonce_++ & 0xFFFF;
        probeOwner_[nonce] = r;
        heartbeats_.inc();
        // The probe is kernel work on the strong domain: wake a core,
        // charge the mailbox write, post the heartbeat.
        soc::Core &core = main_.domain().core(0);
        if (!core.awake())
            co_await core.ensureAwake();
        core.pinActive();
        co_await core.execTime(soc_.costs().busAccess);
        core.unpinActive();
        main_.sendMailRaw(
            shadows_[r]->domainId(),
            encodeMessage(MsgType::Control,
                          encodeCtl(CtlOp::Heartbeat, nonce), 0));
        co_await soc_.engine().sleep(cfg_.period);
        probeOwner_.erase(nonce);
        if (ackSeen_[r]) {
            falseAlarms_.inc();
            probing_[r] = 0;
            K2_TRACE(soc_.engine(), sim::TraceCat::Nw,
                     "watchdog probe answered; false alarm");
            co_return;
        }
        if (++missed >= cfg_.missThreshold) {
            co_await recover(r);
            probing_[r] = 0;
            co_return;
        }
    }
}

sim::Task<void>
Watchdog::recover(std::size_t r)
{
    kern::Kernel &shadow = *shadows_[r];
    down_[r] = 1;
    crashes_.inc();
    const sim::Time t0 = soc_.engine().now();
    if (injector_) {
        const sim::Time crashed_at =
            injector_->crashTime(shadow.domainId());
        if (crashed_at != 0)
            detectUs_.sample(sim::toUsec(t0 - crashed_at));
    }
    K2_TRACE(soc_.engine(), sim::TraceCat::Nw,
             "watchdog declares kernel '%s' dead; recovering",
             shadow.name().c_str());

    if (group_) {
        // Replicated mode: the group elects a new leader, inherits the
        // dead replica's DSM pages, and degrades routing only if
        // quorum was lost.
        co_await group_->onReplicaDown(r);
    } else {
        // 1. Degrade: shared IO interrupts pin to the strong domain
        //    and new shadowed spawns run on the main kernel until
        //    restart.
        router_.setDegraded(true);

        // 2. Re-own every DSM page, completing stranded main-side
        //    faults. Charged as main-kernel work proportional to the
        //    pages whose mappings are rewritten.
        const std::uint64_t reclaimed = dsm_->reclaimAll(0);
        pagesReclaimed_.inc(reclaimed);
        soc::Core &core = main_.domain().core(0);
        if (!core.awake())
            co_await core.ensureAwake();
        core.pinActive();
        co_await core.execTime(soc_.costs().busAccess * (1 + reclaimed));
        core.unpinActive();
    }

    // 3. Restart the shadow kernel: reboot latency, then revive the
    //    domain, reset its interrupt controller and replay the
    //    kernel's recorded IRQ registrations (its shadowed-service
    //    device setup).
    co_await soc_.engine().sleep(cfg_.restartLatency);
    if (injector_)
        injector_->revive(shadow.domainId());
    shadow.domain().irqCtrl().reset();
    const std::size_t replayed = shadow.replayIrqRegistrations();
    servicesReplayed_.inc(replayed);
    restarts_.inc();

    // 4. Resume normal routing. The replayed registrations unmasked
    //    every line on the shadow controller; re-applying the router's
    //    masks restores single-owner routing of the shared lines.
    if (group_)
        co_await group_->onReplicaRestarted(r);
    else
        router_.setDegraded(false);
    router_.reapplyMasks();

    down_[r] = 0;
    downUs_.sample(sim::toUsec(soc_.engine().now() - t0));
    soc_.engine().spanComplete(t0, track_, "shadow_restart");
    K2_TRACE(soc_.engine(), sim::TraceCat::Nw,
             "kernel '%s' restarted (%zu IRQ registrations replayed)",
             shadow.name().c_str(), replayed);
}

sim::Task<void>
Watchdog::handleMail(KernelIdx to, Message msg, soc::Core &core)
{
    K2_ASSERT(msg.type == MsgType::Control);
    const std::uint32_t nonce = ctlOperand(msg.payload);
    switch (ctlOp(msg.payload)) {
    case CtlOp::Heartbeat: {
        // Shadow side: answer from the ISR.
        K2_ASSERT(to >= 1 && to <= shadows_.size());
        co_await core.execTime(soc_.costs().busAccess);
        shadows_[to - 1]->sendMailRaw(
            main_.domainId(),
            encodeMessage(MsgType::Control,
                          encodeCtl(CtlOp::HeartbeatAck, nonce), 0));
        co_return;
    }
    case CtlOp::HeartbeatAck: {
        K2_ASSERT(to == 0);
        heartbeatAcks_.inc();
        auto it = probeOwner_.find(nonce);
        if (it != probeOwner_.end()) {
            ackSeen_[it->second] = 1;
        } else if (shadows_.size() == 1) {
            // Single-shadow legacy semantics: any ack (even with a
            // corrupted nonce) proves the peer alive.
            ackSeen_[0] = 1;
        }
        co_return;
    }
    default:
        K2_PANIC("watchdog: unexpected control op in mail payload 0x%x",
                 msg.payload);
    }
}

void
Watchdog::registerMetrics(obs::MetricsRegistry &reg,
                          const std::string &prefix) const
{
    reg.addCounter(prefix + ".suspicions", suspicions_);
    reg.addCounter(prefix + ".heartbeats", heartbeats_);
    reg.addCounter(prefix + ".heartbeat_acks", heartbeatAcks_);
    reg.addCounter(prefix + ".false_alarms", falseAlarms_);
    reg.addCounter(prefix + ".crashes_detected", crashes_);
    reg.addCounter(prefix + ".restarts", restarts_);
    reg.addCounter(prefix + ".pages_reclaimed", pagesReclaimed_);
    reg.addCounter(prefix + ".services_replayed", servicesReplayed_);
    reg.addCounter(prefix + ".degraded_spawns", degradedSpawns_);
    reg.addHistogram(prefix + ".detect_us", detectUs_);
    reg.addHistogram(prefix + ".down_us", downUs_);
}

void
Watchdog::snapState(snap::Io &io)
{
    // A probe loop or recovery in flight would hold pending timer
    // events, contradicting engine quiescence.
    for (std::size_t r = 0; r < shadows_.size(); ++r) {
        K2_ASSERT(!probing_[r]);
        K2_ASSERT(!down_[r]);
    }
    K2_ASSERT(probeOwner_.empty());
    io.check(track_, "Watchdog::track");
    io.check(shadows_.size(), "Watchdog::shadows");
    for (std::size_t r = 0; r < shadows_.size(); ++r)
        io.pod(ackSeen_[r]);
    io.pod(nonce_);
    io.pod(heartbeats_);
    io.pod(heartbeatAcks_);
    io.pod(suspicions_);
    io.pod(falseAlarms_);
    io.pod(crashes_);
    io.pod(restarts_);
    io.pod(pagesReclaimed_);
    io.pod(servicesReplayed_);
    io.pod(degradedSpawns_);
    io.pod(detectUs_);
    io.pod(downUs_);
}

} // namespace os
} // namespace k2
