#include "os/io_mapper.h"

#include "sim/log.h"
#include "snap/io.h"

namespace k2 {
namespace os {

IoMapper::IoMapper(soc::Soc &soc, std::array<kern::Kernel *, 2> kernels,
                   const kern::AddressSpaceLayout &layout)
    : soc_(soc), kernels_(kernels)
{
    // The temporary-mapping window sits directly above the direct map,
    // at the same virtual address in both kernels.
    windowBase_ = layout.vaddrOf(layout.totalPages());
    nextVaddr_ = windowBase_;
}

sim::Duration
IoMapper::ptCost(KernelIdx k, std::uint32_t pages) const
{
    // One PTE write per page plus a TLB maintenance op, at the
    // kernel's bookkeeping speed.
    return kernels_[k]->kernelWorkTime(kernels_[k]->domain().core(0),
                                       60 + 25ull * pages);
}

sim::Task<std::pair<IoMapper::RegionId, std::uint64_t>>
IoMapper::mapIo(kern::Thread &t, std::uint32_t pages)
{
    K2_ASSERT(pages > 0);
    const KernelIdx k = (&t.kernel() == kernels_[0]) ? 0 : 1;
    const RegionId id = nextId_++;

    Mapping m;
    m.vaddr = nextVaddr_;
    m.pages = pages;
    nextVaddr_ += pages * static_cast<std::uint64_t>(soc_.pageBytes());
    m.installed[k] = true;
    mappings_[id] = m;
    maps.inc();

    // Install locally, then propagate asynchronously.
    co_await t.execTime(ptCost(k, pages));
    kernels_[k]->sendMail(
        kernels_[1 - k]->domainId(),
        encodeMessage(MsgType::Control,
                      encodeCtl(CtlOp::MapCreate, id),
                      pages & kSeqMask));
    co_return std::make_pair(id, m.vaddr);
}

sim::Task<void>
IoMapper::unmapIo(kern::Thread &t, RegionId id)
{
    auto it = mappings_.find(id);
    if (it == mappings_.end())
        K2_PANIC("unmap of unknown IO region %u", id);
    const KernelIdx k = (&t.kernel() == kernels_[0]) ? 0 : 1;

    unmaps.inc();
    co_await t.execTime(ptCost(k, it->second.pages));
    it->second.installed[k] = false;
    kernels_[k]->sendMail(
        kernels_[1 - k]->domainId(),
        encodeMessage(MsgType::Control,
                      encodeCtl(CtlOp::MapDestroy, id), 0));
}

bool
IoMapper::isMapped(KernelIdx kernel, RegionId id) const
{
    auto it = mappings_.find(id);
    return it != mappings_.end() && it->second.installed[kernel];
}

std::uint64_t
IoMapper::vaddrOf(RegionId id) const
{
    auto it = mappings_.find(id);
    K2_ASSERT(it != mappings_.end());
    return it->second.vaddr;
}

sim::Task<void>
IoMapper::handleMail(KernelIdx to, Message msg, soc::Core &core)
{
    const auto id = static_cast<RegionId>(ctlOperand(msg.payload));
    auto it = mappings_.find(id);
    propagations.inc();
    switch (ctlOp(msg.payload)) {
      case CtlOp::MapCreate: {
        K2_ASSERT(it != mappings_.end());
        co_await core.execTime(ptCost(to, it->second.pages));
        it->second.installed[to] = true;
        co_return;
      }
      case CtlOp::MapDestroy: {
        if (it == mappings_.end())
            co_return; // both sides unmapped concurrently
        co_await core.execTime(ptCost(to, it->second.pages));
        it->second.installed[to] = false;
        if (!it->second.installed[0] && !it->second.installed[1])
            mappings_.erase(it);
        co_return;
      }
      default:
        K2_PANIC("IoMapper received non-map control op");
    }
}

void
IoMapper::snapState(snap::Io &io)
{
    io.check(windowBase_, "IoMapper::windowBase");
    io.pod(nextVaddr_);
    io.pod(nextId_);
    io.pod(maps);
    io.pod(unmaps);
    io.pod(propagations);

    // Mappings are plain data (no events, no frames), and unmapIo can
    // shrink the table, so it is rebuilt from the image outright.
    // Field-wise: Mapping has tail padding that must not reach the
    // byte stream.
    std::uint64_t n = io.count(mappings_.size());
    if (io.restoring()) {
        mappings_.clear();
        for (std::uint64_t i = 0; i < n; ++i) {
            RegionId id = 0;
            io.pod(id);
            Mapping m;
            io.pod(m.vaddr);
            io.pod(m.pages);
            io.pod(m.installed);
            mappings_.emplace(id, m);
        }
    } else {
        for (auto &[id, m] : mappings_) {
            RegionId i2 = id;
            io.pod(i2);
            io.pod(m.vaddr);
            io.pod(m.pages);
            io.pod(m.installed);
        }
    }
}

} // namespace os
} // namespace k2
