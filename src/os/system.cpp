#include "os/system.h"

namespace k2 {
namespace os {

kern::Process &
SystemImage::createProcess(std::string name)
{
    processes_.push_back(
        std::make_unique<kern::Process>(nextPid_++, std::move(name)));
    return *processes_.back();
}

} // namespace os
} // namespace k2
