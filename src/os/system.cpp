#include "os/system.h"

#include "obs/metrics.h"
#include "sim/log.h"
#include "kern/buddy.h"
#include "kern/sched.h"
#include "snap/io.h"

namespace k2 {
namespace os {

kern::Process &
SystemImage::createProcess(std::string name)
{
    processes_.push_back(
        std::make_unique<kern::Process>(nextPid_++, std::move(name)));
    return *processes_.back();
}

void
SystemImage::registerMetrics(obs::MetricsRegistry &reg)
{
    sim::Engine &eng = engine();
    reg.addGauge("sim.events_dispatched", [&eng]() {
        return static_cast<double>(eng.eventsDispatched());
    });
    reg.addGauge("sim.pending_events", [&eng]() {
        return static_cast<double>(eng.pendingEvents());
    });
    reg.addGauge("sim.pool_capacity", [&eng]() {
        return static_cast<double>(eng.poolCapacity());
    });
    reg.addGauge("sim.spans.recorded", [&eng]() {
        return static_cast<double>(eng.tracer().spanEvents().size());
    });
    reg.addGauge("sim.spans.dropped", [&eng]() {
        return static_cast<double>(eng.tracer().spansDropped());
    });

    soc().registerMetrics(reg);

    for (kern::Kernel *k : kernels()) {
        const std::string kp = "kern." + k->name();
        kern::Scheduler &sched = k->scheduler();
        reg.addGauge(kp + ".sched.context_switches", [&sched]() {
            return static_cast<double>(sched.contextSwitches());
        });
        kern::BuddyAllocator &buddy = k->pageAllocator();
        reg.addCounter(kp + ".buddy.alloc_calls", buddy.allocCalls);
        reg.addCounter(kp + ".buddy.free_calls", buddy.freeCalls);
        reg.addCounter(kp + ".buddy.failed_allocs", buddy.failedAllocs);
    }
}

void
SystemImage::snapState(snap::Io &io)
{
    io.pod(nextPid_);

    // Process table: prune to the captured prefix. Processes created
    // after the capture point belong to post-capture workload episodes
    // whose threads have been pruned by the kernel restore.
    std::uint64_t n = io.count(processes_.size());
    if (io.restoring()) {
        K2_ASSERT(n <= processes_.size());
        processes_.resize(static_cast<std::size_t>(n));
    }
    for (auto &p : processes_)
        p->snapState(io);
}

} // namespace os
} // namespace k2
