/**
 * @file
 * The N-domain page directory (home-based MSI / MESI / MOESI).
 *
 * One kernel -- the *home*, index 0 on the strong domain, where the
 * directory memory lives -- tracks, per page, the owner, a sharer
 * bitmap and a dirty bit, and serialises transactions: a requester
 * sends GetS/GetX to the home; the home grants directly, forwards a
 * read to the dirty owner (3-hop: the owner grants straight to the
 * requester), or fans out invalidations to every sharer and collects
 * InvAcks before granting exclusivity.
 *
 * Directory is the pure state table plus the transition rules; timing,
 * mail and task structure stay with os::NDsm. The E and O refinements
 * are encoded rather than stored: E (clean exclusive, MESI/MOESI) is
 * `owner == k, sharers == {k}, !dirty` and upgrades silently; O
 * (owned-dirty, MOESI) is `dirty` with `sharers` larger than {owner} --
 * reached because MOESI read-forwards keep the dirty bit where MSI and
 * MESI write back and clear it.
 */

#ifndef K2_OS_COHERENCE_DIRECTORY_H
#define K2_OS_COHERENCE_DIRECTORY_H

#include <unordered_map>
#include <vector>

#include "os/coherence/protocol.h"

namespace k2 {
namespace os {
namespace coherence {

class Directory
{
  public:
    /** Per-page directory entry. Pages are born at the home. */
    struct Entry
    {
        std::uint32_t owner = 0;
        std::uint32_t sharers = 1; //!< Bitmap; bit 0 is the home.
        bool dirty = false;
        /** @name In-flight transaction (at most one per page). @{ */
        bool reqActive = false;
        bool reqWrite = false;
        std::uint32_t requester = 0;
        std::uint32_t ackWait = 0; //!< Sharers still owing an InvAck.
        sim::Time serviceStart = 0;
        /** @} */
    };

    /**
     * @param kind ThreeState (MSI), Mesi or Moesi.
     * @param num_kernels Domain count (home is kernel 0).
     * @param num_pages DSM page keys available.
     */
    Directory(ProtocolKind kind, std::size_t num_kernels,
              std::uint64_t num_pages);

    ProtocolKind kind() const { return kind_; }

    static std::uint32_t bit(std::size_t k)
    {
        return 1u << static_cast<std::uint32_t>(k);
    }

    Entry &entry(std::uint64_t page);

    /** Owner without instantiating the entry. */
    std::size_t ownerOf(std::uint64_t page) const;

    /** True if @p k holds a readable copy. */
    bool readValid(std::size_t k, std::uint64_t page) const;

    /**
     * True if @p k may write without a transaction: it is the sole
     * dirty owner, or (MESI/MOESI) the sole clean owner -- in which
     * case the E->M upgrade happens silently here.
     */
    bool writeValid(std::size_t k, std::uint64_t page);

    /** Close a write transaction: @p req becomes sole dirty owner. */
    void finishWrite(Entry &e, std::size_t req);

    /**
     * Crash recovery at the directory: scrub @p dead from every
     * entry's sharers/ackWait, move its ownership to @p to (clean:
     * the dirty copy died with the domain), and finalise transactions
     * @p dead participated in. Returns pages whose owner moved, in
     * ascending order, plus (via @p completed) pages whose stalled
     * transaction can now be granted -- the caller wakes those
     * requesters.
     */
    std::vector<std::uint64_t> reclaim(std::size_t dead, std::size_t to,
                                       std::vector<std::uint64_t>
                                           &completed);

    std::uint64_t invalidations() const
    {
        return invalidations_.value();
    }
    std::uint64_t forwards() const { return forwards_.value(); }
    std::uint64_t writebacks() const { return writebacks_.value(); }

    sim::Counter &invalidationsCounter() { return invalidations_; }
    sim::Counter &forwardsCounter() { return forwards_; }
    sim::Counter &writebacksCounter() { return writebacks_; }

    /** Register directory counters under "<prefix>.<proto>.*". */
    void registerMetrics(obs::MetricsRegistry &reg,
                         const std::string &prefix) const;

    /** Capture/restore all entries (sorted; post-capture entries are
     *  dropped on restore). */
    void snapState(snap::Io &io);

  private:
    ProtocolKind kind_;
    std::size_t n_;
    std::uint64_t numPages_;
    std::unordered_map<std::uint64_t, Entry> entries_;
    sim::Counter invalidations_; //!< Inv messages fanned out.
    sim::Counter forwards_;      //!< MOESI dirty cache-to-cache grants.
    sim::Counter writebacks_;    //!< Dirty writebacks (MSI/MESI).
};

} // namespace coherence
} // namespace os
} // namespace k2

#endif // K2_OS_COHERENCE_DIRECTORY_H
