#include "os/coherence/rac.h"

#include <algorithm>
#include <vector>

#include "obs/metrics.h"
#include "sim/log.h"
#include "snap/io.h"

namespace k2 {
namespace os {
namespace coherence {

// ---------------------------------------------------------------------
// RacState
// ---------------------------------------------------------------------

RacState::RacState(std::size_t num_kernels, std::uint64_t num_pages)
    : n_(num_kernels), numPages_(num_pages), logHead_(n_, 0),
      drained_(n_ * n_, 0), vc_(n_ * n_, 0)
{
    K2_ASSERT(n_ >= 2);
}

RacState::PageState &
RacState::page(std::uint64_t p)
{
    K2_ASSERT(p < numPages_);
    return pages_[p];
}

std::size_t
RacState::writerOf(std::uint64_t page) const
{
    auto it = pages_.find(page);
    return it == pages_.end() ? 0 : it->second.lastWriter;
}

bool
RacState::readFresh(std::size_t k, std::uint64_t page) const
{
    auto it = pages_.find(page);
    if (it == pages_.end())
        return true; // Never written: every copy is (trivially) fresh.
    const PageState &ps = it->second;
    if (ps.lastWriter == k)
        return true;
    return vc_[k * n_ + ps.lastWriter] >= ps.stamp;
}

void
RacState::append(std::size_t k, std::uint64_t page)
{
    PageState &ps = this->page(page);
    std::uint32_t &clock = vc_[k * n_ + k];
    ++clock;
    logHead_[k] += kRacLinesPerWrite;
    ps.lastWriter = static_cast<std::uint32_t>(k);
    ps.stamp = clock;
    logAppends_.inc();
}

std::uint32_t
RacState::pendingLines(std::size_t k, std::size_t w) const
{
    return logHead_[w] - drained_[k * n_ + w];
}

std::uint32_t
RacState::drain(std::size_t k, std::size_t w)
{
    const std::uint32_t pend = pendingLines(k, w);
    drained_[k * n_ + w] = logHead_[w];
    vc_[k * n_ + w] = std::max(vc_[k * n_ + w], vc_[w * n_ + w]);
    drainedLines_.inc(pend);
    return pend;
}

void
RacState::takeOwnership(std::size_t k, std::uint64_t page)
{
    append(k, page);
}

std::vector<std::uint64_t>
RacState::reclaim(std::size_t dead, std::size_t to)
{
    std::vector<std::uint64_t> moved;
    for (const auto &kv : pages_) {
        if (kv.second.lastWriter == dead)
            moved.push_back(kv.first);
    }
    std::sort(moved.begin(), moved.end());
    // Absorb the dead domain's log: the inheritor has (by definition of
    // recovery) re-synced the data, so it has effectively observed
    // every release the dead domain ever published.
    drained_[to * n_ + dead] = logHead_[dead];
    vc_[to * n_ + dead] =
        std::max(vc_[to * n_ + dead], vc_[dead * n_ + dead]);
    if (!moved.empty()) {
        // One clock tick covers the whole inheritance: other domains
        // must re-acquire the moved pages from the new writer.
        ++vc_[to * n_ + to];
        for (std::uint64_t p : moved) {
            PageState &ps = pages_.at(p);
            ps.lastWriter = static_cast<std::uint32_t>(to);
            ps.stamp = vc_[to * n_ + to];
        }
    }
    return moved;
}

std::uint64_t
RacState::reclaimAll(std::size_t owner)
{
    std::uint64_t changed = 0;
    for (std::size_t dead = 0; dead < n_; ++dead) {
        if (dead == owner)
            continue;
        changed += reclaim(dead, owner).size();
    }
    return changed;
}

void
RacState::registerMetrics(obs::MetricsRegistry &reg,
                          const std::string &prefix) const
{
    reg.addCounter(prefix + ".rac.log_appends", logAppends_);
    reg.addCounter(prefix + ".rac.drained_lines", drainedLines_);
}

void
RacState::snapState(snap::Io &io)
{
    for (std::uint32_t &v : logHead_)
        io.pod(v);
    for (std::uint32_t &v : drained_)
        io.pod(v);
    for (std::uint32_t &v : vc_)
        io.pod(v);
    io.pod(logAppends_);
    io.pod(drainedLines_);
    // Per-page writer stamps, in sorted page order; entries
    // instantiated after the capture point are dropped on restore.
    std::vector<std::uint64_t> keys;
    keys.reserve(pages_.size());
    for (const auto &kv : pages_)
        keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());
    std::uint64_t n = io.count(keys.size());
    if (io.restoring()) {
        std::vector<std::uint64_t> snapKeys(
            static_cast<std::size_t>(n));
        for (auto &k : snapKeys)
            io.pod(k);
        for (std::uint64_t k : keys) {
            if (!std::binary_search(snapKeys.begin(), snapKeys.end(),
                                    k))
                pages_.erase(k);
        }
        keys = std::move(snapKeys);
    } else {
        for (std::uint64_t k : keys) {
            std::uint64_t v = k;
            io.pod(v);
        }
    }
    for (std::uint64_t k : keys) {
        auto it = pages_.find(k);
        if (it == pages_.end())
            K2_FATAL("snapshot restore: RAC page %llu missing",
                     static_cast<unsigned long long>(k));
        io.pod(it->second.lastWriter);
        io.pod(it->second.stamp);
    }
}

// ---------------------------------------------------------------------
// RacPair
// ---------------------------------------------------------------------

RacPair::RacPair(const PairHost &host)
    : PairProtocol(host), rs_(2, host.numPages)
{
    K2_ASSERT(host.numPages <= kOpMaxPages);
}

RacPair::PageInfo &
RacPair::info(std::uint64_t page)
{
    K2_ASSERT(page < h_.numPages);
    auto it = pages_.find(page);
    if (it == pages_.end()) {
        auto pi = std::make_unique<PageInfo>();
        pi->grant = std::make_unique<sim::Event>(engine());
        pi->settled = std::make_unique<sim::Event>(engine());
        it = pages_.emplace(page, std::move(pi)).first;
    }
    return *it->second;
}

bool
RacPair::isLocallyValid(KernelIdx kernel, std::uint64_t page,
                        Access rw) const
{
    return rw == Access::Write ? rs_.isWriter(kernel, page)
                               : rs_.readFresh(kernel, page);
}

sim::Task<void>
RacPair::access(KernelIdx k, soc::Core &core, std::uint64_t page,
                Access rw)
{
    PageInfo &pi = info(page);

    // Pages are never demoted under release-acquire (invalidation is
    // line-grain via the log), so translation stays at section grain.
    const sim::Duration walk =
        h_.mmus[k]->translate(page, soc::MapGrain::Section1M);
    if (walk)
        co_await core.execTime(walk);

    for (;;) {
        // Serialise with an acquire already in flight on this page.
        while (pi.outstanding) {
            core.pinActive();
            co_await pi.settled->wait();
            core.unpinActive();
        }
        if (isLocallyValid(k, page, rw)) {
            if (rw == Access::Write) {
                // Owner write: append the modified line addresses to
                // this domain's log through the coherent region.
                rs_.append(k, page);
                co_await core.execTime(h_.soc->costs().busAccess);
            }
            co_return;
        }

        // ---- Acquire fault (Table-5 phases). ----
        FaultStats &st = (*h_.stats)[k];
        st.faults.inc();
        K2_TRACE(engine(), sim::TraceCat::Dsm,
                 "%s acquires page %llu (%s)",
                 h_.kernels[k]->name().c_str(),
                 static_cast<unsigned long long>(page),
                 rw == Access::Write ? "W" : "R");
        pi.outstanding = true;
        pi.requester = static_cast<std::uint32_t>(k);

        // No read-tracking penalty: invalidation is push-based via the
        // writer's log, so the weak MMU never write-protects for reads.
        const sim::Time t0 = engine().now();
        co_await core.execTime(h_.costs->faultEntry[k]);
        const sim::Time t1 = engine().now();

        co_await core.execTime(h_.costs->protocolExec[k]);
        const sim::Time t2 = engine().now();

        h_.messages->inc();
        h_.kernels[k]->sendMail(
            h_.kernels[1 - k]->domainId(),
            encodeMessage(MsgType::GetExclusive,
                          packOp(ReqOp::Acq, page),
                          (*h_.seq)++ & kSeqMask));

        // Spin until the writer's release grant arrives; with a retry
        // policy re-send on timeout (self-healing: recovery may have
        // completed the fault locally in the meantime).
        pi.grant->reset();
        pi.grantArrived = false;
        core.pinActive();
        if (h_.retry->timeout == 0) {
            co_await pi.grant->wait();
        } else {
            sim::Duration rto = h_.retry->timeout;
            while (!pi.grantArrived) {
                bool timer_fired = false;
                sim::Event *grant = pi.grant.get();
                sim::EventId timer = engine().after(
                    rto, [grant, &timer_fired]() {
                        timer_fired = true;
                        grant->pulse();
                    });
                co_await pi.grant->wait();
                engine().cancel(timer);
                if (pi.grantArrived)
                    break;
                if (!timer_fired)
                    continue;
                h_.retries->inc();
                h_.messages->inc();
                K2_TRACE(engine(), sim::TraceCat::Dsm,
                         "%s retries Acq for page %llu",
                         h_.kernels[k]->name().c_str(),
                         static_cast<unsigned long long>(page));
                h_.kernels[k]->sendMail(
                    h_.kernels[1 - k]->domainId(),
                    encodeMessage(MsgType::GetExclusive,
                                  packOp(ReqOp::Acq, page),
                                  (*h_.seq)++ & kSeqMask));
                rto = std::min(rto * 2, h_.retry->maxTimeout);
            }
        }
        core.unpinActive();
        const sim::Time t3 = engine().now();

        // Drain the peer's modified-line log: invalidate every listed
        // line locally and merge the writer's clock. This is what
        // makes the *whole* backlog of that writer fresh, not just the
        // faulting page.
        const KernelIdx w = 1 - k;
        const std::uint32_t pend = rs_.pendingLines(k, w);
        if (pend > 0) {
            const sim::Time d0 = engine().now();
            rs_.drain(k, w);
            co_await core.execTime(pend * kRacLineInvalidate);
            engine().spanComplete(d0, h_.tracks[k], "drain");
        }

        sim::Duration exit = h_.costs->exitRefill[k];
        if (rw == Access::Write)
            exit += h_.mmus[k]->protectionUpdate(page);
        co_await core.execTime(exit);
        const sim::Time t4 = engine().now();

        if (rw == Access::Write)
            rs_.takeOwnership(k, page);
        pi.outstanding = false;
        pi.settled->pulse();

        if (engine().tracer().spansOn()) {
            sim::Tracer &tr = engine().tracer();
            tr.spanComplete(t0, t4 - t0, h_.tracks[k], "fault");
            tr.spanComplete(t0, t1 - t0, h_.tracks[k], "fault_entry");
            tr.spanComplete(t1, t2 - t1, h_.tracks[k], "protocol");
            tr.spanComplete(t2, t3 - t2, h_.tracks[k], "comm+service");
            tr.spanComplete(t3, t4 - t3, h_.tracks[k], "exit_refill");
        }

        st.localFaultUs.sample(sim::toUsec(t1 - t0));
        st.protocolUs.sample(sim::toUsec(t2 - t1));
        st.serviceUs.sample(sim::toUsec(pi.lastServiceTime));
        st.commUs.sample(sim::toUsec(t3 - t2) -
                         sim::toUsec(pi.lastServiceTime));
        st.exitUs.sample(sim::toUsec(t4 - t3));
        st.totalUs.sample(sim::toUsec(t4 - t0));

        if (rw == Access::Write)
            co_return; // Ownership taken; the write is logged.
        // Reads re-check freshness: the writer may have released again
        // while we drained.
    }
}

sim::Task<void>
RacPair::serviceAcquire(KernelIdx writer, std::uint64_t page)
{
    PageInfo &pi = info(page);

    // The main kernel's cache agent runs as a bottom half and defers
    // further under load; the shadow kernel serves immediately.
    if (writer == 0) {
        sim::Duration defer = h_.costs->mainBottomHalf;
        if (h_.kernels[0]->scheduler().runqueueDepth() > 0)
            defer += h_.costs->mainLoadedDefer;
        co_await engine().sleep(defer);
    }

    // Pick a core of the servicing domain.
    soc::CoherenceDomain &dom = h_.kernels[writer]->domain();
    soc::Core *core = &dom.core(0);
    for (std::size_t i = 0; i < dom.numCores(); ++i) {
        if (dom.core(i).state() == soc::PowerState::Idle) {
            core = &dom.core(i);
            break;
        }
    }
    if (!core->awake())
        co_await core->ensureAwake();

    // Release: flush the page's dirty lines through the coherent
    // region so the acquirer's drain observes them.
    const sim::Time t_start = engine().now();
    co_await core->execTime(h_.costs->serviceBase[writer] +
                            dom.flushTime(h_.soc->pageBytes()));
    pi.lastServiceTime = engine().now() - t_start;
    engine().spanComplete(t_start, h_.tracks[writer], "service");
    K2_TRACE(engine(), sim::TraceCat::Dsm,
             "%s releases page %llu",
             h_.kernels[writer]->name().c_str(),
             static_cast<unsigned long long>(page));

    h_.messages->inc();
    h_.kernels[writer]->sendMail(
        h_.kernels[1 - writer]->domainId(),
        encodeMessage(MsgType::PutExclusive,
                      packOp(RepOp::GrantX, page),
                      (*h_.seq)++ & kSeqMask));
}

sim::Task<void>
RacPair::handleMail(KernelIdx to_kernel, Message msg, soc::Core &core)
{
    const std::uint64_t page = pageOf(msg.payload);
    switch (msg.type) {
      case MsgType::GetExclusive:
        K2_ASSERT(opOf(msg.payload) ==
                  static_cast<std::uint32_t>(ReqOp::Acq));
        engine().spawn(serviceAcquire(to_kernel, page));
        co_return;
      case MsgType::PutExclusive: {
        K2_ASSERT(opOf(msg.payload) ==
                  static_cast<std::uint32_t>(RepOp::GrantX));
        co_await core.execTime(h_.soc->costs().busAccess);
        PageInfo &pi = info(page);
        pi.grantArrived = true;
        pi.grant->pulse();
        co_return;
      }
      default:
        K2_PANIC("RAC received non-DSM message type %u",
                 static_cast<unsigned>(msg.type));
    }
}

std::uint64_t
RacPair::reclaimAll(KernelIdx owner)
{
    K2_ASSERT(owner < 2);
    const std::uint64_t changed = rs_.reclaimAll(owner);
    // Complete the survivor's faults left waiting on a release from
    // the dead peer, in sorted page order (pulse order decides wakeup
    // FIFO order).
    std::vector<std::uint64_t> keys;
    keys.reserve(pages_.size());
    for (const auto &kv : pages_)
        keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());
    for (std::uint64_t page : keys) {
        auto &pi = pages_.at(page);
        if (pi->outstanding && pi->requester == owner &&
            !pi->grantArrived) {
            pi->grantArrived = true;
            pi->grant->pulse();
        }
    }
    return changed;
}

void
RacPair::snapState(snap::Io &io)
{
    rs_.snapState(io);
    std::vector<std::uint64_t> keys;
    keys.reserve(pages_.size());
    for (const auto &kv : pages_)
        keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());
    std::uint64_t n = io.count(keys.size());
    if (io.restoring()) {
        std::vector<std::uint64_t> snapKeys(
            static_cast<std::size_t>(n));
        for (auto &k : snapKeys)
            io.pod(k);
        for (std::uint64_t k : keys) {
            if (!std::binary_search(snapKeys.begin(), snapKeys.end(),
                                    k))
                pages_.erase(k);
        }
        keys = std::move(snapKeys);
    } else {
        for (std::uint64_t k : keys) {
            std::uint64_t v = k;
            io.pod(v);
        }
    }
    for (std::uint64_t k : keys) {
        auto it = pages_.find(k);
        if (it == pages_.end())
            K2_FATAL("snapshot restore: RAC fault page %llu missing",
                     static_cast<unsigned long long>(k));
        PageInfo &pi = *it->second;
        io.pod(pi.outstanding);
        io.pod(pi.grantArrived);
        io.pod(pi.requester);
        pi.grant->snapState(io);
        pi.settled->snapState(io);
        io.pod(pi.lastServiceTime);
    }
}

void
RacPair::registerMetrics(obs::MetricsRegistry &reg,
                         const std::string &prefix) const
{
    rs_.registerMetrics(reg, prefix);
}

} // namespace coherence
} // namespace os
} // namespace k2
