/**
 * @file
 * The coherence-protocol strategy layer behind the K2 DSM.
 *
 * The paper hard-wires one protocol (the §6.3 two-state scheme, with a
 * three-state MSI variant for the ablation). This subsystem turns the
 * protocol into a first-class strategy so the design space the paper
 * leaves unexplored -- directory MESI/MOESI, log-based release-acquire
 * -- can be measured on the same platform model:
 *
 *  - ProtocolKind names every registered protocol; parseProtocol()
 *    backs the `--dsm=PROTO` flag on the sweep binaries.
 *  - PairProtocol is the two-kernel strategy interface the Dsm facade
 *    delegates to (per-page state machine, request/grant message set,
 *    fault-phase cost hooks feeding the Table-5 cost model).
 *  - The N-domain variants live in os::NDsm, sharing the directory and
 *    release-acquire state machines (coherence/directory.h,
 *    coherence/rac.h).
 *
 * Message encoding: the legacy two/three-state protocols use the full
 * 20-bit payload as a page number and the access kind in the seq field
 * (see two_state.cpp). The newer protocols need more than one request
 * and one reply verb, and the low eight seq bits are overwritten by
 * the reliable-mail ARQ stamp on tracked mail -- so they carry a 3-bit
 * opcode in the payload's top bits and the page in the remaining 17
 * (limiting those protocols to 2^17 DSM pages; the default
 * K2Config::dsmPages = 65536 fits comfortably).
 */

#ifndef K2_OS_COHERENCE_PROTOCOL_H
#define K2_OS_COHERENCE_PROTOCOL_H

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "sim/stats.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "soc/mmu.h"
#include "soc/soc.h"
#include "kern/kernel.h"
#include "os/messages.h"
#include "os/system.h"

namespace k2 {

namespace obs {
class MetricsRegistry;
}

namespace os {
namespace coherence {

/** Every registered DSM coherence protocol. */
enum class ProtocolKind : std::uint8_t
{
    TwoState = 0, //!< §6.3 default: Valid/Invalid, exclusive-only.
    ThreeState,   //!< §6.3 alternative: MSI with read sharing.
    Mesi,         //!< Directory MESI (clean-exclusive, silent upgrade).
    Moesi,        //!< Directory MOESI (dirty sharing, owner forwards).
    Rac,          //!< Log-based release-acquire (RACoherence-style).
};

inline constexpr std::size_t kNumProtocols = 5;

/** Canonical flag-facing name ("2state", "3state", "mesi", ...). */
const char *protocolName(ProtocolKind kind);

/** All registered protocols, in ProtocolKind order. */
std::array<ProtocolKind, kNumProtocols> allProtocols();

/** Comma-separated list of valid protocol names (for error text). */
std::string protocolNames();

/** Name lookup without error handling; false on unknown name. */
bool lookupProtocol(const std::string &name, ProtocolKind &out);

/**
 * Parse a protocol name as typed after `--dsm=`.
 *
 * @param at Char offset of @p name within the user's full flag text,
 *        carried into the error so a typo is pinpointed the same way
 *        the --faults parser reports positions.
 * @throws sim::FatalError naming the offending text, its position and
 *         the valid names.
 */
ProtocolKind parseProtocol(const std::string &name, std::size_t at = 0);

/** True for protocols that keep read-only copies on several kernels
 *  (these pay the cascaded-MMU read-tracking penalty on weak cores). */
bool readSharing(ProtocolKind kind);

/**
 * Per-fault cost constants, indexed by kernel (0 = main on the strong
 * domain, 1 = shadow on the weak domain). Defaults are calibrated
 * against Table 5 of the paper.
 */
struct PairCostModel
{
    /** Exception entry + fault decoding on the faulting kernel. */
    std::array<sim::Duration, 2> faultEntry{sim::usec(3),
                                            sim::usec(17)};
    /** Coherence-protocol bookkeeping on the faulting kernel. */
    std::array<sim::Duration, 2> protocolExec{sim::usec(2),
                                              sim::usec(13)};
    /** Request servicing on the *owning* kernel, before the cache
     *  flush (which is charged separately from the domain spec). */
    std::array<sim::Duration, 2> serviceBase{0, sim::usec(8)};
    /** Fault exit + cache refill on the faulting kernel. */
    std::array<sim::Duration, 2> exitRefill{sim::usec(18),
                                            sim::usec(2)};
    /** Bottom-half delay before the main kernel services. */
    sim::Duration mainBottomHalf = sim::usec(4);
    /** Extra deferral when the main kernel is under load. */
    sim::Duration mainLoadedDefer = sim::usec(30);
};

/**
 * Fault-timeout retry (recovery layer). Off by default (timeout == 0):
 * the faulting kernel spins on the grant forever, exactly the
 * pre-fault-plane behaviour. When enabled, a faulter whose grant does
 * not arrive within the timeout re-sends its request with a fresh
 * sequence number, backing off exponentially up to maxTimeout.
 * Attempts are unbounded: the faulter must survive a crashed peer
 * until the watchdog revives it (or re-owns the page under it).
 */
struct RetryPolicy
{
    sim::Duration timeout = 0;
    sim::Duration maxTimeout = sim::msec(4);
};

/** Per-sender fault statistics (the Table 5 breakdown). */
struct FaultStats
{
    sim::Counter faults;
    sim::Accumulator localFaultUs;
    sim::Accumulator protocolUs;
    sim::Accumulator commUs;
    sim::Accumulator serviceUs;
    sim::Accumulator exitUs;
    sim::Accumulator totalUs;
};

/**
 * @name Opcode-bearing payload encoding (MESI/MOESI/RAC, pairwise and
 * N-domain). Request verbs ride MsgType::GetExclusive, reply verbs
 * MsgType::PutExclusive, so the mailbox/ARQ plumbing (which tracks
 * exactly those types) needs no changes and invalidation fan-out is
 * automatically retransmitted on loss.
 * @{
 */

inline constexpr std::uint32_t kOpBits = 3;
inline constexpr std::uint32_t kOpPageBits = kPayloadBits - kOpBits;
inline constexpr std::uint64_t kOpMaxPages = 1ull << kOpPageBits;

/** Request opcodes (carried on MsgType::GetExclusive). */
enum class ReqOp : std::uint32_t
{
    GetS = 0, //!< Read copy request (directory home / peer).
    GetX = 1, //!< Exclusive/upgrade request.
    Inv = 2,  //!< Home -> sharer invalidation.
    Fwd = 3,  //!< Home -> dirty owner: forward data to the requester.
    Acq = 4,  //!< RAC: acquire against the page's last writer.
};

/** Reply opcodes (carried on MsgType::PutExclusive). */
enum class RepOp : std::uint32_t
{
    GrantS = 0, //!< Read copy granted (requester ends Shared).
    GrantE = 1, //!< Clean-exclusive granted (MESI E).
    GrantX = 2, //!< Exclusive granted (requester ends Modified).
    InvAck = 3, //!< Sharer -> home: invalidation done.
};

inline std::uint32_t
packOp(std::uint32_t op, std::uint64_t page)
{
    K2_ASSERT(op < (1u << kOpBits) && page < kOpMaxPages);
    return (op << kOpPageBits) | static_cast<std::uint32_t>(page);
}

inline std::uint32_t
packOp(ReqOp op, std::uint64_t page)
{
    return packOp(static_cast<std::uint32_t>(op), page);
}

inline std::uint32_t
packOp(RepOp op, std::uint64_t page)
{
    return packOp(static_cast<std::uint32_t>(op), page);
}

inline std::uint32_t
opOf(std::uint32_t payload)
{
    return payload >> kOpPageBits;
}

inline std::uint64_t
pageOf(std::uint32_t payload)
{
    return payload & (kOpMaxPages - 1);
}

/** @} */

/**
 * Everything a pairwise protocol borrows from its Dsm facade. The
 * facade owns the platform handles, cost model, counters and stats so
 * metric keys, snapshot layout and Table-5 reporting stay protocol-
 * independent; the strategy owns only its per-page state machine.
 */
struct PairHost
{
    soc::Soc *soc = nullptr;
    std::array<kern::Kernel *, 2> kernels{};
    const PairCostModel *costs = nullptr;
    std::array<soc::Mmu *, 2> mmus{};
    std::array<FaultStats, 2> *stats = nullptr;
    std::array<sim::TrackId, 2> tracks{};
    sim::Counter *messages = nullptr;
    sim::Counter *demotions = nullptr;
    sim::Counter *retries = nullptr;
    const RetryPolicy *retry = nullptr;
    std::uint32_t *seq = nullptr;
    std::uint64_t numPages = 0;
};

/**
 * A two-kernel coherence protocol strategy.
 *
 * The Dsm facade forwards the fault path (access), the mailbox ISR
 * dispatch (handleMail) and recovery/introspection hooks here. A
 * strategy must keep the one-writer invariant per page, complete
 * every access() it admits (spinning faulters included), and keep its
 * snapState() symmetric so warm-fixture forks replay identically.
 */
class PairProtocol
{
  public:
    explicit PairProtocol(const PairHost &host) : h_(host) {}
    virtual ~PairProtocol() = default;

    PairProtocol(const PairProtocol &) = delete;
    PairProtocol &operator=(const PairProtocol &) = delete;

    virtual ProtocolKind kind() const = 0;

    /** The fault path: satisfy @p rw on @p page for kernel @p k. */
    virtual sim::Task<void> access(KernelIdx k, soc::Core &core,
                                   std::uint64_t page, Access rw) = 0;

    /** Protocol message received by @p to (from the mailbox ISR). */
    virtual sim::Task<void> handleMail(KernelIdx to, Message msg,
                                       soc::Core &core) = 0;

    /** True if @p k's copy of @p page permits @p rw locally. */
    virtual bool isLocallyValid(KernelIdx k, std::uint64_t page,
                                Access rw) const = 0;

    /** Crash recovery: @p owner becomes sole writer of every page;
     *  returns the number of pages whose state changed. */
    virtual std::uint64_t reclaimAll(KernelIdx owner) = 0;

    /** Capture/restore the per-page protocol state. */
    virtual void snapState(snap::Io &io) = 0;

    /**
     * Protocol-specific counters under "<prefix>.<proto>.*". The
     * legacy protocols add none, keeping the pre-strategy metric key
     * set byte-identical for default configurations.
     */
    virtual void registerMetrics(obs::MetricsRegistry &reg,
                                 const std::string &prefix) const
    {
        (void)reg;
        (void)prefix;
    }

  protected:
    sim::Engine &engine() const { return h_.soc->engine(); }

    PairHost h_;
};

/** Instantiate the pairwise strategy for @p kind. */
std::unique_ptr<PairProtocol> makePairProtocol(ProtocolKind kind,
                                               const PairHost &host);

} // namespace coherence
} // namespace os
} // namespace k2

#endif // K2_OS_COHERENCE_PROTOCOL_H
