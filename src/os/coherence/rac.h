/**
 * @file
 * Log-based release-acquire coherence (RACoherence-style).
 *
 * Platforms that bridge non-coherent domains through a small coherent
 * region can avoid page-grain invalidation traffic entirely: each
 * domain appends the addresses of the cache lines it modifies to a
 * per-domain log living in the coherent region, and other domains'
 * *cache agents* drain those logs -- invalidating the listed lines
 * locally -- when they acquire. Vector clocks order the drains: domain
 * k's copy of a page last written by w (at writer clock `stamp`) is
 * fresh iff vc[k][w] >= stamp.
 *
 * What this buys on the K2 platform model:
 *  - No read tracking: invalidation is push-based (the log), so the
 *    weak kernel's cascaded-MMU read-tracking penalty (§6.3) never
 *    applies, and pages are never demoted to 4 KB mappings.
 *  - Batching: one acquire drains *all* of a writer's pending log and
 *    advances the acquirer's clock past every page that writer
 *    released so far -- producer-consumer patterns pay one fault per
 *    batch, not one per page.
 *  - The price: every write by the owning domain is logged
 *    (write-through of the line address, one bus access), where the
 *    two-state protocol's owner writes are free.
 *
 * RacState is the pure state machine (logs, clocks, per-page writer
 * stamps), shared by the pairwise RacPair strategy below and the
 * N-domain mode of os::NDsm. Timing, messages and task structure stay
 * with the host protocol.
 */

#ifndef K2_OS_COHERENCE_RAC_H
#define K2_OS_COHERENCE_RAC_H

#include <unordered_map>
#include <vector>

#include "os/coherence/protocol.h"

namespace k2 {
namespace os {
namespace coherence {

/** Host-side cost of invalidating one logged line at the acquirer. */
inline constexpr sim::Duration kRacLineInvalidate = sim::nsec(150);

/** Modelled cache lines appended to the log per page write. */
inline constexpr std::uint32_t kRacLinesPerWrite = 4;

/**
 * The release-acquire state machine for N domains: per-domain
 * modified-line logs (append heads + per-consumer drain cursors),
 * the N x N vector clock, and per-page {lastWriter, stamp}.
 */
class RacState
{
  public:
    RacState(std::size_t num_kernels, std::uint64_t num_pages);

    std::size_t numKernels() const { return n_; }

    /** Page's current (sole) writer; 0 for never-written pages. */
    std::size_t writerOf(std::uint64_t page) const;

    /** True if @p k may read @p page without acquiring. */
    bool readFresh(std::size_t k, std::uint64_t page) const;

    /** True if @p k may write @p page without acquiring. */
    bool isWriter(std::size_t k, std::uint64_t page) const
    {
        return writerOf(page) == k;
    }

    /** Log a write by the current writer @p k: bumps the writer's
     *  clock and log head, restamps the page. */
    void append(std::size_t k, std::uint64_t page);

    /** Lines of @p w's log that @p k has not drained yet. */
    std::uint32_t pendingLines(std::size_t k, std::size_t w) const;

    /** Drain @p w's log into @p k: catch the cursor up and merge the
     *  writer's clock. Returns the lines invalidated. */
    std::uint32_t drain(std::size_t k, std::size_t w);

    /** Complete a write-acquire: @p k becomes the page's writer (and
     *  logs the write that triggered the acquire). */
    void takeOwnership(std::size_t k, std::uint64_t page);

    /**
     * Crash recovery: @p to inherits every page last written by
     * @p dead (in ascending page order), absorbs the dead log
     * (cursor to head, clock merged), and restamps inherited pages at
     * its own clock so other domains re-acquire after the re-sync.
     * Returns the inherited page keys.
     */
    std::vector<std::uint64_t> reclaim(std::size_t dead,
                                       std::size_t to);

    /** Make @p owner writer of *every* instantiated page (pairwise
     *  recovery); returns pages whose writer changed. */
    std::uint64_t reclaimAll(std::size_t owner);

    std::uint64_t logAppends() const { return logAppends_.value(); }
    std::uint64_t drainedLines() const { return drainedLines_.value(); }

    /** Register rac counters under "<prefix>.rac.*". */
    void registerMetrics(obs::MetricsRegistry &reg,
                         const std::string &prefix) const;

    /** Capture/restore logs, clocks and page stamps. */
    void snapState(snap::Io &io);

  private:
    struct PageState
    {
        std::uint32_t lastWriter = 0;
        std::uint32_t stamp = 0; //!< Writer clock at the last write.
    };

    PageState &page(std::uint64_t p);

    std::size_t n_;
    std::uint64_t numPages_;
    std::vector<std::uint32_t> logHead_;           //!< Per writer.
    std::vector<std::uint32_t> drained_;           //!< [k][w], n*n.
    std::vector<std::uint32_t> vc_;                //!< [k][w], n*n.
    std::unordered_map<std::uint64_t, PageState> pages_;
    sim::Counter logAppends_;
    sim::Counter drainedLines_;
};

/** The pairwise (main + shadow) release-acquire strategy. */
class RacPair : public PairProtocol
{
  public:
    explicit RacPair(const PairHost &host);

    ProtocolKind kind() const override { return ProtocolKind::Rac; }

    sim::Task<void> access(KernelIdx k, soc::Core &core,
                           std::uint64_t page, Access rw) override;
    sim::Task<void> handleMail(KernelIdx to, Message msg,
                               soc::Core &core) override;
    bool isLocallyValid(KernelIdx k, std::uint64_t page,
                        Access rw) const override;
    std::uint64_t reclaimAll(KernelIdx owner) override;
    void snapState(snap::Io &io) override;
    void registerMetrics(obs::MetricsRegistry &reg,
                         const std::string &prefix) const override;

  private:
    /** Per-page fault plumbing (one acquire in flight per page). */
    struct PageInfo
    {
        bool outstanding = false;
        bool grantArrived = false;
        std::uint32_t requester = 0;
        std::unique_ptr<sim::Event> grant;
        std::unique_ptr<sim::Event> settled;
        sim::Duration lastServiceTime = 0;
    };

    PageInfo &info(std::uint64_t page);

    /** Writer-side cache-agent servicing of an Acquire. */
    sim::Task<void> serviceAcquire(KernelIdx writer,
                                   std::uint64_t page);

    RacState rs_;
    std::unordered_map<std::uint64_t, std::unique_ptr<PageInfo>> pages_;
};

} // namespace coherence
} // namespace os
} // namespace k2

#endif // K2_OS_COHERENCE_RAC_H
