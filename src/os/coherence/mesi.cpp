#include "os/coherence/mesi.h"

#include <algorithm>
#include <vector>

#include "obs/metrics.h"
#include "sim/log.h"
#include "snap/io.h"

namespace k2 {
namespace os {
namespace coherence {

MesiPair::MesiPair(ProtocolKind kind, const PairHost &host)
    : PairProtocol(host), kind_(kind)
{
    K2_ASSERT(kind == ProtocolKind::Mesi ||
              kind == ProtocolKind::Moesi);
    if (h_.numPages > kOpMaxPages)
        K2_FATAL("MESI/MOESI DSM limited to %llu pages (opcode "
                 "payload bits), got %llu",
                 static_cast<unsigned long long>(kOpMaxPages),
                 static_cast<unsigned long long>(h_.numPages));
}

MesiPair::PageInfo &
MesiPair::info(std::uint64_t page)
{
    K2_ASSERT(page < h_.numPages);
    auto it = pages_.find(page);
    if (it == pages_.end()) {
        auto pi = std::make_unique<PageInfo>();
        pi->grant = std::make_unique<sim::Event>(engine());
        pi->settled = std::make_unique<sim::Event>(engine());
        it = pages_.emplace(page, std::move(pi)).first;
    }
    return *it->second;
}

bool
MesiPair::satisfies(MState s, Access rw) const
{
    if (rw == Access::Read)
        return s != MState::I;
    // E permits a silent upgrade to M (the MESI selling point); O is a
    // *shared* dirty copy, so writing through it needs an upgrade.
    return s == MState::M || s == MState::E;
}

bool
MesiPair::isLocallyValid(KernelIdx kernel, std::uint64_t page,
                         Access rw) const
{
    auto it = pages_.find(page);
    const MState s = (it == pages_.end())
        ? (kernel == 0 ? MState::E : MState::I)
        : it->second->state[kernel];
    return satisfies(s, rw);
}

sim::Task<void>
MesiPair::demote(std::uint64_t page, soc::Core &core, KernelIdx k)
{
    PageInfo &pi = info(page);
    if (pi.demoted)
        co_return;
    pi.demoted = true;
    h_.demotions->inc();
    co_await core.execTime(h_.mmus[k]->protectionUpdate(page));
}

sim::Task<void>
MesiPair::access(KernelIdx k, soc::Core &core, std::uint64_t page,
                 Access rw)
{
    PageInfo &pi = info(page);

    const auto grain =
        pi.demoted ? soc::MapGrain::Page4K : soc::MapGrain::Section1M;
    const sim::Duration walk = h_.mmus[k]->translate(page, grain);
    if (walk)
        co_await core.execTime(walk);

    for (;;) {
        while (pi.outstanding[k]) {
            core.pinActive();
            co_await pi.settled->wait();
            core.unpinActive();
        }
        if (satisfies(pi.state[k], rw)) {
            // Silent E->M upgrade: no messages, no cost.
            if (rw == Access::Write && pi.state[k] == MState::E)
                pi.state[k] = MState::M;
            co_return;
        }

        FaultStats &st = (*h_.stats)[k];
        st.faults.inc();
        K2_TRACE(engine(), sim::TraceCat::Dsm,
                 "%s %s-faults on page %llu (%s)",
                 h_.kernels[k]->name().c_str(),
                 protocolName(kind_),
                 static_cast<unsigned long long>(page),
                 rw == Access::Write ? "W" : "R");
        pi.outstanding[k] = true;
        // An upgrade fault holds a valid (read) copy while requesting
        // exclusivity; the peer's concurrent GetX invalidates it and
        // marks the race, exactly like the MSI Shared->Exclusive case.
        pi.upgrade[k] = pi.state[k] != MState::I;
        pi.raced[k] = false;
        pi.pendingRw[k] = rw;

        if (!pi.demoted)
            co_await demote(page, core, k);

        const sim::Time t0 = engine().now();
        sim::Duration entry = h_.costs->faultEntry[k];
        // Read sharing needs read/write distinction from the MMU; the
        // weak kernel pays the cascaded-MMU tracking penalty (§6.3).
        if (k == 1)
            entry += h_.mmus[k]->readTrackPenalty();
        co_await core.execTime(entry);
        const sim::Time t1 = engine().now();

        co_await core.execTime(h_.costs->protocolExec[k]);
        const sim::Time t2 = engine().now();

        const std::uint32_t op = static_cast<std::uint32_t>(
            rw == Access::Write ? ReqOp::GetX : ReqOp::GetS);
        h_.messages->inc();
        h_.kernels[k]->sendMail(
            h_.kernels[1 - k]->domainId(),
            encodeMessage(MsgType::GetExclusive, packOp(op, page),
                          (*h_.seq)++ & kSeqMask));

        pi.grant->reset();
        pi.grantArrived[k] = false;
        core.pinActive();
        if (h_.retry->timeout == 0) {
            co_await pi.grant->wait();
        } else {
            sim::Duration rto = h_.retry->timeout;
            while (!pi.grantArrived[k]) {
                bool timer_fired = false;
                sim::Event *grant = pi.grant.get();
                sim::EventId timer = engine().after(
                    rto, [grant, &timer_fired]() {
                        timer_fired = true;
                        grant->pulse();
                    });
                co_await pi.grant->wait();
                engine().cancel(timer);
                if (pi.grantArrived[k])
                    break;
                if (!timer_fired)
                    continue;
                h_.retries->inc();
                h_.messages->inc();
                h_.kernels[k]->sendMail(
                    h_.kernels[1 - k]->domainId(),
                    encodeMessage(MsgType::GetExclusive,
                                  packOp(op, page),
                                  (*h_.seq)++ & kSeqMask));
                rto = std::min(rto * 2, h_.retry->maxTimeout);
            }
        }
        core.unpinActive();
        const sim::Time t3 = engine().now();

        co_await core.execTime(h_.costs->exitRefill[k] +
                               h_.mmus[k]->protectionUpdate(page));
        const sim::Time t4 = engine().now();

        const bool raced = pi.raced[k];
        if (!raced) {
            pi.state[k] = (rw == Access::Write) ? MState::M
                                                : pi.grantState[k];
        }
        pi.outstanding[k] = false;
        pi.upgrade[k] = false;
        pi.settled->pulse();

        if (engine().tracer().spansOn()) {
            sim::Tracer &tr = engine().tracer();
            tr.spanComplete(t0, t4 - t0, h_.tracks[k], "fault");
            tr.spanComplete(t0, t1 - t0, h_.tracks[k], "fault_entry");
            tr.spanComplete(t1, t2 - t1, h_.tracks[k], "protocol");
            tr.spanComplete(t2, t3 - t2, h_.tracks[k], "comm+service");
            tr.spanComplete(t3, t4 - t3, h_.tracks[k], "exit_refill");
        }

        st.localFaultUs.sample(sim::toUsec(t1 - t0));
        st.protocolUs.sample(sim::toUsec(t2 - t1));
        st.serviceUs.sample(sim::toUsec(pi.lastServiceTime));
        st.commUs.sample(sim::toUsec(t3 - t2) -
                         sim::toUsec(pi.lastServiceTime));
        st.exitUs.sample(sim::toUsec(t4 - t3));
        st.totalUs.sample(sim::toUsec(t4 - t0));

        if (!raced)
            co_return;
        // Invalidated by the peer's concurrent upgrade; retry.
    }
}

sim::Task<void>
MesiPair::serviceGet(KernelIdx owner, std::uint64_t page, Access rw)
{
    PageInfo &pi = info(page);

    if (owner == 0) {
        sim::Duration defer = h_.costs->mainBottomHalf;
        if (h_.kernels[0]->scheduler().runqueueDepth() > 0)
            defer += h_.costs->mainLoadedDefer;
        co_await engine().sleep(defer);
    }

    // Serialisation mirrors the two-state protocol: wait for a local
    // fault to settle, except for upgrade races and post-recovery
    // crossed faults, which service immediately and let the local
    // fault retry (see two_state.cpp for the deadlock analysis).
    bool crossed = false;
    for (;;) {
        crossed = owner != 0 && pi.outstanding[owner] &&
                  !pi.upgrade[owner] &&
                  pi.state[owner] == MState::I;
        if (crossed || !pi.outstanding[owner] || pi.upgrade[owner])
            break;
        co_await pi.settled->wait();
    }

    soc::CoherenceDomain &dom = h_.kernels[owner]->domain();
    soc::Core *core = &dom.core(0);
    for (std::size_t i = 0; i < dom.numCores(); ++i) {
        if (dom.core(i).state() == soc::PowerState::Idle) {
            core = &dom.core(i);
            break;
        }
    }
    if (!core->awake())
        co_await core->ensureAwake();

    const sim::Time t_start = engine().now();
    const MState s = pi.state[owner];
    const bool dirty = s == MState::M || s == MState::O;
    sim::Duration cost = h_.costs->serviceBase[owner] +
                         h_.mmus[owner]->protectionUpdate(page);
    if (dirty) {
        if (moesi()) {
            // Owner forwards dirty data cache-to-cache through the
            // coherent region; no memory writeback.
            cost += dom.flushTime(h_.soc->pageBytes()) / 2;
            forwards_.inc();
        } else {
            cost += dom.flushTime(h_.soc->pageBytes());
            writebacks_.inc();
        }
    }
    co_await core->execTime(cost);

    RepOp grant_op;
    if (rw == Access::Read) {
        // Downgrade for a read: MESI writes back (M->S); MOESI keeps
        // the dirty line Owned (M->O, O->O). A clean E copy degrades
        // to S; an Invalid copy means the requester will hold the only
        // copy and is granted clean-exclusive E.
        switch (s) {
          case MState::M:
            pi.state[owner] = moesi() ? MState::O : MState::S;
            break;
          case MState::O:
          case MState::S:
            break; // already shared
          case MState::E:
            pi.state[owner] = MState::S;
            break;
          case MState::I:
            break;
        }
        grant_op = (s == MState::I) ? RepOp::GrantE : RepOp::GrantS;
    } else {
        if (pi.outstanding[owner] && (pi.upgrade[owner] || crossed))
            pi.raced[owner] = true;
        pi.state[owner] = MState::I;
        grant_op = RepOp::GrantX;
    }
    pi.lastServiceTime = engine().now() - t_start;
    engine().spanComplete(t_start, h_.tracks[owner], "service");
    K2_TRACE(engine(), sim::TraceCat::Dsm,
             "%s services page %llu (%s, %s)",
             h_.kernels[owner]->name().c_str(),
             static_cast<unsigned long long>(page),
             rw == Access::Write ? "GetX" : "GetS",
             dirty ? (moesi() ? "forward" : "writeback") : "clean");

    h_.messages->inc();
    h_.kernels[owner]->sendMail(
        h_.kernels[1 - owner]->domainId(),
        encodeMessage(MsgType::PutExclusive,
                      packOp(static_cast<std::uint32_t>(grant_op),
                             page),
                      (*h_.seq)++ & kSeqMask));
}

std::uint64_t
MesiPair::reclaimAll(KernelIdx owner)
{
    K2_ASSERT(owner < 2);
    const KernelIdx peer = 1 - owner;
    std::uint64_t reclaimed = 0;
    std::vector<std::uint64_t> keys;
    keys.reserve(pages_.size());
    for (const auto &kv : pages_)
        keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());
    for (std::uint64_t page : keys) {
        auto &pi = pages_.at(page);
        // The survivor ends sole holder. A Modified copy stays M;
        // anything else becomes clean-exclusive E (the replica layer
        // rewrites content on re-sync).
        const MState ns =
            pi->state[owner] == MState::M ? MState::M : MState::E;
        if (pi->state[owner] != ns || pi->state[peer] != MState::I)
            ++reclaimed;
        pi->state[owner] = ns;
        pi->state[peer] = MState::I;
        if (pi->outstanding[owner] && !pi->grantArrived[owner]) {
            pi->grantState[owner] =
                pi->pendingRw[owner] == Access::Write ? MState::M
                                                      : MState::E;
            pi->grantArrived[owner] = true;
            pi->grant->pulse();
        }
    }
    return reclaimed;
}

void
MesiPair::snapState(snap::Io &io)
{
    std::vector<std::uint64_t> keys;
    keys.reserve(pages_.size());
    for (const auto &kv : pages_)
        keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());
    std::uint64_t n = io.count(keys.size());
    if (io.restoring()) {
        std::vector<std::uint64_t> snapKeys(
            static_cast<std::size_t>(n));
        for (auto &k : snapKeys)
            io.pod(k);
        for (std::uint64_t k : keys) {
            if (!std::binary_search(snapKeys.begin(), snapKeys.end(),
                                    k))
                pages_.erase(k);
        }
        keys = std::move(snapKeys);
    } else {
        for (std::uint64_t k : keys) {
            std::uint64_t v = k;
            io.pod(v);
        }
    }
    for (std::uint64_t k : keys) {
        auto it = pages_.find(k);
        if (it == pages_.end())
            K2_FATAL("snapshot restore: MESI page %llu missing",
                     static_cast<unsigned long long>(k));
        PageInfo &pi = *it->second;
        io.pod(pi.state);
        io.pod(pi.demoted);
        io.pod(pi.outstanding);
        io.pod(pi.upgrade);
        io.pod(pi.raced);
        io.pod(pi.grantArrived);
        io.pod(pi.grantState);
        io.pod(pi.pendingRw);
        pi.grant->snapState(io);
        pi.settled->snapState(io);
        io.pod(pi.lastServiceTime);
    }
    io.pod(forwards_);
    io.pod(writebacks_);
}

void
MesiPair::registerMetrics(obs::MetricsRegistry &reg,
                          const std::string &prefix) const
{
    const std::string pp = prefix + "." + protocolName(kind_);
    reg.addCounter(pp + ".forwards", forwards_);
    reg.addCounter(pp + ".writebacks", writebacks_);
}

sim::Task<void>
MesiPair::handleMail(KernelIdx to_kernel, Message msg, soc::Core &core)
{
    const std::uint64_t page = pageOf(msg.payload);
    const std::uint32_t op = opOf(msg.payload);
    switch (msg.type) {
      case MsgType::GetExclusive: {
        const Access rw = (op == static_cast<std::uint32_t>(ReqOp::GetX))
            ? Access::Write : Access::Read;
        engine().spawn(serviceGet(to_kernel, page, rw));
        co_return;
      }
      case MsgType::PutExclusive: {
        co_await core.execTime(h_.soc->costs().busAccess);
        PageInfo &pi = info(page);
        switch (static_cast<RepOp>(op)) {
          case RepOp::GrantS:
            pi.grantState[to_kernel] = MState::S;
            break;
          case RepOp::GrantE:
            pi.grantState[to_kernel] = MState::E;
            break;
          case RepOp::GrantX:
            pi.grantState[to_kernel] = MState::M;
            break;
          case RepOp::InvAck:
            K2_PANIC("pairwise MESI does not use InvAck");
        }
        pi.grantArrived[to_kernel] = true;
        pi.grant->pulse();
        co_return;
      }
      default:
        K2_PANIC("MESI DSM received non-DSM message type %u",
                 static_cast<unsigned>(msg.type));
    }
}

} // namespace coherence
} // namespace os
} // namespace k2
