/**
 * @file
 * Pairwise MESI / MOESI between the main and shadow kernels.
 *
 * With two parties the directory degenerates to a snoop over the
 * mailbox: the faulting kernel sends GetS/GetX straight to its peer
 * (opcode in the payload's top bits, see protocol.h), which services
 * and grants back. The N-domain home-directory variant lives in
 * os::NDsm (coherence/directory.h).
 *
 * What the extra states buy on this platform:
 *  - E (clean exclusive): a kernel that wrote via an E copy upgrades
 *    silently -- no upgrade round trip, unlike MSI where a sole clean
 *    Shared copy still pays a full GetX fault to write.
 *  - O (MOESI, owned-dirty): a read of a Modified page makes the
 *    holder Owner instead of forcing a writeback; dirty data is
 *    forwarded cache-to-cache through the small coherent region at
 *    half the flush cost, and no memory writeback ever happens on the
 *    read-sharing path.
 *
 * Both variants track reads, so weak-kernel faults pay the Cortex-M3
 * cascaded-MMU read-tracking penalty exactly as the paper's MSI
 * alternative does (§6.3).
 */

#ifndef K2_OS_COHERENCE_MESI_H
#define K2_OS_COHERENCE_MESI_H

#include <unordered_map>

#include "os/coherence/protocol.h"

namespace k2 {
namespace os {
namespace coherence {

class MesiPair : public PairProtocol
{
  public:
    MesiPair(ProtocolKind kind, const PairHost &host);

    ProtocolKind kind() const override { return kind_; }

    sim::Task<void> access(KernelIdx k, soc::Core &core,
                           std::uint64_t page, Access rw) override;
    sim::Task<void> handleMail(KernelIdx to, Message msg,
                               soc::Core &core) override;
    bool isLocallyValid(KernelIdx k, std::uint64_t page,
                        Access rw) const override;
    std::uint64_t reclaimAll(KernelIdx owner) override;
    void snapState(snap::Io &io) override;
    void registerMetrics(obs::MetricsRegistry &reg,
                         const std::string &prefix) const override;

    /** Dirty cache-to-cache forwards (MOESI's saved writebacks). */
    std::uint64_t forwards() const { return forwards_.value(); }

    /** Dirty writebacks to memory on service (MESI pays these). */
    std::uint64_t writebacks() const { return writebacks_.value(); }

  private:
    enum class MState : std::uint8_t { I = 0, S, E, O, M };

    struct PageInfo
    {
        std::array<MState, 2> state{MState::E, MState::I};
        bool demoted = false;
        std::array<bool, 2> outstanding{false, false};
        std::array<bool, 2> upgrade{false, false}; //!< Valid copy held.
        std::array<bool, 2> raced{false, false};   //!< Lost an upgrade.
        std::array<bool, 2> grantArrived{false, false};
        /** State granted by the peer's reply (valid on grantArrived). */
        std::array<MState, 2> grantState{MState::I, MState::I};
        /** Access kind of the fault in flight (for crash recovery). */
        std::array<Access, 2> pendingRw{Access::Read, Access::Read};
        std::unique_ptr<sim::Event> grant;
        std::unique_ptr<sim::Event> settled;
        sim::Duration lastServiceTime = 0;
    };

    PageInfo &info(std::uint64_t page);
    bool satisfies(MState s, Access rw) const;
    bool moesi() const { return kind_ == ProtocolKind::Moesi; }

    /** Peer-side servicing of a GetS/GetX request. */
    sim::Task<void> serviceGet(KernelIdx owner, std::uint64_t page,
                               Access rw);

    sim::Task<void> demote(std::uint64_t page, soc::Core &core,
                           KernelIdx k);

    ProtocolKind kind_;
    std::unordered_map<std::uint64_t, std::unique_ptr<PageInfo>> pages_;
    sim::Counter forwards_;
    sim::Counter writebacks_;
};

} // namespace coherence
} // namespace os
} // namespace k2

#endif // K2_OS_COHERENCE_MESI_H
