/**
 * @file
 * The paper's protocols, extracted verbatim from the pre-strategy Dsm:
 * the §6.3 two-state scheme (Valid/Invalid, exclusive-only) and its
 * three-state MSI alternative (read sharing; weak-kernel faults pay
 * the cascaded-MMU read-tracking penalty).
 *
 * These two are the byte-identical-compatibility anchors: the default
 * configuration's artifacts (fig6*, table5/6, testbed metrics and
 * trace) must not move by a single byte across the strategy
 * extraction, so this file preserves the original control flow, event
 * creation points and message encoding (page in the full 20-bit
 * payload, access kind in seq bit 8) exactly.
 */

#ifndef K2_OS_COHERENCE_TWO_STATE_H
#define K2_OS_COHERENCE_TWO_STATE_H

#include <unordered_map>

#include "os/coherence/protocol.h"

namespace k2 {
namespace os {
namespace coherence {

class TwoStatePair : public PairProtocol
{
  public:
    TwoStatePair(ProtocolKind kind, const PairHost &host);

    ProtocolKind kind() const override { return kind_; }

    sim::Task<void> access(KernelIdx k, soc::Core &core,
                           std::uint64_t page, Access rw) override;
    sim::Task<void> handleMail(KernelIdx to, Message msg,
                               soc::Core &core) override;
    bool isLocallyValid(KernelIdx k, std::uint64_t page,
                        Access rw) const override;
    std::uint64_t reclaimAll(KernelIdx owner) override;
    void snapState(snap::Io &io) override;

  private:
    /** Per-kernel page state. */
    enum class PState : std::uint8_t { Invalid, Shared, Exclusive };

    struct PageInfo
    {
        std::array<PState, 2> state{PState::Exclusive, PState::Invalid};
        bool demoted = false;
        std::array<bool, 2> outstanding{false, false};
        std::array<bool, 2> upgrade{false, false}; //!< MSI upgrade race.
        std::array<bool, 2> raced{false, false};   //!< Lost an upgrade.
        /** Grant really arrived (vs a retry-timer pulse). */
        std::array<bool, 2> grantArrived{false, false};
        std::unique_ptr<sim::Event> grant;   //!< Pulsed on PutExclusive.
        std::unique_ptr<sim::Event> settled; //!< Pulsed when a local
                                             //!< fault fully completes.
        sim::Duration lastServiceTime = 0;   //!< For attribution only.
    };

    PageInfo &info(std::uint64_t page);

    bool satisfies(PState s, Access rw) const;

    /** The owner-side servicing of a Get request (possibly deferred). */
    sim::Task<void> serviceGet(KernelIdx owner, std::uint64_t page,
                               Access rw, std::uint32_t seq);

    sim::Task<void> demote(std::uint64_t page, soc::Core &core,
                           KernelIdx k);

    ProtocolKind kind_;
    std::unordered_map<std::uint64_t, std::unique_ptr<PageInfo>> pages_;
};

} // namespace coherence
} // namespace os
} // namespace k2

#endif // K2_OS_COHERENCE_TWO_STATE_H
