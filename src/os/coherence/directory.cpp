#include "os/coherence/directory.h"

#include <algorithm>

#include "obs/metrics.h"
#include "sim/log.h"
#include "snap/io.h"

namespace k2 {
namespace os {
namespace coherence {

Directory::Directory(ProtocolKind kind, std::size_t num_kernels,
                     std::uint64_t num_pages)
    : kind_(kind), n_(num_kernels), numPages_(num_pages)
{
    K2_ASSERT(kind == ProtocolKind::ThreeState ||
              kind == ProtocolKind::Mesi || kind == ProtocolKind::Moesi);
    K2_ASSERT(n_ >= 2 && n_ <= 32);
    K2_ASSERT(numPages_ <= kOpMaxPages);
}

Directory::Entry &
Directory::entry(std::uint64_t page)
{
    K2_ASSERT(page < numPages_);
    return entries_[page];
}

std::size_t
Directory::ownerOf(std::uint64_t page) const
{
    auto it = entries_.find(page);
    return it == entries_.end() ? 0 : it->second.owner;
}

bool
Directory::readValid(std::size_t k, std::uint64_t page) const
{
    auto it = entries_.find(page);
    const std::uint32_t sharers =
        it == entries_.end() ? 1u : it->second.sharers;
    return (sharers & bit(k)) != 0;
}

bool
Directory::writeValid(std::size_t k, std::uint64_t page)
{
    Entry &e = entry(page);
    if (e.owner != k || e.sharers != bit(k))
        return false;
    if (e.dirty)
        return true;
    // Sole clean owner: MESI/MOESI upgrade E->M silently; MSI has no
    // E state, so even the last holder standing pays a GetX.
    if (kind_ == ProtocolKind::ThreeState)
        return false;
    e.dirty = true;
    return true;
}

void
Directory::finishWrite(Entry &e, std::size_t req)
{
    e.owner = static_cast<std::uint32_t>(req);
    e.sharers = bit(req);
    e.dirty = true;
    e.reqActive = false;
    e.ackWait = 0;
}

std::vector<std::uint64_t>
Directory::reclaim(std::size_t dead, std::size_t to,
                   std::vector<std::uint64_t> &completed)
{
    // Ascending page order for deterministic recovery.
    std::vector<std::uint64_t> keys;
    keys.reserve(entries_.size());
    for (const auto &kv : entries_)
        keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());

    std::vector<std::uint64_t> moved;
    for (std::uint64_t page : keys) {
        Entry &e = entries_.at(page);
        e.sharers &= ~bit(dead);
        if (e.owner == dead) {
            // The dirty copy (if any) died with the domain; the
            // inheritor re-syncs data out of band and owns it clean.
            e.owner = static_cast<std::uint32_t>(to);
            e.sharers |= bit(to);
            e.dirty = false;
            moved.push_back(page);
        }
        if (e.reqActive && e.requester == dead) {
            // The faulter is gone; cancel its transaction.
            e.reqActive = false;
            e.ackWait = 0;
            continue;
        }
        if ((e.ackWait & bit(dead)) != 0) {
            e.ackWait &= ~bit(dead);
            if (e.reqActive && e.reqWrite && e.ackWait == 0) {
                finishWrite(e, e.requester);
                completed.push_back(page);
            }
        }
        if (e.reqActive && !e.reqWrite && e.owner == to &&
            !moved.empty() && moved.back() == page) {
            // A read stalled on the dead dirty owner: the inheritor's
            // clean copy satisfies it.
            e.sharers |= bit(e.requester);
            e.reqActive = false;
            completed.push_back(page);
        }
    }
    return moved;
}

void
Directory::registerMetrics(obs::MetricsRegistry &reg,
                           const std::string &prefix) const
{
    const std::string pp =
        prefix + "." + protocolName(kind_);
    reg.addCounter(pp + ".invalidations", invalidations_);
    reg.addCounter(pp + ".forwards", forwards_);
    reg.addCounter(pp + ".writebacks", writebacks_);
}

void
Directory::snapState(snap::Io &io)
{
    io.pod(invalidations_);
    io.pod(forwards_);
    io.pod(writebacks_);
    std::vector<std::uint64_t> keys;
    keys.reserve(entries_.size());
    for (const auto &kv : entries_)
        keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());
    std::uint64_t n = io.count(keys.size());
    if (io.restoring()) {
        std::vector<std::uint64_t> snapKeys(
            static_cast<std::size_t>(n));
        for (auto &k : snapKeys)
            io.pod(k);
        for (std::uint64_t k : keys) {
            if (!std::binary_search(snapKeys.begin(), snapKeys.end(),
                                    k))
                entries_.erase(k);
        }
        keys = std::move(snapKeys);
    } else {
        for (std::uint64_t k : keys) {
            std::uint64_t v = k;
            io.pod(v);
        }
    }
    for (std::uint64_t k : keys) {
        Entry &e = entries_[k]; // Created if dropped before capture.
        io.pod(e.owner);
        io.pod(e.sharers);
        io.pod(e.dirty);
        io.pod(e.reqActive);
        io.pod(e.reqWrite);
        io.pod(e.requester);
        io.pod(e.ackWait);
        io.pod(e.serviceStart);
    }
}

} // namespace coherence
} // namespace os
} // namespace k2
