#include "os/coherence/protocol.h"

#include "os/coherence/mesi.h"
#include "os/coherence/rac.h"
#include "os/coherence/two_state.h"

namespace k2 {
namespace os {
namespace coherence {

const char *
protocolName(ProtocolKind kind)
{
    switch (kind) {
      case ProtocolKind::TwoState:   return "2state";
      case ProtocolKind::ThreeState: return "3state";
      case ProtocolKind::Mesi:       return "mesi";
      case ProtocolKind::Moesi:      return "moesi";
      case ProtocolKind::Rac:        return "rac";
    }
    K2_PANIC("unknown ProtocolKind %u", static_cast<unsigned>(kind));
}

std::array<ProtocolKind, kNumProtocols>
allProtocols()
{
    return {ProtocolKind::TwoState, ProtocolKind::ThreeState,
            ProtocolKind::Mesi, ProtocolKind::Moesi, ProtocolKind::Rac};
}

std::string
protocolNames()
{
    std::string names;
    for (ProtocolKind kind : allProtocols()) {
        if (!names.empty())
            names += ", ";
        names += protocolName(kind);
    }
    return names;
}

bool
lookupProtocol(const std::string &name, ProtocolKind &out)
{
    for (ProtocolKind kind : allProtocols()) {
        if (name == protocolName(kind)) {
            out = kind;
            return true;
        }
    }
    return false;
}

ProtocolKind
parseProtocol(const std::string &name, std::size_t at)
{
    ProtocolKind kind;
    if (!lookupProtocol(name, kind))
        K2_FATAL("unknown DSM protocol '%s' at char %zu (valid: %s)",
                 name.c_str(), at, protocolNames().c_str());
    return kind;
}

bool
readSharing(ProtocolKind kind)
{
    switch (kind) {
      case ProtocolKind::ThreeState:
      case ProtocolKind::Mesi:
      case ProtocolKind::Moesi:
        return true;
      case ProtocolKind::TwoState:
      case ProtocolKind::Rac:
        return false;
    }
    K2_PANIC("unknown ProtocolKind %u", static_cast<unsigned>(kind));
}

std::unique_ptr<PairProtocol>
makePairProtocol(ProtocolKind kind, const PairHost &host)
{
    switch (kind) {
      case ProtocolKind::TwoState:
      case ProtocolKind::ThreeState:
        return std::make_unique<TwoStatePair>(kind, host);
      case ProtocolKind::Mesi:
      case ProtocolKind::Moesi:
        return std::make_unique<MesiPair>(kind, host);
      case ProtocolKind::Rac:
        return std::make_unique<RacPair>(host);
    }
    K2_PANIC("unknown ProtocolKind %u", static_cast<unsigned>(kind));
}

} // namespace coherence
} // namespace os
} // namespace k2
