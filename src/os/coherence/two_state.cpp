#include "os/coherence/two_state.h"

#include <algorithm>
#include <vector>

#include "sim/log.h"
#include "snap/io.h"

namespace k2 {
namespace os {
namespace coherence {

namespace {

/** The Get message carries the access kind in the top sequence bit. */
constexpr std::uint32_t kRwFlag = 0x100;

std::uint32_t
packSeq(std::uint32_t seq, Access rw)
{
    return (seq & 0xFF) | (rw == Access::Write ? kRwFlag : 0);
}

Access
unpackRw(std::uint32_t seq)
{
    return (seq & kRwFlag) ? Access::Write : Access::Read;
}

} // namespace

TwoStatePair::TwoStatePair(ProtocolKind kind, const PairHost &host)
    : PairProtocol(host), kind_(kind)
{
    K2_ASSERT(kind == ProtocolKind::TwoState ||
              kind == ProtocolKind::ThreeState);
}

TwoStatePair::PageInfo &
TwoStatePair::info(std::uint64_t page)
{
    K2_ASSERT(page < h_.numPages);
    auto it = pages_.find(page);
    if (it == pages_.end()) {
        auto pi = std::make_unique<PageInfo>();
        pi->grant = std::make_unique<sim::Event>(engine());
        pi->settled = std::make_unique<sim::Event>(engine());
        it = pages_.emplace(page, std::move(pi)).first;
    }
    return *it->second;
}

bool
TwoStatePair::satisfies(PState s, Access rw) const
{
    if (s == PState::Exclusive)
        return true;
    if (kind_ == ProtocolKind::ThreeState && s == PState::Shared)
        return rw == Access::Read;
    return false;
}

bool
TwoStatePair::isLocallyValid(KernelIdx kernel, std::uint64_t page,
                             Access rw) const
{
    auto it = pages_.find(page);
    const PState s = (it == pages_.end())
        ? (kernel == 0 ? PState::Exclusive : PState::Invalid)
        : it->second->state[kernel];
    return satisfies(s, rw);
}

sim::Task<void>
TwoStatePair::demote(std::uint64_t page, soc::Core &core, KernelIdx k)
{
    PageInfo &pi = info(page);
    if (pi.demoted)
        co_return;
    pi.demoted = true;
    h_.demotions->inc();
    // Replacing the local large-grain mapping with 4 KB entries: one
    // page-table update on the faulting side. The remote side's
    // mapping is rewritten when it services/faults next; its cost is
    // folded into the protection updates charged there.
    co_await core.execTime(h_.mmus[k]->protectionUpdate(page));
}

sim::Task<void>
TwoStatePair::access(KernelIdx k, soc::Core &core, std::uint64_t page,
                     Access rw)
{
    PageInfo &pi = info(page);

    // Address translation through the local MMU at the page's current
    // mapping grain.
    const auto grain =
        pi.demoted ? soc::MapGrain::Page4K : soc::MapGrain::Section1M;
    const sim::Duration walk = h_.mmus[k]->translate(page, grain);
    if (walk)
        co_await core.execTime(walk);

    for (;;) {
        // Serialise with a fault already in flight on this kernel.
        while (pi.outstanding[k]) {
            core.pinActive();
            co_await pi.settled->wait();
            core.unpinActive();
        }
        if (satisfies(pi.state[k], rw))
            co_return;

        // ---- Full fault path (Table 5). ----
        FaultStats &st = (*h_.stats)[k];
        st.faults.inc();
        K2_TRACE(engine(), sim::TraceCat::Dsm,
                 "%s faults on page %llu (%s)",
                 h_.kernels[k]->name().c_str(),
                 static_cast<unsigned long long>(page),
                 rw == Access::Write ? "W" : "R");
        pi.outstanding[k] = true;
        pi.upgrade[k] = (pi.state[k] == PState::Shared);
        pi.raced[k] = false;

        if (!pi.demoted)
            co_await demote(page, core, k);

        const sim::Time t0 = engine().now();
        sim::Duration entry = h_.costs->faultEntry[k];
        if (kind_ == ProtocolKind::ThreeState && k == 1)
            entry += h_.mmus[k]->readTrackPenalty();
        co_await core.execTime(entry);
        const sim::Time t1 = engine().now();

        co_await core.execTime(h_.costs->protocolExec[k]);
        const sim::Time t2 = engine().now();

        const std::uint32_t seq = (*h_.seq)++;
        h_.messages->inc();
        h_.kernels[k]->sendMail(
            h_.kernels[1 - k]->domainId(),
            encodeMessage(MsgType::GetExclusive, page & kPayloadMask,
                          packSeq(seq, rw)));

        // Spin (synchronously -- the faulting context may be an
        // interrupt handler) until the grant arrives. With a retry
        // policy, re-send the Get when the grant times out: the
        // request or its grant may have been lost, or the peer may be
        // down until the watchdog revives it.
        pi.grant->reset();
        pi.grantArrived[k] = false;
        core.pinActive();
        if (h_.retry->timeout == 0) {
            co_await pi.grant->wait();
        } else {
            sim::Duration rto = h_.retry->timeout;
            while (!pi.grantArrived[k]) {
                bool timer_fired = false;
                sim::Event *grant = pi.grant.get();
                sim::EventId timer = engine().after(
                    rto, [grant, &timer_fired]() {
                        timer_fired = true;
                        grant->pulse();
                    });
                co_await pi.grant->wait();
                engine().cancel(timer);
                if (pi.grantArrived[k])
                    break;
                if (!timer_fired)
                    continue; // Woken by an unrelated pulse; re-wait.
                h_.retries->inc();
                h_.messages->inc();
                K2_TRACE(engine(), sim::TraceCat::Dsm,
                         "%s retries Get for page %llu",
                         h_.kernels[k]->name().c_str(),
                         static_cast<unsigned long long>(page));
                h_.kernels[k]->sendMail(
                    h_.kernels[1 - k]->domainId(),
                    encodeMessage(MsgType::GetExclusive,
                                  page & kPayloadMask,
                                  packSeq((*h_.seq)++, rw)));
                rto = std::min(rto * 2, h_.retry->maxTimeout);
            }
        }
        core.unpinActive();
        const sim::Time t3 = engine().now();

        co_await core.execTime(h_.costs->exitRefill[k] +
                               h_.mmus[k]->protectionUpdate(page));
        const sim::Time t4 = engine().now();

        const bool raced = pi.raced[k];
        if (!raced) {
            if (kind_ == ProtocolKind::TwoState ||
                rw == Access::Write) {
                pi.state[k] = PState::Exclusive;
            } else {
                // Read fault under MSI: both sides end up Shared (the
                // service side downgraded itself).
                pi.state[k] = PState::Shared;
            }
        }
        pi.outstanding[k] = false;
        pi.upgrade[k] = false;
        pi.settled->pulse();

        // Emit the fault and its phases as nested spans on the
        // faulting kernel's track: a parent "fault" X event spanning
        // t0..t4 with four child phases inside it (the same breakdown
        // as Table 5).
        if (engine().tracer().spansOn()) {
            sim::Tracer &tr = engine().tracer();
            tr.spanComplete(t0, t4 - t0, h_.tracks[k], "fault");
            tr.spanComplete(t0, t1 - t0, h_.tracks[k], "fault_entry");
            tr.spanComplete(t1, t2 - t1, h_.tracks[k], "protocol");
            tr.spanComplete(t2, t3 - t2, h_.tracks[k], "comm+service");
            tr.spanComplete(t3, t4 - t3, h_.tracks[k], "exit_refill");
        }

        st.localFaultUs.sample(sim::toUsec(t1 - t0));
        st.protocolUs.sample(sim::toUsec(t2 - t1));
        st.serviceUs.sample(sim::toUsec(pi.lastServiceTime));
        st.commUs.sample(sim::toUsec(t3 - t2) -
                         sim::toUsec(pi.lastServiceTime));
        st.exitUs.sample(sim::toUsec(t4 - t3));
        st.totalUs.sample(sim::toUsec(t4 - t0));

        if (!raced)
            co_return;
        // Our copy was invalidated by a concurrent upgrade from the
        // other kernel while we waited; retry the fault.
    }
}

sim::Task<void>
TwoStatePair::serviceGet(KernelIdx owner, std::uint64_t page, Access rw,
                         std::uint32_t seq)
{
    (void)seq;
    PageInfo &pi = info(page);

    // The main kernel handles coherence requests in a bottom half and
    // defers further under load; the shadow kernel serves immediately.
    if (owner == 0) {
        sim::Duration defer = h_.costs->mainBottomHalf;
        if (h_.kernels[0]->scheduler().runqueueDepth() > 0)
            defer += h_.costs->mainLoadedDefer;
        co_await engine().sleep(defer);
    }

    // Serialise with a local fault in flight, except for a concurrent
    // Shared->Exclusive upgrade race, which we resolve by invalidating
    // the local copy and letting the local fault retry.
    //
    // A *crossed* pair of exclusive faults -- both copies Invalid, each
    // kernel waiting for the other's grant -- can only arise after
    // crash recovery desynchronises ownership (reclaim forces the dead
    // side Invalid mid-fault; its stale retransmitted Get later
    // invalidates the survivor). Waiting here would then deadlock:
    // this service waits for the local fault to settle, the local
    // fault waits for a grant the peer's equally-parked service never
    // sends. The weak side breaks the cycle the same way the upgrade
    // race does: service immediately and let the local fault retry.
    bool crossed = false;
    for (;;) {
        crossed = owner != 0 && pi.outstanding[owner] &&
                  !pi.upgrade[owner] &&
                  pi.state[owner] == PState::Invalid;
        if (crossed || !pi.outstanding[owner] || pi.upgrade[owner])
            break;
        co_await pi.settled->wait();
    }

    // Pick a core of the owning domain to run the service on.
    soc::CoherenceDomain &dom = h_.kernels[owner]->domain();
    soc::Core *core = &dom.core(0);
    for (std::size_t i = 0; i < dom.numCores(); ++i) {
        if (dom.core(i).state() == soc::PowerState::Idle) {
            core = &dom.core(i);
            break;
        }
    }
    if (!core->awake())
        co_await core->ensureAwake();

    const sim::Time t_start = engine().now();
    const bool dirty = pi.state[owner] == PState::Exclusive;
    sim::Duration cost = h_.costs->serviceBase[owner] +
                         h_.mmus[owner]->protectionUpdate(page);
    if (dirty)
        cost += dom.flushTime(h_.soc->pageBytes());
    co_await core->execTime(cost);

    if (kind_ == ProtocolKind::ThreeState && rw == Access::Read) {
        // Downgrade: keep a clean Shared copy.
        pi.state[owner] =
            (pi.state[owner] == PState::Invalid) ? PState::Invalid
                                                 : PState::Shared;
    } else {
        if (pi.outstanding[owner] && (pi.upgrade[owner] || crossed))
            pi.raced[owner] = true;
        pi.state[owner] = PState::Invalid;
    }
    pi.lastServiceTime = engine().now() - t_start;
    engine().spanComplete(t_start, h_.tracks[owner], "service");
    K2_TRACE(engine(), sim::TraceCat::Dsm,
             "%s services page %llu (%s)",
             h_.kernels[owner]->name().c_str(),
             static_cast<unsigned long long>(page),
             dirty ? "flush" : "clean");

    h_.messages->inc();
    h_.kernels[owner]->sendMail(
        h_.kernels[1 - owner]->domainId(),
        encodeMessage(MsgType::PutExclusive, page & kPayloadMask,
                      packSeq((*h_.seq)++, rw)));
}

std::uint64_t
TwoStatePair::reclaimAll(KernelIdx owner)
{
    K2_ASSERT(owner < 2);
    const KernelIdx peer = 1 - owner;
    std::uint64_t reclaimed = 0;
    // Iterate in sorted page order: reclaim pulses grant events, and
    // the pulse order decides wakeup FIFO order -- hash order would
    // make recovery runs irreproducible.
    std::vector<std::uint64_t> keys;
    keys.reserve(pages_.size());
    for (const auto &kv : pages_)
        keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());
    for (std::uint64_t page : keys) {
        auto &pi = pages_.at(page);
        if (pi->state[owner] != PState::Exclusive ||
            pi->state[peer] != PState::Invalid)
            ++reclaimed;
        pi->state[owner] = PState::Exclusive;
        pi->state[peer] = PState::Invalid;
        // A fault of the surviving kernel waiting on a grant from the
        // dead peer now owns the page; complete it locally. Peer-side
        // faults (if its domain is later revived) keep retrying and
        // are serviced normally.
        if (pi->outstanding[owner] && !pi->grantArrived[owner]) {
            pi->grantArrived[owner] = true;
            pi->grant->pulse();
        }
    }
    return reclaimed;
}

void
TwoStatePair::snapState(snap::Io &io)
{
    // Per-page coherence state, in sorted page order. The page map
    // only ever grows (info() instantiates on first access); restore
    // drops entries instantiated after the capture point -- they are
    // re-instantiated identically on replay.
    std::vector<std::uint64_t> keys;
    keys.reserve(pages_.size());
    for (const auto &kv : pages_)
        keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());
    std::uint64_t n = io.count(keys.size());
    if (io.restoring()) {
        std::vector<std::uint64_t> snapKeys(
            static_cast<std::size_t>(n));
        for (auto &k : snapKeys)
            io.pod(k);
        for (std::uint64_t k : keys) {
            if (!std::binary_search(snapKeys.begin(), snapKeys.end(),
                                    k))
                pages_.erase(k);
        }
        keys = std::move(snapKeys);
    } else {
        for (std::uint64_t k : keys) {
            std::uint64_t v = k;
            io.pod(v);
        }
    }
    for (std::uint64_t k : keys) {
        auto it = pages_.find(k);
        if (it == pages_.end())
            K2_FATAL("snapshot restore: DSM page %llu missing",
                     static_cast<unsigned long long>(k));
        PageInfo &pi = *it->second;
        io.pod(pi.state);
        io.pod(pi.demoted);
        io.pod(pi.outstanding);
        io.pod(pi.upgrade);
        io.pod(pi.raced);
        io.pod(pi.grantArrived);
        pi.grant->snapState(io);
        pi.settled->snapState(io);
        io.pod(pi.lastServiceTime);
    }
}

sim::Task<void>
TwoStatePair::handleMail(KernelIdx to_kernel, Message msg,
                         soc::Core &core)
{
    const std::uint64_t page = msg.payload;
    switch (msg.type) {
      case MsgType::GetExclusive:
        // Service as a separate task so the mailbox ISR can keep
        // draining (the main kernel's bottom-half behaviour); the
        // shadow kernel's zero deferral makes it effectively
        // immediate.
        engine().spawn(
            serviceGet(to_kernel, page, unpackRw(msg.seq), msg.seq));
        co_return;
      case MsgType::PutExclusive: {
        // Grant: wake the spinning requester.
        co_await core.execTime(h_.soc->costs().busAccess);
        PageInfo &pi = info(page);
        pi.grantArrived[to_kernel] = true;
        pi.grant->pulse();
        co_return;
      }
      default:
        K2_PANIC("DSM received non-DSM message type %u",
                 static_cast<unsigned>(msg.type));
    }
}

} // namespace coherence
} // namespace os
} // namespace k2
