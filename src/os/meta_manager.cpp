#include "os/meta_manager.h"

#include "sim/log.h"
#include "snap/io.h"

namespace k2 {
namespace os {

MetaLevelManager::MetaLevelManager(soc::Soc &soc,
                                   std::array<kern::Kernel *, 2> kernels,
                                   kern::PageRange global)
    : MetaLevelManager(soc, kernels, global, Config{})
{}

MetaLevelManager::MetaLevelManager(soc::Soc &soc,
                                   std::array<kern::Kernel *, 2> kernels,
                                   kern::PageRange global, Config cfg)
    : soc_(soc), kernels_(kernels), global_(global), cfg_(cfg)
{
    const std::size_t blocks = global.count / BalloonDriver::kBlockPages;
    K2_ASSERT(blocks > 0);
    owners_.assign(blocks, BlockOwner::Meta);
    for (KernelIdx k = 0; k < 2; ++k) {
        balloons_[k] = std::make_unique<BalloonDriver>(*kernels_[k]);
        kick_[k] = std::make_unique<sim::Event>(soc.engine());
        peerDone_[k] = std::make_unique<sim::Event>(soc.engine());
    }
}

kern::PageRange
MetaLevelManager::blockRange(std::size_t idx) const
{
    K2_ASSERT(idx < owners_.size());
    return kern::PageRange{
        global_.first + idx * BalloonDriver::kBlockPages,
        BalloonDriver::kBlockPages};
}

std::uint64_t
MetaLevelManager::blocksOwnedBy(BlockOwner who) const
{
    std::uint64_t n = 0;
    for (const auto o : owners_)
        n += (o == who);
    return n;
}

void
MetaLevelManager::bootstrapBlocks(KernelIdx k, std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i) {
        auto idx = pickMetaBlockFor(k);
        if (!idx)
            K2_FATAL("bootstrap: K2 owns no spare page blocks");
        owners_[*idx] = ownerEnum(k);
        kernels_[k]->pageAllocator().addFreeRange(blockRange(*idx));
    }
}

std::optional<std::size_t>
MetaLevelManager::pickMetaBlockFor(KernelIdx k) const
{
    // Main grows from the low end of the global region; shadow from
    // the high end (§6.2 optimisation 2).
    if (k == 0) {
        for (std::size_t i = 0; i < owners_.size(); ++i) {
            if (owners_[i] == BlockOwner::Meta)
                return i;
        }
    } else {
        for (std::size_t i = owners_.size(); i-- > 0;) {
            if (owners_[i] == BlockOwner::Meta)
                return i;
        }
    }
    return std::nullopt;
}

std::optional<std::size_t>
MetaLevelManager::pickOwnedBlockOf(KernelIdx k, std::size_t skip) const
{
    // Inflate in the reverse direction of deflation.
    const BlockOwner who = k == 0 ? BlockOwner::Main : BlockOwner::Shadow;
    std::size_t seen = 0;
    if (k == 0) {
        for (std::size_t i = owners_.size(); i-- > 0;) {
            if (owners_[i] == who && seen++ >= skip)
                return i;
        }
    } else {
        for (std::size_t i = 0; i < owners_.size(); ++i) {
            if (owners_[i] == who && seen++ >= skip)
                return i;
        }
    }
    return std::nullopt;
}

void
MetaLevelManager::start()
{
    K2_ASSERT(!started_);
    started_ = true;
    for (KernelIdx k = 0; k < 2; ++k) {
        kernels_[k]->setPressureProbe(
            [this, k](std::uint64_t free_pages) {
                if (free_pages < cfg_.lowWatermarkPages &&
                    !pressurePending_[k]) {
                    pressurePending_[k] = true;
                    pressureEvents.inc();
                    kick_[k]->pulse();
                }
            });
        kernels_[k]->spawnThread(
            nullptr, "kmetad", kern::ThreadKind::Normal,
            [this, k](kern::Thread &self) { return kmetad(k, self); });
    }
}

sim::Task<void>
MetaLevelManager::kmetad(KernelIdx k, kern::Thread &self)
{
    // Background daemon: reacts to local memory pressure by growing
    // the local kernel's memory one page block at a time.
    for (;;) {
        if (!pressurePending_[k])
            co_await self.wait(*kick_[k]);
        pressurePending_[k] = false;

        auto got = co_await deflateOne(self);
        if (!got) {
            // K2 owns no spare blocks: ask the peer to inflate one.
            peerRequests.inc();
            peerDone_[k]->reset();
            kernels_[k]->sendMail(
                kernels_[1 - k]->domainId(),
                encodeMessage(MsgType::Control,
                              encodeCtl(CtlOp::BalloonGive, 0), 0));
            co_await self.wait(*peerDone_[k]);
            (void)co_await deflateOne(self);
        }
    }
}

sim::Task<std::optional<std::size_t>>
MetaLevelManager::deflateOne(kern::Thread &t)
{
    auto &kern = t.kernel();
    const KernelIdx k = (&kern == kernels_[0]) ? 0 : 1;

    // The block-owner table is shared K2 state guarded by a hardware
    // spinlock.
    co_await soc_.spinlocks().acquire(cfg_.spinlockIdx, t.core());
    auto idx = pickMetaBlockFor(k);
    if (!idx) {
        soc_.spinlocks().release(cfg_.spinlockIdx);
        co_return std::nullopt;
    }
    owners_[*idx] = ownerEnum(k);
    soc_.spinlocks().release(cfg_.spinlockIdx);

    K2_TRACE(soc_.engine(), sim::TraceCat::Mem, "deflate block %zu -> %s",
             *idx, kernels_[k]->name().c_str());
    co_await balloons_[k]->deflate(t, blockRange(*idx));
    co_return idx;
}

sim::Task<std::optional<std::size_t>>
MetaLevelManager::inflateOne(kern::Thread &t)
{
    auto &kern = t.kernel();
    const KernelIdx k = (&kern == kernels_[0]) ? 0 : 1;

    for (std::size_t skip = 0;; ++skip) {
        co_await soc_.spinlocks().acquire(cfg_.spinlockIdx, t.core());
        auto idx = pickOwnedBlockOf(k, skip);
        soc_.spinlocks().release(cfg_.spinlockIdx);
        if (!idx)
            co_return std::nullopt;

        if (co_await balloons_[k]->inflate(t, blockRange(*idx))) {
            co_await soc_.spinlocks().acquire(cfg_.spinlockIdx,
                                              t.core());
            owners_[*idx] = BlockOwner::Meta;
            soc_.spinlocks().release(cfg_.spinlockIdx);
            K2_TRACE(soc_.engine(), sim::TraceCat::Mem,
                     "inflate block %zu <- %s", *idx,
                     kernels_[k]->name().c_str());
            co_return idx;
        }
        // Evacuation failed (unmovable pages); try the next candidate.
    }
}

sim::Task<void>
MetaLevelManager::handleMail(KernelIdx to, Message msg, soc::Core &core)
{
    (void)core;
    switch (msg.type) {
      case MsgType::Control: {
        K2_ASSERT(ctlOp(msg.payload) == CtlOp::BalloonGive);
        // Peer needs memory: inflate one of our blocks in the
        // background and tell it when done.
        kernels_[to]->spawnThread(
            nullptr, "balloon-give", kern::ThreadKind::Normal,
            [this, to](kern::Thread &self) -> sim::Task<void> {
                (void)co_await inflateOne(self);
                kernels_[to]->sendMail(
                    kernels_[1 - to]->domainId(),
                    encodeMessage(MsgType::BalloonDone, 0, 0));
            });
        co_return;
      }
      case MsgType::BalloonDone:
        peerDone_[to]->pulse();
        co_return;
      default:
        K2_PANIC("meta manager received unexpected message type %u",
                 static_cast<unsigned>(msg.type));
    }
}

void
MetaLevelManager::snapState(snap::Io &io)
{
    io.check(owners_.size(), "Meta::blocks");
    io.podVec(owners_);
    io.pod(started_);
    io.pod(pressurePending_);
    io.pod(pressureEvents);
    io.pod(peerRequests);
    for (std::size_t k = 0; k < 2; ++k) {
        balloons_[k]->snapState(io);
        // The kmetad threads park on these between pressure events.
        kick_[k]->snapState(io);
        peerDone_[k]->snapState(io);
    }
}

} // namespace os
} // namespace k2
