/**
 * @file
 * Replicated shadow services: N-way weak-domain replication with
 * majority voting, leader election, and live handoff.
 *
 * The paper's §11 sketches K2 scaling to "more, but not many" domains;
 * this module uses that headroom for robustness instead of capacity.
 * With `replicas = N`, the shadow kernel is brought up on N weak
 * domains. Shadowed-service requests are served on the current *leader*
 * replica, and every request is additionally fanned out to all live
 * replicas over the reliable-mail shim (Control/ReplicaReq); each
 * replica answers with a state digest (Control/ReplicaRep, digest in
 * the operand, vote nonce in the mail's seq field -- ReplicaRep is
 * untracked, so the ARQ stamp never touches it). The strong-domain
 * coordinator majority-votes the digests inside a fixed vote window:
 * disagreeing or absent ballots are counted and traced, and a round
 * with fewer than quorum ballots is flagged.
 *
 * When the watchdog declares a replica dead:
 *  - if the dead replica led the group, the survivors run a
 *    deterministic bully election (higher-index survivors challenge
 *    every lower-index one with Control/Election, challenged survivors
 *    answer Control/ElectionOk, and the lowest live index -- the one
 *    whose challenge set is empty -- wins and broadcasts
 *    Control/Coordinator carrying `leader << 12 | term`);
 *  - the new leader inherits the dead replica's N-DSM pages
 *    (NDsm::reclaimFrom) and re-syncs the group's shared state region
 *    through the DSM from the surviving majority (real GetExclusive /
 *    PutExclusive traffic, charged on the leader's core);
 *  - routing degrades to the strong domain *only if quorum is lost*
 *    (live replicas < floor(N/2)+1); otherwise the service stays
 *    available on the new leader throughout.
 *
 * A restarted replica rejoins when the leader re-announces itself to it
 * (Coordinator), which refreshes the replica's epoch; until then its
 * ballots carry a stale-epoch digest and are counted as mismatches.
 *
 * Every protocol action is charged simulated time and energy on the
 * acting core, and everything is deterministic: elections settle on a
 * fixed timer, votes close on a fixed timer, and all iteration is in
 * replica-index order.
 */

#ifndef K2_OS_REPLICA_H
#define K2_OS_REPLICA_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "kern/kernel.h"
#include "os/irq_router.h"
#include "os/messages.h"
#include "os/ndsm.h"
#include "sim/stats.h"

namespace k2 {

namespace obs {
class MetricsRegistry;
}

namespace os {

class ReplicaGroup
{
  public:
    struct Config
    {
        /** Ballot-collection window per shadowed request. Long enough
         *  for a couple of ARQ retransmits under injected loss. */
        sim::Duration voteTimeout = sim::msec(2);
        /** Time for Election/ElectionOk mail to fly before the bully
         *  round is scored. */
        sim::Duration electionSettle = sim::usec(300);
        /** N-DSM pages of replicated service state the new leader
         *  re-syncs after an election. */
        std::uint64_t statePages = 32;
    };

    /**
     * @param soc Platform.
     * @param kernels Strong coordinator kernel first, then one kernel
     *                per replica (weak domains), in kernel-index order.
     * @param ndsm The N-kernel DSM spanning exactly @p kernels.
     * @param router Interrupt router, degraded on quorum loss.
     */
    ReplicaGroup(soc::Soc &soc, std::vector<kern::Kernel *> kernels,
                 NDsm &ndsm, IrqRouter &router, Config cfg);

    std::size_t numReplicas() const { return kernels_.size() - 1; }
    /** Majority size: floor(N/2) + 1. */
    std::size_t quorumSize() const { return numReplicas() / 2 + 1; }
    std::size_t liveReplicas() const;
    bool quorumHeld() const { return liveReplicas() >= quorumSize(); }
    bool replicaAlive(std::size_t r) const { return alive_.at(r) != 0; }

    /** Replica currently serving shadowed requests. */
    std::size_t leaderReplica() const { return leader_; }
    /**
     * Replica to serve a request on right now: the leader, or --
     * during the brief window between a leader's death and the
     * election settling -- the lowest live replica, which is exactly
     * the election's deterministic winner.
     */
    std::size_t servingReplica() const;
    kern::Kernel &replicaKernel(std::size_t r)
    {
        return *kernels_.at(r + 1);
    }

    /**
     * Account one shadowed-service request: spawns an asynchronous
     * fan-out + majority-vote round over the live replicas.
     */
    void noteRequest();

    /** Count a request served on the strong domain under quorum loss. */
    void noteDegradedSpawn() { degradedSpawns_.inc(); }

    /**
     * Watchdog delegation: replica @p r was declared dead. Runs the
     * election if the leader died, reclaims the dead replica's DSM
     * pages to the leader, starts the state re-sync, and degrades
     * routing iff quorum is lost.
     */
    sim::Task<void> onReplicaDown(std::size_t r);

    /**
     * Watchdog delegation: replica @p r finished its restart. Rejoins
     * it (Coordinator from the leader refreshes its epoch) and lifts
     * degraded routing if quorum is restored.
     */
    sim::Task<void> onReplicaRestarted(std::size_t r);

    /** Replica-protocol control mail (ReplicaReq/ReplicaRep/Election/
     *  ElectionOk/Coordinator). */
    sim::Task<void> handleMail(KernelIdx to, soc::Mail mail,
                               soc::Core &core);

    /** @name Statistics. @{ */
    std::uint64_t requests() const { return requests_.value(); }
    std::uint64_t votesReceived() const { return votes_.value(); }
    std::uint64_t votesAbsent() const { return votesAbsent_.value(); }
    std::uint64_t voteMismatches() const { return voteMismatches_.value(); }
    std::uint64_t voteNoQuorum() const { return voteNoQuorum_.value(); }
    std::uint64_t elections() const { return elections_.value(); }
    std::uint64_t rejoins() const { return rejoins_.value(); }
    std::uint64_t resyncs() const { return resyncs_.value(); }
    std::uint64_t quorumLosses() const { return quorumLosses_.value(); }
    std::uint64_t degradedSpawns() const { return degradedSpawns_.value(); }
    std::uint32_t term() const { return term_; }
    /** @} */

    /** Register stats under @p prefix (e.g. "os.replica"). */
    void registerMetrics(obs::MetricsRegistry &reg,
                         const std::string &prefix);

    /**
     * Capture/restore. Quiescence requires no election, vote round or
     * re-sync in flight, and every replica alive.
     */
    void snapState(snap::Io &io);

  private:
    /** One in-flight vote round, keyed by nonce. */
    struct Round
    {
        std::vector<std::int32_t> ballots; //!< -1 = absent, else digest.
        std::uint16_t expected = 0;
    };

    static constexpr std::uint32_t kStaleEpoch = 0xFFFFFFFFu;

    static std::uint16_t digest16(std::uint32_t nonce,
                                  std::uint32_t epoch);
    kern::Kernel &coord() { return *kernels_[0]; }
    std::size_t replicaOfDomain(soc::DomainId d) const;
    sim::Task<void> chargeSends(kern::Kernel &kern, std::uint64_t n);
    sim::Task<void> voteRound();
    void closeVote(std::uint32_t nonce);
    sim::Task<void> runElection();
    sim::Task<void> resyncState(std::size_t leader);
    void updateQuorum();

    soc::Soc &soc_;
    std::vector<kern::Kernel *> kernels_;
    NDsm &ndsm_;
    IrqRouter &router_;
    Config cfg_;
    sim::TrackId track_{};
    kern::PageRange stateRange_{};
    std::vector<std::uint8_t> alive_;
    std::vector<std::uint32_t> epoch_;
    std::size_t leader_ = 0;
    std::uint32_t term_ = 0;
    bool degraded_ = false;
    bool electing_ = false;
    std::uint32_t nonce_ = 0;
    std::map<std::uint32_t, Round> rounds_;
    std::uint32_t resyncing_ = 0;

    sim::Counter requests_;
    sim::Counter votes_;
    sim::Counter votesAbsent_;
    sim::Counter votesLate_;
    sim::Counter voteMismatches_;
    sim::Counter voteNoQuorum_;
    sim::Counter elections_;
    sim::Counter electionOks_;
    sim::Counter coordinators_;
    sim::Counter rejoins_;
    sim::Counter resyncs_;
    sim::Counter resyncPages_;
    sim::Counter quorumLosses_;
    sim::Counter degradedSpawns_;
    sim::Counter strayMail_;
    sim::Histogram electionUs_;
    sim::Histogram resyncUs_;
};

} // namespace os
} // namespace k2

#endif // K2_OS_REPLICA_H
