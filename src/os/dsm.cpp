#include "os/dsm.h"

#include "obs/metrics.h"
#include "sim/log.h"
#include "snap/io.h"

namespace k2 {
namespace os {

Dsm::Dsm(soc::Soc &soc, std::array<kern::Kernel *, 2> kernels,
         std::uint64_t num_pages, Protocol protocol)
    : Dsm(soc, kernels, num_pages, protocol, CostModel{})
{}

Dsm::Dsm(soc::Soc &soc, std::array<kern::Kernel *, 2> kernels,
         std::uint64_t num_pages, Protocol protocol, CostModel costs)
    : soc_(soc), kernels_(kernels), numPages_(num_pages), costs_(costs)
{
    for (KernelIdx k = 0; k < 2; ++k) {
        K2_ASSERT(kernels_[k] != nullptr);
        mmus_[k] = std::make_unique<soc::Mmu>(
            kernels_[k]->domain().spec().core);
        tracks_[k] =
            soc_.engine().addTrack("os.dsm." + kernels_[k]->name());
    }
    coherence::PairHost host;
    host.soc = &soc_;
    host.kernels = kernels_;
    host.costs = &costs_;
    host.mmus = {mmus_[0].get(), mmus_[1].get()};
    host.stats = &stats_;
    host.tracks = tracks_;
    host.messages = &messages_;
    host.demotions = &demotions_;
    host.retries = &retries_;
    host.retry = &retry_;
    host.seq = &seq_;
    host.numPages = numPages_;
    impl_ = coherence::makePairProtocol(protocol, host);
}

Dsm::~Dsm() = default;

kern::PageRange
Dsm::allocRegion(std::uint64_t pages)
{
    if (nextRegionPage_ + pages > numPages_)
        K2_FATAL("DSM region space exhausted (%llu + %llu > %llu)",
                 static_cast<unsigned long long>(nextRegionPage_),
                 static_cast<unsigned long long>(pages),
                 static_cast<unsigned long long>(numPages_));
    kern::PageRange r{nextRegionPage_, pages};
    nextRegionPage_ += pages;
    return r;
}

KernelIdx
Dsm::idxOf(const kern::Kernel &k) const
{
    for (KernelIdx i = 0; i < 2; ++i) {
        if (kernels_[i] == &k)
            return i;
    }
    K2_PANIC("kernel '%s' is not part of this DSM", k.name().c_str());
}

bool
Dsm::isLocallyValid(KernelIdx kernel, std::uint64_t page,
                    Access rw) const
{
    return impl_->isLocallyValid(kernel, page, rw);
}

sim::Task<void>
Dsm::access(kern::Kernel &kern, soc::Core &core, std::uint64_t page,
            Access rw)
{
    return impl_->access(idxOf(kern), core, page, rw);
}

std::uint64_t
Dsm::reclaimAll(KernelIdx owner)
{
    K2_ASSERT(owner < 2);
    return impl_->reclaimAll(owner);
}

void
Dsm::snapState(snap::Io &io)
{
    io.check(tracks_[0], "Dsm::track0");
    io.check(tracks_[1], "Dsm::track1");
    io.pod(seq_);
    io.pod(nextRegionPage_);
    io.pod(messages_);
    io.pod(demotions_);
    io.pod(retries_);
    for (auto &mmu : mmus_)
        mmu->snapState(io);
    for (FaultStats &st : stats_) {
        io.pod(st.faults);
        io.pod(st.localFaultUs);
        io.pod(st.protocolUs);
        io.pod(st.commUs);
        io.pod(st.serviceUs);
        io.pod(st.exitUs);
        io.pod(st.totalUs);
    }
    impl_->snapState(io);
}

void
Dsm::registerMetrics(obs::MetricsRegistry &reg,
                     const std::string &prefix) const
{
    reg.addCounter(prefix + ".messages", messages_);
    reg.addCounter(prefix + ".demotions", demotions_);
    // Only present when the recovery layer enabled retries, so
    // zero-fault metric snapshots keep their exact key set.
    if (retry_.timeout != 0)
        reg.addCounter(prefix + ".retries", retries_);
    for (KernelIdx k = 0; k < 2; ++k) {
        const std::string kp = prefix + "." + kernels_[k]->name();
        const FaultStats &st = stats_[k];
        reg.addCounter(kp + ".faults", st.faults);
        reg.addAccumulator(kp + ".fault_entry_us", st.localFaultUs);
        reg.addAccumulator(kp + ".protocol_us", st.protocolUs);
        reg.addAccumulator(kp + ".comm_us", st.commUs);
        reg.addAccumulator(kp + ".service_us", st.serviceUs);
        reg.addAccumulator(kp + ".exit_us", st.exitUs);
        reg.addAccumulator(kp + ".total_us", st.totalUs);
        const soc::Mmu &mmu = *mmus_[k];
        reg.addGauge(kp + ".tlb.hits", [&mmu]() {
            return static_cast<double>(mmu.tlb().hits());
        });
        reg.addGauge(kp + ".tlb.misses", [&mmu]() {
            return static_cast<double>(mmu.tlb().misses());
        });
    }
    impl_->registerMetrics(reg, prefix);
}

sim::Task<void>
Dsm::handleMail(KernelIdx to_kernel, Message msg, soc::Core &core)
{
    return impl_->handleMail(to_kernel, msg, core);
}

} // namespace os
} // namespace k2
