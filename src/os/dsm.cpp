#include "os/dsm.h"

#include <algorithm>
#include <vector>

#include "obs/metrics.h"
#include "sim/log.h"
#include "snap/io.h"

namespace k2 {
namespace os {

namespace {

/** The Get message carries the access kind in the top sequence bit. */
constexpr std::uint32_t kRwFlag = 0x100;

std::uint32_t
packSeq(std::uint32_t seq, Access rw)
{
    return (seq & 0xFF) | (rw == Access::Write ? kRwFlag : 0);
}

Access
unpackRw(std::uint32_t seq)
{
    return (seq & kRwFlag) ? Access::Write : Access::Read;
}

} // namespace

Dsm::Dsm(soc::Soc &soc, std::array<kern::Kernel *, 2> kernels,
         std::uint64_t num_pages, Protocol protocol)
    : Dsm(soc, kernels, num_pages, protocol, CostModel{})
{}

Dsm::Dsm(soc::Soc &soc, std::array<kern::Kernel *, 2> kernels,
         std::uint64_t num_pages, Protocol protocol, CostModel costs)
    : soc_(soc), kernels_(kernels), numPages_(num_pages),
      protocol_(protocol), costs_(costs)
{
    for (KernelIdx k = 0; k < 2; ++k) {
        K2_ASSERT(kernels_[k] != nullptr);
        mmus_[k] = std::make_unique<soc::Mmu>(
            kernels_[k]->domain().spec().core);
        tracks_[k] =
            soc_.engine().addTrack("os.dsm." + kernels_[k]->name());
    }
}

kern::PageRange
Dsm::allocRegion(std::uint64_t pages)
{
    if (nextRegionPage_ + pages > numPages_)
        K2_FATAL("DSM region space exhausted (%llu + %llu > %llu)",
                 static_cast<unsigned long long>(nextRegionPage_),
                 static_cast<unsigned long long>(pages),
                 static_cast<unsigned long long>(numPages_));
    kern::PageRange r{nextRegionPage_, pages};
    nextRegionPage_ += pages;
    return r;
}

Dsm::PageInfo &
Dsm::info(std::uint64_t page)
{
    K2_ASSERT(page < numPages_);
    auto it = pages_.find(page);
    if (it == pages_.end()) {
        auto pi = std::make_unique<PageInfo>();
        pi->grant = std::make_unique<sim::Event>(soc_.engine());
        pi->settled = std::make_unique<sim::Event>(soc_.engine());
        it = pages_.emplace(page, std::move(pi)).first;
    }
    return *it->second;
}

KernelIdx
Dsm::idxOf(const kern::Kernel &k) const
{
    for (KernelIdx i = 0; i < 2; ++i) {
        if (kernels_[i] == &k)
            return i;
    }
    K2_PANIC("kernel '%s' is not part of this DSM", k.name().c_str());
}

bool
Dsm::satisfies(PState s, Access rw) const
{
    if (s == PState::Exclusive)
        return true;
    if (protocol_ == Protocol::ThreeState && s == PState::Shared)
        return rw == Access::Read;
    return false;
}

bool
Dsm::isLocallyValid(KernelIdx kernel, std::uint64_t page, Access rw) const
{
    auto it = pages_.find(page);
    const PState s = (it == pages_.end())
        ? (kernel == 0 ? PState::Exclusive : PState::Invalid)
        : it->second->state[kernel];
    return const_cast<Dsm *>(this)->satisfies(s, rw);
}

sim::Task<void>
Dsm::demote(std::uint64_t page, soc::Core &core, KernelIdx k)
{
    PageInfo &pi = info(page);
    if (pi.demoted)
        co_return;
    pi.demoted = true;
    demotions_.inc();
    // Replacing the local large-grain mapping with 4 KB entries: one
    // page-table update on the faulting side. The remote side's
    // mapping is rewritten when it services/faults next; its cost is
    // folded into the protection updates charged there.
    co_await core.execTime(mmus_[k]->protectionUpdate(page));
}

sim::Task<void>
Dsm::access(kern::Kernel &kern, soc::Core &core, std::uint64_t page,
            Access rw)
{
    const KernelIdx k = idxOf(kern);
    PageInfo &pi = info(page);

    // Address translation through the local MMU at the page's current
    // mapping grain.
    const auto grain =
        pi.demoted ? soc::MapGrain::Page4K : soc::MapGrain::Section1M;
    const sim::Duration walk = mmus_[k]->translate(page, grain);
    if (walk)
        co_await core.execTime(walk);

    for (;;) {
        // Serialise with a fault already in flight on this kernel.
        while (pi.outstanding[k]) {
            core.pinActive();
            co_await pi.settled->wait();
            core.unpinActive();
        }
        if (satisfies(pi.state[k], rw))
            co_return;

        // ---- Full fault path (Table 5). ----
        FaultStats &st = stats_[k];
        st.faults.inc();
        K2_TRACE(soc_.engine(), sim::TraceCat::Dsm,
                 "%s faults on page %llu (%s)",
                 kernels_[k]->name().c_str(),
                 static_cast<unsigned long long>(page),
                 rw == Access::Write ? "W" : "R");
        pi.outstanding[k] = true;
        pi.upgrade[k] = (pi.state[k] == PState::Shared);
        pi.raced[k] = false;

        if (!pi.demoted)
            co_await demote(page, core, k);

        const sim::Time t0 = soc_.engine().now();
        sim::Duration entry = costs_.faultEntry[k];
        if (protocol_ == Protocol::ThreeState && k == 1)
            entry += mmus_[k]->readTrackPenalty();
        co_await core.execTime(entry);
        const sim::Time t1 = soc_.engine().now();

        co_await core.execTime(costs_.protocolExec[k]);
        const sim::Time t2 = soc_.engine().now();

        const std::uint32_t seq = seq_++;
        messages_.inc();
        kernels_[k]->sendMail(
            kernels_[1 - k]->domainId(),
            encodeMessage(MsgType::GetExclusive, page & kPayloadMask,
                          packSeq(seq, rw)));

        // Spin (synchronously -- the faulting context may be an
        // interrupt handler) until the grant arrives. With a retry
        // policy, re-send the Get when the grant times out: the
        // request or its grant may have been lost, or the peer may be
        // down until the watchdog revives it.
        pi.grant->reset();
        pi.grantArrived[k] = false;
        core.pinActive();
        if (retry_.timeout == 0) {
            co_await pi.grant->wait();
        } else {
            sim::Duration rto = retry_.timeout;
            while (!pi.grantArrived[k]) {
                bool timer_fired = false;
                sim::Event *grant = pi.grant.get();
                sim::EventId timer = soc_.engine().after(
                    rto, [grant, &timer_fired]() {
                        timer_fired = true;
                        grant->pulse();
                    });
                co_await pi.grant->wait();
                soc_.engine().cancel(timer);
                if (pi.grantArrived[k])
                    break;
                if (!timer_fired)
                    continue; // Woken by an unrelated pulse; re-wait.
                retries_.inc();
                messages_.inc();
                K2_TRACE(soc_.engine(), sim::TraceCat::Dsm,
                         "%s retries Get for page %llu",
                         kernels_[k]->name().c_str(),
                         static_cast<unsigned long long>(page));
                kernels_[k]->sendMail(
                    kernels_[1 - k]->domainId(),
                    encodeMessage(MsgType::GetExclusive,
                                  page & kPayloadMask,
                                  packSeq(seq_++, rw)));
                rto = std::min(rto * 2, retry_.maxTimeout);
            }
        }
        core.unpinActive();
        const sim::Time t3 = soc_.engine().now();

        co_await core.execTime(costs_.exitRefill[k] +
                               mmus_[k]->protectionUpdate(page));
        const sim::Time t4 = soc_.engine().now();

        const bool raced = pi.raced[k];
        if (!raced) {
            if (protocol_ == Protocol::TwoState || rw == Access::Write) {
                pi.state[k] = PState::Exclusive;
            } else {
                // Read fault under MSI: both sides end up Shared (the
                // service side downgraded itself).
                pi.state[k] = PState::Shared;
            }
        }
        pi.outstanding[k] = false;
        pi.upgrade[k] = false;
        pi.settled->pulse();

        // Emit the fault and its phases as nested spans on the
        // faulting kernel's track: a parent "fault" X event spanning
        // t0..t4 with four child phases inside it (the same breakdown
        // as Table 5).
        if (soc_.engine().tracer().spansOn()) {
            sim::Tracer &tr = soc_.engine().tracer();
            tr.spanComplete(t0, t4 - t0, tracks_[k], "fault");
            tr.spanComplete(t0, t1 - t0, tracks_[k], "fault_entry");
            tr.spanComplete(t1, t2 - t1, tracks_[k], "protocol");
            tr.spanComplete(t2, t3 - t2, tracks_[k], "comm+service");
            tr.spanComplete(t3, t4 - t3, tracks_[k], "exit_refill");
        }

        st.localFaultUs.sample(sim::toUsec(t1 - t0));
        st.protocolUs.sample(sim::toUsec(t2 - t1));
        st.serviceUs.sample(sim::toUsec(pi.lastServiceTime));
        st.commUs.sample(sim::toUsec(t3 - t2) -
                         sim::toUsec(pi.lastServiceTime));
        st.exitUs.sample(sim::toUsec(t4 - t3));
        st.totalUs.sample(sim::toUsec(t4 - t0));

        if (!raced)
            co_return;
        // Our copy was invalidated by a concurrent upgrade from the
        // other kernel while we waited; retry the fault.
    }
}

sim::Task<void>
Dsm::serviceGet(KernelIdx owner, std::uint64_t page, Access rw,
                std::uint32_t seq)
{
    (void)seq;
    PageInfo &pi = info(page);

    // The main kernel handles coherence requests in a bottom half and
    // defers further under load; the shadow kernel serves immediately.
    if (owner == 0) {
        sim::Duration defer = costs_.mainBottomHalf;
        if (kernels_[0]->scheduler().runqueueDepth() > 0)
            defer += costs_.mainLoadedDefer;
        co_await soc_.engine().sleep(defer);
    }

    // Serialise with a local fault in flight, except for a concurrent
    // Shared->Exclusive upgrade race, which we resolve by invalidating
    // the local copy and letting the local fault retry.
    //
    // A *crossed* pair of exclusive faults -- both copies Invalid, each
    // kernel waiting for the other's grant -- can only arise after
    // crash recovery desynchronises ownership (reclaim forces the dead
    // side Invalid mid-fault; its stale retransmitted Get later
    // invalidates the survivor). Waiting here would then deadlock:
    // this service waits for the local fault to settle, the local
    // fault waits for a grant the peer's equally-parked service never
    // sends. The weak side breaks the cycle the same way the upgrade
    // race does: service immediately and let the local fault retry.
    bool crossed = false;
    for (;;) {
        crossed = owner != 0 && pi.outstanding[owner] &&
                  !pi.upgrade[owner] &&
                  pi.state[owner] == PState::Invalid;
        if (crossed || !pi.outstanding[owner] || pi.upgrade[owner])
            break;
        co_await pi.settled->wait();
    }

    // Pick a core of the owning domain to run the service on.
    soc::CoherenceDomain &dom = kernels_[owner]->domain();
    soc::Core *core = &dom.core(0);
    for (std::size_t i = 0; i < dom.numCores(); ++i) {
        if (dom.core(i).state() == soc::PowerState::Idle) {
            core = &dom.core(i);
            break;
        }
    }
    if (!core->awake())
        co_await core->ensureAwake();

    const sim::Time t_start = soc_.engine().now();
    const bool dirty = pi.state[owner] == PState::Exclusive;
    sim::Duration cost = costs_.serviceBase[owner] +
                         mmus_[owner]->protectionUpdate(page);
    if (dirty)
        cost += dom.flushTime(soc_.pageBytes());
    co_await core->execTime(cost);

    if (protocol_ == Protocol::ThreeState && rw == Access::Read) {
        // Downgrade: keep a clean Shared copy.
        pi.state[owner] =
            (pi.state[owner] == PState::Invalid) ? PState::Invalid
                                                 : PState::Shared;
    } else {
        if (pi.outstanding[owner] && (pi.upgrade[owner] || crossed))
            pi.raced[owner] = true;
        pi.state[owner] = PState::Invalid;
    }
    pi.lastServiceTime = soc_.engine().now() - t_start;
    soc_.engine().spanComplete(t_start, tracks_[owner], "service");
    K2_TRACE(soc_.engine(), sim::TraceCat::Dsm,
             "%s services page %llu (%s)",
             kernels_[owner]->name().c_str(),
             static_cast<unsigned long long>(page),
             dirty ? "flush" : "clean");

    messages_.inc();
    kernels_[owner]->sendMail(
        kernels_[1 - owner]->domainId(),
        encodeMessage(MsgType::PutExclusive, page & kPayloadMask,
                      packSeq(seq_++, rw)));
}

std::uint64_t
Dsm::reclaimAll(KernelIdx owner)
{
    K2_ASSERT(owner < 2);
    const KernelIdx peer = 1 - owner;
    std::uint64_t reclaimed = 0;
    // Iterate in sorted page order: reclaim pulses grant events, and
    // the pulse order decides wakeup FIFO order -- hash order would
    // make recovery runs irreproducible.
    std::vector<std::uint64_t> keys;
    keys.reserve(pages_.size());
    for (const auto &kv : pages_)
        keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());
    for (std::uint64_t page : keys) {
        auto &pi = pages_.at(page);
        if (pi->state[owner] != PState::Exclusive ||
            pi->state[peer] != PState::Invalid)
            ++reclaimed;
        pi->state[owner] = PState::Exclusive;
        pi->state[peer] = PState::Invalid;
        // A fault of the surviving kernel waiting on a grant from the
        // dead peer now owns the page; complete it locally. Peer-side
        // faults (if its domain is later revived) keep retrying and
        // are serviced normally.
        if (pi->outstanding[owner] && !pi->grantArrived[owner]) {
            pi->grantArrived[owner] = true;
            pi->grant->pulse();
        }
    }
    return reclaimed;
}

void
Dsm::snapState(snap::Io &io)
{
    io.check(tracks_[0], "Dsm::track0");
    io.check(tracks_[1], "Dsm::track1");
    io.pod(seq_);
    io.pod(nextRegionPage_);
    io.pod(messages_);
    io.pod(demotions_);
    io.pod(retries_);
    for (auto &mmu : mmus_)
        mmu->snapState(io);
    for (FaultStats &st : stats_) {
        io.pod(st.faults);
        io.pod(st.localFaultUs);
        io.pod(st.protocolUs);
        io.pod(st.commUs);
        io.pod(st.serviceUs);
        io.pod(st.exitUs);
        io.pod(st.totalUs);
    }

    // Per-page coherence state, in sorted page order. The page map
    // only ever grows (info() instantiates on first access); restore
    // drops entries instantiated after the capture point -- they are
    // re-instantiated identically on replay.
    std::vector<std::uint64_t> keys;
    keys.reserve(pages_.size());
    for (const auto &kv : pages_)
        keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());
    std::uint64_t n = io.count(keys.size());
    if (io.restoring()) {
        std::vector<std::uint64_t> snapKeys(
            static_cast<std::size_t>(n));
        for (auto &k : snapKeys)
            io.pod(k);
        for (std::uint64_t k : keys) {
            if (!std::binary_search(snapKeys.begin(), snapKeys.end(),
                                    k))
                pages_.erase(k);
        }
        keys = std::move(snapKeys);
    } else {
        for (std::uint64_t k : keys) {
            std::uint64_t v = k;
            io.pod(v);
        }
    }
    for (std::uint64_t k : keys) {
        auto it = pages_.find(k);
        if (it == pages_.end())
            K2_FATAL("snapshot restore: DSM page %llu missing",
                     static_cast<unsigned long long>(k));
        PageInfo &pi = *it->second;
        io.pod(pi.state);
        io.pod(pi.demoted);
        io.pod(pi.outstanding);
        io.pod(pi.upgrade);
        io.pod(pi.raced);
        io.pod(pi.grantArrived);
        pi.grant->snapState(io);
        pi.settled->snapState(io);
        io.pod(pi.lastServiceTime);
    }
}

void
Dsm::registerMetrics(obs::MetricsRegistry &reg,
                     const std::string &prefix) const
{
    reg.addCounter(prefix + ".messages", messages_);
    reg.addCounter(prefix + ".demotions", demotions_);
    // Only present when the recovery layer enabled retries, so
    // zero-fault metric snapshots keep their exact key set.
    if (retry_.timeout != 0)
        reg.addCounter(prefix + ".retries", retries_);
    for (KernelIdx k = 0; k < 2; ++k) {
        const std::string kp = prefix + "." + kernels_[k]->name();
        const FaultStats &st = stats_[k];
        reg.addCounter(kp + ".faults", st.faults);
        reg.addAccumulator(kp + ".fault_entry_us", st.localFaultUs);
        reg.addAccumulator(kp + ".protocol_us", st.protocolUs);
        reg.addAccumulator(kp + ".comm_us", st.commUs);
        reg.addAccumulator(kp + ".service_us", st.serviceUs);
        reg.addAccumulator(kp + ".exit_us", st.exitUs);
        reg.addAccumulator(kp + ".total_us", st.totalUs);
        const soc::Mmu &mmu = *mmus_[k];
        reg.addGauge(kp + ".tlb.hits", [&mmu]() {
            return static_cast<double>(mmu.tlb().hits());
        });
        reg.addGauge(kp + ".tlb.misses", [&mmu]() {
            return static_cast<double>(mmu.tlb().misses());
        });
    }
}

sim::Task<void>
Dsm::handleMail(KernelIdx to_kernel, Message msg, soc::Core &core)
{
    const std::uint64_t page = msg.payload;
    switch (msg.type) {
      case MsgType::GetExclusive:
        // Service as a separate task so the mailbox ISR can keep
        // draining (the main kernel's bottom-half behaviour); the
        // shadow kernel's zero deferral makes it effectively
        // immediate.
        soc_.engine().spawn(
            serviceGet(to_kernel, page, unpackRw(msg.seq), msg.seq));
        co_return;
      case MsgType::PutExclusive: {
        // Grant: wake the spinning requester.
        co_await core.execTime(soc_.costs().busAccess);
        PageInfo &pi = info(page);
        pi.grantArrived[to_kernel] = true;
        pi.grant->pulse();
        co_return;
      }
      default:
        K2_PANIC("DSM received non-DSM message type %u",
                 static_cast<unsigned>(msg.type));
    }
}

} // namespace os
} // namespace k2
