/**
 * @file
 * NightWatch thread management (paper §8).
 *
 * NightWatch threads encapsulate light tasks; they are pinned on the
 * weak domain and enter the shadow kernel's runqueue. To avoid
 * multi-domain parallelism within a process (the third aspect of the
 * shared-most model), a NightWatch thread is only considered for
 * scheduling while all Normal threads of its process are suspended:
 *
 *  - When the main kernel schedules in a Normal thread it sends
 *    SuspendNW to the shadow kernel, overlapping the wait for
 *    AckSuspendNW with the context switch itself, adding only the
 *    message-RTT minus switch-time (1-2 us) to each switch.
 *  - The shadow kernel acknowledges immediately (interrupt context),
 *    then flags all NightWatch threads of the process out of its
 *    runqueue.
 *  - When all Normal threads of the process block, the main kernel
 *    sends ResumeNW and the shadow kernel un-flags them.
 *
 * The Linux scheduler's own mechanism and policy are untouched; this
 * module only installs hooks.
 */

#ifndef K2_OS_NIGHTWATCH_H
#define K2_OS_NIGHTWATCH_H

#include <map>
#include <memory>

#include "sim/stats.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "kern/kernel.h"
#include "os/messages.h"

namespace k2 {
namespace os {

class NightWatch
{
  public:
    NightWatch(soc::Soc &soc, kern::Kernel &main, kern::Kernel &shadow);

    /** Install the scheduler hooks on the main kernel. */
    void install();

    /**
     * Create a NightWatch thread in @p proc on the shadow kernel.
     * Starts gated if the process currently has runnable Normal
     * threads on the main kernel.
     */
    kern::Thread *spawn(kern::Process &proc, std::string name,
                        kern::Thread::Body body);

    /** Mail dispatch for the NW message types. */
    sim::Task<void> handleMail(KernelIdx to, Message msg,
                               soc::Core &core);

    /** @name Statistics. @{ */
    sim::Counter suspendsSent;
    sim::Counter resumesSent;
    sim::Counter acksReceived;
    /** Extra main-kernel time per context switch waiting for the ack,
     *  in microseconds (paper: 1-2 us). */
    sim::Accumulator ackWaitUs;
    /** @} */

    /** True if @p pid's NightWatch threads are currently gated. */
    bool isGated(kern::Pid pid) const;

    /**
     * Capture/restore: per-process gate/ack state (entries created
     * after the capture point are dropped) and the statistics.
     */
    void snapState(snap::Io &io);

  private:
    struct ProcState
    {
        kern::Process *proc = nullptr;
        bool gated = false;
        bool ackPending = false;
        std::unique_ptr<sim::Event> ack;
    };

    ProcState &state(kern::Process &proc);

    sim::Task<void> preSwitch(kern::Thread &next, soc::Core &core);
    sim::Task<void> postSwitch(kern::Thread &next, soc::Core &core);
    void onProcessBlocked(kern::Process &proc);

    soc::Soc &soc_;
    kern::Kernel &main_;
    kern::Kernel &shadow_;
    std::map<kern::Pid, ProcState> procs_;
};

} // namespace os
} // namespace k2

#endif // K2_OS_NIGHTWATCH_H
