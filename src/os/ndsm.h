/**
 * @file
 * N-domain software DSM — the paper's §11 extension implemented.
 *
 * "For N domains (N being moderate), K2 can be extended without
 * structural changes: the DSM (§6.3) will track page ownership among
 * N domains as in [17]..."
 *
 * This generalises the two-kernel Dsm to N kernels, with the coherence
 * protocol pluggable (coherence::ProtocolKind):
 *
 *  - TwoState (default): the paper's migratory scheme. Each page has
 *    one *owner* kernel; a non-owner sends GetExclusive to the current
 *    owner (ownership is tracked in a directory every kernel's replica
 *    keeps in sync — here modelled as the simulator-side table, with
 *    the directory-lookup cost charged per fault). The owner flushes,
 *    invalidates, and replies PutExclusive directly to the requester.
 *  - ThreeState/Mesi/Moesi: a home-based directory (home on the
 *    strong kernel 0) with per-page sharer bitmaps: reads share,
 *    writes fan invalidations out to every sharer and collect InvAcks
 *    before the grant; MESI adds silent clean-exclusive upgrades,
 *    MOESI forwards dirty pages cache-to-cache without writeback
 *    (coherence/directory.h).
 *  - Rac: log-based release-acquire — owners append modified lines to
 *    per-domain logs, acquirers drain them under vector-clock order
 *    (coherence/rac.h).
 *
 * The one-writer invariant holds across all N kernels in every mode.
 * Asymmetric priorities generalise too: the strong (index 0) kernel
 * services requests in a bottom half; all weak kernels serve
 * immediately.
 */

#ifndef K2_OS_NDSM_H
#define K2_OS_NDSM_H

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/stats.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "soc/mmu.h"
#include "soc/soc.h"
#include "kern/kernel.h"
#include "os/coherence/directory.h"
#include "os/coherence/rac.h"
#include "os/messages.h"
#include "os/system.h"

namespace k2 {

namespace obs {
class MetricsRegistry;
}

namespace os {

class NDsm
{
  public:
    /** Per-fault cost constants, per kernel. */
    struct Costs
    {
        sim::Duration faultEntry;
        sim::Duration protocolExec;
        sim::Duration serviceBase;
        sim::Duration exitRefill;
    };

    /**
     * Fault-grant retry policy (mirrors Dsm::RetryPolicy). With a
     * nonzero timeout a faulting kernel re-sends its request -- to the
     * page's *current* owner/home, re-read from the directory -- so
     * a fault stranded on a crashed owner self-heals once the page is
     * reclaimed to a survivor (reclaimFrom) or the owner revives.
     */
    struct RetryPolicy
    {
        sim::Duration timeout = 0;  //!< 0 disables retry.
        sim::Duration maxTimeout = 0;
    };

    /** Per-kernel fault statistics, with the Table-5 phase split. */
    struct Stats
    {
        sim::Counter faults;
        sim::Accumulator totalUs;
        sim::Accumulator entryUs;
        sim::Accumulator protocolUs;
        sim::Accumulator commUs;
        sim::Accumulator serviceUs;
        sim::Accumulator exitUs;
    };

    /**
     * @param soc Platform.
     * @param kernels One kernel per coherence domain, strong first.
     * @param num_pages DSM page keys available.
     * @param kind Coherence protocol (default: the paper's two-state
     *        migratory scheme; see coherence::ProtocolKind).
     */
    NDsm(soc::Soc &soc, std::vector<kern::Kernel *> kernels,
         std::uint64_t num_pages,
         coherence::ProtocolKind kind =
             coherence::ProtocolKind::TwoState);

    coherence::ProtocolKind kind() const { return kind_; }

    void setRetryPolicy(RetryPolicy p) { retry_ = p; }

    std::size_t numKernels() const { return kernels_.size(); }

    /** Reserve a range of DSM page keys. */
    kern::PageRange allocRegion(std::uint64_t pages);

    /** Access a page from @p kern; faults transfer ownership. */
    sim::Task<void> access(kern::Kernel &kern, soc::Core &core,
                           std::uint64_t page, Access rw);

    /** Current owner of @p page (directory modes: the entry's owner;
     *  RAC: the page's last writer). */
    std::size_t ownerOf(std::uint64_t page) const;

    /**
     * Reassign every page owned by the (crashed) kernel @p dead to
     * @p to, in ascending page order, and return the moved page keys.
     * Directory modes also scrub @p dead from sharer/ack bitmaps and
     * complete transactions that were stalled only on it. Faults left
     * outstanding against the dead owner are otherwise *not* completed
     * here: the requester's retry re-reads the directory and lands on
     * the new owner (arm a RetryPolicy before injecting crashes).
     */
    std::vector<std::uint64_t> reclaimFrom(std::size_t dead,
                                           std::size_t to);

    /** @name Statistics. @{ */
    std::uint64_t faults(std::size_t kernel) const
    {
        return stats_.at(kernel).faults.value();
    }

    double
    meanFaultUs(std::size_t kernel) const
    {
        return stats_.at(kernel).totalUs.mean();
    }

    /** Full per-kernel stats, including the phase breakdown (the
     *  phase accumulators are populated in every mode). */
    const Stats &kernelStats(std::size_t kernel) const
    {
        return stats_.at(kernel);
    }

    std::uint64_t messagesSent() const { return messages_.value(); }
    std::uint64_t retries() const { return retries_.value(); }
    /** @} */

    /**
     * Register stats under @p prefix (e.g. "os.ndsm"). The TwoState
     * default registers the legacy key set exactly; other protocols
     * add their phase accumulators and protocol counters.
     */
    void registerMetrics(obs::MetricsRegistry &reg,
                         const std::string &prefix);

    /** Mail dispatch (GetExclusive/PutExclusive). */
    sim::Task<void> handleMail(std::size_t to_kernel, soc::Mail mail,
                               soc::Core &core);

    /** Capture/restore: per-page ownership (post-capture pages are
     *  dropped), MMU state, statistics, protocol state, and the
     *  sequence counter. */
    void snapState(snap::Io &io);

  private:
    struct PageInfo
    {
        std::size_t owner = 0;
        bool outstanding = false;    //!< A fault is in flight.
        bool grantArrived = false;   //!< Grant received for the fault.
        std::size_t requester = 0;   //!< Which kernel is faulting.
        std::unique_ptr<sim::Event> grant;
        std::unique_ptr<sim::Event> settled;
        sim::Duration lastServiceTime = 0;
    };

    PageInfo &info(std::uint64_t page);
    std::size_t idxOf(const kern::Kernel &k) const;
    soc::Core *pickCore(std::size_t kernel);
    void samplePhases(std::size_t k, sim::Time t0, sim::Time t1,
                      sim::Time t2, sim::Time t3, sim::Time t4,
                      sim::Duration service);
    sim::Task<void> spinForGrant(PageInfo &pi, std::size_t k,
                                 soc::Core &core, std::uint64_t page,
                                 std::uint32_t resend_payload);

    /** @name TwoState (migratory) mode. @{ */
    sim::Task<void> accessTwoState(std::size_t k, soc::Core &core,
                                   std::uint64_t page);
    sim::Task<void> serviceGet(std::size_t owner, std::size_t requester,
                               std::uint64_t page);
    /** @} */

    /** @name Directory (MSI/MESI/MOESI) mode. @{ */
    sim::Task<void> accessDir(std::size_t k, soc::Core &core,
                              std::uint64_t page, Access rw);
    sim::Task<void> dirService(std::size_t req, std::uint64_t page,
                               bool write, bool via_mail);
    sim::Task<void> invService(std::size_t target, std::uint64_t page);
    sim::Task<void> fwdService(std::size_t owner, std::uint64_t page);
    void grantTo(std::size_t grantor, std::size_t req,
                 std::uint64_t page, coherence::RepOp op);
    /** @} */

    /** @name Release-acquire (RAC) mode. @{ */
    sim::Task<void> accessRac(std::size_t k, soc::Core &core,
                              std::uint64_t page, Access rw);
    sim::Task<void> racService(std::size_t writer, std::size_t req,
                               std::uint64_t page);
    /** @} */

    soc::Soc &soc_;
    std::vector<kern::Kernel *> kernels_;
    coherence::ProtocolKind kind_;
    std::vector<Costs> costs_;
    std::vector<char> weak_; //!< Pays the read-tracking penalty.
    std::vector<std::unique_ptr<soc::Mmu>> mmus_;
    std::uint64_t numPages_;
    std::uint64_t nextRegionPage_ = 0;
    std::unordered_map<std::uint64_t, std::unique_ptr<PageInfo>> pages_;
    std::vector<Stats> stats_;
    sim::Counter messages_;
    sim::Counter retries_;
    RetryPolicy retry_{};
    std::uint32_t seq_ = 0;
    std::unique_ptr<coherence::Directory> dir_; //!< Directory modes.
    std::unique_ptr<coherence::RacState> rac_;  //!< RAC mode.
};

} // namespace os
} // namespace k2

#endif // K2_OS_NDSM_H
